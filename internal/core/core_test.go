package core

import (
	"testing"

	"aim/internal/model"
	"aim/internal/vf"
)

const seed = 2025

func TestStageLadderMonotoneHR(t *testing.T) {
	p := NewPipeline(vf.LowPower)
	net := model.ResNet18(seed)
	prev := 1.0
	for _, s := range []Stage{StageBaseline, StageLHR, StageWDS} {
		res := p.RunStage(net, s)
		if res.HR.Average > prev+1e-9 {
			t.Errorf("stage %v HR %.3f above previous %.3f", s, res.HR.Average, prev)
		}
		prev = res.HR.Average
	}
}

func TestFullReportResNet(t *testing.T) {
	p := NewPipeline(vf.LowPower)
	p.Seed = 7
	net := model.ResNet18(seed)
	// Use a cheaper mapping strategy check indirectly: full run.
	rep := p.Run(net)
	if g := rep.EfficiencyGain(); g < 1.9 || g > 2.6 {
		t.Errorf("efficiency gain = %.2f, want near paper band 1.91-2.29", g)
	}
	if pg := rep.PowerGain(); pg < 1.9 || pg > 3.0 {
		t.Errorf("power gain = %.2f, want ~2.3", pg)
	}
	if m := rep.Mitigation(); m < 0.55 || m > 0.73 {
		t.Errorf("mitigation = %.1f%%, want 58.5-69.2%%", m*100)
	}
}

func TestSprintSpeedup(t *testing.T) {
	p := NewPipeline(vf.Sprint)
	net := model.ResNet18(seed)
	rep := p.Run(net)
	if s := rep.Speedup(); s < 1.05 || s > 1.25 {
		t.Errorf("speedup = %.3f, want ~1.129-1.152", s)
	}
}

func TestStageStrings(t *testing.T) {
	want := []string{"baseline", "+LHR", "+WDS", "+IR-Booster"}
	for i, s := range Stages() {
		if s.String() != want[i] {
			t.Errorf("stage %d = %q, want %q", i, s, want[i])
		}
	}
}

func TestBaselineStageIsDVFS(t *testing.T) {
	p := NewPipeline(vf.LowPower)
	opt := p.SimOptions(StageBaseline, false)
	if opt.UseBooster || opt.Aggressive {
		t.Error("baseline stage must be plain DVFS")
	}
	copt := p.CompilerOptions(StageBaseline)
	if copt.UseLHR || copt.WDSDelta != 0 {
		t.Error("baseline stage must not use LHR/WDS")
	}
}

func TestQualityPreserved(t *testing.T) {
	p := NewPipeline(vf.LowPower)
	net := model.ViT(seed)
	base := p.RunStage(net, StageBaseline)
	full := p.RunStage(net, StageWDS)
	if base.Quality-full.Quality > 1.0 {
		t.Errorf("quality dropped too much: %.2f -> %.2f", base.Quality, full.Quality)
	}
}
