package core

import (
	"reflect"
	"sync"
	"testing"

	"aim/internal/model"
	"aim/internal/sim"
	"aim/internal/vf"
)

const seed = 2025

func TestStageLadderMonotoneHR(t *testing.T) {
	p := NewPipeline(vf.LowPower)
	net := model.ResNet18(seed)
	prev := 1.0
	for _, s := range []Stage{StageBaseline, StageLHR, StageWDS} {
		res := p.RunStage(net, s)
		if res.HR.Average > prev+1e-9 {
			t.Errorf("stage %v HR %.3f above previous %.3f", s, res.HR.Average, prev)
		}
		prev = res.HR.Average
	}
}

func TestFullReportResNet(t *testing.T) {
	p := NewPipeline(vf.LowPower)
	p.Seed = 7
	net := model.ResNet18(seed)
	// Use a cheaper mapping strategy check indirectly: full run.
	rep := p.Run(net)
	if g := rep.EfficiencyGain(); g < 1.9 || g > 2.6 {
		t.Errorf("efficiency gain = %.2f, want near paper band 1.91-2.29", g)
	}
	if pg := rep.PowerGain(); pg < 1.9 || pg > 3.0 {
		t.Errorf("power gain = %.2f, want ~2.3", pg)
	}
	if m := rep.Mitigation(); m < 0.55 || m > 0.73 {
		t.Errorf("mitigation = %.1f%%, want 58.5-69.2%%", m*100)
	}
}

func TestSprintSpeedup(t *testing.T) {
	p := NewPipeline(vf.Sprint)
	net := model.ResNet18(seed)
	rep := p.Run(net)
	if s := rep.Speedup(); s < 1.05 || s > 1.25 {
		t.Errorf("speedup = %.3f, want ~1.129-1.152", s)
	}
}

func TestStageStrings(t *testing.T) {
	want := []string{"baseline", "+LHR", "+WDS", "+IR-Booster"}
	for i, s := range Stages() {
		if s.String() != want[i] {
			t.Errorf("stage %d = %q, want %q", i, s, want[i])
		}
	}
}

func TestBaselineStageIsDVFS(t *testing.T) {
	p := NewPipeline(vf.LowPower)
	opt := p.SimOptions(StageBaseline, false)
	if opt.UseBooster || opt.Aggressive {
		t.Error("baseline stage must be plain DVFS")
	}
	copt := p.CompilerOptions(StageBaseline)
	if copt.UseLHR || copt.WDSDelta != 0 {
		t.Error("baseline stage must not use LHR/WDS")
	}
}

func TestQualityPreserved(t *testing.T) {
	p := NewPipeline(vf.LowPower)
	net := model.ViT(seed)
	base := p.RunStage(net, StageBaseline)
	full := p.RunStage(net, StageWDS)
	if base.Quality-full.Quality > 1.0 {
		t.Errorf("quality dropped too much: %.2f -> %.2f", base.Quality, full.Quality)
	}
}

// TestCompileExecuteMatchesRun pins the compile-once split: the
// two-phase path must be field-identical to the historical one-shot
// Run, and repeated Execute calls on one Plan must not drift.
func TestCompileExecuteMatchesRun(t *testing.T) {
	p := NewPipeline(vf.LowPower)
	net := model.ResNet18(seed)
	want := p.Run(net)
	plan := p.Compile(net)
	for round := 0; round < 2; round++ {
		got := p.Execute(plan)
		if !reflect.DeepEqual(got.AIM.Result, want.AIM.Result) ||
			!reflect.DeepEqual(got.Baseline.Result, want.Baseline.Result) ||
			!reflect.DeepEqual(got.AIM.HR, want.AIM.HR) ||
			got.AIM.Quality != want.AIM.Quality {
			t.Fatalf("Execute round %d diverges from Run", round)
		}
	}
}

// TestExecuteSharedPlanConcurrently proves a cached Plan is read-only
// under execution: many pipelines executing one Plan concurrently (as
// the serving runtime does) all match the serial reference. Run with
// -race this also proves the absence of data races.
func TestExecuteSharedPlanConcurrently(t *testing.T) {
	p := NewPipeline(vf.LowPower)
	net := model.ResNet18(seed)
	plan := p.Compile(net)
	want := p.Execute(plan)
	warm := sim.NewWarmState()
	var wg sync.WaitGroup
	errs := make([]bool, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := NewPipeline(vf.LowPower)
			q.Warm = warm
			got := q.Execute(plan)
			errs[i] = !reflect.DeepEqual(got.AIM.Result, want.AIM.Result)
		}(i)
	}
	wg.Wait()
	for i, bad := range errs {
		if bad {
			t.Errorf("concurrent Execute %d diverged from serial reference", i)
		}
	}
}

func TestResolveWDSDelta(t *testing.T) {
	cases := []struct {
		in      int
		want    int
		wantErr bool
	}{
		{in: 0, want: DefaultWDSDelta},
		{in: DisableWDS, want: 0},
		{in: 8, want: 8},
		{in: 16, want: 16},
		{in: 12, wantErr: true},
		{in: -2, wantErr: true},
		{in: 3, wantErr: true},
	}
	for _, c := range cases {
		got, err := ResolveWDSDelta(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ResolveWDSDelta(%d): expected error", c.in)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("ResolveWDSDelta(%d) = %d, %v, want %d", c.in, got, err, c.want)
		}
	}
}

// TestDisabledWDSSkipsShift pins the δ=0 path end to end: the booster
// stage compiled with WDS off must deploy the +LHR stage's Hamming
// rate and record no per-layer shift.
func TestDisabledWDSSkipsShift(t *testing.T) {
	p := NewPipeline(vf.LowPower)
	p.WDSDelta = 0
	net := model.ResNet18(seed)
	lhr := p.CompileStage(net, StageLHR)
	full := p.CompileStage(net, StageBooster)
	if full.Stats.Average != lhr.Stats.Average {
		t.Errorf("disabled-WDS HR = %v, want +LHR %v", full.Stats.Average, lhr.Stats.Average)
	}
	for _, plan := range full.Plans {
		if plan.Delta != 0 {
			t.Fatalf("layer %s still shifted by δ=%d", plan.Layer.Name, plan.Delta)
		}
	}
}
