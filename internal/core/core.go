// Package core ties the AIM system together (paper Fig. 6): the
// offline software pipeline (LHR-regularized quantization, WDS,
// HR-aware task mapping) and the runtime hardware adjustment
// (IR-Booster over the chip simulator), plus the staged ablation
// configurations of §6.8.
package core

import (
	"fmt"

	"aim/internal/compiler"
	"aim/internal/model"
	"aim/internal/pim"
	"aim/internal/sim"
	"aim/internal/vf"
)

// Stage selects how much of AIM is enabled — the §6.8 ablation axis.
type Stage int

const (
	// StageBaseline is the unmodified chip: baseline quantization,
	// sequential mapping, worst-case DVFS.
	StageBaseline Stage = iota
	// StageLHR adds the LHR regularizer, with IR-Booster pinned at the
	// software-guided safe level (the paper's convention: software
	// methods alone don't change V-f, so they are measured with basic
	// safe-level booster support).
	StageLHR
	// StageWDS adds WDS on top of LHR (same safe-level booster).
	StageWDS
	// StageBooster is full AIM: LHR + WDS + aggressive IR-Booster +
	// HR-aware task mapping.
	StageBooster
)

// String names the stage the way the paper's figures label it.
func (s Stage) String() string {
	switch s {
	case StageBaseline:
		return "baseline"
	case StageLHR:
		return "+LHR"
	case StageWDS:
		return "+WDS"
	case StageBooster:
		return "+IR-Booster"
	default:
		return fmt.Sprintf("stage(%d)", int(s))
	}
}

// Stages lists the ablation ladder in order.
func Stages() []Stage { return []Stage{StageBaseline, StageLHR, StageWDS, StageBooster} }

// Pipeline is a configured AIM deployment.
type Pipeline struct {
	Chip pim.Config
	Mode vf.Mode
	Beta int
	// WDSDelta is the δ used by the WDS stage (default 16 to match the
	// paper's ablation configuration).
	WDSDelta int
	Seed     int64
	// Parallel bounds the simulator's wave-sharding pool (0 = one
	// worker per CPU, 1 = serial); results are identical either way.
	Parallel int
}

// NewPipeline returns the reference deployment: the 7nm 256-TOPS chip,
// β=50, δ=16.
func NewPipeline(mode vf.Mode) *Pipeline {
	return &Pipeline{Chip: pim.DefaultConfig(), Mode: mode, Beta: 50, WDSDelta: 16, Seed: 1}
}

// CompilerOptions derives the offline configuration for a stage.
func (p *Pipeline) CompilerOptions(s Stage) compiler.Options {
	opt := compiler.BaselineOptions()
	opt.Mode = p.Mode
	opt.Seed = p.Seed
	switch s {
	case StageBaseline:
	case StageLHR:
		opt.UseLHR = true
	case StageWDS:
		opt.UseLHR = true
		opt.WDSDelta = p.WDSDelta
	case StageBooster:
		opt.UseLHR = true
		opt.WDSDelta = p.WDSDelta
		opt.Strategy = compiler.HRAwareMap
	}
	return opt
}

// SimOptions derives the runtime configuration for a stage.
func (p *Pipeline) SimOptions(s Stage, transformer bool) sim.Options {
	opt := sim.DefaultOptions(transformer, p.Mode)
	opt.Beta = p.Beta
	opt.Seed = p.Seed
	opt.Parallel = p.Parallel
	switch s {
	case StageBaseline:
		opt.UseBooster = false
		opt.Aggressive = false
	case StageLHR, StageWDS:
		opt.UseBooster = true
		opt.Aggressive = false
	case StageBooster:
		opt.UseBooster = true
		opt.Aggressive = true
	}
	return opt
}

// StageResult is one rung of the ablation ladder.
type StageResult struct {
	Stage    Stage
	HR       model.HRStats
	Result   sim.Result
	Quality  float64
	Compiled *compiler.Compiled
}

// RunStage compiles and executes a network at the given stage.
func (p *Pipeline) RunStage(net *model.Network, s Stage) StageResult {
	c := compiler.Compile(net, p.Chip, p.CompilerOptions(s))
	res := sim.Run(c, p.Chip, p.SimOptions(s, net.Transformer))
	return StageResult{Stage: s, HR: c.Stats, Result: res, Quality: c.Quality(), Compiled: c}
}

// Report is the end-to-end comparison the paper headlines (§6.6).
type Report struct {
	Net      *model.Network
	Mode     vf.Mode
	Baseline StageResult
	AIM      StageResult
}

// Run executes the full before/after comparison for a network.
func (p *Pipeline) Run(net *model.Network) Report {
	return Report{
		Net:      net,
		Mode:     p.Mode,
		Baseline: p.RunStage(net, StageBaseline),
		AIM:      p.RunStage(net, StageBooster),
	}
}

// EfficiencyGain is the energy-efficiency (throughput per watt)
// improvement factor — the paper's headline 1.91-2.29× metric.
func (r Report) EfficiencyGain() float64 {
	base := r.Baseline.Result.TOPS / r.Baseline.Result.AvgMacroPowerMW
	aim := r.AIM.Result.TOPS / r.AIM.Result.AvgMacroPowerMW
	return aim / base
}

// PowerGain is the raw per-macro power reduction factor (the paper's
// 4.2978 → 1.876 mW view).
func (r Report) PowerGain() float64 {
	return r.Baseline.Result.AvgMacroPowerMW / r.AIM.Result.AvgMacroPowerMW
}

// Speedup is the effective-TOPS improvement factor.
func (r Report) Speedup() float64 {
	return r.AIM.Result.TOPS / r.Baseline.Result.TOPS
}

// Mitigation is the weight-op worst-drop reduction versus the sign-off
// worst case ("up to 69.2%" in the paper).
func (r Report) Mitigation() float64 {
	return r.AIM.Result.WeightOpMitigation
}
