// Package core ties the AIM system together (paper Fig. 6): the
// offline software pipeline (LHR-regularized quantization, WDS,
// HR-aware task mapping) and the runtime hardware adjustment
// (IR-Booster over the chip simulator), plus the staged ablation
// configurations of §6.8.
package core

import (
	"fmt"

	"aim/internal/compiler"
	"aim/internal/model"
	"aim/internal/pim"
	"aim/internal/quant"
	"aim/internal/sim"
	"aim/internal/vf"
)

// Stage selects how much of AIM is enabled — the §6.8 ablation axis.
type Stage int

const (
	// StageBaseline is the unmodified chip: baseline quantization,
	// sequential mapping, worst-case DVFS.
	StageBaseline Stage = iota
	// StageLHR adds the LHR regularizer, with IR-Booster pinned at the
	// software-guided safe level (the paper's convention: software
	// methods alone don't change V-f, so they are measured with basic
	// safe-level booster support).
	StageLHR
	// StageWDS adds WDS on top of LHR (same safe-level booster).
	StageWDS
	// StageBooster is full AIM: LHR + WDS + aggressive IR-Booster +
	// HR-aware task mapping.
	StageBooster
)

// String names the stage the way the paper's figures label it.
func (s Stage) String() string {
	switch s {
	case StageBaseline:
		return "baseline"
	case StageLHR:
		return "+LHR"
	case StageWDS:
		return "+WDS"
	case StageBooster:
		return "+IR-Booster"
	default:
		return fmt.Sprintf("stage(%d)", int(s))
	}
}

// Stages lists the ablation ladder in order.
func Stages() []Stage { return []Stage{StageBaseline, StageLHR, StageWDS, StageBooster} }

// WDS δ conventions shared by the public API and the serving runtime:
// a zero Config field means "default", so an explicit sentinel is
// needed to switch WDS off.
const (
	// DefaultWDSDelta is the δ the pipeline applies when the caller
	// leaves the knob at zero (the paper's ablation configuration).
	DefaultWDSDelta = 16
	// DisableWDS is the sentinel callers pass to run LHR without the
	// distribution shift (compiler semantics: δ=0 disables WDS).
	DisableWDS = -1
)

// ResolveWDSDelta canonicalizes a user-facing δ: 0 selects
// DefaultWDSDelta, DisableWDS (-1) selects 0 (WDS off), and any other
// value must be a power of two. It returns the δ to hand the compiler.
func ResolveWDSDelta(d int) (int, error) {
	switch {
	case d == DisableWDS:
		return 0, nil
	case d == 0:
		return DefaultWDSDelta, nil
	case d < 0 || !quant.IsPow2(d):
		return 0, fmt.Errorf("WDS delta %d is not a power of two (use %d to disable WDS)", d, DisableWDS)
	default:
		return d, nil
	}
}

// Pipeline is a configured AIM deployment.
type Pipeline struct {
	Chip pim.Config
	Mode vf.Mode
	Beta int
	// Bits is the quantization width (default 8).
	Bits int
	// WDSDelta is the δ used by the WDS stage (default 16 to match the
	// paper's ablation configuration; 0 disables WDS).
	WDSDelta int
	Seed     int64
	// Parallel bounds the simulator's wave-sharding pool (0 = one
	// worker per CPU, 1 = serial); results are identical either way.
	Parallel int
	// Fidelity selects the simulator's modelling tier (default
	// sim.AnalyticToggles — the byte-stable historical behaviour).
	// Like Beta and Parallel it is a runtime knob: it never touches
	// the compiled artifact, so one Plan serves every tier.
	Fidelity sim.Fidelity
	// SpatialWindow, SpatialSkipMV and SpatialAdaptive are the
	// SpatialPDN tier's cadence and incremental-solve knobs, passed
	// through to sim.Options verbatim. All are runtime knobs (never in
	// the plan) and all default to the byte-stable reference: solve
	// every DefaultSpatialWindow cycles, skip nothing, fixed cadence.
	SpatialWindow   int
	SpatialSkipMV   float64
	SpatialAdaptive bool
	// Warm, when non-nil, lets the simulator reuse its per-worker
	// scratch across Execute calls — the serving runtime's warm
	// simulator state. Results are bit-identical with or without it.
	Warm *sim.WarmState
}

// NewPipeline returns the reference deployment: the 7nm 256-TOPS chip,
// β=50, δ=16.
func NewPipeline(mode vf.Mode) *Pipeline {
	return &Pipeline{Chip: pim.DefaultConfig(), Mode: mode, Beta: 50, Bits: 8, WDSDelta: DefaultWDSDelta, Seed: 1}
}

// CompilerOptions derives the offline configuration for a stage.
func (p *Pipeline) CompilerOptions(s Stage) compiler.Options {
	opt := compiler.BaselineOptions()
	opt.Mode = p.Mode
	opt.Seed = p.Seed
	if p.Bits > 0 {
		opt.Bits = p.Bits
	}
	switch s {
	case StageBaseline:
	case StageLHR:
		opt.UseLHR = true
	case StageWDS:
		opt.UseLHR = true
		opt.WDSDelta = p.WDSDelta
	case StageBooster:
		opt.UseLHR = true
		opt.WDSDelta = p.WDSDelta
		opt.Strategy = compiler.HRAwareMap
	}
	return opt
}

// SimOptions derives the runtime configuration for a stage.
func (p *Pipeline) SimOptions(s Stage, transformer bool) sim.Options {
	opt := sim.DefaultOptions(transformer, p.Mode)
	opt.Beta = p.Beta
	opt.Seed = p.Seed
	opt.Parallel = p.Parallel
	opt.Warm = p.Warm
	opt.Fidelity = p.Fidelity
	opt.SpatialWindow = p.SpatialWindow
	opt.SpatialSkipMV = p.SpatialSkipMV
	opt.SpatialAdaptive = p.SpatialAdaptive
	switch s {
	case StageBaseline:
		opt.UseBooster = false
		opt.Aggressive = false
	case StageLHR, StageWDS:
		opt.UseBooster = true
		opt.Aggressive = false
	case StageBooster:
		opt.UseBooster = true
		opt.Aggressive = true
	}
	return opt
}

// StageResult is one rung of the ablation ladder.
type StageResult struct {
	Stage    Stage
	HR       model.HRStats
	Result   sim.Result
	Quality  float64
	Compiled *compiler.Compiled
}

// CompileStage runs the offline pipeline (LHR + WDS + mapping) for one
// stage without executing it.
func (p *Pipeline) CompileStage(net *model.Network, s Stage) *compiler.Compiled {
	return compiler.Compile(net, p.Chip, p.CompilerOptions(s))
}

// ExecuteStage runs a previously compiled artifact on the simulated
// chip. The artifact is read-only during execution, so one Compiled
// may be executed concurrently by many pipelines.
func (p *Pipeline) ExecuteStage(c *compiler.Compiled, s Stage) StageResult {
	res := sim.Run(c, p.Chip, p.SimOptions(s, c.Net.Transformer))
	return StageResult{Stage: s, HR: c.Stats, Result: res, Quality: c.Quality(), Compiled: c}
}

// RunStage compiles and executes a network at the given stage.
func (p *Pipeline) RunStage(net *model.Network, s Stage) StageResult {
	return p.ExecuteStage(p.CompileStage(net, s), s)
}

// Plan is the offline half of a Run: both rungs of the before/after
// comparison compiled once and reusable across Execute calls — the
// unit the serving runtime caches. A Plan freezes everything the
// compiler consumed (network, mode, bits, δ, seed); runtime knobs
// (β, worker count, warm state, fidelity tier) stay on the executing
// Pipeline.
type Plan struct {
	Net      *model.Network
	Baseline *compiler.Compiled
	AIM      *compiler.Compiled
}

// Compile runs the offline pipeline for the full before/after
// comparison and returns the reusable Plan.
func (p *Pipeline) Compile(net *model.Network) *Plan {
	return &Plan{
		Net:      net,
		Baseline: p.CompileStage(net, StageBaseline),
		AIM:      p.CompileStage(net, StageBooster),
	}
}

// Execute runs a compiled Plan on the simulated chip. For a fixed seed
// Execute(Compile(net)) is identical to Run(net) field for field, and
// repeated Execute calls on one Plan return identical Reports.
func (p *Pipeline) Execute(plan *Plan) Report {
	return Report{
		Net:      plan.Net,
		Mode:     p.Mode,
		Baseline: p.ExecuteStage(plan.Baseline, StageBaseline),
		AIM:      p.ExecuteStage(plan.AIM, StageBooster),
	}
}

// Report is the end-to-end comparison the paper headlines (§6.6).
type Report struct {
	Net      *model.Network
	Mode     vf.Mode
	Baseline StageResult
	AIM      StageResult
}

// Run executes the full before/after comparison for a network: the
// one-shot composition of the offline Compile phase and the runtime
// Execute phase.
func (p *Pipeline) Run(net *model.Network) Report {
	return p.Execute(p.Compile(net))
}

// EfficiencyGain is the energy-efficiency (throughput per watt)
// improvement factor — the paper's headline 1.91-2.29× metric.
func (r Report) EfficiencyGain() float64 {
	base := r.Baseline.Result.TOPS / r.Baseline.Result.AvgMacroPowerMW
	aim := r.AIM.Result.TOPS / r.AIM.Result.AvgMacroPowerMW
	return aim / base
}

// PowerGain is the raw per-macro power reduction factor (the paper's
// 4.2978 → 1.876 mW view).
func (r Report) PowerGain() float64 {
	return r.Baseline.Result.AvgMacroPowerMW / r.AIM.Result.AvgMacroPowerMW
}

// Speedup is the effective-TOPS improvement factor.
func (r Report) Speedup() float64 {
	return r.AIM.Result.TOPS / r.Baseline.Result.TOPS
}

// Mitigation is the weight-op worst-drop reduction versus the sign-off
// worst case ("up to 69.2%" in the paper).
func (r Report) Mitigation() float64 {
	return r.AIM.Result.WeightOpMitigation
}
