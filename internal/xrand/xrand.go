// Package xrand provides deterministic, splittable random streams for
// reproducible experiments.
//
// Every stochastic component in the repository (synthetic weights, input
// bitstreams, simulated annealing, IR-drop noise) draws from an xrand.RNG
// derived from a named stream so experiment results are bit-stable across
// runs and machines, which the benchmark harness relies on.
package xrand

import (
	"hash/fnv"
	"math"
	"math/rand"
	"strconv"
)

// RNG is a deterministic random source with distribution helpers.
type RNG struct {
	r *rand.Rand
}

// New returns an RNG seeded with the given seed.
func New(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// NewNamed derives a deterministic RNG from a root seed and a stream
// name. Distinct names yield independent streams, so adding a consumer
// does not disturb existing ones.
func NewNamed(seed int64, name string) *RNG {
	return New(namedSeed(seed, name))
}

// namedSeed folds a stream name into a root seed.
func namedSeed(seed int64, name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return seed ^ int64(h.Sum64())
}

// NewShard derives the shard'th stream of a named family. Shards of
// the same family are mutually independent and independent of the
// plain NewNamed stream, so a loop can be split across workers with
// each index drawing from its own stream: results are then identical
// whether the loop runs serially or sharded over a pool, which is the
// determinism contract the parallel runner relies on.
func NewShard(seed int64, name string, shard int) *RNG {
	return NewNamed(seed, name+"#"+strconv.Itoa(shard))
}

// ReseedShard re-derives this RNG in place as the shard'th stream of a
// named family: the subsequent draw sequence is identical to a fresh
// NewShard's, but the ~5 KB generator state is reused instead of
// reallocated. Hot loops that consume one stream per work item (the
// simulator's chunked wave executor) reseed a per-worker RNG this way.
func (g *RNG) ReseedShard(seed int64, name string, shard int) {
	g.r.Seed(namedSeed(seed, name+"#"+strconv.Itoa(shard)))
}

// Split derives a child stream from this RNG by name without consuming
// the parent's sequence deterministically tied to the name.
func (g *RNG) Split(name string) *RNG {
	h := fnv.New64a()
	h.Write([]byte(name))
	return New(int64(h.Sum64()) ^ g.Int63())
}

// Int63 returns a non-negative 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Intn returns an int in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Float64 returns a float64 in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle shuffles n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Normal returns a sample from N(mu, sigma^2).
func (g *RNG) Normal(mu, sigma float64) float64 {
	return mu + sigma*g.r.NormFloat64()
}

// Laplace returns a sample from Laplace(mu, b). Neural-network weight
// distributions are frequently heavier-tailed than Gaussian; the model
// zoo mixes Laplace and Normal components.
func (g *RNG) Laplace(mu, b float64) float64 {
	u := g.r.Float64() - 0.5
	if u < 0 {
		return mu + b*math.Log(1+2*u)
	}
	return mu - b*math.Log(1-2*u)
}

// Bernoulli returns true with probability p.
func (g *RNG) Bernoulli(p float64) bool { return g.r.Float64() < p }

// Exp returns an exponentially distributed sample with rate lambda.
func (g *RNG) Exp(lambda float64) float64 {
	if lambda <= 0 {
		panic("xrand: Exp rate must be positive")
	}
	return g.r.ExpFloat64() / lambda
}

// NormalSlice fills a new slice of n samples from N(mu, sigma^2).
func (g *RNG) NormalSlice(n int, mu, sigma float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = g.Normal(mu, sigma)
	}
	return out
}
