package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed must give same sequence")
		}
	}
}

func TestNamedStreamsIndependent(t *testing.T) {
	a := NewNamed(1, "weights")
	b := NewNamed(1, "inputs")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Intn(1000) == b.Intn(1000) {
			same++
		}
	}
	if same > 16 {
		t.Errorf("named streams look correlated: %d/64 equal draws", same)
	}
}

func TestNamedStreamReproducible(t *testing.T) {
	a := NewNamed(7, "x")
	b := NewNamed(7, "x")
	if a.Int63() != b.Int63() {
		t.Fatal("named stream must be reproducible")
	}
}

func TestShardStreamsReproducibleAndIndependent(t *testing.T) {
	a := NewShard(7, "waves", 3)
	b := NewShard(7, "waves", 3)
	if a.Int63() != b.Int63() {
		t.Fatal("shard stream must be reproducible")
	}
	// Neighbouring shards and the family's plain named stream must all
	// be mutually independent.
	streams := []*RNG{NewShard(7, "waves", 0), NewShard(7, "waves", 1), NewNamed(7, "waves")}
	for i := 0; i < len(streams); i++ {
		for j := i + 1; j < len(streams); j++ {
			x, y := streams[i], streams[j]
			same := 0
			for k := 0; k < 64; k++ {
				if x.Intn(1000) == y.Intn(1000) {
					same++
				}
			}
			if same > 16 {
				t.Errorf("streams %d and %d look correlated: %d/64 equal draws", i, j, same)
			}
		}
	}
}

func TestSplitReproducible(t *testing.T) {
	a := New(3).Split("child")
	b := New(3).Split("child")
	if a.Int63() != b.Int63() {
		t.Fatal("split stream must be reproducible")
	}
}

func TestNormalMoments(t *testing.T) {
	g := New(11)
	n := 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := g.Normal(2, 3)
		sum += x
		sumSq += x * x
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean-2) > 0.05 {
		t.Errorf("normal mean = %v, want ~2", mean)
	}
	if math.Abs(variance-9) > 0.3 {
		t.Errorf("normal variance = %v, want ~9", variance)
	}
}

func TestLaplaceMoments(t *testing.T) {
	g := New(13)
	n := 200000
	sum, sumAbs := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := g.Laplace(0, 2)
		sum += x
		sumAbs += math.Abs(x)
	}
	mean := sum / float64(n)
	meanAbs := sumAbs / float64(n)
	if math.Abs(mean) > 0.05 {
		t.Errorf("laplace mean = %v, want ~0", mean)
	}
	// E|X| = b for Laplace(0, b).
	if math.Abs(meanAbs-2) > 0.05 {
		t.Errorf("laplace E|X| = %v, want ~2", meanAbs)
	}
}

func TestBernoulliRate(t *testing.T) {
	g := New(17)
	hits := 0
	n := 100000
	for i := 0; i < n; i++ {
		if g.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / float64(n)
	if math.Abs(rate-0.3) > 0.01 {
		t.Errorf("bernoulli rate = %v, want ~0.3", rate)
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Exp(0)
}

func TestNormalSliceLen(t *testing.T) {
	s := New(5).NormalSlice(17, 0, 1)
	if len(s) != 17 {
		t.Fatalf("len = %d, want 17", len(s))
	}
}

func TestPermIsPermutation(t *testing.T) {
	p := New(9).Perm(20)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}
