// Command calib prints Table-2-style HR reductions for the model zoo;
// used to calibrate per-model distribution profiles against the paper.
//
// Usage:
//
//	calib [-seed N] [-net substring]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"aim/internal/model"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, writes the
// calibration table to stdout, and returns the exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("calib", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 2025, "random seed for model generation")
	filter := fs.String("net", "", "only calibrate models whose name contains this substring")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	matched := 0
	fmt.Fprintln(stdout, "model        base(avg/max)  +LHR(avg/max)%  +WDS8%  +WDS16%")
	for _, n := range model.All(*seed) {
		if *filter != "" && !strings.Contains(n.Name, *filter) {
			continue
		}
		matched++
		b := model.NetworkHR(n, model.BaselineConfig())
		l := model.NetworkHR(n, model.LHRConfig())
		w8 := model.NetworkHR(n, model.WDSConfig(8))
		w16 := model.NetworkHR(n, model.WDSConfig(16))
		rel := func(x, y float64) float64 { return 100 * (x - y) / x }
		fmt.Fprintf(stdout, "%-12s %.3f/%.3f    %5.1f/%5.1f    %5.1f/%5.1f  %5.1f/%5.1f\n",
			n.Name, b.Average, b.Max,
			rel(b.Average, l.Average), rel(b.Max, l.Max),
			rel(b.Average, w8.Average), rel(b.Max, w8.Max),
			rel(b.Average, w16.Average), rel(b.Max, w16.Max))
	}
	if matched == 0 {
		fmt.Fprintf(stderr, "calib: no model matches -net %q\n", *filter)
		return 1
	}
	fmt.Fprintln(stdout, "\npaper Table 2 targets (avg): resnet18 28/39/45.6  mobilenet 29/30.6/33.6  yolov5 23/31.5/38.6  vit 25.9/31.9/35.6  llama3 25.9/30.7/36.3  gpt2 30.7/38/41.5")
	return 0
}
