// Command calib prints Table-2-style HR reductions for the model zoo;
// used to calibrate per-model distribution profiles against the paper.
package main

import (
	"fmt"

	"aim/internal/model"
)

func main() {
	fmt.Println("model        base(avg/max)  +LHR(avg/max)%  +WDS8%  +WDS16%")
	for _, n := range model.All(2025) {
		b := model.NetworkHR(n, model.BaselineConfig())
		l := model.NetworkHR(n, model.LHRConfig())
		w8 := model.NetworkHR(n, model.WDSConfig(8))
		w16 := model.NetworkHR(n, model.WDSConfig(16))
		rel := func(x, y float64) float64 { return 100 * (x - y) / x }
		fmt.Printf("%-12s %.3f/%.3f    %5.1f/%5.1f    %5.1f/%5.1f  %5.1f/%5.1f\n",
			n.Name, b.Average, b.Max,
			rel(b.Average, l.Average), rel(b.Max, l.Max),
			rel(b.Average, w8.Average), rel(b.Max, w8.Max),
			rel(b.Average, w16.Average), rel(b.Max, w16.Max))
	}
	fmt.Println("\npaper Table 2 targets (avg): resnet18 28/39/45.6  mobilenet 29/30.6/33.6  yolov5 23/31.5/38.6  vit 25.9/31.9/35.6  llama3 25.9/30.7/36.3  gpt2 30.7/38/41.5")
}
