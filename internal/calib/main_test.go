package main

import (
	"strconv"
	"strings"
	"testing"
)

func runCapture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr strings.Builder
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestFlagHandling(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"unknown flag", []string{"-bogus"}, 2},
		{"no model match", []string{"-net", "nosuchnet"}, 1},
		{"help", []string{"-h"}, 0},
	}
	for _, c := range cases {
		code, _, stderr := runCapture(t, c.args...)
		if code != c.code {
			t.Errorf("%s: exit = %d, want %d (stderr %q)", c.name, code, c.code, stderr)
		}
		if c.code != 0 && stderr == "" {
			t.Errorf("%s: expected diagnostics on stderr", c.name)
		}
	}
}

// TestTableShape checks one model's calibration row: header, paper
// targets footer, and HR reductions that are positive and ordered
// (LHR < +WDS8 < +WDS16, the monotone ladder of Table 2).
func TestTableShape(t *testing.T) {
	code, out, stderr := runCapture(t, "-net", "resnet18")
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, stderr)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if !strings.HasPrefix(lines[0], "model ") {
		t.Fatalf("missing header: %q", lines[0])
	}
	if !strings.HasPrefix(lines[len(lines)-1], "paper Table 2 targets") {
		t.Fatalf("missing paper targets footer: %q", lines[len(lines)-1])
	}
	var row string
	for _, l := range lines {
		if strings.HasPrefix(l, "resnet18") {
			row = l
		}
	}
	if row == "" {
		t.Fatalf("no resnet18 row in:\n%s", out)
	}
	// The %5.1f widths can pad after the slash; collapse that so each
	// avg/max pair is one field.
	f := strings.Fields(strings.ReplaceAll(row, "/ ", "/"))
	// name, base avg/max, then three avg/max reduction pairs.
	if len(f) != 5 {
		t.Fatalf("row fields = %d (%q), want 5", len(f), row)
	}
	parse := func(pair string) float64 {
		t.Helper()
		v, err := strconv.ParseFloat(strings.Split(pair, "/")[0], 64)
		if err != nil {
			t.Fatalf("bad pair %q: %v", pair, err)
		}
		return v
	}
	lhr, w8, w16 := parse(f[2]), parse(f[3]), parse(f[4])
	if !(0 < lhr && lhr < w8 && w8 < w16) {
		t.Errorf("HR reductions not a monotone ladder: LHR %.1f, WDS8 %.1f, WDS16 %.1f", lhr, w8, w16)
	}
}

func TestSeedSensitive(t *testing.T) {
	_, a, _ := runCapture(t, "-net", "resnet18", "-seed", "1")
	_, b, _ := runCapture(t, "-net", "resnet18", "-seed", "1")
	if a != b {
		t.Fatal("same seed must reproduce the same table")
	}
}
