// Package stream generates the bit-serial input streams that drive the
// PIM simulator.
//
// In the paper's PIM dataflow (§2.1) the in-memory weights stay put
// while input activations are loaded bit-serially on the word lines:
// every cell k sees one input bit per cycle. The architecture-level
// Rtog metric (Eq. 1) depends only on the cycle-to-cycle *toggles* of
// those bit streams, so this package produces per-cell toggle sequences
// from synthetic activation data: spatially correlated post-ReLU
// "image" features for conv workloads, wider zero-mean token features
// for transformer workloads, plus the sign-off worst case where every
// bit toggles every cycle.
//
// All per-cycle bit vectors are packed: cell k lives in bit k%64 of
// word k/64 of a []uint64, so the Eq. 1 AND-with-weight-bits reduction
// downstream in internal/pim is word-wise AND + popcount instead of a
// byte walk. Pack and Unpack convert to the one-byte-per-bit layout at
// test boundaries.
package stream

import (
	"fmt"

	"aim/internal/fxp"
	"aim/internal/xrand"
)

// Words returns the number of 64-bit words that hold n packed cells.
func Words(n int) int { return (n + 63) / 64 }

// Pack converts a one-byte-per-bit vector (values 0/1) into packed
// words: cell k occupies bit k%64 of word k/64. Tail bits are zero.
func Pack(bits []uint8) []uint64 {
	out := make([]uint64, Words(len(bits)))
	for k, b := range bits {
		if b != 0 {
			out[k/64] |= 1 << uint(k%64)
		}
	}
	return out
}

// Unpack expands packed words back into one byte per bit for the first
// n cells — the test-boundary inverse of Pack.
func Unpack(words []uint64, n int) []uint8 {
	out := make([]uint8, n)
	for k := 0; k < n; k++ {
		out[k] = uint8(words[k/64] >> uint(k%64) & 1)
	}
	return out
}

// tailMask returns the mask of valid bits in the last word of an
// n-cell packed vector (all ones when n is a multiple of 64).
func tailMask(n int) uint64 {
	if r := n % 64; r != 0 {
		return 1<<uint(r) - 1
	}
	return ^uint64(0)
}

// BitSerial converts a sequence of activation vectors into per-cycle
// input bit vectors: value v of cell k occupies bits cycles LSB-first,
// so a sequence of m vectors over n cells at width q yields m*q cycles.
type BitSerial struct {
	n, q   int
	cycles int
	// rows[t] holds the packed input bits of cycle t (bit k of the
	// word-split vector is cell k's line).
	rows [][]uint64
}

// NewBitSerial serializes the activation matrix acts[vector][cell]
// (quantized codes at width q) into a bit-serial stream. It rejects
// empty or ragged input and widths outside [2,32] with a descriptive
// error — this is a public entry point fed by file- and flag-derived
// data, so malformed shapes must not panic.
func NewBitSerial(acts [][]int32, q int) (*BitSerial, error) {
	if q < 2 || q > 32 {
		return nil, fmt.Errorf("stream: bit width %d outside [2,32]", q)
	}
	if len(acts) == 0 {
		return nil, fmt.Errorf("stream: empty activation sequence")
	}
	n := len(acts[0])
	if n == 0 {
		return nil, fmt.Errorf("stream: activation vectors have no cells")
	}
	s := &BitSerial{n: n, q: q, cycles: len(acts) * q}
	s.rows = make([][]uint64, 0, s.cycles)
	for vi, vec := range acts {
		if len(vec) != n {
			return nil, fmt.Errorf("stream: ragged activation matrix (vector %d has %d cells, want %d)", vi, len(vec), n)
		}
		for i := 0; i < q; i++ {
			row := make([]uint64, Words(n))
			for k, v := range vec {
				if fxp.Bit(v, i, q) != 0 {
					row[k/64] |= 1 << uint(k%64)
				}
			}
			s.rows = append(s.rows, row)
		}
	}
	return s, nil
}

// Cells returns the number of parallel input lines (cells).
func (s *BitSerial) Cells() int { return s.n }

// Cycles returns the stream length in cycles.
func (s *BitSerial) Cycles() int { return s.cycles }

// Bit returns the input bit of cell k at cycle t.
func (s *BitSerial) Bit(t, k int) uint8 {
	return uint8(s.rows[t][k/64] >> uint(k%64) & 1)
}

// Row returns the packed input bits of cycle t. The slice is shared
// with the stream; callers must not modify it.
func (s *BitSerial) Row(t int) []uint64 { return s.rows[t] }

// Toggles returns, for each cycle t in [1, Cycles), the packed per-cell
// toggle indicators I(k,t-1) XOR I(k,t) — the quantity Eq. 1 ANDs
// against the stored weight bits.
func (s *BitSerial) Toggles() [][]uint64 {
	out := make([][]uint64, s.cycles-1)
	for t := 1; t < s.cycles; t++ {
		row := make([]uint64, len(s.rows[t]))
		prev, cur := s.rows[t-1], s.rows[t]
		for w := range row {
			row[w] = prev[w] ^ cur[w]
		}
		out[t-1] = row
	}
	return out
}

// ToggleSource yields packed per-cycle toggle vectors; both serialized
// streams and synthetic toggle processes implement it.
type ToggleSource interface {
	// Cells returns the number of parallel lines.
	Cells() int
	// NextToggles fills dst (length Words(Cells())) with packed 0/1
	// toggle indicators for the next cycle and reports false when the
	// source is exhausted. Bits beyond Cells() in the last word stay 0.
	NextToggles(dst []uint64) bool
}

// serialToggles adapts BitSerial to ToggleSource.
type serialToggles struct {
	s *BitSerial
	t int
}

// ToggleStream returns a ToggleSource over the serialized bits.
func (s *BitSerial) ToggleStream() ToggleSource { return &serialToggles{s: s, t: 1} }

func (st *serialToggles) Cells() int { return st.s.n }

func (st *serialToggles) NextToggles(dst []uint64) bool {
	if st.t >= st.s.cycles {
		return false
	}
	prev, cur := st.s.rows[st.t-1], st.s.rows[st.t]
	for w := range dst {
		dst[w] = prev[w] ^ cur[w]
	}
	st.t++
	return true
}

// WorstCase is the sign-off testbench source: every line toggles every
// cycle, driving Rtog to its supremum HR (Eq. 4).
type WorstCase struct {
	N      int
	Cycles int
	t      int
}

// Cells implements ToggleSource.
func (w *WorstCase) Cells() int { return w.N }

// NextToggles implements ToggleSource.
func (w *WorstCase) NextToggles(dst []uint64) bool {
	if w.t >= w.Cycles {
		return false
	}
	for i := range dst {
		dst[i] = ^uint64(0)
	}
	if len(dst) > 0 {
		dst[len(dst)-1] = tailMask(w.N)
	}
	w.t++
	return true
}

// Bernoulli is a synthetic toggle process where each line toggles
// independently with per-cycle probability drawn from a clipped normal
// distribution — the "100-step input flip sequence sampled from a
// normal distribution" of the paper's mapping evaluator (§5.6).
type Bernoulli struct {
	N      int
	Cycles int
	MeanP  float64
	SigmaP float64
	rng    *xrand.RNG
	t      int
}

// NewBernoulli constructs the process.
func NewBernoulli(n, cycles int, meanP, sigmaP float64, rng *xrand.RNG) *Bernoulli {
	return &Bernoulli{N: n, Cycles: cycles, MeanP: meanP, SigmaP: sigmaP, rng: rng}
}

// Cells implements ToggleSource.
func (b *Bernoulli) Cells() int { return b.N }

// NextToggles implements ToggleSource. The per-cell draws happen in
// cell order — the same RNG consumption as the historical byte-vector
// implementation, so fixed-seed streams are bit-identical across the
// packed refactor.
func (b *Bernoulli) NextToggles(dst []uint64) bool {
	if b.t >= b.Cycles {
		return false
	}
	p := b.rng.Normal(b.MeanP, b.SigmaP)
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	FillBernoulli(dst, b.N, p, b.rng)
	b.t++
	return true
}

// FillBernoulli fills dst with N packed independent Bernoulli(p) bits,
// drawing from rng in cell order (tail bits are cleared). It is the
// shared per-cycle toggle generator of the Bernoulli source and the
// simulator's packed-fidelity wave loop.
func FillBernoulli(dst []uint64, n int, p float64, rng *xrand.RNG) {
	for i := range dst {
		dst[i] = 0
	}
	for k := 0; k < n; k++ {
		if rng.Bernoulli(p) {
			dst[k/64] |= 1 << uint(k%64)
		}
	}
}
