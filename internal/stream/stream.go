// Package stream generates the bit-serial input streams that drive the
// PIM simulator.
//
// In the paper's PIM dataflow (§2.1) the in-memory weights stay put
// while input activations are loaded bit-serially on the word lines:
// every cell k sees one input bit per cycle. The architecture-level
// Rtog metric (Eq. 1) depends only on the cycle-to-cycle *toggles* of
// those bit streams, so this package produces per-cell toggle sequences
// from synthetic activation data: spatially correlated post-ReLU
// "image" features for conv workloads, wider zero-mean token features
// for transformer workloads, plus the sign-off worst case where every
// bit toggles every cycle.
package stream

import (
	"aim/internal/fxp"
	"aim/internal/xrand"
)

// BitSerial converts a sequence of activation vectors into per-cycle
// input bit vectors: value v of cell k occupies bits cycles LSB-first,
// so a sequence of m vectors over n cells at width q yields m*q cycles.
type BitSerial struct {
	n, q   int
	cycles int
	// bits[t][k] is the input bit of cell k at cycle t.
	bits [][]uint8
}

// NewBitSerial serializes the activation matrix acts[vector][cell]
// (quantized codes at width q) into a bit-serial stream.
func NewBitSerial(acts [][]int32, q int) *BitSerial {
	if len(acts) == 0 {
		panic("stream: empty activation sequence")
	}
	n := len(acts[0])
	s := &BitSerial{n: n, q: q, cycles: len(acts) * q}
	s.bits = make([][]uint8, 0, s.cycles)
	for _, vec := range acts {
		if len(vec) != n {
			panic("stream: ragged activation matrix")
		}
		for i := 0; i < q; i++ {
			row := make([]uint8, n)
			for k, v := range vec {
				row[k] = uint8(fxp.Bit(v, i, q))
			}
			s.bits = append(s.bits, row)
		}
	}
	return s
}

// Cells returns the number of parallel input lines (cells).
func (s *BitSerial) Cells() int { return s.n }

// Cycles returns the stream length in cycles.
func (s *BitSerial) Cycles() int { return s.cycles }

// Bit returns the input bit of cell k at cycle t.
func (s *BitSerial) Bit(t, k int) uint8 { return s.bits[t][k] }

// Toggles returns, for each cycle t in [1, Cycles), the per-cell toggle
// indicators I(k,t-1) XOR I(k,t) — the quantity Eq. 1 ANDs against the
// stored weight bits.
func (s *BitSerial) Toggles() [][]uint8 {
	out := make([][]uint8, s.cycles-1)
	for t := 1; t < s.cycles; t++ {
		row := make([]uint8, s.n)
		prev, cur := s.bits[t-1], s.bits[t]
		for k := 0; k < s.n; k++ {
			row[k] = prev[k] ^ cur[k]
		}
		out[t-1] = row
	}
	return out
}

// ToggleSource yields per-cycle toggle vectors; both serialized streams
// and synthetic toggle processes implement it.
type ToggleSource interface {
	// Cells returns the number of parallel lines.
	Cells() int
	// NextToggles fills dst with 0/1 toggle indicators for the next
	// cycle and reports false when the source is exhausted.
	NextToggles(dst []uint8) bool
}

// serialToggles adapts BitSerial to ToggleSource.
type serialToggles struct {
	s *BitSerial
	t int
}

// ToggleStream returns a ToggleSource over the serialized bits.
func (s *BitSerial) ToggleStream() ToggleSource { return &serialToggles{s: s, t: 1} }

func (st *serialToggles) Cells() int { return st.s.n }

func (st *serialToggles) NextToggles(dst []uint8) bool {
	if st.t >= st.s.cycles {
		return false
	}
	prev, cur := st.s.bits[st.t-1], st.s.bits[st.t]
	for k := range dst {
		dst[k] = prev[k] ^ cur[k]
	}
	st.t++
	return true
}

// WorstCase is the sign-off testbench source: every line toggles every
// cycle, driving Rtog to its supremum HR (Eq. 4).
type WorstCase struct {
	N      int
	Cycles int
	t      int
}

// Cells implements ToggleSource.
func (w *WorstCase) Cells() int { return w.N }

// NextToggles implements ToggleSource.
func (w *WorstCase) NextToggles(dst []uint8) bool {
	if w.t >= w.Cycles {
		return false
	}
	for k := range dst {
		dst[k] = 1
	}
	w.t++
	return true
}

// Bernoulli is a synthetic toggle process where each line toggles
// independently with per-cycle probability drawn from a clipped normal
// distribution — the "100-step input flip sequence sampled from a
// normal distribution" of the paper's mapping evaluator (§5.6).
type Bernoulli struct {
	N      int
	Cycles int
	MeanP  float64
	SigmaP float64
	rng    *xrand.RNG
	t      int
}

// NewBernoulli constructs the process.
func NewBernoulli(n, cycles int, meanP, sigmaP float64, rng *xrand.RNG) *Bernoulli {
	return &Bernoulli{N: n, Cycles: cycles, MeanP: meanP, SigmaP: sigmaP, rng: rng}
}

// Cells implements ToggleSource.
func (b *Bernoulli) Cells() int { return b.N }

// NextToggles implements ToggleSource.
func (b *Bernoulli) NextToggles(dst []uint8) bool {
	if b.t >= b.Cycles {
		return false
	}
	p := b.rng.Normal(b.MeanP, b.SigmaP)
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	for k := range dst {
		if b.rng.Bernoulli(p) {
			dst[k] = 1
		} else {
			dst[k] = 0
		}
	}
	b.t++
	return true
}
