package stream

import (
	"aim/internal/fxp"
	"aim/internal/xrand"
)

// ActivationKind selects the synthetic activation statistics.
type ActivationKind int

const (
	// ImageActs are post-ReLU conv features: non-negative, sparse (many
	// exact zeros), spatially correlated across consecutive vectors.
	ImageActs ActivationKind = iota
	// TokenActs are transformer hidden states: signed, wider, weakly
	// correlated between consecutive positions.
	TokenActs
	// UniformActs are uniformly random codes (stress pattern).
	UniformActs
)

// ActivationConfig parameterizes the generator.
type ActivationConfig struct {
	Kind ActivationKind
	// Bits is the activation quantization width.
	Bits int
	// Sparsity is the fraction of exact zeros (ImageActs).
	Sparsity float64
	// Corr in [0,1) is the AR(1) correlation between consecutive
	// vectors; high correlation lowers bit toggles.
	Corr float64
}

// DefaultActivations returns realistic defaults per kind.
func DefaultActivations(kind ActivationKind) ActivationConfig {
	switch kind {
	case ImageActs:
		return ActivationConfig{Kind: ImageActs, Bits: 8, Sparsity: 0.45, Corr: 0.65}
	case TokenActs:
		return ActivationConfig{Kind: TokenActs, Bits: 8, Sparsity: 0.05, Corr: 0.35}
	default:
		return ActivationConfig{Kind: UniformActs, Bits: 8}
	}
}

// GenerateActivations produces `vectors` activation vectors over n
// cells with the configured statistics, as quantized codes.
func GenerateActivations(cfg ActivationConfig, n, vectors int, rng *xrand.RNG) [][]int32 {
	if cfg.Bits == 0 {
		cfg.Bits = 8
	}
	hi := float64(fxp.MaxInt(cfg.Bits))
	out := make([][]int32, vectors)
	state := make([]float64, n)
	for k := range state {
		state[k] = rng.Normal(0, 1)
	}
	for v := 0; v < vectors; v++ {
		row := make([]int32, n)
		for k := 0; k < n; k++ {
			// AR(1) evolution keeps consecutive vectors correlated.
			state[k] = cfg.Corr*state[k] + (1-cfg.Corr)*rng.Normal(0, 1.4)
			x := state[k]
			switch cfg.Kind {
			case ImageActs:
				if x < 0 || rng.Bernoulli(cfg.Sparsity) {
					row[k] = 0
					continue
				}
				row[k] = fxp.Clamp(int64(x*hi/3), cfg.Bits)
			case TokenActs:
				row[k] = fxp.Clamp(int64(x*hi/3.2), cfg.Bits)
			default:
				row[k] = int32(rng.Intn(int(2*hi+1))) - int32(hi)
			}
		}
		out[v] = row
	}
	return out
}

// WorkloadToggles builds a ready-to-run ToggleSource for a workload
// class: synthetic activations serialized bit-serially. It fails (like
// NewBitSerial) when the requested shape is degenerate, e.g. zero
// vectors or zero cells.
func WorkloadToggles(kind ActivationKind, n, vectors int, rng *xrand.RNG) (ToggleSource, error) {
	cfg := DefaultActivations(kind)
	acts := GenerateActivations(cfg, n, vectors, rng)
	bs, err := NewBitSerial(acts, cfg.Bits)
	if err != nil {
		return nil, err
	}
	return bs.ToggleStream(), nil
}
