package stream

import (
	"math/bits"
	"testing"
	"testing/quick"

	"aim/internal/fxp"
	"aim/internal/xrand"
)

// mustBitSerial is the test-boundary helper for inputs known to be
// well-formed.
func mustBitSerial(t *testing.T, acts [][]int32, q int) *BitSerial {
	t.Helper()
	s, err := NewBitSerial(acts, q)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// popCells counts set cells of a packed vector.
func popCells(words []uint64) int {
	n := 0
	for _, w := range words {
		n += bits.OnesCount64(w)
	}
	return n
}

func TestWordsPackUnpackRoundTrip(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 128, 200} {
		g := xrand.New(int64(n))
		b := make([]uint8, n)
		for i := range b {
			if g.Bernoulli(0.5) {
				b[i] = 1
			}
		}
		words := Pack(b)
		if len(words) != Words(n) {
			t.Fatalf("n=%d: %d words, want %d", n, len(words), Words(n))
		}
		got := Unpack(words, n)
		for i := range b {
			if got[i] != b[i] {
				t.Fatalf("n=%d: round trip mismatch at %d", n, i)
			}
		}
	}
}

func TestBitSerialShape(t *testing.T) {
	acts := [][]int32{{1, -1, 0}, {2, 3, -4}}
	s := mustBitSerial(t, acts, 8)
	if s.Cells() != 3 || s.Cycles() != 16 {
		t.Fatalf("cells=%d cycles=%d, want 3, 16", s.Cells(), s.Cycles())
	}
}

func TestBitSerialBitsLSBFirst(t *testing.T) {
	// Value 5 = 0b101: cycle 0 bit 1, cycle 1 bit 0, cycle 2 bit 1.
	s := mustBitSerial(t, [][]int32{{5}}, 8)
	want := []uint8{1, 0, 1, 0, 0, 0, 0, 0}
	for i, w := range want {
		if got := s.Bit(i, 0); got != w {
			t.Errorf("bit %d = %d, want %d", i, got, w)
		}
	}
	// -1 = 0xFF: all ones.
	s = mustBitSerial(t, [][]int32{{-1}}, 8)
	for i := 0; i < 8; i++ {
		if s.Bit(i, 0) != 1 {
			t.Errorf("-1 bit %d should be 1", i)
		}
	}
}

func TestBitSerialErrors(t *testing.T) {
	cases := []struct {
		name string
		acts [][]int32
		q    int
	}{
		{"empty sequence", [][]int32{}, 8},
		{"zero cells", [][]int32{{}}, 8},
		{"ragged matrix", [][]int32{{1, 2}, {3}}, 8},
		{"width too small", [][]int32{{1}}, 1},
		{"width too large", [][]int32{{1}}, 33},
	}
	for _, c := range cases {
		if _, err := NewBitSerial(c.acts, c.q); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

// TestBitSerialMatchesByteReference packs exactly the bits the
// historical one-byte-per-bit serializer produced.
func TestBitSerialMatchesByteReference(t *testing.T) {
	g := xrand.New(11)
	for _, n := range []int{3, 64, 100} {
		acts := GenerateActivations(DefaultActivations(TokenActs), n, 4, g)
		s := mustBitSerial(t, acts, 8)
		// Byte reference: row[k] = bit i of acts[v][k], LSB first.
		for v := range acts {
			for i := 0; i < 8; i++ {
				tt := v*8 + i
				row := Unpack(s.Row(tt), n)
				for k, val := range acts[v] {
					if want := uint8(fxp.Bit(val, i, 8)); row[k] != want {
						t.Fatalf("n=%d t=%d k=%d: bit %d, want %d", n, tt, k, row[k], want)
					}
				}
				// Tail bits beyond n must stay clear.
				if last := s.Row(tt)[len(s.Row(tt))-1]; n%64 != 0 && last>>(uint(n%64)) != 0 {
					t.Fatalf("n=%d t=%d: tail bits set", n, tt)
				}
			}
		}
	}
}

func TestTogglesMatchBits(t *testing.T) {
	g := xrand.New(3)
	acts := GenerateActivations(DefaultActivations(TokenActs), 16, 4, g)
	s := mustBitSerial(t, acts, 8)
	tg := s.Toggles()
	if len(tg) != s.Cycles()-1 {
		t.Fatalf("toggle rows = %d, want %d", len(tg), s.Cycles()-1)
	}
	for t0 := 1; t0 < s.Cycles(); t0++ {
		row := Unpack(tg[t0-1], s.Cells())
		for k := 0; k < s.Cells(); k++ {
			want := s.Bit(t0-1, k) ^ s.Bit(t0, k)
			if row[k] != want {
				t.Fatalf("toggle mismatch at t=%d k=%d", t0, k)
			}
		}
	}
}

func TestToggleStreamMatchesToggles(t *testing.T) {
	g := xrand.New(4)
	acts := GenerateActivations(DefaultActivations(ImageActs), 8, 3, g)
	s := mustBitSerial(t, acts, 8)
	want := s.Toggles()
	src := s.ToggleStream()
	dst := make([]uint64, Words(src.Cells()))
	for i := 0; src.NextToggles(dst); i++ {
		for w := range dst {
			if dst[w] != want[i][w] {
				t.Fatalf("stream toggle mismatch at cycle %d word %d", i, w)
			}
		}
	}
}

func TestWorstCaseAllOnes(t *testing.T) {
	w := &WorstCase{N: 70, Cycles: 3}
	dst := make([]uint64, Words(70))
	n := 0
	for w.NextToggles(dst) {
		n++
		if popCells(dst) != 70 {
			t.Fatalf("worst case set %d of 70 lines", popCells(dst))
		}
		if dst[1]>>uint(70%64) != 0 {
			t.Fatal("worst case leaked bits past Cells()")
		}
	}
	if n != 3 {
		t.Fatalf("cycles = %d, want 3", n)
	}
}

func TestBernoulliRateAndBounds(t *testing.T) {
	g := xrand.New(5)
	b := NewBernoulli(1000, 200, 0.3, 0.05, g)
	dst := make([]uint64, Words(1000))
	total, cycles := 0, 0
	for b.NextToggles(dst) {
		cycles++
		total += popCells(dst)
	}
	if cycles != 200 {
		t.Fatalf("cycles = %d", cycles)
	}
	rate := float64(total) / float64(200*1000)
	if rate < 0.25 || rate > 0.35 {
		t.Errorf("toggle rate = %v, want ~0.3", rate)
	}
}

// TestBernoulliMatchesByteReference pins the RNG draw order: the
// packed source must consume the generator exactly as the historical
// byte-vector implementation did (one clipped-normal intensity per
// cycle, then one Bernoulli per cell in cell order), so fixed-seed
// experiment outputs are unchanged by the packed refactor.
func TestBernoulliMatchesByteReference(t *testing.T) {
	const n, cycles = 100, 50
	packedG, refG := xrand.New(9), xrand.New(9)
	src := NewBernoulli(n, cycles, 0.4, 0.1, packedG)
	dst := make([]uint64, Words(n))
	for c := 0; c < cycles; c++ {
		if !src.NextToggles(dst) {
			t.Fatal("source exhausted early")
		}
		// Byte reference: the pre-packing implementation.
		p := refG.Normal(0.4, 0.1)
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		ref := make([]uint8, n)
		for k := range ref {
			if refG.Bernoulli(p) {
				ref[k] = 1
			}
		}
		got := Unpack(dst, n)
		for k := range ref {
			if got[k] != ref[k] {
				t.Fatalf("cycle %d cell %d: packed %d, reference %d", c, k, got[k], ref[k])
			}
		}
	}
}

func TestImageActsSparseAndNonNegative(t *testing.T) {
	g := xrand.New(6)
	acts := GenerateActivations(DefaultActivations(ImageActs), 512, 20, g)
	zeros, total := 0, 0
	for _, row := range acts {
		for _, v := range row {
			if v < 0 {
				t.Fatal("image activations must be non-negative (post-ReLU)")
			}
			if v == 0 {
				zeros++
			}
			total++
		}
	}
	frac := float64(zeros) / float64(total)
	if frac < 0.3 {
		t.Errorf("zero fraction = %v, want sparse (>0.3)", frac)
	}
}

func TestTokenActsSigned(t *testing.T) {
	g := xrand.New(7)
	acts := GenerateActivations(DefaultActivations(TokenActs), 512, 20, g)
	neg := 0
	for _, row := range acts {
		for _, v := range row {
			if v < 0 {
				neg++
			}
		}
	}
	if neg == 0 {
		t.Error("token activations should include negative values")
	}
}

func TestWorkloadTogglesErrors(t *testing.T) {
	g := xrand.New(12)
	if _, err := WorkloadToggles(TokenActs, 16, 0, g); err == nil {
		t.Error("zero vectors must error")
	}
	if _, err := WorkloadToggles(TokenActs, 0, 4, g); err == nil {
		t.Error("zero cells must error")
	}
	src, err := WorkloadToggles(TokenActs, 16, 4, g)
	if err != nil || src.Cells() != 16 {
		t.Fatalf("well-formed workload failed: %v", err)
	}
}

func TestCorrelationLowersToggleRate(t *testing.T) {
	g1, g2 := xrand.New(8), xrand.New(8)
	rate := func(corr float64, g *xrand.RNG) float64 {
		cfg := ActivationConfig{Kind: TokenActs, Bits: 8, Corr: corr}
		acts := GenerateActivations(cfg, 256, 30, g)
		s, err := NewBitSerial(acts, 8)
		if err != nil {
			t.Fatal(err)
		}
		src := s.ToggleStream()
		dst := make([]uint64, Words(256))
		tot, n := 0, 0
		for src.NextToggles(dst) {
			tot += popCells(dst)
			n += 256
		}
		return float64(tot) / float64(n)
	}
	high := rate(0.9, g1)
	low := rate(0.0, g2)
	if high >= low {
		t.Errorf("high correlation (%v) should toggle less than uncorrelated (%v)", high, low)
	}
}

// Property: no toggle bit ever escapes the valid cell range.
func TestToggleBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := xrand.New(seed)
		acts := GenerateActivations(DefaultActivations(UniformActs), 32, 3, g)
		s, err := NewBitSerial(acts, 8)
		if err != nil {
			return false
		}
		for _, row := range s.Toggles() {
			if len(row) != Words(32) || row[0]>>32 != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
