package stream

import (
	"testing"
	"testing/quick"

	"aim/internal/xrand"
)

func TestBitSerialShape(t *testing.T) {
	acts := [][]int32{{1, -1, 0}, {2, 3, -4}}
	s := NewBitSerial(acts, 8)
	if s.Cells() != 3 || s.Cycles() != 16 {
		t.Fatalf("cells=%d cycles=%d, want 3, 16", s.Cells(), s.Cycles())
	}
}

func TestBitSerialBitsLSBFirst(t *testing.T) {
	// Value 5 = 0b101: cycle 0 bit 1, cycle 1 bit 0, cycle 2 bit 1.
	s := NewBitSerial([][]int32{{5}}, 8)
	want := []uint8{1, 0, 1, 0, 0, 0, 0, 0}
	for i, w := range want {
		if got := s.Bit(i, 0); got != w {
			t.Errorf("bit %d = %d, want %d", i, got, w)
		}
	}
	// -1 = 0xFF: all ones.
	s = NewBitSerial([][]int32{{-1}}, 8)
	for i := 0; i < 8; i++ {
		if s.Bit(i, 0) != 1 {
			t.Errorf("-1 bit %d should be 1", i)
		}
	}
}

func TestBitSerialPanics(t *testing.T) {
	for _, acts := range [][][]int32{{}, {{1, 2}, {3}}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %v", acts)
				}
			}()
			NewBitSerial(acts, 8)
		}()
	}
}

func TestTogglesMatchBits(t *testing.T) {
	g := xrand.New(3)
	acts := GenerateActivations(DefaultActivations(TokenActs), 16, 4, g)
	s := NewBitSerial(acts, 8)
	tg := s.Toggles()
	if len(tg) != s.Cycles()-1 {
		t.Fatalf("toggle rows = %d, want %d", len(tg), s.Cycles()-1)
	}
	for t0 := 1; t0 < s.Cycles(); t0++ {
		for k := 0; k < s.Cells(); k++ {
			want := s.Bit(t0-1, k) ^ s.Bit(t0, k)
			if tg[t0-1][k] != want {
				t.Fatalf("toggle mismatch at t=%d k=%d", t0, k)
			}
		}
	}
}

func TestToggleStreamMatchesToggles(t *testing.T) {
	g := xrand.New(4)
	acts := GenerateActivations(DefaultActivations(ImageActs), 8, 3, g)
	s := NewBitSerial(acts, 8)
	want := s.Toggles()
	src := s.ToggleStream()
	dst := make([]uint8, src.Cells())
	for i := 0; src.NextToggles(dst); i++ {
		for k := range dst {
			if dst[k] != want[i][k] {
				t.Fatalf("stream toggle mismatch at %d,%d", i, k)
			}
		}
	}
}

func TestWorstCaseAllOnes(t *testing.T) {
	w := &WorstCase{N: 5, Cycles: 3}
	dst := make([]uint8, 5)
	n := 0
	for w.NextToggles(dst) {
		n++
		for _, v := range dst {
			if v != 1 {
				t.Fatal("worst case must toggle every line")
			}
		}
	}
	if n != 3 {
		t.Fatalf("cycles = %d, want 3", n)
	}
}

func TestBernoulliRateAndBounds(t *testing.T) {
	g := xrand.New(5)
	b := NewBernoulli(1000, 200, 0.3, 0.05, g)
	dst := make([]uint8, 1000)
	total, cycles := 0, 0
	for b.NextToggles(dst) {
		cycles++
		for _, v := range dst {
			if v > 1 {
				t.Fatal("toggle must be 0/1")
			}
			total += int(v)
		}
	}
	if cycles != 200 {
		t.Fatalf("cycles = %d", cycles)
	}
	rate := float64(total) / float64(200*1000)
	if rate < 0.25 || rate > 0.35 {
		t.Errorf("toggle rate = %v, want ~0.3", rate)
	}
}

func TestImageActsSparseAndNonNegative(t *testing.T) {
	g := xrand.New(6)
	acts := GenerateActivations(DefaultActivations(ImageActs), 512, 20, g)
	zeros, total := 0, 0
	for _, row := range acts {
		for _, v := range row {
			if v < 0 {
				t.Fatal("image activations must be non-negative (post-ReLU)")
			}
			if v == 0 {
				zeros++
			}
			total++
		}
	}
	frac := float64(zeros) / float64(total)
	if frac < 0.3 {
		t.Errorf("zero fraction = %v, want sparse (>0.3)", frac)
	}
}

func TestTokenActsSigned(t *testing.T) {
	g := xrand.New(7)
	acts := GenerateActivations(DefaultActivations(TokenActs), 512, 20, g)
	neg := 0
	for _, row := range acts {
		for _, v := range row {
			if v < 0 {
				neg++
			}
		}
	}
	if neg == 0 {
		t.Error("token activations should include negative values")
	}
}

func TestCorrelationLowersToggleRate(t *testing.T) {
	g1, g2 := xrand.New(8), xrand.New(8)
	rate := func(corr float64, g *xrand.RNG) float64 {
		cfg := ActivationConfig{Kind: TokenActs, Bits: 8, Corr: corr}
		acts := GenerateActivations(cfg, 256, 30, g)
		src := NewBitSerial(acts, 8).ToggleStream()
		dst := make([]uint8, 256)
		tot, n := 0, 0
		for src.NextToggles(dst) {
			for _, v := range dst {
				tot += int(v)
			}
			n += 256
		}
		return float64(tot) / float64(n)
	}
	high := rate(0.9, g1)
	low := rate(0.0, g2)
	if high >= low {
		t.Errorf("high correlation (%v) should toggle less than uncorrelated (%v)", high, low)
	}
}

// Property: toggles are always 0/1 and worst case dominates any stream.
func TestToggleBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := xrand.New(seed)
		acts := GenerateActivations(DefaultActivations(UniformActs), 32, 3, g)
		for _, row := range NewBitSerial(acts, 8).Toggles() {
			for _, v := range row {
				if v > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
