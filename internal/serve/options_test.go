package serve

import (
	"math"
	"strings"
	"testing"
	"time"

	"aim/internal/sim"
)

// TestOptionsValidate pins the construction contract: zero values are
// defaults, negative (or internally inconsistent) values are errors at
// New — never silently clamped into something that "works".
func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name    string
		opt     Options
		wantErr string // substring; "" means valid
	}{
		{name: "zero is valid", opt: Options{}},
		{name: "explicit values valid", opt: Options{Workers: 2, MaxBatch: 8, Queue: 16, RatePerClient: 4, Burst: 8, TargetP95: 50 * time.Millisecond}},
		{name: "rate without burst valid", opt: Options{RatePerClient: 2.5}},
		{name: "negative workers", opt: Options{Workers: -1}, wantErr: "negative workers"},
		{name: "negative max batch", opt: Options{MaxBatch: -4}, wantErr: "negative max batch"},
		{name: "negative queue", opt: Options{Queue: -256}, wantErr: "negative queue depth"},
		{name: "negative rate", opt: Options{RatePerClient: -0.5}, wantErr: "negative per-client rate"},
		{name: "NaN rate", opt: Options{RatePerClient: math.NaN()}, wantErr: "non-finite per-client rate"},
		{name: "Inf rate", opt: Options{RatePerClient: math.Inf(1)}, wantErr: "non-finite per-client rate"},
		{name: "negative burst", opt: Options{RatePerClient: 1, Burst: -2}, wantErr: "negative rate-limit burst"},
		{name: "burst without rate", opt: Options{Burst: 8}, wantErr: "burst 8 without a per-client rate"},
		{name: "negative slo target", opt: Options{TargetP95: -time.Second}, wantErr: "negative SLO target"},
	}
	for _, c := range cases {
		err := c.opt.Validate()
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("%s: Validate() = %v, want nil", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: Validate() = %v, want error containing %q", c.name, err, c.wantErr)
		}
		// New must refuse the same options (construction, not first use).
		if s, err := New(c.opt); err == nil {
			s.Close()
			t.Errorf("%s: New accepted options Validate rejects", c.name)
		}
	}
}

// TestNewDefaults: zero options still construct a working server (the
// historical behaviour — zero means default, only negatives error).
func TestNewDefaults(t *testing.T) {
	s := newTestServer(t, Options{})
	defer s.Close()
	if s.opt.Workers <= 0 || s.opt.MaxBatch != 64 || s.opt.Queue != 256 {
		t.Errorf("defaults not applied: %+v", s.opt)
	}
	if s.limiter != nil {
		t.Error("limiter constructed without a rate")
	}
	if s.ladder.tier() != sim.SpatialPDN {
		t.Errorf("disabled ladder must hold the top tier, got %v", s.ladder.tier())
	}
}
