package serve

import (
	"testing"
	"time"

	"aim/internal/planstore"
)

// TestServeFaultInjection drives the full serving stack — HTTP front
// door, admission, the SLO ladder, execution — over a plan store whose
// backend misbehaves on a deterministic schedule (bit-flips,
// truncations, stale rewrites, write failures, latency), across
// repeated server restarts so every request generation has to face the
// disk. The contract under proof: not one request fails, every answer
// is byte-identical to a pristine in-memory server's, and when the
// dust settles the store's counters reconcile exactly against the
// injected-fault counts — the serving path degrades corrupt and stale
// entries to recompiles, silently and accountably.
func TestServeFaultInjection(t *testing.T) {
	// Three deployment points over two plan keys: the default and the
	// "auto" request share a key (one cached plan serving two tiers —
	// the ladder path), the sprint request has its own.
	bodies := []string{
		`{"network": "mobilenetv2", "mode": "low-power", "seed": 1}`,
		`{"network": "mobilenetv2", "mode": "low-power", "seed": 1, "fidelity": "auto"}`,
		`{"network": "mobilenetv2", "mode": "sprint", "seed": 2, "fidelity": "packed"}`,
	}
	// A generous SLO keeps the ladder deterministically at its top
	// tier, so "auto" always serves spatial and responses are
	// comparable across servers.
	opts := func() Options { return Options{Workers: 2, TargetP95: time.Hour} }

	// Reference answers from a pristine, store-less server.
	ref := make([]wireResponse, len(bodies))
	s := newTestServer(t, opts())
	for i, body := range bodies {
		rr := post(t, s.Handler(), body, nil)
		if rr.Code != 200 {
			t.Fatalf("reference request %d: HTTP %d: %s", i, rr.Code, rr.Body.String())
		}
		ref[i] = normalize(decodeWire(t, rr))
	}
	s.Close()
	if ref[1].Fidelity != "spatial" {
		t.Fatalf("auto request served %q, want the ladder's top tier", ref[1].Fidelity)
	}

	// One faulty backend shared across every restart, so the fault
	// schedule spans the whole test.
	inner, err := planstore.OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	faulty := planstore.NewFaulty(inner, planstore.FaultPlan{
		Seed:           2025,
		FlipEvery:      3,
		TruncateEvery:  4,
		StaleEvery:     5,
		FailStoreEvery: 2,
		Latency:        time.Millisecond,
	})
	var agg planstore.Stats
	const restarts = 10
	for r := 0; r < restarts; r++ {
		// A fresh server per restart: cold singleflight map, and a
		// 1-byte LRU budget so nearly every key lookup reaches the
		// faulty backend instead of staying in warm memory.
		store := planstore.New(faulty, 1)
		opt := opts()
		opt.planStore = store
		srv, err := New(opt)
		if err != nil {
			t.Fatal(err)
		}
		for i, body := range bodies {
			rr := post(t, srv.Handler(), body, nil)
			if rr.Code != 200 {
				t.Fatalf("restart %d request %d: HTTP %d: %s", r, i, rr.Code, rr.Body.String())
			}
			if got := normalize(decodeWire(t, rr)); got != ref[i] {
				t.Fatalf("restart %d request %d: response diverged under faults\ngot  %+v\nwant %+v", r, i, got, ref[i])
			}
		}
		srv.Close()
		st := store.Stats()
		agg.MemHits += st.MemHits
		agg.DiskHits += st.DiskHits
		agg.Misses += st.Misses
		agg.Stale += st.Stale
		agg.Corrupt += st.Corrupt
		agg.Saves += st.Saves
		agg.SaveErrors += st.SaveErrors
	}

	fs := faulty.Stats()
	faults := fs.Flips + fs.Truncations + fs.Stales
	// Every injected class must actually have fired (latency fires on
	// every backend operation by construction).
	if fs.Flips == 0 || fs.Truncations == 0 || fs.Stales == 0 || fs.FailedStores == 0 {
		t.Fatalf("fault plan never fired some class over %d restarts: %+v", restarts, fs)
	}
	// The accounting proof: the stores' summed counters reconcile
	// exactly with the backend's injected-fault counts.
	if agg.DiskHits != fs.Loads-faults {
		t.Errorf("DiskHits = %d, want Loads-faults = %d-%d", agg.DiskHits, fs.Loads, faults)
	}
	if agg.Stale+agg.Corrupt != faults {
		t.Errorf("Stale+Corrupt = %d+%d, want %d injected faults", agg.Stale, agg.Corrupt, faults)
	}
	if agg.Misses != fs.NotFound+faults {
		t.Errorf("Misses = %d, want NotFound+faults = %d+%d", agg.Misses, fs.NotFound, faults)
	}
	if agg.Saves != fs.Stores {
		t.Errorf("Saves = %d, want %d successful backend stores", agg.Saves, fs.Stores)
	}
	if agg.SaveErrors != fs.FailedStores {
		t.Errorf("SaveErrors = %d, want %d injected write failures", agg.SaveErrors, fs.FailedStores)
	}
}

// normalize zeroes a wire response's volatile fields (latency, cache
// provenance) so byte-identity means "same deterministic answer".
func normalize(w wireResponse) wireResponse {
	w.LatencyMS = 0
	w.PlanCached = false
	return w
}
