package serve

import (
	"aim/internal/core"
	"aim/internal/irdrop"
	"aim/internal/model"
)

// This file is the execution layer: the pool of executor goroutines
// draining the scheduling layer's batches. Each batch does one cache
// lookup (compiling at most once per key across the fleet), then runs
// its requests back to back so the plan and the warm scratch stay hot.
// Adaptive requests resolve their fidelity tier here — at execution
// time, from the ladder — so a tier stepped down mid-queue serves at
// the tier that matches current load.
func (s *Server) executor() {
	defer s.wg.Done()
	for b := range s.exec {
		s.mu.Lock()
		s.batches++
		s.batched += int64(len(b.reqs))
		s.mu.Unlock()
		plan, hit, err := s.cache.Plan(b.key, func() (*core.Plan, error) {
			net, err := model.ByName(b.key.Network, ZooSeed)
			if err != nil {
				return nil, err
			}
			return s.pipelineFor(b.reqs[0].req).Compile(net), nil
		})
		for _, p := range b.reqs {
			if err != nil {
				p.reply <- answer{err: err}
				continue
			}
			r := p.req
			if r.AdaptFidelity {
				// The ladder only picks *which* tier runs; the tier's
				// bytes for this request are load-independent.
				r.Fidelity = s.ladder.tier()
			}
			rep := s.pipelineFor(r).Execute(plan)
			s.served[r.Fidelity].Add(1)
			s.noteSolveStats(rep)
			p.reply <- answer{resp: Response{Report: rep, Tier: r.Fidelity, PlanCached: hit}}
		}
	}
}

// noteSolveStats folds one report's spatial mesh-solve accounting
// (both executed stages) into the server counters. Non-spatial
// executions carry zero stats and cost four no-op adds.
func (s *Server) noteSolveStats(rep core.Report) {
	st := rep.Baseline.Result.SpatialSolve
	st.Add(rep.AIM.Result.SpatialSolve)
	if st == (irdrop.SolveStats{}) {
		return
	}
	s.spatialSolves.Add(st.Solves)
	s.spatialSkips.Add(st.Skips)
	s.spatialVCycles.Add(st.VCycles)
	s.spatialSaturated.Add(st.Saturated)
}
