package serve

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aim/internal/core"
	"aim/internal/model"
	"aim/internal/sim"
	"aim/internal/vf"
)

// coldNet resolves a zoo network the way the server's compile path
// does.
func coldNet(name string) (*model.Network, error) { return model.ByName(name, ZooSeed) }

// newTestServer starts a server, failing the test on the (only
// possible) error: an unopenable plan-cache directory.
func newTestServer(tb testing.TB, opt Options) *Server {
	tb.Helper()
	s, err := New(opt)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

func TestCacheCompileOncePerKey(t *testing.T) {
	c := NewCache()
	var calls atomic.Int64
	compile := func() (*core.Plan, error) {
		calls.Add(1)
		time.Sleep(10 * time.Millisecond) // widen the stampede window
		return &core.Plan{}, nil
	}
	const goroutines = 64
	var wg sync.WaitGroup
	plans := make([]*core.Plan, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, _, err := c.Plan(Key{Network: "resnet18", Mode: "low-power", Bits: 8, Delta: 16, Seed: 1}, compile)
			if err != nil {
				t.Error(err)
			}
			plans[i] = p
		}(i)
	}
	wg.Wait()
	if calls.Load() != 1 {
		t.Errorf("compile ran %d times for one key, want 1", calls.Load())
	}
	if c.Compiles() != 1 || c.Len() != 1 {
		t.Errorf("compiles = %d, len = %d, want 1/1", c.Compiles(), c.Len())
	}
	for _, p := range plans {
		if p != plans[0] {
			t.Fatal("goroutines got different plan pointers for one key")
		}
	}
}

func TestCacheDistinctKeysCompileSeparately(t *testing.T) {
	c := NewCache()
	var calls atomic.Int64
	compile := func() (*core.Plan, error) { calls.Add(1); return &core.Plan{}, nil }
	keys := []Key{
		{Network: "resnet18", Mode: "low-power", Bits: 8, Delta: 16, Seed: 1},
		{Network: "resnet18", Mode: "sprint", Bits: 8, Delta: 16, Seed: 1},
		{Network: "resnet18", Mode: "low-power", Bits: 8, Delta: 0, Seed: 1},
		{Network: "resnet18", Mode: "low-power", Bits: 8, Delta: 16, Seed: 2},
		{Network: "resnet18", Mode: "low-power", Bits: 4, Delta: 16, Seed: 1},
		{Network: "gpt2", Mode: "low-power", Bits: 8, Delta: 16, Seed: 1},
	}
	for _, k := range keys {
		if _, hit, _ := c.Plan(k, compile); hit {
			t.Errorf("key %+v: unexpected hit", k)
		}
	}
	if calls.Load() != int64(len(keys)) {
		t.Errorf("compiles = %d, want %d", calls.Load(), len(keys))
	}
	if _, hit, _ := c.Plan(keys[0], compile); !hit {
		t.Error("second lookup of a key must hit")
	}
	if c.Hits() != 1 {
		t.Errorf("hits = %d, want 1", c.Hits())
	}
}

func TestRequestNormalize(t *testing.T) {
	cases := []struct {
		name    string
		req     Request
		wantErr bool
		want    Request // canonical fields (checked when wantErr is false)
	}{
		{
			name: "defaults",
			req:  Request{Network: "resnet18", Mode: vf.LowPower},
			want: Request{Network: "resnet18", Mode: vf.LowPower, Beta: 50, Bits: 8, Delta: 16, Seed: 1, Parallel: 1},
		},
		{
			name: "disable wds",
			req:  Request{Network: "resnet18", Mode: vf.Sprint, Delta: core.DisableWDS},
			want: Request{Network: "resnet18", Mode: vf.Sprint, Beta: 50, Bits: 8, Delta: 0, Seed: 1, Parallel: 1},
		},
		{
			name: "explicit pow2 delta",
			req:  Request{Network: "gpt2", Mode: vf.LowPower, Delta: 8, Beta: 25, Seed: 7, Bits: 4, Parallel: 3},
			want: Request{Network: "gpt2", Mode: vf.LowPower, Beta: 25, Bits: 4, Delta: 8, Seed: 7, Parallel: 3},
		},
		{
			name: "spatial fidelity is runtime-only",
			req:  Request{Network: "resnet18", Mode: vf.LowPower, Fidelity: sim.SpatialPDN},
			want: Request{Network: "resnet18", Mode: vf.LowPower, Beta: 50, Bits: 8, Delta: 16, Seed: 1, Parallel: 1, Fidelity: sim.SpatialPDN},
		},
		{
			name: "spatial knobs pass through outside the key",
			req:  Request{Network: "resnet18", Mode: vf.LowPower, Fidelity: sim.SpatialPDN, SpatialWindow: 2, SpatialSkipMV: 3, SpatialAdaptive: true},
			want: Request{Network: "resnet18", Mode: vf.LowPower, Beta: 50, Bits: 8, Delta: 16, Seed: 1, Parallel: 1, Fidelity: sim.SpatialPDN, SpatialWindow: 2, SpatialSkipMV: 3, SpatialAdaptive: true},
		},
		{name: "non-pow2 delta", req: Request{Network: "resnet18", Mode: vf.LowPower, Delta: 12}, wantErr: true},
		{name: "negative delta", req: Request{Network: "resnet18", Mode: vf.LowPower, Delta: -2}, wantErr: true},
		{name: "bad bits", req: Request{Network: "resnet18", Mode: vf.LowPower, Bits: 40}, wantErr: true},
		{name: "bad mode", req: Request{Network: "resnet18", Mode: vf.Mode(9)}, wantErr: true},
		{name: "bad fidelity", req: Request{Network: "resnet18", Mode: vf.LowPower, Fidelity: sim.Fidelity(9)}, wantErr: true},
		{name: "negative parallel", req: Request{Network: "resnet18", Mode: vf.LowPower, Parallel: -1}, wantErr: true},
		{name: "negative spatial window", req: Request{Network: "resnet18", Mode: vf.LowPower, SpatialWindow: -1}, wantErr: true},
		{name: "negative spatial skip", req: Request{Network: "resnet18", Mode: vf.LowPower, SpatialSkipMV: -0.5}, wantErr: true},
		{name: "NaN spatial skip", req: Request{Network: "resnet18", Mode: vf.LowPower, SpatialSkipMV: math.NaN()}, wantErr: true},
	}
	for _, c := range cases {
		got, key, err := c.req.normalize()
		if c.wantErr {
			if err == nil {
				t.Errorf("%s: expected error", c.name)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s: normalized %+v, want %+v", c.name, got, c.want)
		}
		wantKey := Key{Network: c.want.Network, Mode: c.want.Mode.String(), Bits: c.want.Bits, Delta: c.want.Delta, Seed: c.want.Seed}
		if key != wantKey {
			t.Errorf("%s: key %+v, want %+v", c.name, key, wantKey)
		}
	}
}

// stageEqual compares the deterministic content of two stage results.
func stageEqual(a, b core.StageResult) bool {
	return reflect.DeepEqual(a.HR, b.HR) && a.Quality == b.Quality && reflect.DeepEqual(a.Result, b.Result)
}

func TestSubmitMatchesColdRun(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	defer s.Close()
	req := Request{Network: "resnet18", Mode: vf.LowPower}
	resp, err := s.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	// The cold one-shot path: the same pipeline configuration without
	// the server in between.
	nr, _, err := req.normalize()
	if err != nil {
		t.Fatal(err)
	}
	cold := s.pipelineFor(nr)
	cold.Warm = nil
	net, err := coldNet(req.Network)
	if err != nil {
		t.Fatal(err)
	}
	want := cold.Run(net)
	if !stageEqual(resp.Report.Baseline, want.Baseline) || !stageEqual(resp.Report.AIM, want.AIM) {
		t.Errorf("served report diverges from cold run:\n  served=%+v\n  cold=%+v",
			resp.Report.AIM.Result, want.AIM.Result)
	}
	if resp.PlanCached {
		t.Error("first request for a key must not report a cached plan")
	}
	again, err := s.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !again.PlanCached {
		t.Error("repeated request must hit the plan cache")
	}
	if !stageEqual(again.Report.AIM, want.AIM) {
		t.Error("cached request result diverges from cold run")
	}
}

func TestConcurrentSubmitCompilesOncePerKey(t *testing.T) {
	s := newTestServer(t, Options{Workers: 4})
	defer s.Close()
	reqs := make([]Request, 24)
	for i := range reqs {
		mode := vf.LowPower
		if i%2 == 0 {
			mode = vf.Sprint
		}
		reqs[i] = Request{Network: "resnet18", Mode: mode}
	}
	resps, err := s.ServeList(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Compiles != 2 {
		t.Errorf("compiles = %d, want 2 (one per mode) — the cache must not stampede", st.Compiles)
	}
	if st.Requests != int64(len(reqs)) {
		t.Errorf("requests = %d, want %d", st.Requests, len(reqs))
	}
	// Every response for one key must be identical.
	for i := 2; i < len(resps); i++ {
		if !stageEqual(resps[i].Report.AIM, resps[i%2].Report.AIM) {
			t.Fatalf("response %d diverges from response %d for the same key", i, i%2)
		}
	}
}

// mixedList is the fixed request list the determinism tests serve:
// three plans (two modes and a WDS-disabled point), interleaved with
// repeats.
func mixedList() []Request {
	var reqs []Request
	for i := 0; i < 4; i++ {
		reqs = append(reqs,
			Request{Network: "resnet18", Mode: vf.LowPower},
			Request{Network: "resnet18", Mode: vf.Sprint},
			Request{Network: "resnet18", Mode: vf.LowPower, Delta: core.DisableWDS},
		)
	}
	return reqs
}

func TestServeListDeterministicAcrossWorkers(t *testing.T) {
	reqs := mixedList()
	var reports []string
	counts := []int{1, 2, runtime.GOMAXPROCS(0)}
	for _, workers := range counts {
		s := newTestServer(t, Options{Workers: workers})
		resps, err := s.ServeList(context.Background(), reqs)
		s.Close()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if st := s.Stats(); st.Compiles != 3 {
			t.Errorf("workers=%d: compiles = %d, want 3", workers, st.Compiles)
		}
		reports = append(reports, Render(reqs, resps))
	}
	for i := 1; i < len(reports); i++ {
		if reports[i] != reports[0] {
			t.Errorf("aggregate report for workers=%d differs from workers=%d:\n%s\n--- vs ---\n%s",
				counts[i], counts[0], reports[i], reports[0])
		}
	}
	// The report must carry the serving view and collapse repeats.
	if !strings.Contains(reports[0], "tok/s") || !strings.Contains(reports[0], "aggregate: 12 requests") {
		t.Errorf("report shape wrong:\n%s", reports[0])
	}
}

func TestSubmitErrors(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	// Unknown networks are rejected at admission: no compile runs and
	// no plan-cache slot is occupied, so a daemon fed arbitrary names
	// cannot be grown without bound.
	if _, err := s.Submit(context.Background(), Request{Network: "alexnet", Mode: vf.LowPower}); err == nil {
		t.Error("unknown network must error")
	}
	if st := s.Stats(); st.Compiles != 0 {
		t.Errorf("unknown network triggered %d compiles, want 0 (rejected before admission)", st.Compiles)
	}
	if _, err := s.Submit(context.Background(), Request{Network: "resnet18", Mode: vf.LowPower, Delta: 12}); err == nil {
		t.Error("non-pow2 delta must error before admission")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Submit(ctx, Request{Network: "resnet18", Mode: vf.LowPower}); err != context.Canceled {
		t.Errorf("cancelled ctx: err = %v, want context.Canceled", err)
	}
	s.Close()
	s.Close() // idempotent
	if _, err := s.Submit(context.Background(), Request{Network: "resnet18", Mode: vf.LowPower}); err != ErrClosed {
		t.Errorf("closed server: err = %v, want ErrClosed", err)
	}
}

func TestMetricsAndBatching(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	defer s.Close()
	if _, err := s.ServeList(context.Background(), mixedList()); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.Requests != 12 || m.Batches == 0 || m.MeanBatch < 1 {
		t.Errorf("metrics counters wrong: %+v", m)
	}
	if m.P50 <= 0 || m.P99 < m.P95 || m.P95 < m.P50 {
		t.Errorf("latency percentiles inconsistent: p50=%v p95=%v p99=%v", m.P50, m.P95, m.P99)
	}
	if m.ReqPerSec <= 0 {
		t.Errorf("req/s = %v", m.ReqPerSec)
	}
}

// TestSpatialSolverStatsThread: a served spatial request folds its
// mesh-solve accounting into the server counters; non-spatial traffic
// leaves them untouched.
func TestSpatialSolverStatsThread(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	defer s.Close()
	if _, err := s.Submit(context.Background(), Request{Network: "resnet18", Mode: vf.LowPower}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.SpatialSolves != 0 || st.SpatialSkips != 0 || st.SpatialVCycles != 0 || st.SpatialSaturated != 0 {
		t.Fatalf("analytic request moved the spatial counters: %+v", st)
	}
	req := Request{Network: "resnet18", Mode: vf.LowPower, Fidelity: sim.SpatialPDN,
		SpatialSkipMV: 30, SpatialAdaptive: true}
	if _, err := s.Submit(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.SpatialSolves == 0 || st.SpatialVCycles < st.SpatialSolves {
		t.Errorf("spatial request did not surface solver stats: %+v", st)
	}
	if st.SpatialSkips == 0 {
		t.Errorf("band-wide skip threshold served without skips: %+v", st)
	}
	m := s.Metrics()
	if m.SpatialSolves != st.SpatialSolves || m.SpatialSkips != st.SpatialSkips ||
		m.SpatialVCycles != st.SpatialVCycles || m.SpatialSaturated != st.SpatialSaturated {
		t.Errorf("Metrics spatial counters %+v diverge from Stats %+v", m.Stats, st)
	}
}

func TestTokensPerSecReference(t *testing.T) {
	if got := TokensPerSec(256); got != 17.5 {
		t.Errorf("TokensPerSec(256) = %v, want 17.5", got)
	}
	if got := TokensPerSec(512); got != 35 {
		t.Errorf("TokensPerSec(512) = %v, want 35", got)
	}
	if got := EnergyPerTokenMJ(17.5, 256); got != 1 {
		t.Errorf("EnergyPerTokenMJ(17.5, 256) = %v, want 1", got)
	}
	if got := EnergyPerTokenMJ(3, 0); got != 0 {
		t.Errorf("EnergyPerTokenMJ at zero TOPS = %v, want 0", got)
	}
}

// TestFidelitySharesPlanCache: the fidelity tier is a runtime knob —
// an analytic and a spatial request for the same deployment point hit
// one cached plan (one compile), and the tiers report different
// runtime behaviour off that shared artifact.
func TestFidelitySharesPlanCache(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	defer s.Close()
	base := Request{Network: "mobilenetv2", Mode: vf.LowPower}
	analytic, err := s.Submit(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	spatial := base
	spatial.Fidelity = sim.SpatialPDN
	spatialResp, err := s.Submit(context.Background(), spatial)
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Compiles != 1 {
		t.Errorf("compiles = %d, want 1 (fidelity must not fork the plan cache)", st.Compiles)
	}
	if st.PlanHits < 1 {
		t.Errorf("plan hits = %d, want >= 1", st.PlanHits)
	}
	a, b := analytic.Report.AIM.Result, spatialResp.Report.AIM.Result
	if a.AvgDropMV == b.AvgDropMV && a.Failures == b.Failures {
		t.Error("spatial tier should change runtime drop behaviour versus analytic")
	}
	if b.WorstDropMV <= 0 {
		t.Errorf("spatial tier reported empty drops: %+v", b)
	}
}

func TestPlanCacheDirSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	req := Request{Network: "resnet18", Mode: vf.LowPower}

	// First "process": compiles once, persists the plan to dir.
	s1 := newTestServer(t, Options{Workers: 2, PlanCacheDir: dir})
	first, err := s1.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	st1 := s1.Stats()
	if st1.Compiles != 1 || st1.DiskHits != 0 {
		t.Fatalf("cold process: compiles=%d diskHits=%d, want 1/0", st1.Compiles, st1.DiskHits)
	}
	s1.Close()

	// Second "process" sharing the store: the plan comes off disk —
	// zero compiles — and the served result is byte-identical.
	s2 := newTestServer(t, Options{Workers: 2, PlanCacheDir: dir})
	defer s2.Close()
	second, err := s2.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	st2 := s2.Stats()
	if st2.Compiles != 0 {
		t.Errorf("warm restart compiled %d plans, want 0 (plan should load from disk)", st2.Compiles)
	}
	if st2.DiskHits != 1 {
		t.Errorf("warm restart diskHits = %d, want 1", st2.DiskHits)
	}
	if !stageEqual(first.Report.Baseline, second.Report.Baseline) || !stageEqual(first.Report.AIM, second.Report.AIM) {
		t.Errorf("disk-loaded plan diverges from freshly compiled:\n  fresh=%+v\n  loaded=%+v",
			first.Report.AIM.Result, second.Report.AIM.Result)
	}
	// A third request on the restarted server is a pure memory hit.
	if _, err := s2.Submit(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.DiskHits != 1 || st.PlanHits != 1 {
		t.Errorf("after repeat: diskHits=%d planHits=%d, want 1/1", st.DiskHits, st.PlanHits)
	}
}

func TestPlanCacheDirUnopenable(t *testing.T) {
	// A plain file where the store directory should be must surface as
	// a construction error, not a silent in-memory fallback.
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{PlanCacheDir: file}); err == nil {
		t.Fatal("New with a file as plan-cache dir: want error, got nil")
	}
}
