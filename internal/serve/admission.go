package serve

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// This file is the admission layer: how requests enter the server.
// Submit applies the per-client rate limiter, then attempts a
// non-blocking enqueue into the bounded admission queue — a full queue
// sheds the request with an *OverloadError instead of queueing
// unbounded latency. The transport layer translates OverloadError into
// HTTP 429 + Retry-After.

// OverloadError refuses a request at admission: either the per-client
// rate limiter (RateLimited) or the bounded queue (shedding) said no.
// RetryAfter is the server's hint for when capacity should exist.
type OverloadError struct {
	// RetryAfter is how long the client should wait before retrying:
	// the time to the next token for a rate-limited request, an
	// estimate of the queue drain time for a shed one.
	RetryAfter time.Duration
	// RateLimited distinguishes the per-client limiter (true) from
	// queue-full load shedding (false).
	RateLimited bool
}

func (e *OverloadError) Error() string {
	if e.RateLimited {
		return fmt.Sprintf("serve: client rate limit exceeded (retry after %v)", e.RetryAfter)
	}
	return fmt.Sprintf("serve: overloaded, request shed (retry after %v)", e.RetryAfter)
}

// shedRetryAfter estimates when a shed request should retry: the
// smoothed recent admission-to-answer latency (which already includes
// queueing under load, so it tracks how long the backlog takes to
// move), clamped to [100ms, 5s] so a cold or idle server never
// advertises nonsense.
func (s *Server) shedRetryAfter() time.Duration {
	est := time.Duration(s.ewmaLatency.Load())
	if est < 100*time.Millisecond {
		est = 100 * time.Millisecond
	}
	if est > 5*time.Second {
		est = 5 * time.Second
	}
	return est
}

// observeLatency feeds one answered request's latency into the bounded
// percentile ring, the shed estimator's EWMA and the degradation
// ladder.
func (s *Server) observeLatency(lat time.Duration) {
	// EWMA with a 1/8 step: cheap, lock-free, good enough for a
	// Retry-After hint.
	for {
		old := s.ewmaLatency.Load()
		var next int64
		if old == 0 {
			next = int64(lat)
		} else {
			next = old + (int64(lat)-old)/8
		}
		if s.ewmaLatency.CompareAndSwap(old, next) {
			break
		}
	}
	s.ladder.observe(lat)
	s.mu.Lock()
	s.requests++
	if len(s.latencies) < latencyWindow {
		s.latencies = append(s.latencies, lat)
	} else {
		s.latencies[s.latHead] = lat
		s.latHead = (s.latHead + 1) % latencyWindow
	}
	s.mu.Unlock()
}

// Submit admits one request and blocks until its answer, ctx
// cancellation, or server close. The returned Report equals what a
// cold one-shot run of the same request computes; only the latency
// depends on load. A request the admission layer refuses — rate limit
// or full queue — fails fast with *OverloadError rather than waiting.
func (s *Server) Submit(ctx context.Context, req Request) (Response, error) {
	nr, key, err := req.normalize()
	if err != nil {
		return Response{}, err
	}
	if s.limiter != nil && nr.Client != "" {
		if ok, retry := s.limiter.allow(nr.Client); !ok {
			s.rateLimited.Add(1)
			return Response{}, &OverloadError{RetryAfter: retry, RateLimited: true}
		}
	}
	//aimlint:allow no-wallclock — enqueue timestamp feeds only the Latency metric and the EWMA Retry-After hint, never result bytes
	p := &pending{req: nr, key: key, reply: make(chan answer, 1), enq: time.Now()}
	select {
	case <-s.stop:
		return Response{}, ErrClosed
	default:
	}
	select {
	case s.admit <- p:
	default:
		// Bounded queue full: shed explicitly instead of blocking. The
		// client gets a Retry-After hint; latency for everyone already
		// admitted stays bounded.
		s.shed.Add(1)
		return Response{}, &OverloadError{RetryAfter: s.shedRetryAfter()}
	}
	finish := func(a answer) (Response, error) {
		if a.err != nil {
			return Response{}, a.err
		}
		a.resp.Latency = time.Since(p.enq) //aimlint:allow no-wallclock — queueing latency is wall-clock by definition; Render never reads it
		s.observeLatency(a.resp.Latency)
		return a.resp, nil
	}
	select {
	case a := <-p.reply:
		return finish(a)
	case <-s.stop:
		// The answer may have raced the close; prefer it.
		select {
		case a := <-p.reply:
			return finish(a)
		default:
		}
		return Response{}, ErrClosed
	case <-ctx.Done():
		select {
		case a := <-p.reply:
			return finish(a)
		default:
		}
		return Response{}, ctx.Err()
	}
}

// ServeList submits every request concurrently and returns the
// responses in request-list order — the deterministic merge the
// aggregate report renders from. The first error (in list order)
// is returned, if any.
func (s *Server) ServeList(ctx context.Context, reqs []Request) ([]Response, error) {
	resps := make([]Response, len(reqs))
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = s.Submit(ctx, reqs[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return resps, nil
}
