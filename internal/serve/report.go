package serve

import (
	"fmt"
	"strings"
)

// The paper motivates AIM with PIM chips serving language models
// (d-Matrix, Houmo). The Houmo MoMagic30 reference point — ~17.5
// tokens/s at the chip's nominal 256 TOPS — converts effective
// throughput into serving terms.
const (
	// HoumoTokensPerSec is the reference decoding rate at nominal
	// throughput.
	HoumoTokensPerSec = 17.5
	// nominalTOPS is the chip's sign-off throughput.
	nominalTOPS = 256
)

// TokensPerSec scales the Houmo reference point with effective TOPS.
func TokensPerSec(tops float64) float64 {
	return HoumoTokensPerSec * tops / nominalTOPS
}

// EnergyPerTokenMJ is the per-macro energy spent per generated token,
// in millijoules: average macro power over the token rate.
func EnergyPerTokenMJ(macroPowerMW, tops float64) float64 {
	t := TokensPerSec(tops)
	if t == 0 {
		return 0
	}
	return macroPowerMW / t
}

// Render produces the deterministic aggregate report for a served
// request list: identical requests collapse into one scenario row (in
// first-appearance order), followed by fleet totals. Only fields
// derived from the deterministic per-request Reports appear — never
// latencies, cache flags or wall-clock rates — so for a fixed seed and
// a fixed request list the bytes are identical no matter how many
// workers served it (the repository's parallelism contract; asserted
// by TestServeListDeterministicAcrossWorkers).
func Render(reqs []Request, resps []Response) string {
	if len(reqs) != len(resps) {
		panic(fmt.Sprintf("serve: %d requests for %d responses", len(reqs), len(resps)))
	}
	type row struct {
		req   Request
		count int
		resp  Response
	}
	byReq := make(map[Request]*row)
	var order []*row
	for i, r := range reqs {
		nr, _, err := r.normalize()
		if err != nil {
			nr = r
		}
		// The client identity never changes result bytes, so rows
		// collapse across clients.
		nr.Client = ""
		rw := byReq[nr]
		if rw == nil {
			rw = &row{req: nr, resp: resps[i]}
			byReq[nr] = rw
			order = append(order, rw)
		}
		rw.count++
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%5s  %-12s %-10s %3s %5s %8s  %11s %10s %8s %7s %8s\n",
		"reqs", "network", "mode", "δ", "β", "HR", "mitigation", "power(mW)", "TOPS", "tok/s", "mJ/tok")
	var totTok, totMJ float64
	var totReqs, totFail int
	for _, rw := range order {
		aim := rw.resp.Report.AIM.Result
		base := rw.resp.Report.Baseline
		tok := TokensPerSec(aim.TOPS)
		mj := EnergyPerTokenMJ(aim.AvgMacroPowerMW, aim.TOPS)
		fmt.Fprintf(&sb, "%5d  %-12s %-10s %3d %5d %4.3f→%.3f %10.1f%% %10.3f %8.0f %7.1f %8.3f\n",
			rw.count, rw.req.Network, rw.req.Mode, rw.req.Delta, rw.req.Beta,
			base.HR.Average, rw.resp.Report.AIM.HR.Average,
			100*rw.resp.Report.Mitigation(), aim.AvgMacroPowerMW, aim.TOPS, tok, mj)
		totTok += float64(rw.count) * tok
		totMJ += float64(rw.count) * mj
		totReqs += rw.count
		totFail += rw.count * aim.Failures
	}
	if totReqs > 0 {
		fmt.Fprintf(&sb, "aggregate: %d requests, %.1f tok/s mean, %.3f mJ/tok mean, %d IRFailures\n",
			totReqs, totTok/float64(totReqs), totMJ/float64(totReqs), totFail)
	}
	return sb.String()
}
