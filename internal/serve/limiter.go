package serve

import (
	"math"
	"sync"
	"time"
)

// limiter is the admission layer's per-client token bucket (the restic
// internal/limiter idiom, adapted from bytes-per-second to
// requests-per-second): each client identity owns a bucket holding up
// to burst tokens that refills at rate tokens per second, and every
// admitted request spends one. A client that has spent its bucket is
// refused with the time until the next token — never queued — so one
// chatty client cannot grow everyone else's latency.
type limiter struct {
	rate  float64 // tokens per second
	burst float64 // bucket depth
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

// bucket is one client's token balance, refilled lazily on access.
type bucket struct {
	tokens float64
	last   time.Time
}

// limiterMaxClients bounds the bucket map: a daemon fed arbitrary
// client identities must not grow memory without bound. Crossing the
// bound sweeps idle (fully refilled) clients — evicting an idle client
// is free, because a fresh bucket starts full anyway.
const limiterMaxClients = 4096

// newLimiter builds a limiter at rate requests/second with the given
// burst depth (0 = rate rounded up, minimum 1). Callers guarantee
// rate > 0; Options.Validate rejects everything else.
func newLimiter(rate float64, burst int) *limiter {
	b := float64(burst)
	if burst == 0 {
		b = math.Max(1, math.Ceil(rate))
	}
	//aimlint:allow no-wallclock — default for the injectable clock seam; token buckets refill in real time, tests inject a fake
	return &limiter{rate: rate, burst: b, now: time.Now, buckets: make(map[string]*bucket)}
}

// allow spends one token from client's bucket. When the bucket is
// empty it reports false and how long until a token is available — the
// Retry-After hint the transport layer surfaces.
func (l *limiter) allow(client string) (bool, time.Duration) {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	bk := l.buckets[client]
	if bk == nil {
		if len(l.buckets) >= limiterMaxClients {
			l.sweep(now)
		}
		bk = &bucket{tokens: l.burst, last: now}
		l.buckets[client] = bk
	} else {
		bk.tokens = math.Min(l.burst, bk.tokens+l.rate*now.Sub(bk.last).Seconds())
		bk.last = now
	}
	if bk.tokens >= 1 {
		bk.tokens--
		return true, 0
	}
	return false, time.Duration((1 - bk.tokens) / l.rate * float64(time.Second))
}

// sweep drops buckets that have refilled to full. Called with mu held.
func (l *limiter) sweep(now time.Time) {
	for c, bk := range l.buckets {
		if bk.tokens+l.rate*now.Sub(bk.last).Seconds() >= l.burst {
			delete(l.buckets, c)
		}
	}
}

// clients reports how many buckets are live (test hook).
func (l *limiter) clients() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}
