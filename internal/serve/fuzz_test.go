package serve

import (
	"testing"
)

// FuzzSubmitDecode throws arbitrary bytes at the HTTP request decoder
// and the admission validator behind it — the exact surface a public
// front door exposes. The invariant is the repo-wide one PRs 2–6 each
// re-learned at some input boundary: hostile input produces errors,
// never panics, and never reaches the compiler.
func FuzzSubmitDecode(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`{"network":"resnet18"}`,
		`{"network":"resnet18","mode":"sprint","beta":25,"bits":4,"delta":8,"seed":7,"parallel":2,"fidelity":"spatial","client":"alice"}`,
		`{"network":"gpt2","fidelity":"auto"}`,
		`{"network":"resnet18","delta":-1}`,
		`{"network":"alexnet"}`,
		`{"network":"resnet18","bits":40}`,
		`{"network":"resnet18","mode":"turbo"}`,
		`{"bogus":1}`,
		`{"network":"resnet18"} trailing`,
		`[{"network":"resnet18"}]`,
		`{"network":7}`,
		`{"seed":9223372036854775807,"network":"resnet18"}`,
		`{"network":"resnet18","parallel":-9000000}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodeSubmit(data)
		if err != nil {
			return
		}
		// A decoded request flows into admission validation; that must
		// not panic either, and a validated request must carry
		// canonical knobs.
		nr, key, err := req.normalize()
		if err != nil {
			return
		}
		if nr.Bits < 2 || nr.Bits > 16 || nr.Parallel < 1 || nr.Beta <= 0 || nr.Seed == 0 {
			t.Fatalf("normalize accepted non-canonical request %+v", nr)
		}
		if key.Network != nr.Network {
			t.Fatalf("key/network mismatch: %+v vs %+v", key, nr)
		}
	})
}
