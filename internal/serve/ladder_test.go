package serve

import (
	"testing"
	"time"

	"aim/internal/sim"
)

// feed pushes n latencies into the ladder, advancing the fake clock a
// little per observation so cooldowns can elapse.
func feed(l *ladder, clk *fakeClock, n int, lat time.Duration) {
	for i := 0; i < n; i++ {
		clk.advance(50 * time.Millisecond)
		l.observe(lat)
	}
}

func newTestLadder(target time.Duration) (*ladder, *fakeClock) {
	clk := newFakeClock()
	l := newLadder(target)
	l.now = clk.now
	return l, clk
}

func TestLadderStepsDownUnderOverloadAndBottomsOut(t *testing.T) {
	l, clk := newTestLadder(100 * time.Millisecond)
	if l.tier() != sim.SpatialPDN {
		t.Fatalf("fresh ladder tier = %v, want spatial", l.tier())
	}
	// Sustained p95 over target: spatial → packed.
	feed(l, clk, ladderMinSamples, 200*time.Millisecond)
	if l.tier() != sim.PackedToggles {
		t.Fatalf("after overload tier = %v, want packed", l.tier())
	}
	// Still over target after the window refills: packed → analytic.
	feed(l, clk, ladderMinSamples, 200*time.Millisecond)
	if l.tier() != sim.AnalyticToggles {
		t.Fatalf("after sustained overload tier = %v, want analytic", l.tier())
	}
	// The ladder has a floor: analytic never steps further down.
	feed(l, clk, ladderMinSamples, 200*time.Millisecond)
	if l.tier() != sim.AnalyticToggles {
		t.Fatalf("tier fell below the analytic floor: %v", l.tier())
	}
	if _, downs, ups := l.snapshot(); downs != 2 || ups != 0 {
		t.Errorf("steps = %d down / %d up, want 2/0", downs, ups)
	}
}

func TestLadderStepsBackUpWithHeadroom(t *testing.T) {
	l, clk := newTestLadder(100 * time.Millisecond)
	feed(l, clk, ladderMinSamples, 200*time.Millisecond) // → packed
	// Headroom returns: p95 under half the target steps back up.
	feed(l, clk, ladderMinSamples, 20*time.Millisecond)
	if l.tier() != sim.SpatialPDN {
		t.Fatalf("after recovery tier = %v, want spatial", l.tier())
	}
	// And the ceiling holds.
	feed(l, clk, ladderMinSamples, 20*time.Millisecond)
	if l.tier() != sim.SpatialPDN {
		t.Fatalf("tier rose above spatial: %v", l.tier())
	}
	if _, downs, ups := l.snapshot(); downs != 1 || ups != 1 {
		t.Errorf("steps = %d down / %d up, want 1/1", downs, ups)
	}
}

func TestLadderHysteresisBand(t *testing.T) {
	// Latencies between target/2 and target are in the dead band: no
	// steps either way, no flapping on the boundary.
	l, clk := newTestLadder(100 * time.Millisecond)
	feed(l, clk, 4*ladderMinSamples, 80*time.Millisecond)
	if l.tier() != sim.SpatialPDN {
		t.Errorf("dead-band latencies moved the ladder to %v", l.tier())
	}
	if _, downs, ups := l.snapshot(); downs != 0 || ups != 0 {
		t.Errorf("steps in the dead band: %d down / %d up", downs, ups)
	}
}

func TestLadderNeedsMinimumSamples(t *testing.T) {
	l, clk := newTestLadder(100 * time.Millisecond)
	feed(l, clk, ladderMinSamples-1, time.Second)
	if l.tier() != sim.SpatialPDN {
		t.Errorf("ladder stepped on %d samples (floor %d)", ladderMinSamples-1, ladderMinSamples)
	}
}

func TestLadderCooldownDampsSteps(t *testing.T) {
	l, clk := newTestLadder(100 * time.Millisecond)
	// Flood the window without advancing time past the cooldown: at
	// most one step may happen.
	for i := 0; i < 10*ladderWindow; i++ {
		l.observe(300 * time.Millisecond)
	}
	_ = clk
	if _, downs, _ := l.snapshot(); downs > 1 {
		t.Errorf("%d steps inside one cooldown window, want at most 1", downs)
	}
}

func TestLadderDisabled(t *testing.T) {
	l, _ := newTestLadder(0)
	for i := 0; i < 5*ladderWindow; i++ {
		l.observe(time.Hour)
	}
	if l.tier() != sim.SpatialPDN {
		t.Errorf("disabled ladder moved to %v, want spatial always", l.tier())
	}
}
