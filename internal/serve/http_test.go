package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"aim/internal/sim"
	"aim/internal/vf"
)

// post runs one POST /v1/submit through the handler.
func post(t *testing.T, h http.Handler, body string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/submit", strings.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

// decodeWire unmarshals a 200 submit answer.
func decodeWire(t *testing.T, rr *httptest.ResponseRecorder) wireResponse {
	t.Helper()
	var w wireResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &w); err != nil {
		t.Fatalf("bad response JSON: %v\n%s", err, rr.Body.String())
	}
	return w
}

// TestHTTPSubmitDecodeErrors: every malformed body is a 400 with a
// JSON error, never a panic and never a compile.
func TestHTTPSubmitDecodeErrors(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	defer s.Close()
	h := s.Handler()
	cases := []struct {
		name string
		body string
		want string // substring of the error message
	}{
		{name: "empty body", body: "", want: "bad request body"},
		{name: "invalid json", body: "{", want: "bad request body"},
		{name: "not an object", body: "[1,2]", want: "bad request body"},
		{name: "unknown field", body: `{"bogus": 1}`, want: "bad request body"},
		{name: "trailing garbage", body: `{"network":"resnet18"} {"x":1}`, want: "trailing data"},
		{name: "wrong field type", body: `{"network": 7}`, want: "bad request body"},
		{name: "bad mode", body: `{"network":"resnet18","mode":"turbo"}`, want: "unknown mode"},
		{name: "bad fidelity", body: `{"network":"resnet18","fidelity":"quantum"}`, want: "unknown fidelity"},
		{name: "unknown network", body: `{"network":"alexnet"}`, want: "unknown network"},
		{name: "bad bits", body: `{"network":"resnet18","bits":40}`, want: "out of range"},
		{name: "non-pow2 delta", body: `{"network":"resnet18","delta":12}`, want: "power of two"},
		{name: "negative parallel", body: `{"network":"resnet18","parallel":-2}`, want: "negative parallel"},
	}
	for _, c := range cases {
		rr := post(t, h, c.body, nil)
		if rr.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (body %s)", c.name, rr.Code, rr.Body.String())
			continue
		}
		var we wireError
		if err := json.Unmarshal(rr.Body.Bytes(), &we); err != nil {
			t.Errorf("%s: error body is not JSON: %s", c.name, rr.Body.String())
			continue
		}
		if !strings.Contains(we.Error, c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, we.Error, c.want)
		}
	}
	if st := s.Stats(); st.Compiles != 0 {
		t.Errorf("malformed requests triggered %d compiles, want 0", st.Compiles)
	}
}

func TestHTTPMethodAndSize(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	defer s.Close()
	h := s.Handler()

	req := httptest.NewRequest(http.MethodGet, "/v1/submit", nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/submit = %d, want 405", rr.Code)
	}

	big := `{"network":"` + strings.Repeat("x", maxRequestBody) + `"}`
	if rr := post(t, h, big, nil); rr.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body = %d, want 413", rr.Code)
	}

	req = httptest.NewRequest(http.MethodPost, "/v1/metrics", nil)
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/metrics = %d, want 405", rr.Code)
	}
}

// TestHTTPSubmitServes: a valid request round-trips, reports the
// served tier and matches the in-process Submit result.
func TestHTTPSubmitServes(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	defer s.Close()
	h := s.Handler()
	rr := post(t, h, `{"network":"resnet18","mode":"low-power"}`, nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rr.Code, rr.Body.String())
	}
	w := decodeWire(t, rr)
	if w.Network != "resnet18" || w.Mode != "low-power" || w.Fidelity != "analytic" {
		t.Errorf("wire identity wrong: %+v", w)
	}
	if w.PlanCached {
		t.Error("first request reported a cached plan")
	}
	// The HTTP path answers with exactly what in-process Submit
	// computes for the same request (serving equals one-shot).
	resp, err := s.Submit(context.Background(), Request{Network: "resnet18", Mode: vf.LowPower})
	if err != nil {
		t.Fatal(err)
	}
	aim := resp.Report.AIM.Result
	if w.TOPS != aim.TOPS || w.PowerMW != aim.AvgMacroPowerMW || w.Failures != aim.Failures {
		t.Errorf("HTTP result diverges from in-process Submit:\n  http=%+v\n  submit=%+v", w, aim)
	}
	if w.TokensPerSec != TokensPerSec(aim.TOPS) {
		t.Errorf("tokens/s = %v, want %v", w.TokensPerSec, TokensPerSec(aim.TOPS))
	}
}

// TestHTTPRateLimit429: the second request over a burst-1 bucket is a
// 429 with a Retry-After header, and the refusal is counted.
func TestHTTPRateLimit429(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, RatePerClient: 0.001, Burst: 1})
	defer s.Close()
	h := s.Handler()
	hdr := map[string]string{"X-AIM-Client": "alice"}
	if rr := post(t, h, `{"network":"resnet18"}`, hdr); rr.Code != http.StatusOK {
		t.Fatalf("first request = %d: %s", rr.Code, rr.Body.String())
	}
	rr := post(t, h, `{"network":"resnet18"}`, hdr)
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("second request = %d, want 429", rr.Code)
	}
	ra := rr.Header().Get("Retry-After")
	if ra == "" {
		t.Fatal("429 without a Retry-After header")
	}
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Errorf("Retry-After %q is not a positive integer of seconds", ra)
	}
	// A different client is not punished for Alice's spending.
	if rr := post(t, h, `{"network":"resnet18"}`, map[string]string{"X-AIM-Client": "bob"}); rr.Code != http.StatusOK {
		t.Errorf("bob's request = %d, want 200", rr.Code)
	}
	st := s.Stats()
	if st.RateLimited != 1 || st.Shed != 0 {
		t.Errorf("stats rateLimited=%d shed=%d, want 1/0", st.RateLimited, st.Shed)
	}
	m := s.Metrics()
	if m.ShedRate <= 0 || m.ShedRate >= 1 {
		t.Errorf("shed rate = %v, want in (0,1)", m.ShedRate)
	}
}

// shedServer builds an unstarted server whose admission queue is
// already full — the deterministic way to exercise the shedding path
// without racing real executors.
func shedServer(t *testing.T) *Server {
	t.Helper()
	s := &Server{
		opt:    Options{Workers: 1, MaxBatch: 1, Queue: 1},
		ladder: newLadder(0),
		admit:  make(chan *pending, 1),
		stop:   make(chan struct{}),
	}
	s.admit <- &pending{} // fill the bounded queue
	return s
}

// TestHTTPShed429: a full admission queue sheds with 429 +
// Retry-After instead of queueing unbounded latency.
func TestHTTPShed429(t *testing.T) {
	s := shedServer(t)
	rr := post(t, s.Handler(), `{"network":"resnet18"}`, nil)
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", rr.Code, rr.Body.String())
	}
	if ra := rr.Header().Get("Retry-After"); ra == "" {
		t.Error("shed response missing Retry-After")
	}
	var we wireError
	if err := json.Unmarshal(rr.Body.Bytes(), &we); err != nil || !strings.Contains(we.Error, "shed") {
		t.Errorf("shed error body: %s", rr.Body.String())
	}
	if got := s.shed.Load(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
}

// TestSubmitShedsWhenQueueFull: the same contract at the in-process
// boundary — *OverloadError, not a block.
func TestSubmitShedsWhenQueueFull(t *testing.T) {
	s := shedServer(t)
	start := time.Now()
	_, err := s.Submit(context.Background(), Request{Network: "resnet18", Mode: vf.LowPower})
	var ov *OverloadError
	if !errors.As(err, &ov) {
		t.Fatalf("err = %v, want *OverloadError", err)
	}
	if ov.RateLimited {
		t.Error("queue-full shed flagged as rate-limited")
	}
	if ov.RetryAfter < 100*time.Millisecond {
		t.Errorf("retry-after = %v, want >= 100ms floor", ov.RetryAfter)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Errorf("shed took %v — it must fail fast, not queue", waited)
	}
}

// TestHTTPGracefulDrain: in-flight requests complete, new ones are
// refused with 503, and healthz flips to draining.
func TestHTTPGracefulDrain(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	defer s.Close()
	h := s.Handler()

	// Start one real request and wait until it is provably in flight.
	var rr1 *httptest.ResponseRecorder
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rr1 = post(t, h, `{"network":"resnet18"}`, nil)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.httpInflight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}

	// Drain blocks until the in-flight request finished...
	s.Drain()
	if n := s.httpInflight.Load(); n != 0 {
		t.Fatalf("Drain returned with %d requests in flight", n)
	}
	wg.Wait()
	if rr1.Code != http.StatusOK {
		t.Errorf("in-flight request during drain = %d, want 200 (it must complete)", rr1.Code)
	}

	// ...and afterwards the front door refuses new work.
	rr := post(t, h, `{"network":"resnet18"}`, nil)
	if rr.Code != http.StatusServiceUnavailable {
		t.Errorf("post-drain submit = %d, want 503", rr.Code)
	}
	if ra := rr.Header().Get("Retry-After"); ra == "" {
		t.Error("post-drain 503 missing Retry-After")
	}
	hz := httptest.NewRecorder()
	h.ServeHTTP(hz, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	if hz.Code != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining = %d, want 503", hz.Code)
	}
	// In-process Submit is not gated by the HTTP drain: the server
	// still answers its own process until Close.
	if _, err := s.Submit(context.Background(), Request{Network: "resnet18", Mode: vf.LowPower}); err != nil {
		t.Errorf("in-process Submit after drain: %v", err)
	}
}

// TestHTTPRampLadderServesAllTiersFromOnePlan is the degradation-
// ladder acceptance test: one deployment point served at spatial,
// packed and analytic as the ladder steps — with exactly ONE compile,
// because fidelity is not in the plan key (the PR 5 design bet this
// stack cashes in).
func TestHTTPRampLadderServesAllTiersFromOnePlan(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, TargetP95: 50 * time.Millisecond})
	defer s.Close()
	h := s.Handler()
	body := `{"network":"resnet18","fidelity":"auto"}`

	serveAt := func(tier sim.Fidelity) wireResponse {
		t.Helper()
		s.ladder.mu.Lock()
		s.ladder.cur = tier
		s.ladder.mu.Unlock()
		rr := post(t, h, body, nil)
		if rr.Code != http.StatusOK {
			t.Fatalf("status at tier %v = %d: %s", tier, rr.Code, rr.Body.String())
		}
		return decodeWire(t, rr)
	}

	// Idle ladder: the top tier serves. Then force the ladder down the
	// two overload steps and back — the tier in the answer follows.
	if w := serveAt(sim.SpatialPDN); w.Fidelity != "spatial" {
		t.Errorf("idle tier = %q, want spatial", w.Fidelity)
	}
	if w := serveAt(sim.PackedToggles); w.Fidelity != "packed" {
		t.Errorf("overload tier = %q, want packed", w.Fidelity)
	}
	if w := serveAt(sim.AnalyticToggles); w.Fidelity != "analytic" {
		t.Errorf("deep-overload tier = %q, want analytic", w.Fidelity)
	}
	if w := serveAt(sim.SpatialPDN); w.Fidelity != "spatial" {
		t.Errorf("recovered tier = %q, want spatial", w.Fidelity)
	}

	st := s.Stats()
	if st.Compiles != 1 {
		t.Errorf("compiles = %d, want 1 — fidelity downgrades must be free plan-cache hits", st.Compiles)
	}
	if st.ServedSpatial != 2 || st.ServedPacked != 1 || st.ServedAnalytic != 1 {
		t.Errorf("per-tier served = %d/%d/%d (spatial/packed/analytic), want 2/1/1",
			st.ServedSpatial, st.ServedPacked, st.ServedAnalytic)
	}
	if st.PlanHits != 3 {
		t.Errorf("plan hits = %d, want 3", st.PlanHits)
	}
}

// TestHTTPMetricsEndpoint: the metrics document carries the serving
// counters, percentiles and the ladder position.
func TestHTTPMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, TargetP95: time.Second})
	defer s.Close()
	h := s.Handler()
	if rr := post(t, h, `{"network":"resnet18"}`, nil); rr.Code != http.StatusOK {
		t.Fatalf("submit = %d", rr.Code)
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/v1/metrics", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("metrics = %d", rr.Code)
	}
	var m wireMetrics
	if err := json.Unmarshal(rr.Body.Bytes(), &m); err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}
	if m.Requests != 1 || m.Compiles != 1 || m.Served.Analytic != 1 {
		t.Errorf("metrics counters: %+v", m)
	}
	if m.LadderTier != "spatial" {
		t.Errorf("ladder tier = %q, want spatial (idle)", m.LadderTier)
	}
	if m.P50MS <= 0 {
		t.Errorf("p50 = %v, want > 0", m.P50MS)
	}
}
