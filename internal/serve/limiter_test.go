package serve

import (
	"fmt"
	"testing"
	"time"
)

// fakeClock is an injectable clock for the limiter and ladder tests.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1700000000, 0)} }
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestLimiterBurstThenRate(t *testing.T) {
	clk := newFakeClock()
	l := newLimiter(2, 4) // 2 req/s, burst 4
	l.now = clk.now
	for i := 0; i < 4; i++ {
		if ok, _ := l.allow("alice"); !ok {
			t.Fatalf("burst request %d refused", i)
		}
	}
	ok, retry := l.allow("alice")
	if ok {
		t.Fatal("request over burst admitted")
	}
	// Empty bucket at 2 tokens/s: the next token is 500ms out.
	if retry != 500*time.Millisecond {
		t.Errorf("retry = %v, want 500ms", retry)
	}
	// Refill honors the rate: after 1s, exactly 2 more requests pass.
	clk.advance(time.Second)
	for i := 0; i < 2; i++ {
		if ok, _ := l.allow("alice"); !ok {
			t.Fatalf("refilled request %d refused", i)
		}
	}
	if ok, _ := l.allow("alice"); ok {
		t.Fatal("third request after a 1s refill at 2/s admitted")
	}
}

func TestLimiterClientsAreIndependent(t *testing.T) {
	clk := newFakeClock()
	l := newLimiter(1, 1)
	l.now = clk.now
	if ok, _ := l.allow("alice"); !ok {
		t.Fatal("alice's first request refused")
	}
	if ok, _ := l.allow("alice"); ok {
		t.Fatal("alice's second request admitted over burst 1")
	}
	// Bob's bucket is untouched by Alice's spending.
	if ok, _ := l.allow("bob"); !ok {
		t.Fatal("bob refused because alice was limited")
	}
}

func TestLimiterDefaultBurst(t *testing.T) {
	// Burst 0 defaults to the rate rounded up, minimum 1.
	if l := newLimiter(2.5, 0); l.burst != 3 {
		t.Errorf("burst for rate 2.5 = %v, want 3", l.burst)
	}
	if l := newLimiter(0.25, 0); l.burst != 1 {
		t.Errorf("burst for rate 0.25 = %v, want 1", l.burst)
	}
}

func TestLimiterRefillCapsAtBurst(t *testing.T) {
	clk := newFakeClock()
	l := newLimiter(10, 2)
	l.now = clk.now
	if ok, _ := l.allow("c"); !ok {
		t.Fatal("first request refused")
	}
	// An hour idle must not bank more than burst tokens.
	clk.advance(time.Hour)
	for i := 0; i < 2; i++ {
		if ok, _ := l.allow("c"); !ok {
			t.Fatalf("request %d after idle refused", i)
		}
	}
	if ok, _ := l.allow("c"); ok {
		t.Fatal("idle client banked more than burst")
	}
}

func TestLimiterSweepBoundsClients(t *testing.T) {
	clk := newFakeClock()
	l := newLimiter(1, 1)
	l.now = clk.now
	for i := 0; i < limiterMaxClients; i++ {
		l.allow(fmt.Sprintf("client-%d", i))
	}
	if got := l.clients(); got != limiterMaxClients {
		t.Fatalf("clients = %d, want %d", got, limiterMaxClients)
	}
	// All buckets refill to full over 1s at rate 1/burst 1; the next
	// new client triggers the sweep instead of unbounded growth.
	clk.advance(time.Second)
	if ok, _ := l.allow("one-more"); !ok {
		t.Fatal("new client refused")
	}
	if got := l.clients(); got != 1 {
		t.Errorf("clients after sweep = %d, want 1 (only the new client)", got)
	}
}
