package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"

	"aim/internal/sim"
	"aim/internal/vf"
)

// This file is the transport layer: the HTTP/JSON front door over the
// admission/scheduling/execution stack. It owns request decode and
// validation, per-client identification (the X-AIM-Client header, the
// body's client field, or the remote address — in that precedence),
// the HTTP spelling of admission refusals (429 + Retry-After) and the
// graceful drain gate. Everything below the decode is the same path
// in-process Submit calls take.

// maxRequestBody bounds a submit body; a valid request is a few
// hundred bytes, so anything near the cap is garbage.
const maxRequestBody = 1 << 20

// wireRequest is the JSON body of POST /v1/submit. Zero values mean
// defaults, mirroring Request.
type wireRequest struct {
	// Network is one of the zoo workloads (required).
	Network string `json:"network"`
	// Mode is "sprint" or "low-power" (default "low-power").
	Mode string `json:"mode"`
	// Beta, Bits, Delta, Seed, Parallel mirror Request: β horizon,
	// quantization width, WDS δ (-1 disables), RNG seed, per-request
	// wave pool.
	Beta     int   `json:"beta"`
	Bits     int   `json:"bits"`
	Delta    int   `json:"delta"`
	Seed     int64 `json:"seed"`
	Parallel int   `json:"parallel"`
	// Fidelity is "analytic" (default), "packed", "spatial", or
	// "auto" — auto opts into the SLO degradation ladder, which picks
	// the tier at execution time.
	Fidelity string `json:"fidelity"`
	// SpatialWindow, SpatialSkipMV and SpatialAdaptive mirror the
	// Request knobs of the same names: the spatial tier's solve
	// cadence, window-skip threshold in mV, and adaptive cadence.
	SpatialWindow   int     `json:"spatial_window"`
	SpatialSkipMV   float64 `json:"spatial_skip_mv"`
	SpatialAdaptive bool    `json:"spatial_adaptive"`
	// Client names the submitting client for per-client rate limiting.
	// The X-AIM-Client header takes precedence; with neither set the
	// remote address identifies the client.
	Client string `json:"client"`
}

// wireResponse is the JSON answer of POST /v1/submit.
type wireResponse struct {
	Network string `json:"network"`
	Mode    string `json:"mode"`
	// Fidelity is the tier that actually served the request (under
	// "auto" this is the ladder's choice).
	Fidelity   string  `json:"fidelity"`
	PlanCached bool    `json:"plan_cached"`
	LatencyMS  float64 `json:"latency_ms"`
	// The deterministic report fields, mirroring the public Result.
	HRBaseline       float64 `json:"hr_baseline"`
	HROptimized      float64 `json:"hr_optimized"`
	MitigationPct    float64 `json:"mitigation_pct"`
	PowerMW          float64 `json:"power_mw"`
	TOPS             float64 `json:"tops"`
	TokensPerSec     float64 `json:"tokens_per_sec"`
	EnergyPerTokenMJ float64 `json:"energy_per_token_mj"`
	Failures         int     `json:"failures"`
}

// wireError is every non-200 body.
type wireError struct {
	Error string `json:"error"`
}

// decodeSubmit parses a submit body into a Request. Unknown fields,
// trailing garbage, bad modes and bad fidelity spellings are errors —
// the fuzz target FuzzSubmitDecode pins that no input panics.
func decodeSubmit(body []byte) (Request, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var w wireRequest
	if err := dec.Decode(&w); err != nil {
		return Request{}, fmt.Errorf("serve: bad request body: %w", err)
	}
	if dec.More() {
		return Request{}, errors.New("serve: bad request body: trailing data after JSON object")
	}
	req := Request{
		Network:         w.Network,
		Beta:            w.Beta,
		Bits:            w.Bits,
		Delta:           w.Delta,
		Seed:            w.Seed,
		Parallel:        w.Parallel,
		SpatialWindow:   w.SpatialWindow,
		SpatialSkipMV:   w.SpatialSkipMV,
		SpatialAdaptive: w.SpatialAdaptive,
		Client:          w.Client,
	}
	switch w.Mode {
	case "", vf.LowPower.String():
		req.Mode = vf.LowPower
	case vf.Sprint.String():
		req.Mode = vf.Sprint
	default:
		return Request{}, fmt.Errorf("serve: unknown mode %q (want %q or %q)", w.Mode, vf.Sprint, vf.LowPower)
	}
	if w.Fidelity == "auto" {
		req.AdaptFidelity = true
	} else {
		fid, err := sim.ParseFidelity(w.Fidelity)
		if err != nil {
			return Request{}, fmt.Errorf("serve: %w (or \"auto\" for the degradation ladder)", err)
		}
		req.Fidelity = fid
	}
	return req, nil
}

// Handler returns the HTTP front door:
//
//	POST /v1/submit   serve one request (JSON in, JSON out)
//	GET  /v1/metrics  load-dependent serving metrics
//	GET  /v1/healthz  liveness; 503 once draining
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/submit", s.handleSubmit)
	mux.HandleFunc("/v1/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	return mux
}

// Drain closes the front door for new HTTP requests (503 +
// Retry-After) and blocks until every in-flight HTTP request has been
// answered. In-process Submit calls are not gated — a drained server
// still serves its own load generator — so the shutdown order is
// Drain, then Close.
func (s *Server) Drain() {
	s.draining.Store(true)
	s.inflight.Wait()
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	// Register in-flight before the drain check: either this request
	// sees the gate closed and bails, or Drain waits for it.
	s.inflight.Add(1)
	s.httpInflight.Add(1)
	defer func() {
		s.httpInflight.Add(-1)
		s.inflight.Done()
	}()
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body over %d bytes", maxRequestBody))
			return
		}
		writeError(w, http.StatusBadRequest, "unreadable request body")
		return
	}
	req, err := decodeSubmit(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if h := r.Header.Get("X-AIM-Client"); h != "" {
		req.Client = h
	}
	if req.Client == "" {
		req.Client = remoteClient(r)
	}
	resp, err := s.Submit(r.Context(), req)
	if err != nil {
		var ov *OverloadError
		switch {
		case errors.As(err, &ov):
			w.Header().Set("Retry-After", retryAfterSeconds(ov.RetryAfter))
			writeError(w, http.StatusTooManyRequests, err.Error())
		case errors.Is(err, ErrClosed):
			writeError(w, http.StatusServiceUnavailable, err.Error())
		case r.Context().Err() != nil:
			// The client went away; the status is for the log line.
			writeError(w, http.StatusServiceUnavailable, err.Error())
		default:
			// Everything else is a validation refusal from normalize.
			writeError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	aim := resp.Report.AIM.Result
	writeJSON(w, http.StatusOK, wireResponse{
		Network:          req.Network,
		Mode:             req.Mode.String(),
		Fidelity:         resp.Tier.String(),
		PlanCached:       resp.PlanCached,
		LatencyMS:        float64(resp.Latency) / float64(time.Millisecond),
		HRBaseline:       resp.Report.Baseline.HR.Average,
		HROptimized:      resp.Report.AIM.HR.Average,
		MitigationPct:    100 * resp.Report.Mitigation(),
		PowerMW:          aim.AvgMacroPowerMW,
		TOPS:             aim.TOPS,
		TokensPerSec:     TokensPerSec(aim.TOPS),
		EnergyPerTokenMJ: EnergyPerTokenMJ(aim.AvgMacroPowerMW, aim.TOPS),
		Failures:         aim.Failures,
	})
}

// wireMetrics is the JSON shape of GET /v1/metrics.
type wireMetrics struct {
	Requests    int64   `json:"requests"`
	Compiles    int64   `json:"compiles"`
	PlanHits    int64   `json:"plan_hits"`
	DiskHits    int64   `json:"disk_hits"`
	Batches     int64   `json:"batches"`
	MeanBatch   float64 `json:"mean_batch"`
	Shed        int64   `json:"shed"`
	RateLimited int64   `json:"rate_limited"`
	ShedRate    float64 `json:"shed_rate"`
	ReqPerSec   float64 `json:"req_per_sec"`
	P50MS       float64 `json:"p50_ms"`
	P95MS       float64 `json:"p95_ms"`
	P99MS       float64 `json:"p99_ms"`
	Served      struct {
		Analytic int64 `json:"analytic"`
		Packed   int64 `json:"packed"`
		Spatial  int64 `json:"spatial"`
	} `json:"served_by_tier"`
	SpatialSolver struct {
		Solves    int64 `json:"solves"`
		Skips     int64 `json:"skips"`
		VCycles   int64 `json:"v_cycles"`
		Saturated int64 `json:"saturated"`
	} `json:"spatial_solver"`
	LadderTier  string `json:"ladder_tier"`
	LadderDowns int64  `json:"ladder_downs"`
	LadderUps   int64  `json:"ladder_ups"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	m := s.Metrics()
	wm := wireMetrics{
		Requests:    m.Requests,
		Compiles:    m.Compiles,
		PlanHits:    m.PlanHits,
		DiskHits:    m.DiskHits,
		Batches:     m.Batches,
		MeanBatch:   m.MeanBatch,
		Shed:        m.Shed,
		RateLimited: m.RateLimited,
		ShedRate:    m.ShedRate,
		ReqPerSec:   m.ReqPerSec,
		P50MS:       float64(m.P50) / float64(time.Millisecond),
		P95MS:       float64(m.P95) / float64(time.Millisecond),
		P99MS:       float64(m.P99) / float64(time.Millisecond),
		LadderTier:  m.LadderTier,
		LadderDowns: m.LadderDowns,
		LadderUps:   m.LadderUps,
	}
	wm.Served.Analytic = m.ServedAnalytic
	wm.Served.Packed = m.ServedPacked
	wm.Served.Spatial = m.ServedSpatial
	wm.SpatialSolver.Solves = m.SpatialSolves
	wm.SpatialSolver.Skips = m.SpatialSkips
	wm.SpatialSolver.VCycles = m.SpatialVCycles
	wm.SpatialSolver.Saturated = m.SpatialSaturated
	writeJSON(w, http.StatusOK, wm)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// remoteClient is the fallback client identity: the host half of the
// remote address, so every connection from one machine shares a
// bucket.
func remoteClient(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// retryAfterSeconds renders a Retry-After header value: whole seconds,
// rounded up, at least 1 (the header has no sub-second spelling).
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	// The value is one of this file's wire structs; encoding cannot
	// fail, and the connection failing mid-write is the client's
	// problem.
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, wireError{Error: msg})
}
