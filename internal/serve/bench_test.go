package serve

import (
	"context"
	"testing"

	"aim/internal/vf"
)

// benchReq is the reference serving point the perf trajectory tracks:
// the smallest zoo network, low-power mode, default knobs.
func benchReq() Request { return Request{Network: "resnet18", Mode: vf.LowPower} }

// BenchmarkServeColdCompile is the cost every one-shot aim.Run pays:
// a fresh server (empty plan cache) compiling and executing one
// request. The plan-cache acceptance bar compares this against
// BenchmarkServeCachedRequest (≥ 5× required; see BENCH_serve.json).
func BenchmarkServeColdCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New(Options{Workers: 1})
		if _, err := s.Submit(context.Background(), benchReq()); err != nil {
			b.Fatal(err)
		}
		s.Close()
	}
}

// BenchmarkServeCachedRequest is the amortized serving cost: the same
// request answered from a warm plan cache, paying only the runtime
// Execute phase.
func BenchmarkServeCachedRequest(b *testing.B) {
	s := New(Options{Workers: 1})
	defer s.Close()
	if _, err := s.Submit(context.Background(), benchReq()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Submit(context.Background(), benchReq()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeBatchedThroughput serves the 12-request mixed list
// (three plans, repeats interleaved) against a warm cache over the
// full executor pool — the batched steady state of the closed loop.
func BenchmarkServeBatchedThroughput(b *testing.B) {
	s := New(Options{})
	defer s.Close()
	reqs := mixedList()
	if _, err := s.ServeList(context.Background(), reqs); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ServeList(context.Background(), reqs); err != nil {
			b.Fatal(err)
		}
	}
}
