package serve

import (
	"context"
	"testing"

	"aim/internal/vf"
)

// benchReq is the reference serving point the perf trajectory tracks:
// the smallest zoo network, low-power mode, default knobs.
func benchReq() Request { return Request{Network: "resnet18", Mode: vf.LowPower} }

// BenchmarkServeColdCompile is the cost every one-shot aim.Run pays:
// a fresh server (empty plan cache) compiling and executing one
// request. The plan-cache acceptance bar compares this against
// BenchmarkServeCachedRequest (≥ 5× required; see BENCH_serve.json).
func BenchmarkServeColdCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := newTestServer(b, Options{Workers: 1})
		if _, err := s.Submit(context.Background(), benchReq()); err != nil {
			b.Fatal(err)
		}
		s.Close()
	}
}

// BenchmarkServeCachedRequest is the amortized serving cost: the same
// request answered from a warm plan cache, paying only the runtime
// Execute phase.
func BenchmarkServeCachedRequest(b *testing.B) {
	s := newTestServer(b, Options{Workers: 1})
	defer s.Close()
	if _, err := s.Submit(context.Background(), benchReq()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Submit(context.Background(), benchReq()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeBatchedThroughput serves the 12-request mixed list
// (three plans, repeats interleaved) against a warm cache over the
// full executor pool — the batched steady state of the closed loop.
func BenchmarkServeBatchedThroughput(b *testing.B) {
	s := newTestServer(b, Options{})
	defer s.Close()
	reqs := mixedList()
	if _, err := s.ServeList(context.Background(), reqs); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ServeList(context.Background(), reqs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeRestartWarmDisk simulates a process restart against a
// warm persistent plan store: each iteration constructs a fresh server
// (empty in-memory caches, as after a crash or deploy) pointed at a
// directory already holding the compiled plan, and serves one request.
// The plan is read and decoded off disk instead of compiled — the cost
// this benchmark exists to pin is the gap between this and
// BenchmarkServeColdCompile (must be ≥ 5x faster) and the overhead
// over BenchmarkServeCachedRequest (must stay within 10x; see
// BENCH_planstore.json).
func BenchmarkServeRestartWarmDisk(b *testing.B) {
	dir := b.TempDir()
	warm := newTestServer(b, Options{Workers: 1, PlanCacheDir: dir})
	if _, err := warm.Submit(context.Background(), benchReq()); err != nil {
		b.Fatal(err)
	}
	warm.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := newTestServer(b, Options{Workers: 1, PlanCacheDir: dir})
		if _, err := s.Submit(context.Background(), benchReq()); err != nil {
			b.Fatal(err)
		}
		s.Close()
	}
	b.StopTimer()
	// Guard that the loop measured the disk-load path, not a recompile:
	// one more restart must hit the store and never the compiler.
	check := newTestServer(b, Options{Workers: 1, PlanCacheDir: dir})
	defer check.Close()
	if _, err := check.Submit(context.Background(), benchReq()); err != nil {
		b.Fatal(err)
	}
	if st := check.Stats(); st.Compiles != 0 || st.DiskHits != 1 {
		b.Fatalf("restart measured the wrong path: compiles=%d diskHits=%d, want 0/1", st.Compiles, st.DiskHits)
	}
}
