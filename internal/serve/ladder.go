package serve

import (
	"sort"
	"sync"
	"time"

	"aim/internal/sim"
)

// ladder is the scheduling layer's SLO-driven fidelity degradation
// ladder. It watches a sliding window of admission-to-answer latencies
// and holds a current fidelity tier for requests that opted in
// (Request.AdaptFidelity): SpatialPDN when the p95 sits comfortably
// under the SLO target, stepping down through PackedToggles to
// AnalyticToggles as overload pushes p95 over the target, and stepping
// back up when headroom returns (p95 under half the target).
//
// The ladder trades fidelity for latency, never correctness: PR 5 kept
// fidelity out of the plan key, so a tier change is a free plan-cache
// hit — zero extra compiles — and the bytes a given tier produces for
// a given request never change. Only *which* tier serves is
// load-dependent, which is why adaptive requests sit outside the
// bit-identical serving contract (and why Response.Tier reports the
// tier used).
//
// Steps are damped three ways: a minimum sample count before any
// decision, a cooldown between steps, and a window reset on each step
// so the new tier is judged on its own latencies, not the old tier's.
type ladder struct {
	target time.Duration
	now    func() time.Time // injectable clock (tests)

	mu         sync.Mutex
	cur        sim.Fidelity
	window     []time.Duration
	head       int
	last       time.Time // time of the last step
	downs, ups int64
}

const (
	// ladderWindow is the sliding latency window the p95 is computed
	// over: small enough to react within a few dozen requests, large
	// enough that one straggler is not a regime change.
	ladderWindow = 64
	// ladderMinSamples is how many latencies a fresh window needs
	// before the ladder will step at all.
	ladderMinSamples = 24
	// ladderUpFraction of the target is the step-up threshold: p95
	// must fall under target/2 before fidelity is raised, giving the
	// hysteresis band that keeps the ladder from flapping on the
	// boundary.
	ladderUpFraction = 0.5
)

// newLadder builds the ladder for an SLO target; target 0 disables it
// (adaptive requests then always serve the top tier).
func newLadder(target time.Duration) *ladder {
	return &ladder{
		target: target,
		now:    time.Now, //aimlint:allow no-wallclock — default for the injectable clock seam; the SLO ladder steps on real p95, tests inject a fake
		cur:    sim.SpatialPDN,
		window: make([]time.Duration, 0, ladderWindow),
	}
}

// cooldown is the minimum time between steps: long enough for the new
// tier's latencies to dominate the refilled window.
func (l *ladder) cooldown() time.Duration {
	if c := 4 * l.target; c > 250*time.Millisecond {
		return c
	}
	return 250 * time.Millisecond
}

// tier is the fidelity the ladder currently serves adaptive requests
// at.
func (l *ladder) tier() sim.Fidelity {
	if l.target == 0 {
		return sim.SpatialPDN
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cur
}

// observe feeds one answered request's latency and steps the ladder
// when the windowed p95 crosses a threshold (subject to the sample
// floor and the cooldown).
func (l *ladder) observe(lat time.Duration) {
	if l.target == 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.window) < ladderWindow {
		l.window = append(l.window, lat)
	} else {
		l.window[l.head] = lat
		l.head = (l.head + 1) % ladderWindow
	}
	if len(l.window) < ladderMinSamples {
		return
	}
	now := l.now()
	if now.Sub(l.last) < l.cooldown() {
		return
	}
	sorted := append([]time.Duration(nil), l.window...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	p95 := percentile(sorted, 0.95)
	switch {
	case p95 > l.target && l.cur > sim.AnalyticToggles:
		l.cur--
		l.downs++
		l.reset(now)
	case p95 <= time.Duration(float64(l.target)*ladderUpFraction) && l.cur < sim.SpatialPDN:
		l.cur++
		l.ups++
		l.reset(now)
	}
}

// reset clears the window after a step so the next decision is made on
// the new tier's latencies. Called with mu held.
func (l *ladder) reset(now time.Time) {
	l.window = l.window[:0]
	l.head = 0
	l.last = now
}

// snapshot reports the current tier and the step counters.
func (l *ladder) snapshot() (tier sim.Fidelity, downs, ups int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cur, l.downs, l.ups
}
