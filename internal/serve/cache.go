// Package serve is the compile-once/serve-many runtime (the paper's
// d-Matrix/Houmo serving scenario, §1/§6.8): a concurrency-safe plan
// cache keyed by everything the offline compiler consumes, an
// admission queue with a batch former grouping concurrent requests by
// plan, and an executor pool running compiled plans over warm
// simulator state. Repeated requests for one deployment point
// amortize the expensive offline phase (LHR proximal tuning, WDS,
// HR-aware mapping SA) to zero; per-request results are identical to a
// cold one-shot run.
package serve

import (
	"sync"
	"sync/atomic"

	"aim/internal/core"
	"aim/internal/planstore"
)

// Key identifies one compiled plan: exactly the inputs the offline
// phase consumes. Runtime knobs (β, worker counts, warm state) are
// deliberately absent — they vary per request without recompiling.
type Key struct {
	// Network is the zoo workload name.
	Network string
	// Mode is the operating policy (its string form keeps the key
	// printable and comparable).
	Mode string
	// Bits is the quantization width.
	Bits int
	// Delta is the canonical WDS δ (0 = disabled).
	Delta int
	// Seed drives every stochastic component of the compilation.
	Seed int64
}

// storeKey maps the cache key onto the persistent store's key — the
// same five fields; the store adds the code-version generation to the
// content hash on its side.
func (k Key) storeKey() planstore.Key {
	return planstore.Key{Network: k.Network, Mode: k.Mode, Bits: k.Bits, Delta: k.Delta, Seed: k.Seed}
}

// entry is one singleflight cache slot.
type entry struct {
	once sync.Once
	plan *core.Plan
	err  error
}

// Cache is the shared, concurrency-safe plan cache. Lookups for a
// missing key compile exactly once no matter how many goroutines ask
// concurrently: late arrivals block on the winner's singleflight entry
// instead of stampeding the compiler. Failed compilations (unknown
// network) are cached too — the error is deterministic.
//
// With a persistent store attached (see NewCacheWithStore) the cache
// is the top of a three-level hierarchy: the singleflight map, then
// the store's decoded-plan LRU, then its on-disk backend. The store is
// consulted inside the singleflight slot, so a fleet replica
// restarting against a warm disk pays one read+decode per key instead
// of one compile — and a corrupt or stale entry silently degrades to
// the compile path.
type Cache struct {
	mu       sync.Mutex
	entries  map[Key]*entry
	store    *planstore.Store
	compiles atomic.Int64
	hits     atomic.Int64
	diskHits atomic.Int64
}

// NewCache returns an empty cache with no persistence.
func NewCache() *Cache { return &Cache{entries: make(map[Key]*entry)} }

// NewCacheWithStore returns a cache backed by a persistent plan store
// (nil store behaves like NewCache).
func NewCacheWithStore(store *planstore.Store) *Cache {
	return &Cache{entries: make(map[Key]*entry), store: store}
}

// Plan returns the plan for k, invoking compile at most once per key
// across all callers. hit reports whether the key was already present
// (compiled, loaded or in flight) when the call arrived.
func (c *Cache) Plan(k Key, compile func() (*core.Plan, error)) (plan *core.Plan, hit bool, err error) {
	c.mu.Lock()
	e, ok := c.entries[k]
	if !ok {
		e = &entry{}
		c.entries[k] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		if c.store != nil {
			if p, ok := c.store.Get(k.storeKey()); ok {
				c.diskHits.Add(1)
				e.plan = p
				return
			}
		}
		c.compiles.Add(1)
		e.plan, e.err = compile()
		if e.err == nil && c.store != nil {
			// Best-effort persistence: an encode failure would mean an
			// inconsistent plan, which the compiler cannot produce, and
			// a write failure is already counted by the store. Serving
			// proceeds from memory either way.
			_ = c.store.Put(k.storeKey(), e.plan)
		}
	})
	if ok {
		c.hits.Add(1)
	}
	return e.plan, ok, e.err
}

// Compiles returns how many compilations ran (one per distinct key).
func (c *Cache) Compiles() int64 { return c.compiles.Load() }

// Hits returns how many lookups found an existing entry.
func (c *Cache) Hits() int64 { return c.hits.Load() }

// DiskHits returns how many singleflight slots were answered by the
// persistent store instead of the compiler.
func (c *Cache) DiskHits() int64 { return c.diskHits.Load() }

// Len returns the number of cached plans (including in-flight ones).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
