// Package serve is the compile-once/serve-many runtime (the paper's
// d-Matrix/Houmo serving scenario, §1/§6.8): a concurrency-safe plan
// cache keyed by everything the offline compiler consumes, an
// admission queue with a batch former grouping concurrent requests by
// plan, and an executor pool running compiled plans over warm
// simulator state. Repeated requests for one deployment point
// amortize the expensive offline phase (LHR proximal tuning, WDS,
// HR-aware mapping SA) to zero; per-request results are identical to a
// cold one-shot run.
package serve

import (
	"sync"
	"sync/atomic"

	"aim/internal/core"
)

// Key identifies one compiled plan: exactly the inputs the offline
// phase consumes. Runtime knobs (β, worker counts, warm state) are
// deliberately absent — they vary per request without recompiling.
type Key struct {
	// Network is the zoo workload name.
	Network string
	// Mode is the operating policy (its string form keeps the key
	// printable and comparable).
	Mode string
	// Bits is the quantization width.
	Bits int
	// Delta is the canonical WDS δ (0 = disabled).
	Delta int
	// Seed drives every stochastic component of the compilation.
	Seed int64
}

// entry is one singleflight cache slot.
type entry struct {
	once sync.Once
	plan *core.Plan
	err  error
}

// Cache is the shared, concurrency-safe plan cache. Lookups for a
// missing key compile exactly once no matter how many goroutines ask
// concurrently: late arrivals block on the winner's singleflight entry
// instead of stampeding the compiler. Failed compilations (unknown
// network) are cached too — the error is deterministic.
type Cache struct {
	mu       sync.Mutex
	entries  map[Key]*entry
	compiles atomic.Int64
	hits     atomic.Int64
}

// NewCache returns an empty cache.
func NewCache() *Cache { return &Cache{entries: make(map[Key]*entry)} }

// Plan returns the plan for k, invoking compile at most once per key
// across all callers. hit reports whether the key was already present
// (compiled or in flight) when the call arrived.
func (c *Cache) Plan(k Key, compile func() (*core.Plan, error)) (plan *core.Plan, hit bool, err error) {
	c.mu.Lock()
	e, ok := c.entries[k]
	if !ok {
		e = &entry{}
		c.entries[k] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		c.compiles.Add(1)
		e.plan, e.err = compile()
	})
	if ok {
		c.hits.Add(1)
	}
	return e.plan, ok, e.err
}

// Compiles returns how many compilations ran (one per distinct key).
func (c *Cache) Compiles() int64 { return c.compiles.Load() }

// Hits returns how many lookups found an existing entry.
func (c *Cache) Hits() int64 { return c.hits.Load() }

// Len returns the number of cached plans (including in-flight ones).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
