// Package serve is the compile-once/serve-many runtime (the paper's
// d-Matrix/Houmo serving scenario, §1/§6.8), structured as four
// explicit layers:
//
//	transport  (http.go)       HTTP/JSON front door: decode/validate,
//	                           per-client identification, graceful drain
//	admission  (admission.go)  per-client token-bucket rate limiting and
//	                           a bounded queue with explicit load-shedding
//	scheduling (scheduling.go, batch former grouping admitted requests by
//	            ladder.go)     plan, plus the SLO-driven fidelity
//	                           degradation ladder
//	execution  (execution.go)  executor pool running compiled plans over
//	                           warm simulator state
//
// A concurrency-safe plan cache keyed by everything the offline
// compiler consumes sits under the execution layer, so repeated
// requests for one deployment point amortize the expensive offline
// phase (LHR proximal tuning, WDS, HR-aware mapping SA) to zero.
// Per-request results are identical to a cold one-shot run; the
// degradation ladder only ever changes *which* fidelity tier serves a
// request, never the bytes a given tier produces.
package serve

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"aim/internal/core"
	"aim/internal/model"
	"aim/internal/planstore"
	"aim/internal/sim"
	"aim/internal/vf"
)

// ZooSeed is the fixed seed the evaluation zoo's synthetic weights are
// generated from (the same reference point aim.Run uses), so one
// network name always denotes one set of weights.
const ZooSeed = 2025

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("serve: server closed")

// Request selects one serving job: a workload and a deployment point.
// The zero value of every knob means "default"; Delta follows the
// public API convention (0 = default δ, core.DisableWDS = WDS off).
type Request struct {
	// Network is one of the zoo workloads.
	Network string
	// Mode is the operating policy (sprint or low-power).
	Mode vf.Mode
	// Beta is IR-Booster's stability horizon in cycles (runtime knob,
	// default 50; not part of the plan key).
	Beta int
	// Bits is the quantization width (default 8, range 2..16).
	Bits int
	// Delta is the WDS δ: 0 means the default 16, core.DisableWDS
	// disables the pass, anything else must be a power of two.
	Delta int
	// Seed drives every stochastic component (default 1).
	Seed int64
	// Parallel bounds the per-request wave-sharding pool (default 1:
	// a serving fleet gets its parallelism from concurrent requests,
	// not intra-request sharding). Results are bit-identical for any
	// value; negative values are rejected.
	Parallel int
	// Fidelity selects the simulator's modelling tier (runtime knob,
	// default sim.AnalyticToggles; NOT part of the plan key — plans
	// compile identically at every tier, so one cached plan serves
	// analytic, packed and spatial requests alike). Unknown values are
	// rejected at admission.
	Fidelity sim.Fidelity
	// SpatialWindow, SpatialSkipMV and SpatialAdaptive tune the
	// SpatialPDN tier's solve cadence and incremental-solve gates
	// (runtime knobs, NOT part of the plan key; zero values are the
	// reference behaviour — fixed DefaultSpatialWindow cadence, no
	// window skipping). Negative or non-finite values are rejected at
	// admission. They only matter for requests that execute at the
	// spatial tier; results remain bit-identical across worker counts
	// at any setting.
	SpatialWindow   int
	SpatialSkipMV   float64
	SpatialAdaptive bool
	// AdaptFidelity hands the tier choice to the scheduling layer's
	// SLO degradation ladder: the request serves at whatever tier the
	// ladder holds when its batch executes (SpatialPDN when idle,
	// stepping down under overload), overriding Fidelity. The served
	// tier is reported in Response.Tier. Which tier serves depends on
	// load — but the bytes a given tier produces never change.
	AdaptFidelity bool
	// Client identifies the submitting client to the admission layer's
	// per-client rate limiter (the HTTP transport fills it from the
	// X-AIM-Client header or the remote address). Empty means no
	// client identity: such requests are never rate-limited. Client is
	// not part of the plan key and never affects results.
	Client string
}

// normalize applies defaults, validates the compile-relevant knobs and
// derives the plan key. The returned Request has canonical fields
// (Delta is the actual δ, 0 = disabled).
func (r Request) normalize() (Request, Key, error) {
	// Reject unknown networks at admission: a daemon fed arbitrary
	// names must not grow one negative plan-cache entry per typo.
	if !model.ValidName(r.Network) {
		return r, Key{}, fmt.Errorf("serve: unknown network %q (want one of %v)", r.Network, model.Names())
	}
	if r.Mode != vf.Sprint && r.Mode != vf.LowPower {
		return r, Key{}, fmt.Errorf("serve: unknown mode %d", int(r.Mode))
	}
	if r.Beta <= 0 {
		r.Beta = 50
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Bits == 0 {
		r.Bits = 8
	}
	if r.Bits < 2 || r.Bits > 16 {
		return r, Key{}, fmt.Errorf("serve: bits %d out of range [2,16]", r.Bits)
	}
	if r.Parallel == 0 {
		r.Parallel = 1
	}
	if r.Parallel < 0 {
		return r, Key{}, fmt.Errorf("serve: negative parallel %d", r.Parallel)
	}
	if !r.Fidelity.Valid() {
		return r, Key{}, fmt.Errorf("serve: unknown fidelity %d (want %v, %v or %v)",
			int(r.Fidelity), sim.AnalyticToggles, sim.PackedToggles, sim.SpatialPDN)
	}
	if r.SpatialWindow < 0 {
		return r, Key{}, fmt.Errorf("serve: negative spatial window %d (0 = default)", r.SpatialWindow)
	}
	if r.SpatialSkipMV < 0 || math.IsNaN(r.SpatialSkipMV) || math.IsInf(r.SpatialSkipMV, 0) {
		return r, Key{}, fmt.Errorf("serve: spatial skip threshold %v mV (want a finite value >= 0)", r.SpatialSkipMV)
	}
	d, err := core.ResolveWDSDelta(r.Delta)
	if err != nil {
		return r, Key{}, fmt.Errorf("serve: %w", err)
	}
	r.Delta = d
	key := Key{Network: r.Network, Mode: r.Mode.String(), Bits: r.Bits, Delta: d, Seed: r.Seed}
	return r, key, nil
}

// Response answers one request.
type Response struct {
	// Report is the full before/after comparison. For a fixed request
	// it is deterministic: identical to what a cold one-shot run
	// returns, no matter how the server batched or parallelized.
	Report core.Report
	// Tier is the fidelity tier that actually served the request:
	// Request.Fidelity, unless AdaptFidelity let the degradation
	// ladder choose.
	Tier sim.Fidelity
	// PlanCached reports whether the plan already existed when the
	// request's batch executed (scheduling-dependent; excluded from
	// the deterministic aggregate report).
	PlanCached bool
	// Latency is admission-to-answer wall time (non-deterministic).
	Latency time.Duration
}

// Options configures a Server. Zero values select defaults; invalid
// values (negative depths, rates or targets) are rejected by Validate
// at construction — never silently clamped.
type Options struct {
	// Workers is the executor pool size (default GOMAXPROCS): how many
	// plan batches run concurrently.
	Workers int
	// MaxBatch bounds how many queued requests the batch former drains
	// into one admission round (default 64).
	MaxBatch int
	// Queue is the admission queue depth (default 256). When the queue
	// is full, Submit sheds the request with an *OverloadError instead
	// of queueing unbounded latency.
	Queue int
	// PlanCacheDir, when non-empty, backs the plan cache with a
	// persistent content-addressed store at that directory
	// (internal/planstore): compiled plans are written through to disk
	// and a restarted or additional replica loads them instead of
	// recompiling. Empty keeps the historical in-process-only cache.
	PlanCacheDir string
	// RatePerClient, when positive, enforces a token-bucket limit of
	// that many requests per second per client identity
	// (Request.Client); requests over the limit are refused with an
	// *OverloadError carrying a Retry-After hint. Zero disables the
	// limiter. Requests with an empty Client are never rate-limited.
	RatePerClient float64
	// Burst is the token-bucket depth (default: RatePerClient rounded
	// up, minimum 1): how many back-to-back requests one client may
	// issue before the steady rate applies. Requires RatePerClient.
	Burst int
	// TargetP95 enables the SLO-driven fidelity degradation ladder:
	// when the recent p95 admission-to-answer latency exceeds the
	// target, requests with AdaptFidelity step down one fidelity tier
	// (SpatialPDN → PackedToggles → AnalyticToggles); when p95 falls
	// back under half the target, they step back up. Zero disables the
	// ladder — adaptive requests then always serve the top tier.
	TargetP95 time.Duration
	// planStore, when non-nil, backs the plan cache with this exact
	// store instead of opening PlanCacheDir — the seam the
	// fault-injection tests use to run the full serving stack over a
	// misbehaving backend. Unexported on purpose: production callers
	// configure persistence through PlanCacheDir only.
	planStore *planstore.Store
}

// Validate rejects option values that cannot mean anything: negative
// pool sizes, queue depths, rate limits or SLO targets, and a burst
// without a rate. Zero values are valid and select defaults.
func (o Options) Validate() error {
	if o.Workers < 0 {
		return fmt.Errorf("serve: negative workers %d (0 = one per CPU)", o.Workers)
	}
	if o.MaxBatch < 0 {
		return fmt.Errorf("serve: negative max batch %d (0 = default 64)", o.MaxBatch)
	}
	if o.Queue < 0 {
		return fmt.Errorf("serve: negative queue depth %d (0 = default 256)", o.Queue)
	}
	if o.RatePerClient < 0 {
		return fmt.Errorf("serve: negative per-client rate %g (0 = unlimited)", o.RatePerClient)
	}
	if math.IsNaN(o.RatePerClient) || math.IsInf(o.RatePerClient, 0) {
		return fmt.Errorf("serve: non-finite per-client rate %g", o.RatePerClient)
	}
	if o.Burst < 0 {
		return fmt.Errorf("serve: negative rate-limit burst %d", o.Burst)
	}
	if o.Burst > 0 && o.RatePerClient == 0 {
		return fmt.Errorf("serve: rate-limit burst %d without a per-client rate", o.Burst)
	}
	if o.TargetP95 < 0 {
		return fmt.Errorf("serve: negative SLO target %v (0 = ladder disabled)", o.TargetP95)
	}
	return nil
}

// pending is one admitted request waiting for its answer.
type pending struct {
	req   Request
	key   Key
	reply chan answer
	enq   time.Time
}

type answer struct {
	resp Response
	err  error
}

// batch is one plan's worth of an admission round.
type batch struct {
	key  Key
	reqs []*pending
}

// Server is the layered serving runtime. Submit admits a request
// through the admission layer (rate limit, bounded queue with
// shedding), the scheduling layer's batch former groups concurrent
// admissions by plan key and its degradation ladder picks the fidelity
// tier for adaptive requests, and the execution layer's pool runs each
// batch against the shared plan cache, reusing warm simulator state.
// The transport layer (Handler) puts an HTTP/JSON front door on the
// same path.
type Server struct {
	opt     Options
	cache   *Cache
	warm    *sim.WarmState
	limiter *limiter // nil: no per-client rate limiting
	ladder  *ladder
	admit   chan *pending
	exec    chan *batch
	stop    chan struct{}
	once    sync.Once
	wg      sync.WaitGroup

	// Transport state: the drain gate and the in-flight HTTP request
	// tracker (see http.go). httpInflight mirrors the WaitGroup as an
	// observable count.
	draining     atomic.Bool
	inflight     sync.WaitGroup
	httpInflight atomic.Int64

	// Admission counters and the shed Retry-After estimator.
	shed        atomic.Int64
	rateLimited atomic.Int64
	ewmaLatency atomic.Int64 // nanoseconds; exponential moving average

	// Execution counters: requests served per fidelity tier, and the
	// spatial tier's mesh-solve work accumulated across every executed
	// stage — what makes the cost of the ladder's fidelity decisions
	// observable from /v1/metrics.
	served           [3]atomic.Int64
	spatialSolves    atomic.Int64
	spatialSkips     atomic.Int64
	spatialVCycles   atomic.Int64
	spatialSaturated atomic.Int64

	mu       sync.Mutex
	requests int64
	batches  int64
	batched  int64
	// latencies is a bounded ring of the most recent answers — a
	// long-lived daemon must not retain one sample per request
	// forever. latHead is the next write slot once the ring is full.
	latencies []time.Duration
	latHead   int
	started   time.Time
}

// latencyWindow bounds the percentile ring: large enough that p99 is
// meaningful, small enough that a daemon's memory stays flat.
const latencyWindow = 4096

// New validates the options, then starts a server and its goroutines;
// callers must Close it. It fails on invalid options or when a
// requested plan-cache directory cannot be opened.
func New(opt Options) (*Server, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if opt.Workers == 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	if opt.MaxBatch == 0 {
		opt.MaxBatch = 64
	}
	if opt.Queue == 0 {
		opt.Queue = 256
	}
	cache := NewCache()
	switch {
	case opt.planStore != nil:
		cache = NewCacheWithStore(opt.planStore)
	case opt.PlanCacheDir != "":
		store, err := planstore.Open(opt.PlanCacheDir)
		if err != nil {
			return nil, err
		}
		cache = NewCacheWithStore(store)
	}
	s := &Server{
		opt:     opt,
		cache:   cache,
		warm:    sim.NewWarmState(),
		ladder:  newLadder(opt.TargetP95),
		admit:   make(chan *pending, opt.Queue),
		exec:    make(chan *batch, opt.Queue),
		stop:    make(chan struct{}),
		started: time.Now(), //aimlint:allow no-wallclock — server start time anchors the req/s metric only; Render output never reads it
	}
	if opt.RatePerClient > 0 {
		s.limiter = newLimiter(opt.RatePerClient, opt.Burst)
	}
	s.wg.Add(1 + opt.Workers)
	go s.former()
	for i := 0; i < opt.Workers; i++ {
		go s.executor()
	}
	return s, nil
}

// Close stops the server: formed batches finish, requests still in the
// admission queue are answered with ErrClosed. Idempotent.
func (s *Server) Close() {
	s.once.Do(func() { close(s.stop) })
	s.wg.Wait()
}

// pipelineFor configures a core pipeline from a normalized request.
// Compile-relevant fields mirror the plan key; runtime knobs ride
// along per request.
func (s *Server) pipelineFor(r Request) *core.Pipeline {
	p := core.NewPipeline(r.Mode)
	p.Seed = r.Seed
	p.Beta = r.Beta
	p.Bits = r.Bits
	p.WDSDelta = r.Delta
	p.Parallel = r.Parallel
	p.Fidelity = r.Fidelity
	p.SpatialWindow = r.SpatialWindow
	p.SpatialSkipMV = r.SpatialSkipMV
	p.SpatialAdaptive = r.SpatialAdaptive
	p.Warm = s.warm
	return p
}

// Stats are the server's cumulative counters.
type Stats struct {
	// Requests counts answered requests.
	Requests int64
	// Compiles counts plan compilations (one per distinct key).
	Compiles int64
	// PlanHits counts cache lookups answered by an existing entry.
	PlanHits int64
	// DiskHits counts plans loaded from the persistent store instead
	// of compiled (always 0 without Options.PlanCacheDir).
	DiskHits int64
	// Batches counts batches formed; MeanBatch is requests per batch.
	Batches   int64
	MeanBatch float64
	// Shed counts requests refused because the admission queue was
	// full; RateLimited counts requests refused by the per-client
	// limiter. Both are answered with *OverloadError (HTTP 429).
	Shed        int64
	RateLimited int64
	// ServedAnalytic/ServedPacked/ServedSpatial count answered
	// requests per fidelity tier actually served — under the
	// degradation ladder one deployment point spreads across tiers
	// without recompiling.
	ServedAnalytic, ServedPacked, ServedSpatial int64
	// SpatialSolves/SpatialSkips/SpatialVCycles count the spatial
	// tier's mesh-solve work across all served requests: solves run,
	// windows answered from a held field, and total V-cycles.
	// SpatialSaturated counts solves that exhausted their iteration
	// budget without converging — nonzero means the tier is quietly
	// losing accuracy and aimcheck's bench validation flags it.
	SpatialSolves, SpatialSkips, SpatialVCycles, SpatialSaturated int64
}

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Requests:         s.requests,
		Compiles:         s.cache.Compiles(),
		PlanHits:         s.cache.Hits(),
		DiskHits:         s.cache.DiskHits(),
		Batches:          s.batches,
		Shed:             s.shed.Load(),
		RateLimited:      s.rateLimited.Load(),
		ServedAnalytic:   s.served[sim.AnalyticToggles].Load(),
		ServedPacked:     s.served[sim.PackedToggles].Load(),
		ServedSpatial:    s.served[sim.SpatialPDN].Load(),
		SpatialSolves:    s.spatialSolves.Load(),
		SpatialSkips:     s.spatialSkips.Load(),
		SpatialVCycles:   s.spatialVCycles.Load(),
		SpatialSaturated: s.spatialSaturated.Load(),
	}
	if s.batches > 0 {
		st.MeanBatch = float64(s.batched) / float64(s.batches)
	}
	return st
}

// Metrics summarizes served traffic: wall-clock rate, latency
// percentiles, shed rate and the ladder position. Unlike the
// per-request Reports these depend on load and scheduling, so they are
// reported beside — never inside — the deterministic aggregate (see
// Render).
type Metrics struct {
	Stats
	// Wall is the time since the server started.
	Wall time.Duration
	// ReqPerSec is Requests / Wall.
	ReqPerSec float64
	// P50/P95/P99 are admission-to-answer latency percentiles over
	// the most recent window of answers (bounded; see latencyWindow).
	P50, P95, P99 time.Duration
	// ShedRate is the fraction of arrivals refused at admission:
	// (Shed + RateLimited) / (Requests + Shed + RateLimited).
	ShedRate float64
	// LadderTier is the degradation ladder's current tier;
	// LadderDowns/LadderUps count its steps so far.
	LadderTier             string
	LadderDowns, LadderUps int64
}

// Metrics snapshots the timing view.
func (s *Server) Metrics() Metrics {
	st := s.Stats()
	s.mu.Lock()
	lat := append([]time.Duration(nil), s.latencies...)
	started := s.started
	s.mu.Unlock()
	m := Metrics{Stats: st, Wall: time.Since(started)} //aimlint:allow no-wallclock — Metrics is the wall-clock view, deliberately separate from the deterministic Render
	if m.Wall > 0 {
		m.ReqPerSec = float64(st.Requests) / m.Wall.Seconds()
	}
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		m.P50 = percentile(lat, 0.50)
		m.P95 = percentile(lat, 0.95)
		m.P99 = percentile(lat, 0.99)
	}
	if refused := st.Shed + st.RateLimited; refused > 0 {
		m.ShedRate = float64(refused) / float64(st.Requests+refused)
	}
	tier, downs, ups := s.ladder.snapshot()
	m.LadderTier = tier.String()
	m.LadderDowns, m.LadderUps = downs, ups
	return m
}

// percentile returns the q-quantile of sorted latencies (nearest-rank).
func percentile(sorted []time.Duration, q float64) time.Duration {
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
