package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"aim/internal/core"
	"aim/internal/model"
	"aim/internal/planstore"
	"aim/internal/sim"
	"aim/internal/vf"
)

// ZooSeed is the fixed seed the evaluation zoo's synthetic weights are
// generated from (the same reference point aim.Run uses), so one
// network name always denotes one set of weights.
const ZooSeed = 2025

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("serve: server closed")

// Request selects one serving job: a workload and a deployment point.
// The zero value of every knob means "default"; Delta follows the
// public API convention (0 = default δ, core.DisableWDS = WDS off).
type Request struct {
	// Network is one of the zoo workloads.
	Network string
	// Mode is the operating policy (sprint or low-power).
	Mode vf.Mode
	// Beta is IR-Booster's stability horizon in cycles (runtime knob,
	// default 50; not part of the plan key).
	Beta int
	// Bits is the quantization width (default 8, range 2..16).
	Bits int
	// Delta is the WDS δ: 0 means the default 16, core.DisableWDS
	// disables the pass, anything else must be a power of two.
	Delta int
	// Seed drives every stochastic component (default 1).
	Seed int64
	// Parallel bounds the per-request wave-sharding pool (default 1:
	// a serving fleet gets its parallelism from concurrent requests,
	// not intra-request sharding). Results are bit-identical for any
	// value; negative values are rejected.
	Parallel int
	// Fidelity selects the simulator's modelling tier (runtime knob,
	// default sim.AnalyticToggles; NOT part of the plan key — plans
	// compile identically at every tier, so one cached plan serves
	// analytic, packed and spatial requests alike). Unknown values are
	// rejected at admission.
	Fidelity sim.Fidelity
}

// normalize applies defaults, validates the compile-relevant knobs and
// derives the plan key. The returned Request has canonical fields
// (Delta is the actual δ, 0 = disabled).
func (r Request) normalize() (Request, Key, error) {
	// Reject unknown networks at admission: a daemon fed arbitrary
	// names must not grow one negative plan-cache entry per typo.
	if !model.ValidName(r.Network) {
		return r, Key{}, fmt.Errorf("serve: unknown network %q (want one of %v)", r.Network, model.Names())
	}
	if r.Mode != vf.Sprint && r.Mode != vf.LowPower {
		return r, Key{}, fmt.Errorf("serve: unknown mode %d", int(r.Mode))
	}
	if r.Beta <= 0 {
		r.Beta = 50
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Bits == 0 {
		r.Bits = 8
	}
	if r.Bits < 2 || r.Bits > 16 {
		return r, Key{}, fmt.Errorf("serve: bits %d out of range [2,16]", r.Bits)
	}
	if r.Parallel == 0 {
		r.Parallel = 1
	}
	if r.Parallel < 0 {
		return r, Key{}, fmt.Errorf("serve: negative parallel %d", r.Parallel)
	}
	if !r.Fidelity.Valid() {
		return r, Key{}, fmt.Errorf("serve: unknown fidelity %d (want %v, %v or %v)",
			int(r.Fidelity), sim.AnalyticToggles, sim.PackedToggles, sim.SpatialPDN)
	}
	d, err := core.ResolveWDSDelta(r.Delta)
	if err != nil {
		return r, Key{}, fmt.Errorf("serve: %w", err)
	}
	r.Delta = d
	key := Key{Network: r.Network, Mode: r.Mode.String(), Bits: r.Bits, Delta: d, Seed: r.Seed}
	return r, key, nil
}

// Response answers one request.
type Response struct {
	// Report is the full before/after comparison. For a fixed request
	// it is deterministic: identical to what a cold one-shot run
	// returns, no matter how the server batched or parallelized.
	Report core.Report
	// PlanCached reports whether the plan already existed when the
	// request's batch executed (scheduling-dependent; excluded from
	// the deterministic aggregate report).
	PlanCached bool
	// Latency is admission-to-answer wall time (non-deterministic).
	Latency time.Duration
}

// Options configures a Server.
type Options struct {
	// Workers is the executor pool size (default GOMAXPROCS): how many
	// plan batches run concurrently.
	Workers int
	// MaxBatch bounds how many queued requests the batch former drains
	// into one admission round (default 64).
	MaxBatch int
	// Queue is the admission queue depth (default 256).
	Queue int
	// PlanCacheDir, when non-empty, backs the plan cache with a
	// persistent content-addressed store at that directory
	// (internal/planstore): compiled plans are written through to disk
	// and a restarted or additional replica loads them instead of
	// recompiling. Empty keeps the historical in-process-only cache.
	PlanCacheDir string
}

// pending is one admitted request waiting for its answer.
type pending struct {
	req   Request
	key   Key
	reply chan answer
	enq   time.Time
}

type answer struct {
	resp Response
	err  error
}

// batch is one plan's worth of an admission round.
type batch struct {
	key  Key
	reqs []*pending
}

// Server is the compile-once serving runtime: Submit admits a request
// into the queue, the batch former groups concurrent admissions by
// plan key, and the executor pool runs each batch against the shared
// plan cache, reusing warm simulator state between requests.
type Server struct {
	opt   Options
	cache *Cache
	warm  *sim.WarmState
	admit chan *pending
	exec  chan *batch
	stop  chan struct{}
	once  sync.Once
	wg    sync.WaitGroup

	mu       sync.Mutex
	requests int64
	batches  int64
	batched  int64
	// latencies is a bounded ring of the most recent answers — a
	// long-lived daemon must not retain one sample per request
	// forever. latHead is the next write slot once the ring is full.
	latencies []time.Duration
	latHead   int
	started   time.Time
}

// latencyWindow bounds the percentile ring: large enough that p99 is
// meaningful, small enough that a daemon's memory stays flat.
const latencyWindow = 4096

// New starts a server and its goroutines; callers must Close it. It
// fails only when a requested plan-cache directory cannot be opened —
// a server without persistence never errors.
func New(opt Options) (*Server, error) {
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	if opt.MaxBatch <= 0 {
		opt.MaxBatch = 64
	}
	if opt.Queue <= 0 {
		opt.Queue = 256
	}
	cache := NewCache()
	if opt.PlanCacheDir != "" {
		store, err := planstore.Open(opt.PlanCacheDir)
		if err != nil {
			return nil, err
		}
		cache = NewCacheWithStore(store)
	}
	s := &Server{
		opt:     opt,
		cache:   cache,
		warm:    sim.NewWarmState(),
		admit:   make(chan *pending, opt.Queue),
		exec:    make(chan *batch, opt.Queue),
		stop:    make(chan struct{}),
		started: time.Now(),
	}
	s.wg.Add(1 + opt.Workers)
	go s.former()
	for i := 0; i < opt.Workers; i++ {
		go s.executor()
	}
	return s, nil
}

// Close stops the server: formed batches finish, requests still in the
// admission queue are answered with ErrClosed. Idempotent.
func (s *Server) Close() {
	s.once.Do(func() { close(s.stop) })
	s.wg.Wait()
}

// former is the admission loop: it blocks for the first pending
// request, drains whatever else is already queued (up to MaxBatch),
// groups the round by plan key in arrival order, and hands the batches
// to the executor pool.
func (s *Server) former() {
	defer s.wg.Done()
	defer close(s.exec)
	for {
		var first *pending
		select {
		case first = <-s.admit:
		case <-s.stop:
			return
		}
		round := []*pending{first}
	drain:
		for len(round) < s.opt.MaxBatch {
			select {
			case p := <-s.admit:
				round = append(round, p)
			default:
				break drain
			}
		}
		byKey := make(map[Key]*batch)
		var order []*batch
		for _, p := range round {
			b := byKey[p.key]
			if b == nil {
				b = &batch{key: p.key}
				byKey[p.key] = b
				order = append(order, b)
			}
			b.reqs = append(b.reqs, p)
		}
		for _, b := range order {
			select {
			case s.exec <- b:
			case <-s.stop:
				return
			}
		}
	}
}

// executor runs batches: one cache lookup (compiling at most once per
// key across the fleet), then the batch's requests back to back so the
// plan and the warm scratch stay hot.
func (s *Server) executor() {
	defer s.wg.Done()
	for b := range s.exec {
		s.mu.Lock()
		s.batches++
		s.batched += int64(len(b.reqs))
		s.mu.Unlock()
		plan, hit, err := s.cache.Plan(b.key, func() (*core.Plan, error) {
			net, err := model.ByName(b.key.Network, ZooSeed)
			if err != nil {
				return nil, err
			}
			return s.pipelineFor(b.reqs[0].req).Compile(net), nil
		})
		for _, p := range b.reqs {
			if err != nil {
				p.reply <- answer{err: err}
				continue
			}
			rep := s.pipelineFor(p.req).Execute(plan)
			p.reply <- answer{resp: Response{Report: rep, PlanCached: hit}}
		}
	}
}

// pipelineFor configures a core pipeline from a normalized request.
// Compile-relevant fields mirror the plan key; runtime knobs ride
// along per request.
func (s *Server) pipelineFor(r Request) *core.Pipeline {
	p := core.NewPipeline(r.Mode)
	p.Seed = r.Seed
	p.Beta = r.Beta
	p.Bits = r.Bits
	p.WDSDelta = r.Delta
	p.Parallel = r.Parallel
	p.Fidelity = r.Fidelity
	p.Warm = s.warm
	return p
}

// Submit admits one request and blocks until its answer, ctx
// cancellation, or server close. The returned Report equals what a
// cold one-shot run of the same request computes; only the latency
// depends on load.
func (s *Server) Submit(ctx context.Context, req Request) (Response, error) {
	nr, key, err := req.normalize()
	if err != nil {
		return Response{}, err
	}
	p := &pending{req: nr, key: key, reply: make(chan answer, 1), enq: time.Now()}
	select {
	case s.admit <- p:
	case <-s.stop:
		return Response{}, ErrClosed
	case <-ctx.Done():
		return Response{}, ctx.Err()
	}
	finish := func(a answer) (Response, error) {
		if a.err != nil {
			return Response{}, a.err
		}
		a.resp.Latency = time.Since(p.enq)
		s.mu.Lock()
		s.requests++
		if len(s.latencies) < latencyWindow {
			s.latencies = append(s.latencies, a.resp.Latency)
		} else {
			s.latencies[s.latHead] = a.resp.Latency
			s.latHead = (s.latHead + 1) % latencyWindow
		}
		s.mu.Unlock()
		return a.resp, nil
	}
	select {
	case a := <-p.reply:
		return finish(a)
	case <-s.stop:
		// The answer may have raced the close; prefer it.
		select {
		case a := <-p.reply:
			return finish(a)
		default:
		}
		return Response{}, ErrClosed
	case <-ctx.Done():
		select {
		case a := <-p.reply:
			return finish(a)
		default:
		}
		return Response{}, ctx.Err()
	}
}

// ServeList submits every request concurrently and returns the
// responses in request-list order — the deterministic merge the
// aggregate report renders from. The first error (in list order)
// is returned, if any.
func (s *Server) ServeList(ctx context.Context, reqs []Request) ([]Response, error) {
	resps := make([]Response, len(reqs))
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = s.Submit(ctx, reqs[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return resps, nil
}

// Stats are the server's cumulative counters.
type Stats struct {
	// Requests counts answered requests.
	Requests int64
	// Compiles counts plan compilations (one per distinct key).
	Compiles int64
	// PlanHits counts cache lookups answered by an existing entry.
	PlanHits int64
	// DiskHits counts plans loaded from the persistent store instead
	// of compiled (always 0 without Options.PlanCacheDir).
	DiskHits int64
	// Batches counts batches formed; MeanBatch is requests per batch.
	Batches   int64
	MeanBatch float64
}

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Requests: s.requests,
		Compiles: s.cache.Compiles(),
		PlanHits: s.cache.Hits(),
		DiskHits: s.cache.DiskHits(),
		Batches:  s.batches,
	}
	if s.batches > 0 {
		st.MeanBatch = float64(s.batched) / float64(s.batches)
	}
	return st
}

// Metrics summarizes served traffic: wall-clock rate and latency
// percentiles. Unlike the per-request Reports these depend on load and
// scheduling, so they are reported beside — never inside — the
// deterministic aggregate (see Render).
type Metrics struct {
	Stats
	// Wall is the time since the server started.
	Wall time.Duration
	// ReqPerSec is Requests / Wall.
	ReqPerSec float64
	// P50/P95/P99 are admission-to-answer latency percentiles over
	// the most recent window of answers (bounded; see latencyWindow).
	P50, P95, P99 time.Duration
}

// Metrics snapshots the timing view.
func (s *Server) Metrics() Metrics {
	st := s.Stats()
	s.mu.Lock()
	lat := append([]time.Duration(nil), s.latencies...)
	started := s.started
	s.mu.Unlock()
	m := Metrics{Stats: st, Wall: time.Since(started)}
	if m.Wall > 0 {
		m.ReqPerSec = float64(st.Requests) / m.Wall.Seconds()
	}
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		m.P50 = percentile(lat, 0.50)
		m.P95 = percentile(lat, 0.95)
		m.P99 = percentile(lat, 0.99)
	}
	return m
}

// percentile returns the q-quantile of sorted latencies (nearest-rank).
func percentile(sorted []time.Duration, q float64) time.Duration {
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
