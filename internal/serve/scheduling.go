package serve

// This file is the scheduling layer's batch former: it blocks for the
// first pending request, drains whatever else is already queued (up to
// MaxBatch), groups the round by plan key in arrival order, and hands
// the batches to the execution layer. The layer's other half — the
// SLO-driven fidelity degradation ladder — lives in ladder.go.

// former is the admission-queue drain loop.
func (s *Server) former() {
	defer s.wg.Done()
	defer close(s.exec)
	for {
		var first *pending
		select {
		case first = <-s.admit:
		case <-s.stop:
			return
		}
		round := []*pending{first}
	drain:
		for len(round) < s.opt.MaxBatch {
			select {
			case p := <-s.admit:
				round = append(round, p)
			default:
				break drain
			}
		}
		byKey := make(map[Key]*batch)
		var order []*batch
		for _, p := range round {
			b := byKey[p.key]
			if b == nil {
				b = &batch{key: p.key}
				byKey[p.key] = b
				order = append(order, b)
			}
			b.reqs = append(b.reqs, p)
		}
		for _, b := range order {
			select {
			case s.exec <- b:
			case <-s.stop:
				return
			}
		}
	}
}
