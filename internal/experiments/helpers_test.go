package experiments

import (
	"math"
	"testing"
)

func TestPearsonKnown(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if r := pearson(x, []float64{2, 4, 6, 8}); math.Abs(r-1) > 1e-12 {
		t.Errorf("perfect positive correlation = %v", r)
	}
	if r := pearson(x, []float64{8, 6, 4, 2}); math.Abs(r+1) > 1e-12 {
		t.Errorf("perfect negative correlation = %v", r)
	}
	if r := pearson(x, []float64{5, 5, 5, 5}); r != 0 {
		t.Errorf("constant series correlation = %v, want 0", r)
	}
}

func TestPearsonPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	pearson([]float64{1}, []float64{1, 2})
}

func TestHistogramBuckets(t *testing.T) {
	h := histogram([]float64{-1, 0, 0.49, 0.51, 2}, 0, 1, 2)
	// -1 clamps into bin 0; 2 clamps into bin 1.
	if h[0] != 3 || h[1] != 2 {
		t.Errorf("histogram = %v", h)
	}
}

func TestStatHelpers(t *testing.T) {
	v := []float64{3, 1, 2}
	if maxOf(v) != 3 {
		t.Error("maxOf")
	}
	if meanOf(v) != 2 {
		t.Error("meanOf")
	}
	sc := sortedCopy(v)
	if sc[0] != 1 || sc[2] != 3 || v[0] != 3 {
		t.Error("sortedCopy must sort a copy, not the input")
	}
}

func TestCeil(t *testing.T) {
	if ceil(2.0) != 2 || ceil(2.1) != 3 || ceil(0) != 0 {
		t.Error("ceil wrong")
	}
}

func TestFormatters(t *testing.T) {
	if pct(0.5) != "50.0%" || f3(1.23456) != "1.235" || f2(1.236) != "1.24" {
		t.Error("formatters wrong")
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := &Table{Header: []string{"a", "b"}}
	tb.AddRowf("%d|%s", 7, "x")
	if len(tb.Rows) != 1 || tb.Rows[0][0] != "7" || tb.Rows[0][1] != "x" {
		t.Errorf("AddRowf rows = %v", tb.Rows)
	}
}
