package experiments

import (
	"fmt"

	"aim/internal/compiler"
	"aim/internal/core"
	"aim/internal/irdrop"
	"aim/internal/mapping"
	"aim/internal/model"
	"aim/internal/pdn"
	"aim/internal/pim"
	"aim/internal/quant"
	"aim/internal/runner"
	"aim/internal/sim"
	"aim/internal/stream"
	"aim/internal/tensor"
	"aim/internal/vf"
	"aim/internal/xrand"
)

// Fig3 reproduces the motivation plot: the worst IR-drop of real
// workloads stays well below the sign-off worst case.
func Fig3(seed int64) *Table {
	t := &Table{
		ID:     "fig3",
		Title:  "Normalized worst IR-drop per workload vs sign-off (Fig. 3)",
		Header: []string{"workload", "worst drop (mV)", "normalized", "paper"},
	}
	paper := map[string]string{"yolov5": "50%", "resnet18": "54%", "vit": "61%", "llama3": "63%"}
	cfg := pim.DefaultConfig()
	signoff := irdrop.DPIMModel().SignoffWorstMV()
	names := []string{"yolov5", "resnet18", "vit", "llama3"}
	shardRows(t, len(names), func(i int) [][]string {
		name := names[i]
		net, err := model.ByName(name, seed)
		if err != nil {
			panic(err)
		}
		c := compiler.Compile(net, cfg, compiler.BaselineOptions())
		opt := sim.DVFSOptions(net.Transformer, vf.LowPower)
		opt.Seed = seed
		res := sim.Run(c, cfg, opt)
		return [][]string{{name, f2(res.WorstDropMV), pct(res.WorstDropMV / signoff), paper[name]}}
	})
	t.Notes = "sign-off worst case = 140 mV (100%). Shape: every workload's worst sits at 50-65%, transformers above conv nets."
	return t
}

// Fig4 reproduces the Rtog↔IR-drop correlation across 40 macros for
// DPIM and APIM.
func Fig4(seed int64) *Table {
	t := &Table{
		ID:     "fig4",
		Title:  "Correlation of IR-drop and Rtog over 40 macros (Fig. 4)",
		Header: []string{"macro family", "pearson r", "paper r"},
	}
	rng := xrand.NewNamed(seed, "fig4")
	families := []struct {
		name  string
		m     irdrop.Model
		paper string
	}{
		{"DPIM (7nm)", irdrop.DPIMModel(), "0.977"},
		{"APIM (28nm)", irdrop.APIMModel(), "0.998"},
	}
	cfg := pim.Config{Kind: pim.DPIM, Groups: 1, MacrosPerGroup: 1, BanksPerMacro: 16, CellsPerBank: 64, WeightBits: 8}
	for _, fam := range families {
		var rtogs, drops []float64
		for mi := 0; mi < 40; mi++ {
			// Varied workloads: each macro holds weights of a different
			// width and streams a different toggle intensity.
			b := 0.01 + 0.004*float64(mi%7)
			w := tensor.NewFloat(cfg.WeightsPerMacro())
			for i := range w.Data {
				w.Data[i] = rng.Laplace(0, b)
			}
			q := quant.Quantize(w, 8)
			macro := pim.NewMacro(cfg, q.Codes.Data)
			meanP := 0.2 + 0.6*rng.Float64()
			src := stream.NewBernoulli(cfg.CellsPerBank, 300, meanP, 0.08, rng)
			trace := macro.RtogTrace(src, 0)
			avg := meanOf(trace)
			rtogs = append(rtogs, avg)
			drops = append(drops, fam.m.EstimateNoisy(avg, rng))
		}
		t.AddRow(fam.name, f3(pearson(rtogs, drops)), fam.paper)
	}
	t.Notes = "average per-macro Rtog from the bit-serial simulator vs the Eq. 2 drop with cycle noise; linearity is the basis of the whole architecture-level approach."
	return t
}

// Fig16 reproduces the layout IR-drop heatmaps before/after AIM.
func Fig16(seed int64) *Table {
	t := &Table{
		ID:     "fig16",
		Title:  "IR-drop across the 7nm layout before/after AIM (Fig. 16)",
		Header: []string{"condition", "worst macro drop (mV)", "mean macro drop (mV)", "core drop (mV)", "mitigation"},
	}
	fp := pdn.DefaultFloorplan()
	act := pdn.DefaultActivity()
	before, after := fig16Activities(fp, xrand.NewNamed(seed, "fig16"))
	renderRow := func(label string, rt []float64) (drop []float64, worst float64) {
		drop, worst = fp.SolveActivity(act, rt)
		coreDrop := pdn.MaxDropIn(drop, fp.Grid.W, fp.Cores)
		t.AddRow(label, f2(worst*1000), f2(meanMacroDrop(fp, drop)*1000), f2(coreDrop*1000), "")
		return drop, worst
	}
	dropB, worstB := renderRow("before AIM", before)
	dropA, worstA := renderRow("after AIM", after)
	t.Rows[1][4] = pct(1 - worstA/worstB)
	t.Notes = "ASCII heatmaps (darker = deeper drop; hotspots sit in the macro tiles, not core/memory):\n--- before AIM ---\n" +
		pdn.RenderASCII(dropB, fp.Grid.W, 0, worstB) +
		"--- after AIM ---\n" +
		pdn.RenderASCII(dropA, fp.Grid.W, 0, worstB)
	return t
}

// fig16Activities draws the Fig. 16 per-group peak activities:
// baseline workload vs LHR+WDS optimized weights (HR ~0.49 → ~0.27)
// at high input toggle. Fig16 and Fig16Scale share the calibration so
// the scaled dies stay an extension of the figure, not a fork of it.
func fig16Activities(fp *pdn.Floorplan, rng *xrand.RNG) (before, after []float64) {
	n := len(fp.GroupTiles)
	before = make([]float64, n)
	after = make([]float64, n)
	for i := range before {
		before[i] = 0.95 * (0.50 + 0.04*rng.Float64())
		after[i] = 0.95 * (0.26 + 0.03*rng.Float64())
	}
	return before, after
}

// meanMacroDrop averages the drop over all macro group tiles.
func meanMacroDrop(fp *pdn.Floorplan, drop []float64) float64 {
	var m float64
	for _, r := range fp.GroupTiles {
		m += pdn.MeanDropIn(drop, fp.Grid.W, r)
	}
	return m / float64(len(fp.GroupTiles))
}

// Fig16Scale extends Fig. 16 to production-scale dies: the same
// layout scaled 2×/4×/8× per edge (up to a 512×512-cell mesh with
// 1024 macro-group tiles), solved through the warm-started multigrid
// V-cycle — the scales where the Gauss-Seidel reference would need
// more sweeps than its iteration budget. Bump density and per-cell
// current densities match the calibrated 64×64 die, so the sign-off
// physics carries over while the scenario count and mesh size grow
// two orders of magnitude.
func Fig16Scale(seed int64) *Table {
	t := &Table{
		ID:     "fig16scale",
		Title:  "IR-drop at production die scales via the multigrid PDN solver (Fig. 16 extension)",
		Header: []string{"die", "tiles", "condition", "worst macro drop (mV)", "mean macro drop (mV)", "mitigation"},
	}
	scales := []int{2, 4, 8}
	act := pdn.DefaultActivity()
	shardRows(t, len(scales), func(si int) [][]string {
		f := scales[si]
		fp := pdn.ScaledFloorplan(f)
		before, after := fig16Activities(fp, xrand.NewNamed(seed, fmt.Sprintf("fig16scale/%d", f)))
		die := fmt.Sprintf("%dx%d", fp.Grid.W, fp.Grid.H)
		// The second solve warm-starts from the first — the sweep
		// pattern the solver's cache exists for.
		dropB, worstB := fp.SolveActivity(act, before)
		dropA, worstA := fp.SolveActivity(act, after)
		return [][]string{
			{die, fmt.Sprint(len(fp.GroupTiles)), "before AIM", f2(worstB * 1000), f2(meanMacroDrop(fp, dropB) * 1000), ""},
			{die, fmt.Sprint(len(fp.GroupTiles)), "after AIM", f2(worstA * 1000), f2(meanMacroDrop(fp, dropA) * 1000), pct(1 - worstA/worstB)},
		}
	})
	t.Notes = "multigrid V-cycle with red-black parallel sweeps and warm starts (internal/pdn); per-scale worst drops stay in the calibrated band because bump density and tile current density are scale-invariant."
	return t
}

// Fig16Live runs the Fig. 16 comparison live inside the runtime
// simulator instead of as a standalone mesh solve: one compiled
// workload executes at the PackedToggles tier (scalar Eq. 2 drops —
// the analytic booster behaviour) and at the SpatialPDN tier (the
// warm-started multigrid PDN solved per cycle-window, drops read from
// each group's floorplan tiles), on the paper's 16-group die (f=1)
// and a production-scale 256-group die (f=4). IR-Booster reacts to
// whichever drops its monitors see, so the table shows how spatial
// coupling shifts failure counts, delay and mitigation — the coupling
// of the two flagship subsystems the estimator layer exists for.
func Fig16Live(seed int64) *Table {
	t := &Table{
		ID:     "fig16live",
		Title:  "Analytic vs spatial IR-drop live under IR-Booster (Fig. 16 live extension)",
		Header: []string{"die", "groups", "fidelity", "worst drop (mV)", "avg drop (mV)", "failures", "delay", "mitigation"},
	}
	type combo struct {
		f   int
		fid sim.Fidelity
	}
	var combos []combo
	for _, f := range []int{1, 4} {
		for _, fid := range []sim.Fidelity{sim.PackedToggles, sim.SpatialPDN} {
			combos = append(combos, combo{f, fid})
		}
	}
	shardRows(t, len(combos), func(i int) [][]string {
		c := combos[i]
		cfg := pim.DefaultConfig()
		cfg.Groups = 16 * c.f * c.f
		net, err := model.ByName("resnet18", seed)
		if err != nil {
			panic(err)
		}
		copt := compiler.DefaultOptions()
		copt.Strategy = compiler.SequentialMap
		copt.Seed = seed
		comp := compiler.Compile(net, cfg, copt)
		opt := sim.DefaultOptions(net.Transformer, vf.LowPower)
		opt.Seed = seed
		opt.Fidelity = c.fid
		res := sim.Run(comp, cfg, opt)
		return [][]string{{
			fmt.Sprintf("%dx%d", 64*c.f, 64*c.f), fmt.Sprint(cfg.Groups), c.fid.String(),
			f2(res.WorstDropMV), f2(res.AvgDropMV), fmt.Sprint(res.Failures),
			f3(res.DelayFactor), pct(res.WeightOpMitigation),
		}}
	})
	t.Notes = "same compiled plan per die — fidelity is a runtime knob. Shape: spatial worst drops stay within the calibration band of the analytic tier; sequential mapping clusters the occupied groups in one die corner, so the spatial booster sees their neighbour coupling and trades failures/delay accordingly. The f=4 die solves a 256x256 mesh in the cycle loop — the warm-start hot path at production scale."
	return t
}

// Fig17 reproduces the §6.5 traces: demanded drive current, bump
// voltage and bump current before and after AIM.
func Fig17(seed int64) *Table {
	t := &Table{
		ID:     "fig17",
		Title:  "Drive current / bump voltage / bump current before vs after AIM (Fig. 17)",
		Header: []string{"condition", "peak current (A)", "mean current (A)", "min bump V", "mean bump V"},
	}
	net := model.ResNet18(seed)
	stages := []core.Stage{core.StageBaseline, core.StageBooster}
	shardRows(t, len(stages), func(i int) [][]string {
		s := stages[i]
		p := core.NewPipeline(vf.LowPower)
		p.Seed = seed
		res := p.RunStage(net, s)
		cur := res.Result.CurrentTrace
		volt := res.Result.VoltageTrace
		minV := volt[0]
		for _, v := range volt {
			if v < minV {
				minV = v
			}
		}
		label := "before AIM"
		if s == core.StageBooster {
			label = "after AIM"
		}
		return [][]string{{label, f3(maxOf(cur)), f3(meanOf(cur)), f3(minV), f3(meanOf(volt))}}
	})
	t.Notes = "paper Fig. 17: AIM cuts demanded drive current and bump current and stabilizes bump voltage; full per-cycle traces are available from sim.Result."
	return t
}

// Sec66 reproduces the headline §6.6 numbers on the 7nm 256-TOPS
// design: IR-drop mitigation, per-macro power, and chip TOPS.
func Sec66(seed int64) *Table {
	t := &Table{
		ID:     "sec66",
		Title:  "Headline results on the 7nm 256-TOPS PIM (§6.6)",
		Header: []string{"workload", "mode", "drop (mV)", "mitigation", "macro power (mW)", "eff. gain", "TOPS", "speedup"},
	}
	combos := []struct {
		name string
		mode vf.Mode
	}{
		{"resnet18", vf.LowPower}, {"resnet18", vf.Sprint},
		{"vit", vf.LowPower}, {"vit", vf.Sprint},
	}
	shardRows(t, len(combos), func(i int) [][]string {
		c := combos[i]
		net, err := model.ByName(c.name, seed)
		if err != nil {
			panic(err)
		}
		p := core.NewPipeline(c.mode)
		p.Seed = seed
		rep := p.Run(net)
		return [][]string{{c.name, c.mode.String(),
			f2(rep.AIM.Result.WorstWeightOpDropMV), pct(rep.Mitigation()),
			f3(rep.AIM.Result.AvgMacroPowerMW), f2(rep.EfficiencyGain()) + "x",
			fmt.Sprintf("%.0f", rep.AIM.Result.TOPS), f3(rep.Speedup()) + "x"}}
	})
	t.Notes = "paper: 140 → 58.1-43.2 mV (58.5-69.2% mitigation); 4.2978 → 2.243-1.876 mW (1.91-2.29x); 256 → 289-295 TOPS (1.129-1.152x, sprint)."
	return t
}

// Fig18 reproduces the β sweep: normalized mitigation ability and
// delay cycles versus IR-Booster without aggressive adjustment.
func Fig18(seed int64) *Table {
	t := &Table{
		ID:     "fig18",
		Title:  "Impact of β on IR-Booster (Fig. 18)",
		Header: []string{"beta", "resnet18 mitig.", "resnet18 delay", "vit mitig.", "vit delay"},
	}
	cfg := pim.DefaultConfig()
	type ref struct {
		c      *compiler.Compiled
		netT   bool
		mitRef float64
		delRef float64
	}
	names := []string{"resnet18", "vit"}
	m := irdrop.DPIMModel()
	refList := runner.Collect(len(names), 0, func(i int) *ref {
		net, _ := model.ByName(names[i], seed)
		opt := compiler.DefaultOptions()
		opt.Strategy = compiler.SequentialMap
		c := compiler.Compile(net, cfg, opt)
		safeOpt := sim.DefaultOptions(net.Transformer, vf.LowPower)
		safeOpt.Aggressive = false
		safeOpt.Seed = seed
		safe := sim.Run(c, cfg, safeOpt)
		return &ref{
			c: c, netT: net.Transformer,
			mitRef: 1 - m.Estimate(safe.AvgLevelRtog)/m.SignoffWorstMV(),
			delRef: safe.DelayFactor,
		}
	})
	betas := []int{90, 80, 70, 60, 50, 40, 30, 20, 10}
	shardRows(t, len(betas), func(i int) [][]string {
		beta := betas[i]
		row := []string{fmt.Sprint(beta)}
		for _, r := range refList {
			opt := sim.DefaultOptions(r.netT, vf.LowPower)
			opt.Beta = beta
			opt.Seed = seed
			res := sim.Run(r.c, cfg, opt)
			mit := 1 - m.Estimate(res.AvgLevelRtog)/m.SignoffWorstMV()
			row = append(row, f3(mit/r.mitRef), f3(res.DelayFactor/r.delRef))
		}
		return [][]string{row}
	})
	t.Notes = "normalized against safe-level-only IR-Booster. Shape: smaller β → more mitigation ability, more delay cycles; ViT (input-dependent ops) gains and pays more."
	return t
}

// Fig19 reproduces the §6.8 ablation: IR-drop, power and effective
// compute across the AIM stage ladder on ViT and ResNet18.
func Fig19(seed int64) *Table {
	t := &Table{
		ID:     "fig19",
		Title:  "Ablation: IR-drop, power, performance per AIM stage (Fig. 19)",
		Header: []string{"workload", "stage", "drop (mV)", "macro power (mW)", "eff. TOPS"},
	}
	names := []string{"vit", "resnet18"}
	shardRows(t, len(names), func(i int) [][]string {
		name := names[i]
		net, err := model.ByName(name, seed)
		if err != nil {
			panic(err)
		}
		return rowsOf(func(t *Table) {
			p := core.NewPipeline(vf.LowPower)
			p.Seed = seed
			for _, s := range core.Stages() {
				res := p.RunStage(net, s)
				tops := res.Result.TOPS
				if s == core.StageBooster {
					// Performance column uses sprint mode, as the paper does.
					ps := core.NewPipeline(vf.Sprint)
					ps.Seed = seed
					tops = ps.RunStage(net, s).Result.TOPS
				}
				t.AddRow(name, s.String(), f2(res.Result.WorstWeightOpDropMV), f3(res.Result.AvgMacroPowerMW), fmt.Sprintf("%.0f", tops))
			}
		})
	})
	t.Notes = "paper Fig. 19: conv workloads gain mostly from LHR; transformers gain mostly from IR-Booster (input-determined QKT/SV defeat offline optimization)."
	return t
}

// Fig20 reproduces the energy-efficiency decomposition of Fig. 20:
// IR-Booster alone vs +LHR vs +LHR+WDS.
func Fig20(seed int64) *Table {
	t := &Table{
		ID:     "fig20",
		Title:  "Energy-efficiency gains: IR-Booster alone and with LHR/WDS (Fig. 20)",
		Header: []string{"workload", "booster only", "+LHR", "+LHR+WDS"},
	}
	cfg := pim.DefaultConfig()
	names := []string{"resnet18", "mobilenetv2", "yolov5", "vit", "llama3", "gpt2"}
	shardRows(t, len(names), func(i int) [][]string {
		net, err := model.ByName(names[i], seed)
		if err != nil {
			panic(err)
		}
		base := compiler.Compile(net, cfg, compiler.BaselineOptions())
		dvfs := sim.Run(base, cfg, dvfsOpt(net, seed))
		// Energy efficiency = throughput per watt; the gain is the
		// TOPS/W ratio against the DVFS baseline.
		baseEff := dvfs.TOPS / dvfs.AvgMacroPowerMW
		gain := func(useLHR bool, delta int) float64 {
			opt := compiler.BaselineOptions()
			opt.UseLHR = useLHR
			opt.WDSDelta = delta
			c := compiler.Compile(net, cfg, opt)
			so := sim.DefaultOptions(net.Transformer, vf.LowPower)
			so.Seed = seed
			r := sim.Run(c, cfg, so)
			return (r.TOPS / r.AvgMacroPowerMW) / baseEff
		}
		return [][]string{{names[i],
			f2(gain(false, 0)) + "x",
			f2(gain(true, 0)) + "x",
			f2(gain(true, 16)) + "x"}}
	})
	t.Notes = "paper Fig. 20: IR-Booster alone 1.51-2.10x; +LHR+WDS up to 2.64x. Ordering must hold per row: booster < +LHR < +LHR+WDS."
	return t
}

func dvfsOpt(net *model.Network, seed int64) sim.Options {
	o := sim.DVFSOptions(net.Transformer, vf.LowPower)
	o.Seed = seed
	return o
}

// Fig21 reproduces the mapping-strategy comparison over the four
// operator mixes, in both modes.
func Fig21(seed int64) *Table {
	t := &Table{
		ID:     "fig21",
		Title:  "HR-aware task mapping vs sequential/random/zigzag (Fig. 21)",
		Header: []string{"operator mix", "strategy", "low-power power (mW)", "sprint TOPS"},
	}
	cfg := pim.DefaultConfig()
	mixes := []struct {
		name  string
		tasks []mapping.Task
	}{
		// Task counts intentionally misalign with the 4-macro group
		// boundaries so naive mappings co-locate operators with very
		// different HR levels — the situation §5.6 motivates.
		{"Conv + QKT", opMix(30, "conv", 0.27, false, 18, "qkt", 0, true)},
		{"Conv + SV", opMix(26, "conv", 0.27, false, 22, "sv", 0, true)},
		{"Q/K/V Gen + QKT", opMix(31, "qkvgen", 0.31, false, 19, "qkt", 0, true)},
		{"SV + Linear", opMix(21, "sv", 0, true, 27, "linear", 0.29, false)},
	}
	strategies := []struct {
		name string
		run  func(tasks []mapping.Task, e *mapping.Evaluator, rng *xrand.RNG) *mapping.Mapping
	}{
		{"sequential", func(tasks []mapping.Task, e *mapping.Evaluator, _ *xrand.RNG) *mapping.Mapping {
			return mapping.Sequential(tasks, cfg)
		}},
		{"random", func(tasks []mapping.Task, e *mapping.Evaluator, rng *xrand.RNG) *mapping.Mapping {
			return mapping.Random(tasks, cfg, rng)
		}},
		{"zigzag", func(tasks []mapping.Task, e *mapping.Evaluator, _ *xrand.RNG) *mapping.Mapping {
			return mapping.Zigzag(tasks, cfg)
		}},
		{"hr-aware", func(tasks []mapping.Task, e *mapping.Evaluator, rng *xrand.RNG) *mapping.Mapping {
			best, _ := mapping.HRAware(tasks, e, rng, mapping.DefaultSAOptions())
			return best
		}},
	}
	shardRows(t, len(mixes)*len(strategies), func(i int) [][]string {
		mix := mixes[i/len(strategies)]
		st := strategies[i%len(strategies)]
		evalLP := mapping.NewEvaluator(cfg, irdrop.DPIMModel(), vf.LowPower, xrand.NewNamed(seed, "fig21/lp/"+mix.name))
		evalSP := mapping.NewEvaluator(cfg, irdrop.DPIMModel(), vf.Sprint, xrand.NewNamed(seed, "fig21/sp/"+mix.name))
		rngLP := xrand.NewNamed(seed, "fig21/"+mix.name+st.name+"/lp")
		rngSP := xrand.NewNamed(seed, "fig21/"+mix.name+st.name+"/sp")
		mLP := st.run(mix.tasks, evalLP, rngLP)
		mSP := st.run(mix.tasks, evalSP, rngSP)
		lp := evalLP.Evaluate(mLP, mix.tasks)
		sp := evalSP.Evaluate(mSP, mix.tasks)
		return [][]string{{mix.name, st.name, f2(lp.PowerMW), fmt.Sprintf("%.0f", sp.TOPS)}}
	})
	t.Notes = "paper Fig. 21: HR-aware mapping dominates on both axes for every operator mix; naive mappings co-locate incompatible HR levels."
	return t
}

// opMix builds two-operator task mixes for Fig. 21.
func opMix(n1 int, op1 string, hr1 float64, id1 bool, n2 int, op2 string, hr2 float64, id2 bool) []mapping.Task {
	var tasks []mapping.Task
	for i := 0; i < n1; i++ {
		hr := hr1
		if id1 {
			hr = compiler.RuntimeOperandHR
		}
		tasks = append(tasks, mapping.Task{Op: op1, OpID: 0, HR: hr, InputDetermined: id1})
	}
	for i := 0; i < n2; i++ {
		hr := hr2
		if id2 {
			hr = compiler.RuntimeOperandHR
		}
		tasks = append(tasks, mapping.Task{Op: op2, OpID: 1, HR: hr, InputDetermined: id2})
	}
	return tasks
}

// Fig22 reproduces the §7 discussion: AIM on the 28nm APIM macro
// (~50% mitigation) and on a pure adder tree.
func Fig22(seed int64) *Table {
	t := &Table{
		ID:     "fig22",
		Title:  "AIM on APIM and on a pure adder tree (Fig. 22)",
		Header: []string{"target", "workload", "normalized IR-drop w AIM", "mitigation"},
	}
	names := []string{"vit", "resnet18"}
	shardRows(t, len(names), func(i int) [][]string {
		name := names[i]
		net, err := model.ByName(name, seed)
		if err != nil {
			panic(err)
		}
		// APIM: 28nm 128x32 macro config.
		acfg := pim.Config{Kind: pim.APIM, Groups: 16, MacrosPerGroup: 4, BanksPerMacro: 32, CellsPerBank: 128, WeightBits: 8}
		opt := compiler.DefaultOptions()
		opt.Strategy = compiler.SequentialMap
		c := compiler.Compile(net, acfg, opt)
		so := sim.DefaultOptions(net.Transformer, vf.LowPower)
		so.Seed = seed
		res := sim.Run(c, acfg, so)
		// Pure adder tree: measure the register-level switching
		// activity of a bit-serial reduction tree fed by baseline vs
		// optimized weights (pim.AdderTree), and map activity through a
		// dynamic-dominated drop model (no bit-cell static floor).
		base := compiler.Compile(net, acfg, compiler.BaselineOptions())
		actBase := adderTreeActivity(base, seed)
		actOpt := adderTreeActivity(c, seed)
		adder := irdrop.Model{StaticMV: 4, DynCoeffMV: 136, NoiseMV: 5}
		mit := 1 - adder.Estimate(actOpt)/adder.Estimate(actBase)
		return [][]string{
			{"APIM 28nm", name, f3(1 - res.WeightOpMitigation), pct(res.WeightOpMitigation)},
			{"adder tree", name, f3(1 - mit), pct(mit)},
		}
	})
	t.Notes = "paper §7: APIM mitigation ~50% (larger static share, analog sensitivity); bit-serial adder trees still mitigate notably → AIM extends to digital MAC fabrics."
	return t
}

// VfSensitivity reproduces the §5.5.1 sensitivity analysis of the V-f
// level range and step.
func VfSensitivity(seed int64) *Table {
	t := &Table{
		ID:     "vfsens",
		Title:  "V-f level range/step sensitivity (§5.5.1)",
		Header: []string{"level grid", "mitigation ability", "vs reference"},
	}
	// Optimized per-layer HR distribution over the whole zoo gives the
	// spread of group HRs the level grid must serve.
	var hrs []float64
	for _, n := range model.All(seed) {
		st := model.NetworkHR(n, model.WDSConfig(16))
		hrs = append(hrs, st.PerLayer...)
	}
	m := irdrop.DPIMModel()
	// A group's steady-state aggressive level settles where failures
	// become rare: near the high quantile of its actual activity
	// (≈0.7·HR for the reference toggle process), snapped up to the
	// grid. Mitigation ability averages the mitigation those
	// equilibrium levels deliver.
	ability := func(minPct, maxPct, step int) float64 {
		total := 0.0
		for _, hr := range hrs {
			eq := 0.7 * hr
			pct100 := int(ceil(eq*100/float64(step)) * float64(step))
			if pct100 < minPct {
				pct100 = minPct
			}
			lvl := 1.0
			if pct100 <= maxPct {
				lvl = float64(pct100) / 100
			}
			total += 1 - m.Estimate(lvl)/m.SignoffWorstMV()
		}
		return total / float64(len(hrs))
	}
	refAbility := ability(20, 60, 5)
	grids := []struct {
		label          string
		min, max, step int
	}{
		{"20-60% step 5 (reference)", 20, 60, 5},
		{"25-60% step 5 (narrowed low end)", 25, 60, 5},
		{"20-55% step 5 (narrowed high end)", 20, 55, 5},
		{"15-65% step 5 (widened)", 15, 65, 5},
		{"20-60% step 10 (coarse 4x4-like)", 20, 60, 10},
		{"20-60% step 2 (finer, 36+ pairs)", 20, 60, 2},
	}
	for _, g := range grids {
		a := ability(g.min, g.max, g.step)
		t.AddRow(g.label, pct(a), f3(a/refAbility))
	}
	t.Notes = "paper §5.5.1: narrowing the range by 5% loses >17% mitigation capability; widening gains <3%; steps ≥6% lose >8%; finer steps gain ~6% at unacceptable hardware cost."
	return t
}

// adderTreeActivity runs one representative weight-carrying plan's
// codes through a register-level adder tree against a toggling input
// stream and returns the per-bit register activity rate.
func adderTreeActivity(c *compiler.Compiled, seed int64) float64 {
	var codes []int32
	for _, p := range c.Plans {
		if p.Quant != nil {
			codes = p.Quant.Codes.Data
			break
		}
	}
	if len(codes) > 64 {
		codes = codes[:64]
	}
	rng := xrand.NewNamed(seed, "fig22/addertree/"+c.Net.Name)
	acts := stream.GenerateActivations(stream.DefaultActivations(stream.TokenActs), len(codes), 40, rng)
	bs, err := stream.NewBitSerial(acts, 8)
	if err != nil {
		panic(err)
	}
	tree := pim.NewAdderTree(len(codes), 24)
	// Bit-serial reduction: each cycle the tree sums the weights gated
	// by that cycle's input bits (Fig. 1b), so register toggles track
	// the Hamming content of the stored codes.
	seq := make([][]int64, bs.Cycles())
	for t := 0; t < bs.Cycles(); t++ {
		products := make([]int64, len(codes))
		for k, w := range codes {
			if bs.Bit(t, k) != 0 {
				products[k] = int64(w)
			}
		}
		seq[t] = products
	}
	return tree.ActivityRate(seq)
}

func ceil(x float64) float64 {
	i := float64(int64(x))
	if x > i {
		return i + 1
	}
	return i
}

// Overhead reproduces the §6.10 area/power overhead accounting.
func Overhead(seed int64) *Table {
	t := &Table{
		ID:     "overhead",
		Title:  "Area and power overhead of AIM hardware (§6.10)",
		Header: []string{"component", "area", "power", "paper bound"},
	}
	cfg := pim.DefaultConfig()
	scA, scP := pim.SCOverhead(cfg)
	monA, monP := irdrop.MonitorOverhead(cfg.Groups)
	t.AddRow("shift compensator", pct(scA), pct(scP), "<0.2% / <1%")
	t.AddRow("IR monitors", pct(monA), pct(monP), "<0.1% / <0.5%")
	t.AddRow("V-f control (RISC-V reuse)", "~0%", "~0%", "negligible")
	t.Notes = "one compensator per macro is shared by all banks; monitors are a handful of inverters per group; V-f control reuses the existing RISC-V cores."
	return t
}
