// Package experiments regenerates every table and figure of the
// paper's evaluation (§6) and discussion (§7) from the repository's
// own substrates. Each experiment returns a Table of rows matching
// what the paper reports; cmd/aimbench renders them and bench_test.go
// wraps each in a testing.B benchmark.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	// ID is the experiment identifier ("fig3", "table2", ...).
	ID string
	// Title describes what the paper shows there.
	Title string
	// Header labels the columns.
	Header []string
	// Rows hold the data, stringified.
	Rows [][]string
	// Notes records paper-vs-measured commentary and artifacts (e.g.
	// ASCII heatmaps).
	Notes string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowf appends a row, formatting each value with its verb.
func (t *Table) AddRowf(format string, args ...interface{}) {
	t.AddRow(strings.Split(fmt.Sprintf(format, args...), "|")...)
}

// Render produces an aligned text table.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", pad))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		sb.WriteString(t.Notes)
		if !strings.HasSuffix(t.Notes, "\n") {
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// Runner is an experiment entry point.
type Runner func(seed int64) *Table

// Registry maps experiment ids to their runners, in the paper's order.
func Registry() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"fig3", Fig3},
		{"fig4", Fig4},
		{"fig5", Fig5},
		{"fig7", Fig7},
		{"table2", Table2},
		{"table3", Table3},
		{"fig12", Fig12},
		{"fig13", Fig13},
		{"fig14", Fig14},
		{"fig15", Fig15},
		{"fig16", Fig16},
		{"fig17", Fig17},
		{"sec66", Sec66},
		{"fig18", Fig18},
		{"fig19", Fig19},
		{"fig20", Fig20},
		{"fig21", Fig21},
		{"fig22", Fig22},
		{"vfsens", VfSensitivity},
		{"overhead", Overhead},
		{"fig16scale", Fig16Scale},
		{"fig16live", Fig16Live},
	}
}

// ByID looks an experiment up.
func ByID(id string) (Runner, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run, true
		}
	}
	return nil, false
}

// IDs returns all experiment ids in order.
func IDs() []string {
	var out []string
	for _, e := range Registry() {
		out = append(out, e.ID)
	}
	return out
}

// pct formats a fraction as a percentage.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// f3 formats with 3 decimals.
func f3(f float64) string { return fmt.Sprintf("%.3f", f) }

// f2 formats with 2 decimals.
func f2(f float64) string { return fmt.Sprintf("%.2f", f) }

// pearson computes the Pearson correlation coefficient.
func pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) == 0 {
		panic("experiments: pearson input mismatch")
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// histogram buckets values into k equal bins over [lo, hi].
func histogram(vals []float64, lo, hi float64, k int) []int {
	out := make([]int, k)
	for _, v := range vals {
		f := (v - lo) / (hi - lo)
		i := int(f * float64(k))
		if i < 0 {
			i = 0
		}
		if i >= k {
			i = k - 1
		}
		out[i]++
	}
	return out
}

// maxOf returns the maximum of a non-empty slice.
func maxOf(vals []float64) float64 {
	m := vals[0]
	for _, v := range vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// meanOf returns the mean of a non-empty slice.
func meanOf(vals []float64) float64 {
	s := 0.0
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// sortedCopy returns an ascending copy.
func sortedCopy(vals []float64) []float64 {
	c := append([]float64(nil), vals...)
	sort.Float64s(c)
	return c
}
