package experiments

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"aim/internal/check"
	"aim/internal/irdrop"
)

const seed = 2025

// parsePct converts "64.4%" to 0.644.
func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("bad percent %q: %v", s, err)
	}
	return v / 100
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
	if err != nil {
		t.Fatalf("bad float %q: %v", s, err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig3", "fig4", "fig5", "fig7", "table2", "table3", "fig12", "fig13",
		"fig14", "fig15", "fig16", "fig17", "sec66", "fig18", "fig19",
		"fig20", "fig21", "fig22", "vfsens", "overhead", "fig16scale",
		"fig16live",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("registry[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	if _, ok := ByID("fig3"); !ok {
		t.Error("ByID lookup failed")
	}
	if _, ok := ByID("fig99"); ok {
		t.Error("ByID accepted unknown id")
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{ID: "x", Title: "t", Header: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	out := tb.Render()
	if !strings.Contains(out, "== x: t ==") || !strings.Contains(out, "a") {
		t.Errorf("render wrong: %q", out)
	}
}

func TestFig3Shape(t *testing.T) {
	tb := Fig3(seed)
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	byName := map[string]float64{}
	for _, r := range tb.Rows {
		frac := parsePct(t, r[2])
		byName[r[0]] = frac
		// Every workload's worst stays well below sign-off (the paper's
		// motivation) but above 40%.
		if frac < 0.40 || frac > 0.80 {
			t.Errorf("%s normalized drop %.2f outside plausible band", r[0], frac)
		}
	}
	if byName["vit"] <= byName["resnet18"] || byName["llama3"] <= byName["yolov5"] {
		t.Error("transformers must sit above conv nets (Fig. 3 shape)")
	}
}

func TestFig4Correlations(t *testing.T) {
	tb := Fig4(seed)
	dpim := parseF(t, tb.Rows[0][1])
	apim := parseF(t, tb.Rows[1][1])
	if dpim < 0.94 || dpim > 1.0 {
		t.Errorf("DPIM r = %v, want ~0.977", dpim)
	}
	if apim < 0.985 || apim > 1.0 {
		t.Errorf("APIM r = %v, want ~0.998", apim)
	}
	if apim <= dpim {
		t.Error("APIM correlation should exceed DPIM")
	}
}

func TestFig5Invariant(t *testing.T) {
	tb := Fig5(seed)
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		hr := parsePct(t, r[2])
		maxR := parsePct(t, r[3])
		if maxR > hr+1e-9 {
			t.Errorf("%s %s: max(Rtog) %.3f exceeds HR %.3f (Eq. 4 violated)", r[0], r[1], maxR, hr)
		}
	}
	// HR-opt rows must show lower HR and lower peak Rtog.
	for i := 0; i < 4; i += 2 {
		if parsePct(t, tb.Rows[i+1][2]) >= parsePct(t, tb.Rows[i][2]) {
			t.Error("HR-opt must reduce HR")
		}
		if parsePct(t, tb.Rows[i+1][3]) >= parsePct(t, tb.Rows[i][3]) {
			t.Error("HR-opt must reduce max(Rtog)")
		}
	}
}

func TestFig7LHRConcentratesLowHamming(t *testing.T) {
	tb := Fig7(seed)
	if len(tb.Rows) != 16 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// The [0,8) bin (lowest positive Hamming region) must gain mass.
	for _, r := range tb.Rows {
		if r[0] == "[0,8)" {
			base, _ := strconv.Atoi(r[1])
			lhr, _ := strconv.Atoi(r[2])
			if lhr <= base {
				t.Errorf("[0,8) bin: LHR count %d should exceed baseline %d", lhr, base)
			}
		}
	}
}

func TestTable2Shape(t *testing.T) {
	tb := Table2(seed)
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		lhr := parsePct(t, r[1])
		w8 := parsePct(t, r[2])
		w16 := parsePct(t, r[3])
		if !(lhr > 0.15 && w8 > lhr && w16 > w8) {
			t.Errorf("%s: reductions not monotone LHR<WDS8<WDS16: %v %v %v", r[0], lhr, w8, w16)
		}
		if lhr > 0.40 || w16 > 0.55 {
			t.Errorf("%s: reductions implausibly large", r[0])
		}
	}
}

func TestTable3Shape(t *testing.T) {
	tb := Table3(seed)
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		hrPlain := parseF(t, r[2])
		hrLHR := parseF(t, r[3])
		if hrLHR >= hrPlain {
			t.Errorf("%s/%s: PTQ LHR did not reduce HR", r[0], r[1])
		}
		rel := (hrPlain - hrLHR) / hrPlain
		if rel > 0.20 {
			t.Errorf("%s/%s: PTQ LHR reduction %.2f too large (paper ~6-8%%)", r[0], r[1], rel)
		}
	}
}

func TestFig12RowsAndSummary(t *testing.T) {
	tb := Fig12(seed)
	// 21 layers + 2 summary rows.
	if len(tb.Rows) != 23 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		if parsePct(t, r[2]) >= parsePct(t, r[1]) {
			t.Errorf("%s: LHR did not reduce HR", r[0])
		}
	}
}

func TestFig13QualityStable(t *testing.T) {
	tb := Fig13(seed)
	if len(tb.Rows) != 24 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Per model: |quality(d) - quality(a)| small relative to base.
	byModel := map[string][]float64{}
	for _, r := range tb.Rows {
		byModel[r[0]] = append(byModel[r[0]], parseF(t, r[3]))
	}
	for m, qs := range byModel {
		span := maxOf(qs) - sortedCopy(qs)[0]
		if span/qs[0] > 0.03 {
			t.Errorf("%s: quality span %.3f too wide across configs", m, span)
		}
	}
}

func TestFig14OnlyPow2Help(t *testing.T) {
	tb := Fig14(seed)
	if len(tb.Rows) != 18 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	vals := map[int][2]float64{}
	for _, r := range tb.Rows {
		d, _ := strconv.Atoi(r[0])
		vals[d] = [2]float64{parseF(t, r[1]), parseF(t, r[2])}
	}
	for _, col := range []int{0, 1} {
		if vals[8][col] >= 1 || vals[16][col] >= 1 {
			t.Error("δ=8/16 must reduce HR")
		}
		if vals[16][col] >= vals[8][col] {
			t.Error("δ=16 should beat δ=8 (§6.4)")
		}
		for _, d := range []int{1, 2, 3, 5, 6, 7, 9, 11, 13, 15, 17} {
			if vals[d][col] < 1 {
				t.Errorf("δ=%d unexpectedly reduced HR (%v)", d, vals[d][col])
			}
		}
	}
}

func TestFig15PruningShape(t *testing.T) {
	tb := Fig15(seed)
	var prevHR = map[string]float64{}
	for _, r := range tb.Rows {
		key := r[0] + r[1]
		hr := parseF(t, r[3])
		if r[1] == "pruning" {
			if prev, ok := prevHR[key]; ok && hr > prev+1e-9 {
				t.Errorf("%s: HR must fall with sparsity", key)
			}
			prevHR[key] = hr
		}
	}
}

func TestFig16Mitigation(t *testing.T) {
	tb := Fig16(seed)
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	before := parseF(t, tb.Rows[0][1])
	after := parseF(t, tb.Rows[1][1])
	if after >= before {
		t.Error("AIM must reduce the layout worst drop")
	}
	mit := 1 - after/before
	if mit < 0.35 || mit > 0.75 {
		t.Errorf("layout mitigation = %.2f, want paper-shaped", mit)
	}
	// Macros are the hotspots: core drop below worst macro drop.
	if parseF(t, tb.Rows[0][3]) >= before {
		t.Error("core drop should be below macro worst (Fig. 16)")
	}
	if !strings.Contains(tb.Notes, "before AIM") {
		t.Error("heatmaps missing")
	}
}

func TestFig17CurrentFalls(t *testing.T) {
	tb := Fig17(seed)
	peakB := parseF(t, tb.Rows[0][1])
	peakA := parseF(t, tb.Rows[1][1])
	if peakA >= peakB {
		t.Error("AIM must cut peak demanded current")
	}
	minVB := parseF(t, tb.Rows[0][3])
	minVA := parseF(t, tb.Rows[1][3])
	if minVA <= minVB {
		t.Error("AIM must lift the minimum bump voltage")
	}
}

func TestSec66Bands(t *testing.T) {
	tb := Sec66(seed)
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		mit := parsePct(t, r[3])
		if mit < 0.55 || mit > 0.73 {
			t.Errorf("%s/%s mitigation %.2f outside band", r[0], r[1], mit)
		}
		if r[1] == "low-power" {
			if g := parseF(t, r[5]); g < 1.8 || g > 2.7 {
				t.Errorf("%s low-power gain %.2f outside band", r[0], g)
			}
		}
		if r[1] == "sprint" {
			if s := parseF(t, r[7]); s < 1.05 || s > 1.25 {
				t.Errorf("%s sprint speedup %.3f outside band", r[0], s)
			}
		}
	}
}

func TestFig18Monotone(t *testing.T) {
	tb := Fig18(seed)
	if len(tb.Rows) != 9 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	first, last := tb.Rows[0], tb.Rows[len(tb.Rows)-1]
	// β falls 90→10 down the rows: mitigation and delay must rise.
	for _, col := range []int{1, 2, 3, 4} {
		if parseF(t, last[col]) <= parseF(t, first[col]) {
			t.Errorf("column %d not increasing as β shrinks", col)
		}
	}
	// ViT pays more delay than ResNet18 at small β.
	if parseF(t, last[4]) <= parseF(t, last[2]) {
		t.Error("ViT should pay more delay than ResNet18 at β=10")
	}
}

func TestFig19Ladder(t *testing.T) {
	tb := Fig19(seed)
	if len(tb.Rows) != 8 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for i := 0; i < 8; i += 4 {
		name := tb.Rows[i][0]
		dropBase := parseF(t, tb.Rows[i][2])
		dropFull := parseF(t, tb.Rows[i+3][2])
		if dropFull >= dropBase {
			t.Errorf("%s: full AIM must reduce drop", name)
		}
		powBase := parseF(t, tb.Rows[i][3])
		powFull := parseF(t, tb.Rows[i+3][3])
		if powFull >= powBase {
			t.Errorf("%s: full AIM must reduce power", name)
		}
	}
}

func TestFig20Ordering(t *testing.T) {
	tb := Fig20(seed)
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		b, l, w := parseF(t, r[1]), parseF(t, r[2]), parseF(t, r[3])
		if !(b > 1.0 && l > b && w > l) {
			t.Errorf("%s: gains not ordered booster<+LHR<+WDS: %v %v %v", r[0], b, l, w)
		}
		if w > 2.8 {
			t.Errorf("%s: full gain %.2f implausibly high", r[0], w)
		}
	}
}

func TestFig21HRAwareDominates(t *testing.T) {
	tb := Fig21(seed)
	if len(tb.Rows) != 16 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for mix := 0; mix < 16; mix += 4 {
		var hrPower, hrTOPS float64
		for i := mix; i < mix+4; i++ {
			if tb.Rows[i][1] == "hr-aware" {
				hrPower = parseF(t, tb.Rows[i][2])
				hrTOPS = parseF(t, tb.Rows[i][3])
			}
		}
		for i := mix; i < mix+4; i++ {
			if tb.Rows[i][1] == "hr-aware" {
				continue
			}
			if parseF(t, tb.Rows[i][2]) < hrPower-1e-9 {
				t.Errorf("%s: %s beats hr-aware on power", tb.Rows[i][0], tb.Rows[i][1])
			}
			if parseF(t, tb.Rows[i][3]) > hrTOPS+1e-9 {
				t.Errorf("%s: %s beats hr-aware on TOPS", tb.Rows[i][0], tb.Rows[i][1])
			}
		}
	}
}

func TestFig22APIMNearHalf(t *testing.T) {
	tb := Fig22(seed)
	for _, r := range tb.Rows {
		mit := parsePct(t, r[3])
		if r[0] == "APIM 28nm" && (mit < 0.38 || mit > 0.60) {
			t.Errorf("APIM mitigation %.2f, want ~0.50", mit)
		}
		if r[0] == "adder tree" && mit <= 0.2 {
			t.Errorf("adder tree should still mitigate notably, got %.2f", mit)
		}
	}
}

func TestVfSensitivityShape(t *testing.T) {
	tb := VfSensitivity(seed)
	vals := map[string]float64{}
	for _, r := range tb.Rows {
		vals[r[0]] = parseF(t, r[2])
	}
	ref := vals["20-60% step 5 (reference)"]
	if ref != 1.0 {
		t.Fatalf("reference not normalized: %v", ref)
	}
	if vals["25-60% step 5 (narrowed low end)"] >= ref {
		t.Error("narrowing the low end must lose mitigation ability")
	}
	if vals["20-60% step 10 (coarse 4x4-like)"] >= ref {
		t.Error("coarse steps must lose mitigation ability")
	}
	if fine := vals["20-60% step 2 (finer, 36+ pairs)"]; fine < ref || fine > ref*1.10 {
		t.Errorf("finer steps should gain a little (<10%%), got %v", fine)
	}
}

func TestOverheadBounds(t *testing.T) {
	tb := Overhead(seed)
	sc := parsePct(t, tb.Rows[0][1])
	scP := parsePct(t, tb.Rows[0][2])
	if sc > 0.002 || scP > 0.01 {
		t.Errorf("SC overhead %v/%v beyond paper bounds", sc, scP)
	}
	mon := parsePct(t, tb.Rows[1][1])
	monP := parsePct(t, tb.Rows[1][2])
	if mon > 0.001 || monP > 0.005 {
		t.Errorf("monitor overhead %v/%v beyond paper bounds", mon, monP)
	}
}

// TestTableBytesPinnedByManifest pins every rendered table at the
// reference seed, byte for byte, against manifest/experiments.json —
// the single source of truth for pins (no sha256 literals live in
// test code). The check is bidirectional: every registry experiment
// must have a pin and every pin must name a registry experiment, so
// adding an experiment without regenerating the manifest (`aimcheck
// -write`) fails here, not in CI archaeology. If a hash mismatches,
// either an experiment's math changed (regenerate the manifest and
// review the diff) or a refactor silently moved bytes it promised not
// to — notably fig16, whose default floorplan must keep solving
// through the bit-stable Gauss-Seidel reference across PDN solver
// refactors.
func TestTableBytesPinnedByManifest(t *testing.T) {
	m, err := check.LoadManifest("../../manifest/experiments.json")
	if err != nil {
		t.Fatal(err)
	}
	if fs := m.Findings(); len(fs) != 0 {
		t.Fatalf("manifest is not structurally valid: %v", fs)
	}
	if m.Seed != seed {
		t.Fatalf("manifest seed = %d, want the reference seed %d", m.Seed, seed)
	}
	ids := IDs()
	for id := range m.Experiments {
		if _, ok := ByID(id); !ok {
			t.Errorf("manifest pins unknown experiment %q", id)
		}
	}
	tables, err := RunSet(context.Background(), ids, m.Seed, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range tables {
		pin, ok := m.Experiments[tb.ID]
		if !ok {
			t.Errorf("%s: no pin in manifest (run `go run ./cmd/aimcheck -write`)", tb.ID)
			continue
		}
		if got := check.SHA256([]byte(tb.Render())); got != pin {
			t.Errorf("%s table bytes drifted: sha256 %s, pinned %s", tb.ID, got, pin)
		}
	}
}

func TestFig16ScaleShape(t *testing.T) {
	tb := Fig16Scale(seed)
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d, want 3 scales x before/after", len(tb.Rows))
	}
	for i := 0; i < len(tb.Rows); i += 2 {
		before := parseF(t, tb.Rows[i][3])
		after := parseF(t, tb.Rows[i+1][3])
		if after >= before {
			t.Errorf("%s: AIM must reduce the worst drop (%v vs %v)", tb.Rows[i][0], after, before)
		}
		// Scale-invariant physics: every die's sign-off-shaped worst
		// drop stays in the calibrated neighbourhood.
		if before < 55 || before > 110 {
			t.Errorf("%s: before-AIM worst drop %.1f mV outside the calibrated band", tb.Rows[i][0], before)
		}
	}
	if tb.Rows[0][0] != "128x128" || tb.Rows[4][0] != "512x512" {
		t.Errorf("unexpected die labels: %v / %v", tb.Rows[0][0], tb.Rows[4][0])
	}
}

func TestFig16LiveShape(t *testing.T) {
	tb := Fig16Live(seed)
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 2 dies x packed/spatial", len(tb.Rows))
	}
	for i := 0; i < len(tb.Rows); i += 2 {
		if tb.Rows[i][2] != "packed" || tb.Rows[i+1][2] != "spatial" {
			t.Fatalf("row fidelities = %v/%v, want packed/spatial", tb.Rows[i][2], tb.Rows[i+1][2])
		}
		packed := parseF(t, tb.Rows[i][3])
		spatial := parseF(t, tb.Rows[i+1][3])
		// The acceptance bar: live spatial worst drops stay within the
		// documented calibration band of the analytic tier.
		if d := spatial - packed; d > irdrop.SpatialCalibrationBandMV || d < -irdrop.SpatialCalibrationBandMV {
			t.Errorf("%s: spatial worst %.1f mV vs packed %.1f mV exceeds the %v mV band",
				tb.Rows[i][0], spatial, packed, irdrop.SpatialCalibrationBandMV)
		}
		if spatial <= 0 {
			t.Errorf("%s: empty spatial drops", tb.Rows[i][0])
		}
	}
	if tb.Rows[0][0] != "64x64" || tb.Rows[2][0] != "256x256" {
		t.Errorf("unexpected die labels: %v / %v", tb.Rows[0][0], tb.Rows[2][0])
	}
	if tb.Rows[0][1] != "16" || tb.Rows[2][1] != "256" {
		t.Errorf("unexpected group counts: %v / %v", tb.Rows[0][1], tb.Rows[2][1])
	}
}
