package experiments

import (
	"context"
	"sort"
	"strings"
	"testing"
	"time"
)

func TestMatchIDs(t *testing.T) {
	cases := []struct {
		pattern string
		want    []string
	}{
		{"", IDs()},
		{"^fig1[23]$", []string{"fig12", "fig13"}},
		{"table", []string{"table2", "table3"}},
		{"overhead", []string{"overhead"}},
		{"nosuchexperiment", nil},
	}
	for _, c := range cases {
		got, err := MatchIDs(c.pattern)
		if err != nil {
			t.Fatalf("MatchIDs(%q): %v", c.pattern, err)
		}
		if strings.Join(got, ",") != strings.Join(c.want, ",") {
			t.Errorf("MatchIDs(%q) = %v, want %v", c.pattern, got, c.want)
		}
	}
	if _, err := MatchIDs("(unbalanced"); err == nil {
		t.Error("bad regexp must error")
	}
}

func TestRunSetUnknownID(t *testing.T) {
	if _, err := RunSet(context.Background(), []string{"fig3", "fig99"}, seed, 1, nil); err == nil {
		t.Error("unknown id must fail before running anything")
	}
}

func TestRunSetCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunSet(ctx, []string{"overhead"}, seed, 1, nil); err == nil {
		t.Error("cancelled context must be reported")
	}
}

func TestRunSetOnDone(t *testing.T) {
	ids := []string{"overhead", "vfsens"}
	var done []string
	_, err := RunSet(context.Background(), ids, seed, 4, func(id string, elapsed time.Duration) {
		if elapsed < 0 {
			t.Errorf("%s: negative elapsed %v", id, elapsed)
		}
		done = append(done, id) // serialized by the engine: no lock needed
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(done)
	if strings.Join(done, ",") != "overhead,vfsens" {
		t.Errorf("onDone saw %v, want each id exactly once", done)
	}
}

// TestRunSetParallelMatchesSerial is the engine's determinism
// guarantee: for a fixed seed, the rendered tables are byte-identical
// whether the set runs on one worker or many, because every shard —
// experiment, network, wave — draws from its own named xrand stream.
func TestRunSetParallelMatchesSerial(t *testing.T) {
	// A cross-section of the registry: sim-backed (fig3), quant-backed
	// (table2), pool-sharded inner loops (fig14), and closed-form
	// (vfsens, overhead).
	ids := []string{"fig3", "table2", "fig14", "vfsens", "overhead"}
	serial, err := RunSet(context.Background(), ids, seed, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 3, 8} {
		par, err := RunSet(context.Background(), ids, seed, workers, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d tables, want %d", workers, len(par), len(serial))
		}
		for i := range par {
			if par[i].ID != ids[i] {
				t.Errorf("workers=%d: table %d is %s, want %s (merge order broken)", workers, i, par[i].ID, ids[i])
			}
			if got, want := par[i].Render(), serial[i].Render(); got != want {
				t.Errorf("workers=%d: %s diverges from serial:\n--- parallel ---\n%s\n--- serial ---\n%s", workers, ids[i], got, want)
			}
		}
	}
}
