package experiments

import (
	"fmt"

	"aim/internal/model"
	"aim/internal/pim"
	"aim/internal/quant"
	"aim/internal/stream"
	"aim/internal/xrand"
)

// Table2 reproduces the paper's Table 2: HRaverage and HRmax reduction
// of +LHR, +WDS(δ=8) and +WDS(δ=16) over the QAT baseline, for all six
// models.
func Table2(seed int64) *Table {
	t := &Table{
		ID:     "table2",
		Title:  "HRaverage and HRmax reduction over baseline (Table 2)",
		Header: []string{"model", "LHR avg", "WDS8 avg", "WDS16 avg", "LHR max", "WDS8 max", "WDS16 max"},
	}
	nets := model.All(seed)
	shardRows(t, len(nets), func(i int) [][]string {
		n := nets[i]
		b := model.NetworkHR(n, model.BaselineConfig())
		l := model.NetworkHR(n, model.LHRConfig())
		w8 := model.NetworkHR(n, model.WDSConfig(8))
		w16 := model.NetworkHR(n, model.WDSConfig(16))
		rel := func(x, y float64) float64 { return (x - y) / x }
		return [][]string{{n.Name,
			pct(rel(b.Average, l.Average)), pct(rel(b.Average, w8.Average)), pct(rel(b.Average, w16.Average)),
			pct(rel(b.Max, l.Max)), pct(rel(b.Max, w8.Max)), pct(rel(b.Max, w16.Max))}}
	})
	t.Notes = "paper (avg): resnet18 28/39/45.6  mobilenet 29/30.6/33.6  yolov5 23/31.5/38.6  vit 25.9/31.9/35.6  llama3 25.9/30.7/36.3  gpt2 30.7/38/41.5"
	return t
}

// Table3 reproduces Table 3: LHR integrated with PTQ methods
// (OmniQuant on LLMs, BRECQ on conv nets): HRaverage plus quality.
func Table3(seed int64) *Table {
	t := &Table{
		ID:     "table3",
		Title:  "HRaverage and accuracy impact of PTQ + LHR (Table 3)",
		Header: []string{"ptq", "model", "HR w/o", "HR w", "quality w/o", "quality w"},
	}
	cases := []struct {
		method quant.PTQMethod
		name   string
		baseQ  float64 // paper's PTQ-baseline quality (ppl or acc)
		metric quant.Metric
	}{
		{quant.OmniQuantLite, "gpt2", 28.69, quant.Perplexity},
		{quant.OmniQuantLite, "llama3", 11.16, quant.Perplexity},
		{quant.BRECQLite, "resnet18", 73.02, quant.Accuracy},
		{quant.BRECQLite, "mobilenetv2", 69.715, quant.Accuracy},
	}
	shardRows(t, len(cases), func(i int) [][]string {
		c := cases[i]
		net, err := model.ByName(c.name, seed)
		if err != nil {
			panic(err)
		}
		var hrPlain, hrLHR, elems float64
		var driftSum float64
		for _, l := range net.WeightLayers() {
			plain := quant.PTQQuantize(l.Weights, quant.DefaultPTQOptions(c.method, false))
			withL := quant.PTQQuantize(l.Weights, quant.DefaultPTQOptions(c.method, true))
			e := float64(l.Elems())
			hrPlain += plain.HR() * e
			hrLHR += withL.HR() * e
			driftSum += quant.MeanAbsCodeDelta(plain, withL) * e
			elems += e
		}
		hrPlain /= elems
		hrLHR /= elems
		// The regularization bonus only applies when LHR is in the loop;
		// the plain PTQ baseline sits at the paper's reported quality.
		acc := net.Profile.Acc
		acc.Metric = c.metric
		acc.Base = c.baseQ
		plainAcc := acc
		plainAcc.RegGain = 0
		qualPlain := plainAcc.AfterDrift(0)
		// PTQ cannot retrain, so LHR's ±1 rounding nudges carry a mild
		// cost the drift model sees in full (no QAT re-adaptation).
		lhrAcc := acc
		lhrAcc.DriftFree = 0
		lhrAcc.DriftSens = acc.DriftSens * 0.15
		qualLHR := lhrAcc.AfterDrift(driftSum / elems)
		return [][]string{{c.method.String(), c.name, f3(hrPlain), f3(hrLHR), f2(qualPlain), f2(qualLHR)}}
	})
	t.Notes = "paper: OmniQuant gpt2 0.51→0.47 (ppl 28.69→28.72); llama3 0.53→0.49 (11.16→10.947); BRECQ resnet18 0.5→0.47 (73.02→72.9); mobilenetv2 0.49→0.46 (69.715→69.71)"
	return t
}

// Fig5 reproduces the Rtog distribution profiling of Fig. 5: the two
// named operators, with and without HR optimization, run through the
// bit-serial macro simulator; peak Rtog never exceeds HR (Eq. 4).
func Fig5(seed int64) *Table {
	t := &Table{
		ID:     "fig5",
		Title:  "Rtog distribution: HR dominates max(Rtog) (Fig. 5)",
		Header: []string{"operator", "config", "HR", "max(Rtog)", "mean(Rtog)", "p99(Rtog)"},
	}
	cases := []struct {
		netName, layerName string
		acts               stream.ActivationKind
	}{
		{"resnet18", "layer3.0.conv1", stream.ImageActs},
		{"vit", "blocks.6.mlp.fc1", stream.TokenActs},
	}
	cfg := pim.Config{Kind: pim.DPIM, Groups: 1, MacrosPerGroup: 1, BanksPerMacro: 64, CellsPerBank: 128, WeightBits: 8}
	const cycles = 50000
	shardRows(t, len(cases), func(i int) [][]string {
		c := cases[i]
		net, err := model.ByName(c.netName, seed)
		if err != nil {
			panic(err)
		}
		var layer *model.Layer
		for _, l := range net.Layers {
			if l.Name == c.layerName {
				layer = l
			}
		}
		if layer == nil {
			panic("fig5: layer not found: " + c.layerName)
		}
		return rowsOf(func(t *Table) {
			for _, withOpt := range []bool{false, true} {
				q := quant.Quantize(layer.Weights, 8)
				label := "w/o HR-opt"
				if withOpt {
					res := quant.ApplyLHR(layer.Weights, 8, net.LHROptions())
					q, _ = quant.ShiftWeights(res.After, 8)
					label = "w HR-opt"
				}
				codes := q.Codes.Data
				if len(codes) > cfg.WeightsPerMacro() {
					codes = codes[:cfg.WeightsPerMacro()]
				}
				macro := pim.NewMacro(cfg, codes)
				rng := xrand.NewNamed(seed, "fig5/"+c.layerName+label)
				vectors := cycles/8 + 1
				src, err := stream.WorkloadToggles(c.acts, cfg.CellsPerBank, vectors, rng)
				if err != nil {
					panic(err)
				}
				trace := macro.RtogTrace(src, cycles)
				sorted := sortedCopy(trace)
				p99 := sorted[len(sorted)*99/100]
				t.AddRow(c.netName+"/"+c.layerName, label,
					pct(macro.HR()), pct(maxOf(trace)), pct(meanOf(trace)), pct(p99))
			}
		})
	})
	t.Notes = "paper: resnet18 layer3.0.conv1 HR 51.7→29.8%, max(Rtog) 43.7→23.6%; vit fc1 HR 49.9→35.8%, max(Rtog) 40.2→28.3%. Invariant: max(Rtog) <= HR in every row."
	return t
}

// Fig7 reproduces the weight-distribution view of Fig. 7a: LHR aligns
// weights with local minima of the Hamming function (0, ±8, ...).
func Fig7(seed int64) *Table {
	t := &Table{
		ID:     "fig7",
		Title:  "Quantized weight distribution w/ and w/o LHR (Fig. 7a)",
		Header: []string{"code bin", "count w/o LHR", "count w LHR", "bin Hamming"},
	}
	net := model.ResNet18(seed)
	var base, lhr []float64
	hamAt := map[int]int{}
	for _, l := range net.WeightLayers() {
		b := quant.Quantize(l.Weights, 8)
		a := quant.ApplyLHR(l.Weights, 8, net.LHROptions()).After
		for _, c := range b.Codes.Data {
			base = append(base, float64(c))
		}
		for _, c := range a.Codes.Data {
			lhr = append(lhr, float64(c))
		}
	}
	// 16 bins of width 8 over [-64, 64).
	hb := histogram(base, -64, 64, 16)
	hl := histogram(lhr, -64, 64, 16)
	for i := 0; i < 16; i++ {
		lo := -64 + i*8
		ham := 0
		for c := lo; c < lo+8; c++ {
			ham += hamming8(c)
		}
		hamAt[lo] = ham
		t.AddRow(fmt.Sprintf("[%d,%d)", lo, lo+8), fmt.Sprint(hb[i]), fmt.Sprint(hl[i]), fmt.Sprintf("%.2f", float64(ham)/8))
	}
	t.Notes = "paper Fig. 7a: LHR concentrates mass at Hamming local minima (…,-8, 0, 8,…); compare LHR counts in low-Hamming bins vs baseline."
	return t
}

func hamming8(c int) int {
	u := uint8(int8(clampInt(c, -128, 127)))
	n := 0
	for u != 0 {
		n += int(u & 1)
		u >>= 1
	}
	return n
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Fig12 reproduces the per-layer HR view of Fig. 12 on ResNet18.
func Fig12(seed int64) *Table {
	t := &Table{
		ID:     "fig12",
		Title:  "HR per ResNet18 layer: baseline / LHR / LHR+WDS(16) (Fig. 12)",
		Header: []string{"layer", "baseline", "+LHR", "+LHR+WDS"},
	}
	net := model.ResNet18(seed)
	b := model.QuantizeNetwork(net, model.BaselineConfig())
	l := model.QuantizeNetwork(net, model.LHRConfig())
	w := model.QuantizeNetwork(net, model.WDSConfig(16))
	for i := range b {
		t.AddRow(b[i].Layer.Name, pct(b[i].HR()), pct(l[i].HR()), pct(w[i].HR()))
	}
	sb, sl, sw := model.Stats(b), model.Stats(l), model.Stats(w)
	t.AddRow("HRaverage", pct(sb.Average), pct(sl.Average), pct(sw.Average))
	t.AddRow("HRmax", pct(sb.Max), pct(sl.Max), pct(sw.Max))
	t.Notes = "paper Fig. 12: most layers sit at similar HR (uniform within-network distribution); early small-kernel layers are outliers."
	return t
}

// Fig13 reproduces the HR-vs-quality trade-off of Fig. 13 across all
// models and the four configurations.
func Fig13(seed int64) *Table {
	t := &Table{
		ID:     "fig13",
		Title:  "HR decrease and accuracy influence (Fig. 13)",
		Header: []string{"model", "config", "HRaverage", "quality", "metric"},
	}
	configs := []struct {
		label string
		cfg   model.QuantConfig
	}{
		{"(a) baseline", model.BaselineConfig()},
		{"(b) +LHR", model.LHRConfig()},
		{"(c) +WDS(8)", model.WDSConfig(8)},
		{"(d) +WDS(16)", model.WDSConfig(16)},
	}
	nets := model.All(seed)
	shardRows(t, len(nets), func(i int) [][]string {
		n := nets[i]
		return rowsOf(func(t *Table) {
			for _, c := range configs {
				st := model.NetworkHR(n, c.cfg)
				t.AddRow(n.Name, c.label, f3(st.Average), f2(n.Quality(st)), n.Profile.Acc.Metric.String())
			}
		})
	})
	t.Notes = "paper: HR falls sharply across (a)→(d) while quality moves <1 point; ViT/Llama3 improve slightly (regularization effect)."
	return t
}

// Fig14 reproduces the δ sweep of Fig. 14: normalized HR (vs LHR-only)
// for δ = 0..17 on ResNet18 and ViT; only powers of two aligned with
// the Hamming minima (8, 16) help.
func Fig14(seed int64) *Table {
	t := &Table{
		ID:     "fig14",
		Title:  "Impact of δ on WDS: HR normalized to LHR-only (Fig. 14)",
		Header: []string{"delta", "resnet18", "vit"},
	}
	nets := []*model.Network{model.ResNet18(seed), model.ViT(seed)}
	// Pre-compute LHR-only codes once per net.
	type layerCodes struct {
		q     *quant.Quantized
		elems float64
	}
	all := make([][]layerCodes, len(nets))
	ref := make([]float64, len(nets))
	for i, n := range nets {
		var elems float64
		for _, l := range n.WeightLayers() {
			q := quant.ApplyLHR(l.Weights, 8, n.LHROptions()).After
			e := float64(l.Elems())
			all[i] = append(all[i], layerCodes{q, e})
			ref[i] += q.HR() * e
			elems += e
		}
		ref[i] /= elems
	}
	shardRows(t, 18, func(delta int) [][]string {
		row := []string{fmt.Sprint(delta)}
		for i := range nets {
			var hr, elems float64
			for _, lc := range all[i] {
				shifted, _ := quant.ShiftWeights(lc.q, delta)
				hr += shifted.HR() * lc.elems
				elems += lc.elems
			}
			row = append(row, f3(hr/elems/ref[i]))
		}
		return [][]string{row}
	})
	t.Notes = "paper Fig. 14: normalized HR dips below 1.0 only at δ=8 and δ=16; other δ raise HR (two's-complement alignment)."
	return t
}

// Fig15 reproduces the pruning comparison of Fig. 15: accuracy vs HR
// for pruning alone, pruning+LHR, LHR, and LHR+WDS(8) at sparsity
// targets 10-50% on ResNet18 and ViT.
func Fig15(seed int64) *Table {
	t := &Table{
		ID:     "fig15",
		Title:  "Pruning vs/+ LHR&WDS: accuracy vs HR (Fig. 15)",
		Header: []string{"model", "config", "sparsity", "HR", "accuracy"},
	}
	nets := []*model.Network{model.ResNet18(seed), model.ViT(seed)}
	shardRows(t, len(nets), func(ni int) [][]string {
		n := nets[ni]
		return rowsOf(func(t *Table) {
			fig15Rows(t, n)
		})
	})
	t.Notes = "paper Fig. 15: pruning lowers HR but costs accuracy as sparsity grows; LHR(+WDS) reaches lower HR at near-baseline accuracy; the two compose."
	return t
}

// fig15Rows emits one network's reference and pruning-sweep rows.
func fig15Rows(t *Table, n *model.Network) {
	lhrOpt := n.LHROptions()
	// Reference points without pruning.
	lhrStats := model.NetworkHR(n, model.LHRConfig())
	t.AddRow(n.Name, "LHR", "0%", f3(lhrStats.Average), f2(n.Quality(lhrStats)))
	wdsStats := model.NetworkHR(n, model.WDSConfig(8))
	t.AddRow(n.Name, "LHR+WDS(8)", "0%", f3(wdsStats.Average), f2(n.Quality(wdsStats)))
	for _, target := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
		sched := quant.GMPSchedule{Target: target, Steps: 8}
		var hrP, hrPL, elems, driftPL float64
		for _, l := range n.WeightLayers() {
			pruned := quant.RunGMP(l.Weights, sched)
			e := float64(l.Elems())
			qp := quant.Quantize(pruned, 8)
			hrP += qp.HR() * e
			res := quant.ApplyLHR(pruned, 8, lhrOpt)
			hrPL += res.After.HR() * e
			driftPL += res.Drift * e
			elems += e
		}
		accP := n.Profile.Acc.AfterPrune(target, 0)
		accPL := n.Profile.Acc.AfterPrune(target, driftPL/elems)
		t.AddRow(n.Name, "pruning", pct(target), f3(hrP/elems), f2(accP))
		t.AddRow(n.Name, "pruning+LHR", pct(target), f3(hrPL/elems), f2(accPL))
	}
}
