package experiments

import (
	"context"
	"fmt"
	"regexp"
	"sync"
	"time"

	"aim/internal/runner"
)

// MatchIDs filters the registry by an unanchored regular expression
// (the semantics of go test -run), preserving registry order. The
// empty pattern selects every experiment. Ids that match nothing
// return an empty slice, not an error — callers decide whether that
// is fatal.
func MatchIDs(pattern string) ([]string, error) {
	if pattern == "" {
		return IDs(), nil
	}
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, fmt.Errorf("experiments: bad id pattern %q: %w", pattern, err)
	}
	var out []string
	for _, id := range IDs() {
		if re.MatchString(id) {
			out = append(out, id)
		}
	}
	return out, nil
}

// RunSet executes the named experiments over a bounded worker pool and
// returns their tables in the order the ids were given. workers
// bounds only this experiment-level fan-out (<= 0 means one per CPU,
// 1 dispatches experiments one at a time); the experiments' inner
// shards — networks, β points, simulation waves — use their own
// GOMAXPROCS-bounded pools regardless. Each shard at every level
// derives its stochastic streams from (seed, its own names), so the
// rendered tables are byte-identical for any worker count — RunSet
// with 1 worker and with N agree bit for bit. Unknown ids fail before
// any experiment runs; ctx cancellation stops un-started experiments
// and returns ctx.Err().
//
// onDone, when non-nil, is called after each experiment finishes, in
// completion order, with the experiment's wall-clock time; calls are
// serialized, so the callback needs no locking of its own.
func RunSet(ctx context.Context, ids []string, seed int64, workers int, onDone func(id string, elapsed time.Duration)) ([]*Table, error) {
	runs := make([]Runner, len(ids))
	for i, id := range ids {
		run, ok := ByID(id)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown experiment %q (want one of %v)", id, IDs())
		}
		runs[i] = run
	}
	var mu sync.Mutex
	return runner.Map(ctx, len(ids), workers, func(i int) (*Table, error) {
		start := time.Now() //aimlint:allow no-wallclock — feeds only the onDone progress callback; table bytes never depend on it
		tbl := runs[i](seed)
		elapsed := time.Since(start) //aimlint:allow no-wallclock — same: progress reporting only, outside every rendered table
		if onDone != nil {
			mu.Lock()
			onDone(ids[i], elapsed)
			mu.Unlock()
		}
		return tbl, nil
	})
}

// shardRows evaluates fn(i) for i in [0, n) on the shared worker pool
// (one worker per CPU) and appends each shard's rows to the table in
// index order. It is the experiments' inner-loop sharding helper: fn
// must derive its randomness from streams named by its own index or
// inputs — never from a stream shared across indices — which keeps the
// table bytes independent of the worker count.
func shardRows(t *Table, n int, fn func(i int) [][]string) {
	for _, rows := range runner.Collect(n, 0, fn) {
		t.Rows = append(t.Rows, rows...)
	}
}

// rowsOf collects the rows a shard produced through a scratch table,
// so shard bodies can keep using AddRow/AddRowf idioms.
func rowsOf(fill func(t *Table)) [][]string {
	var scratch Table
	fill(&scratch)
	return scratch.Rows
}
