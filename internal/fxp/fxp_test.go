package fxp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaxMinInt(t *testing.T) {
	cases := []struct {
		q        int
		min, max int32
	}{
		{2, -2, 1},
		{4, -8, 7},
		{8, -128, 127},
		{16, -32768, 32767},
	}
	for _, c := range cases {
		if got := MaxInt(c.q); got != c.max {
			t.Errorf("MaxInt(%d) = %d, want %d", c.q, got, c.max)
		}
		if got := MinInt(c.q); got != c.min {
			t.Errorf("MinInt(%d) = %d, want %d", c.q, got, c.min)
		}
	}
}

func TestWidthPanics(t *testing.T) {
	for _, q := range []int{0, 1, 33, -4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for width %d", q)
				}
			}()
			MaxInt(q)
		}()
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(300, 8); got != 127 {
		t.Errorf("Clamp(300,8) = %d, want 127", got)
	}
	if got := Clamp(-300, 8); got != -128 {
		t.Errorf("Clamp(-300,8) = %d, want -128", got)
	}
	if got := Clamp(5, 8); got != 5 {
		t.Errorf("Clamp(5,8) = %d, want 5", got)
	}
}

func TestHammingKnownValues(t *testing.T) {
	cases := []struct {
		v    int32
		q    int
		want int
	}{
		{0, 8, 0},
		{1, 8, 1},
		{8, 8, 1},
		{127, 8, 7},
		{-1, 8, 8},   // 0xFF
		{-128, 8, 1}, // 0x80
		{-8, 8, 5},   // 0xF8
		{7, 4, 3},
		{-1, 4, 4},
	}
	for _, c := range cases {
		if got := Hamming(c.v, c.q); got != c.want {
			t.Errorf("Hamming(%d,%d) = %d, want %d", c.v, c.q, got, c.want)
		}
	}
}

func TestHammingPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unrepresentable value")
		}
	}()
	Hamming(200, 8)
}

func TestBit(t *testing.T) {
	// -8 at 8 bits is 0xF8 = 1111_1000.
	wantBits := []uint32{0, 0, 0, 1, 1, 1, 1, 1}
	for i, want := range wantBits {
		if got := Bit(-8, i, 8); got != want {
			t.Errorf("Bit(-8,%d,8) = %d, want %d", i, got, want)
		}
	}
}

func TestHMAndHR(t *testing.T) {
	ws := []int32{0, 1, -1, 8}
	// Hammings: 0 + 1 + 8 + 1 = 10, over 4*8 = 32 bits.
	if got := HM(ws, 8); got != 10 {
		t.Errorf("HM = %d, want 10", got)
	}
	if got := HR(ws, 8); math.Abs(got-10.0/32.0) > 1e-12 {
		t.Errorf("HR = %v, want %v", got, 10.0/32.0)
	}
	if got := HR(nil, 8); got != 0 {
		t.Errorf("HR(nil) = %v, want 0", got)
	}
}

func TestHRInt8MatchesHR(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ws8 := make([]int8, 1000)
	ws32 := make([]int32, 1000)
	for i := range ws8 {
		v := int8(rng.Intn(256) - 128)
		ws8[i] = v
		ws32[i] = int32(v)
	}
	if a, b := HRInt8(ws8), HR(ws32, 8); math.Abs(a-b) > 1e-12 {
		t.Errorf("HRInt8 = %v, HR = %v", a, b)
	}
}

func TestHammingTable(t *testing.T) {
	tab := HammingTable(8)
	if len(tab) != 256 {
		t.Fatalf("table size = %d, want 256", len(tab))
	}
	for v := int32(-128); v <= 127; v++ {
		if tab[Code(v, 8)] != Hamming(v, 8) {
			t.Errorf("table mismatch at %d", v)
		}
	}
}

func TestInterpHRAtIntegers(t *testing.T) {
	// At exact integers the interpolated HR equals the integer HR and
	// the gradient is the slope to the next integer... the paper uses
	// the segment; at exact integer points we return grad 0 only when
	// clamped to the same code; otherwise the right-segment slope.
	hr, _ := InterpHR(0, 8)
	if hr != 0 {
		t.Errorf("InterpHR(0) = %v, want 0", hr)
	}
	hr, _ = InterpHR(-1, 8)
	if hr != 1.0 {
		t.Errorf("InterpHR(-1) = %v, want 1", hr)
	}
}

func TestInterpHRPaperExamples(t *testing.T) {
	// Paper Fig.7(b): interpolated HR of -0.62 is 0.62 with gradient 1
	// (per-bit normalized here: HR in [0,1], paper plots rate; -0.62
	// sits between -1 (HR=1) and 0 (HR=0), so interp = 0.62, slope -1
	// toward 0... the paper's sign convention counts descent direction;
	// we check magnitude and monotonicity).
	hr, grad := InterpHR(-0.62, 8)
	if math.Abs(hr-0.62) > 1e-9 {
		t.Errorf("InterpHR(-0.62) = %v, want 0.62", hr)
	}
	if grad >= 0 {
		t.Errorf("gradient at -0.62 should be negative (toward 0), got %v", grad)
	}
	// 6.4 sits between 6 (HR 2/8) and 7 (HR 3/8): interp = 0.25 + 0.4*0.125 = 0.3.
	hr, grad = InterpHR(6.4, 8)
	if math.Abs(hr-0.3) > 1e-9 {
		t.Errorf("InterpHR(6.4) = %v, want 0.3", hr)
	}
	if grad <= 0 {
		t.Errorf("gradient at 6.4 should be positive, got %v", grad)
	}
}

func TestInterpHRClampedRegionHasZeroGrad(t *testing.T) {
	_, grad := InterpHR(500, 8)
	if grad != 0 {
		t.Errorf("gradient beyond range = %v, want 0", grad)
	}
	_, grad = InterpHR(-500, 8)
	if grad != 0 {
		t.Errorf("gradient beyond range = %v, want 0", grad)
	}
}

// Property: HR is always within [0,1] and Hamming within [0,q].
func TestHammingBoundsProperty(t *testing.T) {
	f := func(raw int16) bool {
		v := Clamp(int64(raw), 8)
		h := Hamming(v, 8)
		return h >= 0 && h <= 8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Hamming(v,q) equals sum of Bit(v,i,q).
func TestHammingEqualsBitSumProperty(t *testing.T) {
	f := func(raw int16) bool {
		v := Clamp(int64(raw), 8)
		sum := uint32(0)
		for i := 0; i < 8; i++ {
			sum += Bit(v, i, 8)
		}
		return int(sum) == Hamming(v, 8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: InterpHR is continuous-ish: at midpoints it is the average of
// neighbours; and always within [0,1].
func TestInterpHRRangeProperty(t *testing.T) {
	f := func(raw float64) bool {
		x := math.Mod(raw, 200)
		if math.IsNaN(x) {
			return true
		}
		hr, _ := InterpHR(x, 8)
		return hr >= 0 && hr <= 1.0+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInterpHRMidpoint(t *testing.T) {
	// midpoint of 8 (HR 1/8) and 9 (HR 2/8) is 1.5/8.
	hr, _ := InterpHR(8.5, 8)
	if math.Abs(hr-1.5/8) > 1e-12 {
		t.Errorf("InterpHR(8.5) = %v, want %v", hr, 1.5/8)
	}
}

func BenchmarkHRInt8(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	ws := make([]int8, 64*1024)
	for i := range ws {
		ws[i] = int8(rng.Intn(256) - 128)
	}
	b.SetBytes(int64(len(ws)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = HRInt8(ws)
	}
}
