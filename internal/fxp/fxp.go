// Package fxp provides fixed-point, two's-complement bit utilities that
// underpin the AIM architecture-level metrics.
//
// All PIM in-memory data in this repository is represented as signed
// integers quantized to a bit width q (typically 8 or 4). The Hamming
// metrics defined by the paper (HM and HR, Eq. 3) count the valid bits
// (1s) of the two's-complement encoding of each stored value, so this
// package is the single source of truth for "how many 1s does the code
// of value v at width q have".
package fxp

import "math/bits"

// MaxInt returns the maximum representable signed value at width q,
// i.e. 2^(q-1)-1. Panics if q is not in [2, 32].
func MaxInt(q int) int32 {
	checkWidth(q)
	return int32(1)<<(q-1) - 1
}

// MinInt returns the minimum representable signed value at width q,
// i.e. -2^(q-1).
func MinInt(q int) int32 {
	checkWidth(q)
	return -(int32(1) << (q - 1))
}

func checkWidth(q int) {
	if q < 2 || q > 32 {
		panic("fxp: bit width out of range [2,32]")
	}
}

// Clamp saturates v into the representable range at width q.
func Clamp(v int64, q int) int32 {
	lo, hi := int64(MinInt(q)), int64(MaxInt(q))
	if v < lo {
		return int32(lo)
	}
	if v > hi {
		return int32(hi)
	}
	return int32(v)
}

// Code returns the two's-complement code of v at width q as an unsigned
// value with the q low bits populated. v must be representable at width q.
func Code(v int32, q int) uint32 {
	checkWidth(q)
	if v < MinInt(q) || v > MaxInt(q) {
		panic("fxp: value not representable at width")
	}
	mask := uint32(1)<<uint(q) - 1
	return uint32(v) & mask
}

// Hamming returns the number of 1 bits in the two's-complement code of v
// at width q. This is the per-value HM of the paper's Eq. 3.
func Hamming(v int32, q int) int {
	return bits.OnesCount32(Code(v, q))
}

// Bit returns bit i (0 = LSB) of the two's-complement code of v at width q.
func Bit(v int32, i, q int) uint32 {
	if i < 0 || i >= q {
		panic("fxp: bit index out of range")
	}
	return (Code(v, q) >> uint(i)) & 1
}

// HM returns the Hamming value of a slice of quantized weights: the total
// count of 1 bits across all two's-complement codes at width q (Eq. 3).
func HM(ws []int32, q int) int {
	total := 0
	for _, w := range ws {
		total += Hamming(w, q)
	}
	return total
}

// HR returns the Hamming rate of a slice of quantized weights:
// HM / (n*q), the fraction of valid bits among all stored bits (Eq. 3).
// HR of an empty slice is 0.
func HR(ws []int32, q int) float64 {
	if len(ws) == 0 {
		return 0
	}
	return float64(HM(ws, q)) / float64(len(ws)*q)
}

// HRInt8 is a convenience HR over int8 data at width 8, the dominant
// configuration in the paper.
func HRInt8(ws []int8) float64 {
	if len(ws) == 0 {
		return 0
	}
	total := 0
	for _, w := range ws {
		total += bits.OnesCount8(uint8(w))
	}
	return float64(total) / float64(len(ws)*8)
}

// HammingTable returns a lookup table t where t[Code(v,q)] = Hamming(v,q)
// for every representable v. Index the table with Code(v, q).
func HammingTable(q int) []int {
	checkWidth(q)
	n := 1 << uint(q)
	t := make([]int, n)
	for c := 0; c < n; c++ {
		t[c] = bits.OnesCount32(uint32(c))
	}
	return t
}

// HammingOfInt returns the Hamming weight of integer value v at width q,
// saturating v into range first. Useful when callers hold arbitrary
// int64 arithmetic results.
func HammingOfInt(v int64, q int) int {
	return Hamming(Clamp(v, q), q)
}

// InterpHR returns the linearly interpolated Hamming rate of a
// floating-point value x located between its two neighbouring integers
// at width q (paper Eq. 5, used by the LHR regularizer), together with
// the gradient d(HR)/dx. The per-value HR is Hamming/q so it lies in
// [0,1]. Values outside the representable range are clamped, where the
// gradient is 0.
func InterpHR(x float64, q int) (hr, grad float64) {
	lo := int64(floorF(x))
	hi := lo + 1
	if float64(lo) == x {
		hi = lo
	}
	cl := fclampI(lo, q)
	ch := fclampI(hi, q)
	hLo := float64(Hamming(cl, q)) / float64(q)
	hHi := float64(Hamming(ch, q)) / float64(q)
	if cl == ch {
		return hLo, 0
	}
	p := x - float64(lo)
	return (1-p)*hLo + p*hHi, hHi - hLo
}

func fclampI(v int64, q int) int32 { return Clamp(v, q) }

// floorF is math.Floor without importing math, exact for the small
// magnitudes used by quantized weights.
func floorF(x float64) float64 {
	i := int64(x)
	f := float64(i)
	if x < f {
		return f - 1
	}
	return f
}
