package quant

import "math"

// Metric distinguishes the two quality measures the paper reports.
type Metric int

const (
	// Accuracy is top-1 accuracy in percent (higher is better).
	Accuracy Metric = iota
	// Perplexity is language-model perplexity (lower is better).
	Perplexity
)

// String names the metric.
func (m Metric) String() string {
	if m == Perplexity {
		return "ppl"
	}
	return "acc(%)"
}

// AccuracyModel is the surrogate quality model documented in DESIGN.md.
//
// The repository has no pretrained networks or datasets, so the effect
// of weight perturbations on task quality is modelled instead of
// measured: quality degrades smoothly with the mean absolute code drift
// a transformation causes, saturating QAT's ability to re-adapt, plus a
// small regularization bonus (the paper observes ViT and Llama3
// *improve* under LHR, attributing it to better generalization). The
// model is monotone in true perturbation magnitude, which is all the
// paper's Fig. 13/15 and Table 3 claims require. Real, measured accuracy
// for the same code path is demonstrated on a trainable mini-MLP in
// examples/quantlab.
type AccuracyModel struct {
	Metric Metric
	// Base is the baseline quantized quality (accuracy % or perplexity).
	Base float64
	// DriftSens is quality lost per unit mean-absolute code drift beyond
	// what QAT re-adaptation absorbs.
	DriftSens float64
	// DriftFree is the drift magnitude QAT absorbs at no cost.
	DriftFree float64
	// RegGain is the small quality bonus from the regularization effect.
	RegGain float64
	// PruneSens scales the quality loss of magnitude pruning.
	PruneSens float64
}

// AfterDrift returns the modelled quality after a transformation that
// moved codes by meanAbsDrift on average (LHR tuning, WDS overflow
// clamping converted to an equivalent drift, etc.).
func (m AccuracyModel) AfterDrift(meanAbsDrift float64) float64 {
	excess := meanAbsDrift - m.DriftFree
	if excess < 0 {
		excess = 0
	}
	loss := m.DriftSens * excess * excess
	return m.apply(loss - m.RegGain)
}

// AfterPrune returns the modelled quality at the given sparsity, with
// optional additional drift (e.g. pruning combined with LHR).
func (m AccuracyModel) AfterPrune(sparsity, meanAbsDrift float64) float64 {
	pruneLoss := m.PruneSens * math.Pow(sparsity, 2.2)
	excess := meanAbsDrift - m.DriftFree
	if excess < 0 {
		excess = 0
	}
	loss := pruneLoss + m.DriftSens*excess*excess
	return m.apply(loss - m.RegGain)
}

// apply maps a quality *loss* onto the metric respecting its direction.
func (m AccuracyModel) apply(loss float64) float64 {
	if m.Metric == Perplexity {
		return m.Base + loss*m.pplScale()
	}
	return m.Base - loss
}

// pplScale converts percent-style losses into perplexity points at a
// magnitude consistent with the paper's Table 3 (fractions of a point).
func (m AccuracyModel) pplScale() float64 { return m.Base / 100 }
