package quant

import (
	"math"
	"testing"
	"testing/quick"

	"aim/internal/fxp"
	"aim/internal/tensor"
	"aim/internal/xrand"
)

func gaussianTensor(seed int64, n int, sigma float64) *tensor.Float {
	g := xrand.New(seed)
	t := tensor.NewFloat(n)
	for i := range t.Data {
		t.Data[i] = g.Normal(0, sigma)
	}
	return t
}

// laplaceTensor mimics real neural-network weight tensors: heavy-tailed
// Laplace body whose rare outliers set the per-tensor quantization
// scale, so most codes fall within a few tens of the origin. This is
// the regime in which the paper's WDS analysis (§5.4) operates.
func laplaceTensor(seed int64, n int, b float64) *tensor.Float {
	g := xrand.New(seed)
	t := tensor.NewFloat(n)
	for i := range t.Data {
		t.Data[i] = g.Laplace(0, b)
	}
	return t
}

func TestQuantizeRoundTrip(t *testing.T) {
	w := gaussianTensor(1, 4096, 0.05)
	q := Quantize(w, 8)
	d := Dequantize(q)
	for i := range w.Data {
		if math.Abs(w.Data[i]-d.Data[i]) > q.Scale/2+1e-12 {
			t.Fatalf("round-trip error at %d: %v vs %v (scale %v)", i, w.Data[i], d.Data[i], q.Scale)
		}
	}
}

func TestQuantizeCodesInRange(t *testing.T) {
	f := func(seed int64) bool {
		w := gaussianTensor(seed, 257, 0.3)
		q := Quantize(w, 8)
		for _, c := range q.Codes.Data {
			if c < -128 || c > 127 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuantizeIdempotent(t *testing.T) {
	w := gaussianTensor(2, 1024, 0.1)
	q1 := Quantize(w, 8)
	q2 := QuantizeWithScale(Dequantize(q1), 8, q1.Scale)
	for i := range q1.Codes.Data {
		if q1.Codes.Data[i] != q2.Codes.Data[i] {
			t.Fatalf("quantization not idempotent at %d", i)
		}
	}
}

func TestBaselineHRNearHalf(t *testing.T) {
	// Symmetric Gaussian INT8 weights have HR close to 0.5: positive
	// codes are sparse in 1s, negative two's-complement codes are dense.
	w := laplaceTensor(3, 1<<16, 0.02)
	hr := Quantize(w, 8).HR()
	if hr < 0.40 || hr > 0.56 {
		t.Errorf("baseline HR = %v, want ~0.5", hr)
	}
}

func TestApplyLHRReducesHR(t *testing.T) {
	w := laplaceTensor(4, 1<<15, 0.02)
	res := ApplyLHR(w, 8, DefaultLHROptions())
	before, after := res.Before.HR(), res.After.HR()
	if after >= before {
		t.Fatalf("LHR did not reduce HR: %v -> %v", before, after)
	}
	rel := (before - after) / before
	if rel < 0.15 || rel > 0.45 {
		t.Errorf("LHR relative reduction = %.3f, want in [0.15,0.45] (paper ~0.23-0.31)", rel)
	}
	if res.Drift <= 0 || res.Drift > float64(DefaultLHROptions().Window) {
		t.Errorf("drift = %v out of plausible range", res.Drift)
	}
}

func TestProximalTuneRespectsWindow(t *testing.T) {
	g := xrand.New(5)
	codes := make([]int32, 2000)
	for i := range codes {
		codes[i] = int32(g.Intn(255) - 127)
	}
	window := 4
	out := ProximalTune(codes, 8, window, 5)
	for i := range codes {
		d := int(out[i] - codes[i])
		if d < -window || d > window {
			t.Fatalf("code %d moved by %d, window %d", codes[i], d, window)
		}
	}
}

func TestProximalTuneNeverIncreasesCost(t *testing.T) {
	g := xrand.New(6)
	lam := 4.0
	for trial := 0; trial < 200; trial++ {
		c0 := int32(g.Intn(255) - 127)
		out := ProximalTune([]int32{c0}, 8, 6, lam)[0]
		cost0 := lam * float64(fxp.Hamming(c0, 8))
		d := float64(out - c0)
		cost1 := lam*float64(fxp.Hamming(out, 8)) + d*d
		if cost1 > cost0 {
			t.Fatalf("tuning increased cost for %d -> %d", c0, out)
		}
	}
}

func TestGradientTuneMatchesProximalInDistribution(t *testing.T) {
	// The gradient form (with jitter) and the proximal fixed point
	// should land at similar HR levels.
	w := laplaceTensor(7, 8192, 0.02)
	s := Scale(w, 8)
	opt := DefaultLHROptions()
	tuned := GradientTune(w, s, 8, opt, xrand.New(99))
	qGrad := QuantizeWithScale(tuned, 8, s)
	res := ApplyLHR(w, 8, opt)
	hrGrad, hrProx := qGrad.HR(), res.After.HR()
	if math.Abs(hrGrad-hrProx) > 0.08 {
		t.Errorf("gradient HR %.3f vs proximal HR %.3f differ too much", hrGrad, hrProx)
	}
	base := Quantize(w, 8).HR()
	if hrGrad >= base {
		t.Errorf("gradient LHR failed to reduce HR: %v -> %v", base, hrGrad)
	}
}

func TestNetworkLoss(t *testing.T) {
	a := Quantize(gaussianTensor(8, 512, 0.1), 8)
	loss := NetworkLoss([]*Quantized{a, a})
	want := 2 * a.HR() * a.HR()
	if math.Abs(loss-want) > 1e-12 {
		t.Errorf("NetworkLoss = %v, want %v", loss, want)
	}
}

func TestShiftWeightsClampsAtMax(t *testing.T) {
	q := &Quantized{Codes: &tensor.Int{Shape: []int{3}, Data: []int32{120, 0, -8}, Bits: 8}, Scale: 1}
	out, ov := ShiftWeights(q, 16)
	if out.Codes.Data[0] != 127 {
		t.Errorf("clamp failed: %d", out.Codes.Data[0])
	}
	if out.Codes.Data[1] != 16 || out.Codes.Data[2] != 8 {
		t.Errorf("shift wrong: %v", out.Codes.Data)
	}
	if ov != 1 {
		t.Errorf("overflow count = %d, want 1", ov)
	}
}

func TestShiftNegativeDeltaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ShiftWeights(Quantize(gaussianTensor(9, 8, 0.1), 8), -8)
}

func TestIsPow2(t *testing.T) {
	for _, d := range []int{0, 1, 2, 4, 8, 16} {
		if !IsPow2(d) {
			t.Errorf("IsPow2(%d) = false", d)
		}
	}
	for _, d := range []int{3, 5, 6, 7, 12, -8} {
		if IsPow2(d) {
			t.Errorf("IsPow2(%d) = true", d)
		}
	}
}

// Property: WDS with compensation is exact when no code clamps
// (DESIGN.md invariant 2).
func TestWDSExactnessProperty(t *testing.T) {
	g := xrand.New(10)
	f := func(seed int64) bool {
		m, k, n := 1+g.Intn(4), 1+g.Intn(6), 1+g.Intn(4)
		w := &Quantized{Codes: tensor.NewInt(8, m, k), Scale: 1}
		for i := range w.Codes.Data {
			w.Codes.Data[i] = int32(g.Intn(160) - 100) // stay below 127-16: no clamping
		}
		x := tensor.NewInt(8, k, n)
		for i := range x.Data {
			x.Data[i] = int32(g.Intn(255) - 127)
		}
		want := tensor.MatMulInt(w.Codes, x)
		got := MatmulWithWDS(w, x, 16)
		for i := range want {
			for j := range want[i] {
				if want[i][j] != got[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestWDSGainOnLHRWeights(t *testing.T) {
	// After LHR, shifting by 8 or 16 should reduce HR; shifting by 4
	// should not help (paper Fig. 14 / §6.4).
	w := laplaceTensor(11, 1<<15, 0.02)
	res := ApplyLHR(w, 8, DefaultLHROptions())
	_, hr8, _ := WDSGain(res.After, 8)
	_, hr16, _ := WDSGain(res.After, 16)
	_, hr4, _ := WDSGain(res.After, 4)
	base := res.After.HR()
	if hr8 >= base {
		t.Errorf("WDS(8) did not reduce HR: %v -> %v", base, hr8)
	}
	if hr16 >= base {
		t.Errorf("WDS(16) did not reduce HR: %v -> %v", base, hr16)
	}
	if hr4 < hr8 {
		t.Errorf("WDS(4) (%v) should be worse than WDS(8) (%v)", hr4, hr8)
	}
}

func TestWDSOverflowRare(t *testing.T) {
	// Paper §5.4.1: overflow clamping affects <1% of weights.
	w := laplaceTensor(12, 1<<15, 0.02)
	res := ApplyLHR(w, 8, DefaultLHROptions())
	_, _, ovf := WDSGain(res.After, 16)
	if ovf > 0.01 {
		t.Errorf("overflow fraction = %v, want <1%%", ovf)
	}
}

func TestPTQBaselineVsLHR(t *testing.T) {
	w := laplaceTensor(13, 1<<14, 0.02)
	for _, m := range []PTQMethod{OmniQuantLite, BRECQLite} {
		plain := PTQQuantize(w, DefaultPTQOptions(m, false))
		withLHR := PTQQuantize(w, DefaultPTQOptions(m, true))
		if withLHR.HR() >= plain.HR() {
			t.Errorf("%v: LHR did not reduce HR (%v -> %v)", m, plain.HR(), withLHR.HR())
		}
		rel := (plain.HR() - withLHR.HR()) / plain.HR()
		// Table 3: PTQ+LHR reduction is modest (~6-8% relative).
		if rel > 0.20 {
			t.Errorf("%v: PTQ LHR reduction %.3f implausibly large", m, rel)
		}
	}
}

func TestPTQRoundingErrorBounded(t *testing.T) {
	w := gaussianTensor(14, 4096, 0.1)
	q := PTQQuantize(w, DefaultPTQOptions(BRECQLite, true))
	for i, v := range w.Data {
		d := math.Abs(v - float64(q.Codes.Data[i])*q.Scale)
		if d > q.Scale*1.01 {
			t.Fatalf("PTQ rounding moved weight %d by %v (> 1 step %v)", i, d, q.Scale)
		}
	}
}

func TestPruneMagnitude(t *testing.T) {
	w := &tensor.Float{Shape: []int{6}, Data: []float64{0.5, -0.1, 0.2, -0.9, 0.05, 0.3}}
	p := PruneMagnitude(w, 0.5)
	if got := SparsityOf(p); got < 0.5 {
		t.Errorf("sparsity = %v, want >= 0.5", got)
	}
	// Largest magnitudes survive.
	if p.Data[3] != -0.9 || p.Data[0] != 0.5 {
		t.Errorf("pruning removed large weights: %v", p.Data)
	}
}

func TestPruneReducesHR(t *testing.T) {
	w := laplaceTensor(15, 1<<14, 0.02)
	base := Quantize(w, 8).HR()
	pruned := Quantize(PruneMagnitude(w, 0.5), 8).HR()
	if pruned >= base {
		t.Errorf("pruning did not reduce HR: %v -> %v", base, pruned)
	}
}

func TestGMPScheduleShape(t *testing.T) {
	s := GMPSchedule{Target: 0.5, Steps: 10}
	prev := -1.0
	for i := 0; i < 12; i++ {
		v := s.SparsityAt(i)
		if v < prev-1e-12 {
			t.Fatalf("schedule not monotone at %d", i)
		}
		prev = v
	}
	if s.SparsityAt(9) != 0.5 || s.SparsityAt(100) != 0.5 {
		t.Error("schedule should reach target")
	}
	if s.SparsityAt(-1) != 0 {
		t.Error("negative step should give 0")
	}
}

func TestRunGMPReachesTarget(t *testing.T) {
	w := gaussianTensor(16, 4096, 0.1)
	out := RunGMP(w, GMPSchedule{Target: 0.3, Steps: 5})
	if got := SparsityOf(out); math.Abs(got-0.3) > 0.02 {
		t.Errorf("final sparsity = %v, want ~0.3", got)
	}
}

func TestAccuracyModelDirections(t *testing.T) {
	acc := AccuracyModel{Metric: Accuracy, Base: 70, DriftSens: 0.5, DriftFree: 0.5, RegGain: 0, PruneSens: 10}
	if acc.AfterDrift(0.2) != 70 {
		t.Error("drift below free threshold should not cost accuracy")
	}
	if acc.AfterDrift(2) >= 70 {
		t.Error("large drift should cost accuracy")
	}
	if acc.AfterPrune(0.5, 0) >= 70 {
		t.Error("pruning should cost accuracy")
	}
	ppl := AccuracyModel{Metric: Perplexity, Base: 28, DriftSens: 0.5, DriftFree: 0.5}
	if ppl.AfterDrift(2) <= 28 {
		t.Error("perplexity should increase with drift")
	}
}

func TestAccuracyRegGain(t *testing.T) {
	m := AccuracyModel{Metric: Accuracy, Base: 80, DriftSens: 0.2, DriftFree: 1, RegGain: 0.3}
	if m.AfterDrift(0.5) <= 80 {
		t.Error("regularization gain should improve accuracy at low drift")
	}
}

func TestMeanAbsCodeDelta(t *testing.T) {
	a := &Quantized{Codes: &tensor.Int{Shape: []int{3}, Data: []int32{1, 2, 3}, Bits: 8}}
	b := &Quantized{Codes: &tensor.Int{Shape: []int{3}, Data: []int32{2, 0, 3}, Bits: 8}}
	if got := MeanAbsCodeDelta(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("delta = %v, want 1", got)
	}
}
