package quant

import (
	"testing"

	"aim/internal/tensor"
)

// The paper's §5.4.1: for INT4 quantization, δ values of 2 or 4 are
// the suitable WDS shifts (powers of two aligned with the 4-bit
// Hamming minima).

// int4Tensor mimics INT4 deployment practice: the heavy-tailed body is
// clipped (per-channel clipping is standard at 4 bits), so codes
// spread across the narrow [-8,7] range instead of collapsing onto
// {-1,0,1}.
func int4Tensor(seed int64, n int) *tensor.Float {
	w := laplaceTensor(seed, n, 0.05)
	w.Apply(func(v float64) float64 {
		if v > 0.12 {
			return 0.12
		}
		if v < -0.12 {
			return -0.12
		}
		return v
	})
	return w
}

func TestInt4BaselineHRNearHalf(t *testing.T) {
	w := int4Tensor(41, 1<<15)
	hr := Quantize(w, 4).HR()
	if hr < 0.40 || hr > 0.60 {
		t.Errorf("INT4 baseline HR = %v, want ~0.5", hr)
	}
}

func TestInt4LHRReducesHR(t *testing.T) {
	w := int4Tensor(42, 1<<14)
	opt := DefaultLHROptions()
	opt.Window = 2 // INT4 codes span only ±8; drift must stay small
	res := ApplyLHR(w, 4, opt)
	if res.After.HR() >= res.Before.HR() {
		t.Fatalf("INT4 LHR failed: %v -> %v", res.Before.HR(), res.After.HR())
	}
}

func TestInt4WDSDeltas(t *testing.T) {
	// §5.4.1: for INT4, δ ∈ {2, 4} are the suitable shifts: they move
	// the high-Hamming small-negative codes across zero. (With a
	// full-strength LHR pass first, INT4's tiny range leaves no
	// negative mass for WDS to harvest — the methods overlap at 4 bits
	// — so the shift is evaluated against the quantized baseline, with
	// a mild LHR pass checked separately below.)
	w := int4Tensor(43, 1<<15)
	q := Quantize(w, 4)
	base := q.HR()
	_, hr2, _ := WDSGain(q, 2)
	_, hr4, _ := WDSGain(q, 4)
	if hr2 >= base {
		t.Errorf("INT4 WDS(2) did not reduce HR: %v -> %v", base, hr2)
	}
	// δ=4 suitability is distribution-dependent at 4 bits (the shift
	// spans half the positive range); it must at least stay close to
	// neutral and never beat δ=2 on this body.
	if hr4 > base*1.05 {
		t.Errorf("INT4 WDS(4) raised HR too much: %v -> %v", base, hr4)
	}
	if hr2 >= hr4 {
		t.Errorf("INT4 δ=2 (%v) should beat δ=4 (%v) on a clipped Laplace body", hr2, hr4)
	}
	// Mild LHR (λ far below the INT8 setting: the 4-bit range is tiny)
	// composes with WDS(2).
	opt := DefaultLHROptions()
	opt.Lambda = 0.2
	opt.Window = 1
	res := ApplyLHR(w, 4, opt)
	_, hrBoth, _ := WDSGain(res.After, 2)
	if hrBoth >= base {
		t.Errorf("INT4 LHR+WDS(2) (%v) should beat baseline (%v)", hrBoth, base)
	}
}

func TestInt4RoundTrip(t *testing.T) {
	w := int4Tensor(44, 4096)
	q := Quantize(w, 4)
	for _, c := range q.Codes.Data {
		if c < -8 || c > 7 {
			t.Fatalf("INT4 code %d out of range", c)
		}
	}
}

func TestInt4WDSOverflowStillRare(t *testing.T) {
	w := int4Tensor(45, 1<<14)
	opt := DefaultLHROptions()
	opt.Window = 2
	res := ApplyLHR(w, 4, opt)
	_, _, ovf := WDSGain(res.After, 2)
	// INT4's tiny range clamps more than INT8, but the shift must stay
	// far from mainstream mass.
	if ovf > 0.08 {
		t.Errorf("INT4 WDS(2) overflow = %v, too common", ovf)
	}
}
