package quant

import (
	"aim/internal/tensor"
)

// PTQMethod identifies a post-training-quantization algorithm family.
// The paper integrates LHR with OmniQuant (LLMs) and BRECQ (conv nets)
// in Table 3; both are reproduced here as calibration-based quantizers
// with block-wise reconstruction-lite. The essential property preserved
// is that PTQ cannot retrain weights, so LHR may only nudge each weight
// within a ±1 code window chosen during rounding — which is why its HR
// reduction under PTQ is smaller than under QAT.
type PTQMethod int

const (
	// OmniQuantLite models OmniQuant-style learnable clipping: the scale
	// is chosen by a grid search minimizing reconstruction error before
	// rounding.
	OmniQuantLite PTQMethod = iota
	// BRECQLite models BRECQ-style block reconstruction: adaptive
	// rounding (round up vs down per weight) minimizing block output
	// error.
	BRECQLite
)

// String names the method.
func (m PTQMethod) String() string {
	switch m {
	case OmniQuantLite:
		return "OmniQuant"
	case BRECQLite:
		return "BRECQ"
	default:
		return "PTQ?"
	}
}

// PTQOptions configures a PTQ pass.
type PTQOptions struct {
	Method PTQMethod
	Bits   int
	// WithLHR enables the LHR-in-PTQ integration of Table 3: the
	// rounding decision additionally weighs the Hamming cost of the two
	// candidate codes.
	WithLHR bool
	// LambdaBits is the Hamming penalty (in squared-code units per bit)
	// used when WithLHR is set. PTQ must preserve accuracy without
	// retraining, so this is far smaller than the QAT window allows.
	LambdaBits float64
}

// DefaultPTQOptions returns the Table 3 configuration.
func DefaultPTQOptions(m PTQMethod, withLHR bool) PTQOptions {
	return PTQOptions{Method: m, Bits: 8, WithLHR: withLHR, LambdaBits: 0.9}
}

// PTQQuantize quantizes a layer with the selected PTQ method.
//
// Both methods share the same skeleton: pick a scale (OmniQuant-style
// clip search shrinks it slightly to cut clipping+rounding error), then
// round each weight to floor or ceil, minimizing
//
//	(rounding error)² [+ λbits·Hamming(code) when WithLHR]
//
// which is exactly the ±1-window proximal LHR restricted to the two
// legal PTQ rounding choices.
func PTQQuantize(w *tensor.Float, opt PTQOptions) *Quantized {
	s := Scale(w, opt.Bits)
	if opt.Method == OmniQuantLite {
		s = clipSearch(w, opt.Bits, s)
	}
	codes := tensor.NewInt(opt.Bits, w.Shape...)
	for i, v := range w.Data {
		codes.Data[i] = roundAdaptive(v/s, opt)
	}
	return &Quantized{Codes: codes, Scale: s}
}

// clipSearch performs the OmniQuant-style grid search over clipping
// ratios, minimizing total squared quantization error.
func clipSearch(w *tensor.Float, bits int, s0 float64) float64 {
	best, bestErr := s0, quantError(w, bits, s0)
	for ratio := 0.80; ratio < 1.0; ratio += 0.02 {
		s := s0 * ratio
		if e := quantError(w, bits, s); e < bestErr {
			best, bestErr = s, e
		}
	}
	return best
}

func quantError(w *tensor.Float, bits int, s float64) float64 {
	q := QuantizeWithScale(w, bits, s)
	e := 0.0
	for i, v := range w.Data {
		d := v - float64(q.Codes.Data[i])*s
		e += d * d
	}
	return e
}

// roundAdaptive rounds x (in code units) to floor or ceil; with LHR the
// Hamming cost of each candidate participates in the decision.
func roundAdaptive(x float64, opt PTQOptions) int32 {
	lo := int64(floor(x))
	hi := lo + 1
	cLo := clampCost(x, lo, opt)
	cHi := clampCost(x, hi, opt)
	if cLo <= cHi {
		return clamp(lo, opt.Bits)
	}
	return clamp(hi, opt.Bits)
}

func clampCost(x float64, c int64, opt PTQOptions) float64 {
	cc := clamp(c, opt.Bits)
	d := x - float64(cc)
	cost := d * d
	if opt.WithLHR {
		cost += opt.LambdaBits * float64(hamming(cc, opt.Bits))
	}
	return cost
}
