package quant

import (
	"math"
	"sort"

	"aim/internal/fxp"
	"aim/internal/tensor"
)

// small local aliases so ptq.go reads cleanly.
func clamp(v int64, bits int) int32 { return fxp.Clamp(v, bits) }
func hamming(v int32, bits int) int { return fxp.Hamming(v, bits) }
func floor(x float64) float64       { return math.Floor(x) }

// PruneMagnitude zeroes the fraction `sparsity` of weights with the
// smallest absolute values (global magnitude pruning). This is the
// single step of the gradual schedule below and the primitive the
// paper's Fig. 15 comparison uses (SparseML GMP*).
func PruneMagnitude(w *tensor.Float, sparsity float64) *tensor.Float {
	if sparsity < 0 || sparsity >= 1 {
		panic("quant: sparsity must be in [0,1)")
	}
	out := w.Clone()
	n := len(out.Data)
	if n == 0 {
		return out
	}
	mags := make([]float64, n)
	for i, v := range out.Data {
		mags[i] = math.Abs(v)
	}
	sort.Float64s(mags)
	k := int(sparsity * float64(n))
	if k == 0 {
		return out
	}
	threshold := mags[k-1]
	zeroed := 0
	for i, v := range out.Data {
		if math.Abs(v) <= threshold && zeroed < k {
			out.Data[i] = 0
			zeroed++
		}
	}
	return out
}

// GMPSchedule is a gradual magnitude pruning schedule (Zhu & Gupta
// cubic ramp, the GMP* default): sparsity rises from 0 to Target over
// Steps steps.
type GMPSchedule struct {
	Target float64
	Steps  int
}

// SparsityAt returns the schedule's sparsity at step t (0-based); after
// the last step it stays at Target.
func (g GMPSchedule) SparsityAt(t int) float64 {
	if g.Steps <= 1 || t >= g.Steps-1 {
		return g.Target
	}
	if t < 0 {
		return 0
	}
	frac := float64(t) / float64(g.Steps-1)
	return g.Target * (1 - math.Pow(1-frac, 3))
}

// RunGMP applies the gradual schedule; because magnitude pruning is
// monotone (a weight once below threshold stays prunable), the final
// mask equals one-shot pruning at Target, but intermediate sparsities
// are exposed for the Fig. 15 sweep and for tests of the ramp shape.
func RunGMP(w *tensor.Float, sched GMPSchedule) *tensor.Float {
	cur := w.Clone()
	for t := 0; t < sched.Steps; t++ {
		cur = PruneMagnitude(cur, sched.SparsityAt(t))
	}
	return cur
}

// SparsityOf measures the fraction of exact zeros.
func SparsityOf(w *tensor.Float) float64 {
	if len(w.Data) == 0 {
		return 0
	}
	z := 0
	for _, v := range w.Data {
		if v == 0 {
			z++
		}
	}
	return float64(z) / float64(len(w.Data))
}
