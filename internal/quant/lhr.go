package quant

import (
	"math"

	"aim/internal/fxp"
	"aim/internal/tensor"
	"aim/internal/xrand"
)

// LHROptions controls the LHR regularizer (paper §5.3).
//
// Lambda is the regularization strength λ from Eq. 6 balancing Hamming
// reduction against the task-loss anchor. Window bounds how far (in code
// units) a weight may drift from its pre-tuning value — real QAT bounds
// this implicitly through the task loss; here the proximal anchor makes
// it explicit. Iters/LR/Jitter drive the gradient-descent form.
type LHROptions struct {
	Lambda float64 // HR regularization strength (code-units² per bit)
	Window int     // max drift from the original code, in code units
	Iters  int     // gradient descent iterations
	LR     float64 // gradient descent learning rate (code units)
	Jitter float64 // SGD-like noise magnitude to escape HR plateaus
}

// DefaultLHROptions mirrors the configuration used for the paper's QAT
// experiments on INT8 networks.
func DefaultLHROptions() LHROptions {
	return LHROptions{Lambda: 1.1, Window: 8, Iters: 400, LR: 0.02, Jitter: 18}
}

// GradientTune runs the gradient-based LHR optimization of Eq. 5/6 on a
// single layer: each float weight w with quantization scale s descends
//
//	L(w) = λ·2·HRlayer·InterpHR(w/s) + (w/s − w0/s)²/2
//
// where the interpolated Hamming rate supplies the (piecewise-linear)
// gradient of Eq. 5, and the quadratic proximal term stands in for the
// task loss that anchors weights near their trained values. The
// 2·HRlayer factor is the derivative of the squared per-layer Hamming
// loss of Eq. 6, which penalizes high-HR layers more strongly. A small
// jitter term plays the role of stochastic minibatch noise, letting
// weights escape the zero-gradient plateaus of the Hamming function.
// It returns the tuned float tensor; the caller quantizes it with the
// original scale.
func GradientTune(w *tensor.Float, scale float64, bits int, opt LHROptions, rng *xrand.RNG) *tensor.Float {
	if scale <= 0 {
		panic("quant: scale must be positive")
	}
	out := w.Clone()
	n := len(out.Data)
	if n == 0 {
		return out
	}
	orig := make([]float64, n) // original positions in code units
	cur := make([]float64, n)
	for i, v := range w.Data {
		orig[i] = v / scale
		cur[i] = orig[i]
	}
	win := float64(opt.Window)
	lr, jitter := opt.LR, opt.Jitter
	for it := 0; it < opt.Iters; it++ {
		// Per-layer HR of the current (interpolated) weights drives the
		// Eq. 6 squared-loss coefficient.
		hrLayer := 0.0
		for _, x := range cur {
			h, _ := fxp.InterpHR(x, bits)
			hrLayer += h
		}
		hrLayer /= float64(n)
		// Same objective as ProximalTune: λbits·Hamming + drift², with
		// λbits = λ·2·HRlayer. InterpHR's gradient is in rate units per
		// code step, so multiply by the bit width to get bits.
		coeff := opt.Lambda * 2 * hrLayer * float64(bits)
		for i, x := range cur {
			_, g := fxp.InterpHR(x, bits)
			grad := coeff*g + 2*(x-orig[i])
			x -= lr * grad
			if jitter > 0 {
				// Annealed stochastic kick: lets weights hop across the
				// Hamming function's zero-gradient plateaus and local
				// barriers early, then settle (simulated-annealing-like
				// cooling mirroring minibatch-noise decay in real QAT).
				x += lr * jitter * rng.Normal(0, 1)
			}
			// Hard window: task loss forbids larger drift.
			if x > orig[i]+win {
				x = orig[i] + win
			}
			if x < orig[i]-win {
				x = orig[i] - win
			}
			cur[i] = x
		}
		jitter *= 0.985
	}
	for i := range out.Data {
		out.Data[i] = cur[i] * scale
	}
	return out
}

// ProximalTune computes the fixed point the gradient form converges to:
// for each code c0 it selects the integer c within ±window minimizing
//
//	λbits·Hamming(c) + (c − c0)²
//
// with λbits the per-bit penalty in code-units². It is deterministic,
// fast, and is what the repository uses for large sweeps; TestGradient
// MatchesProximal verifies the two forms agree in distribution.
func ProximalTune(codes []int32, bits, window int, lambdaBits float64) []int32 {
	out := make([]int32, len(codes))
	lo64, hi64 := int64(fxp.MinInt(bits)), int64(fxp.MaxInt(bits))
	for i, c0 := range codes {
		best := c0
		bestCost := math.Inf(1)
		for d := -window; d <= window; d++ {
			c := int64(c0) + int64(d)
			if c < lo64 || c > hi64 {
				continue
			}
			cost := lambdaBits*float64(fxp.Hamming(int32(c), bits)) + float64(d*d)
			if cost < bestCost || (cost == bestCost && abs64(c) < abs64(int64(best))) {
				bestCost = cost
				best = int32(c)
			}
		}
		out[i] = best
	}
	return out
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// LHRResult summarizes an LHR pass over one layer.
type LHRResult struct {
	Before *Quantized
	After  *Quantized
	// Drift is the mean absolute code movement caused by the tuning,
	// consumed by the accuracy surrogate.
	Drift float64
}

// ApplyLHR quantizes a layer with the baseline quantizer, then applies
// the LHR proximal tuner with per-layer strength scaled by the squared
// Hamming loss of Eq. 6 (high-HR layers receive a stronger penalty).
func ApplyLHR(w *tensor.Float, bits int, opt LHROptions) LHRResult {
	base := Quantize(w, bits)
	// Eq. 6 weighting: effective per-bit penalty proportional to the
	// layer's own HR, iterated once to self-consistency.
	lam := opt.Lambda * 2 * base.HR()
	tuned := ProximalTune(base.Codes.Data, bits, opt.Window, lam)
	after := &Quantized{Codes: &tensor.Int{Shape: base.Codes.Shape, Data: tuned, Bits: bits}, Scale: base.Scale}
	return LHRResult{Before: base, After: after, Drift: MeanAbsCodeDelta(base, after)}
}

// NetworkLoss computes the paper's Eq. 6 Hamming loss over a set of
// layers: the sum of squared per-layer average HRs.
func NetworkLoss(layers []*Quantized) float64 {
	s := 0.0
	for _, q := range layers {
		hr := q.HR()
		s += hr * hr
	}
	return s
}
