// Package quant implements the quantization toolchain the AIM software
// stack builds on: a symmetric fixed-point quantizer, the LHR (Lower
// Hamming Rate) regularizer of the paper's §5.3 with both its
// gradient-based form (Eq. 5/6) and a proximal fixed-point solver, a
// PTQ path (OmniQuant/BRECQ-lite) for Table 3, gradual magnitude
// pruning for Fig. 15, and Hamming-rate metrics over quantized layers.
package quant

import (
	"fmt"
	"math"

	"aim/internal/fxp"
	"aim/internal/tensor"
)

// Quantized holds the integer codes of a tensor together with the
// symmetric per-tensor scale used to produce them: value ≈ code * Scale.
type Quantized struct {
	Codes *tensor.Int
	Scale float64
}

// Scale returns the symmetric quantization scale mapping the tensor's
// absolute maximum to the top code at the given bit width.
func Scale(w *tensor.Float, bits int) float64 {
	m := w.AbsMax()
	if m == 0 {
		return 1
	}
	return m / float64(fxp.MaxInt(bits))
}

// Quantize performs symmetric round-to-nearest quantization at the given
// bit width. This is the "baseline" quantizer the paper compares against
// (Nagel et al. white-paper QAT rounding behaviour).
func Quantize(w *tensor.Float, bits int) *Quantized {
	s := Scale(w, bits)
	codes := tensor.NewInt(bits, w.Shape...)
	for i, v := range w.Data {
		codes.Data[i] = fxp.Clamp(int64(math.Round(v/s)), bits)
	}
	return &Quantized{Codes: codes, Scale: s}
}

// QuantizeWithScale quantizes with an externally chosen scale (used when
// a tuned float tensor must share the scale of its pre-tuning original).
func QuantizeWithScale(w *tensor.Float, bits int, s float64) *Quantized {
	if s <= 0 {
		panic("quant: scale must be positive")
	}
	codes := tensor.NewInt(bits, w.Shape...)
	for i, v := range w.Data {
		codes.Data[i] = fxp.Clamp(int64(math.Round(v/s)), bits)
	}
	return &Quantized{Codes: codes, Scale: s}
}

// Dequantize maps codes back to float values.
func Dequantize(q *Quantized) *tensor.Float {
	out := tensor.NewFloat(q.Codes.Shape...)
	for i, c := range q.Codes.Data {
		out.Data[i] = float64(c) * q.Scale
	}
	return out
}

// HR returns the Hamming rate of the quantized codes (paper Eq. 3).
func (q *Quantized) HR() float64 {
	return fxp.HR(q.Codes.Data, q.Codes.Bits)
}

// HM returns the Hamming value (total count of 1 bits) of the codes.
func (q *Quantized) HM() int {
	return fxp.HM(q.Codes.Data, q.Codes.Bits)
}

// Clone deep-copies the quantized tensor.
func (q *Quantized) Clone() *Quantized {
	return &Quantized{Codes: q.Codes.Clone(), Scale: q.Scale}
}

// MeanAbsCodeDelta returns the mean absolute difference between two code
// tensors, in code units. It is the perturbation measure the accuracy
// surrogate consumes.
func MeanAbsCodeDelta(a, b *Quantized) float64 {
	if len(a.Codes.Data) != len(b.Codes.Data) {
		panic(fmt.Sprintf("quant: code length mismatch %d != %d", len(a.Codes.Data), len(b.Codes.Data)))
	}
	if len(a.Codes.Data) == 0 {
		return 0
	}
	s := 0.0
	for i := range a.Codes.Data {
		d := float64(a.Codes.Data[i] - b.Codes.Data[i])
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s / float64(len(a.Codes.Data))
}
