package quant

import (
	"aim/internal/fxp"
	"aim/internal/tensor"
)

// WDS implements the Weight Distribution Shift of the paper's §5.4
// (Algorithm 1): add a constant δ to every quantized weight offline,
// clamping at INT_MAX of the bit width to avoid overflow into negative
// codes, and compensate after the matrix multiplication with
// Correction = −Sum(Input)·δ.
//
// δ must be a power of two so the hardware shift compensator can
// replace the multiplication with a bit shift (§5.4.2, Fig. 8).

// ShiftWeights returns a new Quantized with δ added to every code,
// clamped to the top of the representable range, plus the number of
// clamped (overflowed) codes. Negative δ is rejected: WDS only shifts
// toward positive values.
func ShiftWeights(q *Quantized, delta int) (*Quantized, int) {
	if delta < 0 {
		panic("quant: WDS delta must be non-negative")
	}
	bits := q.Codes.Bits
	hi := fxp.MaxInt(bits)
	out := q.Clone()
	overflow := 0
	for i, c := range out.Codes.Data {
		v := int64(c) + int64(delta)
		if v > int64(hi) {
			v = int64(hi)
			overflow++
		}
		out.Codes.Data[i] = int32(v)
	}
	return out, overflow
}

// IsPow2 reports whether delta is zero or a power of two — the legal δ
// values for the shift compensator.
func IsPow2(delta int) bool {
	return delta >= 0 && delta&(delta-1) == 0
}

// Correction computes the WDS compensation term for one output column:
// −Sum(inputs)·δ (Algorithm 1 line 9). Inputs are the integer input
// activations that multiplied the shifted weights.
func Correction(inputs []int32, delta int) int64 {
	var sum int64
	for _, x := range inputs {
		sum += int64(x)
	}
	return -sum * int64(delta)
}

// MatmulWithWDS runs the full Algorithm 1 on an integer matmul:
// out = (W + δ)·X + Correction. For codes that did not clamp, the
// result is bit-exact equal to W·X (verified by property tests). W is
// (m,k); X is (k,n).
func MatmulWithWDS(w *Quantized, x *tensor.Int, delta int) [][]int64 {
	shifted, _ := ShiftWeights(w, delta)
	out := tensor.MatMulInt(shifted.Codes, x)
	k := x.Shape[0]
	n := x.Shape[1]
	col := make([]int32, k)
	for j := 0; j < n; j++ {
		for p := 0; p < k; p++ {
			col[p] = x.Data[p*n+j]
		}
		corr := Correction(col, delta)
		for i := range out {
			out[i][j] += corr
		}
	}
	return out
}

// WDSGain reports the HR before and after shifting by δ. It is the
// primitive behind the Fig. 14 δ-sweep.
func WDSGain(q *Quantized, delta int) (before, after float64, overflowFrac float64) {
	before = q.HR()
	shifted, ov := ShiftWeights(q, delta)
	after = shifted.HR()
	if n := len(q.Codes.Data); n > 0 {
		overflowFrac = float64(ov) / float64(n)
	}
	return before, after, overflowFrac
}
