package check

import (
	"bytes"
	"fmt"

	"aim/internal/planstore"
)

// PlanStore verifies every entry of a plan-store directory the hard
// way — the restic-checker discipline of trusting nothing the happy
// path already believed: each entry's envelope must parse, its
// self-declared key must re-derive the content-addressed name it is
// stored under, its payload must decode, and the decoded plan must
// re-encode to the identical bytes (the canonical-encoding proof that
// a future reader reconstructs exactly this plan). Orphaned temp
// files — writers that died between temp-write and rename, which Open
// normally sweeps — are findings too, since a checker runs against
// stores no server has reopened. entries is how many were examined,
// so "0 findings" can be told apart from "0 entries".
func PlanStore(dir string) (entries int, fs []Finding, err error) {
	b, err := planstore.OpenDir(dir)
	if err != nil {
		return 0, nil, err
	}
	orphans, err := b.Orphans()
	if err != nil {
		return 0, nil, err
	}
	for _, o := range orphans {
		fs = append(fs, Finding{Area: "planstore", Path: o, Problem: "orphaned temp file (writer died before rename)"})
	}
	names, err := b.List()
	if err != nil {
		return 0, nil, err
	}
	for _, name := range names {
		entries++
		if f, ok := checkEntry(b, name); !ok {
			fs = append(fs, f)
		}
	}
	return entries, fs, nil
}

// checkEntry classifies one entry, returning the finding if it is not
// pristine. The checks run cheapest-first and stop at the first
// defect: a stale entry's payload is from another generation, so
// decoding it has nothing further to prove.
func checkEntry(b planstore.Backend, name string) (Finding, bool) {
	fail := func(format string, args ...any) (Finding, bool) {
		return Finding{Area: "planstore", Path: name, Problem: fmt.Sprintf(format, args...)}, false
	}
	data, err := b.Load(name)
	if err != nil {
		return fail("unreadable: %v", err)
	}
	h, err := planstore.ReadHeader(data)
	if err != nil {
		return fail("corrupt envelope: %v", err)
	}
	if h.FormatVersion != planstore.FormatVersion || h.CodeVersion != planstore.CodeVersion {
		return fail("stale: format v%d code %q (current: v%d %q)",
			h.FormatVersion, h.CodeVersion, planstore.FormatVersion, planstore.CodeVersion)
	}
	k, err := planstore.ParseID(h.KeyID)
	if err != nil {
		return fail("corrupt key id: %v", err)
	}
	if want := k.Hash(); want != name {
		return fail("misplaced: declared key %q belongs at %s", h.KeyID, want)
	}
	p, err := planstore.Decode(k, data)
	if err != nil {
		return fail("payload does not decode: %v", err)
	}
	reenc, err := planstore.Encode(k, p)
	if err != nil {
		return fail("decoded plan does not re-encode: %v", err)
	}
	if !bytes.Equal(reenc, data) {
		return fail("decode round-trip is not byte-identical (%d vs %d bytes)", len(reenc), len(data))
	}
	return Finding{}, true
}
