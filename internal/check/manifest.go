package check

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// ManifestSchemaVersion is the manifest layout version; bump it when
// the JSON shape changes.
const ManifestSchemaVersion = 1

// Manifest is the machine-readable pin file (manifest/experiments.json):
// the single source of truth for every sha256-pinned artifact. The
// experiment tests, the irmap tests and the checker all load their
// expected hashes from here, so a pin moves in exactly one place — a
// reviewed manifest diff — never in a scattered string literal.
type Manifest struct {
	// SchemaVersion is ManifestSchemaVersion at write time.
	SchemaVersion int `json:"schema_version"`
	// Seed is the seed every pinned experiment table and irmap output
	// was rendered at.
	Seed int64 `json:"seed"`
	// Experiments maps experiment id → sha256 of Table.Render() at
	// Seed, for every id in the registry.
	Experiments map[string]string `json:"experiments"`
	// IRMap maps output kind ("ascii", "csv") → sha256 of the irmap
	// command's default-flag output at Seed.
	IRMap map[string]string `json:"irmap"`
}

// LoadManifest reads and parses the pin manifest. A parse failure is
// an error (there is nothing to verify against), but structural
// defects are reported by Findings, not here.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("check: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("check: parse manifest %s: %w", path, err)
	}
	return &m, nil
}

// Findings validates the manifest's own structure: schema version,
// seed, and the shape of every pin (64 lowercase hex characters). It
// cannot tell a tampered pin from a legitimate one — that takes
// recomputation (IRMap, or aimcheck -experiments) — but it catches a
// manifest that could not have been written by the generator.
func (m *Manifest) Findings() []Finding {
	var fs []Finding
	add := func(path, format string, args ...any) {
		fs = append(fs, Finding{Area: "manifest", Path: path, Problem: fmt.Sprintf(format, args...)})
	}
	if m.SchemaVersion != ManifestSchemaVersion {
		add("schema_version", "got %d, want %d", m.SchemaVersion, ManifestSchemaVersion)
	}
	if m.Seed <= 0 {
		add("seed", "non-positive seed %d", m.Seed)
	}
	if len(m.Experiments) == 0 {
		add("experiments", "no experiment pins")
	}
	for _, kind := range []string{"ascii", "csv"} {
		if _, ok := m.IRMap[kind]; !ok {
			add("irmap."+kind, "missing pin")
		}
	}
	check := func(section string, pins map[string]string) {
		ids := make([]string, 0, len(pins))
		for id := range pins {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			if !validPin(pins[id]) {
				add(section+"."+id, "pin %q is not 64 lowercase hex characters", pins[id])
			}
		}
	}
	check("experiments", m.Experiments)
	check("irmap", m.IRMap)
	return fs
}

// validPin reports whether s has the shape SHA256 produces.
func validPin(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Encode renders the manifest in its canonical on-disk form:
// two-space-indented JSON with sorted keys (encoding/json sorts map
// keys) and a trailing newline, so regeneration of unchanged pins is
// byte-stable.
func (m *Manifest) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
