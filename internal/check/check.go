// Package check is the integrity checker behind cmd/aimcheck: it
// verifies the repository's persistent artifacts after the fact —
// plan-store directories (envelope, content address, decode
// round-trip), the pin manifest that is the single source of truth
// for every sha256-pinned experiment table and irmap output, and
// BENCH_*.json benchmark artifacts (shape, provenance, finite
// numbers). Each verifier returns Findings rather than errors: a
// finding is a fact about a damaged artifact, and a run with zero
// findings is the machine-checkable definition of "pristine".
package check

import (
	"crypto/sha256"
	"fmt"
)

// Finding is one verified defect: which artifact, where, and what is
// wrong with it. Findings are facts, not failures — the checker keeps
// going after each one so a single run reports everything.
type Finding struct {
	// Area names the verifier ("planstore", "manifest", "irmap",
	// "bench", "experiments").
	Area string
	// Path locates the artifact: a file path, a store entry name, or a
	// manifest pin id.
	Path string
	// Problem says what is wrong, in one line.
	Problem string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Area, f.Path, f.Problem)
}

// SHA256 is the pin hash every artifact uses: hex sha256 over the
// exact rendered bytes.
func SHA256(data []byte) string {
	return fmt.Sprintf("%x", sha256.Sum256(data))
}
