package check

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
)

// MinBenchPasses is the provenance floor: every benchmark artifact
// must record at least this many independent passes behind its
// min-of-N numbers, matching the Makefile's min-of-3 protocol.
const MinBenchPasses = 3

// benchSeries is the schema the Makefile's bench_json awk emits
// (BENCH_rtog.json, BENCH_pdn.json, BENCH_planstore.json, ...).
type benchSeries struct {
	Benchmarks []struct {
		Name    string  `json:"name"`
		Iters   int64   `json:"iterations"`
		NsPerOp float64 `json:"ns_per_op"`
		Passes  int     `json:"passes"`
		// Saturated, when present, is the benchmark's worst observed
		// saturated-solve rate per op (the sat/op metric column the
		// spatial benches report). Any nonzero rate is a finding: a
		// solver quietly hitting its iteration cap means the timed
		// numbers were bought with unconverged fields.
		Saturated *float64 `json:"saturated"`
	} `json:"benchmarks"`
	// SpatialPackedRatio, when present, is the headline
	// BenchmarkSimSpatialIncr / BenchmarkSimPacked quotient the
	// bench-spatial target emits into BENCH_spatial.json.
	SpatialPackedRatio *float64 `json:"spatial_packed_ratio"`
}

// benchHTTP is the schema cmd/aimserve -bench emits (BENCH_http.json).
type benchHTTP struct {
	Bench   string         `json:"bench"`
	Runs    int            `json:"runs"`
	Workers int            `json:"workers"`
	Steady  benchHTTPPhase `json:"steady"`
	Burst   benchHTTPPhase `json:"burst"`
}

type benchHTTPPhase struct {
	Requests int     `json:"requests"`
	OK       int     `json:"ok"`
	Shed     int     `json:"shed"`
	ShedRate float64 `json:"shed_rate"`
	P50MS    float64 `json:"p50_ms"`
	P95MS    float64 `json:"p95_ms"`
	P99MS    float64 `json:"p99_ms"`
}

// Bench validates one BENCH_*.json artifact: a recognized schema,
// required fields present, min-of-3 provenance recorded, and every
// number finite and positive. It exists so CI catches a broken bench
// emitter the moment it produces garbage, before the artifact
// pollutes the perf trajectory.
func Bench(path string) []Finding {
	name := filepath.Base(path)
	fail := func(format string, args ...any) []Finding {
		return []Finding{{Area: "bench", Path: name, Problem: fmt.Sprintf(format, args...)}}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return fail("unreadable: %v", err)
	}
	var sniff map[string]json.RawMessage
	if err := json.Unmarshal(data, &sniff); err != nil {
		return fail("malformed JSON: %v", err)
	}
	switch {
	case sniff["benchmarks"] != nil:
		return benchSeriesFindings(name, data)
	case sniff["bench"] != nil:
		return benchHTTPFindings(name, data)
	default:
		return fail("unrecognized schema: neither a benchmark series nor an http bench document")
	}
}

func benchSeriesFindings(name string, data []byte) []Finding {
	var fs []Finding
	add := func(path, format string, args ...any) {
		fs = append(fs, Finding{Area: "bench", Path: path, Problem: fmt.Sprintf(format, args...)})
	}
	var doc benchSeries
	if err := json.Unmarshal(data, &doc); err != nil {
		return []Finding{{Area: "bench", Path: name, Problem: fmt.Sprintf("malformed series document: %v", err)}}
	}
	if len(doc.Benchmarks) == 0 {
		add(name, "empty benchmark series")
	}
	seen := map[string]bool{}
	for i, b := range doc.Benchmarks {
		at := fmt.Sprintf("%s#%d", name, i)
		if b.Name != "" {
			at = name + "#" + b.Name
		}
		if !strings.HasPrefix(b.Name, "Benchmark") {
			add(at, "name %q does not start with Benchmark", b.Name)
		}
		if seen[b.Name] {
			add(at, "duplicate benchmark name")
		}
		seen[b.Name] = true
		if b.Iters < 1 {
			add(at, "iterations %d, want >= 1", b.Iters)
		}
		if !(b.NsPerOp > 0) || math.IsInf(b.NsPerOp, 0) {
			add(at, "ns_per_op %v is not finite and positive", b.NsPerOp)
		}
		if b.Passes < MinBenchPasses {
			add(at, "passes %d, want >= %d (min-of-%d provenance)", b.Passes, MinBenchPasses, MinBenchPasses)
		}
		if b.Saturated != nil {
			switch {
			case math.IsNaN(*b.Saturated) || math.IsInf(*b.Saturated, 0) || *b.Saturated < 0:
				add(at, "saturated %v is not finite and non-negative", *b.Saturated)
			case *b.Saturated > 0:
				add(at, "saturated solves at %v per op: the mesh solver hit its iteration cap, the timed numbers carry unconverged fields", *b.Saturated)
			}
		}
	}
	if r := doc.SpatialPackedRatio; r != nil && (!(*r > 0) || math.IsInf(*r, 0)) {
		add(name, "spatial_packed_ratio %v is not finite and positive", *r)
	}
	return fs
}

func benchHTTPFindings(name string, data []byte) []Finding {
	var fs []Finding
	add := func(path, format string, args ...any) {
		fs = append(fs, Finding{Area: "bench", Path: path, Problem: fmt.Sprintf(format, args...)})
	}
	var doc benchHTTP
	if err := json.Unmarshal(data, &doc); err != nil {
		return []Finding{{Area: "bench", Path: name, Problem: fmt.Sprintf("malformed http bench document: %v", err)}}
	}
	if doc.Bench != "http" {
		add(name, "bench = %q, want \"http\"", doc.Bench)
	}
	if doc.Runs < MinBenchPasses {
		add(name, "runs %d, want >= %d (min-of-%d provenance)", doc.Runs, MinBenchPasses, MinBenchPasses)
	}
	if doc.Workers < 1 {
		add(name, "workers %d, want >= 1", doc.Workers)
	}
	// Phases validate in fixed document order: the findings are
	// rendered, and map iteration order must never reach output
	// (aimlint: no-map-range-render).
	for _, ph := range []struct {
		name string
		benchHTTPPhase
	}{{"steady", doc.Steady}, {"burst", doc.Burst}} {
		p := ph.benchHTTPPhase
		at := name + "." + ph.name
		if p.Requests < 1 {
			add(at, "requests %d, want >= 1", p.Requests)
			continue
		}
		if p.OK < 0 || p.Shed < 0 || p.OK+p.Shed != p.Requests {
			add(at, "ok %d + shed %d != requests %d", p.OK, p.Shed, p.Requests)
		}
		if p.ShedRate < 0 || p.ShedRate > 1 {
			add(at, "shed_rate %v outside [0,1]", p.ShedRate)
		}
		for _, q := range []struct {
			label string
			v     float64
		}{{"p50_ms", p.P50MS}, {"p95_ms", p.P95MS}, {"p99_ms", p.P99MS}} {
			if !(q.v > 0) || math.IsInf(q.v, 0) {
				add(at, "%s %v is not finite and positive", q.label, q.v)
			}
		}
		if p.P50MS > p.P95MS || p.P95MS > p.P99MS {
			add(at, "percentiles not ordered: p50 %v, p95 %v, p99 %v", p.P50MS, p.P95MS, p.P99MS)
		}
	}
	return fs
}
