package check

import (
	"strings"

	"aim/internal/pdn"
)

// Default irmap activities — the command's default flag values, which
// are what the pinned outputs were rendered with.
const (
	irmapBaseActivity = 0.50
	irmapOptActivity  = 0.26
)

// IRMapHashes renders the irmap command's default-flag outputs (ASCII
// and CSV, default floorplan) at seed through the shared rendering
// core and returns their pin hashes by kind. Both the verifier and
// the manifest writer derive pins here, so they can never disagree on
// what "the default output" means.
func IRMapHashes(seed int64) map[string]string {
	fp := pdn.DefaultFloorplan()
	out := make(map[string]string, 2)
	for _, kind := range []string{"ascii", "csv"} {
		var sb strings.Builder
		pdn.RenderIRMap(&sb, fp, irmapBaseActivity, irmapOptActivity, seed, kind == "csv")
		out[kind] = SHA256([]byte(sb.String()))
	}
	return out
}

// IRMap recomputes the irmap pins at the manifest seed and compares
// them against the manifest. Unlike the experiment tables this
// recompute is sub-second, so the checker always runs it — a tampered
// irmap pin can never pass.
func IRMap(m *Manifest) []Finding {
	var fs []Finding
	got := IRMapHashes(m.Seed)
	for _, kind := range []string{"ascii", "csv"} {
		pin, ok := m.IRMap[kind]
		if !ok {
			continue // already a manifest finding
		}
		if got[kind] != pin {
			fs = append(fs, Finding{
				Area:    "irmap",
				Path:    "irmap." + kind,
				Problem: "recomputed sha256 " + got[kind] + " does not match pin " + pin,
			})
		}
	}
	return fs
}
