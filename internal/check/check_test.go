package check

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aim/internal/core"
	"aim/internal/model"
	"aim/internal/planstore"
	"aim/internal/vf"
)

// encodedPlan compiles and encodes the reference plan once per test
// binary (compilation dominates the package's test time otherwise).
var encodedPlan = struct {
	key  planstore.Key
	data []byte
}{}

func testEntry(t *testing.T) (planstore.Key, []byte) {
	t.Helper()
	if encodedPlan.data == nil {
		k := planstore.Key{Network: "resnet18", Mode: vf.LowPower.String(), Bits: 8, Delta: 16, Seed: 1}
		net, err := model.ByName(k.Network, 2025)
		if err != nil {
			t.Fatal(err)
		}
		p := core.NewPipeline(vf.LowPower)
		p.Seed = k.Seed
		data, err := planstore.Encode(k, p.Compile(net))
		if err != nil {
			t.Fatal(err)
		}
		encodedPlan.key, encodedPlan.data = k, data
	}
	return encodedPlan.key, append([]byte(nil), encodedPlan.data...)
}

// populate writes one pristine entry into a fresh store directory and
// returns its directory, name, and on-disk path.
func populate(t *testing.T) (dir, name, path string) {
	t.Helper()
	dir = t.TempDir()
	k, data := testEntry(t)
	b, err := planstore.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	name = k.Hash()
	if err := b.Store(name, data); err != nil {
		t.Fatal(err)
	}
	return dir, name, filepath.Join(dir, name[:2], name)
}

func TestPlanStorePristine(t *testing.T) {
	dir, _, _ := populate(t)
	entries, fs, err := PlanStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if entries != 1 || len(fs) != 0 {
		t.Fatalf("entries = %d, findings = %v; want 1 pristine entry", entries, fs)
	}
}

// TestPlanStoreCorruptionClasses plants one instance of every damage
// class the checker must catch and asserts each yields exactly one
// finding naming the right problem.
func TestPlanStoreCorruptionClasses(t *testing.T) {
	cases := []struct {
		name    string
		plant   func(t *testing.T, dir, entry, path string)
		problem string
	}{
		{"bit flip", func(t *testing.T, dir, entry, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)/2] ^= 0x01
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}, "does not decode"},
		{"truncation", func(t *testing.T, dir, entry, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)/3], 0o644); err != nil {
				t.Fatal(err)
			}
		}, "does not decode"},
		{"stale code version", func(t *testing.T, dir, entry, path string) {
			// A full envelope as an older compiler generation would have
			// written it: magic, version, old code version, key id, and a
			// declared (empty) payload.
			env := []byte("AIMPLAN1")
			env = binary.LittleEndian.AppendUint32(env, planstore.FormatVersion)
			for _, s := range []string{"aim-plan-0-ancient", "net=resnet18|mode=low-power|bits=8|delta=16|seed=1"} {
				env = binary.LittleEndian.AppendUint64(env, uint64(len(s)))
				env = append(env, s...)
			}
			env = binary.LittleEndian.AppendUint64(env, 0)
			if err := os.WriteFile(path, env, 0o644); err != nil {
				t.Fatal(err)
			}
		}, "stale"},
		{"bad magic", func(t *testing.T, dir, entry, path string) {
			if err := os.WriteFile(path, []byte("NOTAPLAN-at-all"), 0o644); err != nil {
				t.Fatal(err)
			}
		}, "corrupt envelope"},
		{"orphaned temp file", func(t *testing.T, dir, entry, path string) {
			orphan := filepath.Join(filepath.Dir(path), "tmp-"+entry+"-42")
			if err := os.WriteFile(orphan, []byte("partial"), 0o644); err != nil {
				t.Fatal(err)
			}
		}, "orphaned temp file"},
		{"misplaced entry", func(t *testing.T, dir, entry, path string) {
			// Valid bytes filed under a name their key does not hash to.
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			wrong := strings.Repeat("ab", 32)
			if err := os.MkdirAll(filepath.Join(dir, wrong[:2]), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, wrong[:2], wrong), data, 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
		}, "misplaced"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dir, entry, path := populate(t)
			c.plant(t, dir, entry, path)
			_, fs, err := PlanStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(fs) != 1 {
				t.Fatalf("findings = %v, want exactly 1", fs)
			}
			if !strings.Contains(fs[0].Problem, c.problem) {
				t.Fatalf("finding %q does not name %q", fs[0], c.problem)
			}
		})
	}
}

func TestManifestFindings(t *testing.T) {
	good := &Manifest{
		SchemaVersion: ManifestSchemaVersion,
		Seed:          2025,
		Experiments:   map[string]string{"fig3": strings.Repeat("ab", 32)},
		IRMap:         map[string]string{"ascii": strings.Repeat("01", 32), "csv": strings.Repeat("23", 32)},
	}
	if fs := good.Findings(); len(fs) != 0 {
		t.Fatalf("structurally valid manifest has findings: %v", fs)
	}
	cases := []struct {
		name    string
		mutate  func(m *Manifest)
		problem string
	}{
		{"wrong schema version", func(m *Manifest) { m.SchemaVersion = 99 }, "want 1"},
		{"zero seed", func(m *Manifest) { m.Seed = 0 }, "non-positive seed"},
		{"no experiment pins", func(m *Manifest) { m.Experiments = nil }, "no experiment pins"},
		{"missing irmap pin", func(m *Manifest) { delete(m.IRMap, "csv") }, "missing pin"},
		{"short pin", func(m *Manifest) { m.Experiments["fig3"] = "abc123" }, "64 lowercase hex"},
		{"uppercase pin", func(m *Manifest) { m.IRMap["ascii"] = strings.Repeat("AB", 32) }, "64 lowercase hex"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := &Manifest{
				SchemaVersion: good.SchemaVersion,
				Seed:          good.Seed,
				Experiments:   map[string]string{"fig3": good.Experiments["fig3"]},
				IRMap:         map[string]string{"ascii": good.IRMap["ascii"], "csv": good.IRMap["csv"]},
			}
			c.mutate(m)
			fs := m.Findings()
			if len(fs) == 0 {
				t.Fatal("no findings")
			}
			if !strings.Contains(fs[0].Problem, c.problem) {
				t.Fatalf("finding %q does not name %q", fs[0], c.problem)
			}
		})
	}
}

func TestManifestEncodeLoadRoundTrip(t *testing.T) {
	m := &Manifest{
		SchemaVersion: ManifestSchemaVersion,
		Seed:          2025,
		Experiments:   map[string]string{"fig3": strings.Repeat("ab", 32)},
		IRMap:         map[string]string{"ascii": strings.Repeat("01", 32), "csv": strings.Repeat("23", 32)},
	}
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "experiments.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("encode → load → encode is not byte-stable")
	}
}

// TestIRMapTamperDetected: the irmap pins are re-derived, so a
// tampered pin can never pass — and pristine pins always do.
func TestIRMapTamperDetected(t *testing.T) {
	m := &Manifest{Seed: 3, IRMap: IRMapHashes(3)}
	if fs := IRMap(m); len(fs) != 0 {
		t.Fatalf("pristine pins yielded findings: %v", fs)
	}
	tampered := []byte(m.IRMap["ascii"])
	if tampered[0] == '0' {
		tampered[0] = '1'
	} else {
		tampered[0] = '0'
	}
	m.IRMap["ascii"] = string(tampered)
	fs := IRMap(m)
	if len(fs) != 1 || !strings.Contains(fs[0].Problem, "does not match pin") {
		t.Fatalf("tampered ascii pin: findings = %v, want 1 mismatch", fs)
	}
}

func benchFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBenchSeries(t *testing.T) {
	valid := `{"benchmarks": [
	  {"name": "BenchmarkPlanEncode", "iterations": 20, "ns_per_op": 7831691, "passes": 3},
	  {"name": "BenchmarkPlanDecode", "iterations": 20, "ns_per_op": 4550748, "passes": 3}
	]}`
	if fs := Bench(benchFile(t, valid)); len(fs) != 0 {
		t.Fatalf("valid series has findings: %v", fs)
	}
	spatial := `{"benchmarks": [
	  {"name": "BenchmarkSimSpatialIncr", "iterations": 3, "ns_per_op": 2.1e8, "passes": 3, "saturated": 0},
	  {"name": "BenchmarkSimPacked", "iterations": 3, "ns_per_op": 1.2e8, "passes": 3}
	], "spatial_packed_ratio": 1.75}`
	if fs := Bench(benchFile(t, spatial)); len(fs) != 0 {
		t.Fatalf("valid spatial series has findings: %v", fs)
	}
	cases := []struct {
		name    string
		content string
		problem string
	}{
		{"malformed json", `{"benchmarks": [`, "malformed JSON"},
		{"unknown schema", `{"something": 1}`, "unrecognized schema"},
		{"empty series", `{"benchmarks": []}`, "empty benchmark series"},
		{"bad name", `{"benchmarks": [{"name": "oops", "iterations": 1, "ns_per_op": 5, "passes": 3}]}`, "does not start with Benchmark"},
		{"duplicate name", `{"benchmarks": [
		   {"name": "BenchmarkX", "iterations": 1, "ns_per_op": 5, "passes": 3},
		   {"name": "BenchmarkX", "iterations": 1, "ns_per_op": 5, "passes": 3}]}`, "duplicate"},
		{"zero iterations", `{"benchmarks": [{"name": "BenchmarkX", "iterations": 0, "ns_per_op": 5, "passes": 3}]}`, "iterations"},
		{"negative ns", `{"benchmarks": [{"name": "BenchmarkX", "iterations": 1, "ns_per_op": -5, "passes": 3}]}`, "finite and positive"},
		{"missing passes", `{"benchmarks": [{"name": "BenchmarkX", "iterations": 1, "ns_per_op": 5}]}`, "min-of-3 provenance"},
		{"too few passes", `{"benchmarks": [{"name": "BenchmarkX", "iterations": 1, "ns_per_op": 5, "passes": 2}]}`, "min-of-3 provenance"},
		{"nonzero saturation", `{"benchmarks": [{"name": "BenchmarkX", "iterations": 1, "ns_per_op": 5, "passes": 3, "saturated": 0.5}]}`, "iteration cap"},
		{"negative saturation", `{"benchmarks": [{"name": "BenchmarkX", "iterations": 1, "ns_per_op": 5, "passes": 3, "saturated": -1}]}`, "finite and non-negative"},
		{"bad ratio", `{"benchmarks": [{"name": "BenchmarkX", "iterations": 1, "ns_per_op": 5, "passes": 3}], "spatial_packed_ratio": 0}`, "spatial_packed_ratio"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			fs := Bench(benchFile(t, c.content))
			if len(fs) == 0 {
				t.Fatal("no findings")
			}
			found := false
			for _, f := range fs {
				found = found || strings.Contains(f.Problem, c.problem)
			}
			if !found {
				t.Fatalf("findings %v do not name %q", fs, c.problem)
			}
		})
	}
}

func TestBenchHTTP(t *testing.T) {
	phase := `{"requests": 100, "ok": 95, "shed": 5, "shed_rate": 0.05,
	           "p50_ms": 1.5, "p95_ms": 4.0, "p99_ms": 9.0}`
	valid := `{"bench": "http", "runs": 3, "workers": 4,
	           "steady": ` + phase + `, "burst": ` + phase + `}`
	if fs := Bench(benchFile(t, valid)); len(fs) != 0 {
		t.Fatalf("valid http document has findings: %v", fs)
	}
	cases := []struct {
		name    string
		content string
		problem string
	}{
		{"too few runs", strings.Replace(valid, `"runs": 3`, `"runs": 1`, 1), "min-of-3 provenance"},
		{"zero workers", strings.Replace(valid, `"workers": 4`, `"workers": 0`, 1), "workers"},
		{"ok+shed mismatch", strings.Replace(valid, `"ok": 95`, `"ok": 90`, 2), "!= requests"},
		{"unordered percentiles", strings.Replace(valid, `"p95_ms": 4.0`, `"p95_ms": 40.0`, 2), "not ordered"},
		{"empty phase", strings.Replace(valid, `"requests": 100`, `"requests": 0`, 2), "requests"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			fs := Bench(benchFile(t, c.content))
			if len(fs) == 0 {
				t.Fatal("no findings")
			}
			found := false
			for _, f := range fs {
				found = found || strings.Contains(f.Problem, c.problem)
			}
			if !found {
				t.Fatalf("findings %v do not name %q", fs, c.problem)
			}
		})
	}
}
