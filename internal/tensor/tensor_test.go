package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"aim/internal/xrand"
)

func TestNewAndIndex(t *testing.T) {
	a := NewFloat(2, 3)
	if a.Len() != 6 {
		t.Fatalf("len = %d, want 6", a.Len())
	}
	a.Set(5, 1, 2)
	if got := a.At(1, 2); got != 5 {
		t.Errorf("At(1,2) = %v, want 5", got)
	}
	if got := a.At(0, 0); got != 0 {
		t.Errorf("At(0,0) = %v, want 0", got)
	}
}

func TestIndexPanics(t *testing.T) {
	a := NewFloat(2, 3)
	for _, idx := range [][]int{{2, 0}, {0, 3}, {-1, 0}, {0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for index %v", idx)
				}
			}()
			a.At(idx...)
		}()
	}
}

func TestNegativeDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFloat(2, -1)
}

func TestCloneIndependent(t *testing.T) {
	a := NewFloat(2, 2)
	a.Set(1, 0, 0)
	b := a.Clone()
	b.Set(9, 0, 0)
	if a.At(0, 0) != 1 {
		t.Error("clone aliased parent data")
	}
}

func TestMatMulFloatKnown(t *testing.T) {
	a := &Float{Shape: []int{2, 3}, Data: []float64{1, 2, 3, 4, 5, 6}}
	b := &Float{Shape: []int{3, 2}, Data: []float64{7, 8, 9, 10, 11, 12}}
	c := MatMulFloat(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if math.Abs(c.Data[i]-w) > 1e-12 {
			t.Errorf("c[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulIntKnown(t *testing.T) {
	a := &Int{Shape: []int{2, 2}, Data: []int32{1, -2, 3, 4}, Bits: 8}
	b := &Int{Shape: []int{2, 2}, Data: []int32{5, 6, 7, -8}, Bits: 8}
	c := MatMulInt(a, b)
	want := [][]int64{{-9, 22}, {43, -14}}
	for i := range want {
		for j := range want[i] {
			if c[i][j] != want[i][j] {
				t.Errorf("c[%d][%d] = %d, want %d", i, j, c[i][j], want[i][j])
			}
		}
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMulFloat(NewFloat(2, 3), NewFloat(2, 3))
}

func TestAbsMaxMeanApply(t *testing.T) {
	a := &Float{Shape: []int{4}, Data: []float64{-3, 1, 2, -0.5}}
	if got := a.AbsMax(); got != 3 {
		t.Errorf("AbsMax = %v, want 3", got)
	}
	if got := a.Mean(); math.Abs(got-(-0.125)) > 1e-12 {
		t.Errorf("Mean = %v, want -0.125", got)
	}
	a.Apply(func(v float64) float64 { return v * 2 })
	if a.Data[0] != -6 {
		t.Errorf("Apply failed: %v", a.Data)
	}
}

func TestSameShape(t *testing.T) {
	if !SameShape([]int{2, 3}, []int{2, 3}) {
		t.Error("expected same")
	}
	if SameShape([]int{2, 3}, []int{3, 2}) || SameShape([]int{2}, []int{2, 1}) {
		t.Error("expected different")
	}
}

// Property: float and int matmul agree on integer-valued inputs.
func TestMatMulIntMatchesFloatProperty(t *testing.T) {
	g := xrand.New(21)
	f := func(seed int64) bool {
		m, k, n := 1+g.Intn(5), 1+g.Intn(5), 1+g.Intn(5)
		af := NewFloat(m, k)
		ai := NewInt(8, m, k)
		bf := NewFloat(k, n)
		bi := NewInt(8, k, n)
		for i := range ai.Data {
			v := int32(g.Intn(255) - 127)
			ai.Data[i] = v
			af.Data[i] = float64(v)
		}
		for i := range bi.Data {
			v := int32(g.Intn(255) - 127)
			bi.Data[i] = v
			bf.Data[i] = float64(v)
		}
		cf := MatMulFloat(af, bf)
		ci := MatMulInt(ai, bi)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				if int64(cf.At(i, j)) != ci[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStringCompact(t *testing.T) {
	a := NewFloat(10)
	s := a.String()
	if len(s) == 0 {
		t.Error("empty string")
	}
}
