// Package tensor provides the minimal dense tensor machinery used by the
// quantization toolchain and the PIM simulator: float64 tensors for
// pre-quantization weights and int32 tensors for quantized codes, with
// just enough linear algebra (matmul, transforms) to run workloads
// end to end.
package tensor

import (
	"fmt"
	"strings"
)

// Float is a dense row-major float64 tensor.
type Float struct {
	Shape []int
	Data  []float64
}

// Int is a dense row-major int32 tensor of quantized codes with an
// associated bit width.
type Int struct {
	Shape []int
	Data  []int32
	Bits  int
}

// NewFloat allocates a zero Float tensor with the given shape.
func NewFloat(shape ...int) *Float {
	return &Float{Shape: append([]int(nil), shape...), Data: make([]float64, NumElems(shape))}
}

// NewInt allocates a zero Int tensor with the given bit width and shape.
func NewInt(bits int, shape ...int) *Int {
	return &Int{Shape: append([]int(nil), shape...), Data: make([]int32, NumElems(shape)), Bits: bits}
}

// NumElems returns the product of dims; panics on negative dims.
func NumElems(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic("tensor: negative dimension")
		}
		n *= d
	}
	return n
}

// Len returns the number of elements.
func (t *Float) Len() int { return len(t.Data) }

// Len returns the number of elements.
func (t *Int) Len() int { return len(t.Data) }

// Clone deep-copies the tensor.
func (t *Float) Clone() *Float {
	c := NewFloat(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Clone deep-copies the tensor.
func (t *Int) Clone() *Int {
	c := NewInt(t.Bits, t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// At returns the element at the given multi-index.
func (t *Float) At(idx ...int) float64 { return t.Data[t.offset(idx)] }

// Set stores v at the given multi-index.
func (t *Float) Set(v float64, idx ...int) { t.Data[t.offset(idx)] = v }

func (t *Float) offset(idx []int) int { return offset(t.Shape, idx) }

// At returns the element at the given multi-index.
func (t *Int) At(idx ...int) int32 { return t.Data[offset(t.Shape, idx)] }

// Set stores v at the given multi-index.
func (t *Int) Set(v int32, idx ...int) { t.Data[offset(t.Shape, idx)] = v }

func offset(shape, idx []int) int {
	if len(idx) != len(shape) {
		panic(fmt.Sprintf("tensor: index rank %d != shape rank %d", len(idx), len(shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range for dim %d (size %d)", x, i, shape[i]))
		}
		off = off*shape[i] + x
	}
	return off
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// MatMulFloat computes C = A x B for 2-D tensors: A is (m,k), B is (k,n).
func MatMulFloat(a, b *Float) *Float {
	m, k, n := check2DMul(a.Shape, b.Shape)
	c := NewFloat(m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := c.Data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				crow[j] += av * brow[j]
			}
		}
	}
	return c
}

// MatMulInt computes the exact integer product C = A x B with int64
// accumulation; A is (m,k), B is (k,n). The result carries no bit width
// clamping: PIM accumulators are wide.
func MatMulInt(a, b *Int) [][]int64 {
	m, k, n := check2DMul(a.Shape, b.Shape)
	c := make([][]int64, m)
	for i := 0; i < m; i++ {
		c[i] = make([]int64, n)
		arow := a.Data[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			av := int64(arow[p])
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				c[i][j] += av * int64(brow[j])
			}
		}
	}
	return c
}

func check2DMul(as, bs []int) (m, k, n int) {
	if len(as) != 2 || len(bs) != 2 {
		panic("tensor: matmul requires rank-2 tensors")
	}
	if as[1] != bs[0] {
		panic(fmt.Sprintf("tensor: inner dims mismatch %d != %d", as[1], bs[0]))
	}
	return as[0], as[1], bs[1]
}

// AbsMax returns the maximum absolute value in the tensor (0 for empty).
func (t *Float) AbsMax() float64 {
	m := 0.0
	for _, v := range t.Data {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// Mean returns the arithmetic mean (0 for empty).
func (t *Float) Mean() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s / float64(len(t.Data))
}

// Apply replaces every element with f(element).
func (t *Float) Apply(f func(float64) float64) {
	for i, v := range t.Data {
		t.Data[i] = f(v)
	}
}

// String renders a compact description (shape + a few leading values).
func (t *Float) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Float%v[", t.Shape)
	for i, v := range t.Data {
		if i == 6 {
			sb.WriteString("...")
			break
		}
		if i > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "%.3g", v)
	}
	sb.WriteString("]")
	return sb.String()
}
