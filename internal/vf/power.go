package vf

// PowerModel converts an operating point plus workload activity into
// per-macro power, calibrated so the baseline — nominal V-f at the
// baseline workload activity — draws the 4.2978 mW/macro the paper
// reports for its 256-TOPS chip (§6.6, Fig. 19b).
type PowerModel struct {
	// LeakMW is the leakage power at nominal voltage (scales ~linearly
	// with V in the regime of interest).
	LeakMW float64
	// SwitchMW is the switching power at nominal V, nominal f and the
	// baseline activity.
	SwitchMW float64
	// BaselineActivity is the average Rtog of the unoptimized baseline
	// workload the 4.2978 mW figure corresponds to.
	BaselineActivity float64
}

// DefaultPowerModel returns the calibrated 7nm model.
func DefaultPowerModel() PowerModel {
	return PowerModel{LeakMW: 0.50, SwitchMW: 3.7978, BaselineActivity: 0.27}
}

// MacroPowerMW evaluates the model: leakage scales with V, switching
// with V²·f and linearly with activity (toggles are what burn charge,
// which is exactly why LHR/WDS cut power as well as IR-drop).
func (pm PowerModel) MacroPowerMW(p Pair, activity float64) float64 {
	if activity < 0 {
		panic("vf: negative activity")
	}
	vr := p.V / NominalV
	fr := p.FreqGHz / NominalFreqGHz
	return pm.LeakMW*vr + pm.SwitchMW*vr*vr*fr*(activity/pm.BaselineActivity)
}

// BaselinePowerMW is the reference per-macro power (nominal point,
// baseline activity).
func (pm PowerModel) BaselinePowerMW() float64 {
	return pm.MacroPowerMW(Pair{V: NominalV, FreqGHz: NominalFreqGHz}, pm.BaselineActivity)
}

// EfficiencyGain returns baseline power over the power at (pair,
// activity) — the paper's per-macro energy-efficiency improvement
// factor.
func (pm PowerModel) EfficiencyGain(p Pair, activity float64) float64 {
	return pm.BaselinePowerMW() / pm.MacroPowerMW(p, activity)
}

// ChipTOPS converts a frequency ratio and a compute-utilization factor
// (1 minus recompute/stall overhead) into chip throughput, anchored at
// the 256-TOPS nominal design point.
func ChipTOPS(freqGHz, utilization float64) float64 {
	return 256 * (freqGHz / NominalFreqGHz) * utilization
}
