package vf

import (
	"math"
	"testing"

	"aim/internal/irdrop"
)

func table() *Table { return NewTable(irdrop.DPIMModel()) }

func TestLevels(t *testing.T) {
	ls := Levels()
	if len(ls) != 10 {
		t.Fatalf("level count = %d, want 10 (20..60 step 5 + 100)", len(ls))
	}
	if ls[0] != 20 || ls[8] != 60 || ls[9] != DVFSLevel {
		t.Errorf("levels wrong: %v", ls)
	}
	for _, l := range ls {
		if !l.Valid() {
			t.Errorf("level %v invalid", l)
		}
	}
	if Level(23).Valid() || Level(65).Valid() {
		t.Error("invalid levels accepted")
	}
}

func TestLevelForHR(t *testing.T) {
	cases := []struct {
		hr   float64
		want Level
	}{
		{0.475, 50}, // paper's example: HRG 47.5% → safe level 50%
		{0.50, 50},
		{0.501, 55},
		{0.10, 20}, // floor of the validated range
		{0.61, DVFSLevel},
		{0.99, DVFSLevel},
	}
	for _, c := range cases {
		if got := LevelForHR(c.hr); got != c.want {
			t.Errorf("LevelForHR(%v) = %v, want %v", c.hr, got, c.want)
		}
	}
}

func TestLevelUpDown(t *testing.T) {
	if Level(40).Up() != 35 || Level(40).Down() != 45 {
		t.Error("up/down wrong")
	}
	if Level(20).Up() != 20 {
		t.Error("up must saturate at 20")
	}
	if Level(60).Down() != DVFSLevel || DVFSLevel.Down() != DVFSLevel {
		t.Error("down must saturate at DVFS")
	}
	if DVFSLevel.Up() != 60 {
		t.Error("DVFS up should re-enter the level range")
	}
}

func TestInitialALevelTable1(t *testing.T) {
	// Paper Table 1 verbatim.
	want := map[Level]Level{
		DVFSLevel: 60, 60: 40, 55: 35, 50: 35, 45: 35,
		40: 30, 35: 30, 30: 25, 25: 20, 20: 20,
	}
	for safe, a0 := range want {
		if got := InitialALevel(safe); got != a0 {
			t.Errorf("InitialALevel(%v) = %v, want %v", safe, got, a0)
		}
	}
}

func TestInitialALevelNeverAboveSafe(t *testing.T) {
	// The aggressive level always targets at most the safe level's
	// pessimism (a-level percentage <= safe level percentage).
	for _, safe := range Levels() {
		if a := InitialALevel(safe); a > safe {
			t.Errorf("a-level %v above safe %v", a, safe)
		}
	}
}

func TestDVFSPointFeasible(t *testing.T) {
	tb := table()
	fmax := tb.FMaxGHz(NominalV, DVFSLevel)
	if fmax < NominalFreqGHz {
		t.Errorf("sign-off point infeasible: fmax(0.75V, 100%%) = %v", fmax)
	}
	if fmax > NominalFreqGHz*1.15 {
		t.Errorf("sign-off point too slack: fmax = %v (calibration drifted)", fmax)
	}
}

func TestFMaxMonotone(t *testing.T) {
	tb := table()
	// Higher voltage → faster; lower level (less drop) → faster.
	if tb.FMaxGHz(0.70, 40) <= tb.FMaxGHz(0.65, 40) {
		t.Error("fmax not monotone in V")
	}
	if tb.FMaxGHz(0.70, 20) <= tb.FMaxGHz(0.70, 60) {
		t.Error("fmax not monotone in level")
	}
	if tb.FMaxGHz(0.31, 20) != 0 {
		t.Error("fmax below headroom should be 0")
	}
}

func TestPairSubsetsGrowAsLevelDrops(t *testing.T) {
	tb := table()
	prev := -1
	for _, l := range []Level{DVFSLevel, 60, 45, 30, 20} {
		n := len(tb.PairsFor(l))
		if prev >= 0 && n < prev {
			t.Errorf("pair subset shrank at level %v: %d < %d", l, n, prev)
		}
		prev = n
	}
}

func TestSprintBeatsDVFS(t *testing.T) {
	tb := table()
	dvfs := tb.DVFS()
	sprint := tb.Sprint(20)
	if sprint.FreqGHz <= dvfs.FreqGHz {
		t.Errorf("sprint at level 20 (%v) should out-clock DVFS (%v)", sprint, dvfs)
	}
	// Paper §6.6: sprint reaches ~1.15x; grid caps at 1.2 GHz.
	if sprint.FreqGHz > 1.2 {
		t.Errorf("sprint frequency %v beyond validated grid", sprint.FreqGHz)
	}
}

func TestLowPowerMinVoltageMaxFreq(t *testing.T) {
	tb := table()
	for _, l := range []Level{20, 25, 30, 45} {
		p := tb.LowPower(l)
		if p.V >= NominalV {
			t.Errorf("level %v low-power pair %v should undervolt", l, p)
		}
		// Contract: no validated pair has lower voltage, and none at
		// this voltage is faster.
		for _, q := range tb.PairsFor(l) {
			if q.V < p.V {
				t.Errorf("level %v: pair %v has lower voltage than chosen %v", l, q, p)
			}
			if q.V == p.V && q.FreqGHz > p.FreqGHz {
				t.Errorf("level %v: pair %v is faster at same voltage than %v", l, q, p)
			}
		}
		// The clock never falls off a cliff: the grid floor keeps
		// low-power pace within 20%% of nominal.
		if p.FreqGHz < 0.8 {
			t.Errorf("level %v low-power frequency %v too low", l, p.FreqGHz)
		}
	}
}

func TestIRBoosterFlexibilityVsDVFS(t *testing.T) {
	// The paper's key contrast (Fig. 9): DVFS moves V and f together;
	// IR-Booster can cut voltage at near-constant frequency or raise
	// frequency at constant voltage, using the Rtog margin.
	tb := table()
	dvfs := tb.DVFS()
	lp := tb.LowPower(20)
	if !(lp.V < dvfs.V && lp.FreqGHz >= dvfs.FreqGHz) {
		t.Errorf("low-power pair %v does not undervolt at held frequency vs %v", lp, dvfs)
	}
	sp := tb.Sprint(25)
	if !(sp.FreqGHz > dvfs.FreqGHz && sp.V <= dvfs.V) {
		t.Errorf("sprint pair %v does not overclock within voltage budget vs %v", sp, dvfs)
	}
}

func TestPairForDispatch(t *testing.T) {
	tb := table()
	if tb.PairFor(20, Sprint) != tb.Sprint(20) || tb.PairFor(20, LowPower) != tb.LowPower(20) {
		t.Error("PairFor dispatch wrong")
	}
	if Sprint.String() != "sprint" || LowPower.String() != "low-power" {
		t.Error("mode names wrong")
	}
}

func TestPowerModelCalibration(t *testing.T) {
	pm := DefaultPowerModel()
	if got := pm.BaselinePowerMW(); math.Abs(got-4.2978) > 1e-9 {
		t.Errorf("baseline macro power = %v mW, want 4.2978 (paper §6.6)", got)
	}
}

func TestPowerFallsWithVoltageAndActivity(t *testing.T) {
	pm := DefaultPowerModel()
	base := pm.BaselinePowerMW()
	lowV := pm.MacroPowerMW(Pair{V: 0.60, FreqGHz: 1.0}, pm.BaselineActivity)
	if lowV >= base {
		t.Error("undervolting must cut power")
	}
	lowAct := pm.MacroPowerMW(Pair{V: NominalV, FreqGHz: 1.0}, pm.BaselineActivity*0.5)
	if lowAct >= base {
		t.Error("activity reduction must cut power")
	}
}

func TestPaperEfficiencyBandReachable(t *testing.T) {
	// §6.6: AIM reaches 1.91–2.29× energy efficiency. With the
	// optimized activity (~55% of baseline toggles after LHR+WDS) and
	// the level-20/25 low-power pairs, throughput-per-watt must land in
	// that neighbourhood versus the DVFS point at baseline activity.
	tb := table()
	pm := DefaultPowerModel()
	effOf := func(p Pair, act float64) float64 {
		return p.FreqGHz / pm.MacroPowerMW(p, act)
	}
	base := effOf(tb.DVFS(), pm.BaselineActivity)
	gain20 := effOf(tb.LowPower(20), pm.BaselineActivity*0.55) / base
	gain25 := effOf(tb.LowPower(25), pm.BaselineActivity*0.55) / base
	if gain20 < 1.9 || gain20 > 2.8 {
		t.Errorf("level-20 efficiency gain = %.2f, want ~2.3", gain20)
	}
	if gain25 < 1.7 || gain25 > 2.6 {
		t.Errorf("level-25 efficiency gain = %.2f, want ~2.0", gain25)
	}
	if gain25 > gain20 {
		t.Error("lower level must be at least as efficient")
	}
}

func TestChipTOPS(t *testing.T) {
	if got := ChipTOPS(1.0, 1.0); got != 256 {
		t.Errorf("nominal TOPS = %v", got)
	}
	// Sprint band: ~1.15x with small recompute overhead (§6.6).
	got := ChipTOPS(1.2, 0.96)
	if got < 289 || got > 300 {
		t.Errorf("sprint TOPS = %v, want 289-300", got)
	}
}

func TestPowerPanicsOnNegativeActivity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DefaultPowerModel().MacroPowerMW(Pair{V: 0.7, FreqGHz: 1}, -0.1)
}
