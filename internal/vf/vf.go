// Package vf models the voltage-frequency machinery IR-Booster adjusts:
// the discrete Rtog levels of §5.5.1 (20%–60% in 5% steps, plus the
// 100% DVFS fallback), the per-level V-f pair subsets of Fig. 9
// validated at IP sign-off, an alpha-power timing model deciding which
// (V, f) grid points are safe at a given tolerated IR-drop, and the
// per-macro power model calibrated to the paper's §6.6 numbers.
package vf

import (
	"fmt"
	"math"

	"aim/internal/irdrop"
)

// Electrical constants of the 7nm design.
const (
	// NominalV is the nominal supply voltage (volts).
	NominalV = 0.75
	// NominalFreqGHz is the sign-off clock at the worst-case corner.
	NominalFreqGHz = 1.0
	// VthV is the effective threshold voltage of the alpha-power delay
	// model.
	VthV = 0.30
	// AlphaPower is the alpha-power-law exponent.
	AlphaPower = 1.3
	// timingK is the alpha-power scale factor, calibrated so the DVFS
	// sign-off point (0.75 V, 1.0 GHz) is exactly feasible under the
	// worst-case 140 mV drop.
	timingK = 3.45
)

// Level is an Rtog level in percent: the IR-drop intensity a V-f pair
// subset is validated for. Valid values are 20..60 in steps of 5,
// and 100 (the DVFS worst-case fallback).
type Level int

// DVFSLevel is the worst-case sign-off level traditional DVFS uses.
const DVFSLevel Level = 100

// Levels returns all levels in ascending order, ending with DVFSLevel.
func Levels() []Level {
	out := []Level{}
	for l := 20; l <= 60; l += 5 {
		out = append(out, Level(l))
	}
	return append(out, DVFSLevel)
}

// Valid reports whether l is a defined level.
func (l Level) Valid() bool {
	if l == DVFSLevel {
		return true
	}
	return l >= 20 && l <= 60 && l%5 == 0
}

// Rtog returns the level as a fraction in (0,1].
func (l Level) Rtog() float64 { return float64(l) / 100 }

// String renders "45%" style labels.
func (l Level) String() string { return fmt.Sprintf("%d%%", int(l)) }

// LevelForHR selects the nearest level at or above the given HR
// (§5.5.1: "the nearest higher Rtog level, rounded to the nearest
// 5%"); groups with HR above 60% revert to DVFS.
func LevelForHR(hr float64) Level {
	if hr < 0 {
		panic("vf: negative HR")
	}
	pct := int(math.Ceil(hr*100/5) * 5)
	if pct < 20 {
		pct = 20
	}
	if pct > 60 {
		return DVFSLevel
	}
	return Level(pct)
}

// Up moves one 5% step toward less pessimism (lower percentage); it
// saturates at 20%. Per Fig. 9, "level up" unlocks lower voltage or
// higher frequency.
func (l Level) Up() Level {
	if l == DVFSLevel {
		return 60
	}
	if l <= 20 {
		return 20
	}
	return l - 5
}

// Down moves one 5% step toward more pessimism; above 60% it saturates
// at the DVFS level.
func (l Level) Down() Level {
	if l >= 60 {
		return DVFSLevel
	}
	return l + 5
}

// InitialALevel is the paper's Table 1: the aggressive level IR-Booster
// starts from for each safe level, derived from profiling.
func InitialALevel(safe Level) Level {
	switch safe {
	case DVFSLevel:
		return 60
	case 60:
		return 40
	case 55:
		return 35
	case 50:
		return 35
	case 45:
		return 35
	case 40:
		return 30
	case 35:
		return 30
	case 30:
		return 25
	case 25:
		return 20
	case 20:
		return 20
	default:
		panic(fmt.Sprintf("vf: invalid safe level %d", int(safe)))
	}
}

// Pair is one validated operating point.
type Pair struct {
	V       float64 // supply voltage, volts
	FreqGHz float64 // clock frequency, GHz
}

// String renders "0.70V@1.20GHz".
func (p Pair) String() string { return fmt.Sprintf("%.2fV@%.2fGHz", p.V, p.FreqGHz) }

// Table holds the V-f grid of Fig. 9 and answers feasibility queries
// against an IR-drop model.
type Table struct {
	Voltages []float64
	Freqs    []float64
	Model    irdrop.Model
	// pairs caches PairFor's answer per valid level and mode — the
	// simulator's wave loop asks on every IR-Booster level adjustment,
	// and recomputing walks the whole grid with a math.Pow per voltage
	// point (and allocated a pairs slice per call). NewTable fills the
	// cache; hand-built Tables fall back to the walk.
	pairs map[Level][2]Pair
}

// NewTable builds the default 5×5 grid used by the 7nm chip: the
// paper's sensitivity analysis (§5.5.1) found 4×4 grids lose >8%
// mitigation capability while >5×5 raises hardware cost unacceptably.
func NewTable(m irdrop.Model) *Table {
	t := &Table{
		Voltages: []float64{0.60, 0.65, 0.70, 0.75, 0.80},
		Freqs:    []float64{0.8, 0.9, 1.0, 1.1, 1.2},
		Model:    m,
	}
	t.pairs = make(map[Level][2]Pair, len(Levels()))
	for _, l := range Levels() {
		t.pairs[l] = [2]Pair{Sprint: t.Sprint(l), LowPower: t.LowPower(l)}
	}
	return t
}

// FMaxGHz returns the maximum safe clock at supply v under the
// tolerated drop of level l, per the alpha-power law
//
//	fmax = k·(Veff − Vth)^α / v,  Veff = v − IRdrop(l).
func (t *Table) FMaxGHz(v float64, l Level) float64 {
	veff := v - t.Model.Estimate(l.Rtog())/1000
	head := veff - VthV
	if head <= 0 {
		return 0
	}
	return timingK * math.Pow(head, AlphaPower) / v
}

// PairsFor enumerates the grid points that are safe at level l — the
// level's validated V-f pair subset.
func (t *Table) PairsFor(l Level) []Pair {
	if !l.Valid() {
		panic(fmt.Sprintf("vf: invalid level %d", int(l)))
	}
	var out []Pair
	for _, v := range t.Voltages {
		fmax := t.FMaxGHz(v, l)
		for _, f := range t.Freqs {
			if f <= fmax {
				out = append(out, Pair{V: v, FreqGHz: f})
			}
		}
	}
	return out
}

// Sprint picks the level's throughput-first pair: highest frequency,
// then lowest voltage among ties (§5.5.1 sprint mode).
func (t *Table) Sprint(l Level) Pair {
	pairs := t.PairsFor(l)
	if len(pairs) == 0 {
		return t.DVFS()
	}
	best := pairs[0]
	for _, p := range pairs[1:] {
		if p.FreqGHz > best.FreqGHz || (p.FreqGHz == best.FreqGHz && p.V < best.V) {
			best = p
		}
	}
	return best
}

// LowPower picks the level's efficiency-first pair: the lowest voltage
// in the level's validated subset and, at that voltage, the highest
// frequency it sustains. Dropping voltage cuts both switching (V²) and
// leakage power; holding frequency as high as the low rail allows then
// maximizes energy efficiency (TOPS/W), which is what the paper's
// low-power mode optimizes.
func (t *Table) LowPower(l Level) Pair {
	pairs := t.PairsFor(l)
	if len(pairs) == 0 {
		return t.DVFS()
	}
	best := pairs[0]
	for _, p := range pairs[1:] {
		if p.V < best.V || (p.V == best.V && p.FreqGHz > best.FreqGHz) {
			best = p
		}
	}
	return best
}

// DVFS returns the traditional worst-case sign-off operating point.
func (t *Table) DVFS() Pair { return Pair{V: NominalV, FreqGHz: NominalFreqGHz} }

// Mode selects between the two user-facing operating policies.
type Mode int

const (
	// Sprint prioritizes throughput (§5.5.1).
	Sprint Mode = iota
	// LowPower prioritizes energy efficiency.
	LowPower
)

// String names the mode.
func (m Mode) String() string {
	if m == LowPower {
		return "low-power"
	}
	return "sprint"
}

// PairFor dispatches on mode, answering from the precomputed cache
// when the table was built by NewTable.
func (t *Table) PairFor(l Level, m Mode) Pair {
	if p, ok := t.pairs[l]; ok {
		if m == LowPower {
			return p[LowPower]
		}
		return p[Sprint]
	}
	if m == LowPower {
		return t.LowPower(l)
	}
	return t.Sprint(l)
}
