package planstore

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ErrNotFound is returned by Backend.Load when no entry exists under
// the given name. Callers treat it as a cache miss, never a failure.
var ErrNotFound = errors.New("planstore: entry not found")

// Backend is the storage layer under the plan store: a flat namespace
// of immutable blobs addressed by their content-hash name. The
// interface is deliberately minimal — the same five operations a
// shared or remote store (object storage, a fleet-wide cache service)
// can offer — so the local directory implementation below is just the
// first backend, not the shape of the abstraction.
//
// Entries are content-addressed and therefore immutable: a Store never
// rewrites a name with different bytes, so backends may cache
// aggressively and Store may be implemented as "write if absent".
type Backend interface {
	// Load returns the blob stored under name, or ErrNotFound.
	Load(name string) ([]byte, error)
	// Store durably writes the blob under name. Writing a name that
	// already exists is allowed and must leave either the old or the
	// new bytes intact (they are identical by content addressing).
	Store(name string, data []byte) error
	// Has reports whether name exists without reading it.
	Has(name string) bool
	// Remove deletes the entry; removing a missing name is not an
	// error (eviction races are benign).
	Remove(name string) error
	// List returns all stored names in lexical order.
	List() ([]string, error)
}

// Dir is the local-directory backend: one file per plan at
// <root>/<name[:2]>/<name>, the two-hex-character fanout restic uses
// so a large store never piles thousands of entries into one
// directory. Writes go through a temp file in the same directory and
// an atomic rename, so a crash mid-write can never leave a truncated
// entry under a valid name — concurrent writers of the same name both
// win (the bytes are identical).
type Dir struct {
	root string
}

// OpenDir opens (creating if needed) a local-directory backend.
func OpenDir(root string) (*Dir, error) {
	if root == "" {
		return nil, errors.New("planstore: empty cache directory")
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("planstore: create cache dir: %w", err)
	}
	return &Dir{root: root}, nil
}

// path maps a name to its fanout location.
func (d *Dir) path(name string) string {
	if len(name) < 2 {
		return filepath.Join(d.root, name)
	}
	return filepath.Join(d.root, name[:2], name)
}

// Load implements Backend.
func (d *Dir) Load(name string) ([]byte, error) {
	data, err := os.ReadFile(d.path(name))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrNotFound
	}
	return data, err
}

// Store implements Backend: temp file + rename in the entry's fanout
// directory, fsync-free by design (a torn entry fails the codec's
// integrity hash and is treated as a miss, so durability is a
// performance trade, not a correctness one).
func (d *Dir) Store(name string, data []byte) error {
	p := d.path(name)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("planstore: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), "tmp-"+name+"-*")
	if err != nil {
		return fmt.Errorf("planstore: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return fmt.Errorf("planstore: write %s: %w", name, werr)
		}
		return fmt.Errorf("planstore: close %s: %w", name, cerr)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("planstore: publish %s: %w", name, err)
	}
	return nil
}

// Has implements Backend.
func (d *Dir) Has(name string) bool {
	_, err := os.Stat(d.path(name))
	return err == nil
}

// Remove implements Backend.
func (d *Dir) Remove(name string) error {
	err := os.Remove(d.path(name))
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	return err
}

// Orphans returns the leftover temp files of writers that died between
// temp-write and rename, as paths relative to the root. A live writer's
// temp file is indistinguishable from an orphan, so callers decide when
// the store is quiescent enough to judge (Open sweeps at startup; the
// checker reports what it finds).
func (d *Dir) Orphans() ([]string, error) {
	var orphans []string
	err := filepath.WalkDir(d.root, func(path string, e fs.DirEntry, err error) error {
		if err != nil || e.IsDir() {
			return err
		}
		if strings.HasPrefix(e.Name(), "tmp-") {
			rel, rerr := filepath.Rel(d.root, path)
			if rerr != nil {
				rel = path
			}
			orphans = append(orphans, rel)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("planstore: orphans: %w", err)
	}
	sort.Strings(orphans)
	return orphans, nil
}

// SweepOrphans removes leftover temp files, returning how many were
// removed. Racing a concurrent writer is benign: the loser's rename
// fails, which the store already counts as a best-effort save error.
func (d *Dir) SweepOrphans() (int, error) {
	orphans, err := d.Orphans()
	if err != nil {
		return 0, err
	}
	swept := 0
	for _, rel := range orphans {
		if err := os.Remove(filepath.Join(d.root, rel)); err == nil {
			swept++
		}
	}
	return swept, nil
}

// List implements Backend: every regular file in the fanout tree whose
// name is not a leftover temp file.
func (d *Dir) List() ([]string, error) {
	var names []string
	err := filepath.WalkDir(d.root, func(path string, e fs.DirEntry, err error) error {
		if err != nil || e.IsDir() {
			return err
		}
		if name := e.Name(); !strings.HasPrefix(name, "tmp-") {
			names = append(names, name)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("planstore: list: %w", err)
	}
	sort.Strings(names)
	return names, nil
}
