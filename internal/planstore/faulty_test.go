package planstore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"aim/internal/core"
)

// TestOrphanSweepOnOpen simulates the crash window the temp-file
// protocol leaves behind — a writer that died between temp-write and
// rename — and proves Open sweeps the leftovers without touching real
// entries.
func TestOrphanSweepOnOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("resnet18", 1)
	plan := compileTestPlan(t, "resnet18", 1)
	if err := s.Put(k, plan); err != nil {
		t.Fatal(err)
	}
	// Simulate two crashed writers: a half-written temp next to the real
	// entry and one in a fanout directory of its own.
	h := k.Hash()
	orphan1 := filepath.Join(dir, h[:2], "tmp-"+h+"-123456")
	orphan2 := filepath.Join(dir, "ab", "tmp-"+"ab17"+"-777")
	if err := os.MkdirAll(filepath.Dir(orphan2), 0o755); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{orphan1, orphan2} {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	b, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := b.Orphans(); err != nil || len(got) != 2 {
		t.Fatalf("Orphans() = %v, %v; want the 2 planted temp files", got, err)
	}
	// The restart path: Open must sweep the orphans and still serve the
	// real entry.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := b.Orphans(); err != nil || len(got) != 0 {
		t.Fatalf("after Open: Orphans() = %v, %v; want none", got, err)
	}
	if _, ok := s2.Get(k); !ok {
		t.Fatal("real entry was lost in the sweep")
	}
}

// TestFaultyStatsReconcile is the accounting proof the fault-injection
// wrapper exists for: under a backend injecting bit-flips, truncations,
// stale rewrites and write failures, every request still gets a
// byte-identical plan, and the store's Stats reconcile *exactly*
// against the injected-fault counts — no fault is unaccounted for, no
// counter moves without a cause.
func TestFaultyStatsReconcile(t *testing.T) {
	seeds := []int64{1, 2, 3}
	plans := make(map[int64]*core.Plan, len(seeds))
	want := make(map[int64][]byte, len(seeds))
	for _, seed := range seeds {
		plans[seed] = compileTestPlan(t, "resnet18", seed)
		data, err := Encode(testKey("resnet18", seed), plans[seed])
		if err != nil {
			t.Fatal(err)
		}
		want[seed] = data
	}
	inner, err := OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	faulty := NewFaulty(inner, FaultPlan{
		Seed:           2025,
		FlipEvery:      5,
		TruncateEvery:  7,
		StaleEvery:     11,
		FailStoreEvery: 3,
	})
	// A 1-byte memory budget keeps at most one decoded plan resident, so
	// cycling three keys forces nearly every Get to the faulty backend.
	s := New(faulty, 1)
	gets := int64(0)
	for round := 0; round < 40; round++ {
		for _, seed := range seeds {
			k := testKey("resnet18", seed)
			p, _, err := s.GetOrCompile(k, func() (*core.Plan, error) { return plans[seed], nil })
			gets++
			if err != nil {
				t.Fatalf("round %d seed %d: request observed an error: %v", round, seed, err)
			}
			got, err := Encode(k, p)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want[seed]) {
				t.Fatalf("round %d seed %d: request observed a non-byte-identical plan", round, seed)
			}
		}
	}
	st, fs := s.Stats(), faulty.Stats()
	faults := fs.Flips + fs.Truncations + fs.Stales
	// Every fault class must actually have fired, or the test proves
	// nothing about that class.
	if fs.Flips == 0 || fs.Truncations == 0 || fs.Stales == 0 || fs.FailedStores == 0 {
		t.Fatalf("fault plan never fired some class: %+v", fs)
	}
	if st.MemHits+st.DiskHits+st.Misses != gets {
		t.Errorf("hits+misses = %d+%d+%d, want %d gets", st.MemHits, st.DiskHits, st.Misses, gets)
	}
	if st.DiskHits != fs.Loads-faults {
		t.Errorf("DiskHits = %d, want Loads-faults = %d-%d", st.DiskHits, fs.Loads, faults)
	}
	if st.Stale+st.Corrupt != faults {
		t.Errorf("Stale+Corrupt = %d+%d, want %d injected faults", st.Stale, st.Corrupt, faults)
	}
	if st.Misses != fs.NotFound+faults {
		t.Errorf("Misses = %d, want NotFound+faults = %d+%d", st.Misses, fs.NotFound, faults)
	}
	if st.Saves != fs.Stores {
		t.Errorf("Saves = %d, want %d successful backend stores", st.Saves, fs.Stores)
	}
	if st.SaveErrors != fs.FailedStores {
		t.Errorf("SaveErrors = %d, want %d injected write failures", st.SaveErrors, fs.FailedStores)
	}
}

// TestFaultyDeterminism: the same plan over the same traffic injects
// the same faults — the property that makes fault-injection tests
// reproducible rather than flaky.
func TestFaultyDeterminism(t *testing.T) {
	run := func() FaultStats {
		inner, err := OpenDir(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		f := NewFaulty(inner, FaultPlan{Seed: 7, FlipEvery: 2, TruncateEvery: 3, FailStoreEvery: 4})
		for i := 0; i < 20; i++ {
			name := string(rune('a'+i%4)) + "xyz"
			_ = f.Store(name, []byte("payload-payload-payload"))
			_, _ = f.Load(name)
		}
		return f.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two identical runs diverged:\n%+v\n%+v", a, b)
	}
}
