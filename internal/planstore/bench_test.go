package planstore

import "testing"

// BenchmarkPlanEncode pins the serialization cost of the reference
// plan (resnet18, low-power): the write half of what every compile
// pays once to make later restarts cheap.
func BenchmarkPlanEncode(b *testing.B) {
	k := testKey("resnet18", 1)
	p := compileTestPlan(b, "resnet18", 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(k, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanDecode pins the read half — header and integrity
// checks plus full plan reconstruction — the per-key cost a restarted
// process pays instead of a compile.
func BenchmarkPlanDecode(b *testing.B) {
	k := testKey("resnet18", 1)
	data, err := Encode(k, compileTestPlan(b, "resnet18", 1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(k, data); err != nil {
			b.Fatal(err)
		}
	}
}
