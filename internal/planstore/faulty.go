package planstore

import (
	"sync"
	"time"

	"aim/internal/xrand"
)

// FaultPlan schedules deterministic fault injection for a Faulty
// backend. Every *Every field injects its fault on each Nth eligible
// operation (0 disables the class); eligible means the underlying
// operation would have succeeded, so a scheduled fault is never wasted
// on a miss and injected-fault counts reconcile exactly against the
// store's Stats. When several classes land on the same operation, the
// first of flip, truncate, stale wins — at most one fault per load, so
// the counts stay additive.
type FaultPlan struct {
	// Seed drives the fault-site draws (which byte flips, where a
	// truncation cuts); the schedule itself is the deterministic
	// operation count, so a fixed plan injects identical faults on
	// every run.
	Seed int64
	// FlipEvery bit-flips one seeded byte of every Nth loaded blob —
	// silent media corruption.
	FlipEvery int
	// TruncateEvery cuts every Nth loaded blob at a seeded offset —
	// a torn write or short read.
	TruncateEvery int
	// StaleEvery replaces every Nth loaded blob with a valid envelope
	// from an ancient code version — an entry surviving an upgrade.
	StaleEvery int
	// FailStoreEvery fails every Nth write with an injected error —
	// a full or read-only disk.
	FailStoreEvery int
	// Latency is added to every Load and Store — a slow or contended
	// device. It perturbs scheduling, never results.
	Latency time.Duration
}

// FaultStats counts a Faulty backend's traffic and injected faults.
// The store's own Stats must reconcile against these exactly:
//
//	Stats.DiskHits   == Loads - Flips - Truncations - Stales
//	Stats.Stale + Stats.Corrupt == Flips + Truncations + Stales
//	Stats.Misses     == NotFound + Flips + Truncations + Stales
//	Stats.Saves      == Stores
//	Stats.SaveErrors == FailedStores
type FaultStats struct {
	// Loads counts successful underlying loads (before fault
	// injection); NotFound counts loads that missed.
	Loads, NotFound int64
	// Flips, Truncations and Stales count loads answered with the
	// respective corruption injected.
	Flips, Truncations, Stales int64
	// Stores counts successful writes; FailedStores writes answered
	// with an injected error (the blob is NOT written).
	Stores, FailedStores int64
}

// staleCodeVersion is the generation string injected stale entries
// claim; any value other than CodeVersion works.
const staleCodeVersion = "aim-plan-0-faulty"

// Faulty wraps a Backend with deterministic, seeded fault injection:
// bit-flips, truncations, stale rewrites and write failures on a fixed
// schedule, plus optional latency. It exists to prove the serving
// stack's failure contract — corrupt or stale entries degrade to a
// recompile and write failures never fail serving — under misbehaviour
// no unit test of the happy path exercises. Safe for concurrent use;
// under concurrency the set of faulted operations is fixed by the
// schedule even though which request observes a fault may vary.
type Faulty struct {
	inner Backend
	plan  FaultPlan

	mu    sync.Mutex
	rng   *xrand.RNG
	stats FaultStats
}

// NewFaulty wraps a backend with the given fault plan.
func NewFaulty(inner Backend, plan FaultPlan) *Faulty {
	return &Faulty{inner: inner, plan: plan, rng: xrand.NewNamed(plan.Seed, "planstore/faulty")}
}

// Stats snapshots the injected-fault counters.
func (f *Faulty) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// every reports whether the n'th operation (1-based) trips a fault
// class configured to fire every k operations.
func every(n int64, k int) bool { return k > 0 && n%int64(k) == 0 }

// Load implements Backend: the underlying blob, possibly corrupted
// according to the fault plan. The returned slice is always a private
// copy, so injected corruption cannot leak into a caller that aliases
// backend storage.
func (f *Faulty) Load(name string) ([]byte, error) {
	if f.plan.Latency > 0 {
		time.Sleep(f.plan.Latency)
	}
	data, err := f.inner.Load(name)
	f.mu.Lock()
	defer f.mu.Unlock()
	if err != nil {
		f.stats.NotFound++
		return nil, err
	}
	f.stats.Loads++
	data = append([]byte(nil), data...)
	switch n := f.stats.Loads; {
	case every(n, f.plan.FlipEvery):
		f.stats.Flips++
		data[f.rng.Intn(len(data))] ^= 1 << f.rng.Intn(8)
	case every(n, f.plan.TruncateEvery):
		f.stats.Truncations++
		data = data[:f.rng.Intn(len(data))]
	case every(n, f.plan.StaleEvery):
		f.stats.Stales++
		var w writer
		w.buf = append(w.buf, magic...)
		w.u32(FormatVersion)
		w.str(staleCodeVersion)
		data = w.buf
	}
	return data, nil
}

// Store implements Backend, failing every Nth write with an injected
// error instead of writing.
func (f *Faulty) Store(name string, data []byte) error {
	if f.plan.Latency > 0 {
		time.Sleep(f.plan.Latency)
	}
	f.mu.Lock()
	n := f.stats.Stores + f.stats.FailedStores + 1
	if every(n, f.plan.FailStoreEvery) {
		f.stats.FailedStores++
		f.mu.Unlock()
		return errInjectedWrite
	}
	f.stats.Stores++
	f.mu.Unlock()
	return f.inner.Store(name, data)
}

// errInjectedWrite is the deliberate write failure a Faulty backend
// answers scheduled Stores with.
var errInjectedWrite = &injectedError{}

type injectedError struct{}

func (*injectedError) Error() string { return "planstore: injected write fault" }

// Has implements Backend.
func (f *Faulty) Has(name string) bool { return f.inner.Has(name) }

// Remove implements Backend.
func (f *Faulty) Remove(name string) error { return f.inner.Remove(name) }

// List implements Backend.
func (f *Faulty) List() ([]string, error) { return f.inner.List() }
