package planstore

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"aim/internal/compiler"
	"aim/internal/core"
	"aim/internal/mapping"
	"aim/internal/model"
	"aim/internal/pim"
	"aim/internal/quant"
	"aim/internal/tensor"
	"aim/internal/vf"
)

// The on-disk container is
//
//	magic "AIMPLAN1" | u32 format version | code-version string |
//	key id string | u64 payload length | payload | sha256(payload)
//
// and the payload is a flat little-endian walk of the Plan: the
// Network once, then both Compiled artifacts with every aliased
// pointer written as an index — LayerPlan.Layer as an index into
// Net.Layers, Wave.Plans as indices into Compiled.Plans — so decoding
// rebuilds the exact sharing structure Compile produced, not a
// deep-copied lookalike. Floats travel as IEEE-754 bit patterns
// (math.Float64bits), so a decoded plan is bit-exact, and Execute on
// it is byte-identical to Execute on the freshly compiled original.
const (
	// magic identifies a plan file; it never changes.
	magic = "AIMPLAN1"
	// FormatVersion is the container layout version. Bump it when the
	// byte layout itself changes (new field, different framing).
	FormatVersion = 1
)

// CodeVersion names the compiler/simulator generation a stored plan
// belongs to. It is part of the content hash, so bumping it
// invalidates every stored plan at once (old entries become
// unreachable and are swept lazily).
//
// Bump rule: increment the trailing counter whenever a change affects
// what Compile produces or how Execute consumes it — quantization or
// LHR/WDS changes, mapping strategy changes, wave scheduling, RNG
// draw-order changes, zoo weight generation, or any codec layout
// change (bump FormatVersion too in that case). Pure runtime knobs
// (β, worker counts, fidelity tier) never require a bump: they are
// outside the plan by design.
const CodeVersion = "aim-plan-1"

// ErrCorrupt reports a plan file that failed structural or integrity
// validation: wrong magic, truncation, a payload hash mismatch, or a
// key that does not match the requested one. Stores treat it as a
// miss and recompile.
var ErrCorrupt = errors.New("planstore: corrupt plan file")

// ErrStale reports a structurally valid plan file written by a
// different format or code version. Stores treat it as a miss and
// recompile; the entry is unreachable under the current hash anyway.
var ErrStale = errors.New("planstore: plan file from a different version")

// Header is the plan container's envelope: everything an entry states
// about itself before the payload. The integrity checker reads it to
// classify entries without paying a full decode — and to re-derive the
// content-addressed name an entry should be stored under.
type Header struct {
	// FormatVersion is the container layout version the entry was
	// written with.
	FormatVersion uint32
	// CodeVersion is the compiler/simulator generation string.
	CodeVersion string
	// KeyID is the canonical key serialization (see Key.ID).
	KeyID string
	// PayloadLen is the declared payload length in bytes.
	PayloadLen uint64
}

// ReadHeader parses just the envelope of a plan file: magic, format
// version, code version, key id and declared payload length. It
// validates nothing beyond the envelope's own structure — a stale or
// even corrupt payload still yields its header, which is exactly what
// a checker classifying entries needs. Like Decode it never panics on
// hostile bytes.
func ReadHeader(data []byte) (Header, error) {
	r := reader{data: data}
	if string(r.bytes(len(magic))) != magic {
		return Header{}, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	h := Header{}
	h.FormatVersion = r.u32()
	h.CodeVersion = r.str()
	h.KeyID = r.str()
	h.PayloadLen = r.u64()
	if r.err != nil {
		return Header{}, fmt.Errorf("%w: %v", ErrCorrupt, r.err)
	}
	return h, nil
}

// ID returns the canonical serialization of the key — the string the
// content hash covers and the file header carries.
func (k Key) ID() string { return k.id() }

// ParseID parses a canonical key id (as returned by Key.ID and stored
// in every entry's header) back into a Key. It is the checker's
// inverse of ID: a stored entry names its own key, so a verifier can
// re-derive the content-addressed name the entry must live under.
func ParseID(id string) (Key, error) {
	var k Key
	rest := id
	next := func(field string) (string, error) {
		if !strings.HasPrefix(rest, field+"=") {
			return "", fmt.Errorf("planstore: key id %q: want %s=", id, field)
		}
		rest = rest[len(field)+1:]
		val := rest
		if i := strings.IndexByte(rest, '|'); i >= 0 {
			val, rest = rest[:i], rest[i+1:]
		} else {
			rest = ""
		}
		return val, nil
	}
	net, err := next("net")
	if err != nil {
		return Key{}, err
	}
	mode, err := next("mode")
	if err != nil {
		return Key{}, err
	}
	k.Network, k.Mode = net, mode
	for _, f := range []struct {
		name string
		dst  *int
	}{{"bits", &k.Bits}, {"delta", &k.Delta}} {
		s, err := next(f.name)
		if err != nil {
			return Key{}, err
		}
		v, err := strconv.Atoi(s)
		if err != nil {
			return Key{}, fmt.Errorf("planstore: key id %q: bad %s: %v", id, f.name, err)
		}
		*f.dst = v
	}
	s, err := next("seed")
	if err != nil {
		return Key{}, err
	}
	seed, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return Key{}, fmt.Errorf("planstore: key id %q: bad seed: %v", id, err)
	}
	k.Seed = seed
	if rest != "" {
		return Key{}, fmt.Errorf("planstore: key id %q: trailing %q", id, rest)
	}
	if got := k.id(); got != id {
		return Key{}, fmt.Errorf("planstore: key id %q is not canonical (re-renders as %q)", id, got)
	}
	return k, nil
}

// Encode serializes a compiled plan into the versioned container.
func Encode(k Key, p *core.Plan) ([]byte, error) {
	if p == nil || p.Net == nil || p.Baseline == nil || p.AIM == nil {
		return nil, errors.New("planstore: incomplete plan")
	}
	var payload writer
	if err := payload.network(p.Net); err != nil {
		return nil, err
	}
	if err := payload.compiled(p.Baseline, p.Net); err != nil {
		return nil, err
	}
	if err := payload.compiled(p.AIM, p.Net); err != nil {
		return nil, err
	}

	var f writer
	f.buf = append(f.buf, magic...)
	f.u32(FormatVersion)
	f.str(CodeVersion)
	f.str(k.id())
	f.u64(uint64(len(payload.buf)))
	f.buf = append(f.buf, payload.buf...)
	sum := sha256.Sum256(payload.buf)
	f.buf = append(f.buf, sum[:]...)
	return f.buf, nil
}

// Decode parses a plan file previously written by Encode for the same
// key. It returns ErrStale for a valid file from another
// format/code version and ErrCorrupt for anything structurally or
// cryptographically wrong; it never panics on hostile bytes.
func Decode(k Key, data []byte) (*core.Plan, error) {
	r := reader{data: data}
	if string(r.bytes(len(magic))) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := r.u32(); r.err == nil && v != FormatVersion {
		return nil, fmt.Errorf("%w: format %d (want %d)", ErrStale, v, FormatVersion)
	}
	if cv := r.str(); r.err == nil && cv != CodeVersion {
		return nil, fmt.Errorf("%w: code version %q (want %q)", ErrStale, cv, CodeVersion)
	}
	if id := r.str(); r.err == nil && id != k.id() {
		return nil, fmt.Errorf("%w: stored key %q does not match %q", ErrCorrupt, id, k.id())
	}
	n := int(r.u64())
	payload := r.bytes(n)
	sum := r.bytes(sha256.Size)
	if r.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, r.err)
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(data)-r.off)
	}
	want := sha256.Sum256(payload)
	if string(sum) != string(want[:]) {
		return nil, fmt.Errorf("%w: payload hash mismatch", ErrCorrupt)
	}

	pr := reader{data: payload}
	net := pr.network()
	baseline := pr.compiled(net)
	aim := pr.compiled(net)
	if pr.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, pr.err)
	}
	if pr.off != len(payload) {
		return nil, fmt.Errorf("%w: %d unread payload bytes", ErrCorrupt, len(payload)-pr.off)
	}
	return &core.Plan{Net: net, Baseline: baseline, AIM: aim}, nil
}

// ---- writer ----

// writer accumulates the little-endian encoding. Methods that can
// observe an inconsistent plan (a dangling layer pointer) return an
// error; plain scalar appends cannot fail.
type writer struct {
	buf []byte
}

func (w *writer) u32(v uint32)  { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64)  { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) i64(v int64)   { w.u64(uint64(v)) }
func (w *writer) int(v int)     { w.i64(int64(v)) }
func (w *writer) f64(v float64) { w.u64(math.Float64bits(v)) }

func (w *writer) bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

func (w *writer) str(s string) {
	w.u64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

func (w *writer) ints(v []int) {
	w.u64(uint64(len(v)))
	for _, x := range v {
		w.int(x)
	}
}

func (w *writer) floats(v []float64) {
	w.u64(uint64(len(v)))
	for _, x := range v {
		w.f64(x)
	}
}

func (w *writer) floatTensor(t *tensor.Float) {
	w.bool(t != nil)
	if t == nil {
		return
	}
	w.ints(t.Shape)
	w.floats(t.Data)
}

func (w *writer) intTensor(t *tensor.Int) {
	w.ints(t.Shape)
	w.int(t.Bits)
	w.u64(uint64(len(t.Data)))
	for _, x := range t.Data {
		w.u32(uint32(x))
	}
}

func (w *writer) network(n *model.Network) error {
	w.str(n.Name)
	w.bool(n.Transformer)
	p := n.Profile
	w.f64(p.LaplaceB)
	w.f64(p.OutlierFrac)
	w.f64(p.OutlierSigma)
	w.f64(p.Lambda)
	w.int(int(p.Acc.Metric))
	w.f64(p.Acc.Base)
	w.f64(p.Acc.DriftSens)
	w.f64(p.Acc.DriftFree)
	w.f64(p.Acc.RegGain)
	w.f64(p.Acc.PruneSens)
	w.u64(uint64(len(n.Layers)))
	for _, l := range n.Layers {
		w.str(l.Name)
		w.int(int(l.Kind))
		w.int(l.Rows)
		w.int(l.Cols)
		w.f64(l.SigmaMul)
		w.floatTensor(l.Weights)
	}
	return nil
}

func (w *writer) compiled(c *compiler.Compiled, net *model.Network) error {
	if c.Net != net {
		return errors.New("planstore: compiled artifact does not share the plan's network")
	}
	layerIndex := make(map[*model.Layer]int, len(net.Layers))
	for i, l := range net.Layers {
		layerIndex[l] = i
	}
	planIndex := make(map[*compiler.LayerPlan]int, len(c.Plans))

	o := c.Options
	w.int(o.Bits)
	w.bool(o.UseLHR)
	w.int(o.WDSDelta)
	keys := make([]string, 0, len(o.PerOpDelta))
	for k := range o.PerOpDelta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.u64(uint64(len(keys)))
	for _, k := range keys {
		w.str(k)
		w.int(o.PerOpDelta[k])
	}
	w.int(int(o.Strategy))
	w.int(int(o.Mode))
	w.i64(o.Seed)

	w.u64(uint64(len(c.Plans)))
	for i, p := range c.Plans {
		planIndex[p] = i
		li, ok := layerIndex[p.Layer]
		if !ok {
			return fmt.Errorf("planstore: plan %d references a layer outside the network", i)
		}
		w.int(li)
		w.bool(p.Quant != nil)
		if p.Quant != nil {
			w.intTensor(p.Quant.Codes)
			w.f64(p.Quant.Scale)
		}
		w.f64(p.HR)
		w.int(p.Delta)
		w.int(p.Segments)
		w.int(p.WaveRounds)
	}

	w.u64(uint64(len(c.Waves)))
	for wi, wv := range c.Waves {
		w.u64(uint64(len(wv.Plans)))
		for _, p := range wv.Plans {
			pi, ok := planIndex[p]
			if !ok {
				return fmt.Errorf("planstore: wave %d references a plan outside the artifact", wi)
			}
			w.int(pi)
		}
		w.u64(uint64(len(wv.Tasks)))
		for _, t := range wv.Tasks {
			w.str(t.Op)
			w.int(t.OpID)
			w.f64(t.HR)
			w.bool(t.InputDetermined)
		}
		if wv.Map == nil {
			return fmt.Errorf("planstore: wave %d has no mapping", wi)
		}
		w.ints(wv.Map.Assign)
		cfg := wv.Map.Cfg
		w.int(int(cfg.Kind))
		w.int(cfg.Groups)
		w.int(cfg.MacrosPerGroup)
		w.int(cfg.BanksPerMacro)
		w.int(cfg.CellsPerBank)
		w.int(cfg.WeightBits)
		w.int(wv.Rounds)
	}

	w.f64(c.Stats.Average)
	w.f64(c.Stats.Max)
	w.floats(c.Stats.PerLayer)
	w.f64(c.Stats.MeanDrift)
	w.f64(c.Drift)
	return nil
}

// ---- reader ----

// reader walks the encoding with a sticky error: the first structural
// problem (truncation, an implausible length, an out-of-range index)
// poisons every later read, so decode logic reads straight through and
// checks err once. Every length is validated against the bytes that
// remain before anything is allocated — hostile input cannot cause a
// panic or an outsized allocation.
type reader struct {
	data []byte
	off  int
	err  error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.data) || r.off+n < r.off {
		r.fail("truncated at offset %d (want %d bytes, have %d)", r.off, n, len(r.data)-r.off)
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) i64() int64   { return int64(r.u64()) }
func (r *reader) int() int     { return int(r.i64()) }
func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) bool() bool {
	b := r.bytes(1)
	return b != nil && b[0] != 0
}

// length reads a count and sanity-checks it against the smallest
// possible per-element footprint, so a corrupted length cannot demand
// an allocation larger than the file itself.
func (r *reader) length(elemSize int) int {
	n := r.u64()
	if r.err != nil {
		return 0
	}
	if max := uint64(len(r.data)-r.off) / uint64(elemSize); n > max {
		r.fail("implausible length %d at offset %d", n, r.off)
		return 0
	}
	return int(n)
}

func (r *reader) str() string {
	n := r.length(1)
	return string(r.bytes(n))
}

func (r *reader) ints() []int {
	n := r.length(8)
	if r.err != nil {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = r.int()
	}
	return out
}

func (r *reader) floats() []float64 {
	n := r.length(8)
	if r.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.f64()
	}
	return out
}

func (r *reader) floatTensor() *tensor.Float {
	if !r.bool() {
		return nil
	}
	shape := r.ints()
	data := r.floats()
	if r.err != nil {
		return nil
	}
	return &tensor.Float{Shape: shape, Data: data}
}

func (r *reader) intTensor() *tensor.Int {
	shape := r.ints()
	bits := r.int()
	n := r.length(4)
	if r.err != nil {
		return nil
	}
	data := make([]int32, n)
	for i := range data {
		data[i] = int32(r.u32())
	}
	return &tensor.Int{Shape: shape, Data: data, Bits: bits}
}

func (r *reader) network() *model.Network {
	n := &model.Network{}
	n.Name = r.str()
	n.Transformer = r.bool()
	n.Profile.LaplaceB = r.f64()
	n.Profile.OutlierFrac = r.f64()
	n.Profile.OutlierSigma = r.f64()
	n.Profile.Lambda = r.f64()
	n.Profile.Acc.Metric = quant.Metric(r.int())
	n.Profile.Acc.Base = r.f64()
	n.Profile.Acc.DriftSens = r.f64()
	n.Profile.Acc.DriftFree = r.f64()
	n.Profile.Acc.RegGain = r.f64()
	n.Profile.Acc.PruneSens = r.f64()
	nl := r.length(1)
	if r.err != nil {
		return n
	}
	n.Layers = make([]*model.Layer, 0, nl)
	for i := 0; i < nl && r.err == nil; i++ {
		l := &model.Layer{}
		l.Name = r.str()
		l.Kind = model.OpKind(r.int())
		l.Rows = r.int()
		l.Cols = r.int()
		l.SigmaMul = r.f64()
		l.Weights = r.floatTensor()
		n.Layers = append(n.Layers, l)
	}
	return n
}

func (r *reader) compiled(net *model.Network) *compiler.Compiled {
	c := &compiler.Compiled{Net: net}
	c.Options.Bits = r.int()
	c.Options.UseLHR = r.bool()
	c.Options.WDSDelta = r.int()
	if nd := r.length(1); nd > 0 {
		c.Options.PerOpDelta = make(map[string]int, nd)
		for i := 0; i < nd && r.err == nil; i++ {
			k := r.str()
			c.Options.PerOpDelta[k] = r.int()
		}
	}
	c.Options.Strategy = compiler.Strategy(r.int())
	c.Options.Mode = vf.Mode(r.int())
	c.Options.Seed = r.i64()

	np := r.length(1)
	if r.err != nil {
		return c
	}
	c.Plans = make([]*compiler.LayerPlan, 0, np)
	for i := 0; i < np && r.err == nil; i++ {
		p := &compiler.LayerPlan{}
		li := r.int()
		if r.err == nil {
			if li < 0 || li >= len(net.Layers) {
				r.fail("layer index %d out of range [0,%d)", li, len(net.Layers))
			} else {
				p.Layer = net.Layers[li]
			}
		}
		if r.bool() {
			codes := r.intTensor()
			scale := r.f64()
			if r.err == nil {
				p.Quant = &quant.Quantized{Codes: codes, Scale: scale}
			}
		}
		p.HR = r.f64()
		p.Delta = r.int()
		p.Segments = r.int()
		p.WaveRounds = r.int()
		c.Plans = append(c.Plans, p)
	}

	nw := r.length(1)
	if r.err != nil {
		return c
	}
	c.Waves = make([]*compiler.Wave, 0, nw)
	for i := 0; i < nw && r.err == nil; i++ {
		wv := &compiler.Wave{}
		npl := r.length(8)
		for j := 0; j < npl && r.err == nil; j++ {
			pi := r.int()
			if r.err == nil {
				if pi < 0 || pi >= len(c.Plans) {
					r.fail("wave plan index %d out of range [0,%d)", pi, len(c.Plans))
				} else {
					wv.Plans = append(wv.Plans, c.Plans[pi])
				}
			}
		}
		nt := r.length(1)
		for j := 0; j < nt && r.err == nil; j++ {
			var t mapping.Task
			t.Op = r.str()
			t.OpID = r.int()
			t.HR = r.f64()
			t.InputDetermined = r.bool()
			wv.Tasks = append(wv.Tasks, t)
		}
		assign := r.ints()
		var cfg pim.Config
		cfg.Kind = pim.MacroKind(r.int())
		cfg.Groups = r.int()
		cfg.MacrosPerGroup = r.int()
		cfg.BanksPerMacro = r.int()
		cfg.CellsPerBank = r.int()
		cfg.WeightBits = r.int()
		if r.err == nil {
			wv.Map = &mapping.Mapping{Assign: assign, Cfg: cfg}
		}
		wv.Rounds = r.int()
		c.Waves = append(c.Waves, wv)
	}

	c.Stats.Average = r.f64()
	c.Stats.Max = r.f64()
	c.Stats.PerLayer = r.floats()
	c.Stats.MeanDrift = r.f64()
	c.Drift = r.f64()
	return c
}
