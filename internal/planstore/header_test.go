package planstore

import (
	"errors"
	"testing"

	"aim/internal/vf"
)

// TestReadHeader: the envelope of a real encoded plan states exactly
// what the entry holds, and hostile prefixes error instead of
// panicking.
func TestReadHeader(t *testing.T) {
	k := testKey("resnet18", 1)
	data, err := Encode(k, compileTestPlan(t, "resnet18", 1))
	if err != nil {
		t.Fatal(err)
	}
	h, err := ReadHeader(data)
	if err != nil {
		t.Fatal(err)
	}
	if h.FormatVersion != FormatVersion || h.CodeVersion != CodeVersion || h.KeyID != k.ID() {
		t.Fatalf("header = %+v, want version %d / %q / key %q", h, FormatVersion, CodeVersion, k.ID())
	}
	// The declared payload length must be consistent with the framing:
	// envelope + payload + trailing sha256 account for every byte.
	if int(h.PayloadLen) >= len(data) {
		t.Fatalf("declared payload %d bytes in a %d-byte file", h.PayloadLen, len(data))
	}
	if _, err := ReadHeader([]byte("NOTAPLAN")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: err = %v, want ErrCorrupt", err)
	}
	if _, err := ReadHeader(data[:len(magic)+2]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated envelope: err = %v, want ErrCorrupt", err)
	}
}

// TestParseID: ParseID is the exact inverse of Key.ID, and rejects
// anything that does not re-render canonically — a checker must never
// accept an id that hashes to a different name than the entry claims.
func TestParseID(t *testing.T) {
	for _, k := range []Key{
		testKey("resnet18", 1),
		{Network: "gpt2", Mode: vf.Sprint.String(), Bits: 4, Delta: 0, Seed: -9},
	} {
		got, err := ParseID(k.ID())
		if err != nil {
			t.Fatalf("ParseID(%q): %v", k.ID(), err)
		}
		if got != k {
			t.Fatalf("ParseID(%q) = %+v, want %+v", k.ID(), got, k)
		}
	}
	for _, bad := range []string{
		"",
		"net=x",
		"net=x|mode=y|bits=8|delta=16",
		"net=x|mode=y|bits=eight|delta=16|seed=1",
		"net=x|mode=y|bits=8|delta=16|seed=1|extra=2",
		"net=x|mode=y|bits=08|delta=16|seed=1", // parses but not canonical
	} {
		if _, err := ParseID(bad); err == nil {
			t.Fatalf("ParseID(%q) accepted", bad)
		}
	}
}
