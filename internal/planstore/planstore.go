// Package planstore is the persistent, content-addressed plan store:
// it serializes core.Plan to a versioned binary format and caches the
// artifacts in two tiers — an in-memory LRU of decoded plans above a
// pluggable storage Backend of encoded blobs (a local directory
// first; the interface leaves room for shared or remote stores).
//
// Entries are addressed by the sha256 of everything the offline
// compiler consumes — network, mode, bits, δ, seed — plus CodeVersion,
// the compiler/simulator generation string. A process restart or a
// second fleet replica therefore finds the plans its predecessors
// compiled, turning the ~100ms-per-plan cold compile into a
// millisecond-scale read+decode, while a code change that affects plan
// content simply makes every stale entry unreachable instead of
// silently serving wrong artifacts. Decoded plans are bit-exact
// (floats round-trip as IEEE-754 bit patterns and aliased pointers are
// rebuilt from indices), so Execute over a loaded plan is
// byte-identical to Execute over a freshly compiled one. Corrupt,
// truncated or stale entries are counted, swept and treated as cache
// misses — the store degrades to "compile again", never to an error
// on the serving path.
package planstore

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync/atomic"

	"aim/internal/core"
)

// DefaultMemoryBudget bounds the in-memory tier: roomy enough to hold
// every plan of the evaluation zoo decoded at once, small enough that
// a fleet replica's memory stays flat under key churn.
const DefaultMemoryBudget = 256 << 20

// Key identifies one compiled plan: exactly the inputs the offline
// compile phase consumes (the serving runtime's cache key), never a
// runtime knob. The content hash additionally folds in CodeVersion, so
// one key denotes one plan *per compiler generation*.
type Key struct {
	// Network is the zoo workload name.
	Network string
	// Mode is the operating policy's string form.
	Mode string
	// Bits is the quantization width.
	Bits int
	// Delta is the canonical WDS δ (0 = disabled).
	Delta int
	// Seed drives every stochastic component of the compilation.
	Seed int64
}

// id is the canonical serialization of the key — the string that is
// hashed, and the string stored in the file header so an entry can
// vouch for what it holds.
func (k Key) id() string {
	return fmt.Sprintf("net=%s|mode=%s|bits=%d|delta=%d|seed=%d", k.Network, k.Mode, k.Bits, k.Delta, k.Seed)
}

// Hash returns the entry's content-addressed name: hex sha256 over the
// canonical key id and CodeVersion.
func (k Key) Hash() string {
	h := sha256.New()
	fmt.Fprintf(h, "aim/planstore\n%s\n%s\n", CodeVersion, k.id())
	return hex.EncodeToString(h.Sum(nil))
}

// Stats counts the store's traffic since creation.
type Stats struct {
	// MemHits answered from the decoded LRU tier; DiskHits answered by
	// reading and decoding a backend entry; Misses found nothing.
	MemHits, DiskHits, Misses int64
	// Stale counts entries rejected for a format/code-version
	// mismatch, Corrupt those failing structural or integrity checks;
	// both are served as misses and removed from the backend.
	Stale, Corrupt int64
	// Saves counts successful writes; SaveErrors counts writes that
	// failed (the plan is still served from memory — persistence is
	// best-effort on the serving path).
	Saves, SaveErrors int64
}

// Store is the two-tier plan cache: Get checks the in-memory LRU, then
// the backend (read, integrity-check, decode, promote to memory), and
// reports a miss otherwise; Put encodes and writes through both tiers.
// All methods are safe for concurrent use. The store intentionally has
// no compile-stampede control: that lives with the caller (the serving
// runtime's singleflight cache), so non-server users pay nothing for
// it.
type Store struct {
	backend Backend
	mem     *lru
	stats   struct {
		memHits, diskHits, misses atomic.Int64
		stale, corrupt            atomic.Int64
		saves, saveErrors         atomic.Int64
	}
}

// Open opens a plan store over a local directory backend with the
// default memory budget. Leftover temp files from a writer that died
// between temp-write and rename are swept here — at startup the store
// is quiescent, so anything matching the temp pattern is an orphan,
// never a live write. The sweep is best-effort: a failure to remove an
// orphan must not keep a serving replica from starting.
func Open(dir string) (*Store, error) {
	b, err := OpenDir(dir)
	if err != nil {
		return nil, err
	}
	_, _ = b.SweepOrphans()
	return New(b, 0), nil
}

// New builds a store over an arbitrary backend. memoryBudget bounds
// the decoded LRU tier in bytes (0 = DefaultMemoryBudget).
func New(b Backend, memoryBudget int64) *Store {
	return &Store{backend: b, mem: newLRU(memoryBudget)}
}

// Get returns the stored plan for k, reporting which tier answered.
// A false return means "not stored" for any reason — absent, stale or
// corrupt — and the caller should compile; an entry that failed
// validation has already been removed so it is not re-read forever.
func (s *Store) Get(k Key) (*core.Plan, bool) {
	h := k.Hash()
	if p, ok := s.mem.get(h); ok {
		s.stats.memHits.Add(1)
		return p, true
	}
	data, err := s.backend.Load(h)
	if err != nil {
		s.stats.misses.Add(1)
		return nil, false
	}
	p, err := Decode(k, data)
	if err != nil {
		// A bad entry is a miss, not a failure — but count it by
		// kind and sweep it so the next restart is not fooled again.
		if errors.Is(err, ErrStale) {
			s.stats.stale.Add(1)
		} else {
			s.stats.corrupt.Add(1)
		}
		_ = s.backend.Remove(h)
		s.stats.misses.Add(1)
		return nil, false
	}
	s.mem.add(h, p, int64(len(data)))
	s.stats.diskHits.Add(1)
	return p, true
}

// Put encodes the plan and writes it through both tiers. An encode
// failure is returned (the plan is inconsistent — a programming
// error); a backend write failure is only counted, because the caller
// holds a perfectly good in-memory plan and serving must not fail on a
// full disk.
func (s *Store) Put(k Key, p *core.Plan) error {
	data, err := Encode(k, p)
	if err != nil {
		return err
	}
	h := k.Hash()
	s.mem.add(h, p, int64(len(data)))
	if err := s.backend.Store(h, data); err != nil {
		s.stats.saveErrors.Add(1)
		return nil
	}
	s.stats.saves.Add(1)
	return nil
}

// GetOrCompile returns the stored plan or compiles, stores and returns
// a fresh one — the one-shot (non-server) entry point. hit reports
// whether any tier answered.
func (s *Store) GetOrCompile(k Key, compile func() (*core.Plan, error)) (plan *core.Plan, hit bool, err error) {
	if p, ok := s.Get(k); ok {
		return p, true, nil
	}
	p, err := compile()
	if err != nil {
		return nil, false, err
	}
	if err := s.Put(k, p); err != nil {
		return nil, false, err
	}
	return p, false, nil
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	return Stats{
		MemHits:    s.stats.memHits.Load(),
		DiskHits:   s.stats.diskHits.Load(),
		Misses:     s.stats.misses.Load(),
		Stale:      s.stats.stale.Load(),
		Corrupt:    s.stats.corrupt.Load(),
		Saves:      s.stats.saves.Load(),
		SaveErrors: s.stats.saveErrors.Load(),
	}
}
