package planstore

import (
	"container/list"
	"sync"

	"aim/internal/core"
)

// lru is the in-memory tier of the two-tier cache: decoded plans keyed
// by their content hash, evicted least-recently-used once the byte
// budget is exceeded (an entry's cost is its encoded size — the best
// cheap proxy for the decoded footprint, and the number the disk tier
// already knows). A single over-budget plan is still admitted alone:
// the memory tier must never refuse the plan a server is actively
// serving.
type lru struct {
	mu        sync.Mutex
	budget    int64
	used      int64
	order     *list.List // front = most recent; values are *lruEntry
	entries   map[string]*list.Element
	evictions int64
}

type lruEntry struct {
	hash string
	plan *core.Plan
	cost int64
}

// newLRU returns an empty cache with the given byte budget.
func newLRU(budget int64) *lru {
	if budget <= 0 {
		budget = DefaultMemoryBudget
	}
	return &lru{budget: budget, order: list.New(), entries: make(map[string]*list.Element)}
}

// get returns the cached plan and marks it most recently used.
func (c *lru) get(hash string) (*core.Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[hash]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).plan, true
}

// add inserts (or refreshes) a plan and evicts from the cold end until
// the budget holds again. Entries are immutable, so re-adding an
// existing hash only refreshes recency.
func (c *lru) add(hash string, plan *core.Plan, cost int64) {
	if cost < 0 {
		cost = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[hash]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.entries[hash] = c.order.PushFront(&lruEntry{hash: hash, plan: plan, cost: cost})
	c.used += cost
	for c.used > c.budget && c.order.Len() > 1 {
		el := c.order.Back()
		e := el.Value.(*lruEntry)
		c.order.Remove(el)
		delete(c.entries, e.hash)
		c.used -= e.cost
		c.evictions++
	}
}

// len returns the number of cached plans.
func (c *lru) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
