package planstore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"aim/internal/core"
	"aim/internal/model"
	"aim/internal/vf"
)

// testKey mirrors the serving runtime's key derivation for the
// reference deployment point the tests compile.
func testKey(network string, seed int64) Key {
	return Key{Network: network, Mode: vf.LowPower.String(), Bits: 8, Delta: 16, Seed: seed}
}

// compileTestPlan compiles the reference plan the way the serving
// runtime does: zoo weights from the shared zoo seed, pipeline seeded
// per request.
func compileTestPlan(t testing.TB, network string, seed int64) *core.Plan {
	t.Helper()
	net, err := model.ByName(network, 2025)
	if err != nil {
		t.Fatal(err)
	}
	p := core.NewPipeline(vf.LowPower)
	p.Seed = seed
	return p.Compile(net)
}

// TestRoundTripExecutesByteIdentically is the store's core guarantee:
// a decoded plan is not merely similar to the compiled original — it
// Executes byte-identically, for every worker count, so a fleet
// replica answering from disk returns exactly what the compiling
// replica returns. Run under -race this also proves a decoded plan is
// as shareable as a compiled one.
func TestRoundTripExecutesByteIdentically(t *testing.T) {
	for _, network := range []string{"resnet18", "mobilenetv2"} {
		t.Run(network, func(t *testing.T) {
			k := testKey(network, 1)
			plan := compileTestPlan(t, network, 1)
			data, err := Encode(k, plan)
			if err != nil {
				t.Fatal(err)
			}
			decoded, err := Decode(k, data)
			if err != nil {
				t.Fatal(err)
			}
			// Structural fidelity: re-encoding the decoded plan must
			// reproduce the bytes exactly (the encoding is canonical).
			data2, err := Encode(k, decoded)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, data2) {
				t.Fatalf("re-encoded bytes differ: %d vs %d bytes", len(data), len(data2))
			}
			// Aliasing fidelity: wave plans must point into the decoded
			// artifact's plan slice, and layers into the shared network.
			if decoded.Baseline.Net != decoded.Net || decoded.AIM.Net != decoded.Net {
				t.Fatal("decoded artifacts do not share the plan's network")
			}
			for _, wv := range decoded.AIM.Waves {
				for _, lp := range wv.Plans {
					found := false
					for _, p := range decoded.AIM.Plans {
						if p == lp {
							found = true
							break
						}
					}
					if !found {
						t.Fatal("decoded wave references a plan copy, not the shared slice entry")
					}
				}
			}
			for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
				pipe := core.NewPipeline(vf.LowPower)
				pipe.Seed = 1
				pipe.Parallel = workers
				want := pipe.Execute(plan)
				got := pipe.Execute(decoded)
				if !reflect.DeepEqual(stripPointers(want), stripPointers(got)) {
					t.Fatalf("workers=%d: decoded plan executed differently\nwant %+v\ngot  %+v",
						workers, stripPointers(want), stripPointers(got))
				}
			}
		})
	}
}

// stripPointers reduces a Report to its value content: the pointer
// fields necessarily differ between a compiled and a decoded plan, so
// equality is asserted on every computed number instead.
type reportValues struct {
	Net       string
	Baseline  interface{}
	AIM       interface{}
	BaseQ     float64
	AIMQ      float64
	BaseStats interface{}
	AIMStats  interface{}
}

func stripPointers(r core.Report) reportValues {
	return reportValues{
		Net:       r.Net.Name,
		Baseline:  r.Baseline.Result,
		AIM:       r.AIM.Result,
		BaseQ:     r.Baseline.Quality,
		AIMQ:      r.AIM.Quality,
		BaseStats: r.Baseline.HR,
		AIMStats:  r.AIM.HR,
	}
}

// TestDecodeWrongKey: an entry must vouch for its own key — handing
// the right bytes to the wrong key is corruption, not a hit.
func TestDecodeWrongKey(t *testing.T) {
	k := testKey("resnet18", 1)
	plan := compileTestPlan(t, "resnet18", 1)
	data, err := Encode(k, plan)
	if err != nil {
		t.Fatal(err)
	}
	other := k
	other.Seed = 2
	if _, err := Decode(other, data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("decode under wrong key: err = %v, want ErrCorrupt", err)
	}
}

// TestStoreCorruptEntryFallsBack: a truncated or bit-rotted on-disk
// entry is served as a miss, counted, and swept — the caller
// recompiles instead of erroring out, and the next Get does not trip
// over the same bad file.
func TestStoreCorruptEntryFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("resnet18", 1)
	plan := compileTestPlan(t, "resnet18", 1)
	if err := s.Put(k, plan); err != nil {
		t.Fatal(err)
	}
	// Corrupt the stored entry in place.
	h := k.Hash()
	path := filepath.Join(dir, h[:2], h)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// A fresh store (no memory tier to answer from) must miss.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(k); ok {
		t.Fatal("corrupt entry was served")
	}
	st := s2.Stats()
	if st.Corrupt != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want Corrupt=1 Misses=1", st)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt entry was not swept")
	}
	// GetOrCompile recovers transparently and repopulates.
	p, hit, err := s2.GetOrCompile(k, func() (*core.Plan, error) { return plan, nil })
	if err != nil || hit || p == nil {
		t.Fatalf("GetOrCompile after corruption: plan=%v hit=%v err=%v", p != nil, hit, err)
	}
	if _, ok := s2.Get(k); !ok {
		t.Fatal("store was not repopulated after recompile")
	}
}

// TestStoreStaleVersionFallsBack: an entry written by another
// compiler generation (here: a hand-built header with an old code
// version) is a counted miss, not an error — restart after an upgrade
// recompiles.
func TestStoreStaleVersionFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("resnet18", 1)
	var w writer
	w.buf = append(w.buf, magic...)
	w.u32(FormatVersion)
	w.str("aim-plan-0-ancient")
	h := k.Hash()
	if err := s.backend.Store(h, w.buf); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("stale entry was served")
	}
	if st := s.Stats(); st.Stale != 1 {
		t.Fatalf("stats = %+v, want Stale=1", st)
	}
	if s.backend.Has(h) {
		t.Fatal("stale entry was not swept")
	}
}

// TestStoreTwoTierPromotion: a disk hit promotes the decoded plan into
// the memory tier, so the second Get is a memory hit.
func TestStoreTwoTierPromotion(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("resnet18", 1)
	plan := compileTestPlan(t, "resnet18", 1)
	if err := s.Put(k, plan); err != nil {
		t.Fatal(err)
	}
	// Simulate a restart: same backend, cold memory tier.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(k); !ok {
		t.Fatal("warm disk cache missed after restart")
	}
	p2, ok := s2.Get(k)
	if !ok {
		t.Fatal("second Get missed")
	}
	st := s2.Stats()
	if st.DiskHits != 1 || st.MemHits != 1 {
		t.Fatalf("stats = %+v, want DiskHits=1 MemHits=1", st)
	}
	// The memory tier returns the same decoded instance, not a re-read.
	if p3, _ := s2.Get(k); p3 != p2 {
		t.Fatal("memory tier did not return the cached instance")
	}
}

// TestLRUEviction: the memory tier evicts least-recently-used entries
// once over budget, and evicted plans are still served from disk.
func TestLRUEviction(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := New(b, 1) // 1-byte budget: at most one resident plan
	plan := compileTestPlan(t, "resnet18", 1)
	k1, k2 := testKey("resnet18", 1), testKey("resnet18", 2)
	if err := s.Put(k1, plan); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k2, plan); err != nil {
		t.Fatal(err)
	}
	if n := s.mem.len(); n != 1 {
		t.Fatalf("memory tier holds %d plans under a 1-byte budget, want 1", n)
	}
	if _, ok := s.Get(k1); !ok {
		t.Fatal("evicted plan not served from disk")
	}
	if st := s.Stats(); st.DiskHits != 1 {
		t.Fatalf("stats = %+v, want DiskHits=1", st)
	}
}

// TestDirBackend covers the backend contract directly.
func TestDirBackend(t *testing.T) {
	d, err := OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Load("deadbeef"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Load missing: err = %v, want ErrNotFound", err)
	}
	if err := d.Remove("deadbeef"); err != nil {
		t.Fatalf("Remove missing: %v", err)
	}
	names := []string{"aa11", "aa22", "bb33"}
	for i, n := range names {
		if err := d.Store(n, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Overwriting with identical bytes (content addressing) is fine.
	if err := d.Store("aa11", []byte{0}); err != nil {
		t.Fatal(err)
	}
	for i, n := range names {
		if !d.Has(n) {
			t.Fatalf("Has(%s) = false", n)
		}
		data, err := d.Load(n)
		if err != nil || len(data) != 1 || data[0] != byte(i) {
			t.Fatalf("Load(%s) = %v, %v", n, data, err)
		}
	}
	got, err := d.List()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(names) {
		t.Fatalf("List() = %v, want %v", got, names)
	}
	if err := d.Remove("aa22"); err != nil {
		t.Fatal(err)
	}
	if d.Has("aa22") {
		t.Fatal("Has after Remove")
	}
}

// TestHashComposition: the content hash must move with every key field
// and with the code version — and nothing else.
func TestHashComposition(t *testing.T) {
	base := testKey("resnet18", 1)
	seen := map[string]string{base.Hash(): "base"}
	for name, k := range map[string]Key{
		"network": {Network: "gpt2", Mode: base.Mode, Bits: base.Bits, Delta: base.Delta, Seed: base.Seed},
		"mode":    {Network: base.Network, Mode: vf.Sprint.String(), Bits: base.Bits, Delta: base.Delta, Seed: base.Seed},
		"bits":    {Network: base.Network, Mode: base.Mode, Bits: 4, Delta: base.Delta, Seed: base.Seed},
		"delta":   {Network: base.Network, Mode: base.Mode, Bits: base.Bits, Delta: 8, Seed: base.Seed},
		"seed":    {Network: base.Network, Mode: base.Mode, Bits: base.Bits, Delta: base.Delta, Seed: 7},
	} {
		h := k.Hash()
		if prev, dup := seen[h]; dup {
			t.Fatalf("key variation %q collides with %q", name, prev)
		}
		seen[h] = name
	}
	if base.Hash() != testKey("resnet18", 1).Hash() {
		t.Fatal("hash is not deterministic")
	}
}
