package planstore

import (
	"bytes"
	"testing"
)

// FuzzPlanDecode feeds the decoder hostile bytes: the engine mutates
// real encoded plans (the seed corpus) plus the classic deterministic
// corruptions — truncations at every stride and single-byte flips
// across the file. The decoder must never panic or over-allocate, and
// on the rare mutation that still decodes, the canonical-encoding
// invariant must hold: re-encoding reproduces the input byte-for-byte,
// so a fuzz-found "success" is a genuine valid encoding, not a decoder
// that got lucky.
func FuzzPlanDecode(f *testing.F) {
	k := testKey("resnet18", 1)
	for _, network := range []string{"resnet18", "mobilenetv2"} {
		data, err := Encode(testKey(network, 1), compileTestPlan(f, network, 1))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		// Deterministic corruptions of the real artifact, so even a
		// -fuzztime too short to mutate covers the classic failure
		// shapes (strides offset by primes to avoid word boundaries).
		truncStride := len(data)/13 + 1
		for n := 0; n < len(data); n += truncStride {
			f.Add(append([]byte(nil), data[:n]...))
		}
		flipStride := len(data)/17 + 1
		for i := 0; i < len(data); i += flipStride {
			mut := append([]byte(nil), data...)
			mut[i] ^= 0x41
			f.Add(mut)
		}
	}
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(k, data)
		if err != nil {
			return
		}
		reenc, err := Encode(k, p)
		if err != nil {
			t.Fatalf("decoded plan does not re-encode: %v", err)
		}
		if !bytes.Equal(reenc, data) {
			t.Fatalf("decode succeeded on %d bytes that are not a canonical encoding", len(data))
		}
	})
}
