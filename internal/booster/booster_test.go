package booster

import (
	"testing"
	"testing/quick"

	"aim/internal/vf"
	"aim/internal/xrand"
)

func TestNewAdjusterStartsAtTable1(t *testing.T) {
	a := NewLevelAdjuster(50, 50)
	if a.Level() != 35 || a.ALevel() != 35 {
		t.Errorf("level=%v alevel=%v, want 35/35 per Table 1", a.Level(), a.ALevel())
	}
}

func TestNewAdjusterValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewLevelAdjuster(vf.Level(23), 50) },
		func() { NewLevelAdjuster(50, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestFailureSnapsToSafeLevel(t *testing.T) {
	// DESIGN.md invariant 5: after an IRFailure the group runs at the
	// safe level on the next cycle.
	a := NewLevelAdjuster(50, 50)
	if got := a.Step(true, false, 0); got != 50 {
		t.Errorf("level after failure = %v, want safe 50", got)
	}
}

func TestEarlyFailureDemotesALevel(t *testing.T) {
	a := NewLevelAdjuster(50, 50)
	// Run clean past the 0.2β window, then fail once (no demotion),
	// then fail again within 0.2β=10 cycles ("too soon": demotion).
	for i := 0; i < 15; i++ {
		a.Step(false, false, 0)
	}
	a.Step(true, false, 0)
	if a.Demotions() != 0 {
		t.Fatalf("late failure should not demote, got %d", a.Demotions())
	}
	for i := 0; i < 5; i++ {
		a.Step(false, false, 0)
	}
	a.Step(true, false, 0)
	if a.ALevel() != 40 {
		t.Errorf("a-level = %v, want demoted to 40", a.ALevel())
	}
	if a.Demotions() != 1 {
		t.Errorf("demotions = %d", a.Demotions())
	}
}

func TestLateFailureKeepsALevel(t *testing.T) {
	a := NewLevelAdjuster(50, 50)
	for i := 0; i < 30; i++ { // > 0.2β failure-free cycles
		a.Step(false, false, 0)
	}
	a.Step(true, false, 0)
	if a.ALevel() != 35 {
		t.Errorf("a-level = %v, want unchanged 35", a.ALevel())
	}
}

func TestBackToALevelAfterBeta(t *testing.T) {
	a := NewLevelAdjuster(50, 50)
	a.Step(true, false, 0) // go to safe
	var lvl vf.Level
	for i := 0; i < 49; i++ {
		lvl = a.Step(false, false, 0)
		if i < 48 && lvl != 50 {
			t.Fatalf("level left safe too early at cycle %d: %v", i, lvl)
		}
	}
	lvl = a.Step(false, false, 0) // SafeCounter reaches β
	if lvl != a.ALevel() {
		t.Errorf("level = %v, want back to a-level %v", lvl, a.ALevel())
	}
}

func TestPromotionAfterTwoBeta(t *testing.T) {
	a := NewLevelAdjuster(50, 20)
	start := a.ALevel()
	for i := 0; i <= 2*20; i++ {
		a.Step(false, false, 0)
	}
	if a.ALevel() != start.Up() {
		t.Errorf("a-level = %v, want promoted to %v", a.ALevel(), start.Up())
	}
	if a.Promotions() != 1 {
		t.Errorf("promotions = %d", a.Promotions())
	}
	// Counter resets to β, so the next promotion takes another β+1.
	for i := 0; i <= 20; i++ {
		a.Step(false, false, 0)
	}
	if a.ALevel() != start.Up().Up() {
		t.Errorf("second promotion missing: %v", a.ALevel())
	}
}

func TestPromotionSaturatesAt20(t *testing.T) {
	a := NewLevelAdjuster(25, 5)
	for i := 0; i < 500; i++ {
		a.Step(false, false, 0)
	}
	if a.ALevel() != 20 {
		t.Errorf("a-level = %v, want saturated at 20", a.ALevel())
	}
}

func TestDemotionSaturatesAtSafe(t *testing.T) {
	a := NewLevelAdjuster(30, 50)
	for i := 0; i < 20; i++ {
		a.Step(true, false, 0) // hammer failures
	}
	if a.ALevel() > 30 {
		t.Errorf("a-level = %v demoted beyond safe 30", a.ALevel())
	}
	if a.Level() != 30 {
		t.Errorf("level = %v, want safe", a.Level())
	}
}

func TestFrequencySync(t *testing.T) {
	a := NewLevelAdjuster(50, 50)
	got := a.Step(false, true, 45)
	if got != 45 {
		t.Errorf("freq sync level = %v, want 45", got)
	}
}

// Property: the in-force level never exceeds the safe level's
// pessimism bound... more precisely the level is always one of
// {safe, a-level, synced level}, and a-level never exceeds safe.
func TestAdjusterInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := xrand.New(seed)
		safe := vf.Levels()[g.Intn(10)]
		a := NewLevelAdjuster(safe, 10+g.Intn(80))
		for i := 0; i < 400; i++ {
			fail := g.Bernoulli(0.08)
			lvl := a.Step(fail, false, 0)
			if !lvl.Valid() || !a.ALevel().Valid() {
				return false
			}
			if a.ALevel() > safe {
				return false
			}
			if fail && lvl != safe {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSafeLevelFor(t *testing.T) {
	if got := SafeLevelFor([]float64{0.31, 0.475, 0.22}); got != 50 {
		t.Errorf("safe level = %v, want 50 (worst HR 47.5%%)", got)
	}
	if got := SafeLevelFor([]float64{0.7}); got != vf.DVFSLevel {
		t.Errorf("HR>60%% must revert to DVFS, got %v", got)
	}
}

func TestSetPipelineFailureFree(t *testing.T) {
	p := NewSetPipeline(4)
	for i := 0; i < 10; i++ {
		if got := p.Advance(nil); got != 2 {
			t.Fatalf("failure-free unit took %d steps, want 2", got)
		}
	}
	if p.Utilization() != 1.0 {
		t.Errorf("utilization = %v, want 1", p.Utilization())
	}
	if p.Useful() != 10 || p.Total() != 20 {
		t.Errorf("useful=%d total=%d", p.Useful(), p.Total())
	}
}

func TestSetPipelineFailureCostsTwoSteps(t *testing.T) {
	p := NewSetPipeline(4)
	if got := p.Advance([]int{1}); got != 4 {
		t.Fatalf("failed unit took %d steps, want 4", got)
	}
	// Fig. 11: failing macro runs Re, Re'; others bubble.
	tr1 := p.Trace(1)
	if tr1[1] != StepAdjust || tr1[2] != StepRecompute {
		t.Errorf("macro 1 trace = %v", tr1)
	}
	tr0 := p.Trace(0)
	if tr0[1] != StepBubble || tr0[2] != StepBubble {
		t.Errorf("macro 0 trace = %v", tr0)
	}
	if p.Utilization() != 0.5 {
		t.Errorf("utilization = %v, want 0.5", p.Utilization())
	}
}

func TestSetPipelinePanicsOnBadIndex(t *testing.T) {
	p := NewSetPipeline(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Advance([]int{5})
}

// DESIGN.md invariant 8 (structural form): recompute preserves the
// count of useful work units regardless of failure pattern.
func TestRecomputePreservesWorkProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := xrand.New(seed)
		p := NewSetPipeline(1 + g.Intn(6))
		units := 50
		for i := 0; i < units; i++ {
			var failed []int
			for m := 0; m < p.Macros; m++ {
				if g.Bernoulli(0.1) {
					failed = append(failed, m)
				}
			}
			p.Advance(failed)
		}
		return p.Useful() == units && p.Utilization() <= 1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
