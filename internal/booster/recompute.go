package booster

import "fmt"

// The Fig. 11 pipeline: task allocation is at macro granularity, and
// macros from different physical groups combine into a logical
// MacroSet computing one operator. Within a set every macro must run
// at the same frequency; an IRFailure in any macro stalls the whole
// set (bubbles), the failing macro re-adjusts V-f and recomputes, and
// partial sums are held so results stay consistent. Other sets are
// unaffected.

// StepKind is the activity of one macro in one pipeline step.
type StepKind byte

const (
	// StepMul is V-M multiplication of a kernel chunk with the input
	// stream (M_ij in Fig. 11).
	StepMul StepKind = 'M'
	// StepAcc is partial-sum accumulation across the set (A_ij).
	StepAcc StepKind = 'A'
	// StepBubble is an idle slot while a peer recovers (Bub).
	StepBubble StepKind = 'b'
	// StepAdjust is V-f adjustment + recompute preparation (Re).
	StepAdjust StepKind = 'R'
	// StepRecompute re-executes the failed multiplication (Re').
	StepRecompute StepKind = 'r'
)

// SetPipeline simulates one logical MacroSet's pipeline over a stream
// of work units, injecting the Fig. 11 recovery sequence on failures.
type SetPipeline struct {
	// Macros is the number of macros in the set.
	Macros int
	// trace[m] is the per-macro step history (for tests/diagnostics).
	trace [][]StepKind
	// useful counts completed work units.
	useful int
	// total counts elapsed steps.
	total int
}

// NewSetPipeline builds a pipeline over the given number of macros.
func NewSetPipeline(macros int) *SetPipeline {
	if macros <= 0 {
		panic("booster: set needs at least one macro")
	}
	return &SetPipeline{Macros: macros, trace: make([][]StepKind, macros)}
}

// Advance processes one work unit (a multiplication + accumulation
// wave across the whole set). failed lists macro indices that raised
// IRFailure during this unit; each failure inserts the recovery
// sequence: the failing macro spends StepAdjust + StepRecompute while
// its peers hold bubbles, exactly one extra unit's worth of delay per
// Fig. 11. Returns the number of pipeline steps consumed.
func (p *SetPipeline) Advance(failed []int) int {
	for _, m := range failed {
		if m < 0 || m >= p.Macros {
			panic(fmt.Sprintf("booster: failed macro %d out of set range", m))
		}
	}
	steps := 1
	// Normal wave: everyone multiplies and accumulates.
	for m := 0; m < p.Macros; m++ {
		p.trace[m] = append(p.trace[m], StepMul)
	}
	if len(failed) > 0 {
		// Recovery wave(s): failing macros adjust then recompute; the
		// rest of the set bubbles (stores partial sums, does nothing).
		isFailed := make(map[int]bool, len(failed))
		for _, m := range failed {
			isFailed[m] = true
		}
		for m := 0; m < p.Macros; m++ {
			if isFailed[m] {
				p.trace[m] = append(p.trace[m], StepAdjust, StepRecompute)
			} else {
				p.trace[m] = append(p.trace[m], StepBubble, StepBubble)
			}
		}
		steps += 2
	}
	// Accumulation wave completes the unit.
	for m := 0; m < p.Macros; m++ {
		p.trace[m] = append(p.trace[m], StepAcc)
	}
	steps++
	p.useful++
	p.total += steps
	return steps
}

// Useful returns completed work units.
func (p *SetPipeline) Useful() int { return p.useful }

// Total returns elapsed pipeline steps.
func (p *SetPipeline) Total() int { return p.total }

// Utilization is useful work per step relative to the failure-free
// pipeline (2 steps per unit: multiply + accumulate).
func (p *SetPipeline) Utilization() float64 {
	if p.total == 0 {
		return 1
	}
	return float64(2*p.useful) / float64(p.total)
}

// Trace returns macro m's step history.
func (p *SetPipeline) Trace(m int) []StepKind { return p.trace[m] }
