package booster

import (
	"fmt"

	"aim/internal/irdrop"
	"aim/internal/vf"
)

// Controller is the Booster Controller of Fig. 10b: it owns one level
// adjuster, one IR monitor and one V-f operating point per macro
// group, processes the per-cycle IRFailure signals, commands the
// affected groups to recover, and keeps logical MacroSets frequency-
// consistent.
type Controller struct {
	Table *vf.Table
	Mode  vf.Mode
	Model irdrop.Model
	// GuardSigma widens each level's tolerated drop by this many noise
	// sigmas before the monitor trips.
	GuardSigma float64

	groups []*GroupState
	// setsOf[g] lists the MacroSet ids with members in group g.
	setsOf [][]int
	// groupsOf[set] lists the groups hosting members of a set.
	groupsOf [][]int
}

// GroupState is one macro group's runtime state.
type GroupState struct {
	ID       int
	Safe     vf.Level
	Adjuster *LevelAdjuster
	Monitor  *irdrop.Monitor
	Level    vf.Level
	Pair     vf.Pair
}

// NewController builds a controller for the given per-group safe
// levels and set membership (setsOf[g] = set ids present in group g).
func NewController(table *vf.Table, mode vf.Mode, m irdrop.Model, beta int, safeLevels []vf.Level, setsOf [][]int) *Controller {
	if len(setsOf) != len(safeLevels) {
		panic("booster: setsOf length != group count")
	}
	c := &Controller{Table: table, Mode: mode, Model: m, GuardSigma: 2.5, setsOf: setsOf}
	numSets := 0
	for _, sets := range setsOf {
		for _, s := range sets {
			if s < 0 {
				panic("booster: negative set id")
			}
			if s+1 > numSets {
				numSets = s + 1
			}
		}
	}
	c.groupsOf = make([][]int, numSets)
	for g, sets := range setsOf {
		for _, s := range sets {
			c.groupsOf[s] = append(c.groupsOf[s], g)
		}
	}
	for g, safe := range safeLevels {
		gs := &GroupState{
			ID:       g,
			Safe:     safe,
			Adjuster: NewLevelAdjuster(safe, beta),
		}
		gs.Level = gs.Adjuster.Level()
		gs.Pair = table.PairFor(gs.Level, mode)
		gs.Monitor = irdrop.NewMonitor(vf.NominalV*1000, c.tolerated(gs.Level))
		c.groups = append(c.groups, gs)
	}
	return c
}

func (c *Controller) tolerated(l vf.Level) float64 {
	return c.Model.Estimate(l.Rtog()) + c.GuardSigma*c.Model.NoiseMV
}

// setLevel returns the level of set s's minimum-frequency hosting
// group — the set's synchronized frequency in level terms. Frequency
// ties break toward the earlier group, keeping the answer
// deterministic.
func (c *Controller) setLevel(s int) vf.Level {
	var target vf.Level
	f := -1.0
	for _, g := range c.groupsOf[s] {
		gs := c.groups[g]
		if f < 0 || gs.Pair.FreqGHz < f {
			f = gs.Pair.FreqGHz
			target = gs.Level
		}
	}
	return target
}

// Group returns group g's state.
func (c *Controller) Group(g int) *GroupState { return c.groups[g] }

// Groups returns the group count.
func (c *Controller) Groups() int { return len(c.groups) }

// CycleResult reports one controller step.
type CycleResult struct {
	// FailedGroups lists groups whose monitors tripped this cycle.
	FailedGroups []int
	// StalledSets lists the MacroSets that must run the Fig. 11
	// recovery (any member group failed).
	StalledSets []int
	// SetFreqGHz is the synchronized frequency of each set (min over
	// hosting groups).
	SetFreqGHz []float64
}

// Step processes one cycle: observedDropMV[g] is what each group's
// monitor sees. The controller samples monitors, drives every group's
// Algorithm 2 adjuster, re-arms monitors on level changes, propagates
// frequency synchronization to set peers, and reports which sets must
// stall.
func (c *Controller) Step(observedDropMV []float64) CycleResult {
	if len(observedDropMV) != len(c.groups) {
		panic(fmt.Sprintf("booster: %d drops for %d groups", len(observedDropMV), len(c.groups)))
	}
	var res CycleResult
	stalled := make(map[int]bool)
	changed := make([]bool, len(c.groups))
	for g, gs := range c.groups {
		fail := gs.Monitor.Sample(observedDropMV[g])
		if fail {
			res.FailedGroups = append(res.FailedGroups, g)
			for _, s := range c.setsOf[g] {
				stalled[s] = true
			}
		}
		newLevel := gs.Adjuster.Step(fail, false, 0)
		if newLevel != gs.Level {
			gs.Level = newLevel
			gs.Pair = c.Table.PairFor(newLevel, c.Mode)
			gs.Monitor.SetToleratedDrop(c.tolerated(newLevel))
			changed[g] = true
		}
	}
	// Frequency synchronization (Algorithm 2 lines 11-13): when a
	// member of a set changes its operating point, its peers adopt the
	// set's synchronized frequency — the minimum-frequency level among
	// the set's hosting groups (line 12, L ← L_set) — so the set's
	// macros stay frequency-consistent. A sync point that turns out
	// too aggressive for a peer self-corrects through the normal
	// IRFailure path: its monitor is re-armed for the new level here.
	// A peer whose level moves is itself marked changed, so the sweep
	// propagates through groups shared between sets; sets earlier in
	// id order than such a late move pick it up next cycle. Each sync
	// adopts the level of an already-slower member, so frequencies
	// only ratchet down within the pass and the sweep cannot cascade
	// unboundedly.
	for s, members := range c.groupsOf {
		memberChanged := false
		for _, g := range members {
			if changed[g] {
				memberChanged = true
				break
			}
		}
		if !memberChanged {
			continue
		}
		target := c.setLevel(s)
		for _, og := range members {
			if changed[og] {
				continue // the trigger keeps its adjusted level
			}
			gs := c.groups[og]
			gs.Adjuster.Step(false, true, target)
			if target != gs.Level {
				gs.Level = target
				gs.Pair = c.Table.PairFor(target, c.Mode)
				gs.Monitor.SetToleratedDrop(c.tolerated(target))
				changed[og] = true
			}
		}
	}
	for s := range c.groupsOf {
		if stalled[s] {
			res.StalledSets = append(res.StalledSets, s)
		}
	}
	res.SetFreqGHz = make([]float64, len(c.groupsOf))
	for s, gs := range c.groupsOf {
		f := -1.0
		for _, g := range gs {
			if f < 0 || c.groups[g].Pair.FreqGHz < f {
				f = c.groups[g].Pair.FreqGHz
			}
		}
		if f < 0 {
			f = vf.NominalFreqGHz
		}
		res.SetFreqGHz[s] = f
	}
	return res
}

// TotalFailures sums the adjusters' failure counters.
func (c *Controller) TotalFailures() int {
	n := 0
	for _, gs := range c.groups {
		n += gs.Adjuster.Failures()
	}
	return n
}
