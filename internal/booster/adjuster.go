// Package booster implements IR-Booster (paper §5.5): the per-group
// level adjustment state machine of Algorithm 2, driven by
// software-derived safe levels (from HR) and hardware IRFailure
// signals, plus the MacroSet stall/recompute pipeline of Fig. 11 that
// preserves results when a failure forces a macro to re-execute.
package booster

import (
	"fmt"

	"aim/internal/vf"
)

// LevelAdjuster is Algorithm 2 for one Macro Group.
//
// The group starts at the profiling-derived aggressive level (Table 1).
// IRFailures snap it back to the safe level; failures arriving too soon
// after the previous one (< 0.2β cycles) demote the aggressive level.
// After β failure-free cycles the group returns to its aggressive
// level, and after a further β cycles the aggressive level is promoted
// one step, unlocking more performance or power savings.
type LevelAdjuster struct {
	// Safe is the software-guided safe level from HR (§5.5.1).
	Safe vf.Level
	// Beta is the stability horizon β (cycles).
	Beta int

	aLevel      vf.Level
	level       vf.Level
	safeCounter int

	// Telemetry.
	failures   int
	demotions  int
	promotions int
}

// NewLevelAdjuster initializes Algorithm 2 lines 1-2: the a-level comes
// from Table 1 and the group starts at it.
func NewLevelAdjuster(safe vf.Level, beta int) *LevelAdjuster {
	if !safe.Valid() {
		panic(fmt.Sprintf("booster: invalid safe level %d", int(safe)))
	}
	if beta <= 0 {
		panic("booster: beta must be positive")
	}
	a0 := vf.InitialALevel(safe)
	return &LevelAdjuster{Safe: safe, Beta: beta, aLevel: a0, level: a0}
}

// Level returns the level currently in force.
func (a *LevelAdjuster) Level() vf.Level { return a.level }

// ALevel returns the current aggressive level.
func (a *LevelAdjuster) ALevel() vf.Level { return a.aLevel }

// Failures returns the IRFailure count observed so far.
func (a *LevelAdjuster) Failures() int { return a.failures }

// Demotions and Promotions expose a-level movement counts.
func (a *LevelAdjuster) Demotions() int { return a.demotions }

// Promotions returns the number of a-level promotions.
func (a *LevelAdjuster) Promotions() int { return a.promotions }

// Step advances one cycle (Algorithm 2 lines 3-25). irFailure is the
// monitor's signal; freqSync, when true, forces the level to setLevel
// because another macro of the same logical Set changed frequency
// (line 11-13, "Frequency Synchronization").
func (a *LevelAdjuster) Step(irFailure bool, freqSync bool, setLevel vf.Level) vf.Level {
	switch {
	case irFailure:
		a.failures++
		a.level = a.Safe              // line 5: set safe level
		if a.safeCounter < a.Beta/5 { // line 6: failure interval < 0.2β
			// Overly aggressive: demote the a-level (lines 7-8), but
			// never below the safe level's own pessimism.
			if a.aLevel != a.Safe {
				down := a.aLevel.Down()
				if down > a.Safe {
					down = a.Safe
				}
				if down != a.aLevel {
					a.aLevel = down
					a.demotions++
				}
			}
		}
		a.safeCounter = 0 // line 10

	case freqSync:
		a.level = setLevel // line 12
		a.safeCounter = 0  // line 13

	default:
		a.safeCounter++ // line 15
		if a.safeCounter == a.Beta {
			a.level = a.aLevel // lines 16-17: back to a-level
		}
		if a.safeCounter > 2*a.Beta { // lines 19-22: a-level up
			up := a.aLevel.Up()
			if up != a.aLevel {
				a.aLevel = up
				a.promotions++
			}
			a.level = a.aLevel
			a.safeCounter = a.Beta
		}
	}
	return a.level
}

// SafeLevelFor derives the software-guided safe level for a macro
// group (§5.5.1): the worst (highest) HR among its macros, rounded up
// to the next 5% level; input-determined operators (unknown HR,
// signalled by hr > 1 sentinel or explicitly) revert to DVFS.
func SafeLevelFor(groupHRs []float64) vf.Level {
	worst := 0.0
	for _, hr := range groupHRs {
		if hr > worst {
			worst = hr
		}
	}
	return vf.LevelForHR(worst)
}
