package booster

import (
	"testing"

	"aim/internal/irdrop"
	"aim/internal/vf"
)

func newTestController(beta int) *Controller {
	m := irdrop.DPIMModel()
	table := vf.NewTable(m)
	// Two groups: group 0 hosts set 0; group 1 hosts sets 0 and 1
	// (set 0 spans both groups).
	return NewController(table, vf.LowPower, m, beta,
		[]vf.Level{30, 50}, [][]int{{0}, {0, 1}})
}

func TestControllerInit(t *testing.T) {
	c := newTestController(50)
	if c.Groups() != 2 {
		t.Fatalf("groups = %d", c.Groups())
	}
	// Table 1: safe 30 → a0 25; safe 50 → a0 35.
	if c.Group(0).Level != 25 || c.Group(1).Level != 35 {
		t.Errorf("initial levels %v/%v, want 25/35", c.Group(0).Level, c.Group(1).Level)
	}
	if c.Group(0).Pair.V >= vf.NominalV {
		t.Error("aggressive level should undervolt in low-power mode")
	}
}

func TestControllerValidation(t *testing.T) {
	m := irdrop.DPIMModel()
	table := vf.NewTable(m)
	for _, f := range []func(){
		func() { NewController(table, vf.LowPower, m, 50, []vf.Level{30}, [][]int{{0}, {1}}) },
		func() { NewController(table, vf.LowPower, m, 50, []vf.Level{30}, [][]int{{-1}}) },
		func() { newTestController(50).Step([]float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestControllerFailurePropagatesToSet(t *testing.T) {
	c := newTestController(50)
	// Group 0 sees a drop far above its level-25 tolerance; group 1 is
	// quiet. Set 0 (spanning both groups) must stall; set 1 must not.
	res := c.Step([]float64{120, 10})
	if len(res.FailedGroups) != 1 || res.FailedGroups[0] != 0 {
		t.Fatalf("failed groups = %v", res.FailedGroups)
	}
	if len(res.StalledSets) != 1 || res.StalledSets[0] != 0 {
		t.Fatalf("stalled sets = %v, want [0]", res.StalledSets)
	}
	// DESIGN.md invariant 5: the failed group is at its safe level now.
	if c.Group(0).Level != 30 {
		t.Errorf("group 0 level = %v, want safe 30", c.Group(0).Level)
	}
	if c.TotalFailures() != 1 {
		t.Errorf("failures = %d", c.TotalFailures())
	}
}

func TestControllerSetFrequencySync(t *testing.T) {
	c := newTestController(50)
	res := c.Step([]float64{10, 10})
	// Set 0 spans groups 0 (level 25) and 1 (level 35): its frequency
	// is the slower of the two pairs; set 1 runs group 1's frequency.
	f0 := c.Group(0).Pair.FreqGHz
	f1 := c.Group(1).Pair.FreqGHz
	want0 := f0
	if f1 < f0 {
		want0 = f1
	}
	if res.SetFreqGHz[0] != want0 {
		t.Errorf("set 0 freq = %v, want min(%v,%v)", res.SetFreqGHz[0], f0, f1)
	}
	if res.SetFreqGHz[1] != f1 {
		t.Errorf("set 1 freq = %v, want %v", res.SetFreqGHz[1], f1)
	}
}

// TestControllerFreqSyncMovesPeers pins Algorithm 2 line 12: a level
// change inside a MacroSet must move the *peers* to the set's
// synchronized (minimum-frequency) level, not merely reset their
// counters. Three groups: set 0 spans groups 0+1, set 1 spans 1+2.
func TestControllerFreqSyncMovesPeers(t *testing.T) {
	m := irdrop.DPIMModel()
	table := vf.NewTable(m)
	newC := func() *Controller {
		return NewController(table, vf.LowPower, m, 50,
			[]vf.Level{30, 50, 50}, [][]int{{0}, {0, 1}, {1}})
	}
	cases := []struct {
		name  string
		drops [][]float64 // one Step per row
		want  [][]vf.Level
	}{
		{
			name:  "quiet cycles never sync",
			drops: [][]float64{{5, 5, 5}, {5, 5, 5}},
			want:  [][]vf.Level{{25, 35, 35}, {25, 35, 35}},
		},
		{
			// Group 0's failure snaps it to safe 30; set 0's peer
			// (group 1) must adopt the set's min-frequency level, and
			// because group 1 is shared with set 1 the move propagates
			// there too: group 2 syncs in the same pass.
			name:  "failure syncs set peer and propagates through shared group",
			drops: [][]float64{{120, 5, 5}, {5, 5, 5}},
			want:  [][]vf.Level{{30, 30, 30}, {30, 30, 30}},
		},
		{
			// Every group fails at once: all are triggers, none are
			// peers, each holds its own safe level; a repeated failure
			// at an unchanged level must not re-trigger a sync.
			name:  "simultaneous failures leave no peers to sync",
			drops: [][]float64{{130, 130, 130}, {120, 5, 5}},
			want:  [][]vf.Level{{30, 50, 50}, {30, 50, 50}},
		},
	}
	for _, tc := range cases {
		c := newC()
		for step, drops := range tc.drops {
			res := c.Step(drops)
			for g, want := range tc.want[step] {
				if got := c.Group(g).Level; got != want {
					t.Errorf("%s, step %d: group %d level = %v, want %v", tc.name, step, g, got, want)
				}
			}
			// Set-frequency consistency: each set's reported frequency
			// is the min over members, and every member the controller
			// synced runs a pair at that frequency when the set had a
			// single trigger.
			for s, members := range [][]int{{0, 1}, {1, 2}} {
				f := -1.0
				for _, g := range members {
					if fg := c.Group(g).Pair.FreqGHz; f < 0 || fg < f {
						f = fg
					}
				}
				if res.SetFreqGHz[s] != f {
					t.Errorf("%s, step %d: set %d freq = %v, want min %v", tc.name, step, s, res.SetFreqGHz[s], f)
				}
			}
		}
	}
	// The synced peer's operating point follows the level move: group 1
	// must end on the level-30 pair, not its old level-35 pair.
	c := newC()
	c.Step([]float64{120, 5, 5})
	if got, want := c.Group(1).Pair, table.PairFor(30, vf.LowPower); got != want {
		t.Errorf("synced peer pair = %v, want %v", got, want)
	}
}

func TestControllerPromotesWhenQuiet(t *testing.T) {
	c := newTestController(10)
	start := c.Group(0).Level
	for i := 0; i < 200; i++ {
		c.Step([]float64{5, 5})
	}
	if c.Group(0).Level >= start {
		t.Errorf("level %v did not promote from %v after quiet run", c.Group(0).Level, start)
	}
	if c.Group(0).Level < 20 {
		t.Errorf("level promoted beyond the grid floor: %v", c.Group(0).Level)
	}
}

func TestControllerRecoversAfterFailureBurst(t *testing.T) {
	c := newTestController(10)
	for i := 0; i < 5; i++ {
		c.Step([]float64{130, 130})
	}
	if c.Group(0).Level != 30 || c.Group(1).Level != 50 {
		t.Fatalf("levels after burst: %v/%v, want safe 30/50", c.Group(0).Level, c.Group(1).Level)
	}
	// The burst demoted the a-levels to safe, so recovery needs the
	// full promotion path: β cycles back to a-level plus >2β more for
	// the first promotion.
	for i := 0; i < 35; i++ {
		c.Step([]float64{5, 5})
	}
	if c.Group(0).Level >= 30 || c.Group(1).Level >= 50 {
		t.Errorf("levels did not return to aggressive: %v/%v", c.Group(0).Level, c.Group(1).Level)
	}
}
