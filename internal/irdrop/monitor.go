package irdrop

// Monitor is the simplified VCO-based IR monitor of §5.5.2 (after Du
// et al. [21]): a free-oscillating inverter loop whose frequency falls
// with supply voltage. The phase is sampled over a short window; if the
// implied supply voltage is below the configured threshold, the monitor
// raises IRFailure toward the Booster Controller.
type Monitor struct {
	// VddMV is the nominal supply in millivolts.
	VddMV float64
	// ThresholdMV is the minimum tolerable supply voltage: drops that
	// push the rail below it trigger IRFailure.
	ThresholdMV float64
	// BaseFreqMHz is the VCO frequency at nominal supply.
	BaseFreqMHz float64
	// GainMHzPerMV is the VCO's voltage-to-frequency gain.
	GainMHzPerMV float64
	// failure latches the last sampled state.
	failure bool
}

// NewMonitor builds a monitor that trips when the rail falls below
// vdd − toleredDropMV.
func NewMonitor(vddMV, toleratedDropMV float64) *Monitor {
	return &Monitor{
		VddMV:        vddMV,
		ThresholdMV:  vddMV - toleratedDropMV,
		BaseFreqMHz:  2000,
		GainMHzPerMV: 4.0,
	}
}

// SetToleratedDrop re-arms the monitor for a new V-f level's tolerated
// drop (the Booster Controller does this on every level change).
func (m *Monitor) SetToleratedDrop(toleratedDropMV float64) {
	m.ThresholdMV = m.VddMV - toleratedDropMV
}

// OscFreqMHz returns the VCO frequency at the given rail voltage —
// the voltage-to-frequency conversion the real sensor performs.
func (m *Monitor) OscFreqMHz(railMV float64) float64 {
	f := m.BaseFreqMHz - m.GainMHzPerMV*(m.VddMV-railMV)
	if f < 0 {
		f = 0
	}
	return f
}

// Sample observes the rail for one window given the current IR-drop in
// millivolts and returns the IRFailure signal. The detection threshold
// is applied in the frequency domain, as the hardware does: the drop is
// converted to an oscillation count and compared against the count the
// threshold voltage would produce.
func (m *Monitor) Sample(dropMV float64) bool {
	rail := m.VddMV - dropMV
	m.failure = m.OscFreqMHz(rail) < m.OscFreqMHz(m.ThresholdMV)
	return m.failure
}

// Failure returns the latched state of the last sample.
func (m *Monitor) Failure() bool { return m.failure }

// MonitorOverhead reports the area and power cost of the IR monitors
// relative to the whole chip. The paper's synthesis results (§6.10.2)
// put the simplified design below 0.1% area and 0.5% power.
func MonitorOverhead(groups int) (areaFrac, powerFrac float64) {
	// A handful of inverters and a sampling counter per macro group
	// versus a 256-TOPS compute die.
	areaFrac = float64(groups) * 0.00004
	powerFrac = float64(groups) * 0.0002
	return areaFrac, powerFrac
}
