package irdrop

import (
	"math"
	"testing"

	"aim/internal/pdn"
	"aim/internal/xrand"
)

// defaultSpatial builds a 16-group session on the calibrated die.
func defaultSpatial() *Spatial {
	fp := pdn.FloorplanAt(1)
	idx := make([]int, 16)
	for i := range idx {
		idx[i] = i
	}
	return NewSpatial(fp, idx, pdn.DefaultActivity())
}

// TestSpatialWithinCalibrationBand pins SpatialCalibrationBandMV: on
// the default die, under Eq. 2's calibration condition (groups driven
// at similar activity — the regime the runtime simulator produces),
// every group's spatially-resolved drop stays within the band of the
// analytic estimate, across the activity range and with idle groups
// mixed in.
func TestSpatialWithinCalibrationBand(t *testing.T) {
	sp := defaultSpatial()
	m := DPIMModel()
	// A second session runs the same sequence with the calibrated skip
	// gate armed: held windows trade at most DefaultSpatialSkipMV of
	// per-group accuracy, an order of magnitude inside the band — so the
	// skip-armed session must satisfy the exact same pin.
	spSkip := defaultSpatial()
	spSkip.SkipThreshold = DefaultSpatialSkipMV / m.DynCoeffMV
	rng := xrand.NewNamed(1, "spatial/band")
	act := make([]float64, 16)
	drop := make([]float64, 16)
	dropSkip := make([]float64, 16)
	check := func(label string) {
		t.Helper()
		sp.EstimateGroups(act, drop)
		spSkip.EstimateGroups(act, dropSkip)
		for g, a := range act {
			if a < 0 {
				continue
			}
			if d := math.Abs(drop[g] - m.Estimate(a)); d > SpatialCalibrationBandMV {
				t.Errorf("%s: group %d act %.3f: spatial %.1f mV vs analytic %.1f mV (band %v)",
					label, g, a, drop[g], m.Estimate(a), SpatialCalibrationBandMV)
			}
			if d := math.Abs(dropSkip[g] - m.Estimate(a)); d > SpatialCalibrationBandMV {
				t.Errorf("%s: group %d act %.3f: skip-armed %.1f mV vs analytic %.1f mV (band %v)",
					label, g, a, dropSkip[g], m.Estimate(a), SpatialCalibrationBandMV)
			}
		}
	}
	for _, r := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		for g := range act {
			act[g] = r
		}
		check("uniform")
		// Mild per-group variation (the fig16 activity draw shape:
		// a few percent of spread around the common level).
		for g := range act {
			act[g] = r * (0.95 + 0.05*rng.Float64())
		}
		check("varied")
		// Idle groups mixed in, at the booster's operating activities
		// (≤ 0.5 — at sign-off-level activity an idle quarter of the
		// die is strongly non-uniform and legitimately outside the
		// band: see SpatialCalibrationBandMV).
		if r <= 0.5 {
			for g := range act {
				act[g] = r * (0.9 + 0.1*rng.Float64())
				if g%5 == 4 {
					act[g] = -1
				}
			}
			check("idle-mixed")
		}
	}
}

// TestSpatialIdleGroups: idle groups report zero drop (the analytic
// default's accounting) while still drawing tile leakage.
func TestSpatialIdleGroups(t *testing.T) {
	sp := defaultSpatial()
	act := make([]float64, 16)
	drop := make([]float64, 16)
	for g := range act {
		act[g] = -1
	}
	act[5] = 0.8
	sp.EstimateGroups(act, drop)
	for g, d := range drop {
		if g == 5 {
			if d <= 0 {
				t.Fatalf("active group drop = %v, want > 0", d)
			}
			continue
		}
		if d != 0 {
			t.Errorf("idle group %d drop = %v, want 0", g, d)
		}
	}
}

// TestSpatialCoupling: the whole point of the tier — a group's drop
// must depend on its neighbours' activity, which the analytic model
// cannot express.
func TestSpatialCoupling(t *testing.T) {
	sp := defaultSpatial()
	act := make([]float64, 16)
	drop := make([]float64, 16)
	// Group 5 alone at 0.5.
	act[5] = 0.5
	sp.EstimateGroups(act, drop)
	alone := drop[5]
	// Group 5 at 0.5 with every neighbour flat out.
	for g := range act {
		act[g] = 1
	}
	act[5] = 0.5
	sp.Reset()
	sp.EstimateGroups(act, drop)
	crowded := drop[5]
	if crowded <= alone+5 {
		t.Errorf("neighbour coupling missing: drop alone %.1f mV, crowded %.1f mV", alone, crowded)
	}
}

// TestSpatialResetDeterminism: after Reset, a session replays an
// identical solve sequence bit for bit — the property that makes
// per-shard sessions worker-count invariant.
func TestSpatialResetDeterminism(t *testing.T) {
	sp := defaultSpatial()
	rng := xrand.NewNamed(3, "spatial/replay")
	seq := make([][]float64, 5)
	for i := range seq {
		seq[i] = make([]float64, 16)
		for g := range seq[i] {
			seq[i][g] = rng.Float64()
		}
	}
	run := func() [][]float64 {
		sp.Reset()
		out := make([][]float64, len(seq))
		for i, act := range seq {
			out[i] = make([]float64, 16)
			sp.EstimateGroups(act, out[i])
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		for g := range a[i] {
			if a[i][g] != b[i][g] {
				t.Fatalf("solve %d group %d: %v != %v after Reset", i, g, a[i][g], b[i][g])
			}
		}
	}
}

// TestSpatialPanicsOnBadPlacement: misplaced groups and mismatched
// activity vectors must fail loudly, not read the wrong tiles.
func TestSpatialPanicsOnBadPlacement(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	fp := pdn.FloorplanAt(1)
	expectPanic("tile out of range", func() {
		NewSpatial(fp, []int{0, 99}, pdn.DefaultActivity())
	})
	expectPanic("activity length mismatch", func() {
		sp := defaultSpatial()
		sp.EstimateGroups(make([]float64, 3), make([]float64, 3))
	})
}

// TestModelEstimateGroups: the analytic DropEstimator is exactly the
// historical per-group Estimate, with idle groups zeroed.
func TestModelEstimateGroups(t *testing.T) {
	m := DPIMModel()
	act := []float64{0, 0.3, -1, 1}
	drop := make([]float64, 4)
	m.EstimateGroups(act, drop)
	want := []float64{m.Estimate(0), m.Estimate(0.3), 0, m.Estimate(1)}
	for i := range want {
		if drop[i] != want[i] {
			t.Errorf("drop[%d] = %v, want %v", i, drop[i], want[i])
		}
	}
}
