package irdrop

import (
	"fmt"

	"aim/internal/pdn"
)

// Spatial-tier calibration constants, shared by the estimator, the
// simulator and the equivalence tests.
const (
	// SpatialCalibrationBandMV bounds how far a spatially-resolved
	// per-group drop may sit from the analytic Eq. 2 estimate of the
	// same activity on the calibrated die (DefaultFloorplan geometry +
	// DefaultActivity) under Eq. 2's own calibration condition —
	// groups driven at similar activity, the regime the runtime
	// simulator produces: edge tiles shed current into the die
	// boundary and resolve below the scalar model, centre tiles absorb
	// their neighbours' return current and resolve near it. The band
	// is what "the bank is a region of stable equivalent resistance"
	// (§4.1) abstracts away; TestSpatialWithinCalibrationBand pins it.
	// Strongly non-uniform activity (one hot group among idle
	// neighbours) can deviate further — that coupling is precisely the
	// information the spatial tier adds.
	SpatialCalibrationBandMV = 30.0

	// SpatialResidualNoiseFrac scales the Eq. 2 NoiseMV term while a
	// spatial estimator is in force: placement and neighbour-region
	// coupling — the bulk of what NoiseMV lumps together — are resolved
	// by the mesh solve, leaving only waveform-level variation.
	SpatialResidualNoiseFrac = 0.4

	// spatialSolveTolV / spatialSolveMaxIter bound each per-window mesh
	// solve. Warm-started from the previous window's field a V-cycle
	// count of 1-2 suffices; the first solve of a session converges
	// from cold within the iteration budget.
	spatialSolveTolV    = 1e-4
	spatialSolveMaxIter = 64
)

// Spatial is the spatially-resolved DropEstimator: each cycle-window's
// per-group activity becomes a die current-injection map, one
// warm-started multigrid solve yields the voltage field, and every
// group's drop is read back from its own floorplan tiles — so a
// group's drop depends on where it sits and what its neighbours are
// doing, the physics the analytic Model's NoiseMV term only
// approximates statistically.
//
// A Spatial owns its pdn.Multigrid session and is NOT safe for
// concurrent use; the simulator hands each wave shard its own and
// Resets it at wave boundaries so results are independent of worker
// count and execution order.
type Spatial struct {
	fp      *pdn.Floorplan
	tileIdx []int // group → floorplan tile index
	act     pdn.ActivityCurrents
	mg      *pdn.Multigrid
	rtog    []float64 // per-tile activity buffer
	cur     []float64 // injection map buffer
}

// NewSpatial builds a spatial estimator session over a floorplan.
// tileIdx maps each macro group to its floorplan tile (the mapping
// layer's Placement provides it); act supplies the calibrated current
// densities. The floorplan's own Solver field is ignored — the session
// keeps a private warm-started multigrid, so a shared geometry-only
// floorplan (pdn.FloorplanAt) may back many sessions.
func NewSpatial(fp *pdn.Floorplan, tileIdx []int, act pdn.ActivityCurrents) *Spatial {
	for g, ti := range tileIdx {
		if ti < 0 || ti >= len(fp.GroupTiles) {
			panic(fmt.Sprintf("irdrop: group %d placed on tile %d of %d", g, ti, len(fp.GroupTiles)))
		}
	}
	return &Spatial{
		fp:      fp,
		tileIdx: tileIdx,
		act:     act,
		mg:      pdn.NewMultigrid(fp.Grid),
		rtog:    make([]float64, len(fp.GroupTiles)),
		cur:     make([]float64, fp.Grid.W*fp.Grid.H),
	}
}

// Groups returns how many groups the session places (the length
// EstimateGroups expects).
func (s *Spatial) Groups() int { return len(s.tileIdx) }

// Reset drops the warm-start field; the next solve converges from the
// all-Vdd state. The simulator calls it at wave boundaries so every
// wave's solve sequence is deterministic no matter which shard ran
// before on the same session.
func (s *Spatial) Reset() { s.mg.Reset() }

// EstimateGroups implements DropEstimator: inject, solve, read back.
// Idle groups (act < 0) still draw their tile's static leakage but
// report drop 0, matching the analytic default's accounting.
func (s *Spatial) EstimateGroups(act, drop []float64) {
	if len(act) != len(s.tileIdx) {
		panic(fmt.Sprintf("irdrop: %d activities for %d placed groups", len(act), len(s.tileIdx)))
	}
	for i := range s.rtog {
		s.rtog[i] = 0
	}
	for g, a := range act {
		if a > 0 {
			if a > 1 {
				a = 1
			}
			s.rtog[s.tileIdx[g]] = a
		}
	}
	s.fp.CurrentMapInto(s.cur, s.act, s.rtog)
	v, _ := s.mg.SolveField(s.cur, spatialSolveTolV, spatialSolveMaxIter)
	grid := s.fp.Grid
	for g, a := range act {
		if a < 0 {
			drop[g] = 0
			continue
		}
		r := s.fp.GroupTiles[s.tileIdx[g]]
		worst := 0.0
		for y := r.Y0; y < r.Y1; y++ {
			row := y * grid.W
			for x := r.X0; x < r.X1; x++ {
				if d := grid.Vdd - v[row+x]; d > worst {
					worst = d
				}
			}
		}
		drop[g] = worst * 1000
	}
}
