package irdrop

import (
	"fmt"

	"aim/internal/pdn"
)

// Spatial-tier calibration constants, shared by the estimator, the
// simulator and the equivalence tests.
const (
	// SpatialCalibrationBandMV bounds how far a spatially-resolved
	// per-group drop may sit from the analytic Eq. 2 estimate of the
	// same activity on the calibrated die (DefaultFloorplan geometry +
	// DefaultActivity) under Eq. 2's own calibration condition —
	// groups driven at similar activity, the regime the runtime
	// simulator produces: edge tiles shed current into the die
	// boundary and resolve below the scalar model, centre tiles absorb
	// their neighbours' return current and resolve near it. The band
	// is what "the bank is a region of stable equivalent resistance"
	// (§4.1) abstracts away; TestSpatialWithinCalibrationBand pins it.
	// Strongly non-uniform activity (one hot group among idle
	// neighbours) can deviate further — that coupling is precisely the
	// information the spatial tier adds.
	SpatialCalibrationBandMV = 30.0

	// SpatialResidualNoiseFrac scales the Eq. 2 NoiseMV term while a
	// spatial estimator is in force: placement and neighbour-region
	// coupling — the bulk of what NoiseMV lumps together — are resolved
	// by the mesh solve, leaving only waveform-level variation.
	SpatialResidualNoiseFrac = 0.4

	// spatialSolveTolV / spatialSolveMaxIter bound each per-window mesh
	// solve. Warm-started from the previous window's field a V-cycle
	// count of 1-2 suffices; the first solve of a session converges
	// from cold within the iteration budget.
	spatialSolveTolV    = 1e-4
	spatialSolveMaxIter = 64

	// spatialIncrTolV is the per-cycle convergence tolerance of an
	// incremental session (SkipThreshold > 0). The V-cycle contracts
	// error by roughly an order of magnitude per cycle, so stopping at
	// a 1 mV last update leaves ~0.1 mV of true field error — an order
	// under the skip gate's own DefaultSpatialSkipMV budget and two
	// under the calibration band. The reference tolerance buys 10 µV
	// accuracy nothing downstream can observe at one to two extra
	// V-cycles per window; an armed session declines to pay for it.
	spatialIncrTolV = 1e-3

	// DefaultSpatialSkipMV is the calibrated opt-in value for the
	// window-skip gate (Spatial.SkipThreshold carries it in Rtog units
	// after division by the model's mV-per-Rtog sensitivity): a tenth
	// of the calibration band, so holding the previous field across a
	// sub-threshold window perturbs a group's drop by an order of
	// magnitude less than the spatial tier's own accuracy envelope. The
	// mesh is an M-matrix, so a bound on the per-tile injection change
	// rigorously bounds the drop change it can induce anywhere.
	DefaultSpatialSkipMV = SpatialCalibrationBandMV / 10
)

// SolveStats counts one estimator session's mesh-solve work. The
// incremental spatial tier turns most windows into skips; these
// counters are what makes that observable — and what surfaces a solver
// quietly saturating its iteration budget, which the pre-stats code
// discarded.
type SolveStats struct {
	// Solves counts EstimateGroups calls that ran at least one V-cycle.
	Solves int64
	// Skips counts calls answered from the held field: the injection
	// map moved less than SkipThreshold since the last solved window.
	Skips int64
	// VCycles is the total V-cycle count across Solves.
	VCycles int64
	// Saturated counts solves that exhausted the iteration budget
	// without converging — silent accuracy loss unless watched.
	Saturated int64
}

// Add accumulates o into s.
func (s *SolveStats) Add(o SolveStats) {
	s.Solves += o.Solves
	s.Skips += o.Skips
	s.VCycles += o.VCycles
	s.Saturated += o.Saturated
}

// Spatial is the spatially-resolved DropEstimator: each cycle-window's
// per-group activity becomes a die current-injection map, one
// warm-started multigrid solve yields the voltage field, and every
// group's drop is read back from its own floorplan tiles — so a
// group's drop depends on where it sits and what its neighbours are
// doing, the physics the analytic Model's NoiseMV term only
// approximates statistically.
//
// A Spatial owns its pdn.Multigrid session and is NOT safe for
// concurrent use; the simulator hands each wave shard its own and
// Resets it at wave boundaries so results are independent of worker
// count and execution order.
type Spatial struct {
	// SkipThreshold, in Rtog units, arms the window-skip gate: when no
	// tile's injection activity moved by this much or more since the
	// last solved map, EstimateGroups holds the previous field instead
	// of solving (superposition on the M-matrix mesh bounds the drop
	// drift by the threshold times the die's uniform-move sensitivity,
	// DynCoeffMV). The injection metric is the only gate — the solver's
	// pointwise residual is blind to exactly the smooth field error a
	// uniform activity drift induces, so it cannot be trusted to hold.
	// 0 — the default — is the reference behaviour: one solve per call,
	// bit-identical to the pre-incremental estimator.
	SkipThreshold float64

	fp      *pdn.Floorplan
	tileIdx []int // group → floorplan tile index
	act     pdn.ActivityCurrents
	mg      *pdn.Multigrid
	rtog    []float64 // per-tile activity buffer
	cur     []float64 // injection map buffer
	// solvedRtog/haveField are the dirty-state tracking between
	// windows: the per-tile activity of the last map actually solved
	// (not merely seen — comparing against the last seen map would let
	// sub-threshold drift accumulate unboundedly) and whether field
	// still answers it.
	solvedRtog []float64
	field      []float64 // last solved voltage field (aliases mg's cache)
	haveField  bool
	// solveMaxIter is spatialSolveMaxIter, overridable by tests that
	// need to force a saturated solve.
	solveMaxIter int
	stats        SolveStats
}

// NewSpatial builds a spatial estimator session over a floorplan.
// tileIdx maps each macro group to its floorplan tile (the mapping
// layer's Placement provides it); act supplies the calibrated current
// densities. The floorplan's own Solver field is ignored — the session
// keeps a private warm-started multigrid, so a shared geometry-only
// floorplan (pdn.FloorplanAt) may back many sessions.
func NewSpatial(fp *pdn.Floorplan, tileIdx []int, act pdn.ActivityCurrents) *Spatial {
	// One group per tile: two groups sharing a tile would silently
	// last-writer-win the injection value in EstimateGroups, making a
	// group's drop depend on slice order instead of physics.
	owner := make([]int, len(fp.GroupTiles))
	for i := range owner {
		owner[i] = -1
	}
	for g, ti := range tileIdx {
		if ti < 0 || ti >= len(fp.GroupTiles) {
			panic(fmt.Sprintf("irdrop: group %d placed on tile %d of %d", g, ti, len(fp.GroupTiles)))
		}
		if og := owner[ti]; og >= 0 {
			panic(fmt.Sprintf("irdrop: groups %d and %d both placed on tile %d", og, g, ti))
		}
		owner[ti] = g
	}
	return &Spatial{
		fp:           fp,
		tileIdx:      tileIdx,
		act:          act,
		mg:           pdn.NewMultigrid(fp.Grid),
		rtog:         make([]float64, len(fp.GroupTiles)),
		cur:          make([]float64, fp.Grid.W*fp.Grid.H),
		solvedRtog:   make([]float64, len(fp.GroupTiles)),
		solveMaxIter: spatialSolveMaxIter,
	}
}

// Groups returns how many groups the session places (the length
// EstimateGroups expects).
func (s *Spatial) Groups() int { return len(s.tileIdx) }

// Reset drops the warm-start field and the skip gate's dirty state;
// the next solve converges from the all-Vdd state. The simulator calls
// it at wave boundaries so every wave's solve sequence is
// deterministic no matter which shard ran before on the same session.
// The SolveStats counters survive — they account for the session, not
// a wave.
func (s *Spatial) Reset() {
	s.mg.Reset()
	s.haveField = false
}

// SetSolverWorkers bounds the mesh solver's checkerboard sweep fan-out
// over internal/runner: 0 means one worker per CPU, 1 forces serial
// sweeps. The checkerboard invariant makes the solved field
// bit-identical for any value — the knob exists so a simulator that
// already shards waves across the cores can keep its sessions' sweeps
// serial instead of oversubscribing, while a serial simulation lets
// its one session batch sweeps across the machine.
func (s *Spatial) SetSolverWorkers(n int) { s.mg.Workers = n }

// Stats returns the counters accumulated since construction or the
// last TakeStats.
func (s *Spatial) Stats() SolveStats { return s.stats }

// TakeStats returns the counters and zeroes them — the per-wave drain
// the simulator aggregates across shards.
func (s *Spatial) TakeStats() SolveStats {
	st := s.stats
	s.stats = SolveStats{}
	return st
}

// EstimateGroups implements DropEstimator: inject, solve, read back —
// incrementally when SkipThreshold arms the gate. Idle groups
// (act < 0) still draw their tile's static leakage but report drop 0,
// matching the analytic default's accounting.
func (s *Spatial) EstimateGroups(act, drop []float64) {
	if len(act) != len(s.tileIdx) {
		panic(fmt.Sprintf("irdrop: %d activities for %d placed groups", len(act), len(s.tileIdx)))
	}
	for i := range s.rtog {
		s.rtog[i] = 0
	}
	for g, a := range act {
		if a > 0 {
			if a > 1 {
				a = 1
			}
			s.rtog[s.tileIdx[g]] = a
		}
	}
	// Skip gate: against the last *solved* map, so sub-threshold drift
	// cannot accumulate across held windows. Strict <, so a threshold
	// of 0 never skips.
	if s.SkipThreshold > 0 && s.haveField {
		moved := 0.0
		for i, r := range s.rtog {
			d := r - s.solvedRtog[i]
			if d < 0 {
				d = -d
			}
			if d > moved {
				moved = d
			}
		}
		if moved < s.SkipThreshold {
			s.stats.Skips++
			s.readDrops(act, drop, s.field)
			return
		}
	}
	s.fp.CurrentMapInto(s.cur, s.act, s.rtog)
	tol := spatialSolveTolV
	if s.SkipThreshold > 0 {
		tol = spatialIncrTolV
	}
	// holdTol stays 0: the Jacobi residual gate is a pointwise measure,
	// and the smooth field error a uniform sub-threshold drift leaves
	// behind produces near-zero local residuals — a residual hold here
	// would re-anchor the skip gate without re-solving and let drop
	// error accumulate without bound. The injection gate above is the
	// sound one.
	v, cycles, converged := s.mg.SolveFieldDelta(s.cur, tol, s.solveMaxIter, 0)
	s.stats.Solves++
	s.stats.VCycles += int64(cycles)
	if !converged {
		s.stats.Saturated++
	}
	s.field = v
	s.haveField = true
	copy(s.solvedRtog, s.rtog)
	s.readDrops(act, drop, v)
}

// readDrops reads each group's worst drop back from a voltage field.
func (s *Spatial) readDrops(act, drop []float64, v []float64) {
	grid := s.fp.Grid
	for g, a := range act {
		if a < 0 {
			drop[g] = 0
			continue
		}
		r := s.fp.GroupTiles[s.tileIdx[g]]
		worst := 0.0
		for y := r.Y0; y < r.Y1; y++ {
			row := y * grid.W
			for x := r.X0; x < r.X1; x++ {
				if d := grid.Vdd - v[row+x]; d > worst {
					worst = d
				}
			}
		}
		drop[g] = worst * 1000
	}
}
