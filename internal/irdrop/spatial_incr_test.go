package irdrop

import (
	"testing"

	"aim/internal/pdn"
	"aim/internal/xrand"
)

// TestSpatialRejectsDuplicateTiles: two groups placed on one tile used
// to last-writer-win the injection value silently, making a group's
// drop depend on slice order. The constructor must refuse.
func TestSpatialRejectsDuplicateTiles(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate tile placement did not panic")
		}
	}()
	NewSpatial(pdn.FloorplanAt(1), []int{0, 3, 3}, pdn.DefaultActivity())
}

// TestSpatialMatchesUnconditionalSolve: at the default SkipThreshold of
// 0 a session must be bit-identical to the pre-incremental estimator —
// replicated here inline as one unconditional warm-started solve per
// window over the same floorplan.
func TestSpatialMatchesUnconditionalSolve(t *testing.T) {
	sp := defaultSpatial()
	fp := pdn.FloorplanAt(1)
	mg := pdn.NewMultigrid(fp.Grid)
	actCur := pdn.DefaultActivity()
	rtog := make([]float64, len(fp.GroupTiles))
	cur := make([]float64, fp.Grid.W*fp.Grid.H)

	rng := xrand.NewNamed(7, "spatial/incr-ref")
	act := make([]float64, 16)
	drop := make([]float64, 16)
	for win := 0; win < 6; win++ {
		for g := range act {
			act[g] = rng.Float64()
			if win > 2 && g%7 == 3 {
				act[g] = -1
			}
		}
		sp.EstimateGroups(act, drop)
		for i := range rtog {
			rtog[i] = 0
		}
		for g, a := range act {
			if a > 0 {
				if a > 1 {
					a = 1
				}
				rtog[g] = a
			}
		}
		fp.CurrentMapInto(cur, actCur, rtog)
		v, _ := mg.SolveField(cur, 1e-4, 64)
		for g, a := range act {
			want := 0.0
			if a >= 0 {
				r := fp.GroupTiles[g]
				for y := r.Y0; y < r.Y1; y++ {
					row := y * fp.Grid.W
					for x := r.X0; x < r.X1; x++ {
						if d := fp.Grid.Vdd - v[row+x]; d > want {
							want = d
						}
					}
				}
				want *= 1000
			}
			if drop[g] != want {
				t.Fatalf("window %d group %d: %v mV, reference %v mV", win, g, drop[g], want)
			}
		}
	}
	if st := sp.Stats(); st.Skips != 0 || st.Solves != 6 {
		t.Errorf("threshold 0 session skipped: %+v", st)
	}
}

// TestSpatialSkipStats: with the gate armed, an unchanged injection map
// answers from the held field (counted as a skip, drops identical) and
// a real move solves again.
func TestSpatialSkipStats(t *testing.T) {
	m := DPIMModel()
	sp := defaultSpatial()
	sp.SkipThreshold = DefaultSpatialSkipMV / m.DynCoeffMV
	act := make([]float64, 16)
	for g := range act {
		act[g] = 0.4
	}
	first := make([]float64, 16)
	held := make([]float64, 16)
	sp.EstimateGroups(act, first)
	if st := sp.Stats(); st.Solves != 1 || st.Skips != 0 || st.VCycles < 1 {
		t.Fatalf("first window: %+v, want exactly one solve", st)
	}
	for i := 0; i < 3; i++ {
		sp.EstimateGroups(act, held)
		for g := range held {
			if held[g] != first[g] {
				t.Fatalf("held window %d group %d: %v != solved %v", i, g, held[g], first[g])
			}
		}
	}
	if st := sp.Stats(); st.Solves != 1 || st.Skips != 3 {
		t.Fatalf("after 3 held windows: %+v, want 1 solve / 3 skips", st)
	}
	// A move past the threshold solves again.
	for g := range act {
		act[g] = 0.9
	}
	sp.EstimateGroups(act, held)
	if st := sp.Stats(); st.Solves != 2 {
		t.Fatalf("supra-threshold move did not solve: %+v", st)
	}
}

// TestSpatialSubThresholdDriftBounded: the gate compares against the
// last *solved* map, so a long run of individually sub-threshold steps
// in one direction cannot accumulate unbounded drop error behind held
// windows — every window's drops stay within the skip budget (plus
// solve tolerance) of a reference session that never skips.
func TestSpatialSubThresholdDriftBounded(t *testing.T) {
	m := DPIMModel()
	sp := defaultSpatial()
	sp.SkipThreshold = DefaultSpatialSkipMV / m.DynCoeffMV
	ref := defaultSpatial()
	act := make([]float64, 16)
	drop := make([]float64, 16)
	refDrop := make([]float64, 16)
	for g := range act {
		act[g] = 0.3
	}
	step := sp.SkipThreshold * 0.4 // well under the gate per window
	for i := 0; i < 20; i++ {
		sp.EstimateGroups(act, drop)
		ref.EstimateGroups(act, refDrop)
		for g := range drop {
			if d := drop[g] - refDrop[g]; d > DefaultSpatialSkipMV+1 || d < -(DefaultSpatialSkipMV+1) {
				t.Fatalf("window %d group %d drifted %.2f mV past the reference (budget %v)",
					i, g, d, DefaultSpatialSkipMV)
			}
		}
		for g := range act {
			act[g] += step
		}
	}
}

// TestSpatialSaturatedCounted: a solve that exhausts its iteration
// budget without converging increments Saturated.
func TestSpatialSaturatedCounted(t *testing.T) {
	sp := defaultSpatial()
	sp.solveMaxIter = 1
	act := make([]float64, 16)
	for g := range act {
		act[g] = 1
	}
	drop := make([]float64, 16)
	sp.EstimateGroups(act, drop)
	st := sp.Stats()
	if st.Saturated != 1 || st.Solves != 1 {
		t.Errorf("cold solve capped at 1 V-cycle: %+v, want it counted saturated", st)
	}
}

// TestSpatialTakeStatsDrains: TakeStats returns the counters and zeroes
// them; Reset does not (stats account for the session, not a wave).
func TestSpatialTakeStatsDrains(t *testing.T) {
	sp := defaultSpatial()
	act := make([]float64, 16)
	for g := range act {
		act[g] = 0.5
	}
	drop := make([]float64, 16)
	sp.EstimateGroups(act, drop)
	sp.Reset()
	if st := sp.Stats(); st.Solves != 1 {
		t.Fatalf("Reset dropped the stats: %+v", st)
	}
	if st := sp.TakeStats(); st.Solves != 1 {
		t.Fatalf("TakeStats returned %+v, want the accumulated solve", st)
	}
	if st := sp.Stats(); st != (SolveStats{}) {
		t.Fatalf("TakeStats did not drain: %+v", st)
	}
}

// TestSolveStatsAdd covers the accumulator the wave merger and the
// serving counters both use.
func TestSolveStatsAdd(t *testing.T) {
	a := SolveStats{Solves: 1, Skips: 2, VCycles: 3, Saturated: 4}
	a.Add(SolveStats{Solves: 10, Skips: 20, VCycles: 30, Saturated: 40})
	if a != (SolveStats{Solves: 11, Skips: 22, VCycles: 33, Saturated: 44}) {
		t.Errorf("Add = %+v", a)
	}
}

// benchSpatialActivity is a mid-range activity vector in the booster's
// operating band.
func benchSpatialActivity() []float64 {
	act := make([]float64, 16)
	for g := range act {
		act[g] = 0.4 + 0.02*float64(g%4)
	}
	return act
}

// BenchmarkSpatialEstimateCold is one window solved from the all-Vdd
// state — the first window of every wave.
func BenchmarkSpatialEstimateCold(b *testing.B) {
	sp := defaultSpatial()
	act := benchSpatialActivity()
	drop := make([]float64, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.Reset()
		sp.EstimateGroups(act, drop)
	}
}

// BenchmarkSpatialEstimateWarm alternates the injection map so every
// window solves, but off the previous field — the steady-state cost of
// the reference (threshold 0) estimator.
func BenchmarkSpatialEstimateWarm(b *testing.B) {
	sp := defaultSpatial()
	act := benchSpatialActivity()
	drop := make([]float64, 16)
	sp.EstimateGroups(act, drop)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lvl := 0.3 + 0.4*float64(i%2)
		for g := range act {
			act[g] = lvl
		}
		sp.EstimateGroups(act, drop)
	}
}

// BenchmarkSpatialEstimateSkip holds the injection map with the
// calibrated gate armed: every timed window is a skip — the cost floor
// the incremental tier converges to on quiet workloads.
func BenchmarkSpatialEstimateSkip(b *testing.B) {
	sp := defaultSpatial()
	sp.SkipThreshold = DefaultSpatialSkipMV / DPIMModel().DynCoeffMV
	act := benchSpatialActivity()
	drop := make([]float64, 16)
	sp.EstimateGroups(act, drop)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.EstimateGroups(act, drop)
	}
}
