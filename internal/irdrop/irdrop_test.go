package irdrop

import (
	"math"
	"testing"

	"aim/internal/pdn"
	"aim/internal/xrand"
)

func TestDPIMCalibration(t *testing.T) {
	m := DPIMModel()
	if got := m.SignoffWorstMV(); got != 140 {
		t.Errorf("sign-off worst = %v mV, want 140 (paper §6.6)", got)
	}
	// AIM's achieved range: 58.1–43.2 mV ↔ 58.5–69.2% mitigation.
	// Those correspond to effective Rtog around 0.37 and 0.25.
	if got := m.Estimate(0.37); math.Abs(got-58.1) > 3 {
		t.Errorf("Estimate(0.37) = %v mV, want ~58.1", got)
	}
	if got := m.Estimate(0.255); math.Abs(got-43.2) > 3 {
		t.Errorf("Estimate(0.255) = %v mV, want ~43.2", got)
	}
	if mit := m.Mitigation(0.255); mit < 0.65 || mit > 0.72 {
		t.Errorf("mitigation = %v, want ~0.692", mit)
	}
}

func TestAPIMMitigationNearHalf(t *testing.T) {
	m := APIMModel()
	// §7: AIM achieves ~50% mitigation on APIM at the same optimized
	// activity levels.
	mit := m.Mitigation(0.28)
	if mit < 0.42 || mit > 0.58 {
		t.Errorf("APIM mitigation = %v, want ~0.50", mit)
	}
	if m.NoiseMV >= DPIMModel().NoiseMV {
		t.Error("APIM noise should be below DPIM (r=0.998 vs 0.977)")
	}
}

func TestEstimateMonotone(t *testing.T) {
	m := DPIMModel()
	prev := -1.0
	for r := 0.0; r <= 1.0; r += 0.05 {
		v := m.Estimate(r)
		if v <= prev {
			t.Fatalf("estimate not monotone at %v", r)
		}
		prev = v
	}
}

// TestEstimateCountsMatchesEstimate: the packed pipeline's integer
// entry point is the same float as dividing first — the equivalence
// the word-wise Rtog engine relies on.
func TestEstimateCountsMatchesEstimate(t *testing.T) {
	m := DPIMModel()
	for _, c := range []struct{ ones, total int }{{0, 1024}, {317, 1024}, {1024, 1024}, {7, 8}} {
		got := m.EstimateCounts(c.ones, c.total)
		want := m.Estimate(float64(c.ones) / float64(c.total))
		if got != want {
			t.Errorf("EstimateCounts(%d,%d) = %v, want %v", c.ones, c.total, got, want)
		}
	}
}

func TestEstimateCountsPanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DPIMModel().EstimateCounts(1, 0)
}

func TestEstimatePanicsOutsideRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DPIMModel().Estimate(1.2)
}

func TestEstimateNoisyNonNegativeAndCentered(t *testing.T) {
	m := DPIMModel()
	rng := xrand.New(1)
	sum := 0.0
	n := 20000
	for i := 0; i < n; i++ {
		v := m.EstimateNoisy(0.4, rng)
		if v < 0 {
			t.Fatal("negative drop")
		}
		sum += v
	}
	mean := sum / float64(n)
	if math.Abs(mean-m.Estimate(0.4)) > 0.5 {
		t.Errorf("noisy mean %v far from %v", mean, m.Estimate(0.4))
	}
}

// The linear Eq. 2 model must agree with the PDN mesh solver it was
// calibrated against, across the activity range (within a few mV).
func TestModelMatchesPDN(t *testing.T) {
	m := DPIMModel()
	fp := pdn.DefaultFloorplan()
	act := pdn.DefaultActivity()
	for _, r := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		rt := make([]float64, 16)
		for i := range rt {
			rt[i] = r
		}
		_, worst := fp.SolveActivity(act, rt)
		lin := m.Estimate(r)
		if math.Abs(worst*1000-lin) > 14 {
			t.Errorf("Rtog=%v: PDN %v mV vs linear %v mV", r, worst*1000, lin)
		}
	}
}

func TestMonitorThreshold(t *testing.T) {
	mon := NewMonitor(750, 80)
	if mon.Sample(60) {
		t.Error("drop below tolerance should not fail")
	}
	if !mon.Sample(95) {
		t.Error("drop above tolerance must raise IRFailure")
	}
	if !mon.Failure() {
		t.Error("failure should latch")
	}
	mon.SetToleratedDrop(120)
	if mon.Sample(95) {
		t.Error("after re-arming at 120 mV, 95 mV should pass")
	}
}

func TestMonitorVCOBehaviour(t *testing.T) {
	mon := NewMonitor(750, 80)
	fNom := mon.OscFreqMHz(750)
	fDroop := mon.OscFreqMHz(650)
	if fDroop >= fNom {
		t.Error("VCO frequency must fall with supply voltage")
	}
	if mon.OscFreqMHz(-1e6) != 0 {
		t.Error("VCO frequency must clamp at zero")
	}
}

func TestMonitorOverheadWithinPaperBounds(t *testing.T) {
	area, power := MonitorOverhead(16)
	if area <= 0 || area > 0.001 {
		t.Errorf("monitor area fraction = %v, want (0, 0.1%%]", area)
	}
	if power <= 0 || power > 0.005 {
		t.Errorf("monitor power fraction = %v, want (0, 0.5%%]", power)
	}
}
