// Package irdrop provides the architecture-level IR-drop model of the
// paper's Eq. 2 — static drop plus a dynamic term linear in Rtog — and
// the on-die voltage monitoring hardware (the VCO-based IR monitor of
// §5.5.2) that raises IRFailure signals for IR-Booster.
//
// The linear model is the fast path used inside the runtime simulator;
// its coefficients are calibrated against the internal/pdn mesh solver
// so the sign-off worst case matches the chip's reported 140 mV at
// Vdd = 0.75 V, and TestModelMatchesPDN keeps the two in agreement.
package irdrop

import (
	"aim/internal/xrand"
)

// Model evaluates Eq. 2 with the bank treated as a region of stable
// equivalent resistance (§4.1):
//
//	IR-drop ≈ ΔVstatic + (k_sc·I_sc·R_sc + k_sw·I_sw·R_sw)·Rtog
//
// collapsing the bracketed dynamic product into DynCoeffMV.
type Model struct {
	// StaticMV is ΔVstatic: the leakage-driven drop, in millivolts.
	StaticMV float64
	// DynCoeffMV is the dynamic drop at Rtog = 100%, in millivolts.
	DynCoeffMV float64
	// NoiseMV is the cycle-to-cycle drop variation around the linear
	// model: placement, neighbouring-region coupling and waveform
	// effects the architecture-level view abstracts away.
	NoiseMV float64
}

// DPIMModel is calibrated for the 7nm 256-TOPS digital PIM chip: the
// sign-off worst case (Rtog=1) sits at 140 mV. Its noise term yields
// the paper's Rtog↔IR-drop correlation of r ≈ 0.977 (Fig. 4).
func DPIMModel() Model {
	return Model{StaticMV: 10, DynCoeffMV: 130, NoiseMV: 2.5}
}

// APIMModel is calibrated for the 28nm 128×32 analog PIM macro of §7:
// a larger static share makes its relative mitigation saturate near
// 50%, and its tighter analog current behaviour gives r ≈ 0.998.
func APIMModel() Model {
	return Model{StaticMV: 42, DynCoeffMV: 110, NoiseMV: 0.8}
}

// DropEstimator is the pluggable drop-estimation layer between the
// simulator's activity engines and its monitor/booster machinery: one
// cycle's per-group activity in, per-group deterministic drops out.
//
// act[g] is group g's worst Rtog in [0,1], or negative when the group
// is idle this cycle; drop[g] receives the estimated drop in
// millivolts (idle groups get 0). Implementations may carry state
// between cycles — the spatial estimator keeps a warm-started PDN
// solver session — and are therefore NOT safe for concurrent use:
// give each simulation shard its own instance.
type DropEstimator interface {
	EstimateGroups(act, drop []float64)
}

// EstimateGroups implements DropEstimator: the analytic Eq. 2 model
// applied to every group independently — each bank is a region of
// stable equivalent resistance, blind to its neighbours. This is the
// simulator's default tier, bit-identical to the historical per-group
// Estimate calls it replaces.
func (m Model) EstimateGroups(act, drop []float64) {
	for g, a := range act {
		if a < 0 {
			drop[g] = 0
			continue
		}
		drop[g] = m.Estimate(a)
	}
}

// Estimate returns the expected IR-drop in millivolts at the given
// Rtog (or HR upper bound) in [0,1].
func (m Model) Estimate(rtog float64) float64 {
	if rtog < 0 || rtog > 1 {
		panic("irdrop: Rtog outside [0,1]")
	}
	return m.StaticMV + m.DynCoeffMV*rtog
}

// EstimateCounts evaluates Eq. 2 straight from the packed Rtog
// engine's integer popcount accounting: ones toggled-AND-stored weight
// bits out of total stored bits. It is the word-wise pipeline's entry
// into the drop model — the division happens here, once, instead of in
// every per-cycle caller.
func (m Model) EstimateCounts(ones, total int) float64 {
	if total <= 0 {
		panic("irdrop: non-positive bit count")
	}
	return m.Estimate(float64(ones) / float64(total))
}

// EstimateNoisy adds the cycle-level variation term.
func (m Model) EstimateNoisy(rtog float64, rng *xrand.RNG) float64 {
	v := m.Estimate(rtog) + rng.Normal(0, m.NoiseMV)
	if v < 0 {
		v = 0
	}
	return v
}

// SignoffWorstMV is the worst-case drop the chip is signed off for.
func (m Model) SignoffWorstMV() float64 { return m.Estimate(1) }

// Mitigation returns the relative IR-drop reduction of running at
// `rtog` instead of the sign-off worst case — the headline metric of
// §6.6.
func (m Model) Mitigation(rtog float64) float64 {
	return 1 - m.Estimate(rtog)/m.SignoffWorstMV()
}
