package pdn

import "fmt"

// Floorplan is the layout of the paper's 7nm 256-TOPS PIM chip
// (Fig. 16): two RISC-V cores and on-chip memory along one edge, and a
// 4×4 array of macro-group tiles occupying the rest of the die.
type Floorplan struct {
	Grid   *Grid
	Cores  Rect
	Memory Rect
	// GroupTiles holds one region per macro group, row-major.
	GroupTiles []Rect
}

// ActivityCurrents are the per-component current densities (amps per
// cell) used to build injection maps.
type ActivityCurrents struct {
	// CoreIdle and MemIdle are the quasi-static draws of the RISC-V
	// cores and on-chip memory.
	CoreIdle, MemIdle float64
	// MacroStatic is a group tile's leakage draw.
	MacroStatic float64
	// MacroDynamicAtFull is the additional draw of a group tile running
	// at Rtog = 100%; actual dynamic draw scales linearly with Rtog
	// (paper Eq. 2).
	MacroDynamicAtFull float64
}

// DefaultActivity is calibrated together with DefaultFloorplan so the
// sign-off worst case (all groups at Rtog=1) produces a ~140 mV worst
// in-macro IR-drop at Vdd=0.75 V — the figure the paper reports for
// its chip (§1, §6.6).
func DefaultActivity() ActivityCurrents {
	return ActivityCurrents{CoreIdle: 0.004, MemIdle: 0.003, MacroStatic: 0.006, MacroDynamicAtFull: 0.058}
}

// DefaultFloorplan builds the 64×64-cell die: a 64×12 top strip holding
// cores (left half) and memory (right half), and a 4×4 array of 13×13
// group tiles below.
func DefaultFloorplan() *Floorplan {
	g := NewGrid(64, 64, 0.75, 18.0, 45.0, 8)
	fp := &Floorplan{
		Grid:   g,
		Cores:  Rect{X0: 2, Y0: 2, X1: 30, Y1: 10},
		Memory: Rect{X0: 34, Y0: 2, X1: 62, Y1: 10},
	}
	for gy := 0; gy < 4; gy++ {
		for gx := 0; gx < 4; gx++ {
			x0 := 2 + gx*15
			y0 := 13 + gy*12
			fp.GroupTiles = append(fp.GroupTiles, Rect{X0: x0, Y0: y0, X1: x0 + 13, Y1: y0 + 10})
		}
	}
	return fp
}

// CurrentMap builds the injection map for the given per-group Rtog
// activities (length = len(GroupTiles); values in [0,1]).
func (fp *Floorplan) CurrentMap(act ActivityCurrents, groupRtog []float64) []float64 {
	if len(groupRtog) != len(fp.GroupTiles) {
		panic(fmt.Sprintf("pdn: %d group activities for %d tiles", len(groupRtog), len(fp.GroupTiles)))
	}
	cur := make([]float64, fp.Grid.W*fp.Grid.H)
	fill := func(r Rect, amps float64) {
		perCell := amps
		for y := r.Y0; y < r.Y1; y++ {
			for x := r.X0; x < r.X1; x++ {
				cur[y*fp.Grid.W+x] += perCell
			}
		}
	}
	fill(fp.Cores, act.CoreIdle)
	fill(fp.Memory, act.MemIdle)
	for i, r := range fp.GroupTiles {
		rt := groupRtog[i]
		if rt < 0 || rt > 1 {
			panic(fmt.Sprintf("pdn: group %d Rtog %v outside [0,1]", i, rt))
		}
		fill(r, act.MacroStatic+act.MacroDynamicAtFull*rt)
	}
	return cur
}

// SolveActivity is the convenience path: build the current map, solve,
// and return the drop map plus the worst drop over all macro tiles.
func (fp *Floorplan) SolveActivity(act ActivityCurrents, groupRtog []float64) (drop []float64, worstMacroDrop float64) {
	cur := fp.CurrentMap(act, groupRtog)
	v, _ := fp.Grid.Solve(cur, 1e-6, 4000)
	drop = fp.Grid.DropMap(v)
	for _, r := range fp.GroupTiles {
		if d := MaxDropIn(drop, fp.Grid.W, r); d > worstMacroDrop {
			worstMacroDrop = d
		}
	}
	return drop, worstMacroDrop
}
