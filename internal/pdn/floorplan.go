package pdn

import (
	"fmt"
	"sync/atomic"
)

// Floorplan is the layout of the paper's 7nm 256-TOPS PIM chip
// (Fig. 16): two RISC-V cores and on-chip memory along one edge, and a
// 4×4 array of macro-group tiles occupying the rest of the die.
// ScaledFloorplan generalizes the same layout to production-scale dies.
type Floorplan struct {
	Grid   *Grid
	Cores  Rect
	Memory Rect
	// GroupTiles holds one region per macro group, row-major.
	GroupTiles []Rect
	// Solver, when non-nil, performs SolveActivity's mesh solves — a
	// warm-started Multigrid on scaled floorplans. nil falls back to
	// the retained Gauss-Seidel reference, which keeps the default
	// 64×64 die's rendered output byte-identical to the historical
	// solver. Solvers carry state; a Floorplan with a Solver is not
	// safe for concurrent SolveActivity calls.
	Solver Solver

	// solving guards the Solver session: racing SolveActivity calls
	// would silently corrupt the warm-start field, so the misuse is
	// turned into a deterministic panic instead (see SolveActivity).
	solving atomic.Bool
}

// ActivityCurrents are the per-component current densities (amps per
// cell) used to build injection maps.
type ActivityCurrents struct {
	// CoreIdle and MemIdle are the quasi-static draws of the RISC-V
	// cores and on-chip memory.
	CoreIdle, MemIdle float64
	// MacroStatic is a group tile's leakage draw.
	MacroStatic float64
	// MacroDynamicAtFull is the additional draw of a group tile running
	// at Rtog = 100%; actual dynamic draw scales linearly with Rtog
	// (paper Eq. 2).
	MacroDynamicAtFull float64
}

// DefaultActivity is calibrated together with DefaultFloorplan so the
// sign-off worst case (all groups at Rtog=1) produces a ~140 mV worst
// in-macro IR-drop at Vdd=0.75 V — the figure the paper reports for
// its chip (§1, §6.6).
func DefaultActivity() ActivityCurrents {
	return ActivityCurrents{CoreIdle: 0.004, MemIdle: 0.003, MacroStatic: 0.006, MacroDynamicAtFull: 0.058}
}

// DefaultFloorplan builds the 64×64-cell die: a 64×12 top strip holding
// cores (left half) and memory (right half), and a 4×4 array of 13×13
// group tiles below. It solves through the Gauss-Seidel reference, so
// its rendered maps are byte-stable across solver generations; use
// ScaledFloorplan for the multigrid production path.
func DefaultFloorplan() *Floorplan {
	return floorplanGeometry(1)
}

// ScaledFloorplan builds a production-scale die: the default layout
// scaled by factor f per edge — a 64f×64f-cell grid, an f-times-larger
// core/memory strip, a 4f×4f array of group tiles, and the same 8-cell
// bump pitch (so the bump array grows with the die, as flip-chip
// arrays do). ScaledFloorplan(8) is the 512×512 sign-off scenario.
// The returned floorplan solves through a warm-started Multigrid;
// Gauss-Seidel at these scales needs more sweeps than its iteration
// budget allows. ScaledFloorplan(1) has DefaultFloorplan's geometry
// but the production solver.
func ScaledFloorplan(f int) *Floorplan {
	fp := FloorplanAt(f)
	fp.Solver = NewMultigrid(fp.Grid)
	return fp
}

// FloorplanAt returns the floorplan geometry at scale f with no
// attached Solver — the layout source for callers that bring their own
// solver session (the simulator's per-shard spatial drop estimators).
// FloorplanAt(1) is DefaultFloorplan's geometry.
func FloorplanAt(f int) *Floorplan {
	if f < 1 {
		panic(fmt.Sprintf("pdn: non-positive floorplan scale %d", f))
	}
	return floorplanGeometry(f)
}

// floorplanGeometry lays out the scaled die. At f=1 every coordinate
// matches the historical DefaultFloorplan exactly.
func floorplanGeometry(f int) *Floorplan {
	g := NewGrid(64*f, 64*f, 0.75, 18.0, 45.0, 8)
	stripY1 := 2 + 8*f
	fp := &Floorplan{
		Grid:   g,
		Cores:  Rect{X0: 2, Y0: 2, X1: 2 + 28*f, Y1: stripY1},
		Memory: Rect{X0: 64*f - 2 - 28*f, Y0: 2, X1: 64*f - 2, Y1: stripY1},
	}
	for gy := 0; gy < 4*f; gy++ {
		for gx := 0; gx < 4*f; gx++ {
			x0 := 2 + gx*15
			y0 := stripY1 + 3 + gy*12
			fp.GroupTiles = append(fp.GroupTiles, Rect{X0: x0, Y0: y0, X1: x0 + 13, Y1: y0 + 10})
		}
	}
	return fp
}

// CurrentMap builds the injection map for the given per-group Rtog
// activities (length = len(GroupTiles); values in [0,1]).
func (fp *Floorplan) CurrentMap(act ActivityCurrents, groupRtog []float64) []float64 {
	cur := make([]float64, fp.Grid.W*fp.Grid.H)
	fp.CurrentMapInto(cur, act, groupRtog)
	return cur
}

// CurrentMapInto is CurrentMap into a caller-owned buffer of length
// W*H — the per-cycle spatial drop estimators rebuild the injection
// map thousands of times per simulated run, so the hot path must not
// allocate one.
func (fp *Floorplan) CurrentMapInto(cur []float64, act ActivityCurrents, groupRtog []float64) {
	if len(groupRtog) != len(fp.GroupTiles) {
		panic(fmt.Sprintf("pdn: %d group activities for %d tiles", len(groupRtog), len(fp.GroupTiles)))
	}
	if len(cur) != fp.Grid.W*fp.Grid.H {
		panic(fmt.Sprintf("pdn: current buffer size %d != %d", len(cur), fp.Grid.W*fp.Grid.H))
	}
	for i := range cur {
		cur[i] = 0
	}
	fill := func(r Rect, amps float64) {
		perCell := amps
		for y := r.Y0; y < r.Y1; y++ {
			for x := r.X0; x < r.X1; x++ {
				cur[y*fp.Grid.W+x] += perCell
			}
		}
	}
	fill(fp.Cores, act.CoreIdle)
	fill(fp.Memory, act.MemIdle)
	for i, r := range fp.GroupTiles {
		rt := groupRtog[i]
		if rt < 0 || rt > 1 {
			panic(fmt.Sprintf("pdn: group %d Rtog %v outside [0,1]", i, rt))
		}
		fill(r, act.MacroStatic+act.MacroDynamicAtFull*rt)
	}
}

// SolveActivity is the convenience path: build the current map, solve,
// and return the drop map plus the worst drop over all macro tiles.
// Successive calls on a Solver-equipped floorplan warm-start from the
// previous voltage field — the repeated-solve pattern of per-group
// Rtog sweeps and V-f calibration.
//
// A Floorplan with a Solver is a stateful session and must not be
// shared across goroutines: racing calls would interleave warm-start
// reads and writes and corrupt the field silently. The session guard
// turns that misuse into a panic. The Solver-less reference path
// builds a fresh relaxation per call and stays safe to share.
func (fp *Floorplan) SolveActivity(act ActivityCurrents, groupRtog []float64) (drop []float64, worstMacroDrop float64) {
	cur := fp.CurrentMap(act, groupRtog)
	var v []float64
	if fp.Solver != nil {
		if !fp.solving.CompareAndSwap(false, true) {
			panic("pdn: concurrent SolveActivity on a Floorplan with a Solver session (give each goroutine its own Floorplan)")
		}
		defer fp.solving.Store(false)
		v, _ = fp.Solver.Solve(cur, 1e-6, 4000)
	} else {
		v, _ = fp.Grid.Solve(cur, 1e-6, 4000)
	}
	drop = fp.Grid.DropMap(v)
	for _, r := range fp.GroupTiles {
		if d := MaxDropIn(drop, fp.Grid.W, r); d > worstMacroDrop {
			worstMacroDrop = d
		}
	}
	return drop, worstMacroDrop
}
