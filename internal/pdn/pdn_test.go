package pdn

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"aim/internal/xrand"
)

func TestGridConstruction(t *testing.T) {
	g := NewGrid(16, 16, 0.75, 10, 50, 4)
	if g.PadCount() != 16 {
		t.Errorf("pad count = %d, want 16 (4x4 array)", g.PadCount())
	}
}

func TestGridPanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    func()
	}{
		{"zero width", func() { NewGrid(0, 4, 0.75, 1, 1, 2) }},
		{"zero pitch", func() { NewGrid(4, 4, 0.75, 1, 1, 0) }},
		{"zero mesh conductance", func() { NewGrid(4, 4, 0.75, 0, 1, 2) }},
		{"negative pad conductance", func() { NewGrid(4, 4, 0.75, 1, -1, 2) }},
		// A pitch wider than both die edges places no bumps; the mesh
		// would have no supply connection and every solve would float.
		{"pitch beyond die", func() { NewGrid(4, 4, 0.75, 1, 1, 10) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.f()
		}()
	}
}

func TestMinOfEmptyTraceIsNaN(t *testing.T) {
	if v := MinOf(nil); !math.IsNaN(v) {
		t.Errorf("MinOf(nil) = %v, want the NaN sentinel", v)
	}
	if v := MinOf([]float64{}); !math.IsNaN(v) {
		t.Errorf("MinOf(empty) = %v, want the NaN sentinel", v)
	}
}

func TestSolveZeroCurrentGivesVdd(t *testing.T) {
	g := NewGrid(8, 8, 0.75, 10, 50, 4)
	v, _ := g.Solve(make([]float64, 64), 1e-9, 1000)
	for i, x := range v {
		if math.Abs(x-0.75) > 1e-6 {
			t.Fatalf("cell %d voltage %v, want Vdd", i, x)
		}
	}
}

func TestSolveVoltageNeverExceedsVdd(t *testing.T) {
	g := NewGrid(12, 12, 0.75, 10, 50, 4)
	rng := xrand.New(1)
	cur := make([]float64, 144)
	for i := range cur {
		cur[i] = rng.Float64() * 0.01
	}
	v, _ := g.Solve(cur, 1e-8, 3000)
	for i, x := range v {
		if x > 0.75+1e-9 {
			t.Fatalf("cell %d voltage %v above Vdd", i, x)
		}
		if x < 0 {
			t.Fatalf("cell %d negative voltage %v", i, x)
		}
	}
}

// DESIGN.md invariant 7: drop is monotone in injected current.
func TestSolveMonotoneInCurrentProperty(t *testing.T) {
	g := NewGrid(10, 10, 0.75, 10, 50, 4)
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		cur := make([]float64, 100)
		cur2 := make([]float64, 100)
		for i := range cur {
			cur[i] = rng.Float64() * 0.005
			cur2[i] = cur[i] + rng.Float64()*0.005
		}
		v1, _ := g.Solve(cur, 1e-8, 3000)
		v2, _ := g.Solve(cur2, 1e-8, 3000)
		for i := range v1 {
			if v2[i] > v1[i]+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestSolveConverges(t *testing.T) {
	g := NewGrid(16, 16, 0.75, 10, 50, 4)
	cur := make([]float64, 256)
	for i := range cur {
		cur[i] = 0.002
	}
	_, iters := g.Solve(cur, 1e-7, 5000)
	if iters >= 5000 {
		t.Errorf("solver did not converge in %d iterations", iters)
	}
}

func TestDropNearPadsSmaller(t *testing.T) {
	g := NewGrid(17, 17, 0.75, 10, 80, 16) // single pad at (8,8)
	cur := make([]float64, 17*17)
	for i := range cur {
		cur[i] = 0.001
	}
	v, _ := g.Solve(cur, 1e-9, 8000)
	drop := g.DropMap(v)
	center := drop[8*17+8]
	corner := drop[0]
	if center >= corner {
		t.Errorf("drop at pad (%v) should be below drop at far corner (%v)", center, corner)
	}
}

func TestDefaultFloorplanGeometry(t *testing.T) {
	fp := DefaultFloorplan()
	if len(fp.GroupTiles) != 16 {
		t.Fatalf("group tiles = %d, want 16", len(fp.GroupTiles))
	}
	for i, r := range fp.GroupTiles {
		if r.X1 > fp.Grid.W || r.Y1 > fp.Grid.H {
			t.Errorf("tile %d out of die: %+v", i, r)
		}
		if r.Cells() <= 0 {
			t.Errorf("tile %d empty", i)
		}
		if fp.Cores.Contains(r.X0, r.Y0) {
			t.Errorf("tile %d overlaps cores", i)
		}
	}
}

func TestSignoffWorstCaseNear140mV(t *testing.T) {
	// Calibration check: all groups at Rtog=1 → worst in-macro drop
	// ~140 mV (§6.6); macros must be the hotspots, not core/memory.
	fp := DefaultFloorplan()
	act := DefaultActivity()
	rt := make([]float64, 16)
	for i := range rt {
		rt[i] = 1.0
	}
	drop, worst := fp.SolveActivity(act, rt)
	if worst < 0.120 || worst > 0.160 {
		t.Errorf("sign-off worst macro drop = %.1f mV, want ~140 mV", worst*1000)
	}
	coreDrop := MaxDropIn(drop, fp.Grid.W, fp.Cores)
	if coreDrop >= worst {
		t.Errorf("core drop %v should be below macro worst %v (Fig. 16)", coreDrop, worst)
	}
}

func TestLowActivityShrinksDrop(t *testing.T) {
	fp := DefaultFloorplan()
	act := DefaultActivity()
	high := make([]float64, 16)
	low := make([]float64, 16)
	for i := range high {
		high[i] = 1.0
		low[i] = 0.3
	}
	_, worstHigh := fp.SolveActivity(act, high)
	_, worstLow := fp.SolveActivity(act, low)
	if worstLow >= worstHigh {
		t.Fatalf("drop should fall with activity: %v vs %v", worstLow, worstHigh)
	}
	// Mitigation at Rtog 0.3 should be in the paper's 50-70% band.
	mit := 1 - worstLow/worstHigh
	if mit < 0.35 || mit > 0.80 {
		t.Errorf("mitigation at Rtog=0.3 is %.1f%%, want paper-shaped", mit*100)
	}
}

func TestCurrentMapPanics(t *testing.T) {
	fp := DefaultFloorplan()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong activity length")
		}
	}()
	fp.CurrentMap(DefaultActivity(), []float64{1})
}

func TestCurrentMapRejectsBadRtog(t *testing.T) {
	fp := DefaultFloorplan()
	rt := make([]float64, 16)
	rt[3] = 1.5
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Rtog > 1")
		}
	}()
	fp.CurrentMap(DefaultActivity(), rt)
}

func TestRegionHelpers(t *testing.T) {
	r := Rect{X0: 1, Y0: 1, X1: 3, Y1: 4}
	if r.Cells() != 6 {
		t.Errorf("cells = %d", r.Cells())
	}
	if !r.Contains(1, 3) || r.Contains(3, 3) {
		t.Error("contains wrong")
	}
}

func TestRenderASCII(t *testing.T) {
	drop := []float64{0, 0.05, 0.10, 0.14}
	s := RenderASCII(drop, 2, 0, 0.14)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 2 || len(lines[0]) != 2 {
		t.Fatalf("render shape wrong: %q", s)
	}
	if lines[0][0] != ' ' || lines[1][1] != '@' {
		t.Errorf("shading wrong: %q", s)
	}
}

func TestRenderCSV(t *testing.T) {
	s := RenderCSV([]float64{0.001, 0.002, 0.003, 0.004}, 2)
	if !strings.Contains(s, "1.00,2.00") || !strings.Contains(s, "3.00,4.00") {
		t.Errorf("csv wrong: %q", s)
	}
}
