// Package pdn models the chip's power delivery network as a resistive
// mesh and solves its voltage map under a given current-injection map.
//
// This is the repository's substitute for the commercial post-layout
// IR-drop tools (RedHawk) the paper uses: every floorplan cell connects
// to its four neighbours through mesh resistance and, at bump sites, to
// the ideal supply through a pad resistance; cells draw the current the
// activity model assigns them. Solving the mesh yields the steady-state
// voltage map, from which layout heatmaps (paper Fig. 16) and
// per-region IR-drop numbers are derived.
//
// Two solvers share one precomputed stencil kernel (per-cell
// conductance sums instead of branchy neighbour checks): the retained
// Gauss-Seidel reference (Grid.Solve — bit-identical to the historical
// loop, and the byte-stable default behind Fig. 16 / cmd/irmap), and
// the production Multigrid solver — a geometric V-cycle with red-black
// checkerboard-parallel smoothing and warm-start caching that solves
// production-scale floorplans (ScaledFloorplan, up to 512×512 and
// beyond) orders of magnitude faster than relaxation alone.
package pdn

import (
	"fmt"
	"strconv"
	"sync"
)

// Grid is a W×H resistive mesh. The geometry fields must not be
// mutated after the first solve: solvers cache the precomputed stencil
// kernel on the grid.
type Grid struct {
	W, H int
	// Vdd is the ideal supply voltage (volts).
	Vdd float64
	// Gmesh is the conductance between neighbouring cells (1/ohm).
	Gmesh float64
	// Gpad is the conductance from a bump cell to the ideal supply.
	Gpad float64
	// pads marks bump locations.
	pads []bool

	stOnce sync.Once
	st     *stencil
}

// NewGrid builds a grid with a regular bump array every `pitch` cells
// (offset pitch/2), the standard flip-chip pattern. It panics when the
// dimensions, conductances or pitch are non-positive, and when the
// pitch is so large that no bump lands on the die — a padless mesh has
// no supply connection, so every solve would silently float.
func NewGrid(w, h int, vdd, gmesh, gpad float64, pitch int) *Grid {
	if w <= 0 || h <= 0 {
		panic("pdn: non-positive grid")
	}
	if pitch <= 0 {
		panic("pdn: non-positive bump pitch")
	}
	if gmesh <= 0 || gpad <= 0 {
		panic("pdn: non-positive conductance")
	}
	g := &Grid{W: w, H: h, Vdd: vdd, Gmesh: gmesh, Gpad: gpad, pads: make([]bool, w*h)}
	n := 0
	for y := pitch / 2; y < h; y += pitch {
		for x := pitch / 2; x < w; x += pitch {
			g.pads[y*w+x] = true
			n++
		}
	}
	if n == 0 {
		panic(fmt.Sprintf("pdn: bump pitch %d places no pads on a %dx%d die", pitch, w, h))
	}
	return g
}

// stencil lazily builds the shared solver kernel.
func (g *Grid) stencil() *stencil {
	g.stOnce.Do(func() { g.st = newStencil(g) })
	return g.st
}

// PadCount returns the number of bump sites.
func (g *Grid) PadCount() int {
	n := 0
	for _, p := range g.pads {
		if p {
			n++
		}
	}
	return n
}

// Solve computes the steady-state voltage at every cell for the given
// per-cell current draw (amps, length W*H), by Gauss-Seidel relaxation
// to the given tolerance (volts). It returns the voltage map and the
// number of sweeps used. This is the retained reference path — its
// iterates are bit-identical to the historical solver; use a
// Multigrid for large grids or repeated solves.
func (g *Grid) Solve(current []float64, tol float64, maxIter int) ([]float64, int) {
	return NewGaussSeidel(g).Solve(current, tol, maxIter)
}

// DropMap converts a voltage map into IR-drop (volts below Vdd).
func (g *Grid) DropMap(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = g.Vdd - x
	}
	return out
}

// MaxDrop returns the worst IR-drop in the map.
func MaxDrop(drop []float64) float64 {
	m := 0.0
	for _, d := range drop {
		if d > m {
			m = d
		}
	}
	return m
}

// MeanDropIn averages the drop over the cells a region covers.
func MeanDropIn(drop []float64, w int, r Rect) float64 {
	sum, n := 0.0, 0
	for y := r.Y0; y < r.Y1; y++ {
		for x := r.X0; x < r.X1; x++ {
			sum += drop[y*w+x]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MaxDropIn returns the worst drop within a region.
func MaxDropIn(drop []float64, w int, r Rect) float64 {
	m := 0.0
	for y := r.Y0; y < r.Y1; y++ {
		for x := r.X0; x < r.X1; x++ {
			if d := drop[y*w+x]; d > m {
				m = d
			}
		}
	}
	return m
}

// Rect is a half-open floorplan region [X0,X1)×[Y0,Y1).
type Rect struct{ X0, Y0, X1, Y1 int }

// Cells returns the region's area in cells.
func (r Rect) Cells() int { return (r.X1 - r.X0) * (r.Y1 - r.Y0) }

// Contains reports whether (x,y) lies in the region.
func (r Rect) Contains(x, y int) bool {
	return x >= r.X0 && x < r.X1 && y >= r.Y0 && y < r.Y1
}

// RenderASCII draws a drop map as an ASCII heatmap (like the paper's
// Fig. 16 voltage-supply plots), scaling between lo and hi volts. The
// buffer is sized up front and written by index — this renders inside
// Fig. 16's output path, where a 512×512 map is a quarter-million
// cells.
func RenderASCII(drop []float64, w int, lo, hi float64) string {
	const shades = " .:-=+*#%@"
	h := len(drop) / w
	buf := make([]byte, (w+1)*h)
	p := 0
	for y := 0; y < h; y++ {
		row := y * w
		for x := 0; x < w; x++ {
			f := (drop[row+x] - lo) / (hi - lo)
			if f < 0 {
				f = 0
			}
			if f > 1 {
				f = 1
			}
			buf[p] = shades[int(f*float64(len(shades)-1)+0.5)]
			p++
		}
		buf[p] = '\n'
		p++
	}
	return string(buf)
}

// RenderCSV emits the drop map as CSV rows in millivolts for external
// plotting. Values are appended with strconv on a preallocated buffer
// instead of one fmt.Fprintf per cell; the output bytes are identical.
func RenderCSV(drop []float64, w int) string {
	h := len(drop) / w
	// "NN.NN," per cell is the common case; AppendFloat grows the
	// buffer on the rare wider value.
	buf := make([]byte, 0, len(drop)*6+h)
	for y := 0; y < h; y++ {
		row := y * w
		for x := 0; x < w; x++ {
			if x > 0 {
				buf = append(buf, ',')
			}
			buf = strconv.AppendFloat(buf, drop[row+x]*1000, 'f', 2, 64)
		}
		buf = append(buf, '\n')
	}
	return string(buf)
}
