// Package pdn models the chip's power delivery network as a resistive
// mesh and solves its voltage map under a given current-injection map.
//
// This is the repository's substitute for the commercial post-layout
// IR-drop tools (RedHawk) the paper uses: every floorplan cell connects
// to its four neighbours through mesh resistance and, at bump sites, to
// the ideal supply through a pad resistance; cells draw the current the
// activity model assigns them. Gauss-Seidel relaxation yields the
// steady-state voltage map, from which layout heatmaps (paper Fig. 16)
// and per-region IR-drop numbers are derived.
package pdn

import (
	"fmt"
	"math"
	"strings"
)

// Grid is a W×H resistive mesh.
type Grid struct {
	W, H int
	// Vdd is the ideal supply voltage (volts).
	Vdd float64
	// Gmesh is the conductance between neighbouring cells (1/ohm).
	Gmesh float64
	// Gpad is the conductance from a bump cell to the ideal supply.
	Gpad float64
	// pads marks bump locations.
	pads []bool
}

// NewGrid builds a grid with a regular bump array every `pitch` cells
// (offset pitch/2), the standard flip-chip pattern.
func NewGrid(w, h int, vdd, gmesh, gpad float64, pitch int) *Grid {
	if w <= 0 || h <= 0 {
		panic("pdn: non-positive grid")
	}
	if pitch <= 0 {
		panic("pdn: non-positive bump pitch")
	}
	g := &Grid{W: w, H: h, Vdd: vdd, Gmesh: gmesh, Gpad: gpad, pads: make([]bool, w*h)}
	for y := pitch / 2; y < h; y += pitch {
		for x := pitch / 2; x < w; x += pitch {
			g.pads[y*w+x] = true
		}
	}
	return g
}

// PadCount returns the number of bump sites.
func (g *Grid) PadCount() int {
	n := 0
	for _, p := range g.pads {
		if p {
			n++
		}
	}
	return n
}

// Solve computes the steady-state voltage at every cell for the given
// per-cell current draw (amps, length W*H), by Gauss-Seidel relaxation
// to the given tolerance (volts). It returns the voltage map and the
// number of sweeps used.
func (g *Grid) Solve(current []float64, tol float64, maxIter int) ([]float64, int) {
	if len(current) != g.W*g.H {
		panic(fmt.Sprintf("pdn: current map size %d != %d", len(current), g.W*g.H))
	}
	v := make([]float64, g.W*g.H)
	for i := range v {
		v[i] = g.Vdd
	}
	iter := 0
	for ; iter < maxIter; iter++ {
		maxDelta := 0.0
		for y := 0; y < g.H; y++ {
			for x := 0; x < g.W; x++ {
				i := y*g.W + x
				sumG := 0.0
				sumGV := 0.0
				if x > 0 {
					sumG += g.Gmesh
					sumGV += g.Gmesh * v[i-1]
				}
				if x < g.W-1 {
					sumG += g.Gmesh
					sumGV += g.Gmesh * v[i+1]
				}
				if y > 0 {
					sumG += g.Gmesh
					sumGV += g.Gmesh * v[i-g.W]
				}
				if y < g.H-1 {
					sumG += g.Gmesh
					sumGV += g.Gmesh * v[i+g.W]
				}
				if g.pads[i] {
					sumG += g.Gpad
					sumGV += g.Gpad * g.Vdd
				}
				if sumG == 0 {
					continue
				}
				nv := (sumGV - current[i]) / sumG
				if d := math.Abs(nv - v[i]); d > maxDelta {
					maxDelta = d
				}
				v[i] = nv
			}
		}
		if maxDelta < tol {
			iter++
			break
		}
	}
	return v, iter
}

// DropMap converts a voltage map into IR-drop (volts below Vdd).
func (g *Grid) DropMap(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = g.Vdd - x
	}
	return out
}

// MaxDrop returns the worst IR-drop in the map.
func MaxDrop(drop []float64) float64 {
	m := 0.0
	for _, d := range drop {
		if d > m {
			m = d
		}
	}
	return m
}

// MeanDropIn averages the drop over the cells a region covers.
func MeanDropIn(drop []float64, w int, r Rect) float64 {
	sum, n := 0.0, 0
	for y := r.Y0; y < r.Y1; y++ {
		for x := r.X0; x < r.X1; x++ {
			sum += drop[y*w+x]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MaxDropIn returns the worst drop within a region.
func MaxDropIn(drop []float64, w int, r Rect) float64 {
	m := 0.0
	for y := r.Y0; y < r.Y1; y++ {
		for x := r.X0; x < r.X1; x++ {
			if d := drop[y*w+x]; d > m {
				m = d
			}
		}
	}
	return m
}

// Rect is a half-open floorplan region [X0,X1)×[Y0,Y1).
type Rect struct{ X0, Y0, X1, Y1 int }

// Cells returns the region's area in cells.
func (r Rect) Cells() int { return (r.X1 - r.X0) * (r.Y1 - r.Y0) }

// Contains reports whether (x,y) lies in the region.
func (r Rect) Contains(x, y int) bool {
	return x >= r.X0 && x < r.X1 && y >= r.Y0 && y < r.Y1
}

// RenderASCII draws a drop map as an ASCII heatmap (like the paper's
// Fig. 16 voltage-supply plots), scaling between lo and hi volts.
func RenderASCII(drop []float64, w int, lo, hi float64) string {
	shades := []byte(" .:-=+*#%@")
	var sb strings.Builder
	h := len(drop) / w
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			d := drop[y*w+x]
			f := (d - lo) / (hi - lo)
			if f < 0 {
				f = 0
			}
			if f > 1 {
				f = 1
			}
			sb.WriteByte(shades[int(f*float64(len(shades)-1)+0.5)])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// RenderCSV emits the drop map as CSV rows in millivolts for external
// plotting.
func RenderCSV(drop []float64, w int) string {
	var sb strings.Builder
	h := len(drop) / w
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%.2f", drop[y*w+x]*1000)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
