package pdn

import (
	"math"
	"testing"

	"aim/internal/xrand"
)

// originalSolve is a verbatim copy of the pre-refactor Grid.Solve
// loop: the byte-identity reference the stencil-kernel Gauss-Seidel is
// held to.
func (g *Grid) originalSolve(current []float64, tol float64, maxIter int) ([]float64, int) {
	v := make([]float64, g.W*g.H)
	for i := range v {
		v[i] = g.Vdd
	}
	iter := 0
	for ; iter < maxIter; iter++ {
		maxDelta := 0.0
		for y := 0; y < g.H; y++ {
			for x := 0; x < g.W; x++ {
				i := y*g.W + x
				sumG := 0.0
				sumGV := 0.0
				if x > 0 {
					sumG += g.Gmesh
					sumGV += g.Gmesh * v[i-1]
				}
				if x < g.W-1 {
					sumG += g.Gmesh
					sumGV += g.Gmesh * v[i+1]
				}
				if y > 0 {
					sumG += g.Gmesh
					sumGV += g.Gmesh * v[i-g.W]
				}
				if y < g.H-1 {
					sumG += g.Gmesh
					sumGV += g.Gmesh * v[i+g.W]
				}
				if g.pads[i] {
					sumG += g.Gpad
					sumGV += g.Gpad * g.Vdd
				}
				if sumG == 0 {
					continue
				}
				nv := (sumGV - current[i]) / sumG
				if d := math.Abs(nv - v[i]); d > maxDelta {
					maxDelta = d
				}
				v[i] = nv
			}
		}
		if maxDelta < tol {
			iter++
			break
		}
	}
	return v, iter
}

// solverGrids is the table of geometries the equivalence tests sweep:
// even/odd dimensions, non-square dies, single-column meshes, sparse
// and dense bump arrays.
var solverGrids = []struct {
	name        string
	w, h        int
	gmesh, gpad float64
	pitch       int
}{
	{"16x16 p4", 16, 16, 10, 50, 4},
	{"17x17 single pad", 17, 17, 10, 80, 16},
	{"64x64 flip-chip", 64, 64, 18, 45, 8},
	{"33x47 odd", 33, 47, 18, 45, 6},
	{"12x9 dense", 12, 9, 10, 30, 2},
	{"1x8 column", 1, 8, 10, 50, 1},
	{"96x40 wide", 96, 40, 18, 45, 8},
}

func randomCurrent(n int, seed int64, scale float64) []float64 {
	rng := xrand.New(seed)
	cur := make([]float64, n)
	for i := range cur {
		cur[i] = rng.Float64() * scale
	}
	return cur
}

// TestGaussSeidelMatchesOriginalBytes holds the refactored
// stencil-kernel Gauss-Seidel to the historical loop bit for bit —
// every iterate, every sweep count. This is what keeps Fig. 16 and
// cmd/irmap output byte-identical across the solver refactor.
func TestGaussSeidelMatchesOriginalBytes(t *testing.T) {
	for _, tc := range solverGrids {
		g := NewGrid(tc.w, tc.h, 0.75, tc.gmesh, tc.gpad, tc.pitch)
		cur := randomCurrent(tc.w*tc.h, 7, 0.01)
		vOld, itOld := g.originalSolve(cur, 1e-6, 4000)
		vNew, itNew := g.Solve(cur, 1e-6, 4000)
		if itOld != itNew {
			t.Errorf("%s: iterations %d vs original %d", tc.name, itNew, itOld)
		}
		for i := range vOld {
			if vOld[i] != vNew[i] {
				t.Fatalf("%s: cell %d differs: %v vs original %v", tc.name, i, vNew[i], vOld[i])
			}
		}
	}
}

// TestMultigridMatchesGaussSeidel is the core equivalence guarantee:
// on every geometry, the multigrid field agrees with a
// tightly-converged Gauss-Seidel solve to well inside the rendering
// quantum (0.005 mV), cold-started and warm-started.
func TestMultigridMatchesGaussSeidel(t *testing.T) {
	for _, tc := range solverGrids {
		g := NewGrid(tc.w, tc.h, 0.75, tc.gmesh, tc.gpad, tc.pitch)
		cur := randomCurrent(tc.w*tc.h, 11, 0.008)
		vRef, _ := g.Solve(cur, 1e-10, 2000000)
		mg := NewMultigrid(g)
		vMG, iters := mg.Solve(cur, 1e-8, 200)
		if iters >= 200 {
			t.Errorf("%s: multigrid did not converge (%d cycles)", tc.name, iters)
		}
		for i := range vRef {
			if d := math.Abs(vMG[i] - vRef[i]); d > 2e-6 {
				t.Fatalf("%s: cell %d off by %.3g V (mg %v, gs %v)", tc.name, i, d, vMG[i], vRef[i])
			}
		}

		// Warm start from a different current map must land on the same
		// field as a cold start.
		cur2 := randomCurrent(tc.w*tc.h, 13, 0.008)
		warm, _ := mg.Solve(cur2, 1e-8, 200)
		cold, _ := NewMultigrid(g).Solve(cur2, 1e-8, 200)
		for i := range warm {
			if d := math.Abs(warm[i] - cold[i]); d > 2e-6 {
				t.Fatalf("%s: warm-start cell %d off by %.3g V", tc.name, i, d)
			}
		}
	}
}

// TestMultigridParallelMatchesSerial: checkerboard parallelism must be
// a pure wall-clock knob — identical bits for any worker count. The
// grid is sized above parallelMinCells so banded sweeps actually run.
func TestMultigridParallelMatchesSerial(t *testing.T) {
	g := NewGrid(192, 192, 0.75, 18, 45, 8)
	cur := randomCurrent(192*192, 17, 0.01)
	serial := NewMultigrid(g)
	serial.Workers = 1
	vS, itS := serial.Solve(cur, 1e-7, 200)
	for _, workers := range []int{2, 3, 5} {
		par := NewMultigrid(g)
		par.Workers = workers
		vP, itP := par.Solve(cur, 1e-7, 200)
		if itS != itP {
			t.Errorf("workers=%d: cycles %d vs serial %d", workers, itP, itS)
		}
		for i := range vS {
			if vS[i] != vP[i] {
				t.Fatalf("workers=%d: cell %d differs: %v vs %v", workers, i, vP[i], vS[i])
			}
		}
	}
}

// TestMultigridEqualAccuracyTolerance justifies the 512×512
// benchmark's tol=1e-4: at that setting the multigrid field is
// strictly closer to the true solution than the Gauss-Seidel reference
// is at its own sign-off tolerance of 1e-6 (relaxation's sweep-delta
// criterion stops ~1e-4 V short; a V-cycle's delta tracks its error).
func TestMultigridEqualAccuracyTolerance(t *testing.T) {
	fp := DefaultFloorplan()
	rt := make([]float64, len(fp.GroupTiles))
	for i := range rt {
		rt[i] = 1
	}
	cur := fp.CurrentMap(DefaultActivity(), rt)
	exact, _ := fp.Grid.Solve(cur, 1e-13, 4000000)
	gs, _ := fp.Grid.Solve(cur, 1e-6, 4000)
	mg, _ := NewMultigrid(fp.Grid).Solve(cur, 1e-4, 200)
	maxDiff := func(a, b []float64) float64 {
		m := 0.0
		for i := range a {
			if d := math.Abs(a[i] - b[i]); d > m {
				m = d
			}
		}
		return m
	}
	gsErr := maxDiff(gs, exact)
	mgErr := maxDiff(mg, exact)
	if mgErr > gsErr {
		t.Errorf("multigrid at tol 1e-4 (err %.3g V) is less accurate than the GS sign-off solve (err %.3g V)", mgErr, gsErr)
	}
	if gsErr < 1e-6 {
		t.Errorf("GS reference unexpectedly tight (err %.3g V); the equal-accuracy argument needs revisiting", gsErr)
	}
}

// TestMultigridIterationCap: an exhausted cycle budget reports the cap
// like Gauss-Seidel does.
func TestMultigridIterationCap(t *testing.T) {
	g := NewGrid(64, 64, 0.75, 18, 45, 8)
	cur := randomCurrent(64*64, 5, 0.01)
	mg := NewMultigrid(g)
	if _, iters := mg.Solve(cur, 1e-12, 2); iters != 2 {
		t.Errorf("iters = %d, want the cap 2", iters)
	}
}

// TestMultigridResetColdStarts: Reset must drop the warm-start cache.
func TestMultigridResetColdStarts(t *testing.T) {
	g := NewGrid(32, 32, 0.75, 18, 45, 8)
	cur := randomCurrent(32*32, 19, 0.01)
	mg := NewMultigrid(g)
	v1, it1 := mg.Solve(cur, 1e-8, 200)
	mg.Reset()
	v2, it2 := mg.Solve(cur, 1e-8, 200)
	if it1 != it2 {
		t.Errorf("cold re-solve used %d cycles, first solve %d", it2, it1)
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("cold re-solve diverged at cell %d", i)
		}
	}
	// A warm re-solve of the same map converges immediately.
	if _, it3 := mg.Solve(cur, 1e-8, 200); it3 >= it1 {
		t.Errorf("warm re-solve used %d cycles, want fewer than %d", it3, it1)
	}
}

// TestMultigridSolveCopies: the returned field must not alias the
// warm-start cache.
func TestMultigridSolveCopies(t *testing.T) {
	g := NewGrid(16, 16, 0.75, 18, 45, 4)
	cur := randomCurrent(256, 23, 0.01)
	mg := NewMultigrid(g)
	v, _ := mg.Solve(cur, 1e-8, 200)
	v[0] = -1
	v2, _ := mg.Solve(cur, 1e-8, 200)
	if v2[0] == -1 {
		t.Fatal("Solve returned its internal warm-start buffer")
	}
}

// TestScaledFloorplanGeometry: scale 1 reproduces the default die
// exactly; larger scales keep every region on the die with the
// expected tile and pad counts.
func TestScaledFloorplanGeometry(t *testing.T) {
	def := DefaultFloorplan()
	s1 := ScaledFloorplan(1)
	if s1.Cores != def.Cores || s1.Memory != def.Memory || len(s1.GroupTiles) != len(def.GroupTiles) {
		t.Fatalf("scale 1 geometry differs from the default floorplan")
	}
	for i := range def.GroupTiles {
		if s1.GroupTiles[i] != def.GroupTiles[i] {
			t.Fatalf("scale 1 tile %d differs: %+v vs %+v", i, s1.GroupTiles[i], def.GroupTiles[i])
		}
	}
	if s1.Solver == nil {
		t.Error("scaled floorplans must carry the production solver")
	}
	if def.Solver != nil {
		t.Error("the default floorplan must keep the byte-stable reference path")
	}
	for _, f := range []int{2, 4, 8} {
		fp := ScaledFloorplan(f)
		if fp.Grid.W != 64*f || fp.Grid.H != 64*f {
			t.Fatalf("scale %d: die %dx%d", f, fp.Grid.W, fp.Grid.H)
		}
		if want := 16 * f * f; len(fp.GroupTiles) != want {
			t.Fatalf("scale %d: %d tiles, want %d", f, len(fp.GroupTiles), want)
		}
		if want := 64 * f * f; fp.Grid.PadCount() != want {
			t.Fatalf("scale %d: %d pads, want %d", f, fp.Grid.PadCount(), want)
		}
		for i, r := range fp.GroupTiles {
			if r.X0 < 0 || r.Y0 <= fp.Cores.Y1 || r.X1 > fp.Grid.W || r.Y1 > fp.Grid.H {
				t.Fatalf("scale %d: tile %d out of die or into the core strip: %+v", f, i, r)
			}
		}
	}
}

// TestScaledFloorplanSignoff: the production-scale die keeps the
// calibrated sign-off physics — the same per-cell activity at scale 2
// lands in the paper's ~140 mV band, since bump density and tile
// current density are unchanged.
func TestScaledFloorplanSignoff(t *testing.T) {
	fp := ScaledFloorplan(2)
	rt := make([]float64, len(fp.GroupTiles))
	for i := range rt {
		rt[i] = 1
	}
	drop, worst := fp.SolveActivity(DefaultActivity(), rt)
	if worst < 0.120 || worst > 0.175 {
		t.Errorf("scale-2 sign-off worst = %.1f mV, want the calibrated band", worst*1000)
	}
	coreDrop := MaxDropIn(drop, fp.Grid.W, fp.Cores)
	if coreDrop >= worst {
		t.Errorf("core drop %v should stay below macro worst %v", coreDrop, worst)
	}

	// Warm-started re-solve at lower activity: same field as a fresh
	// solver, the Fig. 16 sweep pattern.
	for i := range rt {
		rt[i] = 0.4
	}
	dropWarm, worstWarm := fp.SolveActivity(DefaultActivity(), rt)
	fresh := ScaledFloorplan(2)
	dropCold, worstCold := fresh.SolveActivity(DefaultActivity(), rt)
	if math.Abs(worstWarm-worstCold) > 2e-6 {
		t.Errorf("warm vs cold worst drop: %v vs %v", worstWarm, worstCold)
	}
	for i := range dropWarm {
		if math.Abs(dropWarm[i]-dropCold[i]) > 2e-6 {
			t.Fatalf("warm vs cold field differs at cell %d", i)
		}
	}
	if worstWarm >= worst {
		t.Errorf("lower activity must shrink the drop: %v vs %v", worstWarm, worst)
	}
}

// TestScaledFloorplanPanics: scale 0 is rejected.
func TestScaledFloorplanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for scale 0")
		}
	}()
	ScaledFloorplan(0)
}
