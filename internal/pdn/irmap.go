package pdn

import (
	"fmt"
	"io"

	"aim/internal/xrand"
)

// RenderIRMap writes the before/after-AIM IR-drop heatmap pair for a
// floorplan — two banners with the worst macro drop, two maps (ASCII
// art or CSV millivolts), and the mitigation summary line. It is the
// rendering core of the irmap command, shared with the integrity
// checker so the pinned output bytes are re-derivable from one
// implementation: per-group activities are drawn from the named
// stream "irmap" of seed, so the same seed reproduces the same maps
// byte for byte.
func RenderIRMap(w io.Writer, fp *Floorplan, baseAct, optAct float64, seed int64, csv bool) {
	act := DefaultActivity()
	rng := xrand.NewNamed(seed, "irmap")
	render := func(label string, base float64, scaleHi float64) float64 {
		rt := make([]float64, len(fp.GroupTiles))
		for i := range rt {
			rt[i] = 0.95 * (base + 0.04*rng.Float64())
			if rt[i] > 1 {
				rt[i] = 1
			}
		}
		drop, worst := fp.SolveActivity(act, rt)
		fmt.Fprintf(w, "--- %s: worst macro drop %.1f mV ---\n", label, worst*1000)
		if csv {
			fmt.Fprint(w, RenderCSV(drop, fp.Grid.W))
		} else {
			hi := scaleHi
			if hi == 0 {
				hi = worst
			}
			fmt.Fprint(w, RenderASCII(drop, fp.Grid.W, 0, hi))
		}
		return worst
	}
	worstBefore := render("before AIM", baseAct, 0)
	worstAfter := render("after AIM", optAct, worstBefore)
	fmt.Fprintf(w, "mitigation: %.1f%%\n", 100*(1-worstAfter/worstBefore))
}
