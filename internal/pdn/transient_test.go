package pdn

import (
	"math"
	"testing"
)

func transientFixture(capF float64) (*Transient, []float64, int) {
	g := NewGrid(12, 12, 0.75, 10, 50, 4)
	cur := make([]float64, 144)
	for i := range cur {
		cur[i] = 0.004
	}
	probe := 6*12 + 6 // die center
	return NewTransient(g, capF), cur, probe
}

func TestTransientValidation(t *testing.T) {
	g := NewGrid(4, 4, 0.75, 10, 50, 2)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for zero capacitance")
			}
		}()
		NewTransient(g, 0)
	}()
	tr := NewTransient(g, 1e-9)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for unstable dt")
			}
		}()
		tr.Solve(func(int) []float64 { return make([]float64, 16) }, 1, 1, nil)
	}()
}

func TestTransientConvergesToStatic(t *testing.T) {
	tr, cur, probe := transientFixture(1e-9)
	dt := tr.MaxStableDt() * 0.5
	traces := tr.Solve(func(int) []float64 { return cur }, dt, 4000, []int{probe})
	final := traces[0][len(traces[0])-1]
	vStatic, _ := tr.Grid.Solve(cur, 1e-9, 5000)
	if math.Abs(final-vStatic[probe]) > 1e-4 {
		t.Errorf("transient settles at %v, static %v", final, vStatic[probe])
	}
}

func TestTransientZeroCurrentStaysAtVdd(t *testing.T) {
	tr, _, probe := transientFixture(1e-9)
	dt := tr.MaxStableDt() * 0.5
	traces := tr.Solve(func(int) []float64 { return make([]float64, 144) }, dt, 200, []int{probe})
	for _, v := range traces[0] {
		if math.Abs(v-0.75) > 1e-12 {
			t.Fatalf("voltage moved without current: %v", v)
		}
	}
}

func TestStepResponseDroops(t *testing.T) {
	tr, cur, probe := transientFixture(1e-9)
	dt := tr.MaxStableDt() * 0.5
	traces := tr.StepResponse(cur, dt*100, dt, 3000, []int{probe})
	trace := traces[0]
	// Before the step: Vdd. After: monotone droop toward the static
	// level (first-order RC mesh: no ringing).
	if trace[50] != 0.75 {
		t.Errorf("pre-step voltage %v", trace[50])
	}
	min := MinOf(trace)
	if min >= 0.75-1e-6 {
		t.Error("no droop after current step")
	}
	vStatic, _ := tr.Grid.Solve(cur, 1e-9, 5000)
	if min < vStatic[probe]-1e-4 {
		t.Errorf("droop %v undershoots the static level %v (instability)", min, vStatic[probe])
	}
}

// The Graphcore-Bow effect (§1): more decoupling capacitance slows the
// droop, so at a fixed early observation time the excursion is smaller.
func TestMoreDecapSlowsDroop(t *testing.T) {
	observe := 2.0e-9 // seconds after the step
	depthAt := func(capF float64) float64 {
		tr, cur, probe := transientFixture(capF)
		dt := tr.MaxStableDt() * 0.5
		steps := int(observe/dt) + 1
		traces := tr.Solve(func(int) []float64 { return cur }, dt, steps, []int{probe})
		return 0.75 - traces[0][len(traces[0])-1]
	}
	small := depthAt(1e-9)
	large := depthAt(8e-9)
	if large >= small {
		t.Errorf("8x decap droop %v should be below baseline %v at t=%v", large, small, observe)
	}
}

func TestTransientCurrentSizePanic(t *testing.T) {
	tr, _, _ := transientFixture(1e-9)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Solve(func(int) []float64 { return make([]float64, 3) }, tr.MaxStableDt()*0.5, 1, nil)
}

func TestMinOf(t *testing.T) {
	if MinOf([]float64{3, 1, 2}) != 1 {
		t.Error("MinOf wrong")
	}
}
