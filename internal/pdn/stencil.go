package pdn

// stencil is the shared 5-point kernel every PDN solve path runs on:
// the per-cell conductance sums of the resistive mesh, precomputed once
// so the hot sweeps replace the four branchy neighbour checks of the
// original Gauss-Seidel loop with straight-line loads and multiplies.
//
// The discrete system is A·v = b with
//
//	A[i][i]   = Σ incident link conductances + padG[i]   (= sumG[i])
//	A[i][j]   = -gmesh for each mesh neighbour j
//	b[i]      = padG[i]·Vdd − current[i]                 (= rhs)
//
// The same kernel serves three consumers: the retained Gauss-Seidel
// reference (which keeps the original's exact floating-point op order,
// so its iterates stay bit-identical to the historical solver), the
// multigrid smoother/residual (red-black order, checkerboard-parallel),
// and the transient integrator. Coarse multigrid levels are stencils
// too: coarsen() aggregates 2×2 cell blocks, keeping the
// scale-invariant sheet conductance and summing pad conductances into
// the owning block with a spreading-resistance correction.
type stencil struct {
	w, h  int
	gmesh float64
	// sumG is the diagonal of A, accumulated in the original solver's
	// order (left, right, up, down, pad) so Gauss-Seidel division
	// reproduces the historical bytes exactly.
	sumG []float64
	// inv caches 1/sumG for the multiply-only multigrid sweeps.
	inv []float64
	// padG is the per-cell pad-to-supply conductance (0 off-bump).
	// Fine grids hold Gpad at bump sites; coarse grids hold block sums.
	padG []float64
}

// newStencil precomputes the kernel for a grid.
func newStencil(g *Grid) *stencil {
	padG := make([]float64, g.W*g.H)
	for i, p := range g.pads {
		if p {
			padG[i] = g.Gpad
		}
	}
	return stencilFrom(g.W, g.H, g.Gmesh, padG)
}

// stencilFrom builds the kernel from raw geometry — the constructor the
// multigrid coarsening reuses, keeping every level's operator
// consistent with the smoother that runs on it.
func stencilFrom(w, h int, gmesh float64, padG []float64) *stencil {
	s := &stencil{w: w, h: h, gmesh: gmesh, padG: padG,
		sumG: make([]float64, w*h), inv: make([]float64, w*h)}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			// Accumulation order matches the original Solve loop:
			// left, right, up, down, then pad.
			sum := 0.0
			if x > 0 {
				sum += gmesh
			}
			if x < w-1 {
				sum += gmesh
			}
			if y > 0 {
				sum += gmesh
			}
			if y < h-1 {
				sum += gmesh
			}
			if padG[i] != 0 {
				sum += padG[i]
			}
			s.sumG[i] = sum
			if sum != 0 {
				s.inv[i] = 1 / sum
			}
		}
	}
	return s
}

// rhs fills b for the top-level system: pad injection minus cell draw.
func (s *stencil) rhs(vdd float64, current, out []float64) {
	for i := range out {
		out[i] = s.padG[i]*vdd - current[i]
	}
}

// sweepColorRows relaxes every cell of one red-black color in rows
// [y0, y1) and returns the largest update it made. Cells of one color
// read only the other color, so any row partition of a color pass
// produces bit-identical results — checkerboard parallelism is a pure
// wall-clock knob.
func (s *stencil) sweepColorRows(v, rhs []float64, color, y0, y1 int) float64 {
	w := s.w
	maxDelta := 0.0
	for y := y0; y < y1; y++ {
		xs := (color + y) & 1
		if xs >= w {
			continue
		}
		x := s.sweepRowEdges(v, rhs, y, xs, &maxDelta)
		if y == 0 || y == s.h-1 {
			continue
		}
		// Interior row hot loop: row slices let the compiler drop the
		// bound checks, and delta tracking rides along for the
		// convergence test.
		row := y * w
		up := v[row-w : row : row]
		cur := v[row : row+w : row+w]
		dn := v[row+w : row+2*w : row+2*w]
		rr := rhs[row : row+w : row+w]
		ir := s.inv[row : row+w : row+w]
		gm := s.gmesh
		if x < 1 {
			x = 1 // edge pass always covers x=0; hint for bound-check elimination
		}
		for ; x < w-1; x += 2 {
			nv := (gm*(cur[x-1]+cur[x+1]+up[x]+dn[x]) + rr[x]) * ir[x]
			if d := nv - cur[x]; d > maxDelta {
				maxDelta = d
			} else if -d > maxDelta {
				maxDelta = -d
			}
			cur[x] = nv
		}
	}
	return maxDelta
}

// sweepColorRowsQuiet is sweepColorRows without delta tracking — the
// pre-smoothing passes, where only the field matters. The update
// arithmetic is identical.
func (s *stencil) sweepColorRowsQuiet(v, rhs []float64, color, y0, y1 int) {
	w := s.w
	var sink float64
	for y := y0; y < y1; y++ {
		xs := (color + y) & 1
		if xs >= w {
			continue
		}
		x := s.sweepRowEdges(v, rhs, y, xs, &sink)
		if y == 0 || y == s.h-1 {
			continue
		}
		row := y * w
		up := v[row-w : row : row]
		cur := v[row : row+w : row+w]
		dn := v[row+w : row+2*w : row+2*w]
		rr := rhs[row : row+w : row+w]
		ir := s.inv[row : row+w : row+w]
		gm := s.gmesh
		if x < 1 {
			x = 1
		}
		for ; x < w-1; x += 2 {
			cur[x] = (gm*(cur[x-1]+cur[x+1]+up[x]+dn[x]) + rr[x]) * ir[x]
		}
	}
}

// sweepRowEdges relaxes row y's on-color edge cells (the left/right
// die columns) and, on the two boundary rows, the whole row with
// y-branches. It returns the first interior x the caller's hot loop
// should start from, and folds deltas into maxDelta.
func (s *stencil) sweepRowEdges(v, rhs []float64, y, xs int, maxDelta *float64) int {
	w, h := s.w, s.h
	gm := s.gmesh
	row := y * w
	update := func(i int, sum float64) {
		nv := (sum + rhs[i]) * s.inv[i]
		if d := nv - v[i]; d > *maxDelta {
			*maxDelta = d
		} else if -d > *maxDelta {
			*maxDelta = -d
		}
		v[i] = nv
	}
	x := xs
	if x == 0 {
		sum := 0.0
		if w > 1 {
			sum = gm * v[row+1]
		}
		if y > 0 {
			sum += gm * v[row-w]
		}
		if y < h-1 {
			sum += gm * v[row+w]
		}
		update(row, sum)
		x += 2
	}
	if y == 0 || y == h-1 {
		// Boundary rows keep the y-branches; there are only two.
		for ; x < w-1; x += 2 {
			i := row + x
			sum := gm * (v[i-1] + v[i+1])
			if y > 0 {
				sum += gm * v[i-w]
			}
			if y < h-1 {
				sum += gm * v[i+w]
			}
			update(i, sum)
		}
	}
	// Right edge cell, if on-color (interior rows skip the hot span
	// first; the caller handles it — but the edge cell is independent
	// of the span, so do it here).
	if last := w - 1; last > 0 && (xs+last)%2 == 0 {
		i := row + last
		sum := gm * v[i-1]
		if y > 0 {
			sum += gm * v[i-w]
		}
		if y < h-1 {
			sum += gm * v[i+w]
		}
		update(i, sum)
	}
	return x
}

// sweepFused runs one full red-black sweep in a single staggered pass
// over memory: red row y, then black row y−1, whose red neighbours
// (rows y−2…y) are all final by then. The result is bit-identical to
// a full red pass followed by a full black pass — black cells read
// only red cells, and every red read happens after the red update —
// but each cache line is touched once per sweep instead of twice.
func (s *stencil) sweepFused(v, rhs []float64) float64 {
	d := s.sweepColorRows(v, rhs, 0, 0, 1)
	for y := 1; y < s.h; y++ {
		if dd := s.sweepColorRows(v, rhs, 0, y, y+1); dd > d {
			d = dd
		}
		if dd := s.sweepColorRows(v, rhs, 1, y-1, y); dd > d {
			d = dd
		}
	}
	if dd := s.sweepColorRows(v, rhs, 1, s.h-1, s.h); dd > d {
		d = dd
	}
	return d
}

// sweepFusedQuiet is sweepFused for the pre-smoothing passes: same
// staggered single-pass order, no delta tracking.
func (s *stencil) sweepFusedQuiet(v, rhs []float64) {
	s.sweepColorRowsQuiet(v, rhs, 0, 0, 1)
	for y := 1; y < s.h; y++ {
		s.sweepColorRowsQuiet(v, rhs, 0, y, y+1)
		s.sweepColorRowsQuiet(v, rhs, 1, y-1, y)
	}
	s.sweepColorRowsQuiet(v, rhs, 1, s.h-1, s.h)
}

// coarseDims halves a dimension, rounding up so odd edges keep a
// (thinner) block of their own.
func coarseDims(n int) int { return (n + 1) / 2 }

// coarsen aggregates 2×2 cell blocks into one coarse cell. Sheet
// conductance is scale-invariant in 2D — a block-to-block link is
// twice as wide and twice as long as a cell-to-cell link — so the
// coarse mesh keeps the same link conductance, while pad conductances
// sum into the owning block (current conservation) with a
// spreading-resistance correction (below). Coarse-operator error only
// costs convergence speed, never accuracy: the fine-level tolerance
// check governs every solve.
func (s *stencil) coarsen() *stencil {
	cw, ch := coarseDims(s.w), coarseDims(s.h)
	padG := make([]float64, cw*ch)
	for y := 0; y < s.h; y++ {
		for x := 0; x < s.w; x++ {
			padG[(y/2)*cw+x/2] += s.padG[y*s.w+x]
		}
	}
	// Spreading-resistance correction: a pad is a point sink, and in
	// 2D the mesh resistance funnelling current into it grows like
	// log(pitch/cell). Halving the resolution removes one octave of
	// that funnel — ln2/(2π)/gmesh of series resistance — which a raw
	// conductance sum would silently drop, leaving every coarse level
	// better-grounded than the mesh it stands in for (and the V-cycle
	// over-correcting the smooth inter-pad error mode). Folding the
	// lost octave back in as a series term keeps the coarse pad
	// coupling faithful at every level.
	for i, g := range padG {
		if g != 0 {
			padG[i] = 1 / (1/g + padSpreadC/s.gmesh)
		}
	}
	return stencilFrom(cw, ch, s.gmesh, padG)
}

// padSpreadC is the per-octave spreading-resistance constant ln2/(2π),
// in units of mesh squares.
const padSpreadC = 0.110

// restrictResidual computes the residual r = b − A·v row by row and
// sums it straight into the 2×2 coarse blocks (current conservation
// under piecewise-constant aggregation), never materializing the fine
// residual — one array stream less per level per cycle.
func (s *stencil) restrictResidual(v, rhs, coarse []float64) {
	w, h := s.w, s.h
	cw := coarseDims(w)
	gm := s.gmesh
	for i := range coarse {
		coarse[i] = 0
	}
	for y := 0; y < h; y++ {
		crow := coarse[(y/2)*cw : (y/2)*cw+cw : (y/2)*cw+cw]
		row := y * w
		if y == 0 || y == h-1 || w < 3 {
			for x := 0; x < w; x++ {
				i := row + x
				sum := 0.0
				if x > 0 {
					sum += v[i-1]
				}
				if x < w-1 {
					sum += v[i+1]
				}
				if y > 0 {
					sum += v[i-w]
				}
				if y < h-1 {
					sum += v[i+w]
				}
				crow[x/2] += rhs[i] + gm*sum - s.sumG[i]*v[i]
			}
			continue
		}
		up := v[row-w : row : row]
		cur := v[row : row+w : row+w]
		dn := v[row+w : row+2*w : row+2*w]
		rr := rhs[row : row+w : row+w]
		sg := s.sumG[row : row+w : row+w]
		crow[0] += rr[0] + gm*(cur[1]+up[0]+dn[0]) - sg[0]*cur[0]
		for x := 1; x < w-1; x++ {
			crow[x>>1] += rr[x] + gm*(cur[x-1]+cur[x+1]+up[x]+dn[x]) - sg[x]*cur[x]
		}
		x := w - 1
		crow[x>>1] += rr[x] + gm*(cur[x-1]+up[x]+dn[x]) - sg[x]*cur[x]
	}
}

// prolongAdd interpolates a coarse correction bilinearly onto the fine
// grid and adds it to v, returning the largest correction applied.
// Fine cell (x, y) blends its owning coarse cell with the coarse
// neighbour on each axis it leans toward (weights 3/4, 1/4), clamped
// at the die edge.
func (s *stencil) prolongAdd(e []float64, v []float64) float64 {
	w := s.w
	cw, ch := coarseDims(w), coarseDims(s.h)
	maxCorr := 0.0
	add := func(vr []float64, x int, corr float64) {
		vr[x] += corr
		if corr > maxCorr {
			maxCorr = corr
		} else if -corr > maxCorr {
			maxCorr = -corr
		}
	}
	for y := 0; y < s.h; y++ {
		cy := y / 2
		ny := cy + (y&1)*2 - 1 // neighbour block along y, clamped at the edge
		if ny < 0 {
			ny = 0
		} else if ny >= ch {
			ny = ch - 1
		}
		e0 := e[cy*cw : cy*cw+cw]
		e1 := e[ny*cw : ny*cw+cw]
		vr := v[y*w : y*w+w]
		// Edge columns clamp their x-neighbour block; interior columns
		// never need to (the lean direction always lands on the die).
		add(vr, 0, 0.75*e0[0]+0.25*e1[0])
		for x := 1; x < w-1; x++ {
			cx := x >> 1
			nx := cx + (x&1)*2 - 1
			add(vr, x, 0.5625*e0[cx]+0.1875*(e0[nx]+e1[cx])+0.0625*e1[nx])
		}
		if w > 1 {
			x := w - 1
			cx := x >> 1
			nx := cx + (x&1)*2 - 1
			if nx >= cw {
				nx = cw - 1
			}
			add(vr, x, 0.5625*e0[cx]+0.1875*(e0[nx]+e1[cx])+0.0625*e1[nx])
		}
	}
	return maxCorr
}

// jacobiDelta measures how far v sits from solving A·v = rhs: the
// largest single-cell Jacobi update the system would apply,
// max_i |(rhs[i] + gmesh·Σ v_nbr)/sumG[i] − v[i]|. It writes nothing —
// one branch-light O(n) pass the incremental solve path uses to decide
// whether a warm field already answers a new injection map to within
// tolerance, an order of magnitude cheaper than the V-cycle it gates.
func (s *stencil) jacobiDelta(v, rhs []float64) float64 {
	w, h := s.w, s.h
	gm := s.gmesh
	maxDelta := 0.0
	note := func(i int, sum float64) {
		if s.inv[i] == 0 {
			return
		}
		d := (rhs[i]+gm*sum)*s.inv[i] - v[i]
		if d > maxDelta {
			maxDelta = d
		} else if -d > maxDelta {
			maxDelta = -d
		}
	}
	for y := 0; y < h; y++ {
		row := y * w
		if y == 0 || y == h-1 {
			for x := 0; x < w; x++ {
				i := row + x
				sum := 0.0
				if x > 0 {
					sum += v[i-1]
				}
				if x < w-1 {
					sum += v[i+1]
				}
				if y > 0 {
					sum += v[i-w]
				}
				if y < h-1 {
					sum += v[i+w]
				}
				note(i, sum)
			}
			continue
		}
		if w == 1 {
			note(row, v[row-w]+v[row+w])
			continue
		}
		note(row, v[row+1]+v[row-w]+v[row+w])
		for x := 1; x < w-1; x++ {
			i := row + x
			note(i, v[i-1]+v[i+1]+v[i-w]+v[i+w])
		}
		i := row + w - 1
		note(i, v[i-1]+v[i-w]+v[i+w])
	}
	return maxDelta
}
