package pdn

// The PDN solver perf trajectory (BENCH_pdn.json via make bench-pdn):
// the retained Gauss-Seidel reference against the multigrid production
// solver on the 64×64 sign-off solve, and multigrid alone at the
// production scales Gauss-Seidel cannot reach.
//
// Tolerance conventions: both solvers at 64×64 run the historical
// sign-off setting (1e-6). The scaled multigrid benchmarks run
// tol=1e-4, which — per TestMultigridEqualAccuracyTolerance — still
// yields a field strictly closer to the true solution than the
// Gauss-Seidel reference achieves at its own 1e-6 setting, because
// relaxation's sweep-delta criterion stops ~1e-4 V short of
// convergence while a V-cycle's delta tracks its true error.

import "testing"

// signoffCurrent is the all-groups-at-Rtog-1 injection map — the
// paper's sign-off worst case.
func signoffCurrent(fp *Floorplan) []float64 {
	rt := make([]float64, len(fp.GroupTiles))
	for i := range rt {
		rt[i] = 1
	}
	return fp.CurrentMap(DefaultActivity(), rt)
}

// BenchmarkPDNGaussSeidel is the retained reference: the 64×64
// sign-off solve by serial lexicographic relaxation, exactly the
// historical Fig. 16 path.
func BenchmarkPDNGaussSeidel(b *testing.B) {
	fp := DefaultFloorplan()
	cur := signoffCurrent(fp)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, iters := fp.Grid.Solve(cur, 1e-6, 4000); iters == 0 {
			b.Fatal("no iterations")
		}
	}
}

// BenchmarkPDNMultigrid is the same 64×64 sign-off solve through the
// V-cycle, cold-started every iteration (Reset drops the warm cache).
func BenchmarkPDNMultigrid(b *testing.B) {
	fp := DefaultFloorplan()
	cur := signoffCurrent(fp)
	mg := NewMultigrid(fp.Grid)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mg.Reset()
		if _, iters := mg.Solve(cur, 1e-6, 200); iters == 0 {
			b.Fatal("no cycles")
		}
	}
}

// BenchmarkPDNMultigridWarm measures the production pattern the warm
// start exists for: a per-group Rtog sweep (Fig. 16 before/after,
// V-f calibration), each solve starting from the previous field.
func BenchmarkPDNMultigridWarm(b *testing.B) {
	fp := DefaultFloorplan()
	act := DefaultActivity()
	rt := make([]float64, len(fp.GroupTiles))
	levels := []float64{1.0, 0.85, 0.7, 0.55, 0.4}
	curs := make([][]float64, len(levels))
	for li, lvl := range levels {
		for i := range rt {
			rt[i] = lvl
		}
		curs[li] = fp.CurrentMap(act, rt)
	}
	mg := NewMultigrid(fp.Grid)
	mg.Solve(curs[0], 1e-6, 200) // prime the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, iters := mg.Solve(curs[i%len(curs)], 1e-6, 200); iters == 0 {
			b.Fatal("no cycles")
		}
	}
}

func benchScaled(b *testing.B, scale int) {
	b.Helper()
	fp := floorplanGeometry(scale)
	cur := signoffCurrent(fp)
	mg := NewMultigrid(fp.Grid)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mg.Reset()
		if _, iters := mg.Solve(cur, 1e-4, 200); iters == 0 {
			b.Fatal("no cycles")
		}
	}
}

// BenchmarkPDNMultigrid128 solves the 128×128 production die cold.
func BenchmarkPDNMultigrid128(b *testing.B) { benchScaled(b, 2) }

// BenchmarkPDNMultigrid256 solves the 256×256 production die cold.
func BenchmarkPDNMultigrid256(b *testing.B) { benchScaled(b, 4) }

// BenchmarkPDNMultigrid512 solves the 512×512 production die cold —
// the scale the issue's acceptance pits against Gauss-Seidel's 64×64
// wall-clock.
func BenchmarkPDNMultigrid512(b *testing.B) { benchScaled(b, 8) }
