package pdn

import (
	"strings"
	"sync"
	"testing"
)

// blockingSolver is a Solver stub that parks inside Solve until
// released, so the misuse test can hold one SolveActivity open
// deterministically.
type blockingSolver struct {
	entered chan struct{}
	release chan struct{}
	once    sync.Once
	g       *Grid
}

func (b *blockingSolver) Solve(current []float64, tol float64, maxIter int) ([]float64, int) {
	b.once.Do(func() {
		close(b.entered)
		<-b.release
	})
	v := make([]float64, b.g.W*b.g.H)
	for i := range v {
		v[i] = b.g.Vdd
	}
	return v, 1
}

// TestSolveActivityConcurrentMisuseGuard pins the documented "a
// Floorplan with a Solver is not safe for concurrent SolveActivity"
// contract: now that the spatial simulator hands out per-worker solver
// sessions, a shared session racing two solves must fail loudly
// instead of silently corrupting the warm-start field.
func TestSolveActivityConcurrentMisuseGuard(t *testing.T) {
	fp := FloorplanAt(1)
	bs := &blockingSolver{entered: make(chan struct{}), release: make(chan struct{}), g: fp.Grid}
	fp.Solver = bs
	act := DefaultActivity()
	rt := make([]float64, len(fp.GroupTiles))

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		fp.SolveActivity(act, rt) // parks inside the stub solver
	}()
	<-bs.entered

	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Error("concurrent SolveActivity on a Solver session must panic")
				return
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, "concurrent SolveActivity") {
				t.Errorf("panic %v, want the concurrent-misuse diagnostic", r)
			}
		}()
		fp.SolveActivity(act, rt)
	}()
	close(bs.release)
	wg.Wait()

	// The guard releases with the first call: sequential reuse stays fine.
	if _, worst := fp.SolveActivity(act, rt); worst < 0 {
		t.Fatal("sequential reuse after the race must work")
	}
}

// TestSolverlessFloorplanSafeConcurrently: the Gauss-Seidel reference
// path builds a fresh relaxation per call and must remain shareable —
// the byte-stable Fig. 16 path relies on it.
func TestSolverlessFloorplanSafeConcurrently(t *testing.T) {
	fp := DefaultFloorplan()
	act := DefaultActivity()
	rt := make([]float64, len(fp.GroupTiles))
	for i := range rt {
		rt[i] = 0.3
	}
	var wg sync.WaitGroup
	worsts := make([]float64, 4)
	for i := range worsts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, worsts[i] = fp.SolveActivity(act, rt)
		}(i)
	}
	wg.Wait()
	for _, w := range worsts[1:] {
		if w != worsts[0] {
			t.Fatalf("concurrent reference solves disagree: %v", worsts)
		}
	}
}

// TestFloorplanAtMatchesDefaultGeometry: FloorplanAt(1) is exactly the
// DefaultFloorplan layout with no solver attached.
func TestFloorplanAtMatchesDefaultGeometry(t *testing.T) {
	a, d := FloorplanAt(1), DefaultFloorplan()
	if a.Solver != nil {
		t.Error("FloorplanAt must not attach a solver")
	}
	if a.Grid.W != d.Grid.W || a.Grid.H != d.Grid.H || a.Cores != d.Cores || a.Memory != d.Memory {
		t.Error("FloorplanAt(1) geometry diverges from DefaultFloorplan")
	}
	if len(a.GroupTiles) != len(d.GroupTiles) {
		t.Fatalf("tile count %d != %d", len(a.GroupTiles), len(d.GroupTiles))
	}
	for i := range a.GroupTiles {
		if a.GroupTiles[i] != d.GroupTiles[i] {
			t.Fatalf("tile %d differs", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("FloorplanAt(0) must panic")
		}
	}()
	FloorplanAt(0)
}

// TestCurrentMapIntoMatchesCurrentMap: the buffer-reusing hot path is
// the same map, including when the buffer held stale data.
func TestCurrentMapIntoMatchesCurrentMap(t *testing.T) {
	fp := FloorplanAt(1)
	act := DefaultActivity()
	rt := make([]float64, len(fp.GroupTiles))
	for i := range rt {
		rt[i] = float64(i) / float64(len(rt))
	}
	want := fp.CurrentMap(act, rt)
	got := make([]float64, len(want))
	for i := range got {
		got[i] = 99 // stale garbage the Into path must clear
	}
	fp.CurrentMapInto(got, act, rt)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cell %d: %v != %v", i, got[i], want[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("short buffer must panic")
		}
	}()
	fp.CurrentMapInto(make([]float64, 3), act, rt)
}

// TestSolveFieldMatchesSolve: the no-copy entry point returns the same
// bits as Solve and the same slice across calls (the warm field).
func TestSolveFieldMatchesSolve(t *testing.T) {
	fp := FloorplanAt(1)
	act := DefaultActivity()
	rt := make([]float64, len(fp.GroupTiles))
	for i := range rt {
		rt[i] = 0.4
	}
	cur := fp.CurrentMap(act, rt)
	a := NewMultigrid(fp.Grid)
	b := NewMultigrid(fp.Grid)
	va, ia := a.Solve(cur, 1e-6, 100)
	vb, ib := b.SolveField(cur, 1e-6, 100)
	if ia != ib {
		t.Fatalf("iterations %d != %d", ia, ib)
	}
	for i := range va {
		if va[i] != vb[i] {
			t.Fatalf("cell %d: %v != %v", i, va[i], vb[i])
		}
	}
	vb2, _ := b.SolveField(cur, 1e-6, 100)
	if &vb[0] != &vb2[0] {
		t.Error("SolveField must reuse the internal warm field, not copy")
	}
}
