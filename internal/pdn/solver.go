package pdn

import (
	"fmt"

	"aim/internal/runner"
)

// Solver computes the steady-state voltage map of a grid under a
// per-cell current draw. Implementations may keep internal state
// between calls (warm-start caches, level hierarchies, scratch
// buffers); a Solver instance is therefore NOT safe for concurrent
// use — give each goroutine its own.
type Solver interface {
	// Solve returns the voltage map and the number of iterations used
	// (sweeps for Gauss-Seidel, V-cycles for multigrid). It stops when
	// a full pass changes no cell by more than tol volts, or after
	// maxIter iterations.
	Solve(current []float64, tol float64, maxIter int) ([]float64, int)
}

// GaussSeidel is the retained reference solver: serial lexicographic
// relaxation, bit-identical to the historical Grid.Solve loop. It
// exists as the equivalence baseline for the multigrid solver and as
// the byte-stable default behind Fig. 16 / cmd/irmap rendering; new
// large-scale paths should prefer NewMultigrid.
type GaussSeidel struct {
	g *Grid
}

// NewGaussSeidel wraps a grid in the reference solver.
func NewGaussSeidel(g *Grid) *GaussSeidel { return &GaussSeidel{g: g} }

// Solve relaxes from the all-Vdd state. It panics if the current map
// does not match the grid size (the historical contract).
func (s *GaussSeidel) Solve(current []float64, tol float64, maxIter int) ([]float64, int) {
	g := s.g
	if len(current) != g.W*g.H {
		panic(fmt.Sprintf("pdn: current map size %d != %d", len(current), g.W*g.H))
	}
	st := g.stencil()
	v := make([]float64, g.W*g.H)
	for i := range v {
		v[i] = g.Vdd
	}
	padGV := g.Gpad * g.Vdd
	iter := 0
	for ; iter < maxIter; iter++ {
		if maxDelta := st.gsSweep(v, current, padGV); maxDelta < tol {
			iter++
			break
		}
	}
	return v, iter
}

// gsSweep is one lexicographic Gauss-Seidel sweep on the stencil
// kernel. The neighbour accumulation order (left, right, up, down,
// pad) and the division by the precomputed conductance sum reproduce
// the original branchy loop's floating-point results bit for bit; the
// kernel only removes the per-cell bound checks by splitting each row
// into edge cells and a branch-free interior.
func (s *stencil) gsSweep(v, current []float64, padGV float64) float64 {
	w, h := s.w, s.h
	gm := s.gmesh
	maxDelta := 0.0
	update := func(i int, sumGV float64) {
		if s.padG[i] != 0 {
			sumGV += padGV
		}
		if s.sumG[i] == 0 {
			return
		}
		nv := (sumGV - current[i]) / s.sumG[i]
		if d := nv - v[i]; d > maxDelta {
			maxDelta = d
		} else if -d > maxDelta {
			maxDelta = -d
		}
		v[i] = nv
	}
	for y := 0; y < h; y++ {
		row := y * w
		if y == 0 || y == h-1 {
			for x := 0; x < w; x++ {
				i := row + x
				sumGV := 0.0
				if x > 0 {
					sumGV += gm * v[i-1]
				}
				if x < w-1 {
					sumGV += gm * v[i+1]
				}
				if y > 0 {
					sumGV += gm * v[i-w]
				}
				if y < h-1 {
					sumGV += gm * v[i+w]
				}
				update(i, sumGV)
			}
			continue
		}
		{
			sumGV := gm*v[row+1] + gm*v[row-w] + gm*v[row+w]
			if w == 1 {
				sumGV = gm*v[row-w] + gm*v[row+w]
			}
			update(row, sumGV)
		}
		for x := 1; x < w-1; x++ {
			i := row + x
			update(i, gm*v[i-1]+gm*v[i+1]+gm*v[i-w]+gm*v[i+w])
		}
		if w > 1 {
			i := row + w - 1
			update(i, gm*v[i-1]+gm*v[i-w]+gm*v[i+w])
		}
	}
	return maxDelta
}

// parallelMinCells gates checkerboard parallelism: below this size the
// goroutine fan-out costs more than the sweep itself.
const parallelMinCells = 1 << 15

// coarsestMaxCells bounds the bottom of the multigrid hierarchy; a
// grid this small is solved by plain relaxation in microseconds.
const coarsestMaxCells = 32

// Multigrid is the production solver: a geometric V-cycle over the
// resistive mesh with a red-black Gauss-Seidel smoother, summed
// (current-conserving) restriction, bilinear prolongation, and a
// warm-start cache. Repeated solves with incrementally changing
// current maps — per-group Rtog sweeps, V-f calibration, transient
// stepping — start from the previous voltage field instead of all-Vdd,
// typically converging in a couple of V-cycles.
//
// Red-black sweeps fan out over internal/runner in row bands; cells of
// one color read only the other color, so the result is bit-identical
// for any worker count. A Multigrid keeps per-level scratch state and
// is not safe for concurrent use.
type Multigrid struct {
	g      *Grid
	levels []*stencil
	// rhs/err are per-level scratch: the right-hand side and the error
	// correction being solved for (err[0] is unused — level 0 updates
	// the voltage field directly).
	rhs [][]float64
	err [][]float64
	// v is the warm-start cache: the converged field of the previous
	// solve, used as the next initial guess while WarmStart is true.
	v []float64
	// Workers bounds the checkerboard sweep fan-out: 0 means one per
	// CPU (GOMAXPROCS), 1 forces serial sweeps. Grids below
	// parallelMinCells always sweep serially.
	Workers int
	// PreSmooth/PostSmooth are the red-black sweeps on each side of
	// the coarse-grid correction (defaults 2 and 2).
	PreSmooth, PostSmooth int
	// WarmStart enables the previous-solution cache (default true).
	WarmStart bool
}

// NewMultigrid builds the level hierarchy for a grid. Setup cost is a
// few fine-grid sweeps' worth; reuse the instance across solves to
// amortize it and to benefit from warm starts.
func NewMultigrid(g *Grid) *Multigrid {
	m := &Multigrid{g: g, PreSmooth: 2, PostSmooth: 2, WarmStart: true}
	st := g.stencil()
	for {
		m.levels = append(m.levels, st)
		m.rhs = append(m.rhs, make([]float64, st.w*st.h))
		m.err = append(m.err, make([]float64, st.w*st.h))
		cw, ch := coarseDims(st.w), coarseDims(st.h)
		if st.w*st.h <= coarsestMaxCells || (cw == st.w && ch == st.h) {
			break
		}
		st = st.coarsen()
	}
	return m
}

// Reset drops the warm-start cache; the next Solve starts from the
// all-Vdd field.
func (m *Multigrid) Reset() { m.v = nil }

// Solve runs V-cycles until a full cycle moves no cell by more than
// tol volts (the analogue of the Gauss-Seidel sweep criterion) or
// maxIter cycles elapse. It returns a copy of the voltage field and
// the number of cycles used.
func (m *Multigrid) Solve(current []float64, tol float64, maxIter int) ([]float64, int) {
	v, iter := m.SolveField(current, tol, maxIter)
	out := make([]float64, len(v))
	copy(out, v)
	return out, iter
}

// SolveField is Solve without the defensive copy: the returned slice
// is the solver's internal warm-start field, valid only until the next
// Solve/SolveField/Reset call on this instance. The per-cycle spatial
// drop estimators read the field immediately after each solve — one
// field copy per simulated cycle would dominate their allocation
// profile. Callers that retain the field must use Solve.
func (m *Multigrid) SolveField(current []float64, tol float64, maxIter int) ([]float64, int) {
	v, iter, _ := m.SolveFieldDelta(current, tol, maxIter, 0)
	return v, iter
}

// SolveFieldDelta is the incremental solve path: SolveField with a
// residual gate in front and an explicit convergence verdict behind.
// It assembles the right-hand side for the new current map, and when a
// warm field exists and holdTol > 0 it first measures how far that
// field sits from solving the new system — the largest single-cell
// Jacobi update the new injection would apply, an O(n) stencil pass
// against the ~8n point-updates of one V-cycle. Below holdTol the
// previous field already satisfies the new system to within tolerance,
// so it is returned unchanged with cycles 0. Otherwise V-cycles run
// exactly as in SolveField; the warm start means they work off only
// the residual the injection change induced.
//
// converged reports whether the final cycle moved no cell by more than
// tol; false means the iteration budget saturated without meeting
// tolerance (SolveField's bare count cannot tell a last-cycle
// convergence from saturation). holdTol = 0 disables the gate, making
// SolveFieldDelta bit-identical to SolveField by construction.
//
// Caveat: the gate is a pointwise residual measure. Smooth field error
// — the kind a small uniform shift of the whole injection map leaves in
// a warm field — produces near-zero local Jacobi updates, so the gate
// will hold a field whose global error is far larger than holdTol.
// Callers holding fields across genuinely changing injections must gate
// on their own injection-change metric (as irdrop.Spatial does) and use
// holdTol only to absorb exact-repeat or rough, localized perturbations.
func (m *Multigrid) SolveFieldDelta(current []float64, tol float64, maxIter int, holdTol float64) (v []float64, cycles int, converged bool) {
	g := m.g
	n := g.W * g.H
	if len(current) != n {
		panic(fmt.Sprintf("pdn: current map size %d != %d", len(current), n))
	}
	m.levels[0].rhs(g.Vdd, current, m.rhs[0])
	warm := m.v != nil && m.WarmStart
	if !warm {
		if m.v == nil {
			m.v = make([]float64, n)
		}
		for i := range m.v {
			m.v[i] = g.Vdd
		}
	}
	if warm && holdTol > 0 && m.levels[0].jacobiDelta(m.v, m.rhs[0]) < holdTol {
		return m.v, 0, true
	}
	iter := 0
	for ; iter < maxIter; iter++ {
		if delta := m.cycle(0, m.v, m.rhs[0], tol); delta < tol {
			return m.v, iter + 1, true
		}
	}
	return m.v, iter, false
}

// cycle runs one V-cycle at the given level and returns the largest
// change it applied to v (smoothing deltas and prolonged corrections
// combined).
func (m *Multigrid) cycle(l int, v, rhs []float64, tol float64) float64 {
	st := m.levels[l]
	if l == len(m.levels)-1 {
		// Coarsest level: relax to well below the requested tolerance
		// (the grid is at most coarsestMaxCells cells).
		delta := 0.0
		for i := 0; i < 500; i++ {
			delta = m.sweep(st, v, rhs, true)
			if delta < tol*1e-3 {
				break
			}
		}
		return delta
	}
	for i := 0; i < m.PreSmooth; i++ {
		m.sweep(st, v, rhs, false)
	}
	st.restrictResidual(v, rhs, m.rhs[l+1])
	ec := m.err[l+1]
	for i := range ec {
		ec[i] = 0
	}
	m.cycle(l+1, ec, m.rhs[l+1], tol)
	delta := st.prolongAdd(ec, v)
	for i := 0; i < m.PostSmooth; i++ {
		// Only the final polishing sweep needs the convergence delta;
		// the earlier ones run the delta-free kernel.
		if i < m.PostSmooth-1 {
			m.sweep(st, v, rhs, false)
		} else if d := m.sweep(st, v, rhs, true); d > delta {
			delta = d
		}
	}
	return delta
}

// sweep runs one full red-black sweep (both colors), fanning each
// color pass out over row bands when the level is large enough. With
// track false it skips delta bookkeeping and returns 0.
func (m *Multigrid) sweep(st *stencil, v, rhs []float64, track bool) float64 {
	workers := runner.Workers(m.Workers, st.h)
	if st.w*st.h < parallelMinCells || workers <= 1 {
		if !track {
			st.sweepFusedQuiet(v, rhs)
			return 0
		}
		return st.sweepFused(v, rhs)
	}
	maxDelta := 0.0
	for color := 0; color < 2; color++ {
		deltas := runner.Collect(workers, workers, func(b int) float64 {
			y0 := b * st.h / workers
			y1 := (b + 1) * st.h / workers
			if !track {
				st.sweepColorRowsQuiet(v, rhs, color, y0, y1)
				return 0
			}
			return st.sweepColorRows(v, rhs, color, y0, y1)
		})
		for _, d := range deltas {
			if d > maxDelta {
				maxDelta = d
			}
		}
	}
	return maxDelta
}
