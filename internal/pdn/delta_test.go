package pdn

import "testing"

// TestSolveFieldDeltaMatchesSolveField: with the residual gate disabled
// (holdTol 0) the incremental path must be SolveField bit for bit —
// same fields, same cycle counts — across a warm solve sequence on
// every geometry. This is the identity that lets SolveField delegate to
// SolveFieldDelta without touching any pinned output.
func TestSolveFieldDeltaMatchesSolveField(t *testing.T) {
	for _, tc := range solverGrids {
		ga := NewGrid(tc.w, tc.h, 0.75, tc.gmesh, tc.gpad, tc.pitch)
		gb := NewGrid(tc.w, tc.h, 0.75, tc.gmesh, tc.gpad, tc.pitch)
		ma := NewMultigrid(ga)
		mb := NewMultigrid(gb)
		for step := 0; step < 4; step++ {
			cur := randomCurrent(tc.w*tc.h, int64(11+step), 0.01)
			va, ia := ma.SolveField(cur, 1e-6, 200)
			vb, ib, conv := mb.SolveFieldDelta(cur, 1e-6, 200, 0)
			if ia != ib {
				t.Fatalf("%s step %d: %d cycles vs SolveField's %d", tc.name, step, ib, ia)
			}
			if !conv {
				t.Fatalf("%s step %d: delta path reported saturation at %d cycles", tc.name, step, ib)
			}
			for i := range va {
				if va[i] != vb[i] {
					t.Fatalf("%s step %d: cell %d differs: %v vs %v", tc.name, step, i, vb[i], va[i])
				}
			}
		}
	}
}

// TestSolveFieldDeltaHoldGate: a warm field that already satisfies the
// new system to within holdTol is returned unchanged with zero cycles;
// an injection change big enough to matter forces a real solve.
func TestSolveFieldDeltaHoldGate(t *testing.T) {
	g := NewGrid(64, 64, 0.75, 18, 45, 8)
	m := NewMultigrid(g)
	cur := randomCurrent(64*64, 3, 0.01)
	ref, _, conv := m.SolveFieldDelta(cur, 1e-6, 200, 1e-4)
	if !conv {
		t.Fatal("reference solve saturated")
	}
	held := make([]float64, len(ref))
	copy(held, ref)

	// Same injection again: the warm field is exact, the gate must hold.
	v, cycles, conv := m.SolveFieldDelta(cur, 1e-6, 200, 1e-4)
	if cycles != 0 || !conv {
		t.Fatalf("unchanged injection: %d cycles, converged %v; want 0, true", cycles, conv)
	}
	for i := range held {
		if v[i] != held[i] {
			t.Fatalf("held field mutated at cell %d: %v != %v", i, v[i], held[i])
		}
	}

	// A substantial injection step must blow through the gate.
	for i := range cur {
		cur[i] += 0.02
	}
	v, cycles, conv = m.SolveFieldDelta(cur, 1e-6, 200, 1e-4)
	if cycles == 0 {
		t.Fatal("large injection change was held")
	}
	if !conv {
		t.Fatalf("perturbed solve saturated after %d cycles", cycles)
	}
	moved := false
	for i := range held {
		if v[i] != held[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("solve after perturbation left the field untouched")
	}
}

// TestSolveFieldDeltaColdIgnoresHold: without a warm field there is
// nothing to hold — the first solve of a session must run even with the
// gate armed.
func TestSolveFieldDeltaColdIgnoresHold(t *testing.T) {
	g := NewGrid(32, 32, 0.75, 10, 50, 4)
	m := NewMultigrid(g)
	cur := randomCurrent(32*32, 5, 0.01)
	_, cycles, conv := m.SolveFieldDelta(cur, 1e-6, 200, 1e3)
	if cycles == 0 {
		t.Fatal("cold start held a nonexistent field")
	}
	if !conv {
		t.Fatalf("cold solve saturated after %d cycles", cycles)
	}
}

// TestSolveFieldDeltaReportsSaturation: an exhausted iteration budget
// surfaces as converged == false — the signal SolveStats.Saturated
// counts; SolveField's bare cycle count cannot express it.
func TestSolveFieldDeltaReportsSaturation(t *testing.T) {
	g := NewGrid(64, 64, 0.75, 18, 45, 8)
	m := NewMultigrid(g)
	cur := randomCurrent(64*64, 9, 0.01)
	_, cycles, conv := m.SolveFieldDelta(cur, 1e-15, 1, 0)
	if conv {
		t.Fatal("one V-cycle at tol 1e-15 claimed convergence")
	}
	if cycles != 1 {
		t.Fatalf("cycles = %d, want the full budget of 1", cycles)
	}
}
