package pdn

import (
	"fmt"
	"math"
)

// Transient extends the static mesh with per-cell capacitance — the
// decoupling capacitors and intrinsic device capacitance that govern
// *dynamic* IR-drop (§2.2: switching current charging/discharging
// capacitances). The paper's circuit-level comparison point (Graphcore
// Bow's deep-trench capacitors, §1) buys droop margin exactly this way;
// the transient solver lets the repository show the same effect: a
// current step produces a droop that overshoots the static solution
// and rings back, with more capacitance flattening the excursion.
type Transient struct {
	Grid *Grid
	// CapF is the per-cell capacitance in farads.
	CapF float64
}

// NewTransient wraps a grid with uniform per-cell capacitance.
func NewTransient(g *Grid, capF float64) *Transient {
	if capF <= 0 {
		panic("pdn: capacitance must be positive")
	}
	return &Transient{Grid: g, CapF: capF}
}

// MaxStableDt returns the explicit-Euler stability bound for the mesh:
// dt < C / Gtotal at the best-connected cell.
func (t *Transient) MaxStableDt() float64 {
	g := t.Grid
	gMax := 4*g.Gmesh + g.Gpad
	return t.CapF / gMax
}

// Solve integrates the mesh from the all-Vdd state under a
// time-varying current map: current(step) returns the per-cell draw at
// that step. It returns, for each probe cell index, the voltage trace
// over the run. The integration runs on the shared stencil kernel
// (same floating-point op order as the historical branchy loop, so
// traces are bit-identical).
func (t *Transient) Solve(current func(step int) []float64, dt float64, steps int, probes []int) [][]float64 {
	g := t.Grid
	if dt <= 0 || dt > t.MaxStableDt() {
		panic(fmt.Sprintf("pdn: dt %g outside stable range (0, %g]", dt, t.MaxStableDt()))
	}
	st := g.stencil()
	n := g.W * g.H
	v := make([]float64, n)
	for i := range v {
		v[i] = g.Vdd
	}
	next := make([]float64, n)
	traces := make([][]float64, len(probes))
	for i := range traces {
		traces[i] = make([]float64, 0, steps)
	}
	for s := 0; s < steps; s++ {
		cur := current(s)
		if len(cur) != n {
			panic("pdn: current map size mismatch")
		}
		st.eulerStep(v, next, cur, g.Vdd, dt, t.CapF)
		v, next = next, v
		for pi, p := range probes {
			traces[pi] = append(traces[pi], v[p])
		}
	}
	return traces
}

// eulerStep advances the RC mesh one explicit-Euler step: next = v +
// dt·flow/capF with flow the net current into each cell. Rows are
// segmented so interior cells run branch-free, preserving the original
// neighbour order (left, right, up, down, pad).
func (s *stencil) eulerStep(v, next, cur []float64, vdd, dt, capF float64) {
	w, h := s.w, s.h
	gm := s.gmesh
	cell := func(i int, flow, vi float64) {
		if s.padG[i] != 0 {
			flow += s.padG[i] * (vdd - vi)
		}
		next[i] = vi + dt*flow/capF
	}
	for y := 0; y < h; y++ {
		row := y * w
		if y == 0 || y == h-1 || w < 3 {
			for x := 0; x < w; x++ {
				i := row + x
				vi := v[i]
				flow := -cur[i]
				if x > 0 {
					flow += gm * (v[i-1] - vi)
				}
				if x < w-1 {
					flow += gm * (v[i+1] - vi)
				}
				if y > 0 {
					flow += gm * (v[i-w] - vi)
				}
				if y < h-1 {
					flow += gm * (v[i+w] - vi)
				}
				cell(i, flow, vi)
			}
			continue
		}
		{
			vi := v[row]
			cell(row, -cur[row]+gm*(v[row+1]-vi)+gm*(v[row-w]-vi)+gm*(v[row+w]-vi), vi)
		}
		up := v[row-w : row : row]
		cr := v[row : row+w : row+w]
		dn := v[row+w : row+2*w : row+2*w]
		for x := 1; x < w-1; x++ {
			i := row + x
			vi := cr[x]
			cell(i, -cur[i]+gm*(cr[x-1]-vi)+gm*(cr[x+1]-vi)+gm*(up[x]-vi)+gm*(dn[x]-vi), vi)
		}
		{
			i := row + w - 1
			vi := v[i]
			cell(i, -cur[i]+gm*(v[i-1]-vi)+gm*(v[i-w]-vi)+gm*(v[i+w]-vi), vi)
		}
	}
}

// StepResponse applies a current step (zero before stepAt, the given
// map after) and returns the probe traces — the classic droop
// waveform.
func (t *Transient) StepResponse(onCurrent []float64, stepAt, dt float64, steps int, probes []int) [][]float64 {
	n := t.Grid.W * t.Grid.H
	zero := make([]float64, n)
	return t.Solve(func(s int) []float64 {
		if float64(s)*dt < stepAt {
			return zero
		}
		return onCurrent
	}, dt, steps, probes)
}

// MinOf returns the deepest excursion of a trace, or NaN for an empty
// trace — the documented sentinel, instead of the historical
// out-of-range panic.
func MinOf(trace []float64) float64 {
	if len(trace) == 0 {
		return math.NaN()
	}
	m := trace[0]
	for _, v := range trace[1:] {
		if v < m {
			m = v
		}
	}
	return m
}
