package pdn

import "fmt"

// Transient extends the static mesh with per-cell capacitance — the
// decoupling capacitors and intrinsic device capacitance that govern
// *dynamic* IR-drop (§2.2: switching current charging/discharging
// capacitances). The paper's circuit-level comparison point (Graphcore
// Bow's deep-trench capacitors, §1) buys droop margin exactly this way;
// the transient solver lets the repository show the same effect: a
// current step produces a droop that overshoots the static solution
// and rings back, with more capacitance flattening the excursion.
type Transient struct {
	Grid *Grid
	// CapF is the per-cell capacitance in farads.
	CapF float64
}

// NewTransient wraps a grid with uniform per-cell capacitance.
func NewTransient(g *Grid, capF float64) *Transient {
	if capF <= 0 {
		panic("pdn: capacitance must be positive")
	}
	return &Transient{Grid: g, CapF: capF}
}

// MaxStableDt returns the explicit-Euler stability bound for the mesh:
// dt < C / Gtotal at the best-connected cell.
func (t *Transient) MaxStableDt() float64 {
	g := t.Grid
	gMax := 4*g.Gmesh + g.Gpad
	return t.CapF / gMax
}

// Solve integrates the mesh from the all-Vdd state under a
// time-varying current map: current(step) returns the per-cell draw at
// that step. It returns, for each probe cell index, the voltage trace
// over the run.
func (t *Transient) Solve(current func(step int) []float64, dt float64, steps int, probes []int) [][]float64 {
	g := t.Grid
	if dt <= 0 || dt > t.MaxStableDt() {
		panic(fmt.Sprintf("pdn: dt %g outside stable range (0, %g]", dt, t.MaxStableDt()))
	}
	n := g.W * g.H
	v := make([]float64, n)
	for i := range v {
		v[i] = g.Vdd
	}
	next := make([]float64, n)
	traces := make([][]float64, len(probes))
	for i := range traces {
		traces[i] = make([]float64, 0, steps)
	}
	for s := 0; s < steps; s++ {
		cur := current(s)
		if len(cur) != n {
			panic("pdn: current map size mismatch")
		}
		for y := 0; y < g.H; y++ {
			for x := 0; x < g.W; x++ {
				i := y*g.W + x
				flow := -cur[i]
				if x > 0 {
					flow += g.Gmesh * (v[i-1] - v[i])
				}
				if x < g.W-1 {
					flow += g.Gmesh * (v[i+1] - v[i])
				}
				if y > 0 {
					flow += g.Gmesh * (v[i-g.W] - v[i])
				}
				if y < g.H-1 {
					flow += g.Gmesh * (v[i+g.W] - v[i])
				}
				if g.pads[i] {
					flow += g.Gpad * (g.Vdd - v[i])
				}
				next[i] = v[i] + dt*flow/t.CapF
			}
		}
		v, next = next, v
		for pi, p := range probes {
			traces[pi] = append(traces[pi], v[p])
		}
	}
	return traces
}

// StepResponse applies a current step (zero before stepAt, the given
// map after) and returns the probe traces — the classic droop
// waveform.
func (t *Transient) StepResponse(onCurrent []float64, stepAt, dt float64, steps int, probes []int) [][]float64 {
	n := t.Grid.W * t.Grid.H
	zero := make([]float64, n)
	return t.Solve(func(s int) []float64 {
		if float64(s)*dt < stepAt {
			return zero
		}
		return onCurrent
	}, dt, steps, probes)
}

// MinOf returns the deepest excursion of a trace.
func MinOf(trace []float64) float64 {
	m := trace[0]
	for _, v := range trace[1:] {
		if v < m {
			m = v
		}
	}
	return m
}
