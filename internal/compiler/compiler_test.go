package compiler

import (
	"testing"

	"aim/internal/model"
	"aim/internal/pim"
)

const seed = 2025

func TestCompileBaselineResNet(t *testing.T) {
	net := model.ResNet18(seed)
	c := Compile(net, pim.DefaultConfig(), BaselineOptions())
	if len(c.Plans) != len(net.Layers) {
		t.Fatalf("plans = %d, want %d", len(c.Plans), len(net.Layers))
	}
	if len(c.Waves) == 0 {
		t.Fatal("no waves scheduled")
	}
	for _, w := range c.Waves {
		if len(w.Tasks) == 0 || len(w.Tasks) > pim.DefaultConfig().Macros() {
			t.Errorf("wave task count %d out of range", len(w.Tasks))
		}
		if w.Map == nil {
			t.Error("wave not mapped")
		}
		if w.Rounds < 1 {
			t.Errorf("wave rounds = %d", w.Rounds)
		}
	}
	if c.Stats.Average < 0.44 || c.Stats.Average > 0.56 {
		t.Errorf("baseline HR = %v", c.Stats.Average)
	}
}

func TestCompileAIMPipelineLowersHR(t *testing.T) {
	net := model.ResNet18(seed)
	cfg := pim.DefaultConfig()
	base := Compile(net, cfg, BaselineOptions())
	aim := Compile(net, cfg, DefaultOptions())
	if aim.Stats.Average >= base.Stats.Average {
		t.Errorf("AIM pipeline did not lower HR: %v -> %v", base.Stats.Average, aim.Stats.Average)
	}
	rel := (base.Stats.Average - aim.Stats.Average) / base.Stats.Average
	if rel < 0.25 {
		t.Errorf("LHR+WDS relative reduction = %.1f%%, want > 25%%", rel*100)
	}
}

func TestPerOpDeltaOverride(t *testing.T) {
	net := model.ResNet18(seed)
	opt := DefaultOptions()
	opt.PerOpDelta = map[string]int{"conv1": 16}
	c := Compile(net, pim.DefaultConfig(), opt)
	found := false
	for _, p := range c.Plans {
		if p.Layer.Name == "conv1" {
			found = true
			if p.Delta != 16 {
				t.Errorf("conv1 delta = %d, want 16", p.Delta)
			}
		} else if !p.Layer.Kind.InputDetermined() && p.Delta != 8 {
			t.Errorf("%s delta = %d, want default 8", p.Layer.Name, p.Delta)
		}
	}
	if !found {
		t.Fatal("conv1 missing")
	}
}

func TestNonPow2DeltaPanics(t *testing.T) {
	net := model.ResNet18(seed)
	opt := DefaultOptions()
	opt.WDSDelta = 12
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for δ=12")
		}
	}()
	Compile(net, pim.DefaultConfig(), opt)
}

func TestTransformerPlansMarkInputDetermined(t *testing.T) {
	net := model.GPT2(seed)
	c := Compile(net, pim.DefaultConfig(), DefaultOptions())
	qktSeen := false
	for _, p := range c.Plans {
		if p.Layer.Kind == model.QKT {
			qktSeen = true
			if p.Quant != nil || p.HR != 1.0 {
				t.Error("input-determined plan must carry no codes and HR sentinel 1.0")
			}
		}
	}
	if !qktSeen {
		t.Fatal("no QKT plan")
	}
	for _, w := range c.Waves {
		for _, task := range w.Tasks {
			if task.InputDetermined && task.Op == "" {
				t.Error("task metadata missing")
			}
		}
	}
}

func TestLargeLayersGetWaveRounds(t *testing.T) {
	net := model.Llama3(seed)
	c := Compile(net, pim.DefaultConfig(), BaselineOptions())
	multi := false
	for _, p := range c.Plans {
		want := (p.Layer.Elems() + pim.DefaultConfig().WeightsPerMacro() - 1) / pim.DefaultConfig().WeightsPerMacro()
		if want > pim.DefaultConfig().Macros() {
			if p.WaveRounds < 2 {
				t.Errorf("%s should need multiple rounds", p.Layer.Name)
			}
			multi = true
		}
	}
	if !multi {
		t.Skip("no layer larger than the chip in this zoo configuration")
	}
}

func TestSegmentsMatchCapacity(t *testing.T) {
	cfg := pim.DefaultConfig()
	for _, net := range model.All(seed) {
		c := Compile(net, cfg, BaselineOptions())
		for _, w := range c.Waves {
			total := 0
			for _, p := range w.Plans {
				total += p.Segments
			}
			if total != len(w.Tasks) {
				t.Errorf("%s: wave segments %d != tasks %d", net.Name, total, len(w.Tasks))
			}
			if total > cfg.Macros() {
				t.Errorf("%s: wave overflows chip: %d", net.Name, total)
			}
		}
	}
}

func TestAllStrategiesProduceValidMappings(t *testing.T) {
	net := model.ViT(seed)
	cfg := pim.DefaultConfig()
	for _, s := range []Strategy{SequentialMap, RandomMap, ZigzagMap, HRAwareMap} {
		opt := DefaultOptions()
		opt.Strategy = s
		// Keep HR-aware cheap in tests.
		c := Compile(net, cfg, opt)
		for wi, w := range c.Waves {
			if err := w.Map.Validate(len(w.Tasks)); err != nil {
				t.Errorf("%v wave %d: %v", s, wi, err)
			}
		}
	}
}

func TestStrategyString(t *testing.T) {
	if SequentialMap.String() != "sequential" || HRAwareMap.String() != "hr-aware" {
		t.Error("strategy names wrong")
	}
}

func TestQualitySurrogateStable(t *testing.T) {
	net := model.ViT(seed)
	c := Compile(net, pim.DefaultConfig(), DefaultOptions())
	q := c.Quality()
	if q < 79 || q > 83 {
		t.Errorf("ViT surrogate quality = %v, want ~81", q)
	}
}
