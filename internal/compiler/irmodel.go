package compiler

import (
	"aim/internal/irdrop"
	"aim/internal/pim"
)

// irdropModel aliases the IR-drop model type for local signatures.
type irdropModel = irdrop.Model

// modelForKind maps a macro family to its calibrated IR-drop model.
func modelForKind(k pim.MacroKind) irdrop.Model {
	if k == pim.APIM {
		return irdrop.APIMModel()
	}
	return irdrop.DPIMModel()
}
