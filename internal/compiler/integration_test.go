package compiler

import (
	"testing"

	"aim/internal/model"
	"aim/internal/pim"
	"aim/internal/quant"
	"aim/internal/tensor"
	"aim/internal/xrand"
)

// Cross-module integration: the codes the compiler deploys (LHR-tuned,
// WDS-shifted) must compute *numerically correct* results when loaded
// into the bit-serial PIM engine with its shift compensators — i.e.
// the whole offline pipeline preserves the matmul up to the baseline
// quantizer's rounding.
func TestCompiledCodesComputeExactlyOnEngine(t *testing.T) {
	net := model.ResNet18(2025)
	cfg := pim.Config{Kind: pim.DPIM, Groups: 1, MacrosPerGroup: 1, BanksPerMacro: 8, CellsPerBank: 32, WeightBits: 8}
	opt := DefaultOptions()
	opt.Strategy = SequentialMap
	c := Compile(net, pim.DefaultConfig(), opt)

	// Pick a conv plan with a WDS shift applied.
	var plan *LayerPlan
	for _, p := range c.Plans {
		if p.Delta > 0 && p.Layer.Name == "layer1.0.conv1" {
			plan = p
		}
	}
	if plan == nil {
		t.Fatal("no shifted plan found")
	}

	// Reconstruct the *unshifted* LHR codes the shift was applied to.
	lhr := quant.ApplyLHR(plan.Layer.Weights, 8, net.LHROptions()).After

	// Arrange codes as a small matrix and run both paths: the engine
	// with shifted weights + compensation, and the reference integer
	// matmul on the unshifted codes.
	cols := cfg.CellsPerBank
	rows := len(lhr.Codes.Data) / cols
	if rows > 24 {
		rows = 24
	}
	w := make([][]int32, rows)
	ref := tensor.NewInt(8, rows, cols)
	clampRisk := false
	for r := 0; r < rows; r++ {
		w[r] = make([]int32, cols)
		for cc := 0; cc < cols; cc++ {
			v := lhr.Codes.Data[r*cols+cc]
			if int(v)+plan.Delta > 127 {
				clampRisk = true
			}
			w[r][cc] = v
			ref.Set(v, r, cc)
		}
	}
	e := pim.NewEngine(cfg, w, plan.Delta)

	g := xrand.New(9)
	x := make([]int32, cols)
	xt := tensor.NewInt(8, cols, 1)
	for i := range x {
		x[i] = int32(g.Intn(255) - 127)
		xt.Set(x[i], i, 0)
	}
	got := e.MatVec(x, 8)
	want := tensor.MatMulInt(ref, xt)
	for r := 0; r < rows; r++ {
		if got[r] != want[r][0] {
			if clampRisk && e.ClampedWeights() > 0 {
				t.Skipf("clamped codes present (%d); exactness not expected", e.ClampedWeights())
			}
			t.Fatalf("row %d: engine %d != reference %d", r, got[r], want[r][0])
		}
	}
}

// The deployed HR the compiler records per plan matches what the
// engine actually sees after loading (padding aside).
func TestPlanHRMatchesEngineHR(t *testing.T) {
	net := model.ResNet18(2025)
	opt := DefaultOptions()
	opt.Strategy = SequentialMap
	c := Compile(net, pim.DefaultConfig(), opt)
	var plan *LayerPlan
	for _, p := range c.Plans {
		if p.Layer.Name == "layer2.0.conv1" {
			plan = p
		}
	}
	if plan == nil {
		t.Fatal("plan missing")
	}
	cols := 32
	rows := len(plan.Quant.Codes.Data) / cols
	w := make([][]int32, rows)
	for r := 0; r < rows; r++ {
		w[r] = plan.Quant.Codes.Data[r*cols : (r+1)*cols]
	}
	cfg := pim.Config{Kind: pim.DPIM, Groups: 1, MacrosPerGroup: 1, BanksPerMacro: 8, CellsPerBank: 32, WeightBits: 8}
	// Load unshifted (delta already baked into plan.Quant).
	e := pim.NewEngine(cfg, w, 0)
	// Engine pads partial tiles with zero weights, which can only dilute
	// HR downward; with row counts divisible by the bank group the two
	// agree exactly.
	if rows%cfg.BanksPerMacro == 0 {
		if diff := e.HR() - plan.HR; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("engine HR %v != plan HR %v", e.HR(), plan.HR)
		}
	} else if e.HR() > plan.HR+1e-9 {
		t.Errorf("padded engine HR %v above plan HR %v", e.HR(), plan.HR)
	}
}
