// Package compiler is the software stack that prepares a workload for
// the AIM-enabled PIM chip (paper Fig. 6a): it quantizes weights (with
// the LHR regularizer), applies the WDS pass with per-operator δ
// configuration (Algorithm 1), segments operators into macro-sized
// tasks, schedules them into waves that fit the chip, and invokes the
// selected task-mapping strategy.
package compiler

import (
	"fmt"

	"aim/internal/mapping"
	"aim/internal/model"
	"aim/internal/pim"
	"aim/internal/quant"
	"aim/internal/vf"
	"aim/internal/xrand"
)

// RuntimeOperandHR is the typical Hamming rate of runtime-generated
// attention operands (QKT/SV): unlike weights it cannot be optimized
// offline, and profiling puts it a little above the 0.5 of symmetric
// data because attention scores and values skew positive-small after
// softmax scaling.
const RuntimeOperandHR = 0.55

// Strategy selects the task mapper.
type Strategy int

const (
	// SequentialMap fills macros in order (baseline).
	SequentialMap Strategy = iota
	// RandomMap shuffles tasks over macros.
	RandomMap
	// ZigzagMap walks the group grid boustrophedon.
	ZigzagMap
	// HRAwareMap is the paper's Algorithm 3 simulated annealing.
	HRAwareMap
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case SequentialMap:
		return "sequential"
	case RandomMap:
		return "random"
	case ZigzagMap:
		return "zigzag"
	case HRAwareMap:
		return "hr-aware"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Options configures a compilation.
type Options struct {
	Bits   int
	UseLHR bool
	// WDSDelta is the default δ (§5.2.1: default 8; 0 disables WDS).
	WDSDelta int
	// PerOpDelta overrides δ for named operators ("users can explicitly
	// specify different δ values for each operator").
	PerOpDelta map[string]int
	Strategy   Strategy
	Mode       vf.Mode
	Seed       int64
}

// DefaultOptions is the full AIM software pipeline: LHR + WDS(δ=8) +
// HR-aware mapping.
func DefaultOptions() Options {
	return Options{Bits: 8, UseLHR: true, WDSDelta: 8, Strategy: HRAwareMap, Mode: vf.LowPower, Seed: 1}
}

// BaselineOptions is the no-AIM software path: plain quantization and
// sequential mapping.
func BaselineOptions() Options {
	return Options{Bits: 8, Strategy: SequentialMap, Mode: vf.LowPower, Seed: 1}
}

// LayerPlan is one operator after quantization and segmentation.
type LayerPlan struct {
	Layer *model.Layer
	// Quant holds the deployed codes (nil for input-determined ops).
	Quant *quant.Quantized
	// HR is the deployed Hamming rate (1.0 sentinel for
	// input-determined operators: worst case must be assumed).
	HR float64
	// Delta is the WDS δ applied (0 if none).
	Delta int
	// Segments is the number of macro tasks the operator occupies in
	// its wave.
	Segments int
	// WaveRounds is how many full passes of its segments the operator
	// needs when it exceeds one wave's capacity share.
	WaveRounds int
}

// Wave is a set of operators co-resident on the chip.
type Wave struct {
	Plans []*LayerPlan
	Tasks []mapping.Task
	// Map is the chosen task-to-macro assignment.
	Map *mapping.Mapping
	// Rounds is the wave's execution length multiplier: the largest
	// WaveRounds among its operators.
	Rounds int
}

// Compiled is the full compilation artifact.
type Compiled struct {
	Net     *model.Network
	Options Options
	Plans   []*LayerPlan
	Waves   []*Wave
	Stats   model.HRStats
	// Drift feeds the accuracy surrogate.
	Drift float64
}

// Compile runs the offline pipeline on a network.
func Compile(net *model.Network, cfg pim.Config, opt Options) *Compiled {
	if opt.Bits == 0 {
		opt.Bits = 8
	}
	c := &Compiled{Net: net, Options: opt}
	lhrOpt := net.LHROptions()
	var lqs []model.LayerQuant
	for _, l := range net.Layers {
		plan := &LayerPlan{Layer: l, HR: 1.0}
		if !l.Kind.InputDetermined() {
			base := quant.Quantize(l.Weights, opt.Bits)
			q := base
			drift := 0.0
			if opt.UseLHR {
				res := quant.ApplyLHR(l.Weights, opt.Bits, lhrOpt)
				q = res.After
				drift = res.Drift
			}
			ovf := 0.0
			if d := deltaFor(l.Name, opt); d > 0 {
				if !quant.IsPow2(d) {
					panic(fmt.Sprintf("compiler: δ=%d for %s is not a power of two", d, l.Name))
				}
				shifted, nOv := quant.ShiftWeights(q, d)
				q = shifted
				plan.Delta = d
				if n := len(base.Codes.Data); n > 0 {
					ovf = float64(nOv) / float64(n)
				}
			}
			plan.Quant = q
			plan.HR = q.HR()
			lqs = append(lqs, model.LayerQuant{Layer: l, Q: q, Drift: drift, OverflowFrac: ovf})
		}
		c.Plans = append(c.Plans, plan)
	}
	st := model.Stats(lqs)
	c.Stats = st
	c.Drift = st.MeanDrift
	c.Waves = schedule(c.Plans, cfg)
	mapper := newMapper(cfg, opt)
	for _, w := range c.Waves {
		w.Map = mapper(w.Tasks)
		if err := w.Map.Validate(len(w.Tasks)); err != nil {
			panic(err)
		}
	}
	return c
}

func deltaFor(name string, opt Options) int {
	if d, ok := opt.PerOpDelta[name]; ok {
		return d
	}
	return opt.WDSDelta
}

// schedule segments operators into macro tasks and packs them into
// waves. Each operator asks for ceil(weights / macro capacity) macros;
// operators larger than the whole chip run in multiple rounds of a
// full-chip wave. Operators are packed in network order, starting a
// new wave when the current one cannot fit the next operator.
func schedule(plans []*LayerPlan, cfg pim.Config) []*Wave {
	capacity := cfg.Macros()
	perMacro := cfg.WeightsPerMacro()
	cur := &Wave{}
	used := 0
	var waves []*Wave
	flush := func() {
		if len(cur.Plans) > 0 {
			waves = append(waves, cur)
			cur = &Wave{}
			used = 0
		}
	}
	for _, p := range plans {
		elems := p.Layer.Elems()
		seg := (elems + perMacro - 1) / perMacro
		if seg < 1 {
			seg = 1
		}
		p.WaveRounds = 1
		if seg > capacity {
			p.WaveRounds = (seg + capacity - 1) / capacity
			seg = capacity
		}
		p.Segments = seg
		if used+seg > capacity {
			flush()
		}
		opID := len(cur.Plans)
		taskHR := p.HR
		if p.Layer.Kind.InputDetermined() {
			// Safe-level selection must assume the worst (EffectiveHR
			// returns 1), but the *actual* activity of QKT/SV operands
			// follows the Hamming statistics of runtime-produced data.
			taskHR = RuntimeOperandHR
		}
		for s := 0; s < seg; s++ {
			cur.Tasks = append(cur.Tasks, mapping.Task{
				Op:              p.Layer.Name,
				OpID:            opID,
				HR:              taskHR,
				InputDetermined: p.Layer.Kind.InputDetermined(),
			})
		}
		cur.Plans = append(cur.Plans, p)
		if p.WaveRounds > cur.Rounds {
			cur.Rounds = p.WaveRounds
		}
		used += seg
	}
	flush()
	return waves
}

// newMapper returns the mapping function for the selected strategy.
func newMapper(cfg pim.Config, opt Options) func([]mapping.Task) *mapping.Mapping {
	switch opt.Strategy {
	case SequentialMap:
		return func(tasks []mapping.Task) *mapping.Mapping { return mapping.Sequential(tasks, cfg) }
	case ZigzagMap:
		return func(tasks []mapping.Task) *mapping.Mapping { return mapping.Zigzag(tasks, cfg) }
	case RandomMap:
		rng := xrand.NewNamed(opt.Seed, "compiler/random-map")
		return func(tasks []mapping.Task) *mapping.Mapping { return mapping.Random(tasks, cfg, rng) }
	case HRAwareMap:
		return func(tasks []mapping.Task) *mapping.Mapping {
			eval := mapping.NewEvaluator(cfg, modelFor(cfg), opt.Mode, xrand.NewNamed(opt.Seed, "compiler/eval"))
			rng := xrand.NewNamed(opt.Seed, "compiler/sa")
			best, _ := mapping.HRAware(tasks, eval, rng, mapping.DefaultSAOptions())
			return best
		}
	default:
		panic(fmt.Sprintf("compiler: unknown strategy %d", int(opt.Strategy)))
	}
}

// modelFor picks the IR-drop model matching the macro kind.
func modelFor(cfg pim.Config) (m irdropModel) {
	return modelForKind(cfg.Kind)
}

// Quality returns the surrogate task quality of the compiled network.
func (c *Compiled) Quality() float64 {
	return c.Net.Profile.Acc.AfterDrift(c.Drift)
}
