package panicpublic

import "errors"

// ParseErr is the compliant boundary: errors, not panics.
func ParseErr(s string) (int, error) {
	if s == "" {
		return 0, errors.New("panicpublic: empty input")
	}
	return len(s), nil
}

// Guarded calls a recover-protected helper; the barrier keeps the
// panic out of the public graph, so nothing is reported.
func Guarded() error { return guarded() }

func guarded() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = errors.New("recovered")
		}
	}()
	panic("contained")
}
