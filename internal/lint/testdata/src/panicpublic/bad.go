package panicpublic

// Parse is exported and reaches mustParse's panic — the
// no-panic-public rule must flag the panic site.
func Parse(s string) int { return mustParse(s) }

func mustParse(s string) int {
	if s == "" {
		panic("panicpublic: empty input")
	}
	return len(s)
}
