package nakedgo

// Pool is the compliant shape: work routes through a pool whose merge
// order is deterministic (aim/internal/runner in the real tree).
type Pool interface {
	Map(n int, fn func(i int))
}

// FanOut submits shards to the injected pool.
func FanOut(p Pool, n int, fn func(i int)) { p.Map(n, fn) }
