package nakedgo

// Fire launches an untracked goroutine: no bounded pool, no
// deterministic merge — the no-naked-go rule must flag it.
func Fire(work func()) {
	go work()
}
