package maprange

import (
	"fmt"
	"io"
	"sort"
)

// RenderSorted is the compliant shape: collect, sort, then write.
func RenderSorted(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}
