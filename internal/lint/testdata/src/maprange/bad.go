package maprange

import (
	"fmt"
	"io"
)

// Render writes rows straight out of map iteration: the byte order
// changes run to run — the no-map-range-render rule must flag it.
func Render(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// Collect accumulates keys in iteration order and never sorts them, so
// the nondeterminism escapes to the caller — also flagged.
func Collect(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
