package allowbad

import "time"

// Clock carries two defective annotations: one with no reason, one
// naming an unknown rule. Neither suppresses, both are findings, and
// the wall-clock read itself still surfaces.
func Clock() time.Time {
	//aimlint:allow no-wallclock
	return time.Now() //aimlint:allow no-wall-clock — rule name is wrong
}
