package globalrand

import "math/rand"

// Draw uses the process-global generator: unseeded and shared with
// every other caller — the no-global-rand rule must flag the import.
func Draw() float64 { return rand.Float64() }
