package globalrand

// Stream is the compliant shape: draws come from an injected named
// stream (aim/internal/xrand in the real tree).
type Stream interface {
	Float64() float64
}

// DrawFrom consumes the caller's pinned stream.
func DrawFrom(s Stream) float64 { return s.Float64() }
