package fmtprint

import "fmt"

// Report prints from a library package — the no-fmt-print rule must
// flag both the fmt call and the builtin.
func Report(n int) {
	fmt.Println("count:", n)
	println("debug:", n)
}
