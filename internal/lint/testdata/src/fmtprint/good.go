package fmtprint

import "fmt"

// Describe is the compliant shape: the library returns the string and
// the caller owns the streams.
func Describe(n int) string {
	return fmt.Sprintf("count: %d", n)
}
