package allowstale

// Answer has nothing to suppress; the allow below is stale and must be
// reported so dead annotations cannot rot in place.
//
//aimlint:allow no-wallclock — there is no wall-clock read here
func Answer() int { return 42 }
