package wallclock

import "time"

// Elapsed is deliberately nondeterministic: three wall-clock reads the
// no-wallclock rule must flag.
func Elapsed() time.Duration {
	start := time.Now()
	<-time.Tick(time.Millisecond)
	return time.Since(start)
}
