package wallclock

import "time"

// Stamp is the compliant shape: the clock is an input, so tests and
// deterministic callers inject a fake.
type Stamp struct {
	Clock func() time.Time
}

// At reads the injected clock, never the wall.
func (s Stamp) At() time.Time { return s.Clock() }
