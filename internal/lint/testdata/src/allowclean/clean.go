package allowclean

import "time"

// Uptime measures real elapsed time for a metrics line; the allow
// documents why the wall-clock read is safe, so nothing is reported.
func Uptime(started time.Time) time.Duration {
	return time.Since(started) //aimlint:allow no-wallclock — metrics-only: feeds a human-facing uptime line, never result bytes
}
