package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Rule is one named check with a one-line contract.
type Rule struct {
	Name string
	Doc  string
	run  func(p *pass)
}

// rules is the registry, in documentation order.
var rules = []Rule{
	{
		Name: "no-wallclock",
		Doc:  "time.Now/Since/Tick outside examples/ — deterministic code takes time as input; metrics-only uses carry an allow",
		run:  runNoWallclock,
	},
	{
		Name: "no-global-rand",
		Doc:  "math/rand imported outside internal/xrand — every draw must come from a named, pinned xrand stream",
		run:  runNoGlobalRand,
	},
	{
		Name: "no-map-range-render",
		Doc:  "range over a map feeding rendered bytes or an unsorted accumulator — iteration order leaks into output",
		run:  runNoMapRangeRender,
	},
	{
		Name: "no-naked-go",
		Doc:  "go statement outside internal/runner and internal/serve — concurrency routes through the deterministic pool",
		run:  runNoNakedGo,
	},
	{
		Name: "no-panic-public",
		Doc:  "panic reachable from an exported function of the root aim package or a cmd/* entry point — boundaries return errors",
		run:  runNoPanicPublic,
	},
	{
		Name: "no-fmt-print",
		Doc:  "fmt.Print*/println in a library package — libraries return bytes or take writers, CLIs own stdout",
		run:  runNoFmtPrint,
	},
}

// Rules returns the registry for documentation and flag validation.
func Rules() []Rule { return rules }

// RuleNames returns the registry's names in order.
func RuleNames() []string {
	names := make([]string, len(rules))
	for i, r := range rules {
		names[i] = r.Name
	}
	return names
}

// resolveRules maps a name subset to registry entries; nil means all.
func resolveRules(names []string) ([]Rule, error) {
	if len(names) == 0 {
		return rules, nil
	}
	byName := map[string]Rule{}
	for _, r := range rules {
		byName[r.Name] = r
	}
	var out []Rule
	for _, n := range names {
		r, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown rule %q (known: %s)", n, strings.Join(RuleNames(), ", "))
		}
		out = append(out, r)
	}
	return out, nil
}

// inExamples reports whether the package lives under examples/ —
// user-copyable demos outside the determinism boundary.
func (p *pass) inExamples() bool {
	return p.relDir == "examples" || strings.HasPrefix(p.relDir, "examples/")
}

// isPoolPackage reports whether the package is one of the two that own
// goroutines: the deterministic worker pool and the serving runtime
// built on it.
func (p *pass) isPoolPackage() bool {
	return strings.HasSuffix(p.path, "internal/runner") || strings.HasSuffix(p.path, "internal/serve")
}

// isPublicBoundary reports whether the package is the module root (the
// public aim API) or a command under cmd/ — the surfaces PR 4 made
// panic-free.
func (p *pass) isPublicBoundary() bool {
	return p.relDir == "." || p.relDir == "cmd" || strings.HasPrefix(p.relDir, "cmd/")
}

// no-wallclock: time.Now, time.Since and time.Tick are banned outside
// examples/. The deterministic packages (sim, experiments, pdn, pim,
// stream, irdrop, mapping, core, booster, vf, fxp, quant, tensor,
// planstore) must not read the clock at all; serving metrics, limiter
// clocks and bench harnesses document their wall-clock reads with an
// allow so the exception is visible at the call site.
func runNoWallclock(p *pass) {
	if p.inExamples() {
		return
	}
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if p.isPkgFunc(sel, "time", "Now", "Since", "Tick") {
				p.report(sel.Pos(), "no-wallclock",
					"time.%s reads the wall clock; deterministic code takes time as input (inject a clock, or annotate a metrics-only use)",
					sel.Sel.Name)
			}
			return true
		})
	}
}

// no-global-rand: importing math/rand anywhere but internal/xrand
// bypasses the named-stream seeding that keeps experiment tables
// byte-identical across runs, machines and worker counts.
func runNoGlobalRand(p *pass) {
	if strings.HasSuffix(p.path, "internal/xrand") {
		return
	}
	for _, f := range p.files {
		for _, imp := range f.Imports {
			switch imp.Path.Value {
			case `"math/rand"`, `"math/rand/v2"`:
				p.report(imp.Pos(), "no-global-rand",
					"import %s bypasses internal/xrand's pinned draw order; derive a named stream with xrand.NewNamed instead",
					imp.Path.Value)
			}
		}
	}
}

// no-naked-go: a bare go statement outside internal/runner and
// internal/serve sidesteps the bounded pool whose index-order merge is
// what makes parallel output bit-identical to serial.
func runNoNakedGo(p *pass) {
	if p.isPoolPackage() {
		return
	}
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				p.report(g.Pos(), "no-naked-go",
					"go statement bypasses internal/runner's deterministic pool; use runner.Map/Collect (or annotate infrastructure concurrency)")
			}
			return true
		})
	}
}

// no-fmt-print: fmt.Print/Printf/Println and the predeclared
// print/println write to process-global streams. Library packages
// return strings or take io.Writers; only package main owns stdout.
func runNoFmtPrint(p *pass) {
	if p.pkgName == "main" {
		return
	}
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if p.isPkgFunc(call.Fun, "fmt", "Print", "Printf", "Println") {
				p.report(call.Pos(), "no-fmt-print",
					"fmt.%s writes to process-global stdout from a library; return the string or take an io.Writer",
					p.funcOf(call.Fun).Name())
			}
			if p.isBuiltin(call.Fun, "println") || p.isBuiltin(call.Fun, "print") {
				p.report(call.Pos(), "no-fmt-print",
					"builtin println writes to stderr from a library; return the string or take an io.Writer")
			}
			return true
		})
	}
}

// no-map-range-render: a range over a map inside rendering code makes
// output order depend on Go's randomized map iteration. The rule fires
// when the loop body (including locally-defined closures it calls)
// either writes bytes — fmt.Fprint*, io.WriteString, Write*/Encode
// methods, strconv.Append* — or appends to a slice that the function
// never sorts afterwards. The compliant shape is collect-keys,
// sort, then iterate the slice; that idiom is recognized and not
// flagged.
func runNoMapRangeRender(p *pass) {
	for _, f := range p.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			p.checkMapRanges(fd)
		}
	}
}

// checkMapRanges analyzes one function body for map-order leaks.
func (p *pass) checkMapRanges(fd *ast.FuncDecl) {
	closures := p.localClosures(fd.Body)
	sorted := p.sortedSlices(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, ok := t.Underlying().(*types.Map); !ok {
			return true
		}
		writes, appended := p.scanRangeBody(rng.Body, closures)
		if writes {
			p.report(rng.Pos(), "no-map-range-render",
				"map iteration order reaches rendered bytes; collect the keys, sort, then write")
			return true
		}
		var unsorted []string
		for obj := range appended {
			if !sorted[obj] {
				unsorted = append(unsorted, obj.Name())
			}
		}
		if len(unsorted) > 0 {
			sort.Strings(unsorted)
			p.report(rng.Pos(), "no-map-range-render",
				"map iteration appends to %s in nondeterministic order and the slice is never sorted in this function",
				strings.Join(unsorted, ", "))
		}
		return true
	})
}

// localClosures maps identifiers bound to function literals in this
// body (add := func(...){...}; var add = func(...){...}), so a range
// body calling a local helper is analyzed through it.
func (p *pass) localClosures(body *ast.BlockStmt) map[types.Object]*ast.FuncLit {
	out := map[types.Object]*ast.FuncLit{}
	bind := func(id *ast.Ident, rhs ast.Expr) {
		lit, ok := rhs.(*ast.FuncLit)
		if !ok {
			return
		}
		if obj := p.info.Defs[id]; obj != nil {
			out[obj] = lit
		} else if obj := p.info.Uses[id]; obj != nil {
			out[obj] = lit
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i := range st.Lhs {
				if i >= len(st.Rhs) {
					break
				}
				if id, ok := st.Lhs[i].(*ast.Ident); ok {
					bind(id, st.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i := range st.Names {
				if i >= len(st.Values) {
					break
				}
				bind(st.Names[i], st.Values[i])
			}
		}
		return true
	})
	return out
}

// sortedSlices collects every identifier the function hands to a
// sort.* or slices.Sort* call — the second half of the
// collect-then-sort idiom.
func (p *pass) sortedSlices(body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := p.funcOf(call.Fun)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if pkg := fn.Pkg().Path(); pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok {
				if obj := p.info.Uses[id]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// scanRangeBody walks a map-range body — following calls into local
// closures one level deep — and reports whether it writes bytes, plus
// the set of slice variables it appends to.
func (p *pass) scanRangeBody(body ast.Node, closures map[types.Object]*ast.FuncLit) (writes bool, appended map[types.Object]bool) {
	appended = map[types.Object]bool{}
	var scan func(n ast.Node, depth int)
	scan = func(n ast.Node, depth int) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.CallExpr:
				if p.isWriteCall(st) {
					writes = true
				}
				if depth < 1 {
					if id, ok := st.Fun.(*ast.Ident); ok {
						if lit, ok := closures[p.info.Uses[id]]; ok {
							scan(lit.Body, depth+1)
						}
					}
				}
			case *ast.AssignStmt:
				for i := range st.Rhs {
					call, ok := st.Rhs[i].(*ast.CallExpr)
					if !ok || !p.isBuiltin(call.Fun, "append") {
						continue
					}
					if i >= len(st.Lhs) {
						break
					}
					if id, ok := st.Lhs[i].(*ast.Ident); ok {
						if obj := p.info.Uses[id]; obj != nil {
							appended[obj] = true
						} else if obj := p.info.Defs[id]; obj != nil {
							appended[obj] = true
						}
					}
				}
			}
			return true
		})
	}
	scan(body, 0)
	return writes, appended
}

// isWriteCall reports whether a call renders bytes: fmt.Fprint*,
// io.WriteString, strconv.Append*, or a method named like a writer or
// encoder (Write, WriteString, WriteByte, WriteRune, Encode).
func (p *pass) isWriteCall(call *ast.CallExpr) bool {
	fn := p.funcOf(call.Fun)
	if fn == nil {
		return false
	}
	name := fn.Name()
	if fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "fmt":
			if strings.HasPrefix(name, "Fprint") {
				return true
			}
		case "io":
			if name == "WriteString" {
				return true
			}
		case "strconv":
			if strings.HasPrefix(name, "Append") {
				return true
			}
		}
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch name {
		case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
			return true
		}
	}
	return false
}

// no-panic-public: the PR 4 convention — the public aim API and every
// command return errors, never panic. The rule builds the package's
// static same-package call graph and reports each panic statement
// reachable from an exported function (or main). A function that uses
// recover is treated as a boundary and not traversed. Documented
// sentinel panics carry an allow at the panic site.
func runNoPanicPublic(p *pass) {
	if !p.isPublicBoundary() {
		return
	}
	type funcInfo struct {
		decl     *ast.FuncDecl
		panics   []ast.Node
		callees  []types.Object
		recovers bool
	}
	infos := map[types.Object]*funcInfo{}
	var order []types.Object
	for _, f := range p.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := p.info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			fi := &funcInfo{decl: fd}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					if id, ok := n.(*ast.Ident); ok && p.isBuiltin(id, "recover") {
						fi.recovers = true
					}
					return true
				}
				if p.isBuiltin(call.Fun, "panic") {
					fi.panics = append(fi.panics, call)
					return true
				}
				if fn := p.funcOf(call.Fun); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == p.path {
					fi.callees = append(fi.callees, fn)
				}
				return true
			})
			infos[obj] = fi
			order = append(order, obj)
		}
	}

	// entryName sorts exported entry points by name so attribution is
	// deterministic: each reachable panic is reported once, blamed on
	// the alphabetically first entry that reaches it.
	var entries []types.Object
	for _, obj := range order {
		name := infos[obj].decl.Name.Name
		if ast.IsExported(name) || name == "main" {
			entries = append(entries, obj)
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		return entries[i].Name() < entries[j].Name()
	})

	blamed := map[ast.Node]string{}
	for _, entry := range entries {
		seen := map[types.Object]bool{}
		var visit func(obj types.Object)
		visit = func(obj types.Object) {
			if seen[obj] {
				return
			}
			seen[obj] = true
			fi := infos[obj]
			if fi == nil || fi.recovers {
				return
			}
			for _, site := range fi.panics {
				if _, ok := blamed[site]; !ok {
					blamed[site] = entry.Name()
				}
			}
			for _, callee := range fi.callees {
				visit(callee)
			}
		}
		visit(entry)
	}

	// Report in source order: walk the recorded panic sites per file.
	for _, obj := range order {
		for _, site := range infos[obj].panics {
			if entry, ok := blamed[site]; ok {
				p.report(site.Pos(), "no-panic-public",
					"panic reachable from exported %s; public boundaries return errors (or annotate a documented sentinel)", entry)
			}
		}
	}
}
