package lint

import (
	"go/ast"
	"go/token"
	"strings"
	"unicode"
)

// allowMarker introduces an inline suppression:
//
//	//aimlint:allow <rule> — <reason>
//
// on the offending line or the line immediately above it. The reason
// separator may be an em/en dash, "--", or ":".
const allowMarker = "//aimlint:allow"

// allow is one parsed annotation.
type allow struct {
	file   string
	line   int
	rule   string
	reason string
	// used is set when the allow suppressed at least one finding; an
	// unused allow is stale and reported.
	used bool
	// problem is non-empty for a malformed annotation (no rule, empty
	// reason); malformed allows never suppress anything.
	problem string
}

// parseAllows extracts every allow annotation from a parsed file.
func parseAllows(fset *token.FileSet, f *ast.File) []*allow {
	var out []*allow
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, allowMarker)
			if !ok {
				continue
			}
			// "//aimlint:allowance" is not an annotation.
			if rest != "" && !unicode.IsSpace(rune(rest[0])) {
				continue
			}
			pos := fset.Position(c.Pos())
			a := &allow{file: pos.Filename, line: pos.Line}
			rest = strings.TrimSpace(rest)
			if rest == "" {
				a.problem = "allow annotation names no rule (want //aimlint:allow <rule> — <reason>)"
				out = append(out, a)
				continue
			}
			a.rule, rest, _ = strings.Cut(rest, " ")
			a.reason = strings.TrimLeftFunc(rest, func(r rune) bool {
				return r == '—' || r == '–' || r == '-' || r == ':' || unicode.IsSpace(r)
			})
			if !knownRule(a.rule) {
				a.problem = "allow annotation names unknown rule " + quote(a.rule) + " (known: " + strings.Join(RuleNames(), ", ") + ")"
			} else if a.reason == "" {
				a.problem = "allow annotation for " + a.rule + " gives no reason; say why the exception is safe"
			}
			out = append(out, a)
		}
	}
	return out
}

func knownRule(name string) bool {
	for _, r := range rules {
		if r.Name == name {
			return true
		}
	}
	return false
}

func quote(s string) string { return `"` + s + `"` }

// applyAllows suppresses findings covered by a well-formed allow on
// the same or preceding line, then appends findings for every
// malformed allow and — for rules that actually ran — every stale one.
// Findings about the annotations themselves carry the pseudo-rule
// "allow", so the annotation layer polices itself.
func applyAllows(findings []Finding, allows []*allow, enabled []Rule) []Finding {
	byFile := map[string][]*allow{}
	for _, a := range allows {
		byFile[a.file] = append(byFile[a.file], a)
	}
	ran := map[string]bool{}
	for _, r := range enabled {
		ran[r.Name] = true
	}

	var kept []Finding
	for _, f := range findings {
		suppressed := false
		for _, a := range byFile[f.File] {
			if a.problem != "" || a.rule != f.Rule {
				continue
			}
			if a.line == f.Line || a.line == f.Line-1 {
				a.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, f)
		}
	}
	for _, a := range allows {
		switch {
		case a.problem != "":
			kept = append(kept, Finding{File: a.file, Line: a.line, Rule: "allow", Message: a.problem})
		case !a.used && ran[a.rule]:
			kept = append(kept, Finding{File: a.file, Line: a.line, Rule: "allow",
				Message: "allow annotation for " + a.rule + " suppresses nothing (stale); delete it"})
		}
	}
	return kept
}
