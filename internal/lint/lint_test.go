package lint

import (
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// runCase analyzes one corpus directory under testdata/src and returns
// its findings, failing the test on analysis errors.
func runCase(t *testing.T, dir string, rules ...string) []Finding {
	t.Helper()
	res, err := Run(Options{Root: filepath.Join("testdata", "src", dir), Rules: rules})
	if err != nil {
		t.Fatalf("Run(%s): %v", dir, err)
	}
	return res.Findings
}

// keys renders findings as sorted "file:rule" strings so tests compare
// what fired and where without pinning line numbers.
func keys(fs []Finding) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = filepath.Base(f.File) + ":" + f.Rule
	}
	sort.Strings(out)
	return out
}

// TestCorpus runs every rule over its known-bad and known-good snippet
// pair: bad.go must produce exactly the expected findings and good.go
// must produce none (any "good.go:*" key breaks the equality).
func TestCorpus(t *testing.T) {
	cases := []struct {
		dir  string
		want []string
	}{
		{"wallclock", []string{"bad.go:no-wallclock", "bad.go:no-wallclock", "bad.go:no-wallclock"}},
		{"globalrand", []string{"bad.go:no-global-rand"}},
		{"maprange", []string{"bad.go:no-map-range-render", "bad.go:no-map-range-render"}},
		{"nakedgo", []string{"bad.go:no-naked-go"}},
		{"panicpublic", []string{"bad.go:no-panic-public"}},
		{"fmtprint", []string{"bad.go:no-fmt-print", "bad.go:no-fmt-print"}},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			got := keys(runCase(t, tc.dir))
			if strings.Join(got, "\n") != strings.Join(tc.want, "\n") {
				t.Errorf("findings mismatch\n got: %v\nwant: %v", got, tc.want)
			}
		})
	}
}

// TestPanicBlame checks the reachability report names the exported
// entry point, not just the panic site.
func TestPanicBlame(t *testing.T) {
	fs := runCase(t, "panicpublic")
	if len(fs) != 1 {
		t.Fatalf("want 1 finding, got %v", fs)
	}
	if !strings.Contains(fs[0].Message, "Parse") {
		t.Errorf("blame message %q does not name the exported entry Parse", fs[0].Message)
	}
}

// TestAllowMachinery covers the three annotation outcomes: a valid
// allow suppresses, a stale allow is itself a finding, and malformed
// allows (no reason, unknown rule) are findings that suppress nothing.
func TestAllowMachinery(t *testing.T) {
	if fs := runCase(t, "allowclean"); len(fs) != 0 {
		t.Errorf("allowclean: valid allow should suppress everything, got %v", fs)
	}
	if got, want := keys(runCase(t, "allowstale")), []string{"stale.go:allow"}; strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("allowstale: got %v, want %v", got, want)
	}
	got := keys(runCase(t, "allowbad"))
	want := []string{"bad.go:allow", "bad.go:allow", "bad.go:no-wallclock"}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("allowbad: got %v, want %v", got, want)
	}
}

// TestRuleFilter: disabling a rule silences its findings, and allows
// naming a rule that did not run are exempt from staleness.
func TestRuleFilter(t *testing.T) {
	if fs := runCase(t, "wallclock", "no-naked-go"); len(fs) != 0 {
		t.Errorf("wallclock with only no-naked-go enabled: got %v, want none", fs)
	}
	if fs := runCase(t, "allowstale", "no-naked-go"); len(fs) != 0 {
		t.Errorf("stale allow for a disabled rule must not be reported, got %v", fs)
	}
	if _, err := Run(Options{Root: filepath.Join("testdata", "src", "wallclock"), Rules: []string{"no-such-rule"}}); err == nil {
		t.Error("unknown rule name: want error, got nil")
	}
}

// TestRepoCleanAtHead is the self-test the acceptance criteria demand:
// the repository itself lints clean with every rule enabled.
func TestRepoCleanAtHead(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository; skipped in -short")
	}
	res, err := Run(Options{Root: filepath.Join("..", "..")})
	if err != nil {
		t.Fatalf("Run(repo root): %v", err)
	}
	for _, f := range res.Findings {
		t.Errorf("repo not clean: %s", f)
	}
	if res.Packages < 30 {
		t.Errorf("walked only %d packages; the walker is missing most of the tree", res.Packages)
	}
}

// TestFindingString pins the one-line output contract the CLI, CI grep
// patterns, and editors all parse.
func TestFindingString(t *testing.T) {
	f := Finding{File: "pkg/a.go", Line: 12, Col: 3, Rule: "no-wallclock", Message: "call to time.Now"}
	if got, want := f.String(), "pkg/a.go:12: no-wallclock: call to time.Now"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestRuleNames pins the registry: adding a rule without documenting
// it in the README/ARCHITECTURE tables should trip this list.
func TestRuleNames(t *testing.T) {
	want := []string{
		"no-wallclock", "no-global-rand", "no-map-range-render",
		"no-naked-go", "no-panic-public", "no-fmt-print",
	}
	if got := RuleNames(); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("RuleNames() = %v, want %v", got, want)
	}
}
