// Package lint implements aimlint, the repository's determinism- and
// API-discipline static analyzer. Every invariant the test suite pins
// after the fact — byte-identical experiment tables, bit-identity for
// any worker count, panic-free public boundaries, RNG draw-order
// pinning through internal/xrand — has a compile-time failure mode:
// a stray time.Now in a simulation path, a bare map range feeding a
// renderer, a raw go statement bypassing internal/runner's
// deterministic merge. aimlint walks the whole module and reports
// those shapes as findings before a test ever has to catch the drift.
//
// The analyzer is stdlib-only (go/parser, go/ast, go/types with the
// source importer), matching the module's dependency-free go.mod.
// Module-internal imports are resolved straight to their directories;
// the standard library is type-checked from GOROOT source.
//
// Legitimate exceptions — a serving latency metric, a limiter clock, a
// documented sentinel panic — are suppressed in place with
//
//	//aimlint:allow <rule> — <reason>
//
// on (or immediately above) the offending line. The reason must be
// non-empty and the rule must exist; an allow that suppresses nothing
// is itself a finding, so stale annotations cannot accumulate.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	// File is the path as parsed (relative to the analysis root as the
	// caller named it), Line/Col the 1-based position.
	File string
	Line int
	Col  int
	// Rule is the rule name ("no-wallclock", ..., or "allow" for a
	// defective annotation).
	Rule string
	// Message says what is wrong and what the compliant shape is.
	Message string
}

// String renders the canonical "file:line: rule: message" form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.File, f.Line, f.Rule, f.Message)
}

// Options configures an analysis run.
type Options struct {
	// Root is the directory tree to analyze (the module root for a
	// whole-repo run, or any package subtree).
	Root string
	// Module is the import path of the package at Root. Empty reads
	// the module line from Root/go.mod, falling back to "main".
	Module string
	// Rules selects a subset of rule names; nil or empty runs all.
	Rules []string
}

// Result is a completed analysis.
type Result struct {
	// Findings is sorted by file, line, column, rule.
	Findings []Finding
	// Packages is the number of packages type-checked and analyzed.
	Packages int
}

// Run analyzes every package under opt.Root (skipping testdata, _test
// files and hidden directories) and returns the surviving findings
// after //aimlint:allow suppression.
func Run(opt Options) (*Result, error) {
	root := filepath.Clean(opt.Root)
	if root == "" {
		root = "."
	}
	module := opt.Module
	if module == "" {
		module = modulePath(root)
	}
	enabled, err := resolveRules(opt.Rules)
	if err != nil {
		return nil, err
	}

	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("lint: no Go packages under %s", root)
	}

	fset := token.NewFileSet()
	ld := newLoader(fset, root, module)

	var findings []Finding
	var allows []*allow
	for _, dir := range dirs {
		files, err := parseDir(fset, dir)
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			continue
		}
		ipath := importPathFor(root, module, dir)
		info := &types.Info{
			Types: make(map[ast.Expr]types.TypeAndValue),
			Defs:  make(map[*ast.Ident]types.Object),
			Uses:  make(map[*ast.Ident]types.Object),
		}
		var terrs []error
		conf := types.Config{
			Importer: ld,
			Error:    func(err error) { terrs = append(terrs, err) },
		}
		tpkg, _ := conf.Check(ipath, fset, files, info)
		if len(terrs) > 0 {
			return nil, fmt.Errorf("lint: type-checking %s: %v", ipath, terrs[0])
		}
		p := &pass{
			fset:    fset,
			module:  module,
			path:    ipath,
			relDir:  relDir(root, dir),
			pkgName: tpkg.Name(),
			files:   files,
			info:    info,
		}
		for _, r := range enabled {
			r.run(p)
		}
		findings = append(findings, p.findings...)
		for _, f := range files {
			allows = append(allows, parseAllows(fset, f)...)
		}
	}

	findings = applyAllows(findings, allows, enabled)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return &Result{Findings: findings, Packages: len(dirs)}, nil
}

// modulePath reads the module line of root/go.mod; a tree without one
// (the smoke harness's temp packages) analyzes under the name "main".
func modulePath(root string) string {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "main"
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return "main"
}

// packageDirs collects, in sorted order, every directory under root
// holding at least one non-test Go file. testdata trees (the lint
// corpus itself), hidden and underscore directories are skipped, the
// same set of exclusions the go tool applies.
func packageDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return fs.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			seen[filepath.Dir(p)] = true
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("lint: walking %s: %w", root, err)
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// parseDir parses the non-test Go files of one directory, with
// comments (the allow annotations live there).
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	return files, nil
}

// importPathFor maps a directory under root to its import path.
func importPathFor(root, module, dir string) string {
	rel := relDir(root, dir)
	if rel == "." {
		return module
	}
	return path.Join(module, rel)
}

// relDir is dir relative to root in slash form ("." for root itself).
func relDir(root, dir string) string {
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return dir
	}
	return filepath.ToSlash(rel)
}

// loader resolves imports during type-checking: module-internal paths
// are type-checked straight from their source directories (no go/build
// lookup, so the walk works in any temp tree), everything else — the
// standard library — goes through the source importer against GOROOT.
type loader struct {
	fset   *token.FileSet
	root   string
	module string
	std    types.Importer
	pkgs   map[string]*types.Package
}

func newLoader(fset *token.FileSet, root, module string) *loader {
	return &loader{
		fset:   fset,
		root:   root,
		module: module,
		std:    importer.ForCompiler(fset, "source", nil),
		pkgs:   make(map[string]*types.Package),
	}
}

// Import implements types.Importer.
func (l *loader) Import(ipath string) (*types.Package, error) {
	if p, ok := l.pkgs[ipath]; ok {
		return p, nil
	}
	dir, ok := l.moduleDir(ipath)
	if !ok {
		return l.std.Import(ipath)
	}
	files, err := parseDir(l.fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s for import %q", dir, ipath)
	}
	conf := types.Config{Importer: l}
	p, err := conf.Check(ipath, l.fset, files, nil)
	if err != nil {
		return nil, err
	}
	l.pkgs[ipath] = p
	return p, nil
}

// moduleDir maps a module-internal import path to its directory.
func (l *loader) moduleDir(ipath string) (string, bool) {
	if ipath == l.module {
		return l.root, true
	}
	if rest, ok := strings.CutPrefix(ipath, l.module+"/"); ok {
		return filepath.Join(l.root, filepath.FromSlash(rest)), true
	}
	return "", false
}

// pass is the per-package analysis context handed to each rule.
type pass struct {
	fset     *token.FileSet
	module   string
	path     string // import path
	relDir   string // directory relative to the analysis root
	pkgName  string
	files    []*ast.File
	info     *types.Info
	findings []Finding
}

// report records a finding at pos.
func (p *pass) report(pos token.Pos, rule, format string, args ...any) {
	at := p.fset.Position(pos)
	p.findings = append(p.findings, Finding{
		File:    at.Filename,
		Line:    at.Line,
		Col:     at.Column,
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// funcOf resolves an identifier used in call position to the function
// object it names, if any.
func (p *pass) funcOf(expr ast.Expr) *types.Func {
	switch e := expr.(type) {
	case *ast.Ident:
		fn, _ := p.info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.info.Uses[e.Sel].(*types.Func)
		return fn
	case *ast.ParenExpr:
		return p.funcOf(e.X)
	}
	return nil
}

// isPkgFunc reports whether expr names the package-level function
// pkgPath.name (or any of names).
func (p *pass) isPkgFunc(expr ast.Expr, pkgPath string, names ...string) bool {
	fn := p.funcOf(expr)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// isBuiltin reports whether the identifier resolves to the named
// predeclared function (panic, println, append, ...).
func (p *pass) isBuiltin(expr ast.Expr, name string) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}
