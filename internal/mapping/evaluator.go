package mapping

import (
	"aim/internal/booster"
	"aim/internal/irdrop"
	"aim/internal/pim"
	"aim/internal/vf"
	"aim/internal/xrand"
)

// Score is the lightweight simulator's estimate for one mapping.
type Score struct {
	// DelaySteps is the end-to-end delay in evaluation steps (the
	// longest operator completion, including failure stalls, scaled by
	// its frequency).
	DelaySteps float64
	// PowerMW is the chip's average macro-power total.
	PowerMW float64
	// TOPS is the effective throughput estimate.
	TOPS float64
}

// Scalar reduces the score to the objective Algorithm 3 minimizes in
// the given mode: power in low-power mode, negative throughput in
// sprint mode (both delay-aware).
func (s Score) Scalar(mode vf.Mode) float64 {
	if mode == vf.LowPower {
		return s.PowerMW * s.DelaySteps
	}
	return -s.TOPS
}

// Evaluator is the §5.6 mapping evaluation function: "a lightweight
// simulator [that] generates a 100-step input flip sequence sampled
// from a normal distribution, which is then combined with the HR
// values assigned to each macro" to estimate delay and power.
type Evaluator struct {
	Cfg   pim.Config
	Model irdrop.Model
	Table *vf.Table
	Power vf.PowerModel
	Mode  vf.Mode
	Beta  int
	// flips is the shared evaluation flip sequence: identical for every
	// candidate mapping so SA comparisons are apples-to-apples.
	flips []float64
}

// NewEvaluator builds an evaluator with a fresh 100-step flip sequence.
func NewEvaluator(cfg pim.Config, m irdrop.Model, mode vf.Mode, rng *xrand.RNG) *Evaluator {
	e := &Evaluator{
		Cfg:   cfg,
		Model: m,
		Table: vf.NewTable(m),
		Power: vf.DefaultPowerModel(),
		Mode:  mode,
		Beta:  50,
	}
	// Per-step flip intensities from a clipped normal distribution —
	// the same process stream.Bernoulli drives full simulations with.
	e.flips = make([]float64, 100)
	for i := range e.flips {
		p := rng.Normal(0.55, 0.18)
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		e.flips[i] = p
	}
	return e
}

// Evaluate scores a mapping (§5.6's Score function).
func (e *Evaluator) Evaluate(m *Mapping, tasks []Task) Score {
	groupHRs := m.GroupHRs(tasks)

	// Per-group static decisions: safe level from the worst effective
	// HR, aggressive level from Table 1, operating pair per mode.
	type groupState struct {
		occupied int
		level    vf.Level
		pair     vf.Pair
		worstHR  float64
	}
	groups := make([]groupState, m.Cfg.Groups)
	for g := range groups {
		hrs := groupHRs[g]
		if len(hrs) == 0 {
			continue
		}
		gs := &groups[g]
		gs.occupied = len(hrs)
		for _, hr := range hrs {
			if hr > gs.worstHR {
				gs.worstHR = hr
			}
		}
		safe := booster.SafeLevelFor(hrs)
		gs.level = vf.InitialALevel(safe)
		gs.pair = e.Table.PairFor(gs.level, e.Mode)
	}

	// Operator frequency synchronization: a MacroSet runs at the
	// slowest frequency among the groups hosting its tasks.
	numOps := 0
	for _, t := range tasks {
		if t.OpID+1 > numOps {
			numOps = t.OpID + 1
		}
	}
	opFreq := make([]float64, numOps)
	opTasks := make([]int, numOps)
	for i := range opFreq {
		opFreq[i] = -1
	}
	for macro, ti := range m.Assign {
		if ti == Empty {
			continue
		}
		op := tasks[ti].OpID
		opTasks[op]++
		f := groups[m.Group(macro)].pair.FreqGHz
		if opFreq[op] < 0 || f < opFreq[op] {
			opFreq[op] = f
		}
	}

	// Walk the flip sequence: a group fails a step when the flip
	// intensity times its worst HR exceeds its level's Rtog budget.
	// Each failure stalls every operator with a task in that group by
	// the Fig. 11 two-step recovery.
	opStalls := make([]float64, numOps)
	powerSum := 0.0
	for _, p := range e.flips {
		for g := range groups {
			gs := &groups[g]
			if gs.occupied == 0 {
				continue
			}
			rtog := p * gs.worstHR
			powerSum += float64(gs.occupied) * e.Power.MacroPowerMW(gs.pair, rtog)
			if rtog > gs.level.Rtog() {
				for macro, ti := range m.Assign {
					if ti != Empty && m.Group(macro) == g {
						opStalls[tasks[ti].OpID] += 2
					}
				}
			}
		}
	}

	// End-to-end delay: operators run concurrently; the slowest one
	// (normalized by its synchronized frequency) sets completion.
	steps := float64(len(e.flips))
	var sc Score
	totalThroughput := 0.0
	totalTasks := 0
	for op := 0; op < numOps; op++ {
		if opTasks[op] == 0 {
			continue
		}
		f := opFreq[op]
		if f <= 0 {
			f = vf.NominalFreqGHz
		}
		stallPerTask := opStalls[op] / float64(opTasks[op])
		delay := (steps + stallPerTask) / f
		if delay > sc.DelaySteps {
			sc.DelaySteps = delay
		}
		util := steps / (steps + stallPerTask)
		totalThroughput += float64(opTasks[op]) * f * util
		totalTasks += opTasks[op]
	}
	if totalTasks > 0 {
		sc.PowerMW = powerSum / steps
		sc.TOPS = vf.ChipTOPS(totalThroughput/float64(totalTasks), 1.0)
	}
	return sc
}
