// Package mapping implements task-to-macro mapping (paper §5.6): the
// naive sequential, random and zigzag baselines, and the HR-aware
// simulated-annealing mapper of Algorithm 3 with its lightweight
// 100-step mapping evaluator.
//
// A "task" is a macro-sized slice of an operator. Macros within a
// physical group share voltage and frequency, so a group is constrained
// by its worst-HR macro; macros computing the same operator (a logical
// MacroSet) must share frequency. HR-aware mapping arranges tasks so
// those constraints bite as little as possible.
package mapping

import (
	"fmt"

	"aim/internal/pim"
)

// Task is one macro-granularity slice of an operator.
type Task struct {
	// Op names the source operator.
	Op string
	// OpID identifies the operator; all tasks with the same OpID form a
	// logical MacroSet and must run at one frequency.
	OpID int
	// HR is the *actual* expected Hamming rate of the task's in-memory
	// operands: the deployed weight HR for weight-stationary operators,
	// or the typical runtime-operand HR for input-determined ones
	// (activity depends on it, even though safe-level selection must
	// assume worst case — see EffectiveHR).
	HR float64
	// InputDetermined marks operators (QKT, SV) whose operands are
	// produced at runtime: their safe level reverts to DVFS.
	InputDetermined bool
}

// EffectiveHR returns the HR used for safe-level selection: unknown
// (input-determined) operands must be assumed worst-case.
func (t Task) EffectiveHR() float64 {
	if t.InputDetermined {
		return 1.0
	}
	return t.HR
}

// Empty marks an unassigned macro slot.
const Empty = -1

// Mapping assigns tasks to macros: Assign[macro] is a task index or
// Empty.
type Mapping struct {
	Assign []int
	Cfg    pim.Config
}

// NewMapping allocates an all-empty mapping.
func NewMapping(cfg pim.Config) *Mapping {
	a := make([]int, cfg.Macros())
	for i := range a {
		a[i] = Empty
	}
	return &Mapping{Assign: a, Cfg: cfg}
}

// Clone deep-copies the mapping.
func (m *Mapping) Clone() *Mapping {
	c := &Mapping{Assign: append([]int(nil), m.Assign...), Cfg: m.Cfg}
	return c
}

// Group returns the physical group index of a macro.
func (m *Mapping) Group(macro int) int { return macro / m.Cfg.MacrosPerGroup }

// GroupMembers returns the macro indices of a group.
func (m *Mapping) GroupMembers(group int) []int {
	start := group * m.Cfg.MacrosPerGroup
	out := make([]int, m.Cfg.MacrosPerGroup)
	for i := range out {
		out[i] = start + i
	}
	return out
}

// Validate checks DESIGN.md invariant 6: every task appears exactly
// once.
func (m *Mapping) Validate(numTasks int) error {
	seen := make([]int, numTasks)
	for macro, ti := range m.Assign {
		if ti == Empty {
			continue
		}
		if ti < 0 || ti >= numTasks {
			return fmt.Errorf("mapping: macro %d has invalid task %d", macro, ti)
		}
		seen[ti]++
	}
	for ti, n := range seen {
		if n != 1 {
			return fmt.Errorf("mapping: task %d assigned %d times", ti, n)
		}
	}
	return nil
}

// GroupHRs returns, for each group, the effective HRs of its occupied
// macros (empty slice entries for idle groups).
func (m *Mapping) GroupHRs(tasks []Task) [][]float64 {
	out := make([][]float64, m.Cfg.Groups)
	for macro, ti := range m.Assign {
		if ti == Empty {
			continue
		}
		g := m.Group(macro)
		out[g] = append(out[g], tasks[ti].EffectiveHR())
	}
	return out
}

// Sequential fills macros in index order — the traditional mapping the
// paper compares against.
func Sequential(tasks []Task, cfg pim.Config) *Mapping {
	checkCapacity(tasks, cfg)
	m := NewMapping(cfg)
	for i := range tasks {
		m.Assign[i] = i
	}
	return m
}

// Zigzag fills the group grid boustrophedon (TANGRAM-style [26]):
// groups are visited left-to-right then right-to-left across rows of
// the 4-wide group array, filling each group's macros before moving on.
func Zigzag(tasks []Task, cfg pim.Config) *Mapping {
	checkCapacity(tasks, cfg)
	m := NewMapping(cfg)
	const rowW = 4
	order := make([]int, 0, cfg.Groups)
	for row := 0; row*rowW < cfg.Groups; row++ {
		for i := 0; i < rowW && row*rowW+i < cfg.Groups; i++ {
			g := row*rowW + i
			if row%2 == 1 {
				g = row*rowW + (rowW - 1 - i)
			}
			order = append(order, g)
		}
	}
	ti := 0
	for _, g := range order {
		for _, macro := range m.GroupMembers(g) {
			if ti >= len(tasks) {
				return m
			}
			m.Assign[macro] = ti
			ti++
		}
	}
	return m
}

// Random shuffles tasks over macros.
func Random(tasks []Task, cfg pim.Config, rng Rand) *Mapping {
	checkCapacity(tasks, cfg)
	m := NewMapping(cfg)
	perm := rng.Perm(cfg.Macros())
	for i := range tasks {
		m.Assign[perm[i]] = i
	}
	return m
}

// Rand is the randomness the package needs (satisfied by *xrand.RNG).
type Rand interface {
	Perm(n int) []int
	Intn(n int) int
	Float64() float64
}

func checkCapacity(tasks []Task, cfg pim.Config) {
	if len(tasks) > cfg.Macros() {
		panic(fmt.Sprintf("mapping: %d tasks exceed %d macros", len(tasks), cfg.Macros()))
	}
}
