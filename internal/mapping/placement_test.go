package mapping

import (
	"testing"

	"aim/internal/pim"
)

// TestPlacementDefaultChip: the paper's 16-group chip lands on the
// calibrated 64×64 die, one group per tile, row-major.
func TestPlacementDefaultChip(t *testing.T) {
	cfg := pim.DefaultConfig()
	p := NewPlacement(cfg)
	if p.Scale() != 1 {
		t.Fatalf("scale = %d, want 1", p.Scale())
	}
	fp := p.Floorplan()
	if fp.Solver != nil {
		t.Error("placement floorplans are geometry-only")
	}
	if len(fp.GroupTiles) != 16 {
		t.Fatalf("tiles = %d, want 16", len(fp.GroupTiles))
	}
	idx := p.TileIndices()
	if len(idx) != cfg.Groups {
		t.Fatalf("indices = %d, want %d", len(idx), cfg.Groups)
	}
	for g, ti := range idx {
		if ti != g {
			t.Errorf("group %d on tile %d, want row-major identity", g, ti)
		}
		if p.Rect(g) != fp.GroupTiles[ti] {
			t.Errorf("group %d rect mismatch", g)
		}
	}
}

// TestPlacementScalesUp: more groups than the default die holds picks
// the smallest scaled die that fits them.
func TestPlacementScalesUp(t *testing.T) {
	cases := []struct {
		groups, scale, tiles int
	}{
		{1, 1, 16},
		{16, 1, 16},
		{17, 2, 64},
		{64, 2, 64},
		{65, 3, 144},
		{256, 4, 256},
	}
	for _, c := range cases {
		cfg := pim.DefaultConfig()
		cfg.Groups = c.groups
		p := NewPlacement(cfg)
		if p.Scale() != c.scale {
			t.Errorf("groups %d: scale = %d, want %d", c.groups, p.Scale(), c.scale)
		}
		if got := len(p.Floorplan().GroupTiles); got != c.tiles {
			t.Errorf("groups %d: tiles = %d, want %d", c.groups, got, c.tiles)
		}
	}
}

// TestPlacementGeometry: adjacent groups in a row are nearer than
// groups a row apart and rects never overlap — the invariants that
// make group indices spatially meaningful for a placement-aware
// mapper.
func TestPlacementGeometry(t *testing.T) {
	p := NewPlacement(pim.DefaultConfig())
	// Groups 0..3 are row 0; group 4 opens row 1 on the 4-wide array.
	// Tile pitch is 15 cells horizontally and 12 vertically, so both
	// kinds of neighbour sit closer than the diagonal.
	if d01 := p.Distance(0, 1); d01 != 15 {
		t.Errorf("row-neighbour distance = %v, want the 15-cell tile pitch", d01)
	}
	if d04 := p.Distance(0, 4); d04 != 12 {
		t.Errorf("column-neighbour distance = %v, want the 12-cell tile pitch", d04)
	}
	if d05 := p.Distance(0, 5); d05 <= p.Distance(0, 1) || d05 <= p.Distance(0, 4) {
		t.Errorf("diagonal distance %v should exceed both neighbour pitches", d05)
	}
	if p.Distance(3, 3) != 0 {
		t.Error("self distance must be 0")
	}
	for a := 0; a < 16; a++ {
		ra := p.Rect(a)
		if ra.Cells() <= 0 {
			t.Fatalf("group %d has empty tile", a)
		}
		for b := a + 1; b < 16; b++ {
			rb := p.Rect(b)
			if ra.X0 < rb.X1 && rb.X0 < ra.X1 && ra.Y0 < rb.Y1 && rb.Y0 < ra.Y1 {
				t.Fatalf("groups %d and %d overlap", a, b)
			}
		}
	}
}
