package mapping

import (
	"math"
)

// SAOptions are the Algorithm 3 parameters; defaults follow §5.6.
type SAOptions struct {
	// Q is the temperature reduction coefficient q.
	Q float64
	// T0 is the initial normalized temperature.
	T0 float64
	// Steps is the iteration limit.
	Steps int
	// RejectLimit ends the search after this many consecutive
	// rejections ("terminates early if ten consecutive attempts are
	// rejected").
	RejectLimit int
}

// DefaultSAOptions returns the paper's configuration: q=0.95, T0=1,
// 500 iterations, early stop after 10 consecutive rejections.
func DefaultSAOptions() SAOptions {
	return SAOptions{Q: 0.95, T0: 1, Steps: 500, RejectLimit: 10}
}

// HRAware runs Algorithm 3: simulated annealing over task↔macro swaps
// with the normalized-exponential acceptor
//
//	accept if ΔS < 0 or Random() < exp(−ΔS / (0.5·S0·T))
//
// starting from the sequential mapping M0. The transition function
// picks two macros from *different groups* and exchanges their
// contents; empty slots participate, which is the paper's "empty
// macro" option that lets one or two macros stay unmapped to isolate
// interfering HR extremes.
func HRAware(tasks []Task, eval *Evaluator, rng Rand, opt SAOptions) (*Mapping, Score) {
	cur := Sequential(tasks, eval.Cfg)
	curScore := eval.Evaluate(cur, tasks)
	s0 := math.Abs(curScore.Scalar(eval.Mode))
	if s0 == 0 {
		s0 = 1
	}
	best := cur.Clone()
	bestScore := curScore

	temp := opt.T0
	rejects := 0
	for i := 0; i < opt.Steps; i++ {
		temp *= opt.Q
		next := cur.Clone()
		if !swapAcrossGroups(next, rng) {
			break // fewer than two groups: nothing to explore
		}
		nextScore := eval.Evaluate(next, tasks)
		delta := nextScore.Scalar(eval.Mode) - curScore.Scalar(eval.Mode)
		if delta < 0 || rng.Float64() < math.Exp(-delta/(0.5*s0*temp)) {
			if nextScore.Scalar(eval.Mode) < bestScore.Scalar(eval.Mode) {
				best = next.Clone()
				bestScore = nextScore
			}
			cur, curScore = next, nextScore
			rejects = 0
		} else {
			rejects++
			if rejects >= opt.RejectLimit {
				break
			}
		}
	}
	return best, bestScore
}

// swapAcrossGroups exchanges the contents of two macros in different
// groups; returns false when the geometry makes that impossible.
func swapAcrossGroups(m *Mapping, rng Rand) bool {
	if m.Cfg.Groups < 2 {
		return false
	}
	n := len(m.Assign)
	for tries := 0; tries < 64; tries++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if m.Group(a) == m.Group(b) {
			continue
		}
		if m.Assign[a] == Empty && m.Assign[b] == Empty {
			continue // no-op swap
		}
		m.Assign[a], m.Assign[b] = m.Assign[b], m.Assign[a]
		return true
	}
	return false
}
