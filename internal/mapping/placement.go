package mapping

import (
	"math"

	"aim/internal/pdn"
	"aim/internal/pim"
)

// Placement ties macro groups to die coordinates: group g occupies
// floorplan tile g, row-major across the 4f×4f tile array — the same
// convention Fig. 16's heatmaps use. It is what makes a mapper's
// choice of group spatially meaningful: two tasks the HR-aware SA
// co-locates in one group now share a physical tile, and groups the
// zigzag mapper fills consecutively are physical neighbours, so the
// spatial drop estimator sees their coupling.
//
// The placement is geometry only (no Solver session), so one Placement
// may back any number of per-shard estimator sessions concurrently.
type Placement struct {
	cfg pim.Config
	fp  *pdn.Floorplan
	f   int
}

// NewPlacement places a chip configuration on the smallest die that
// holds it: the calibrated 64×64 DefaultFloorplan geometry for up to
// 16 groups, else the ScaledFloorplan geometry at the smallest scale f
// with 16f² tiles ≥ cfg.Groups (the bump pitch and per-cell current
// densities are scale-invariant, so the sign-off calibration carries
// over).
func NewPlacement(cfg pim.Config) *Placement {
	f := 1
	for 16*f*f < cfg.Groups {
		f++
	}
	return &Placement{cfg: cfg, fp: pdn.FloorplanAt(f), f: f}
}

// Scale returns the die scale factor per edge (1 = the 64×64 die).
func (p *Placement) Scale() int { return p.f }

// Floorplan returns the geometry-only floorplan backing the placement.
func (p *Placement) Floorplan() *pdn.Floorplan { return p.fp }

// TileIndex returns the floorplan tile of a group.
func (p *Placement) TileIndex(group int) int { return group }

// TileIndices returns the per-group tile indices, the form the spatial
// drop estimator consumes.
func (p *Placement) TileIndices() []int {
	out := make([]int, p.cfg.Groups)
	for g := range out {
		out[g] = p.TileIndex(g)
	}
	return out
}

// Rect returns the die region a group's macros occupy.
func (p *Placement) Rect(group int) pdn.Rect {
	return p.fp.GroupTiles[p.TileIndex(group)]
}

// Center returns the cell coordinates of a group tile's centre.
func (p *Placement) Center(group int) (x, y float64) {
	r := p.Rect(group)
	return float64(r.X0+r.X1) / 2, float64(r.Y0+r.Y1) / 2
}

// Distance returns the centre-to-centre Euclidean distance between two
// groups' tiles, in cells — the coupling proxy a placement-aware
// mapper can fold into its cost: groups within roughly one bump pitch
// of each other share return current, so co-scheduling two high-Rtog
// MacroSets next to each other deepens both of their drops.
func (p *Placement) Distance(a, b int) float64 {
	ax, ay := p.Center(a)
	bx, by := p.Center(b)
	return math.Hypot(ax-bx, ay-by)
}
