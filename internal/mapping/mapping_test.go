package mapping

import (
	"testing"
	"testing/quick"

	"aim/internal/irdrop"
	"aim/internal/pim"
	"aim/internal/vf"
	"aim/internal/xrand"
)

// mixedTasks builds the paper's Fig. 21 style operator mix: a conv
// operator with low (optimized) HR alongside an input-determined QKT
// with unknown HR.
func mixedTasks(nConv, nQKT int) []Task {
	var tasks []Task
	for i := 0; i < nConv; i++ {
		tasks = append(tasks, Task{Op: "conv", OpID: 0, HR: 0.27})
	}
	for i := 0; i < nQKT; i++ {
		tasks = append(tasks, Task{Op: "qkt", OpID: 1, InputDetermined: true})
	}
	return tasks
}

func TestEffectiveHR(t *testing.T) {
	if got := (Task{HR: 0.3}).EffectiveHR(); got != 0.3 {
		t.Errorf("EffectiveHR = %v", got)
	}
	if got := (Task{HR: 0.3, InputDetermined: true}).EffectiveHR(); got != 1.0 {
		t.Errorf("input-determined EffectiveHR = %v, want 1 (DVFS)", got)
	}
}

func TestSequentialValid(t *testing.T) {
	cfg := pim.DefaultConfig()
	tasks := mixedTasks(20, 12)
	m := Sequential(tasks, cfg)
	if err := m.Validate(len(tasks)); err != nil {
		t.Fatal(err)
	}
	if m.Assign[0] != 0 || m.Assign[31] != 31 || m.Assign[32] != Empty {
		t.Error("sequential order wrong")
	}
}

func TestZigzagValidAndDifferent(t *testing.T) {
	cfg := pim.DefaultConfig()
	tasks := mixedTasks(30, 20)
	z := Zigzag(tasks, cfg)
	if err := z.Validate(len(tasks)); err != nil {
		t.Fatal(err)
	}
	s := Sequential(tasks, cfg)
	same := true
	for i := range z.Assign {
		if z.Assign[i] != s.Assign[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("zigzag should differ from sequential on multi-row grids")
	}
}

func TestRandomValid(t *testing.T) {
	cfg := pim.DefaultConfig()
	tasks := mixedTasks(25, 25)
	m := Random(tasks, cfg, xrand.New(1))
	if err := m.Validate(len(tasks)); err != nil {
		t.Fatal(err)
	}
}

func TestCapacityPanic(t *testing.T) {
	cfg := pim.DefaultConfig()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Sequential(mixedTasks(60, 60), cfg)
}

func TestGroupHelpers(t *testing.T) {
	cfg := pim.DefaultConfig()
	m := NewMapping(cfg)
	if m.Group(0) != 0 || m.Group(3) != 0 || m.Group(4) != 1 || m.Group(63) != 15 {
		t.Error("group indexing wrong")
	}
	members := m.GroupMembers(2)
	if len(members) != 4 || members[0] != 8 || members[3] != 11 {
		t.Errorf("members = %v", members)
	}
}

func TestValidateCatchesDuplicates(t *testing.T) {
	cfg := pim.DefaultConfig()
	m := NewMapping(cfg)
	m.Assign[0], m.Assign[5] = 0, 0
	if m.Validate(1) == nil {
		t.Error("duplicate assignment must fail validation")
	}
	m2 := NewMapping(cfg)
	if m2.Validate(1) == nil {
		t.Error("missing task must fail validation")
	}
}

func newEval(mode vf.Mode, seed int64) *Evaluator {
	return NewEvaluator(pim.DefaultConfig(), irdrop.DPIMModel(), mode, xrand.New(seed))
}

func TestEvaluatorDeterministicPerInstance(t *testing.T) {
	tasks := mixedTasks(20, 12)
	e := newEval(vf.LowPower, 7)
	m := Sequential(tasks, e.Cfg)
	a := e.Evaluate(m, tasks)
	b := e.Evaluate(m, tasks)
	if a != b {
		t.Error("evaluation must be deterministic for a fixed flip sequence")
	}
}

func TestEvaluatorPenalizesMixedGroups(t *testing.T) {
	// Packing a DVFS-bound QKT task into every conv group drags every
	// group to worst-case pessimism; segregating them must score
	// strictly better in both modes.
	cfg := pim.DefaultConfig()
	tasks := mixedTasks(32, 16)
	segregated := NewMapping(cfg)
	for i := 0; i < 32; i++ {
		segregated.Assign[i] = i // conv fills groups 0-7
	}
	for i := 0; i < 16; i++ {
		segregated.Assign[32+i] = 32 + i // qkt fills groups 8-11
	}
	interleaved := NewMapping(cfg)
	// One QKT in each of the first 16 groups, convs packed around them.
	ci, qi := 0, 32
	for g := 0; g < 16; g++ {
		slots := []int{g * 4, g*4 + 1, g*4 + 2, g*4 + 3}
		if qi < 48 {
			interleaved.Assign[slots[0]] = qi
			qi++
		}
		for _, s := range slots[1:] {
			if ci < 32 {
				interleaved.Assign[s] = ci
				ci++
			}
		}
	}
	if err := segregated.Validate(len(tasks)); err != nil {
		t.Fatal(err)
	}
	if err := interleaved.Validate(len(tasks)); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []vf.Mode{vf.LowPower, vf.Sprint} {
		e := newEval(mode, 9)
		segScore := e.Evaluate(segregated, tasks)
		mixScore := e.Evaluate(interleaved, tasks)
		if segScore.Scalar(mode) >= mixScore.Scalar(mode) {
			t.Errorf("%v: segregated (%.4g) should beat interleaved (%.4g)",
				mode, segScore.Scalar(mode), mixScore.Scalar(mode))
		}
	}
}

func TestHRAwareBeatsNaiveMappings(t *testing.T) {
	// Fig. 21: HR-aware mapping dominates sequential/random/zigzag on
	// mixed operator workloads.
	tasks := mixedTasks(32, 16)
	for _, mode := range []vf.Mode{vf.LowPower, vf.Sprint} {
		e := newEval(mode, 11)
		rng := xrand.New(13)
		best, bestScore := HRAware(tasks, e, rng, DefaultSAOptions())
		if err := best.Validate(len(tasks)); err != nil {
			t.Fatal(err)
		}
		seq := e.Evaluate(Sequential(tasks, e.Cfg), tasks)
		zig := e.Evaluate(Zigzag(tasks, e.Cfg), tasks)
		rnd := e.Evaluate(Random(tasks, e.Cfg, xrand.New(17)), tasks)
		for name, sc := range map[string]Score{"sequential": seq, "zigzag": zig, "random": rnd} {
			if bestScore.Scalar(mode) > sc.Scalar(mode) {
				t.Errorf("%v: HR-aware (%.4g) worse than %s (%.4g)",
					mode, bestScore.Scalar(mode), name, sc.Scalar(mode))
			}
		}
	}
}

// Property: SA always returns a valid mapping (invariant 6) regardless
// of task mix.
func TestHRAwareAlwaysValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := xrand.New(seed)
		nConv := 1 + g.Intn(40)
		nQKT := g.Intn(20)
		tasks := mixedTasks(nConv, nQKT)
		e := newEval(vf.LowPower, seed)
		opt := DefaultSAOptions()
		opt.Steps = 60
		best, _ := HRAware(tasks, e, g, opt)
		return best.Validate(len(tasks)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestDefaultSAOptions(t *testing.T) {
	o := DefaultSAOptions()
	if o.Q != 0.95 || o.T0 != 1 || o.Steps != 500 || o.RejectLimit != 10 {
		t.Errorf("SA defaults %+v do not match §5.6", o)
	}
}

func TestScoreScalarModes(t *testing.T) {
	s := Score{DelaySteps: 100, PowerMW: 50, TOPS: 260}
	if s.Scalar(vf.LowPower) != 5000 {
		t.Errorf("low-power scalar = %v", s.Scalar(vf.LowPower))
	}
	if s.Scalar(vf.Sprint) != -260 {
		t.Errorf("sprint scalar = %v", s.Scalar(vf.Sprint))
	}
}
