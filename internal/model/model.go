// Package model provides the synthetic model zoo the experiments run
// on: the six networks of the paper's evaluation (ResNet18, MobileNetV2,
// YOLOv5, ViT, Llama3.2-1B, GPT2) with layer inventories copied from the
// real architectures and weights drawn from realistic per-layer
// distributions (heavy-tailed Laplace bodies with Gaussian outlier
// components whose rare extremes set the quantization scale).
//
// Real pretrained checkpoints are not available offline; DESIGN.md
// documents why distribution-matched synthetic weights preserve the
// HR/Rtog behaviour the paper's experiments measure.
package model

import (
	"fmt"

	"aim/internal/quant"
	"aim/internal/tensor"
	"aim/internal/xrand"
)

// OpKind classifies an operator the way the paper does when deciding
// whether its in-memory data can be pre-optimized (§5.5.1).
type OpKind int

const (
	// Conv is a standard convolution; weights are in-memory data.
	Conv OpKind = iota
	// DWConv is a depthwise convolution (MobileNet); in-memory weights.
	DWConv
	// Linear is a fully connected / projection layer; in-memory weights.
	Linear
	// QKVGen generates Q, K and V from fixed weights; in-memory weights.
	QKVGen
	// QKT is the attention Q·Kᵀ product: both operands are produced at
	// runtime, so HR cannot be pre-determined (input-determined).
	QKT
	// SV is the attention score·V product: input-determined.
	SV
)

// String names the kind.
func (k OpKind) String() string {
	switch k {
	case Conv:
		return "conv"
	case DWConv:
		return "dwconv"
	case Linear:
		return "linear"
	case QKVGen:
		return "qkvgen"
	case QKT:
		return "qkt"
	case SV:
		return "sv"
	default:
		return fmt.Sprintf("opkind(%d)", int(k))
	}
}

// InputDetermined reports whether both operands are produced at
// runtime. Such operators default to the 100% safe level in IR-Booster
// because LHR/WDS cannot touch them (§5.5.1).
func (k OpKind) InputDetermined() bool { return k == QKT || k == SV }

// maxSampledWeights caps the number of weights actually materialized
// per layer; HR statistics from this many Laplace/Gaussian samples are
// accurate to well under one percentage point, while full-size Llama
// layers would be needlessly slow.
const maxSampledWeights = 8192

// Layer is one operator of a network.
type Layer struct {
	Name string
	Kind OpKind
	// Rows and Cols describe the logical weight matrix mapped onto PIM
	// (output features × flattened input features). Input-determined
	// operators describe their runtime operand shapes instead.
	Rows, Cols int
	// Weights holds sampled synthetic weights for weight-stationary
	// operators (nil for input-determined ones).
	Weights *tensor.Float
	// SigmaMul is the per-layer width multiplier applied to the model's
	// base distribution; recorded for reproducibility.
	SigmaMul float64
}

// Elems returns the logical number of weights.
func (l *Layer) Elems() int { return l.Rows * l.Cols }

// MACs returns the multiply-accumulate count for one inference token /
// image position (logical elements; used for performance weighting).
func (l *Layer) MACs() int64 { return int64(l.Rows) * int64(l.Cols) }

// Profile carries the per-model weight-distribution and tuning
// parameters (see DESIGN.md "Substitutions").
type Profile struct {
	// LaplaceB is the Laplace body scale of weight values.
	LaplaceB float64
	// OutlierFrac of weights come from a wider Gaussian whose extremes
	// set the per-tensor quantization scale.
	OutlierFrac float64
	// OutlierSigma is that Gaussian's standard deviation.
	OutlierSigma float64
	// Lambda is the LHR regularization strength calibrated for this
	// model (Table 2).
	Lambda float64
	// Acc is the surrogate quality model.
	Acc quant.AccuracyModel
}

// Network is a workload from the paper's evaluation.
type Network struct {
	Name        string
	Layers      []*Layer
	Profile     Profile
	Transformer bool
}

// WeightLayers returns the layers that carry in-memory weights.
func (n *Network) WeightLayers() []*Layer {
	out := make([]*Layer, 0, len(n.Layers))
	for _, l := range n.Layers {
		if !l.Kind.InputDetermined() {
			out = append(out, l)
		}
	}
	return out
}

// LHROptions returns the model-calibrated LHR configuration.
func (n *Network) LHROptions() quant.LHROptions {
	o := quant.DefaultLHROptions()
	o.Lambda = n.Profile.Lambda
	return o
}

// layerSpec is the static part of a layer before weight sampling.
type layerSpec struct {
	name       string
	kind       OpKind
	rows, cols int
	sigmaMul   float64
}

// build materializes a network: for each weight-stationary layer it
// samples min(Elems, maxSampledWeights) weights from the model profile
// scaled by the layer's sigma multiplier.
func build(name string, transformer bool, p Profile, specs []layerSpec, seed int64) *Network {
	net := &Network{Name: name, Profile: p, Transformer: transformer}
	for _, s := range specs {
		l := &Layer{Name: s.name, Kind: s.kind, Rows: s.rows, Cols: s.cols, SigmaMul: s.sigmaMul}
		if !s.kind.InputDetermined() {
			n := l.Elems()
			if n > maxSampledWeights {
				n = maxSampledWeights
			}
			rng := xrand.NewNamed(seed, name+"/"+s.name)
			w := tensor.NewFloat(n)
			for i := range w.Data {
				if rng.Bernoulli(p.OutlierFrac) {
					w.Data[i] = rng.Normal(0, p.OutlierSigma*s.sigmaMul)
				} else {
					w.Data[i] = rng.Laplace(0, p.LaplaceB*s.sigmaMul)
				}
			}
			l.Weights = w
		}
		net.Layers = append(net.Layers, l)
	}
	return net
}

// All returns the full evaluation zoo in the paper's order.
func All(seed int64) []*Network {
	return []*Network{
		ResNet18(seed), MobileNetV2(seed), YOLOv5(seed),
		ViT(seed), Llama3(seed), GPT2(seed),
	}
}

// Names lists the zoo workloads in the paper's order — the valid
// arguments to ByName. Cheap: no network is generated.
func Names() []string {
	return []string{"resnet18", "mobilenetv2", "yolov5", "vit", "llama3", "gpt2"}
}

// ValidName reports whether name is a zoo workload without paying for
// its generation (admission-time validation in the serving runtime).
func ValidName(name string) bool {
	for _, n := range Names() {
		if n == name {
			return true
		}
	}
	return false
}

// ByName returns the named network or an error listing valid names.
func ByName(name string, seed int64) (*Network, error) {
	switch name {
	case "resnet18":
		return ResNet18(seed), nil
	case "mobilenetv2":
		return MobileNetV2(seed), nil
	case "yolov5":
		return YOLOv5(seed), nil
	case "vit":
		return ViT(seed), nil
	case "llama3":
		return Llama3(seed), nil
	case "gpt2":
		return GPT2(seed), nil
	}
	return nil, fmt.Errorf("model: unknown network %q (want resnet18|mobilenetv2|yolov5|vit|llama3|gpt2)", name)
}
