package model

import (
	"strings"
	"testing"

	"aim/internal/quant"
)

const seed = 2025

func TestZooConstructs(t *testing.T) {
	nets := All(seed)
	if len(nets) != 6 {
		t.Fatalf("zoo size = %d, want 6", len(nets))
	}
	names := map[string]bool{}
	for _, n := range nets {
		if names[n.Name] {
			t.Errorf("duplicate network name %q", n.Name)
		}
		names[n.Name] = true
		if len(n.Layers) == 0 {
			t.Errorf("%s has no layers", n.Name)
		}
		for _, l := range n.Layers {
			if l.Kind.InputDetermined() {
				if l.Weights != nil {
					t.Errorf("%s/%s: input-determined op should carry no weights", n.Name, l.Name)
				}
				continue
			}
			if l.Weights == nil || l.Weights.Len() == 0 {
				t.Errorf("%s/%s: missing weights", n.Name, l.Name)
			}
			if l.Rows <= 0 || l.Cols <= 0 {
				t.Errorf("%s/%s: bad shape %dx%d", n.Name, l.Name, l.Rows, l.Cols)
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"resnet18", "mobilenetv2", "yolov5", "vit", "llama3", "gpt2"} {
		n, err := ByName(name, seed)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		if n.Name != name {
			t.Errorf("got %s, want %s", n.Name, name)
		}
	}
	if _, err := ByName("alexnet", seed); err == nil {
		t.Error("expected error for unknown name")
	}
}

func TestDeterministicWeights(t *testing.T) {
	a := ResNet18(seed)
	b := ResNet18(seed)
	for i, l := range a.Layers {
		for j, v := range l.Weights.Data {
			if b.Layers[i].Weights.Data[j] != v {
				t.Fatal("weights must be deterministic for a given seed")
			}
		}
	}
	c := ResNet18(seed + 1)
	if c.Layers[0].Weights.Data[0] == a.Layers[0].Weights.Data[0] {
		t.Error("different seeds should give different weights")
	}
}

func TestTransformersHaveInputDeterminedOps(t *testing.T) {
	for _, n := range All(seed) {
		hasQKT := false
		for _, l := range n.Layers {
			if l.Kind == QKT {
				hasQKT = true
			}
		}
		if n.Transformer && !hasQKT {
			t.Errorf("%s: transformer without QKT op", n.Name)
		}
		if !n.Transformer && hasQKT {
			t.Errorf("%s: conv net with QKT op", n.Name)
		}
	}
}

func TestResNet18LayerInventory(t *testing.T) {
	n := ResNet18(seed)
	// conv1 + 4 stages × (2 blocks × 2 convs) + 3 downsamples + fc = 21.
	if got := len(n.Layers); got != 21 {
		t.Errorf("ResNet18 layer count = %d, want 21", got)
	}
	if n.Layers[0].Name != "conv1" || n.Layers[0].Cols != 147 {
		t.Errorf("conv1 malformed: %+v", n.Layers[0])
	}
	last := n.Layers[len(n.Layers)-1]
	if last.Name != "fc" || last.Rows != 1000 || last.Cols != 512 {
		t.Errorf("fc malformed: %+v", last)
	}
	// A known mid layer from the paper's Fig. 5: layer3.0.conv1.
	found := false
	for _, l := range n.Layers {
		if l.Name == "layer3.0.conv1" {
			found = true
			if l.Rows != 256 || l.Cols != 128*9 {
				t.Errorf("layer3.0.conv1 shape %dx%d", l.Rows, l.Cols)
			}
		}
	}
	if !found {
		t.Error("layer3.0.conv1 missing")
	}
}

func TestViTBlockInventory(t *testing.T) {
	n := ViT(seed)
	// patch_embed + 12 blocks × 6 ops + head.
	if got := len(n.Layers); got != 2+12*6 {
		t.Errorf("ViT layer count = %d, want %d", got, 2+12*6)
	}
	fc1s := 0
	for _, l := range n.Layers {
		if strings.HasSuffix(l.Name, ".mlp.fc1") {
			fc1s++
			if l.Rows != 3072 || l.Cols != 768 {
				t.Errorf("fc1 shape %dx%d", l.Rows, l.Cols)
			}
		}
	}
	if fc1s != 12 {
		t.Errorf("fc1 count = %d, want 12", fc1s)
	}
}

func TestLlama3GQAShapes(t *testing.T) {
	n := Llama3(seed)
	for _, l := range n.Layers {
		if strings.HasSuffix(l.Name, ".attn.k") && (l.Rows != 512 || l.Cols != 2048) {
			t.Errorf("GQA k proj shape %dx%d, want 512x2048", l.Rows, l.Cols)
		}
	}
}

func TestBaselineHRAroundHalf(t *testing.T) {
	// Paper Table 3: baseline INT8 HR ≈ 0.49-0.53 across models.
	for _, n := range All(seed) {
		st := NetworkHR(n, BaselineConfig())
		if st.Average < 0.44 || st.Average > 0.56 {
			t.Errorf("%s: baseline HRaverage = %.3f, want ~0.5", n.Name, st.Average)
		}
	}
}

func TestLHRReducesHREveryModel(t *testing.T) {
	for _, n := range All(seed) {
		base := NetworkHR(n, BaselineConfig())
		lhr := NetworkHR(n, LHRConfig())
		relAvg := (base.Average - lhr.Average) / base.Average
		relMax := (base.Max - lhr.Max) / base.Max
		// Paper Table 2: 23-31% average, 24-31% max.
		if relAvg < 0.15 || relAvg > 0.42 {
			t.Errorf("%s: LHR HRaverage reduction = %.1f%%, want paper-shaped 15-42%%", n.Name, 100*relAvg)
		}
		if relMax <= 0 {
			t.Errorf("%s: LHR did not reduce HRmax", n.Name)
		}
	}
}

func TestWDSImprovesOverLHR(t *testing.T) {
	for _, n := range All(seed) {
		lhr := NetworkHR(n, LHRConfig())
		w8 := NetworkHR(n, WDSConfig(8))
		w16 := NetworkHR(n, WDSConfig(16))
		if w8.Average >= lhr.Average {
			t.Errorf("%s: WDS(8) did not improve HRaverage (%.3f -> %.3f)", n.Name, lhr.Average, w8.Average)
		}
		if w16.Average >= w8.Average {
			t.Errorf("%s: WDS(16) (%.3f) should beat WDS(8) (%.3f) per Table 2", n.Name, w16.Average, w8.Average)
		}
	}
}

func TestQualityBarelyMoves(t *testing.T) {
	// Paper Fig. 13: LHR+WDS costs well under 1 point of quality.
	for _, n := range All(seed) {
		base := n.Quality(NetworkHR(n, BaselineConfig()))
		opt := n.Quality(NetworkHR(n, WDSConfig(16)))
		var degraded float64
		if n.Profile.Acc.Metric == quant.Perplexity {
			degraded = opt - base
		} else {
			degraded = base - opt
		}
		if degraded > 1.0 {
			t.Errorf("%s: quality degradation %.2f too large", n.Name, degraded)
		}
	}
}

func TestStatsWeighting(t *testing.T) {
	n := ResNet18(seed)
	lqs := QuantizeNetwork(n, BaselineConfig())
	st := Stats(lqs)
	if st.Max < st.Average {
		t.Error("HRmax must be >= HRaverage")
	}
	if len(st.PerLayer) != len(lqs) {
		t.Errorf("per-layer count %d != %d", len(st.PerLayer), len(lqs))
	}
}

func TestWeightLayersExcludeAttentionProducts(t *testing.T) {
	n := GPT2(seed)
	for _, l := range n.WeightLayers() {
		if l.Kind.InputDetermined() {
			t.Errorf("WeightLayers returned input-determined op %s", l.Name)
		}
	}
	if len(n.WeightLayers()) != 12*4 {
		t.Errorf("GPT2 weight layer count = %d, want 48", len(n.WeightLayers()))
	}
}

func TestConfigString(t *testing.T) {
	if BaselineConfig().String() != "baseline" || LHRConfig().String() != "+LHR" || WDSConfig(8).String() != "+WDS" {
		t.Error("config labels wrong")
	}
}
