package model

import (
	"fmt"

	"aim/internal/quant"
)

// Per-model profiles. Distribution parameters were calibrated (see
// DESIGN.md and internal/calib) so that baseline INT8 HR lands near 0.5
// for every model (paper Table 3) and so that the LHR/WDS reductions
// reproduce the Table 2 shape: body width relative to the outlier-set
// quantization scale controls how much WDS can win, λ controls the
// LHR strength.

// ResNet18 builds the conv-based ImageNet classifier (He et al.).
func ResNet18(seed int64) *Network {
	p := Profile{
		LaplaceB: 0.020, OutlierFrac: 0.03, OutlierSigma: 0.080, Lambda: 1.05,
		Acc: quant.AccuracyModel{Metric: quant.Accuracy, Base: 70.4, DriftSens: 2.0, DriftFree: 0.45, RegGain: 0, PruneSens: 9},
	}
	specs := []layerSpec{
		{"conv1", Conv, 64, 3 * 7 * 7, 1.35},
	}
	// Four stages of two BasicBlocks each; stages 2-4 open with a
	// strided conv and a 1x1 downsample shortcut.
	ch := []int{64, 128, 256, 512}
	mul := []float64{1.15, 1.0, 0.92, 0.85}
	for stage := 0; stage < 4; stage++ {
		c := ch[stage]
		in := c
		if stage > 0 {
			in = ch[stage-1]
		}
		for blk := 0; blk < 2; blk++ {
			cin := c
			if blk == 0 {
				cin = in
			}
			pre := fmt.Sprintf("layer%d.%d", stage+1, blk)
			specs = append(specs,
				layerSpec{pre + ".conv1", Conv, c, cin * 9, mul[stage]},
				layerSpec{pre + ".conv2", Conv, c, c * 9, mul[stage] * 0.95},
			)
			if blk == 0 && stage > 0 {
				specs = append(specs, layerSpec{pre + ".downsample", Conv, c, in, mul[stage] * 1.1})
			}
		}
	}
	specs = append(specs, layerSpec{"fc", Linear, 1000, 512, 0.9})
	return build("resnet18", false, p, specs, seed)
}

// MobileNetV2 builds the inverted-residual mobile classifier (Sandler
// et al.): expand (1x1), depthwise (3x3) and project (1x1) convs per
// block. Its weight bodies sit wider relative to the quantization
// scale, which is why WDS gains less on it (Table 2).
func MobileNetV2(seed int64) *Network {
	p := Profile{
		LaplaceB: 0.036, OutlierFrac: 0.02, OutlierSigma: 0.060, Lambda: 1.15,
		Acc: quant.AccuracyModel{Metric: quant.Accuracy, Base: 71.7, DriftSens: 3.0, DriftFree: 0.35, RegGain: 0, PruneSens: 12},
	}
	specs := []layerSpec{{"features.0", Conv, 32, 3 * 9, 1.3}}
	// (expansion t, out channels c, repeats n, stride) per the paper.
	cfg := []struct {
		t, c, n int
	}{
		{1, 16, 1}, {6, 24, 2}, {6, 32, 3}, {6, 64, 4}, {6, 96, 3}, {6, 160, 3}, {6, 320, 1},
	}
	in := 32
	idx := 1
	for _, blk := range cfg {
		for r := 0; r < blk.n; r++ {
			hid := in * blk.t
			pre := fmt.Sprintf("features.%d", idx)
			if blk.t != 1 {
				specs = append(specs, layerSpec{pre + ".expand", Conv, hid, in, 1.05})
			}
			specs = append(specs,
				layerSpec{pre + ".dw", DWConv, hid, 9, 1.25},
				layerSpec{pre + ".project", Conv, blk.c, hid, 0.95},
			)
			in = blk.c
			idx++
		}
	}
	specs = append(specs,
		layerSpec{"features.18", Conv, 1280, 320, 0.9},
		layerSpec{"classifier", Linear, 1000, 1280, 0.85},
	)
	return build("mobilenetv2", false, p, specs, seed)
}

// YOLOv5 builds the YOLOv5s detector: CSP backbone, PANet neck and
// detection head, modelled as its conv inventory.
func YOLOv5(seed int64) *Network {
	p := Profile{
		LaplaceB: 0.019, OutlierFrac: 0.03, OutlierSigma: 0.082, Lambda: 1.02,
		Acc: quant.AccuracyModel{Metric: quant.Accuracy, Base: 37.0, DriftSens: 2.5, DriftFree: 0.40, RegGain: 0, PruneSens: 10},
	}
	var specs []layerSpec
	add := func(name string, out, in, k int, mul float64) {
		specs = append(specs, layerSpec{name, Conv, out, in * k * k, mul})
	}
	// Backbone: Focus + 4 CSP stages.
	add("model.0.conv", 32, 12, 3, 1.3)
	widths := []int{64, 128, 256, 512}
	reps := []int{1, 3, 3, 1}
	in := 32
	for s, w := range widths {
		add(fmt.Sprintf("model.%d.down", 2*s+1), w, in, 3, 1.1)
		for r := 0; r < reps[s]; r++ {
			pre := fmt.Sprintf("model.%d.c3.%d", 2*s+2, r)
			add(pre+".cv1", w/2, w, 1, 1.0)
			add(pre+".cv2", w/2, w/2, 3, 0.95)
			add(pre+".cv3", w, w, 1, 1.0)
		}
		in = w
	}
	// SPPF + PANet neck.
	add("model.9.sppf", 512, 1024, 1, 0.95)
	neck := []struct {
		name    string
		out, in int
	}{
		{"model.10.cv", 256, 512}, {"model.13.c3", 256, 512}, {"model.14.cv", 128, 256},
		{"model.17.c3", 128, 256}, {"model.18.cv", 256, 128}, {"model.20.c3", 256, 512},
		{"model.21.cv", 512, 256}, {"model.23.c3", 512, 1024},
	}
	for _, nck := range neck {
		add(nck.name, nck.out, nck.in, 1, 0.9)
	}
	// Detect head: 3 scales × (80 classes + 5) × 3 anchors.
	for i, c := range []int{128, 256, 512} {
		add(fmt.Sprintf("model.24.m.%d", i), 255, c, 1, 1.15)
	}
	return build("yolov5", false, p, specs, seed)
}

// transformerBlocks appends the standard pre-norm transformer block
// operator inventory, including the input-determined QKT and SV
// attention products the paper singles out in §5.5.1.
func transformerBlocks(specs []layerSpec, blocks, hidden, kvDim, mlp, seqLen int, prefix string, mulAttn, mulMLP float64) []layerSpec {
	for b := 0; b < blocks; b++ {
		pre := fmt.Sprintf("%s.%d", prefix, b)
		specs = append(specs,
			layerSpec{pre + ".attn.qkv", QKVGen, hidden + 2*kvDim, hidden, mulAttn},
			layerSpec{pre + ".attn.qkt", QKT, seqLen, seqLen, 1},
			layerSpec{pre + ".attn.sv", SV, seqLen, kvDim, 1},
			layerSpec{pre + ".attn.proj", Linear, hidden, hidden, mulAttn * 0.95},
			layerSpec{pre + ".mlp.fc1", Linear, mlp, hidden, mulMLP},
			layerSpec{pre + ".mlp.fc2", Linear, hidden, mlp, mulMLP * 0.9},
		)
	}
	return specs
}

// ViT builds ViT-B/16 (Dosovitskiy et al.).
func ViT(seed int64) *Network {
	p := Profile{
		LaplaceB: 0.022, OutlierFrac: 0.025, OutlierSigma: 0.074, Lambda: 1.08,
		Acc: quant.AccuracyModel{Metric: quant.Accuracy, Base: 81.0, DriftSens: 1.5, DriftFree: 0.50, RegGain: 0.35, PruneSens: 8},
	}
	specs := []layerSpec{{"patch_embed", Conv, 768, 3 * 16 * 16, 1.2}}
	specs = transformerBlocks(specs, 12, 768, 768, 3072, 197, "blocks", 1.0, 0.95)
	specs = append(specs, layerSpec{"head", Linear, 1000, 768, 0.9})
	return build("vit", true, p, specs, seed)
}

// GPT2 builds GPT2-124M (Radford et al.).
func GPT2(seed int64) *Network {
	p := Profile{
		LaplaceB: 0.022, OutlierFrac: 0.03, OutlierSigma: 0.076, Lambda: 1.28,
		Acc: quant.AccuracyModel{Metric: quant.Perplexity, Base: 28.4, DriftSens: 2.0, DriftFree: 0.45, RegGain: 0.1, PruneSens: 9},
	}
	var specs []layerSpec
	specs = transformerBlocks(specs, 12, 768, 768, 3072, 1024, "h", 1.05, 1.0)
	return build("gpt2", true, p, specs, seed)
}

// Llama3 builds Llama3.2-1B (Dubey et al.): 16 blocks, hidden 2048,
// grouped-query attention with 8 KV heads (kv dim 512) and a SwiGLU
// MLP, modelled as gate/up/down projections.
func Llama3(seed int64) *Network {
	p := Profile{
		LaplaceB: 0.024, OutlierFrac: 0.025, OutlierSigma: 0.072, Lambda: 1.05,
		Acc: quant.AccuracyModel{Metric: quant.Perplexity, Base: 9.9, DriftSens: 2.2, DriftFree: 0.45, RegGain: 0.25, PruneSens: 10},
	}
	var specs []layerSpec
	for b := 0; b < 16; b++ {
		pre := fmt.Sprintf("layers.%d", b)
		specs = append(specs,
			layerSpec{pre + ".attn.q", QKVGen, 2048, 2048, 1.0},
			layerSpec{pre + ".attn.k", QKVGen, 512, 2048, 1.05},
			layerSpec{pre + ".attn.v", QKVGen, 512, 2048, 1.0},
			layerSpec{pre + ".attn.qkt", QKT, 2048, 2048, 1},
			layerSpec{pre + ".attn.sv", SV, 2048, 512, 1},
			layerSpec{pre + ".attn.o", Linear, 2048, 2048, 0.95},
			layerSpec{pre + ".mlp.gate", Linear, 8192, 2048, 1.0},
			layerSpec{pre + ".mlp.up", Linear, 8192, 2048, 0.98},
			layerSpec{pre + ".mlp.down", Linear, 2048, 8192, 0.92},
		)
	}
	return build("llama3", true, p, specs, seed)
}
