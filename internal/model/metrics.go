package model

import (
	"aim/internal/quant"
)

// QuantConfig selects a point in the paper's quantization-pipeline
// space: the baseline QAT quantizer, optionally with the LHR
// regularizer, optionally followed by WDS with shift δ.
type QuantConfig struct {
	Bits     int
	UseLHR   bool
	WDSDelta int // 0 disables WDS
}

// BaselineConfig is the paper's [64] baseline: plain INT8 QAT.
func BaselineConfig() QuantConfig { return QuantConfig{Bits: 8} }

// LHRConfig is baseline + LHR.
func LHRConfig() QuantConfig { return QuantConfig{Bits: 8, UseLHR: true} }

// WDSConfig is baseline + LHR + WDS(δ).
func WDSConfig(delta int) QuantConfig { return QuantConfig{Bits: 8, UseLHR: true, WDSDelta: delta} }

// String renders the config the way the paper labels columns.
func (c QuantConfig) String() string {
	switch {
	case c.WDSDelta > 0:
		return "+WDS"
	case c.UseLHR:
		return "+LHR"
	default:
		return "baseline"
	}
}

// LayerQuant is one weight-stationary layer after quantization.
type LayerQuant struct {
	Layer *Layer
	Q     *quant.Quantized
	// Drift is the mean absolute code movement relative to the baseline
	// quantization (accuracy surrogate input).
	Drift float64
	// OverflowFrac is the fraction of codes clamped by WDS.
	OverflowFrac float64
}

// HR returns the layer's Hamming rate.
func (lq LayerQuant) HR() float64 { return lq.Q.HR() }

// QuantizeNetwork applies the configured pipeline to every
// weight-stationary layer of the network.
func QuantizeNetwork(n *Network, cfg QuantConfig) []LayerQuant {
	bits := cfg.Bits
	if bits == 0 {
		bits = 8
	}
	opt := n.LHROptions()
	var out []LayerQuant
	for _, l := range n.WeightLayers() {
		base := quant.Quantize(l.Weights, bits)
		q := base
		drift := 0.0
		if cfg.UseLHR {
			res := quant.ApplyLHR(l.Weights, bits, opt)
			q = res.After
			drift = res.Drift
		}
		ovf := 0.0
		if cfg.WDSDelta > 0 {
			shifted, nOv := quant.ShiftWeights(q, cfg.WDSDelta)
			q = shifted
			if n := len(base.Codes.Data); n > 0 {
				ovf = float64(nOv) / float64(n)
			}
		}
		out = append(out, LayerQuant{Layer: l, Q: q, Drift: drift, OverflowFrac: ovf})
	}
	return out
}

// HRStats summarizes a quantized network.
type HRStats struct {
	// Average is the element-weighted mean HR over all layers — the
	// paper's HRaverage.
	Average float64
	// Max is the highest per-layer HR — the paper's HRmax.
	Max float64
	// PerLayer holds each layer's HR in layer order.
	PerLayer []float64
	// MeanDrift is the element-weighted mean code drift versus the
	// baseline quantization (WDS's compensated shift contributes no
	// numeric drift; only its rare overflow clamping does).
	MeanDrift float64
}

// Stats computes HR statistics over quantized layers.
func Stats(lqs []LayerQuant) HRStats {
	var st HRStats
	totalElems := 0.0
	weightedHR := 0.0
	weightedDrift := 0.0
	for _, lq := range lqs {
		hr := lq.HR()
		st.PerLayer = append(st.PerLayer, hr)
		if hr > st.Max {
			st.Max = hr
		}
		e := float64(lq.Layer.Elems())
		totalElems += e
		weightedHR += hr * e
		// Overflowed codes moved by up to δ uncompensated; fold them
		// into drift at a conservative half-δ magnitude.
		weightedDrift += (lq.Drift + lq.OverflowFrac*4) * e
	}
	if totalElems > 0 {
		st.Average = weightedHR / totalElems
		st.MeanDrift = weightedDrift / totalElems
	}
	return st
}

// NetworkHR is a convenience: quantize under cfg and summarize.
func NetworkHR(n *Network, cfg QuantConfig) HRStats {
	return Stats(QuantizeNetwork(n, cfg))
}

// Quality returns the surrogate task quality of the network under the
// given stats (accuracy in % or perplexity depending on the model).
func (n *Network) Quality(st HRStats) float64 {
	return n.Profile.Acc.AfterDrift(st.MeanDrift)
}
