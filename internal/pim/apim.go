package pim

import (
	"math"

	"aim/internal/xrand"
)

// Analog PIM path (Fig. 1a): products accumulate as bit-line voltage
// and an ADC digitizes the sum per bit plane. Two analog non-idealities
// matter for AIM (§3.1, §7): finite ADC resolution quantizes each bit
// plane's popcount-weighted sum, and IR-drop perturbs the bit-line
// voltage, directly degrading computational accuracy — which is why
// APIM benefits from IR-drop mitigation in output quality, not just
// power.

// ADC models the per-bit-plane converter.
type ADC struct {
	// Bits is the converter resolution.
	Bits int
	// FullScale is the largest per-plane analog sum the ADC spans
	// (typically the bank's cell count times the max input bit value).
	FullScale float64
}

// Convert digitizes an analog plane sum: uniform quantization over
// [-FullScale, FullScale].
func (a ADC) Convert(analog float64) int64 {
	if a.FullScale <= 0 {
		panic("pim: ADC full scale must be positive")
	}
	levels := float64(int64(1) << uint(a.Bits-1))
	step := a.FullScale / levels
	q := math.Round(analog / step)
	if q > levels-1 {
		q = levels - 1
	}
	if q < -levels {
		q = -levels
	}
	return int64(q * step)
}

// AnalogBank wraps a Bank with the APIM read-out path.
type AnalogBank struct {
	*Bank
	ADC ADC
	// DropGainPerMV converts supply drop (mV) into relative bit-line
	// voltage error; calibrated so the §3.1 effect is visible but small
	// at mitigated drop levels.
	DropGainPerMV float64
}

// NewAnalogBank builds an analog bank with an ADC spanning the bank's
// worst-case plane sum.
func NewAnalogBank(codes []int32, cells, weightBits, adcBits int) *AnalogBank {
	b := NewBank(codes, cells, weightBits)
	maxW := float64(int64(1)<<uint(weightBits-1)) - 1
	return &AnalogBank{
		Bank:          b,
		ADC:           ADC{Bits: adcBits, FullScale: float64(cells) * maxW},
		DropGainPerMV: 0.00035,
	}
}

// DotAnalog computes the bank's MAC through the analog path: per input
// bit plane, the products accumulate as an analog sum perturbed by the
// supply drop, the ADC digitizes it, and the shift-adder combines the
// planes. dropMV is the instantaneous IR-drop; rng supplies the
// bit-line noise (nil for the ideal, noise-free path).
func (b *AnalogBank) DotAnalog(input []int32, inBits int, dropMV float64, rng *xrand.RNG) int64 {
	if len(input) != b.Cells() {
		panic("pim: input width != bank cells")
	}
	var acc int64
	gain := 1 - b.DropGainPerMV*dropMV
	for i := 0; i < inBits; i++ {
		var plane float64
		for k, w := range b.weights {
			bit := (uint32(input[k]) >> uint(i)) & 1
			if bit != 0 {
				plane += float64(w)
			}
		}
		analog := plane * gain
		if rng != nil && dropMV > 0 {
			analog += rng.Normal(0, b.DropGainPerMV*dropMV*b.ADC.FullScale/64)
		}
		digital := b.ADC.Convert(analog)
		if i == inBits-1 {
			acc -= digital << uint(i)
		} else {
			acc += digital << uint(i)
		}
	}
	return acc
}

// AnalogError runs DotAnalog against the exact digital result and
// returns the mean absolute relative error over trials — the §3.1
// accuracy-degradation measurement.
func (b *AnalogBank) AnalogError(inBits int, dropMV float64, trials int, rng *xrand.RNG) float64 {
	errSum, refSum := 0.0, 0.0
	input := make([]int32, b.Cells())
	for t := 0; t < trials; t++ {
		for k := range input {
			input[k] = int32(rng.Intn(1<<uint(inBits-1)) - 1<<uint(inBits-2))
		}
		exact := b.DotDirect(input)
		got := b.DotAnalog(input, inBits, dropMV, rng)
		errSum += math.Abs(float64(got - exact))
		refSum += math.Abs(float64(exact)) + 1
	}
	return errSum / refSum
}
