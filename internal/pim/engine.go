package pim

import (
	"fmt"

	"aim/internal/fxp"
)

// Engine executes weight-stationary integer matrix-vector products on
// the macro fabric, the way the chip actually computes (Fig. 1b /
// Fig. 11): the weight matrix is tiled column-wise into input chunks of
// CellsPerBank (all banks of a macro share those input lines) and
// row-wise into bank groups of BanksPerMacro; each macro produces
// BanksPerMacro partial sums per input chunk, and partial sums are
// accumulated across the macros of the logical set (the A_ij waves).
//
// With a WDS δ configured, the engine loads shifted weights and applies
// the shared shift-compensator correction per input chunk — the full
// Algorithm 1 in hardware form.
type Engine struct {
	cfg    Config
	rows   int
	cols   int
	delta  int
	macros [][]*Macro // [rowTile][colTile]
	comps  []*ShiftCompensator
	// clamped counts weights saturated by the WDS shift.
	clamped int
}

// NewEngine loads the weight matrix W (rows×cols, codes at the config's
// weight width) onto macros. delta=0 loads weights as-is; a positive
// power-of-two delta loads WDS-shifted weights and arms compensators.
func NewEngine(cfg Config, w [][]int32, delta int) *Engine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if len(w) == 0 || len(w[0]) == 0 {
		panic("pim: empty weight matrix")
	}
	if delta < 0 || (delta != 0 && delta&(delta-1) != 0) {
		panic("pim: engine delta must be 0 or a power of two")
	}
	rows, cols := len(w), len(w[0])
	e := &Engine{cfg: cfg, rows: rows, cols: cols, delta: delta}
	hi := fxp.MaxInt(cfg.WeightBits)
	rowTiles := (rows + cfg.BanksPerMacro - 1) / cfg.BanksPerMacro
	colTiles := (cols + cfg.CellsPerBank - 1) / cfg.CellsPerBank
	for rt := 0; rt < rowTiles; rt++ {
		var tileRow []*Macro
		for ct := 0; ct < colTiles; ct++ {
			codes := make([]int32, 0, cfg.WeightsPerMacro())
			for br := 0; br < cfg.BanksPerMacro; br++ {
				r := rt*cfg.BanksPerMacro + br
				bank := make([]int32, cfg.CellsPerBank)
				if r < rows {
					for k := 0; k < cfg.CellsPerBank; k++ {
						c := ct*cfg.CellsPerBank + k
						if c < cols {
							v := int64(w[r][c]) + int64(delta)
							if v > int64(hi) {
								v = int64(hi)
								e.clamped++
							}
							bank[k] = int32(v)
						}
					}
				}
				codes = append(codes, bank...)
			}
			tileRow = append(tileRow, NewMacro(cfg, codes))
		}
		e.macros = append(e.macros, tileRow)
	}
	if delta > 0 {
		// One compensator per column tile (it is shared by all banks of
		// the macros consuming that input chunk, §5.4.2).
		for ct := 0; ct < colTiles; ct++ {
			e.comps = append(e.comps, NewShiftCompensator(delta))
		}
	}
	return e
}

// Rows and Cols report the logical matrix shape.
func (e *Engine) Rows() int { return e.rows }

// Cols reports the logical column count.
func (e *Engine) Cols() int { return e.cols }

// ClampedWeights reports how many weights saturated under WDS.
func (e *Engine) ClampedWeights() int { return e.clamped }

// MacroCount reports the fabric size used.
func (e *Engine) MacroCount() int {
	if len(e.macros) == 0 {
		return 0
	}
	return len(e.macros) * len(e.macros[0])
}

// MatVec computes out = W·x exactly, via bit-serial bank dot products
// and cross-macro partial-sum accumulation; with WDS configured the
// compensator corrections restore the unshifted result for all
// non-clamped weights.
func (e *Engine) MatVec(x []int32, inBits int) []int64 {
	if len(x) != e.cols {
		panic(fmt.Sprintf("pim: input length %d != cols %d", len(x), e.cols))
	}
	out := make([]int64, e.rows)
	chunk := make([]int32, e.cfg.CellsPerBank)
	for ct := 0; ct < len(e.macros[0]); ct++ {
		// Build the shared input chunk (zero-padded at the edge).
		for k := range chunk {
			c := ct*e.cfg.CellsPerBank + k
			if c < e.cols {
				chunk[k] = x[c]
			} else {
				chunk[k] = 0
			}
		}
		var corr int64
		if e.delta > 0 {
			var sum int64
			for _, v := range chunk {
				sum += int64(v)
			}
			corr = e.comps[ct].CorrectionFor(sum)
		}
		for rt, tileRow := range e.macros {
			m := tileRow[ct]
			for br, bank := range m.Banks() {
				r := rt*e.cfg.BanksPerMacro + br
				if r >= e.rows {
					break
				}
				psum := bank.DotSerial(chunk, inBits)
				if e.delta > 0 {
					// ❷/❸: the broadcast correction is added to every
					// bank's partial sum (one pipeline stage later in
					// hardware; algebraically identical here).
					psum += corr
				}
				out[r] += psum
			}
		}
	}
	return out
}

// HR returns the Hamming rate of the loaded (possibly shifted) weights
// across the whole fabric — what IR-Booster sees after task mapping.
func (e *Engine) HR() float64 {
	totalHM := 0
	cells := 0
	for _, tileRow := range e.macros {
		for _, m := range tileRow {
			totalHM += m.hm
			cells += m.cells
		}
	}
	if cells == 0 {
		return 0
	}
	return float64(totalHM) / float64(cells*e.cfg.WeightBits)
}
