package pim

import (
	"math"
	"testing"
	"testing/quick"

	"aim/internal/xrand"
)

func smallCfg() Config {
	return Config{Kind: DPIM, Groups: 1, MacrosPerGroup: 1, BanksPerMacro: 4, CellsPerBank: 8, WeightBits: 8}
}

func randMatrix(g *xrand.RNG, rows, cols, lim int) [][]int32 {
	w := make([][]int32, rows)
	for r := range w {
		w[r] = make([]int32, cols)
		for c := range w[r] {
			w[r][c] = int32(g.Intn(2*lim+1) - lim)
		}
	}
	return w
}

func refMatVec(w [][]int32, x []int32) []int64 {
	out := make([]int64, len(w))
	for r := range w {
		for c := range w[r] {
			out[r] += int64(w[r][c]) * int64(x[c])
		}
	}
	return out
}

// DESIGN.md invariant: the tiled bit-serial engine computes exact
// integer matvecs for any shape, including non-tile-aligned ones.
func TestEngineMatVecExactProperty(t *testing.T) {
	g := xrand.New(1)
	f := func(seed int64) bool {
		rows := 1 + g.Intn(11)
		cols := 1 + g.Intn(21)
		w := randMatrix(g, rows, cols, 127)
		x := make([]int32, cols)
		for i := range x {
			x[i] = int32(g.Intn(255) - 127)
		}
		e := NewEngine(smallCfg(), w, 0)
		got := e.MatVec(x, 8)
		want := refMatVec(w, x)
		for r := range want {
			if got[r] != want[r] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Algorithm 1 end to end in hardware form: WDS-shifted weights plus the
// shared compensator reproduce the unshifted result exactly when no
// weight clamps.
func TestEngineWDSExactProperty(t *testing.T) {
	g := xrand.New(2)
	f := func(seed int64) bool {
		rows := 1 + g.Intn(9)
		cols := 1 + g.Intn(17)
		w := randMatrix(g, rows, cols, 100) // 100+16 < 127: no clamping
		x := make([]int32, cols)
		for i := range x {
			x[i] = int32(g.Intn(255) - 127)
		}
		plain := NewEngine(smallCfg(), w, 0)
		wds := NewEngine(smallCfg(), w, 16)
		if wds.ClampedWeights() != 0 {
			return false
		}
		a := plain.MatVec(x, 8)
		b := wds.MatVec(x, 8)
		for r := range a {
			if a[r] != b[r] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEngineWDSRaisesThenLowersNothing(t *testing.T) {
	// The engine's HR reflects the *deployed* (shifted) codes: shifting
	// a mostly-small-negative matrix by 8 must lower HR.
	g := xrand.New(3)
	rows, cols := 8, 16
	w := make([][]int32, rows)
	for r := range w {
		w[r] = make([]int32, cols)
		for c := range w[r] {
			w[r][c] = int32(-g.Intn(9)) // codes in [-8, 0]
		}
	}
	plain := NewEngine(smallCfg(), w, 0)
	wds := NewEngine(smallCfg(), w, 8)
	if wds.HR() >= plain.HR() {
		t.Errorf("WDS should lower deployed HR: %v -> %v", plain.HR(), wds.HR())
	}
}

func TestEngineValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewEngine(smallCfg(), nil, 0) },
		func() { NewEngine(smallCfg(), [][]int32{{1}}, 12) },
		func() { NewEngine(smallCfg(), [][]int32{{1, 2}}, 0).MatVec([]int32{1}, 8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestEngineClampCounting(t *testing.T) {
	w := [][]int32{{120, 0, -5}}
	e := NewEngine(smallCfg(), w, 16)
	if e.ClampedWeights() != 1 {
		t.Errorf("clamped = %d, want 1", e.ClampedWeights())
	}
	if e.MacroCount() != 1 {
		t.Errorf("macros = %d", e.MacroCount())
	}
}

func TestADCConvertIdealAtHighResolution(t *testing.T) {
	adc := ADC{Bits: 16, FullScale: 1024}
	for _, v := range []float64{0, 1, -1, 513, -1000} {
		got := adc.Convert(v)
		if math.Abs(float64(got)-v) > 1024.0/32768+1e-9 {
			t.Errorf("Convert(%v) = %v", v, got)
		}
	}
}

func TestADCSaturates(t *testing.T) {
	adc := ADC{Bits: 8, FullScale: 128}
	if got := adc.Convert(1e9); got > 128 {
		t.Errorf("positive saturation failed: %d", got)
	}
	if got := adc.Convert(-1e9); got < -129 {
		t.Errorf("negative saturation failed: %d", got)
	}
}

func TestAnalogBankIdealMatchesDigital(t *testing.T) {
	g := xrand.New(4)
	codes := randCodes(5, 32)
	b := NewAnalogBank(codes, 32, 8, 14) // generous ADC, no drop
	input := make([]int32, 32)
	for i := range input {
		input[i] = int32(g.Intn(255) - 127)
	}
	got := b.DotAnalog(input, 8, 0, nil)
	want := b.DotDirect(input)
	// A 14-bit ADC over this range quantizes coarsely enough to leave
	// only small residue.
	if math.Abs(float64(got-want)) > float64(abs64(want))/50+600 {
		t.Errorf("analog %d vs digital %d", got, want)
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestAnalogErrorGrowsWithDrop(t *testing.T) {
	// §3.1: IR-drop directly degrades APIM computational accuracy.
	codes := randCodes(6, 64)
	b := NewAnalogBank(codes, 64, 8, 10)
	low := b.AnalogError(8, 20, 200, xrand.New(7))
	high := b.AnalogError(8, 120, 200, xrand.New(7))
	if high <= low {
		t.Errorf("error at 120 mV (%v) should exceed error at 20 mV (%v)", high, low)
	}
}

func TestAdderTreeSumExact(t *testing.T) {
	tr := NewAdderTree(6, 24)
	products := []int64{1, -2, 3, 4, 100, -50}
	sum, _ := tr.Reduce(products)
	if sum != 56 {
		t.Errorf("sum = %d, want 56", sum)
	}
}

func TestAdderTreeTogglesZeroOnRepeat(t *testing.T) {
	tr := NewAdderTree(8, 24)
	in := []int64{5, 6, 7, 8, 9, 10, 11, 12}
	tr.Reduce(in)
	_, toggles := tr.Reduce(in)
	if toggles != 0 {
		t.Errorf("repeated input toggled %d bits, want 0", toggles)
	}
}

func TestAdderTreeActivityScalesWithHamming(t *testing.T) {
	// Low-Hamming operands toggle fewer tree registers — the Fig. 22b
	// claim that HR optimization helps pure adder trees.
	g := xrand.New(8)
	seqOf := func(lim int64) [][]int64 {
		seq := make([][]int64, 60)
		for i := range seq {
			row := make([]int64, 16)
			for j := range row {
				row[j] = int64(g.Intn(int(2*lim+1))) - lim
			}
			seq[i] = row
		}
		return seq
	}
	dense := NewAdderTree(16, 24).ActivityRate(seqOf(127))
	sparse := NewAdderTree(16, 24).ActivityRate(seqOf(7))
	if sparse >= dense {
		t.Errorf("low-magnitude operands (%v) should toggle less than dense (%v)", sparse, dense)
	}
}

func TestAdderTreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAdderTree(4, 24).Reduce(make([]int64, 9))
}
