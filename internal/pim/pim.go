// Package pim is the cycle-level bit-serial SRAM PIM macro simulator:
// banks of SRAM cells holding quantized weights, bit-serial word-line
// inputs, adder-tree accumulation, the Rtog activity engine (paper
// Eq. 1), and the WDS shift compensator hardware model (Fig. 8).
//
// The chip the paper evaluates — a 7nm, 256-TOPS design with 16 macro
// groups of 4 macros each — is the package's default geometry.
package pim

import (
	"fmt"

	"aim/internal/fxp"
	"aim/internal/stream"
)

// MacroKind distinguishes the two SRAM PIM families of §2.1.
type MacroKind int

const (
	// DPIM accumulates digitally through adder trees (Fig. 1b).
	DPIM MacroKind = iota
	// APIM accumulates as analog bit-line voltage read by ADCs (Fig. 1a).
	APIM
)

// String names the kind.
func (k MacroKind) String() string {
	if k == APIM {
		return "APIM"
	}
	return "DPIM"
}

// Config describes the chip geometry.
type Config struct {
	Kind           MacroKind
	Groups         int // macro groups sharing power and frequency
	MacrosPerGroup int
	BanksPerMacro  int
	CellsPerBank   int // weights per bank (word lines)
	WeightBits     int
}

// DefaultConfig is the paper's 7nm 256-TOPS DPIM chip: 16 groups × 4
// macros (§6.1), with 64 banks of 128 cells per macro.
func DefaultConfig() Config {
	return Config{Kind: DPIM, Groups: 16, MacrosPerGroup: 4, BanksPerMacro: 64, CellsPerBank: 128, WeightBits: 8}
}

// APIMConfig is the 28nm 128×32 APIM macro of §7.
func APIMConfig() Config {
	return Config{Kind: APIM, Groups: 1, MacrosPerGroup: 1, BanksPerMacro: 32, CellsPerBank: 128, WeightBits: 8}
}

// Macros returns the total macro count.
func (c Config) Macros() int { return c.Groups * c.MacrosPerGroup }

// WeightsPerMacro returns the weight capacity of one macro.
func (c Config) WeightsPerMacro() int { return c.BanksPerMacro * c.CellsPerBank }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Groups <= 0 || c.MacrosPerGroup <= 0 || c.BanksPerMacro <= 0 || c.CellsPerBank <= 0 {
		return fmt.Errorf("pim: non-positive geometry %+v", c)
	}
	if c.WeightBits < 2 || c.WeightBits > 16 {
		return fmt.Errorf("pim: weight bits %d out of range", c.WeightBits)
	}
	return nil
}

// Bank is one SRAM bank: CellsPerBank stored weights engaged in
// bit-wise multiplication with the shared bit-serial input lines.
type Bank struct {
	weights []int32
	hams    []int // cached per-cell Hamming weights
	bits    int
	hm      int
}

// NewBank stores the given weight codes (length ≤ cells; the rest of
// the bank holds zeros, as unused rows do in silicon).
func NewBank(codes []int32, cells, bits int) *Bank {
	if len(codes) > cells {
		panic("pim: more codes than cells")
	}
	b := &Bank{weights: make([]int32, cells), hams: make([]int, cells), bits: bits}
	copy(b.weights, codes)
	for i, w := range b.weights {
		h := fxp.Hamming(w, bits)
		b.hams[i] = h
		b.hm += h
	}
	return b
}

// Cells returns the bank size.
func (b *Bank) Cells() int { return len(b.weights) }

// HR returns the Hamming rate of the bank's stored weights.
func (b *Bank) HR() float64 {
	if len(b.weights) == 0 {
		return 0
	}
	return float64(b.hm) / float64(len(b.weights)*b.bits)
}

// RtogCycle evaluates Eq. 1 for one cycle: the fraction of stored
// weight bits ANDed with a toggling input line,
//
//	Rtog = Σ_k Hamming(W_k)·toggle_k / (n·q).
func (b *Bank) RtogCycle(toggles []uint8) float64 {
	if len(toggles) != len(b.weights) {
		panic("pim: toggle width != bank cells")
	}
	sum := 0
	for k, tg := range toggles {
		if tg != 0 {
			sum += b.hams[k]
		}
	}
	return float64(sum) / float64(len(b.weights)*b.bits)
}

// DotSerial computes the bank's multiply-accumulate for one input
// vector, bit-serially: partial products of each input bit plane are
// shifted and added exactly as the shift-adder of Fig. 1 does.
func (b *Bank) DotSerial(input []int32, inBits int) int64 {
	if len(input) != len(b.weights) {
		panic("pim: input width != bank cells")
	}
	var acc int64
	for i := 0; i < inBits; i++ {
		var plane int64
		for k, w := range b.weights {
			bit := int64(fxp.Bit(input[k], i, inBits))
			plane += bit * int64(w)
		}
		if i == inBits-1 {
			// Two's complement: the MSB plane carries negative weight.
			acc -= plane << uint(i)
		} else {
			acc += plane << uint(i)
		}
	}
	return acc
}

// DotDirect is the reference integer dot product used to verify the
// bit-serial path.
func (b *Bank) DotDirect(input []int32) int64 {
	var acc int64
	for k, w := range b.weights {
		acc += int64(w) * int64(input[k])
	}
	return acc
}

// Macro is a PIM macro: banks sharing the same bit-serial input lines
// (§5.4.2: "All banks within a Macro share the same input streams").
type Macro struct {
	cfg   Config
	banks []*Bank
	hm    int
	cells int
}

// NewMacro loads weight codes into a macro, filling banks in order;
// len(codes) must not exceed the macro capacity.
func NewMacro(cfg Config, codes []int32) *Macro {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if len(codes) > cfg.WeightsPerMacro() {
		panic("pim: weight count exceeds macro capacity")
	}
	m := &Macro{cfg: cfg}
	for start := 0; start < len(codes) || len(m.banks) < cfg.BanksPerMacro; start += cfg.CellsPerBank {
		if len(m.banks) == cfg.BanksPerMacro {
			break
		}
		end := start + cfg.CellsPerBank
		if end > len(codes) {
			end = len(codes)
		}
		var chunk []int32
		if start < len(codes) {
			chunk = codes[start:end]
		}
		bank := NewBank(chunk, cfg.CellsPerBank, cfg.WeightBits)
		m.banks = append(m.banks, bank)
		m.hm += bank.hm
		m.cells += bank.Cells()
	}
	return m
}

// Config returns the macro geometry.
func (m *Macro) Config() Config { return m.cfg }

// Banks returns the macro's banks.
func (m *Macro) Banks() []*Bank { return m.banks }

// HR returns the Hamming rate over all stored weights of the macro —
// the quantity IR-Booster receives per macro after task mapping.
func (m *Macro) HR() float64 {
	if m.cells == 0 {
		return 0
	}
	return float64(m.hm) / float64(m.cells*m.cfg.WeightBits)
}

// RtogCycle returns the macro-average Rtog for one cycle; toggles are
// the shared input-line toggles (length CellsPerBank).
func (m *Macro) RtogCycle(toggles []uint8) float64 {
	sum := 0
	for _, b := range m.banks {
		for k, tg := range toggles {
			if tg != 0 {
				sum += b.hams[k]
			}
		}
	}
	return float64(sum) / float64(m.cells*m.cfg.WeightBits)
}

// RtogTrace runs a toggle source to exhaustion (or maxCycles, if
// positive) and returns the per-cycle macro Rtog series.
func (m *Macro) RtogTrace(src stream.ToggleSource, maxCycles int) []float64 {
	if src.Cells() != m.cfg.CellsPerBank {
		panic("pim: toggle source width != cells per bank")
	}
	dst := make([]uint8, src.Cells())
	var out []float64
	for src.NextToggles(dst) {
		out = append(out, m.RtogCycle(dst))
		if maxCycles > 0 && len(out) >= maxCycles {
			break
		}
	}
	return out
}
