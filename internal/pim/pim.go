// Package pim is the cycle-level bit-serial SRAM PIM macro simulator:
// banks of SRAM cells holding quantized weights, bit-serial word-line
// inputs, adder-tree accumulation, the Rtog activity engine (paper
// Eq. 1), and the WDS shift compensator hardware model (Fig. 8).
//
// The chip the paper evaluates — a 7nm, 256-TOPS design with 16 macro
// groups of 4 macros each — is the package's default geometry.
package pim

import (
	"fmt"
	"math/bits"

	"aim/internal/fxp"
	"aim/internal/stream"
)

// MacroKind distinguishes the two SRAM PIM families of §2.1.
type MacroKind int

const (
	// DPIM accumulates digitally through adder trees (Fig. 1b).
	DPIM MacroKind = iota
	// APIM accumulates as analog bit-line voltage read by ADCs (Fig. 1a).
	APIM
)

// String names the kind.
func (k MacroKind) String() string {
	if k == APIM {
		return "APIM"
	}
	return "DPIM"
}

// Config describes the chip geometry.
type Config struct {
	Kind           MacroKind
	Groups         int // macro groups sharing power and frequency
	MacrosPerGroup int
	BanksPerMacro  int
	CellsPerBank   int // weights per bank (word lines)
	WeightBits     int
}

// DefaultConfig is the paper's 7nm 256-TOPS DPIM chip: 16 groups × 4
// macros (§6.1), with 64 banks of 128 cells per macro.
func DefaultConfig() Config {
	return Config{Kind: DPIM, Groups: 16, MacrosPerGroup: 4, BanksPerMacro: 64, CellsPerBank: 128, WeightBits: 8}
}

// APIMConfig is the 28nm 128×32 APIM macro of §7.
func APIMConfig() Config {
	return Config{Kind: APIM, Groups: 1, MacrosPerGroup: 1, BanksPerMacro: 32, CellsPerBank: 128, WeightBits: 8}
}

// Macros returns the total macro count.
func (c Config) Macros() int { return c.Groups * c.MacrosPerGroup }

// WeightsPerMacro returns the weight capacity of one macro.
func (c Config) WeightsPerMacro() int { return c.BanksPerMacro * c.CellsPerBank }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Groups <= 0 || c.MacrosPerGroup <= 0 || c.BanksPerMacro <= 0 || c.CellsPerBank <= 0 {
		return fmt.Errorf("pim: non-positive geometry %+v", c)
	}
	if c.WeightBits < 2 || c.WeightBits > 16 {
		return fmt.Errorf("pim: weight bits %d out of range", c.WeightBits)
	}
	return nil
}

// Bank is one SRAM bank: CellsPerBank stored weights engaged in
// bit-wise multiplication with the shared bit-serial input lines.
//
// Besides the integer weight codes, the bank keeps its storage in the
// packed form Eq. 1 consumes: one weight-bit plane per bit position,
// with cell k at bit k%64 of word k/64 — so the per-cycle Rtog
// numerator is a word-wise AND + popcount over the planes.
type Bank struct {
	weights []int32
	hams    []int // cached per-cell Hamming weights
	// planes[i] is the packed mask of bit i across cells: bit k of the
	// word-split vector is fxp.Bit(weights[k], i, bits).
	planes [][]uint64
	bits   int
	hm     int
}

// NewBank stores the given weight codes (length ≤ cells; the rest of
// the bank holds zeros, as unused rows do in silicon).
func NewBank(codes []int32, cells, bits int) *Bank {
	b := &Bank{weights: make([]int32, cells), hams: make([]int, cells), bits: bits}
	b.planes = make([][]uint64, bits)
	for i := range b.planes {
		b.planes[i] = make([]uint64, stream.Words(cells))
	}
	b.load(codes)
	return b
}

// LoadBank refills a bank with new codes in place, reusing its storage
// when the geometry matches — the per-wave synthetic-bank churn in the
// simulator's hot path would otherwise reallocate every plane for
// every task on every wave. A nil bank or a geometry change allocates
// fresh. Returns the loaded bank.
func LoadBank(b *Bank, codes []int32, cells, bits int) *Bank {
	if b == nil || len(b.weights) != cells || b.bits != bits {
		return NewBank(codes, cells, bits)
	}
	for i := range b.planes {
		clear(b.planes[i])
	}
	b.load(codes)
	return b
}

// load (re)derives the packed planes and Hamming caches from codes;
// planes must be zeroed.
func (b *Bank) load(codes []int32) {
	if len(codes) > len(b.weights) {
		panic("pim: more codes than cells")
	}
	copy(b.weights, codes)
	clear(b.weights[len(codes):])
	b.hm = 0
	for k, w := range b.weights {
		h := fxp.Hamming(w, b.bits)
		b.hams[k] = h
		b.hm += h
		code := fxp.Code(w, b.bits)
		for i := 0; i < b.bits; i++ {
			if code>>uint(i)&1 != 0 {
				b.planes[i][k/64] |= 1 << uint(k%64)
			}
		}
	}
}

// BitPlane returns the packed weight mask of bit position i (cell k at
// bit k%64 of word k/64). The slice is shared; callers must not modify
// it.
func (b *Bank) BitPlane(i int) []uint64 { return b.planes[i] }

// Cells returns the bank size.
func (b *Bank) Cells() int { return len(b.weights) }

// HR returns the Hamming rate of the bank's stored weights.
func (b *Bank) HR() float64 {
	if len(b.weights) == 0 {
		return 0
	}
	return float64(b.hm) / float64(len(b.weights)*b.bits)
}

// RtogCycle evaluates Eq. 1 for one cycle: the fraction of stored
// weight bits ANDed with a toggling input line,
//
//	Rtog = Σ_k Hamming(W_k)·toggle_k / (n·q),
//
// computed word-wise: the numerator is Σ_i popcount(plane_i AND T)
// over the packed weight-bit planes. toggles holds the packed toggle
// indicators (length stream.Words(Cells())).
func (b *Bank) RtogCycle(toggles []uint64) float64 {
	return float64(b.RtogCounts(toggles)) / float64(len(b.weights)*b.bits)
}

// RtogCounts returns the integer Eq. 1 numerator for one cycle: the
// number of stored weight bits whose input line toggles. The Rtog
// denominator is Cells()·weight bits.
func (b *Bank) RtogCounts(toggles []uint64) int {
	if len(toggles) != stream.Words(len(b.weights)) {
		panic("pim: packed toggle width != bank cells")
	}
	sum := 0
	for _, plane := range b.planes {
		for w, m := range plane {
			sum += bits.OnesCount64(m & toggles[w])
		}
	}
	return sum
}

// RtogCycleBytes is the legacy one-byte-per-bit Rtog evaluation. It is
// retained as the scalar reference implementation: equivalence tests
// and benchmarks compare the packed word-wise path against it.
func (b *Bank) RtogCycleBytes(toggles []uint8) float64 {
	if len(toggles) != len(b.weights) {
		panic("pim: toggle width != bank cells")
	}
	sum := 0
	for k, tg := range toggles {
		if tg != 0 {
			sum += b.hams[k]
		}
	}
	return float64(sum) / float64(len(b.weights)*b.bits)
}

// DotSerial computes the bank's multiply-accumulate for one input
// vector, bit-serially: partial products of each input bit plane are
// shifted and added exactly as the shift-adder of Fig. 1 does.
func (b *Bank) DotSerial(input []int32, inBits int) int64 {
	if len(input) != len(b.weights) {
		panic("pim: input width != bank cells")
	}
	var acc int64
	for i := 0; i < inBits; i++ {
		var plane int64
		for k, w := range b.weights {
			bit := int64(fxp.Bit(input[k], i, inBits))
			plane += bit * int64(w)
		}
		if i == inBits-1 {
			// Two's complement: the MSB plane carries negative weight.
			acc -= plane << uint(i)
		} else {
			acc += plane << uint(i)
		}
	}
	return acc
}

// DotDirect is the reference integer dot product used to verify the
// bit-serial path.
func (b *Bank) DotDirect(input []int32) int64 {
	var acc int64
	for k, w := range b.weights {
		acc += int64(w) * int64(input[k])
	}
	return acc
}

// Macro is a PIM macro: banks sharing the same bit-serial input lines
// (§5.4.2: "All banks within a Macro share the same input streams").
//
// Because every bank sees the same toggle vector T, the macro's Eq. 1
// numerator collapses to Σ_k H(k)·T_k where H(k) is the total Hamming
// weight stored on input line k across all banks. The macro keeps H in
// bit-sliced packed form (hamPlanes[j] holds bit j of H(k) at packed
// position k), so one cycle costs ⌈log2(max H)+1⌉ AND+popcount passes
// over ⌈cells/64⌉ words instead of a banks×cells byte walk.
type Macro struct {
	cfg   Config
	banks []*Bank
	hm    int
	cells int
	// hamPlanes is the bit-sliced per-line total Hamming weight:
	// Σ_k H(k)·T_k = Σ_j 2^j · popcount(hamPlanes[j] AND T).
	hamPlanes [][]uint64
}

// NewMacro loads weight codes into a macro, filling banks in order;
// len(codes) must not exceed the macro capacity.
func NewMacro(cfg Config, codes []int32) *Macro {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if len(codes) > cfg.WeightsPerMacro() {
		panic("pim: weight count exceeds macro capacity")
	}
	m := &Macro{cfg: cfg}
	for start := 0; start < len(codes) || len(m.banks) < cfg.BanksPerMacro; start += cfg.CellsPerBank {
		if len(m.banks) == cfg.BanksPerMacro {
			break
		}
		end := start + cfg.CellsPerBank
		if end > len(codes) {
			end = len(codes)
		}
		var chunk []int32
		if start < len(codes) {
			chunk = codes[start:end]
		}
		bank := NewBank(chunk, cfg.CellsPerBank, cfg.WeightBits)
		m.banks = append(m.banks, bank)
		m.hm += bank.hm
		m.cells += bank.Cells()
	}
	// Bit-slice the per-line total Hamming weights across banks.
	lineHams := make([]int, cfg.CellsPerBank)
	maxHam := 0
	for _, b := range m.banks {
		for k, h := range b.hams {
			lineHams[k] += h
			if lineHams[k] > maxHam {
				maxHam = lineHams[k]
			}
		}
	}
	m.hamPlanes = make([][]uint64, bits.Len(uint(maxHam)))
	for j := range m.hamPlanes {
		plane := make([]uint64, stream.Words(cfg.CellsPerBank))
		for k, h := range lineHams {
			if h>>uint(j)&1 != 0 {
				plane[k/64] |= 1 << uint(k%64)
			}
		}
		m.hamPlanes[j] = plane
	}
	return m
}

// Config returns the macro geometry.
func (m *Macro) Config() Config { return m.cfg }

// Banks returns the macro's banks.
func (m *Macro) Banks() []*Bank { return m.banks }

// HR returns the Hamming rate over all stored weights of the macro —
// the quantity IR-Booster receives per macro after task mapping.
func (m *Macro) HR() float64 {
	if m.cells == 0 {
		return 0
	}
	return float64(m.hm) / float64(m.cells*m.cfg.WeightBits)
}

// RtogCycle returns the macro-average Rtog for one cycle; toggles are
// the packed shared input-line toggles (stream.Words(CellsPerBank)
// words). The sum runs over the bit-sliced Hamming planes, so a
// default-geometry macro (64 banks × 128 cells) costs ~20 AND+popcount
// word operations instead of an 8192-step byte walk.
func (m *Macro) RtogCycle(toggles []uint64) float64 {
	if len(toggles) != stream.Words(m.cfg.CellsPerBank) {
		panic("pim: packed toggle width != cells per bank")
	}
	sum := 0
	for j, plane := range m.hamPlanes {
		c := 0
		for w, mask := range plane {
			c += bits.OnesCount64(mask & toggles[w])
		}
		sum += c << uint(j)
	}
	return float64(sum) / float64(m.cells*m.cfg.WeightBits)
}

// RtogCycleBytes is the legacy one-byte-per-bit macro Rtog walk,
// retained as the scalar reference implementation for equivalence
// tests and benchmarks.
func (m *Macro) RtogCycleBytes(toggles []uint8) float64 {
	sum := 0
	for _, b := range m.banks {
		for k, tg := range toggles {
			if tg != 0 {
				sum += b.hams[k]
			}
		}
	}
	return float64(sum) / float64(m.cells*m.cfg.WeightBits)
}

// RtogTrace runs a toggle source to exhaustion (or maxCycles, if
// positive) and returns the per-cycle macro Rtog series.
func (m *Macro) RtogTrace(src stream.ToggleSource, maxCycles int) []float64 {
	if src.Cells() != m.cfg.CellsPerBank {
		panic("pim: toggle source width != cells per bank")
	}
	dst := make([]uint64, stream.Words(src.Cells()))
	var out []float64
	for src.NextToggles(dst) {
		out = append(out, m.RtogCycle(dst))
		if maxCycles > 0 && len(out) >= maxCycles {
			break
		}
	}
	return out
}
