package pim

import (
	"math"
	"testing"
	"testing/quick"

	"aim/internal/fxp"
	"aim/internal/stream"
	"aim/internal/xrand"
)

func randCodes(seed int64, n int) []int32 {
	g := xrand.New(seed)
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(g.Intn(255) - 127)
	}
	return out
}

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Macros() != 64 {
		t.Errorf("macros = %d, want 64 (16 groups x 4)", c.Macros())
	}
	if c.WeightsPerMacro() != 64*128 {
		t.Errorf("weights per macro = %d", c.WeightsPerMacro())
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Groups: 0, MacrosPerGroup: 1, BanksPerMacro: 1, CellsPerBank: 1, WeightBits: 8},
		{Groups: 1, MacrosPerGroup: 1, BanksPerMacro: 1, CellsPerBank: 1, WeightBits: 1},
	}
	for _, c := range bad {
		if c.Validate() == nil {
			t.Errorf("config %+v should be invalid", c)
		}
	}
}

func TestBankHRMatchesFxp(t *testing.T) {
	codes := randCodes(1, 128)
	b := NewBank(codes, 128, 8)
	if got, want := b.HR(), fxp.HR(codes, 8); math.Abs(got-want) > 1e-12 {
		t.Errorf("bank HR = %v, want %v", got, want)
	}
}

func TestBankPartialFillHoldsZeros(t *testing.T) {
	codes := randCodes(2, 40)
	b := NewBank(codes, 128, 8)
	// HM over 128 cells equals HM over the 40 loaded codes.
	if got, want := b.HR()*128*8, float64(fxp.HM(codes, 8)); math.Abs(got-want) > 1e-9 {
		t.Errorf("partial bank HM = %v, want %v", got, want)
	}
}

func TestRtogCycleWorstCaseEqualsHR(t *testing.T) {
	codes := randCodes(3, 128)
	b := NewBank(codes, 128, 8)
	all := make([]uint64, stream.Words(128))
	for i := range all {
		all[i] = ^uint64(0)
	}
	if got, want := b.RtogCycle(all), b.HR(); math.Abs(got-want) > 1e-12 {
		t.Errorf("worst-case Rtog = %v, want HR %v", got, want)
	}
	none := make([]uint64, stream.Words(128))
	if got := b.RtogCycle(none); got != 0 {
		t.Errorf("no-toggle Rtog = %v, want 0", got)
	}
}

// DESIGN.md invariant 1: sup(Rtog) = HR for any weights and stream.
func TestRtogNeverExceedsHRProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := xrand.New(seed)
		codes := randCodes(seed, 64)
		b := NewBank(codes, 64, 8)
		hr := b.HR()
		src := stream.NewBernoulli(64, 50, 0.5, 0.3, g)
		dst := make([]uint64, stream.Words(64))
		for src.NextToggles(dst) {
			if b.RtogCycle(dst) > hr+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestBankRtogPackedMatchesBytes proves the word-wise AND+popcount
// path is bit-identical to the legacy byte walk for arbitrary weights
// and toggle vectors, including ragged (non-multiple-of-64) widths and
// partially filled banks.
func TestBankRtogPackedMatchesBytes(t *testing.T) {
	f := func(seed int64) bool {
		g := xrand.New(seed)
		cells := 33 + int(g.Intn(160))
		loaded := int(g.Intn(cells + 1))
		b := NewBank(randCodes(seed, loaded), cells, 8)
		src := stream.NewBernoulli(cells, 10, 0.5, 0.3, g)
		dst := make([]uint64, stream.Words(cells))
		for src.NextToggles(dst) {
			packed := b.RtogCycle(dst)
			legacy := b.RtogCycleBytes(stream.Unpack(dst, cells))
			if packed != legacy {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestMacroRtogPackedMatchesBytes: the macro's bit-sliced Hamming
// planes produce the exact same float64 Rtog series as the legacy
// per-bank byte walk — the equivalence guarantee of the packed
// refactor.
func TestMacroRtogPackedMatchesBytes(t *testing.T) {
	f := func(seed int64) bool {
		g := xrand.New(seed)
		cfg := Config{Kind: DPIM, Groups: 1, MacrosPerGroup: 1, BanksPerMacro: 1 + int(g.Intn(8)), CellsPerBank: 65 + int(g.Intn(80)), WeightBits: 8}
		loaded := int(g.Intn(cfg.WeightsPerMacro() + 1))
		m := NewMacro(cfg, randCodes(seed, loaded))
		src := stream.NewBernoulli(cfg.CellsPerBank, 10, 0.5, 0.3, g)
		dst := make([]uint64, stream.Words(cfg.CellsPerBank))
		for src.NextToggles(dst) {
			if m.RtogCycle(dst) != m.RtogCycleBytes(stream.Unpack(dst, cfg.CellsPerBank)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestBankBitPlanes: plane i bit k mirrors fxp.Bit(weight k, i).
func TestBankBitPlanes(t *testing.T) {
	codes := randCodes(9, 70)
	b := NewBank(codes, 70, 8)
	for i := 0; i < 8; i++ {
		plane := stream.Unpack(b.BitPlane(i), 70)
		for k, w := range codes {
			if want := uint8(fxp.Bit(w, i, 8)); plane[k] != want {
				t.Fatalf("plane %d cell %d = %d, want %d", i, k, plane[k], want)
			}
		}
		for k := len(codes); k < 70; k++ {
			if plane[k] != 0 {
				t.Fatalf("plane %d unloaded cell %d must be 0", i, k)
			}
		}
	}
}

func TestDotSerialMatchesDirectProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := xrand.New(seed)
		codes := randCodes(seed+1000, 32)
		b := NewBank(codes, 32, 8)
		input := make([]int32, 32)
		for i := range input {
			input[i] = int32(g.Intn(255) - 127)
		}
		return b.DotSerial(input, 8) == b.DotDirect(input)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMacroLoading(t *testing.T) {
	cfg := Config{Kind: DPIM, Groups: 1, MacrosPerGroup: 1, BanksPerMacro: 4, CellsPerBank: 8, WeightBits: 8}
	codes := randCodes(4, 20) // 2.5 banks worth
	m := NewMacro(cfg, codes)
	if len(m.Banks()) != 4 {
		t.Fatalf("banks = %d, want 4", len(m.Banks()))
	}
	if got, want := m.HR()*float64(4*8*8), float64(fxp.HM(codes, 8)); math.Abs(got-want) > 1e-9 {
		t.Errorf("macro HM = %v, want %v", got, want)
	}
}

func TestMacroOverCapacityPanics(t *testing.T) {
	cfg := Config{Kind: DPIM, Groups: 1, MacrosPerGroup: 1, BanksPerMacro: 2, CellsPerBank: 4, WeightBits: 8}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMacro(cfg, randCodes(5, 9))
}

func TestMacroRtogTrace(t *testing.T) {
	cfg := Config{Kind: DPIM, Groups: 1, MacrosPerGroup: 1, BanksPerMacro: 2, CellsPerBank: 16, WeightBits: 8}
	m := NewMacro(cfg, randCodes(6, 32))
	g := xrand.New(7)
	trace := m.RtogTrace(stream.NewBernoulli(16, 100, 0.4, 0.1, g), 0)
	if len(trace) != 100 {
		t.Fatalf("trace length = %d, want 100", len(trace))
	}
	hr := m.HR()
	for i, r := range trace {
		if r < 0 || r > hr+1e-12 {
			t.Fatalf("trace[%d] = %v outside [0, HR=%v]", i, r, hr)
		}
	}
	capped := m.RtogTrace(stream.NewBernoulli(16, 100, 0.4, 0.1, xrand.New(7)), 10)
	if len(capped) != 10 {
		t.Errorf("maxCycles cap ignored: %d", len(capped))
	}
}

func TestShiftCompensatorPipeline(t *testing.T) {
	sc := NewShiftCompensator(8)
	if sc.Delta() != 8 {
		t.Fatalf("delta = %d", sc.Delta())
	}
	if _, ok := sc.Step(10); ok {
		t.Error("first step should be unprimed")
	}
	corr, ok := sc.Step(20)
	if !ok || corr != -80 {
		t.Errorf("second step = %d,%v want -80,true (correction of first sum)", corr, ok)
	}
	corr, _ = sc.Step(0)
	if corr != -160 {
		t.Errorf("third step = %d, want -160", corr)
	}
}

func TestShiftCompensatorMatchesArithmetic(t *testing.T) {
	sc := NewShiftCompensator(16)
	for _, sum := range []int64{0, 1, -5, 1000, -123456} {
		if got, want := sc.CorrectionFor(sum), -sum*16; got != want {
			t.Errorf("CorrectionFor(%d) = %d, want %d", sum, got, want)
		}
	}
}

func TestShiftCompensatorRejectsNonPow2(t *testing.T) {
	for _, d := range []int{0, -8, 3, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for delta %d", d)
				}
			}()
			NewShiftCompensator(d)
		}()
	}
}

func TestSCOverheadWithinPaperBounds(t *testing.T) {
	area, power := SCOverhead(DefaultConfig())
	if area <= 0 || area > 0.002 {
		t.Errorf("SC area fraction = %v, want (0, 0.2%%]", area)
	}
	if power <= 0 || power > 0.01 {
		t.Errorf("SC power fraction = %v, want (0, 1%%]", power)
	}
}

func TestMacroKindString(t *testing.T) {
	if DPIM.String() != "DPIM" || APIM.String() != "APIM" {
		t.Error("kind names wrong")
	}
	if APIMConfig().Kind != APIM {
		t.Error("APIMConfig kind")
	}
}
