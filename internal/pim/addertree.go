package pim

import "aim/internal/fxp"

// AdderTree models the digital accumulation fabric of a DPIM bank
// (Fig. 1b) at the register level: a binary tree reducing the per-cell
// partial products. Its switching activity — the number of register
// bits that flip between consecutive cycles — is what the §7 "pure
// adder tree" evaluation (Fig. 22b) measures: even without SRAM
// bit-cells, the tree's toggles scale with the Hamming content of the
// operands, so HR optimization mitigates IR-drop in any bit-serial MAC
// fabric (TPU/GPU-style datapaths included).
type AdderTree struct {
	leaves int
	bits   int
	// nodes holds the previous cycle's value of every internal node,
	// level by level, for toggle counting.
	nodes [][]int64
}

// NewAdderTree builds a tree over the given number of leaves (rounded
// up to a power of two) with the given register width for toggle
// accounting.
func NewAdderTree(leaves, bits int) *AdderTree {
	if leaves <= 0 {
		panic("pim: adder tree needs at least one leaf")
	}
	n := 1
	for n < leaves {
		n *= 2
	}
	t := &AdderTree{leaves: n, bits: bits}
	for width := n / 2; width >= 1; width /= 2 {
		t.nodes = append(t.nodes, make([]int64, width))
	}
	return t
}

// Leaves returns the (rounded-up) leaf count.
func (t *AdderTree) Leaves() int { return t.leaves }

// Reduce accumulates one cycle's partial products through the tree,
// returning the root sum and the number of register bits that toggled
// versus the previous cycle. Inputs shorter than Leaves are
// zero-padded.
func (t *AdderTree) Reduce(products []int64) (sum int64, toggles int) {
	if len(products) > t.leaves {
		panic("pim: too many products for tree")
	}
	cur := make([]int64, t.leaves)
	copy(cur, products)
	for lvl := range t.nodes {
		next := t.nodes[lvl]
		for i := range next {
			v := cur[2*i] + cur[2*i+1]
			toggles += toggleBits(next[i], v, t.bits)
			next[i] = v
		}
		cur = next
	}
	return cur[0], toggles
}

// toggleBits counts differing bits between two register values at the
// given width (saturating into range first: real registers are sized).
func toggleBits(a, b int64, bits int) int {
	ca := fxp.Code(fxp.Clamp(a, bits), bits)
	cb := fxp.Code(fxp.Clamp(b, bits), bits)
	x := ca ^ cb
	n := 0
	for x != 0 {
		n += int(x & 1)
		x >>= 1
	}
	return n
}

// ActivityRate runs a sequence of product vectors through the tree and
// returns toggled register bits per cycle per register bit — the
// adder-tree analogue of Rtog.
func (t *AdderTree) ActivityRate(sequence [][]int64) float64 {
	if len(sequence) == 0 {
		return 0
	}
	totalRegs := 0
	for _, lvl := range t.nodes {
		totalRegs += len(lvl)
	}
	toggles := 0
	for _, products := range sequence {
		_, tg := t.Reduce(products)
		toggles += tg
	}
	return float64(toggles) / float64(len(sequence)*totalRegs*t.bits)
}
