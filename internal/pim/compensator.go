package pim

import "math/bits"

// ShiftCompensator models the WDS correction hardware of §5.4.2
// (Fig. 8): one compensator sits beside a macro's banks, shares their
// input stream, and performs
//
//	❶ Correction calculation: PSUM' = Sum(inputs) << log2(δ);
//	                          Correction = ~PSUM' + 1   (negation)
//	❷ Broadcast: one correction term serves all banks
//	❸ Pipelined correcting: a register delays application by one cycle
//	  so the correction add never sits on the MAC critical path.
//
// δ must be a power of two (the multiply is a shift).
type ShiftCompensator struct {
	shift uint
	// reg is the pipeline register between correction calculation and
	// the correcting addition.
	reg    int64
	primed bool
}

// NewShiftCompensator builds a compensator for shift δ.
func NewShiftCompensator(delta int) *ShiftCompensator {
	if delta <= 0 || delta&(delta-1) != 0 {
		panic("pim: shift compensator delta must be a positive power of two")
	}
	return &ShiftCompensator{shift: uint(bits.TrailingZeros(uint(delta)))}
}

// Delta returns δ.
func (c *ShiftCompensator) Delta() int { return 1 << c.shift }

// Step advances the pipeline one cycle: it computes the correction for
// the current cycle's input sum (❶, using shift and two's-complement
// negation exactly as the hardware does) and returns the correction
// computed in the *previous* cycle (❸), with ok reporting whether the
// pipeline was primed. The first cycle yields ok=false: the MAC result
// of cycle t is corrected at cycle t+1.
func (c *ShiftCompensator) Step(inputSum int64) (correction int64, ok bool) {
	correction, ok = c.reg, c.primed
	psum := inputSum << c.shift
	c.reg = ^psum + 1 // two's-complement negation: -Sum(inputs)·δ
	c.primed = true
	return correction, ok
}

// CorrectionFor is the combinational value ❶ produces for an input sum
// (exposed for verification against quant.Correction).
func (c *ShiftCompensator) CorrectionFor(inputSum int64) int64 {
	return ^(inputSum << c.shift) + 1
}

// SCOverhead reports the area and power cost of the compensator
// relative to the whole PIM chip. The paper's synthesis results
// (§6.10.2) put it under 0.2% area and under 1% power because all
// banks of a macro share one compensator; the model scales the per-bank
// fraction accordingly.
func SCOverhead(cfg Config) (areaFrac, powerFrac float64) {
	// One adder + register + shifter versus BanksPerMacro full
	// bank datapaths: a bank's MAC datapath is roughly CellsPerBank
	// multipliers plus an adder tree; the compensator is about two
	// adder-equivalents wide.
	perMacroCost := 2.0
	macroCost := float64(cfg.BanksPerMacro) * (float64(cfg.CellsPerBank)/8 + 4)
	areaFrac = perMacroCost / macroCost
	// The compensator toggles once per cycle versus the banks' full
	// activity; its dynamic power fraction is a few times its area
	// fraction because it always switches.
	powerFrac = 4 * areaFrac
	return areaFrac, powerFrac
}
