package pim

import (
	"testing"

	"aim/internal/stream"
	"aim/internal/xrand"
)

// benchToggles builds a default-geometry macro (64 banks × 128 cells)
// and a ~50%-density toggle vector, in both layouts.
func benchToggles(b *testing.B) (*Macro, []uint64, []uint8) {
	b.Helper()
	cfg := DefaultConfig()
	m := NewMacro(cfg, randCodes(1, cfg.WeightsPerMacro()))
	g := xrand.New(2)
	bytes := make([]uint8, cfg.CellsPerBank)
	for i := range bytes {
		if g.Bernoulli(0.5) {
			bytes[i] = 1
		}
	}
	return m, stream.Pack(bytes), bytes
}

// BenchmarkRtogPacked measures the packed word-wise Eq. 1 evaluation
// (bit-sliced Hamming planes, AND + popcount) on a full default macro.
// Compare against BenchmarkRtogLegacy; the acceptance bar is ≥3x.
func BenchmarkRtogPacked(b *testing.B) {
	m, words, _ := benchToggles(b)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += m.RtogCycle(words)
	}
	_ = sink
}

// BenchmarkRtogLegacy measures the historical one-byte-per-bit walk
// over banks × cells — the pre-refactor hot loop, retained as the
// reference implementation.
func BenchmarkRtogLegacy(b *testing.B) {
	m, _, bytes := benchToggles(b)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += m.RtogCycleBytes(bytes)
	}
	_ = sink
}

// BenchmarkRtogTracePacked measures the full trace loop (toggle
// generation + packed Rtog) the Fig. 4/5 experiments run per macro.
func BenchmarkRtogTracePacked(b *testing.B) {
	cfg := DefaultConfig()
	m := NewMacro(cfg, randCodes(1, cfg.WeightsPerMacro()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := stream.NewBernoulli(cfg.CellsPerBank, 100, 0.5, 0.1, xrand.New(3))
		if len(m.RtogTrace(src, 0)) != 100 {
			b.Fatal("short trace")
		}
	}
}
