package sim

import (
	"math"
	"testing"

	"aim/internal/irdrop"
	"aim/internal/pim"
	"aim/internal/vf"
)

// TestSpatialParallelMatchesSerial: the acceptance bar for the spatial
// tier's determinism — per-shard solver sessions, Reset at wave
// boundaries, and schedule-order merging must make Fidelity=SpatialPDN
// bit-identical for any worker count, warm state or not.
func TestSpatialParallelMatchesSerial(t *testing.T) {
	_, aim, net := compileBoth(t, "resnet18")
	cfg := pim.DefaultConfig()
	serialOpt := DefaultOptions(net.Transformer, vf.LowPower)
	serialOpt.Parallel = 1
	serialOpt.Fidelity = SpatialPDN
	serial := Run(aim, cfg, serialOpt)
	warm := NewWarmState()
	for _, workers := range []int{0, 2, 3, 5} {
		for _, w := range []*WarmState{nil, warm} {
			opt := serialOpt
			opt.Parallel = workers
			opt.Warm = w
			par := Run(aim, cfg, opt)
			if par.AvgMacroPowerMW != serial.AvgMacroPowerMW ||
				par.TOPS != serial.TOPS ||
				par.WorstDropMV != serial.WorstDropMV ||
				par.WorstWeightOpDropMV != serial.WorstWeightOpDropMV ||
				par.AvgDropMV != serial.AvgDropMV ||
				par.AvgLevelRtog != serial.AvgLevelRtog ||
				par.Failures != serial.Failures ||
				par.Cycles != serial.Cycles ||
				par.UsefulCycles != serial.UsefulCycles ||
				par.DelayFactor != serial.DelayFactor {
				t.Errorf("SpatialPDN Parallel=%d warm=%v diverges from serial:\n  par=%+v\n  ser=%+v",
					workers, w != nil, par, serial)
			}
			for i := range par.DropTraceMV {
				if par.DropTraceMV[i] != serial.DropTraceMV[i] {
					t.Fatalf("SpatialPDN Parallel=%d drop trace diverges at cycle %d", workers, i)
				}
			}
		}
	}
}

// TestSpatialAgreesWithAnalyticTier: on the default floorplan the
// spatial tier's headline drops must land within the documented
// calibration band of the analytic-drop packed tier — same activity
// engine, so any difference is the estimator layer's.
func TestSpatialAgreesWithAnalyticTier(t *testing.T) {
	_, aim, net := compileBoth(t, "resnet18")
	cfg := pim.DefaultConfig()
	packedOpt := DefaultOptions(net.Transformer, vf.LowPower)
	packedOpt.Fidelity = PackedToggles
	spatialOpt := DefaultOptions(net.Transformer, vf.LowPower)
	spatialOpt.Fidelity = SpatialPDN
	packed := Run(aim, cfg, packedOpt)
	spatial := Run(aim, cfg, spatialOpt)
	if d := math.Abs(packed.WorstDropMV - spatial.WorstDropMV); d > irdrop.SpatialCalibrationBandMV {
		t.Errorf("worst drop: packed %.1f mV vs spatial %.1f mV (band %v)",
			packed.WorstDropMV, spatial.WorstDropMV, irdrop.SpatialCalibrationBandMV)
	}
	if d := math.Abs(packed.AvgDropMV - spatial.AvgDropMV); d > irdrop.SpatialCalibrationBandMV {
		t.Errorf("avg drop: packed %.1f mV vs spatial %.1f mV (band %v)",
			packed.AvgDropMV, spatial.AvgDropMV, irdrop.SpatialCalibrationBandMV)
	}
	if spatial.Failures == packed.Failures {
		t.Log("note: spatial and packed failure counts coincide (expected to differ)")
	}
	if spatial.WorstDropMV <= 0 || spatial.AvgDropMV <= 0 {
		t.Fatalf("spatial tier reported empty drops: %+v", spatial)
	}
}

// TestSpatialWindowDeterminism: the solve cadence is a fidelity knob,
// not a stochastic one — a fixed window must reproduce bit-identically
// and different windows are allowed to (and generally do) differ.
func TestSpatialWindowDeterminism(t *testing.T) {
	_, aim, net := compileBoth(t, "mobilenetv2")
	cfg := pim.DefaultConfig()
	opt := DefaultOptions(net.Transformer, vf.LowPower)
	opt.Fidelity = SpatialPDN
	opt.SpatialWindow = 2
	a := Run(aim, cfg, opt)
	b := Run(aim, cfg, opt)
	if a.AvgDropMV != b.AvgDropMV || a.Failures != b.Failures || a.TOPS != b.TOPS {
		t.Error("fixed SpatialWindow must be deterministic")
	}
	opt.SpatialWindow = 1
	c := Run(aim, cfg, opt)
	if c.AvgDropMV <= 0 {
		t.Fatal("window=1 run reported no drops")
	}
}

// TestAggregateAddTruncatesWeightedCounts pins the rounding semantics
// of the schedule-order merge: weighted integer counters (cycles,
// useful cycles, failures) truncate toward zero via the int conversion
// — intentionally, because a wave's Rounds weight is integral in
// production and any change here would shift every pinned experiment
// table. This must not drift as estimator tiers come and go.
func TestAggregateAddTruncatesWeightedCounts(t *testing.T) {
	var a aggregate
	a.add(waveResult{cycles: 3, useful: 3, failures: 3}, 0.5)
	if a.cycles != 1 || a.useful != 1 || a.failures != 1 {
		t.Errorf("weight 0.5 of 3 = (%d, %d, %d), want truncation to (1, 1, 1)",
			a.cycles, a.useful, a.failures)
	}
	a.add(waveResult{cycles: 1, useful: 1, failures: 1}, 0.99)
	if a.cycles != 1 || a.useful != 1 || a.failures != 1 {
		t.Errorf("weight 0.99 of 1 must truncate to 0, got (%d, %d, %d)",
			a.cycles, a.useful, a.failures)
	}
	// Integral weights — the production case — accumulate exactly.
	a.add(waveResult{cycles: 2, useful: 2, failures: 2}, 3)
	if a.cycles != 7 || a.useful != 7 || a.failures != 7 {
		t.Errorf("integral weight drifted: (%d, %d, %d), want (7, 7, 7)",
			a.cycles, a.useful, a.failures)
	}
}

// BenchmarkSimSpatial measures the spatial tier serving the default
// die serially; the acceptance bar is ≤ 5x BenchmarkSimPacked (the
// warm V-cycle must amortize, not dominate).
func BenchmarkSimSpatial(b *testing.B) { benchSimFidelity(b, SpatialPDN, false, 1) }

// BenchmarkSimSpatialParallel is the production path: chunked waves,
// one warm solver session per worker.
func BenchmarkSimSpatialParallel(b *testing.B) { benchSimFidelity(b, SpatialPDN, false, 0) }
