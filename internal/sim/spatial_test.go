package sim

import (
	"math"
	"reflect"
	"testing"

	"aim/internal/compiler"
	"aim/internal/irdrop"
	"aim/internal/model"
	"aim/internal/pim"
	"aim/internal/vf"
)

// TestSpatialParallelMatchesSerial: the acceptance bar for the spatial
// tier's determinism — per-shard solver sessions, Reset at wave
// boundaries, and schedule-order merging must make Fidelity=SpatialPDN
// bit-identical for any worker count, warm state or not.
func TestSpatialParallelMatchesSerial(t *testing.T) {
	_, aim, net := compileBoth(t, "resnet18")
	cfg := pim.DefaultConfig()
	serialOpt := DefaultOptions(net.Transformer, vf.LowPower)
	serialOpt.Parallel = 1
	serialOpt.Fidelity = SpatialPDN
	serial := Run(aim, cfg, serialOpt)
	warm := NewWarmState()
	for _, workers := range []int{0, 2, 3, 5} {
		for _, w := range []*WarmState{nil, warm} {
			opt := serialOpt
			opt.Parallel = workers
			opt.Warm = w
			par := Run(aim, cfg, opt)
			if par.AvgMacroPowerMW != serial.AvgMacroPowerMW ||
				par.TOPS != serial.TOPS ||
				par.WorstDropMV != serial.WorstDropMV ||
				par.WorstWeightOpDropMV != serial.WorstWeightOpDropMV ||
				par.AvgDropMV != serial.AvgDropMV ||
				par.AvgLevelRtog != serial.AvgLevelRtog ||
				par.Failures != serial.Failures ||
				par.Cycles != serial.Cycles ||
				par.UsefulCycles != serial.UsefulCycles ||
				par.DelayFactor != serial.DelayFactor {
				t.Errorf("SpatialPDN Parallel=%d warm=%v diverges from serial:\n  par=%+v\n  ser=%+v",
					workers, w != nil, par, serial)
			}
			for i := range par.DropTraceMV {
				if par.DropTraceMV[i] != serial.DropTraceMV[i] {
					t.Fatalf("SpatialPDN Parallel=%d drop trace diverges at cycle %d", workers, i)
				}
			}
		}
	}
}

// TestSpatialAgreesWithAnalyticTier: on the default floorplan the
// spatial tier's headline drops must land within the documented
// calibration band of the analytic-drop packed tier — same activity
// engine, so any difference is the estimator layer's.
func TestSpatialAgreesWithAnalyticTier(t *testing.T) {
	_, aim, net := compileBoth(t, "resnet18")
	cfg := pim.DefaultConfig()
	packedOpt := DefaultOptions(net.Transformer, vf.LowPower)
	packedOpt.Fidelity = PackedToggles
	spatialOpt := DefaultOptions(net.Transformer, vf.LowPower)
	spatialOpt.Fidelity = SpatialPDN
	packed := Run(aim, cfg, packedOpt)
	spatial := Run(aim, cfg, spatialOpt)
	if d := math.Abs(packed.WorstDropMV - spatial.WorstDropMV); d > irdrop.SpatialCalibrationBandMV {
		t.Errorf("worst drop: packed %.1f mV vs spatial %.1f mV (band %v)",
			packed.WorstDropMV, spatial.WorstDropMV, irdrop.SpatialCalibrationBandMV)
	}
	if d := math.Abs(packed.AvgDropMV - spatial.AvgDropMV); d > irdrop.SpatialCalibrationBandMV {
		t.Errorf("avg drop: packed %.1f mV vs spatial %.1f mV (band %v)",
			packed.AvgDropMV, spatial.AvgDropMV, irdrop.SpatialCalibrationBandMV)
	}
	if spatial.Failures == packed.Failures {
		t.Log("note: spatial and packed failure counts coincide (expected to differ)")
	}
	if spatial.WorstDropMV <= 0 || spatial.AvgDropMV <= 0 {
		t.Fatalf("spatial tier reported empty drops: %+v", spatial)
	}
}

// TestSpatialWindowDeterminism: the solve cadence is a fidelity knob,
// not a stochastic one — a fixed window must reproduce bit-identically
// and different windows are allowed to (and generally do) differ.
func TestSpatialWindowDeterminism(t *testing.T) {
	_, aim, net := compileBoth(t, "mobilenetv2")
	cfg := pim.DefaultConfig()
	opt := DefaultOptions(net.Transformer, vf.LowPower)
	opt.Fidelity = SpatialPDN
	opt.SpatialWindow = 2
	a := Run(aim, cfg, opt)
	b := Run(aim, cfg, opt)
	if a.AvgDropMV != b.AvgDropMV || a.Failures != b.Failures || a.TOPS != b.TOPS {
		t.Error("fixed SpatialWindow must be deterministic")
	}
	opt.SpatialWindow = 1
	c := Run(aim, cfg, opt)
	if c.AvgDropMV <= 0 {
		t.Fatal("window=1 run reported no drops")
	}
}

// TestAggregateAddTruncatesWeightedCounts pins the rounding semantics
// of the schedule-order merge: weighted integer counters (cycles,
// useful cycles, failures) truncate toward zero via the int conversion
// — intentionally, because a wave's Rounds weight is integral in
// production and any change here would shift every pinned experiment
// table. This must not drift as estimator tiers come and go.
func TestAggregateAddTruncatesWeightedCounts(t *testing.T) {
	var a aggregate
	a.add(waveResult{cycles: 3, useful: 3, failures: 3}, 0.5)
	if a.cycles != 1 || a.useful != 1 || a.failures != 1 {
		t.Errorf("weight 0.5 of 3 = (%d, %d, %d), want truncation to (1, 1, 1)",
			a.cycles, a.useful, a.failures)
	}
	a.add(waveResult{cycles: 1, useful: 1, failures: 1}, 0.99)
	if a.cycles != 1 || a.useful != 1 || a.failures != 1 {
		t.Errorf("weight 0.99 of 1 must truncate to 0, got (%d, %d, %d)",
			a.cycles, a.useful, a.failures)
	}
	// Integral weights — the production case — accumulate exactly.
	a.add(waveResult{cycles: 2, useful: 2, failures: 2}, 3)
	if a.cycles != 7 || a.useful != 7 || a.failures != 7 {
		t.Errorf("integral weight drifted: (%d, %d, %d), want (7, 7, 7)",
			a.cycles, a.useful, a.failures)
	}
}

// TestSpatialIncrementalParallelMatchesSerial extends the tier's
// determinism pin to the incremental paths: with the calibrated skip
// gate and the adaptive cadence armed, the full Result — traces and
// SpatialSolve accounting included — must stay bit-identical for any
// worker count. The adaptive schedule is a pure function of the
// simulated activity and the skip gate draws no randomness, so sharding
// must not be observable.
func TestSpatialIncrementalParallelMatchesSerial(t *testing.T) {
	_, aim, net := compileBoth(t, "resnet18")
	cfg := pim.DefaultConfig()
	opt := DefaultOptions(net.Transformer, vf.LowPower)
	opt.Parallel = 1
	opt.Fidelity = SpatialPDN
	opt.SpatialSkipMV = irdrop.DefaultSpatialSkipMV
	opt.SpatialAdaptive = true
	serial := Run(aim, cfg, opt)
	if serial.SpatialSolve.Solves == 0 {
		t.Fatal("incremental spatial run reported no solves")
	}
	for _, workers := range []int{0, 2} {
		o := opt
		o.Parallel = workers
		if par := Run(aim, cfg, o); !reflect.DeepEqual(par, serial) {
			t.Errorf("incremental SpatialPDN Parallel=%d diverges from serial:\n  par=%+v\n  ser=%+v",
				workers, par, serial)
		}
	}
}

// TestSpatialSolveStatsSurface: the Result carries the session's
// mesh-solve accounting for the spatial tier and stays zero elsewhere;
// an armed skip gate turns quiet windows into skips.
func TestSpatialSolveStatsSurface(t *testing.T) {
	_, aim, net := compileBoth(t, "resnet18")
	cfg := pim.DefaultConfig()
	opt := DefaultOptions(net.Transformer, vf.LowPower)
	opt.Fidelity = PackedToggles
	if res := Run(aim, cfg, opt); res.SpatialSolve != (irdrop.SolveStats{}) {
		t.Errorf("packed tier reported solver stats: %+v", res.SpatialSolve)
	}
	opt.Fidelity = SpatialPDN
	ref := Run(aim, cfg, opt)
	if ref.SpatialSolve.Solves == 0 || ref.SpatialSolve.VCycles < ref.SpatialSolve.Solves {
		t.Errorf("reference spatial stats implausible: %+v", ref.SpatialSolve)
	}
	if ref.SpatialSolve.Skips != 0 {
		t.Errorf("reference spatial run skipped %d windows with the gate disarmed", ref.SpatialSolve.Skips)
	}
	// A generous threshold (the full calibration band) must convert a
	// substantial share of windows into skips.
	opt.SpatialSkipMV = irdrop.SpatialCalibrationBandMV
	skip := Run(aim, cfg, opt)
	if skip.SpatialSolve.Skips == 0 {
		t.Errorf("band-wide skip threshold never skipped: %+v", skip.SpatialSolve)
	}
	if total, refTotal := skip.SpatialSolve.Solves+skip.SpatialSolve.Skips,
		ref.SpatialSolve.Solves+ref.SpatialSolve.Skips; total != refTotal {
		t.Errorf("window count changed with the gate: %d vs %d", total, refTotal)
	}
	if skip.SpatialSolve.Solves >= ref.SpatialSolve.Solves {
		t.Errorf("armed gate did not reduce solves: %+v vs %+v", skip.SpatialSolve, ref.SpatialSolve)
	}
}

// TestSpatialAdaptiveCadence: adaptivity is opt-in and deterministic —
// it must reproduce bit for bit, and on a real workload it changes the
// estimation schedule (different stats than the fixed window).
func TestSpatialAdaptiveCadence(t *testing.T) {
	_, aim, net := compileBoth(t, "mobilenetv2")
	cfg := pim.DefaultConfig()
	opt := DefaultOptions(net.Transformer, vf.LowPower)
	opt.Fidelity = SpatialPDN
	fixed := Run(aim, cfg, opt)
	opt.SpatialAdaptive = true
	a := Run(aim, cfg, opt)
	if b := Run(aim, cfg, opt); !reflect.DeepEqual(a, b) {
		t.Error("adaptive cadence must be deterministic for a fixed seed")
	}
	if a.SpatialSolve == fixed.SpatialSolve {
		t.Logf("note: adaptive cadence landed on the fixed schedule: %+v", a.SpatialSolve)
	}
	if a.SpatialSolve.Solves == 0 {
		t.Fatal("adaptive run reported no solves")
	}
}

// benchSimSpatial is benchSimFidelity specialized to the spatial tier:
// it exposes the incremental-solve knobs and reports the per-run
// saturated-solve count as a sat/op column (a nonzero rate means the
// solver is hitting its iteration cap — aimcheck flags it in bench
// artifacts).
func benchSimSpatial(b *testing.B, parallel int, skipMV float64, adaptive bool) {
	net, err := model.ByName("resnet18", seed)
	if err != nil {
		b.Fatal(err)
	}
	copt := compiler.DefaultOptions()
	copt.Strategy = compiler.SequentialMap
	c := compiler.Compile(net, pim.DefaultConfig(), copt)
	opt := DefaultOptions(net.Transformer, vf.LowPower)
	opt.Seed = seed
	opt.Fidelity = SpatialPDN
	opt.Parallel = parallel
	opt.SpatialSkipMV = skipMV
	opt.SpatialAdaptive = adaptive
	Run(c, pim.DefaultConfig(), opt) // untimed warm-up: page in caches and heap
	b.ReportAllocs()
	b.ResetTimer()
	var saturated int64
	for i := 0; i < b.N; i++ {
		res := Run(c, pim.DefaultConfig(), opt)
		if res.Cycles == 0 {
			b.Fatal("empty run")
		}
		saturated += res.SpatialSolve.Saturated
	}
	b.ReportMetric(float64(saturated)/float64(b.N), "sat/op")
}

// BenchmarkSimSpatial measures the reference spatial tier (solve every
// window, fixed cadence) serving the default die serially; the
// acceptance bar is ≤ 5x BenchmarkSimPacked (the warm V-cycle must
// amortize, not dominate).
func BenchmarkSimSpatial(b *testing.B) { benchSimSpatial(b, 1, 0, false) }

// BenchmarkSimSpatialParallel is the production path: chunked waves,
// one warm solver session per worker.
func BenchmarkSimSpatialParallel(b *testing.B) { benchSimSpatial(b, 0, 0, false) }

// BenchmarkSimSpatialIncr is the incremental spatial tier: the
// calibrated skip gate (DefaultSpatialSkipMV) and adaptive cadence
// armed, serial path. BENCH_spatial.json's spatial_packed_ratio divides
// this by BenchmarkSimPacked — the bar is ≤ 2.0x (was 4.2x before the
// incremental solver).
func BenchmarkSimSpatialIncr(b *testing.B) {
	benchSimSpatial(b, 1, irdrop.DefaultSpatialSkipMV, true)
}
