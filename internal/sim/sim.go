// Package sim is the chip-level runtime simulator: it executes a
// compiled workload on the PIM chip cycle by cycle, driving the input
// toggle process, the Eq. 2 IR-drop model with monitor noise, the
// IR-Booster level adjusters (Algorithm 2), the MacroSet stall/
// recompute pipeline (Fig. 11), and the V-f/power models — and reports
// the paper's evaluation metrics: worst/average IR-drop and mitigation,
// per-macro power and efficiency gain, effective TOPS, failure counts
// and delay cycles, plus the §6.6/Fig. 17 traces.
package sim

import (
	"aim/internal/compiler"
	"aim/internal/irdrop"
	"aim/internal/pim"
	"aim/internal/runner"
	"aim/internal/vf"
	"context"
)

// Options configures a run.
type Options struct {
	// Beta is Algorithm 2's β (cycles); the paper's reference point is 50.
	Beta int
	// CyclesPerWave is how many cycles each scheduled wave is simulated
	// for (its Rounds multiplier weights the aggregate).
	CyclesPerWave int
	// Mode selects sprint or low-power pair selection.
	Mode vf.Mode
	// UseBooster enables IR-Booster; false runs the DVFS baseline.
	UseBooster bool
	// Aggressive enables Algorithm 2's aggressive-level adjustment;
	// false pins groups at their software-guided safe level.
	Aggressive bool
	// ToggleMean/ToggleSigma parameterize the per-cycle input flip
	// intensity process (clipped normal).
	ToggleMean, ToggleSigma float64
	// Seed drives all stochastic components.
	Seed int64
	// TraceWave, when >= 0, records per-cycle traces for that wave.
	TraceWave int
	// Parallel bounds the worker pool that shards the wave schedule:
	// 0 means one worker per CPU (GOMAXPROCS), 1 forces the serial
	// reference path, N > 1 uses N workers. Every wave draws from its
	// own xrand shard stream, so the result is bit-identical for any
	// worker count — parallelism is purely a wall-clock knob.
	Parallel int
	// Fidelity selects the modelling tier: AnalyticToggles (default,
	// rtog = flip-intensity × HR, scalar Eq. 2 drops), PackedToggles
	// (the word-wise Eq. 1 engine over synthetic packed weight banks)
	// or SpatialPDN (packed activity feeding per-cycle-window
	// multigrid solves of the power-delivery mesh, drops read from
	// each group's floorplan tiles).
	Fidelity Fidelity
	// SpatialWindow is the SpatialPDN solve cadence in cycles (0 =
	// DefaultSpatialWindow). Within a window the solved field is held,
	// like the §5.5.2 monitors' sampling period; smaller windows track
	// activity more tightly at proportionally more solver time.
	SpatialWindow int
	// SpatialSkipMV arms the SpatialPDN window-skip gate: a window
	// whose injection map implies less than this many millivolts of
	// drop change since the last solved map (converted through the
	// analytic model's mV-per-Rtog sensitivity, which is calibrated
	// against this same PDN) holds the previous field instead of
	// solving. 0 — the default — solves every window, the byte-stable
	// reference behaviour every pinned experiment runs;
	// irdrop.DefaultSpatialSkipMV is the calibrated opt-in value.
	// Results stay bit-identical for any worker count at any setting.
	SpatialSkipMV float64
	// SpatialAdaptive adapts the solve cadence to activity variance:
	// quiet stretches double the window (up to 8× the base), loud ones
	// halve it (down to every cycle). The schedule is a deterministic
	// function of the activity vector — no RNG draw moves — so results
	// remain bit-identical across worker counts. False keeps the fixed
	// window, the determinism reference the manifest pins.
	SpatialAdaptive bool
	// Warm, when non-nil, pools the per-worker scratch across Run calls
	// (a serving runtime executing many requests). Ignored on the
	// serial reference path; results are bit-identical either way.
	Warm *WarmState
	// bytesReference forces the PackedToggles engine onto the legacy
	// one-byte-per-bit scalar path. Equivalence tests use it to prove
	// the packed word-wise pipeline bit-identical; it is not a user
	// knob.
	bytesReference bool
}

// DefaultOptions returns the reference configuration for a workload
// class: transformer token streams toggle more than post-ReLU conv
// feature streams, which is what makes their baseline IR-drop higher
// (paper Fig. 3).
func DefaultOptions(transformer bool, mode vf.Mode) Options {
	o := Options{
		Beta: 50, CyclesPerWave: 400, Mode: mode,
		UseBooster: true, Aggressive: true,
		ToggleMean: 0.54, ToggleSigma: 0.16,
		Seed: 1, TraceWave: 0,
	}
	if transformer {
		o.ToggleMean, o.ToggleSigma = 0.68, 0.17
	}
	return o
}

// DVFSOptions is the no-AIM hardware baseline.
func DVFSOptions(transformer bool, mode vf.Mode) Options {
	o := DefaultOptions(transformer, mode)
	o.UseBooster = false
	o.Aggressive = false
	return o
}

// Result aggregates a run.
type Result struct {
	Cycles       int64
	UsefulCycles int64
	Failures     int
	// AvgMacroPowerMW is the mean power of occupied macros.
	AvgMacroPowerMW float64
	// TOPS is the effective chip throughput.
	TOPS float64
	// WorstDropMV / AvgDropMV summarize the IR-drop over the run.
	WorstDropMV, AvgDropMV float64
	// WorstWeightOpDropMV is the worst drop among macro groups running
	// only weight-stationary operators — the "within a macro" figure
	// of §6.6 (attention QKT/SV operands cannot be optimized offline
	// and are reported separately).
	WorstWeightOpDropMV float64
	// Mitigation is 1 − WorstDrop/SignoffWorst.
	Mitigation float64
	// WeightOpMitigation is 1 − WorstWeightOpDrop/SignoffWorst.
	WeightOpMitigation float64
	// DelayFactor is total cycles over stall-free cycles (≥ 1).
	DelayFactor float64
	// AvgLevelRtog is the mean in-force level (as Rtog fraction),
	// weighted over occupied groups and cycles — the "mitigation
	// ability" axis of Fig. 18 derives from it.
	AvgLevelRtog float64
	// SpatialSolve summarizes the SpatialPDN tier's mesh-solve work,
	// weighted by wave Rounds like Cycles (so solves-per-cycle ratios
	// are meaningful). Zero at the other fidelity tiers. A nonzero
	// Saturated is the signal that the solver's iteration budget is
	// clipping accuracy.
	SpatialSolve irdrop.SolveStats
	// Traces from the designated wave (nil if disabled): worst group
	// drop (mV), total chip current (A), and bump voltage (V).
	DropTraceMV  []float64
	CurrentTrace []float64
	VoltageTrace []float64
}

// guardSigma: the monitor flags IRFailure when the observed drop
// exceeds the level's sign-off drop by this many noise sigmas.
const guardSigma = 2.5

// DefaultSpatialWindow is the SpatialPDN mesh-solve cadence: one
// warm-started solve every this many cycles. Four cycles matches the
// VCO monitor integration window, and benchmarks show it keeps the
// spatial tier within the ≤5x-of-PackedToggles wall-clock budget.
const DefaultSpatialWindow = 4

// Run executes the compiled workload. The wave schedule is sharded
// over a bounded worker pool (see Options.Parallel): each wave is an
// independent unit of simulation seeded with its own xrand shard
// stream, and the per-wave results are merged in schedule order, so
// every field of the Result is bit-identical no matter how many
// workers execute the shards.
//
// Parallel == 1 runs the serial reference path — one fresh allocation
// set per wave, the historical behaviour equivalence tests pin
// against. Any other setting runs the production path: waves are
// grouped into contiguous chunks (a couple per worker, so stragglers
// still balance) and each chunk reuses one waveScratch across its
// waves, cutting the synthetic-bank allocation churn without touching
// a single RNG draw.
func Run(c *compiler.Compiled, cfg pim.Config, opt Options) Result {
	if opt.Beta <= 0 {
		opt.Beta = 50
	}
	if opt.CyclesPerWave <= 0 {
		opt.CyclesPerWave = 400
	}
	m := modelForKind(cfg.Kind)
	table := vf.NewTable(m)
	power := vf.DefaultPowerModel()

	wave := func(wi int, scratch *waveScratch) waveResult {
		rng := scratch.shardRNG(opt.Seed, "sim/"+c.Net.Name, wi)
		return runWave(c.Waves[wi], cfg, m, table, power, opt, rng, wi == opt.TraceWave, scratch)
	}
	var waves []waveResult
	if workers := runner.Workers(opt.Parallel, len(c.Waves)); opt.Parallel == 1 || len(c.Waves) == 0 {
		// Serial path: a warm pool still supplies one reusable scratch
		// (a serving runtime's default is Parallel == 1); without one
		// this stays the historical allocate-per-wave reference.
		var scratch *waveScratch
		if opt.Warm != nil {
			scratch = opt.Warm.get()
			defer opt.Warm.put(scratch)
		}
		waves = runner.Collect(len(c.Waves), 1, func(wi int) waveResult {
			return wave(wi, scratch)
		})
	} else {
		chunks := workers
		if workers > 1 {
			// Two chunks per worker: enough slack to rebalance uneven
			// waves, coarse enough that scratch reuse still pays.
			chunks = workers * 2
			if chunks > len(c.Waves) {
				chunks = len(c.Waves)
			}
		}
		waves = make([]waveResult, len(c.Waves))
		runner.Do(context.Background(), chunks, workers, func(ci int) error {
			scratch := opt.Warm.get()
			defer opt.Warm.put(scratch)
			lo := ci * len(c.Waves) / chunks
			hi := (ci + 1) * len(c.Waves) / chunks
			for wi := lo; wi < hi; wi++ {
				waves[wi] = wave(wi, scratch)
			}
			return nil
		})
	}

	var agg aggregate
	for wi, res := range waves {
		agg.add(res, float64(c.Waves[wi].Rounds))
		if wi == opt.TraceWave {
			agg.dropTrace = res.dropTrace
			agg.currentTrace = res.currentTrace
			agg.voltageTrace = res.voltageTrace
		}
	}
	return agg.result(m)
}

// waveResult carries one wave's raw accounting.
type waveResult struct {
	cycles, useful  int64
	failures        int
	powerSum        float64 // occupied-macro-mW × cycles
	macroCycles     float64 // occupied macros × cycles
	topsSum         float64 // per-cycle TOPS accumulation
	worstDrop       float64
	worstWeightDrop float64
	dropSum         float64
	dropCount       float64
	levelRtogSum    float64
	levelCount      float64
	solve           irdrop.SolveStats
	dropTrace       []float64
	currentTrace    []float64
	voltageTrace    []float64
}

type aggregate struct {
	cycles, useful  int64
	failures        int
	powerSum        float64
	macroCycles     float64
	topsSum         float64
	topsWeight      float64
	worstDrop       float64
	worstWeightDrop float64
	dropSum         float64
	dropCount       float64
	levelRtogSum    float64
	levelCount      float64
	solve           irdrop.SolveStats
	dropTrace       []float64
	currentTrace    []float64
	voltageTrace    []float64
}

func (a *aggregate) add(r waveResult, weight float64) {
	a.cycles += int64(weight * float64(r.cycles))
	a.useful += int64(weight * float64(r.useful))
	a.failures += int(weight * float64(r.failures))
	a.powerSum += weight * r.powerSum
	a.macroCycles += weight * r.macroCycles
	a.topsSum += weight * r.topsSum
	a.topsWeight += weight * float64(r.cycles)
	if r.worstDrop > a.worstDrop {
		a.worstDrop = r.worstDrop
	}
	if r.worstWeightDrop > a.worstWeightDrop {
		a.worstWeightDrop = r.worstWeightDrop
	}
	a.dropSum += weight * r.dropSum
	a.dropCount += weight * r.dropCount
	a.levelRtogSum += weight * r.levelRtogSum
	a.levelCount += weight * r.levelCount
	// Solve counters weight like cycles and failures: int truncation of
	// the weighted count, the convention the aggregate test pins.
	a.solve.Solves += int64(weight * float64(r.solve.Solves))
	a.solve.Skips += int64(weight * float64(r.solve.Skips))
	a.solve.VCycles += int64(weight * float64(r.solve.VCycles))
	a.solve.Saturated += int64(weight * float64(r.solve.Saturated))
}

func (a *aggregate) result(m irdrop.Model) Result {
	res := Result{
		Cycles:              a.cycles,
		UsefulCycles:        a.useful,
		Failures:            a.failures,
		WorstDropMV:         a.worstDrop,
		WorstWeightOpDropMV: a.worstWeightDrop,
		SpatialSolve:        a.solve,
		DropTraceMV:         a.dropTrace,
		CurrentTrace:        a.currentTrace,
		VoltageTrace:        a.voltageTrace,
	}
	if a.macroCycles > 0 {
		res.AvgMacroPowerMW = a.powerSum / a.macroCycles
	}
	if a.topsWeight > 0 {
		res.TOPS = a.topsSum / a.topsWeight
	}
	if a.dropCount > 0 {
		res.AvgDropMV = a.dropSum / a.dropCount
	}
	if a.levelCount > 0 {
		res.AvgLevelRtog = a.levelRtogSum / a.levelCount
	}
	res.Mitigation = 1 - res.WorstDropMV/m.SignoffWorstMV()
	res.WeightOpMitigation = 1 - res.WorstWeightOpDropMV/m.SignoffWorstMV()
	if a.useful > 0 {
		res.DelayFactor = float64(a.cycles) / float64(a.useful)
	} else {
		res.DelayFactor = 1
	}
	return res
}

func modelForKind(k pim.MacroKind) irdrop.Model {
	if k == pim.APIM {
		return irdrop.APIMModel()
	}
	return irdrop.DPIMModel()
}
