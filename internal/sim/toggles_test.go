package sim

import (
	"reflect"
	"testing"

	"aim/internal/compiler"
	"aim/internal/fxp"
	"aim/internal/model"
	"aim/internal/pim"
	"aim/internal/vf"
	"aim/internal/xrand"
)

func TestValueOfCodeInvertsFxpCode(t *testing.T) {
	for _, q := range []int{4, 8} {
		for code := uint32(0); code < 1<<uint(q); code++ {
			v := valueOfCode(code, q)
			if got := fxp.Code(v, q); got != code {
				t.Fatalf("q=%d: Code(valueOfCode(%#x)) = %#x", q, code, got)
			}
		}
	}
}

func TestGroupTogglesHRMatchesTask(t *testing.T) {
	cfg := pim.DefaultConfig()
	rng := xrand.New(1)
	hrs := []float64{0.25, 0.5}
	gt := newGroupToggles(cfg, hrs, rng, false, nil)
	if len(gt.banks) != 2 {
		t.Fatalf("banks = %d", len(gt.banks))
	}
	for i, want := range hrs {
		got := gt.banks[i].HR()
		// 1024 stored bits per bank: the sample HR concentrates near
		// the task HR.
		if got < want-0.06 || got > want+0.06 {
			t.Errorf("bank %d HR = %.3f, want ~%.2f", i, got, want)
		}
	}
}

// TestPackedFidelityMatchesBytesReference is the simulator-level
// equivalence guarantee: a full PackedToggles run over the word-wise
// engine produces the exact same Result — every drop, power, TOPS and
// trace float — as the legacy one-byte-per-bit reference path, for
// fixed seeds.
func TestPackedFidelityMatchesBytesReference(t *testing.T) {
	_, aim, net := compileBoth(t, "resnet18")
	opt := DefaultOptions(net.Transformer, vf.LowPower)
	opt.Seed = seed
	opt.CyclesPerWave = 120
	opt.Fidelity = PackedToggles
	packed := Run(aim, pim.DefaultConfig(), opt)

	opt.bytesReference = true
	bytes := Run(aim, pim.DefaultConfig(), opt)

	if !reflect.DeepEqual(packed, bytes) {
		t.Errorf("packed fidelity diverged from byte reference:\npacked: %+v\nbytes:  %+v", packed, bytes)
	}
}

// TestPackedFidelityParallelMatchesSerial extends PR 1's determinism
// guarantee to the packed engine: wave sharding must not change a bit.
// Parallel != 1 additionally exercises the chunked executor with
// per-chunk scratch reuse (waveScratch) — odd worker counts land chunk
// boundaries mid-schedule, so reused banks/buffers are proven
// bit-identical to the allocate-per-wave reference at every boundary
// shape.
func TestPackedFidelityParallelMatchesSerial(t *testing.T) {
	_, aim, net := compileBoth(t, "resnet18")
	opt := DefaultOptions(net.Transformer, vf.LowPower)
	opt.Seed = seed
	opt.CyclesPerWave = 120
	opt.Fidelity = PackedToggles
	opt.Parallel = 1
	serial := Run(aim, pim.DefaultConfig(), opt)
	for _, workers := range []int{0, 2, 3, 5} {
		opt.Parallel = workers
		parallel := Run(aim, pim.DefaultConfig(), opt)
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("packed fidelity not shard-deterministic at Parallel=%d:\nserial:   %+v\nparallel: %+v", workers, serial, parallel)
		}
	}
}

// TestBytesReferenceParallelMatchesSerial covers the pooled byte
// buffers of the legacy reference engine under chunking too.
func TestBytesReferenceParallelMatchesSerial(t *testing.T) {
	_, aim, net := compileBoth(t, "resnet18")
	opt := DefaultOptions(net.Transformer, vf.LowPower)
	opt.Seed = seed
	opt.CyclesPerWave = 60
	opt.Fidelity = PackedToggles
	opt.bytesReference = true
	opt.Parallel = 1
	serial := Run(aim, pim.DefaultConfig(), opt)
	opt.Parallel = 3
	chunked := Run(aim, pim.DefaultConfig(), opt)
	if !reflect.DeepEqual(serial, chunked) {
		t.Errorf("byte-reference engine not chunk-deterministic:\nserial:  %+v\nchunked: %+v", serial, chunked)
	}
}

// TestPackedFidelityPlausible: the microarchitectural engine must tell
// the same qualitative story as the analytic model — drops in the same
// band, mitigation positive.
func TestPackedFidelityPlausible(t *testing.T) {
	_, aim, net := compileBoth(t, "resnet18")
	opt := DefaultOptions(net.Transformer, vf.LowPower)
	opt.Seed = seed
	analytic := Run(aim, pim.DefaultConfig(), opt)
	opt.Fidelity = PackedToggles
	packed := Run(aim, pim.DefaultConfig(), opt)
	if packed.WorstDropMV <= 0 || packed.Mitigation <= 0 {
		t.Fatalf("packed run implausible: %+v", packed)
	}
	// Same model, same workload: the two engines agree within the
	// binomial cell-level variance the packed engine adds (~±35%).
	lo, hi := analytic.AvgDropMV*0.65, analytic.AvgDropMV*1.35
	if packed.AvgDropMV < lo || packed.AvgDropMV > hi {
		t.Errorf("packed AvgDrop %.2f mV far from analytic %.2f mV", packed.AvgDropMV, analytic.AvgDropMV)
	}
}

func benchSimFidelity(b *testing.B, fidelity Fidelity, bytesRef bool, parallel int) {
	net, err := model.ByName("resnet18", seed)
	if err != nil {
		b.Fatal(err)
	}
	copt := compiler.DefaultOptions()
	copt.Strategy = compiler.SequentialMap
	c := compiler.Compile(net, pim.DefaultConfig(), copt)
	opt := DefaultOptions(net.Transformer, vf.LowPower)
	opt.Seed = seed
	opt.Fidelity = fidelity
	opt.bytesReference = bytesRef
	opt.Parallel = parallel
	Run(c, pim.DefaultConfig(), opt) // untimed warm-up: page in caches and heap
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Run(c, pim.DefaultConfig(), opt)
		if res.Cycles == 0 {
			b.Fatal("empty run")
		}
	}
}

// BenchmarkSimPacked measures an end-to-end PackedToggles run on the
// serial reference path (Parallel=1): the word-wise per-cycle pipeline
// with one fresh allocation set per wave. Compare
// BenchmarkSimPackedBytes (the legacy byte walk) for the packed
// speedup, and BenchmarkSimPackedParallel for the production path.
func BenchmarkSimPacked(b *testing.B) { benchSimFidelity(b, PackedToggles, false, 1) }

// BenchmarkSimPackedParallel is the production wave executor
// (Parallel=0): contiguous wave chunks with per-chunk scratch reuse,
// one worker per CPU. Expected ordering in BENCH_rtog.json:
// BenchmarkSimPackedParallel <= BenchmarkSimPacked on any machine —
// with a single CPU the chunked path still wins by skipping the
// per-wave synthetic-bank reallocations (roughly half the run's
// allocations); with more CPUs the wave sharding compounds on top.
func BenchmarkSimPackedParallel(b *testing.B) { benchSimFidelity(b, PackedToggles, false, 0) }

// BenchmarkSimPackedBytes is the same run on the retained
// one-byte-per-bit reference engine.
func BenchmarkSimPackedBytes(b *testing.B) { benchSimFidelity(b, PackedToggles, true, 1) }

// BenchmarkSimAnalytic is the closed-form default engine, for scale.
func BenchmarkSimAnalytic(b *testing.B) { benchSimFidelity(b, AnalyticToggles, false, 1) }
