package sim

import (
	"testing"

	"aim/internal/compiler"
	"aim/internal/model"
	"aim/internal/pim"
	"aim/internal/vf"
)

const seed = 2025

func compileBoth(t *testing.T, name string) (*compiler.Compiled, *compiler.Compiled, *model.Network) {
	t.Helper()
	net, err := model.ByName(name, seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pim.DefaultConfig()
	base := compiler.Compile(net, cfg, compiler.BaselineOptions())
	opt := compiler.DefaultOptions()
	opt.Strategy = compiler.SequentialMap // keep tests fast; mapping tested separately
	aim := compiler.Compile(net, cfg, opt)
	return base, aim, net
}

func TestDVFSBaselineCalibration(t *testing.T) {
	base, _, net := compileBoth(t, "resnet18")
	res := Run(base, pim.DefaultConfig(), DVFSOptions(net.Transformer, vf.LowPower))
	if res.Failures != 0 {
		t.Errorf("DVFS must not raise IRFailures, got %d", res.Failures)
	}
	if res.TOPS < 255 || res.TOPS > 257 {
		t.Errorf("DVFS TOPS = %v, want 256", res.TOPS)
	}
	// Paper §6.6: baseline macro power 4.2978 mW.
	if res.AvgMacroPowerMW < 3.9 || res.AvgMacroPowerMW > 4.7 {
		t.Errorf("DVFS macro power = %v mW, want ~4.3", res.AvgMacroPowerMW)
	}
	// Paper Fig. 3: ResNet18 worst IR-drop ~54%% of sign-off.
	frac := res.WorstDropMV / 140
	if frac < 0.45 || frac > 0.62 {
		t.Errorf("baseline worst drop fraction = %v, want ~0.54", frac)
	}
	if res.DelayFactor != 1 {
		t.Errorf("DVFS delay factor = %v, want 1", res.DelayFactor)
	}
}

func TestAIMLowPowerHitsPaperBands(t *testing.T) {
	base, aim, net := compileBoth(t, "resnet18")
	cfg := pim.DefaultConfig()
	dv := Run(base, cfg, DVFSOptions(net.Transformer, vf.LowPower))
	lp := Run(aim, cfg, DefaultOptions(net.Transformer, vf.LowPower))
	// §6.6: 58.5–69.2% mitigation within weight-op macros.
	if lp.WeightOpMitigation < 0.55 || lp.WeightOpMitigation > 0.73 {
		t.Errorf("weight-op mitigation = %.1f%%, want 58.5-69.2%%", lp.WeightOpMitigation*100)
	}
	// §6.6: 1.91–2.29× energy-efficiency gain per macro (TOPS/W).
	gain := (lp.TOPS / lp.AvgMacroPowerMW) / (dv.TOPS / dv.AvgMacroPowerMW)
	if gain < 1.8 || gain > 2.7 {
		t.Errorf("efficiency gain = %.2fx, want ~1.91-2.29x", gain)
	}
	if lp.WorstDropMV >= dv.WorstDropMV {
		t.Error("AIM must reduce the worst drop")
	}
}

func TestAIMSprintSpeedsUp(t *testing.T) {
	_, aim, net := compileBoth(t, "resnet18")
	cfg := pim.DefaultConfig()
	sp := Run(aim, cfg, DefaultOptions(net.Transformer, vf.Sprint))
	// §6.6: 256 → 289~295 TOPS (1.129-1.152x); allow a modest band.
	if sp.TOPS < 270 || sp.TOPS > 308 {
		t.Errorf("sprint TOPS = %v, want ~289-295", sp.TOPS)
	}
}

func TestTransformerBaselineDropsHigher(t *testing.T) {
	// Fig. 3: Llama3/ViT worst baseline drops (61-63%) exceed the conv
	// nets' (50-54%).
	baseC, _, netC := compileBoth(t, "yolov5")
	baseT, _, netT := compileBoth(t, "llama3")
	cfg := pim.DefaultConfig()
	conv := Run(baseC, cfg, DVFSOptions(netC.Transformer, vf.LowPower))
	tra := Run(baseT, cfg, DVFSOptions(netT.Transformer, vf.LowPower))
	if tra.WorstDropMV <= conv.WorstDropMV {
		t.Errorf("transformer baseline drop (%v) should exceed conv (%v)", tra.WorstDropMV, conv.WorstDropMV)
	}
	if conv.WorstDropMV/140 > 0.80 || tra.WorstDropMV/140 > 0.85 {
		t.Error("baseline workload drops should stay well below sign-off worst (Fig. 3)")
	}
}

func TestSafeLevelOnlyNeverFailsOnWeights(t *testing.T) {
	// DESIGN.md invariant 5 (system form): pinned at the safe level,
	// weight-op groups can only fail on monitor noise, which the guard
	// band makes rare.
	_, aim, net := compileBoth(t, "resnet18")
	opt := DefaultOptions(net.Transformer, vf.LowPower)
	opt.Aggressive = false
	res := Run(aim, pim.DefaultConfig(), opt)
	failRate := float64(res.Failures) / float64(res.Cycles)
	if failRate > 0.02 {
		t.Errorf("safe-level failure rate = %v, want rare", failRate)
	}
}

func TestAggressiveTradesFailuresForLevel(t *testing.T) {
	_, aim, net := compileBoth(t, "vit")
	cfg := pim.DefaultConfig()
	safeOpt := DefaultOptions(net.Transformer, vf.LowPower)
	safeOpt.Aggressive = false
	aggOpt := DefaultOptions(net.Transformer, vf.LowPower)
	safe := Run(aim, cfg, safeOpt)
	agg := Run(aim, cfg, aggOpt)
	if agg.Failures <= safe.Failures {
		t.Error("aggressive adjustment should incur more IRFailures")
	}
	if agg.AvgLevelRtog >= safe.AvgLevelRtog {
		t.Error("aggressive adjustment should run at lower levels on average")
	}
	if agg.DelayFactor < safe.DelayFactor {
		t.Error("aggressive adjustment should cost delay cycles")
	}
}

func TestBetaTradeoff(t *testing.T) {
	// Fig. 18: smaller β → more mitigation ability (lower avg level)
	// but more delay cycles.
	_, aim, net := compileBoth(t, "vit")
	cfg := pim.DefaultConfig()
	small := DefaultOptions(net.Transformer, vf.LowPower)
	small.Beta = 10
	large := DefaultOptions(net.Transformer, vf.LowPower)
	large.Beta = 90
	s := Run(aim, cfg, small)
	l := Run(aim, cfg, large)
	if s.AvgLevelRtog >= l.AvgLevelRtog {
		t.Errorf("β=10 avg level (%v) should be below β=90 (%v)", s.AvgLevelRtog, l.AvgLevelRtog)
	}
	if s.DelayFactor <= l.DelayFactor {
		t.Errorf("β=10 delay (%v) should exceed β=90 (%v)", s.DelayFactor, l.DelayFactor)
	}
}

func TestTracesRecorded(t *testing.T) {
	_, aim, net := compileBoth(t, "resnet18")
	opt := DefaultOptions(net.Transformer, vf.LowPower)
	res := Run(aim, pim.DefaultConfig(), opt)
	if len(res.DropTraceMV) != opt.CyclesPerWave {
		t.Fatalf("drop trace length = %d, want %d", len(res.DropTraceMV), opt.CyclesPerWave)
	}
	if len(res.CurrentTrace) != len(res.DropTraceMV) || len(res.VoltageTrace) != len(res.DropTraceMV) {
		t.Fatal("trace lengths disagree")
	}
	for i := range res.VoltageTrace {
		if res.VoltageTrace[i] > vf.NominalV || res.VoltageTrace[i] < 0.5 {
			t.Fatalf("bump voltage %v out of range at %d", res.VoltageTrace[i], i)
		}
		if res.CurrentTrace[i] < 0 {
			t.Fatalf("negative current at %d", i)
		}
	}
	noTrace := opt
	noTrace.TraceWave = -1
	res2 := Run(aim, pim.DefaultConfig(), noTrace)
	if res2.DropTraceMV != nil {
		t.Error("TraceWave=-1 should disable traces")
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	// The sharded wave schedule must produce a bit-identical Result for
	// any worker count: every wave draws from its own xrand shard
	// stream and the merge folds in schedule order.
	_, aim, net := compileBoth(t, "resnet18")
	cfg := pim.DefaultConfig()
	serialOpt := DefaultOptions(net.Transformer, vf.LowPower)
	serialOpt.Parallel = 1
	serial := Run(aim, cfg, serialOpt)
	for _, workers := range []int{0, 2, 4, 7} {
		opt := serialOpt
		opt.Parallel = workers
		par := Run(aim, cfg, opt)
		if par.AvgMacroPowerMW != serial.AvgMacroPowerMW ||
			par.TOPS != serial.TOPS ||
			par.WorstDropMV != serial.WorstDropMV ||
			par.WorstWeightOpDropMV != serial.WorstWeightOpDropMV ||
			par.AvgDropMV != serial.AvgDropMV ||
			par.AvgLevelRtog != serial.AvgLevelRtog ||
			par.Failures != serial.Failures ||
			par.Cycles != serial.Cycles ||
			par.UsefulCycles != serial.UsefulCycles ||
			par.DelayFactor != serial.DelayFactor {
			t.Errorf("Parallel=%d diverges from serial:\n  par=%+v\n  ser=%+v", workers, par, serial)
		}
		if len(par.DropTraceMV) != len(serial.DropTraceMV) {
			t.Fatalf("Parallel=%d trace length %d != serial %d", workers, len(par.DropTraceMV), len(serial.DropTraceMV))
		}
		for i := range par.DropTraceMV {
			if par.DropTraceMV[i] != serial.DropTraceMV[i] {
				t.Fatalf("Parallel=%d drop trace diverges at cycle %d", workers, i)
			}
		}
	}
}

// TestWarmStateMatchesSerial pins the serving runtime's warm-state
// contract: pooling scratch across Run calls (and across fidelity
// modes) never changes a bit of the Result versus the serial
// reference, including when the pool is reused repeatedly.
func TestWarmStateMatchesSerial(t *testing.T) {
	_, aim, net := compileBoth(t, "resnet18")
	cfg := pim.DefaultConfig()
	for _, fidelity := range []Fidelity{AnalyticToggles, PackedToggles} {
		serialOpt := DefaultOptions(net.Transformer, vf.LowPower)
		serialOpt.Parallel = 1
		serialOpt.Fidelity = fidelity
		serial := Run(aim, cfg, serialOpt)
		warm := NewWarmState()
		for round := 0; round < 3; round++ {
			for _, workers := range []int{0, 1, 2, 3} {
				opt := serialOpt
				opt.Parallel = workers
				opt.Warm = warm
				got := Run(aim, cfg, opt)
				if got.AvgMacroPowerMW != serial.AvgMacroPowerMW ||
					got.TOPS != serial.TOPS ||
					got.WorstDropMV != serial.WorstDropMV ||
					got.AvgDropMV != serial.AvgDropMV ||
					got.Failures != serial.Failures ||
					got.UsefulCycles != serial.UsefulCycles {
					t.Fatalf("fidelity %v round %d Parallel=%d with warm state diverges:\n  got=%+v\n  ser=%+v",
						fidelity, round, workers, got, serial)
				}
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	_, aim, net := compileBoth(t, "resnet18")
	opt := DefaultOptions(net.Transformer, vf.LowPower)
	a := Run(aim, pim.DefaultConfig(), opt)
	b := Run(aim, pim.DefaultConfig(), opt)
	if a.AvgMacroPowerMW != b.AvgMacroPowerMW || a.Failures != b.Failures || a.TOPS != b.TOPS {
		t.Error("simulation must be deterministic for a fixed seed")
	}
}

func TestAPIMRunsAndMitigatesLess(t *testing.T) {
	// §7: APIM mitigation saturates near 50%, below DPIM.
	net := model.ResNet18(seed)
	dcfg := pim.DefaultConfig()
	acfg := pim.Config{Kind: pim.APIM, Groups: 16, MacrosPerGroup: 4, BanksPerMacro: 32, CellsPerBank: 128, WeightBits: 8}
	opt := compiler.DefaultOptions()
	opt.Strategy = compiler.SequentialMap
	dAim := compiler.Compile(net, dcfg, opt)
	aAim := compiler.Compile(net, acfg, opt)
	d := Run(dAim, dcfg, DefaultOptions(false, vf.LowPower))
	a := Run(aAim, acfg, DefaultOptions(false, vf.LowPower))
	if a.WeightOpMitigation >= d.WeightOpMitigation {
		t.Errorf("APIM mitigation (%v) should be below DPIM (%v)", a.WeightOpMitigation, d.WeightOpMitigation)
	}
	if a.WeightOpMitigation < 0.35 || a.WeightOpMitigation > 0.62 {
		t.Errorf("APIM mitigation = %.1f%%, want ~50%%", a.WeightOpMitigation*100)
	}
}
