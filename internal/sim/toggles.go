package sim

import (
	"fmt"

	"aim/internal/irdrop"
	"aim/internal/pim"
	"aim/internal/stream"
	"aim/internal/xrand"
)

// Fidelity selects the simulator's modelling tier: how the wave loop
// produces per-cycle macro activity (Rtog) and how that activity
// becomes a per-group IR-drop (the irdrop.DropEstimator layer).
type Fidelity int

const (
	// AnalyticToggles models each task's Rtog as flip-intensity × HR
	// and each group's drop as the scalar Eq. 2 of its own activity —
	// the fast closed-form default, bit-identical to the historical
	// simulator.
	AnalyticToggles Fidelity = iota
	// PackedToggles runs the microarchitectural Eq. 1 engine instead:
	// every occupied task gets a synthetic weight bank at its HR, each
	// group draws packed Bernoulli toggles on its shared input lines,
	// and Rtog is the word-wise AND+popcount of toggles against the
	// stored bit planes. E[Rtog] still equals flip-intensity × HR, but
	// the per-cycle value carries the real binomial cell-level
	// variance the analytic model averages away. Drops stay scalar
	// Eq. 2.
	PackedToggles
	// SpatialPDN is the top tier: PackedToggles activity feeding the
	// spatially-resolved drop estimator — per cycle-window the group
	// activity vector becomes a die current map, one warm-started
	// multigrid V-cycle solves the power-delivery mesh, and each
	// group's drop is read from its own floorplan tiles, so real
	// neighbour coupling replaces most of the analytic NoiseMV term.
	// Each wave shard owns its own solver session; results are
	// bit-identical for any worker count.
	SpatialPDN
)

// Valid reports whether f names a fidelity tier.
func (f Fidelity) Valid() bool { return f >= AnalyticToggles && f <= SpatialPDN }

// ParseFidelity resolves a tier's CLI spelling (the String values;
// "" means the analytic default). It is the single string↔tier
// mapping the public API and the CLIs share.
func ParseFidelity(s string) (Fidelity, error) {
	switch s {
	case "analytic", "":
		return AnalyticToggles, nil
	case "packed":
		return PackedToggles, nil
	case "spatial":
		return SpatialPDN, nil
	default:
		return 0, fmt.Errorf("unknown fidelity %q (want %q, %q or %q)",
			s, AnalyticToggles, PackedToggles, SpatialPDN)
	}
}

// String names the tier the way the CLIs spell it.
func (f Fidelity) String() string {
	switch f {
	case AnalyticToggles:
		return "analytic"
	case PackedToggles:
		return "packed"
	case SpatialPDN:
		return "spatial"
	default:
		return fmt.Sprintf("fidelity(%d)", int(f))
	}
}

// groupToggles is one macro group's PackedToggles engine: the shared
// packed input-line toggles plus a synthetic bank per occupied task.
// With bytes non-nil it runs the legacy one-byte-per-bit reference
// path instead — drawing the identical RNG sequence — which is how the
// equivalence tests prove the packed pipeline bit-identical.
type groupToggles struct {
	banks     []*pim.Bank // parallel to groupRun.occupied
	words     []uint64
	bytes     []uint8
	cells     int
	totalBits int
	worstRtog float64
	worstOnes int
}

// newGroupToggles builds one synthetic CellsPerBank-cell bank per
// occupied task, with every stored weight bit drawn Bernoulli(HR) so
// the bank's Hamming rate matches the task's HR in expectation — the
// microarchitectural analogue of the analytic rtog = p·HR model.
// A non-nil scratch reuses a chunk worker's pooled buffers; the RNG
// draw order is identical either way, so the engine's bits are too.
func newGroupToggles(cfg pim.Config, taskHRs []float64, rng *xrand.RNG, useBytes bool, scratch *waveScratch) *groupToggles {
	n, q := cfg.CellsPerBank, cfg.WeightBits
	gt := scratch.toggles()
	gt.cells = n
	gt.totalBits = n * q
	gt.words = scratch.wordBuf(n)
	if useBytes {
		gt.bytes = scratch.byteBuf(n)
	}
	for _, hr := range taskHRs {
		codes := scratch.codeBuf(n)
		for k := range codes {
			var code uint32
			for i := 0; i < q; i++ {
				if rng.Bernoulli(hr) {
					code |= 1 << uint(i)
				}
			}
			codes[k] = valueOfCode(code, q)
		}
		gt.banks = append(gt.banks, scratch.bank(codes, n, q))
	}
	return gt
}

// valueOfCode inverts fxp.Code: the signed value whose q-bit two's
// complement code is the given bit pattern.
func valueOfCode(code uint32, q int) int32 {
	if code>>uint(q-1)&1 != 0 {
		return int32(code) - int32(1)<<uint(q)
	}
	return int32(code)
}

// next draws the group's shared input-line toggles for one cycle at
// flip intensity p and resets the cycle's worst-task accounting. The
// per-cell draws happen in cell order on both paths, so packed and
// byte-reference runs consume the same RNG stream.
func (gt *groupToggles) next(p float64, rng *xrand.RNG) {
	stream.FillBernoulli(gt.words, gt.cells, p, rng)
	if gt.bytes != nil {
		for k := range gt.bytes {
			gt.bytes[k] = uint8(gt.words[k/64] >> uint(k%64) & 1)
		}
	}
	gt.worstRtog = 0
	gt.worstOnes = 0
}

// rtog returns occupied-task i's Rtog against this cycle's shared
// toggles, tracking the group's worst task for the drop estimate.
func (gt *groupToggles) rtog(i int) float64 {
	if gt.bytes != nil {
		r := gt.banks[i].RtogCycleBytes(gt.bytes)
		if r > gt.worstRtog {
			gt.worstRtog = r
		}
		return r
	}
	ones := gt.banks[i].RtogCounts(gt.words)
	if ones > gt.worstOnes {
		gt.worstOnes = ones
	}
	return float64(ones) / float64(gt.totalBits)
}

// activity returns the cycle's worst-task Rtog — the group's entry in
// the DropEstimator activity vector. The packed path divides the raw
// worst popcount exactly as irdrop.EstimateCounts historically did, so
// the estimator layer's Estimate(activity()) is bit-identical to the
// old inline drop computation; the byte reference reports its
// pre-divided Rtog, likewise bit-identical.
func (gt *groupToggles) activity() float64 {
	if gt.bytes != nil {
		return gt.worstRtog
	}
	return float64(gt.worstOnes) / float64(gt.totalBits)
}

// drop returns the cycle's deterministic Eq. 2 group drop via the
// analytic model — retained for the packed/byte equivalence tests.
func (gt *groupToggles) drop(m irdrop.Model) float64 {
	if gt.bytes != nil {
		return m.Estimate(gt.worstRtog)
	}
	return m.EstimateCounts(gt.worstOnes, gt.totalBits)
}
