package sim

import (
	"aim/internal/booster"
	"aim/internal/compiler"
	"aim/internal/irdrop"
	"aim/internal/mapping"
	"aim/internal/pim"
	"aim/internal/vf"
	"aim/internal/xrand"
)

// groupRun is the per-group runtime state of one wave.
type groupRun struct {
	occupied []int // macro slot → task index (occupied only)
	hrs      []float64
	worstHR  float64
	// weightOnly marks groups hosting exclusively weight-stationary
	// tasks — the macros §6.6's "IR-drop within a macro" band covers.
	weightOnly bool
	safe       vf.Level
	adj        *booster.LevelAdjuster
	level      vf.Level
	pair       vf.Pair
	tolerated  float64 // mV, the monitor threshold for the current level
	monitor    *irdrop.Monitor
	// active marks the cycle's "any unstalled task" state, staged by
	// the activity pass for the effects pass.
	active bool
}

// runWave simulates one scheduled wave for opt.CyclesPerWave cycles.
// scratch, when non-nil, supplies a chunk worker's reusable buffers
// (see waveScratch); nil keeps the historical allocate-per-wave
// reference behaviour.
//
// Drop estimation goes through the pluggable irdrop.DropEstimator
// layer: each cycle the activity pass stages every occupied group's
// worst Rtog (and its monitor-noise draw), the estimator maps the
// whole activity vector to per-group drops, and the effects pass
// applies monitors, IR-Booster and the metric accounting. The split
// preserves the historical per-group RNG draw order exactly — toggle
// words then one Normal per group — so the analytic and packed tiers
// are bit-identical to the old single-pass loop, while the spatial
// tier gets what it needs: the full group vector in one call, because
// a mesh solve couples every group's drop to all the others' activity.
func runWave(w *compiler.Wave, cfg pim.Config, m irdrop.Model, table *vf.Table, power vf.PowerModel, opt Options, rng *xrand.RNG, trace bool, scratch *waveScratch) waveResult {
	scratch.nextWave()
	tasks := w.Tasks
	numOps := len(w.Plans)

	// The estimator layer. The analytic Model is the default tier;
	// SpatialPDN swaps in the shard's warm-started PDN session, solved
	// once per cycle-window, with the residual noise sigma replacing
	// NoiseMV (the mesh resolves the placement and coupling effects
	// NoiseMV lumps together).
	var est irdrop.DropEstimator = m
	noiseMV := m.NoiseMV
	window := 1
	var sp *irdrop.Spatial
	if opt.Fidelity == SpatialPDN {
		sp = scratch.spatialEstimator(cfg)
		// A cold field per wave: results must not depend on which wave
		// this shard's session solved before.
		sp.Reset()
		sp.SkipThreshold = 0
		if opt.SpatialSkipMV > 0 {
			// The analytic model is calibrated against this same PDN
			// (TestModelMatchesPDN), so its mV-per-Rtog sensitivity
			// converts the caller's millivolt budget into the Rtog
			// units the injection-map change metric is measured in.
			sp.SkipThreshold = opt.SpatialSkipMV / m.DynCoeffMV
		}
		// The mesh sweeps and the wave shards compete for the same
		// cores: a sharded run keeps each shard's session serial, while
		// the serial reference path lets its single session batch
		// smoothing sweeps through internal/runner. Bit-identical
		// either way (the solver's checkerboard invariant).
		if opt.Parallel == 1 {
			sp.SetSolverWorkers(0)
		} else {
			sp.SetSolverWorkers(1)
		}
		est = sp
		noiseMV = m.NoiseMV * irdrop.SpatialResidualNoiseFrac
		if window = opt.SpatialWindow; window <= 0 {
			window = DefaultSpatialWindow
		}
	}
	// Adaptive cadence state: the window stretches and shrinks as a
	// deterministic function of how far the clamped activity vector
	// moved between estimations — never of time, load or RNG — so the
	// schedule is identical on every shard assignment.
	adaptive := sp != nil && opt.SpatialAdaptive
	baseWindow := window
	var lastEstAct []float64
	estimated := false
	nextEst := 0

	// Build group states from the wave's mapping.
	groups, engines := scratch.groupSlices(cfg.Groups)
	groupHRs := w.Map.GroupHRs(tasks)
	groupsWithOp := make([][]int, numOps) // op → groups hosting it
	for g := 0; g < cfg.Groups; g++ {
		if len(groupHRs[g]) == 0 {
			continue
		}
		gr := &groupRun{hrs: groupHRs[g]}
		for _, hr := range gr.hrs {
			if hr > gr.worstHR {
				gr.worstHR = hr
			}
		}
		gr.safe = booster.SafeLevelFor(gr.hrs)
		if opt.UseBooster {
			if opt.Aggressive {
				gr.adj = booster.NewLevelAdjuster(gr.safe, opt.Beta)
				gr.level = gr.adj.Level()
			} else {
				gr.level = gr.safe
			}
		} else {
			gr.level = vf.DVFSLevel
		}
		if opt.UseBooster {
			gr.pair = table.PairFor(gr.level, opt.Mode)
		} else {
			// Traditional DVFS holds the worst-case sign-off point.
			gr.pair = table.DVFS()
		}
		gr.tolerated = m.Estimate(gr.level.Rtog()) + guardSigma*noiseMV
		gr.monitor = irdrop.NewMonitor(vf.NominalV*1000, gr.tolerated)
		groups[g] = gr
	}
	for g := range groups {
		if groups[g] != nil {
			groups[g].weightOnly = true
		}
	}
	for macro, ti := range w.Map.Assign {
		if ti == mapping.Empty {
			continue
		}
		g := macro / cfg.MacrosPerGroup
		groups[g].occupied = append(groups[g].occupied, ti)
		if tasks[ti].InputDetermined {
			groups[g].weightOnly = false
		}
		op := tasks[ti].OpID
		found := false
		for _, gg := range groupsWithOp[op] {
			if gg == g {
				found = true
				break
			}
		}
		if !found {
			groupsWithOp[op] = append(groupsWithOp[op], g)
		}
	}

	// PackedToggles and SpatialPDN fidelity: build each occupied
	// group's synthetic packed-bank engine. Construction draws from
	// the wave RNG in group then occupied-task order, so results stay
	// deterministic under wave sharding.
	if opt.Fidelity != PackedToggles && opt.Fidelity != SpatialPDN {
		engines = nil
	} else {
		for g, gr := range groups {
			if gr == nil {
				continue
			}
			taskHRs := scratch.taskHRBuf(len(gr.occupied))
			for i, ti := range gr.occupied {
				taskHRs[i] = tasks[ti].HR
			}
			engines[g] = newGroupToggles(cfg, taskHRs, rng, opt.bytesReference, scratch)
		}
	}

	var res waveResult
	if trace {
		res.dropTrace = make([]float64, 0, opt.CyclesPerWave)
		res.currentTrace = make([]float64, 0, opt.CyclesPerWave)
		res.voltageTrace = make([]float64, 0, opt.CyclesPerWave)
	}
	opStall := scratch.intSlice(numOps)
	opFailedNow := make([]bool, numOps)
	opUseful := scratch.int64Slice(numOps)
	opFreqSum := scratch.floatSlice(numOps)
	opTasks := scratch.intSlice(numOps)
	for _, t := range tasks {
		opTasks[t.OpID]++
	}
	// Per-cycle estimator staging: group activity in, group drops out,
	// with the monitor-noise draws staged beside them so splitting the
	// loop does not move a single RNG draw.
	act := scratch.floatSlice(cfg.Groups)
	noise := scratch.floatSlice(cfg.Groups)
	drops := scratch.floatSlice(cfg.Groups)
	if adaptive {
		lastEstAct = scratch.floatSlice(cfg.Groups)
	}

	for cyc := 0; cyc < opt.CyclesPerWave; cyc++ {
		p := rng.Normal(opt.ToggleMean, opt.ToggleSigma)
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		cyclePower := 0.0
		// Activity pass: engines draw this cycle's toggles, tasks
		// accumulate power at the group's in-force V-f pair, and each
		// occupied group stages its worst Rtog plus one noise draw.
		// Per-group RNG consumption (toggle words, then one Normal) is
		// draw-for-draw the historical single-pass order.
		for g, gr := range groups {
			act[g] = -1
			if gr == nil {
				continue
			}
			// Per-macro activity: stalled ops idle (leakage only).
			var eng *groupToggles
			if engines != nil {
				eng = engines[g]
				eng.next(p, rng)
			}
			worstRtog := 0.0
			groupPower := 0.0
			gr.active = false
			for oi, ti := range gr.occupied {
				op := tasks[ti].OpID
				if opStall[op] > 0 {
					groupPower += power.MacroPowerMW(gr.pair, 0) // bubble: leakage only
					continue
				}
				gr.active = true
				var rtog float64
				if eng != nil {
					rtog = eng.rtog(oi)
				} else {
					rtog = p * tasks[ti].HR
				}
				if rtog > worstRtog {
					worstRtog = rtog
				}
				groupPower += power.MacroPowerMW(gr.pair, rtog)
			}
			if eng != nil {
				act[g] = eng.activity()
			} else {
				act[g] = worstRtog
			}
			noise[g] = rng.Normal(0, noiseMV)
			cyclePower += groupPower
			res.powerSum += groupPower
			res.macroCycles += float64(len(gr.occupied))
		}
		// Estimation: the deterministic per-group drops feed the
		// reported metrics; the monitors additionally see the staged
		// cycle noise. The analytic tier re-estimates every cycle; the
		// spatial tier re-solves the mesh once per window and holds the
		// field between solves (the monitor sampling cadence of
		// §5.5.2), which is what lets one warm V-cycle amortize. With a
		// fixed window nextEst advances in constant steps — the exact
		// cyc%window == 0 schedule of the reference path.
		if cyc == nextEst {
			est.EstimateGroups(act, drops)
			if adaptive {
				if estimated {
					window = adaptWindow(window, baseWindow, lastEstAct, act, m)
				}
				estimated = true
				for g := range act {
					lastEstAct[g] = clampRtog(act[g])
				}
			}
			nextEst += window
		}
		// Effects pass: metric accounting, IRFailure monitors and
		// IR-Booster level adjustment, in the historical group order.
		cycleWorstDrop := 0.0
		for g, gr := range groups {
			if gr == nil {
				continue
			}
			drop := drops[g]
			dropNoisy := drop + noise[g]
			if dropNoisy < 0 {
				dropNoisy = 0
			}
			if drop > cycleWorstDrop {
				cycleWorstDrop = drop
			}
			if gr.weightOnly && drop > res.worstWeightDrop {
				res.worstWeightDrop = drop
			}
			res.dropSum += drop
			res.dropCount++
			res.levelRtogSum += gr.level.Rtog()
			res.levelCount++

			fail := false
			if opt.UseBooster && gr.active {
				fail = gr.monitor.Sample(dropNoisy)
			}
			if fail {
				res.failures++
				for _, ti := range gr.occupied {
					opFailedNow[tasks[ti].OpID] = true
				}
			}
			// Level adjustment (Algorithm 2); non-aggressive booster
			// pins the safe level, DVFS pins 100%.
			if opt.UseBooster && opt.Aggressive {
				newLevel := gr.adj.Step(fail, false, 0)
				if newLevel != gr.level {
					gr.level = newLevel
					gr.pair = table.PairFor(gr.level, opt.Mode)
					gr.tolerated = m.Estimate(gr.level.Rtog()) + guardSigma*noiseMV
					gr.monitor.SetToleratedDrop(gr.tolerated)
					// Frequency synchronization: peers hosting the same
					// ops observe the change (Algorithm 2 lines 11-13).
					for _, ti := range gr.occupied {
						for _, og := range groupsWithOp[tasks[ti].OpID] {
							if og != g && groups[og] != nil && groups[og].adj != nil {
								groups[og].adj.Step(false, true, groups[og].level)
							}
						}
					}
				}
			}
		}
		if drop := cycleWorstDrop; drop > res.worstDrop {
			res.worstDrop = drop
		}
		// Fig. 11 recovery: an IRFailure anywhere in a MacroSet stalls
		// the whole set for the Re + Re' waves — once per cycle, no
		// matter how many of its groups failed simultaneously
		// (recoveries overlap), bounded against pathological pile-up.
		for op := 0; op < numOps; op++ {
			if opFailedNow[op] {
				opFailedNow[op] = false
				if opStall[op] < 6 {
					opStall[op] += 2
				}
			}
		}
		// Operator progress and MacroSet frequency sync: an op advances
		// only when not stalled, at the slowest frequency among its
		// hosting groups.
		for op := 0; op < numOps; op++ {
			if opTasks[op] == 0 {
				continue
			}
			f := -1.0
			for _, g := range groupsWithOp[op] {
				if groups[g] == nil {
					continue
				}
				if f < 0 || groups[g].pair.FreqGHz < f {
					f = groups[g].pair.FreqGHz
				}
			}
			if f < 0 {
				f = vf.NominalFreqGHz
			}
			opFreqSum[op] += f
			if opStall[op] > 0 {
				opStall[op]--
			} else {
				opUseful[op]++
			}
		}
		if trace {
			res.dropTrace = append(res.dropTrace, cycleWorstDrop)
			// Chip current proxy: total power over the mean rail voltage.
			railV := vf.NominalV - cycleWorstDrop/1000
			res.currentTrace = append(res.currentTrace, cyclePower/1000/railV)
			res.voltageTrace = append(res.voltageTrace, railV)
		}
	}

	if sp != nil {
		res.solve = sp.TakeStats()
	}
	res.cycles = int64(opt.CyclesPerWave)
	// Effective throughput: task-weighted frequency × useful fraction.
	totalTasks := 0
	weighted := 0.0
	var usefulMin int64 = int64(opt.CyclesPerWave)
	for op := 0; op < numOps; op++ {
		if opTasks[op] == 0 {
			continue
		}
		avgF := opFreqSum[op] / float64(opt.CyclesPerWave)
		usefulFrac := float64(opUseful[op]) / float64(opt.CyclesPerWave)
		weighted += float64(opTasks[op]) * avgF * usefulFrac
		totalTasks += opTasks[op]
		if opUseful[op] < usefulMin {
			usefulMin = opUseful[op]
		}
	}
	if totalTasks > 0 {
		res.topsSum = vf.ChipTOPS(weighted/float64(totalTasks), 1.0) * float64(opt.CyclesPerWave)
	}
	res.useful = usefulMin
	return res
}

// Adaptive-cadence thresholds, as implied-drop fractions of the
// spatial calibration band. The controller watches the MEAN absolute
// activity move across groups between the two most recent estimations,
// not the max: per-window toggle noise swings any single group's move
// by the band's own order even in steady state, while the mean — the
// uniform component, exactly the regime DynCoeffMV is calibrated
// against — tracks the workload's real drift. A move implying less
// than the stretch bound doubles the window (every estimate is still a
// fresh converged solve, so a longer window coarsens the drop sampling
// cadence, never a sample's accuracy — and sampling faster than the
// drops move buys nothing the band can see), more than the shrink
// bound halves it (drops moved by the tier's whole accuracy envelope
// inside one window — track them). Between the two the window holds,
// giving the controller hysteresis.
const (
	adaptStretchFrac = 0.3
	adaptShrinkFrac  = 1.0
	// maxAdaptiveWindowFactor caps the stretched window at this
	// multiple of the configured base.
	maxAdaptiveWindowFactor = 8
)

// clampRtog maps a staged activity to the injection domain: idle
// markers (negative) and zero inject nothing, everything else clamps
// to [0, 1] — mirroring exactly what the spatial estimator feeds the
// mesh, so the cadence controller reacts to what the solver would see.
func clampRtog(a float64) float64 {
	if a <= 0 {
		return 0
	}
	if a > 1 {
		return 1
	}
	return a
}

// adaptWindow is the cadence controller: a pure function of the
// clamped activity move between the two most recent estimations
// (prev already clamped, cur raw), the current and base window, and
// the model's mV-per-Rtog sensitivity.
func adaptWindow(window, base int, prev, cur []float64, m irdrop.Model) int {
	if len(cur) == 0 {
		return window
	}
	moved := 0.0
	for g := range cur {
		d := clampRtog(cur[g]) - prev[g]
		if d < 0 {
			d = -d
		}
		moved += d
	}
	impliedMV := moved / float64(len(cur)) * m.DynCoeffMV
	switch {
	case impliedMV < adaptStretchFrac*irdrop.SpatialCalibrationBandMV:
		if max := base * maxAdaptiveWindowFactor; window*2 <= max {
			return window * 2
		}
	case impliedMV > adaptShrinkFrac*irdrop.SpatialCalibrationBandMV:
		if window > 1 {
			return window / 2
		}
	}
	return window
}
