package sim

import (
	"sync"

	"aim/internal/irdrop"
	"aim/internal/mapping"
	"aim/internal/pdn"
	"aim/internal/pim"
	"aim/internal/stream"
	"aim/internal/xrand"
)

// WarmState pools waveScratch instances across Run calls — the warm
// simulator state a serving runtime keeps between requests so repeated
// executions stop re-growing the packed banks, toggle buffers and RNG
// state from zero. It is safe for concurrent use: each chunk worker
// checks a scratch out for the duration of its chunk and returns it
// when done. Reuse never changes an RNG draw, so results are
// bit-identical with or without a WarmState (TestWarmStateMatchesSerial).
type WarmState struct {
	mu   sync.Mutex
	free []*waveScratch
}

// NewWarmState returns an empty pool.
func NewWarmState() *WarmState { return &WarmState{} }

// get checks a scratch out of the pool (nil WarmState allocates).
func (w *WarmState) get() *waveScratch {
	if w == nil {
		return &waveScratch{}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if n := len(w.free); n > 0 {
		s := w.free[n-1]
		w.free = w.free[:n-1]
		return s
	}
	return &waveScratch{}
}

// put returns a scratch to the pool.
func (w *WarmState) put(s *waveScratch) {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.free = append(w.free, s)
	w.mu.Unlock()
}

// waveScratch holds the per-shard buffers the chunked wave executor
// reuses across the waves of its chunk: the synthetic packed banks,
// their construction buffer, and the per-group toggle words. All of
// it is state the PackedToggles engine rebuilds per wave — rebuilding
// into reused storage draws the identical RNG sequence and produces
// the identical bits, it just stops feeding the garbage collector
// (~half the simulator's allocations were these banks).
//
// A waveScratch belongs to one worker goroutine; the serial reference
// path (Options.Parallel == 1) passes nil and allocates per wave, as
// the historical simulator did.
type waveScratch struct {
	banks  []*pim.Bank
	bankN  int
	words  [][]uint64
	wordN  int
	bytes  [][]uint8
	byteN  int
	codes  []int32
	toggle []*groupToggles
	togN   int
	rng    *xrand.RNG
	// Per-wave working slices of runWave, reused by capacity.
	groups   []*groupRun
	engines  []*groupToggles
	taskHRs  []float64
	opInts   [][]int
	opInt64s [][]int64
	opFloats [][]float64
	opIntN   int
	opInt64N int
	opFloatN int
	// spatial is the shard's SpatialPDN estimator session: the PDN
	// mesh, its warm-started multigrid hierarchy and the injection
	// buffers, all of which would otherwise be rebuilt per wave. The
	// session is Reset at every wave boundary, so pooling it never
	// changes a solved bit — it only skips the hierarchy construction.
	spatial *irdrop.Spatial
}

// pooledSlice returns a zeroed slice of length n from a high-water
// pool: entry *hw is reused when its capacity suffices, else replaced.
// The typed accessors below handle the nil-scratch (serial reference)
// path before calling in.
func pooledSlice[T int | int64 | float64](pool *[][]T, hw *int, n int) []T {
	if *hw < len(*pool) && cap((*pool)[*hw]) >= n {
		out := (*pool)[*hw][:n]
		clear(out)
		*hw++
		return out
	}
	out := make([]T, n)
	if *hw < len(*pool) {
		(*pool)[*hw] = out
	} else {
		*pool = append(*pool, out)
	}
	*hw++
	return out
}

// intSlice, int64Slice and floatSlice are the typed pool accessors
// runWave draws its per-wave working slices from.
func (s *waveScratch) intSlice(n int) []int {
	if s == nil {
		return make([]int, n)
	}
	return pooledSlice(&s.opInts, &s.opIntN, n)
}

func (s *waveScratch) int64Slice(n int) []int64 {
	if s == nil {
		return make([]int64, n)
	}
	return pooledSlice(&s.opInt64s, &s.opInt64N, n)
}

func (s *waveScratch) floatSlice(n int) []float64 {
	if s == nil {
		return make([]float64, n)
	}
	return pooledSlice(&s.opFloats, &s.opFloatN, n)
}

// groupSlices returns zeroed groups/engines slices of length n.
func (s *waveScratch) groupSlices(n int) ([]*groupRun, []*groupToggles) {
	if s == nil {
		return make([]*groupRun, n), make([]*groupToggles, n)
	}
	if cap(s.groups) < n {
		s.groups = make([]*groupRun, n)
		s.engines = make([]*groupToggles, n)
	}
	g := s.groups[:n]
	e := s.engines[:n]
	for i := range g {
		g[i] = nil
		e[i] = nil
	}
	return g, e
}

// taskHRBuf returns a length-n buffer for per-group task HRs (read
// within newGroupToggles only, so one buffer serves every group).
func (s *waveScratch) taskHRBuf(n int) []float64 {
	if s == nil {
		return make([]float64, n)
	}
	if cap(s.taskHRs) < n {
		s.taskHRs = make([]float64, n)
	}
	return s.taskHRs[:n]
}

// shardRNG returns the wave's shard stream, reseeding the worker's
// pooled generator in place (the ~5 KB math/rand state is the single
// biggest per-wave allocation after the banks). Draw sequences are
// identical to a fresh NewShard.
func (s *waveScratch) shardRNG(seed int64, name string, shard int) *xrand.RNG {
	if s == nil {
		return xrand.NewShard(seed, name, shard)
	}
	if s.rng == nil {
		s.rng = xrand.NewShard(seed, name, shard)
	} else {
		s.rng.ReseedShard(seed, name, shard)
	}
	return s.rng
}

// nextWave resets the high-water marks; the underlying storage stays.
func (s *waveScratch) nextWave() {
	if s == nil {
		return
	}
	s.bankN, s.wordN, s.byteN, s.togN = 0, 0, 0, 0
	s.opIntN, s.opInt64N, s.opFloatN = 0, 0, 0
}

// spatialEstimator returns the shard's SpatialPDN session, building it
// on first use (or when the chip geometry changed). The nil-scratch
// serial reference path builds a fresh session per wave.
func (s *waveScratch) spatialEstimator(cfg pim.Config) *irdrop.Spatial {
	if s == nil {
		return newSpatialEstimator(cfg)
	}
	if s.spatial == nil || s.spatial.Groups() != cfg.Groups {
		s.spatial = newSpatialEstimator(cfg)
	}
	return s.spatial
}

// newSpatialEstimator places the chip's groups on the smallest die
// that holds them (mapping.NewPlacement) and wraps the placement in a
// warm-started mesh-solver session with the calibrated current
// densities.
func newSpatialEstimator(cfg pim.Config) *irdrop.Spatial {
	pl := mapping.NewPlacement(cfg)
	return irdrop.NewSpatial(pl.Floorplan(), pl.TileIndices(), pdn.DefaultActivity())
}

// bank pools pim.Bank construction.
func (s *waveScratch) bank(codes []int32, cells, bits int) *pim.Bank {
	if s == nil {
		return pim.NewBank(codes, cells, bits)
	}
	if s.bankN < len(s.banks) {
		b := pim.LoadBank(s.banks[s.bankN], codes, cells, bits)
		s.banks[s.bankN] = b
		s.bankN++
		return b
	}
	b := pim.NewBank(codes, cells, bits)
	s.banks = append(s.banks, b)
	s.bankN++
	return b
}

// wordBuf pools the packed toggle-line buffers.
func (s *waveScratch) wordBuf(n int) []uint64 {
	words := stream.Words(n)
	if s == nil {
		return make([]uint64, words)
	}
	if s.wordN < len(s.words) && len(s.words[s.wordN]) == words {
		w := s.words[s.wordN]
		clear(w)
		s.wordN++
		return w
	}
	w := make([]uint64, words)
	if s.wordN < len(s.words) {
		s.words[s.wordN] = w
	} else {
		s.words = append(s.words, w)
	}
	s.wordN++
	return w
}

// byteBuf pools the legacy byte-reference buffers.
func (s *waveScratch) byteBuf(n int) []uint8 {
	if s == nil {
		return make([]uint8, n)
	}
	if s.byteN < len(s.bytes) && len(s.bytes[s.byteN]) == n {
		b := s.bytes[s.byteN]
		clear(b)
		s.byteN++
		return b
	}
	b := make([]uint8, n)
	if s.byteN < len(s.bytes) {
		s.bytes[s.byteN] = b
	} else {
		s.bytes = append(s.bytes, b)
	}
	s.byteN++
	return b
}

// codeBuf returns the shared weight-code staging buffer (NewBank and
// LoadBank copy out of it, so one buffer serves every task).
func (s *waveScratch) codeBuf(n int) []int32 {
	if s == nil {
		return make([]int32, n)
	}
	if cap(s.codes) < n {
		s.codes = make([]int32, n)
	}
	return s.codes[:n]
}

// toggles pools the per-group engine structs, keeping each one's bank
// list capacity across waves.
func (s *waveScratch) toggles() *groupToggles {
	if s == nil {
		return &groupToggles{}
	}
	if s.togN < len(s.toggle) {
		gt := s.toggle[s.togN]
		*gt = groupToggles{banks: gt.banks[:0]}
		s.togN++
		return gt
	}
	gt := &groupToggles{}
	s.toggle = append(s.toggle, gt)
	s.togN++
	return gt
}
