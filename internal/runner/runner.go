// Package runner is the repository's shared parallel execution engine:
// a bounded worker pool that fans an index space out over goroutines
// and merges results back in deterministic index order.
//
// Every parallel path in the repository (wave-level simulation sharding
// in internal/sim, the experiment registry fan-out in
// internal/experiments, the aim.RunExperiments API) goes through this
// package so the concurrency discipline lives in one place: worker
// counts are bounded by GOMAXPROCS, cancellation is cooperative via
// context, and output ordering never depends on goroutine scheduling.
// Determinism therefore only requires that the work items themselves
// are independent — which the per-shard xrand streams guarantee.
package runner

import (
	"context"
	"runtime"
	"sync"
)

// Workers resolves a requested worker count: n > 0 is used as given,
// anything else (0, negative) means "one worker per available CPU"
// (GOMAXPROCS). The result is additionally clamped to jobs when the
// index space is smaller than the pool.
func Workers(n, jobs int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > jobs {
		n = jobs
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Do runs fn(i) for every i in [0, n) on at most workers goroutines
// (resolved via Workers). It returns the first error in index order,
// after all in-flight work has drained. Cancellation of ctx stops new
// indices from being dispatched and is reported as ctx.Err() unless an
// fn error takes precedence. workers <= 0 means GOMAXPROCS. With
// workers == 1 the indices run on the calling goroutine in order —
// the serial reference path, with zero scheduling involved.
func Do(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	w := Workers(workers, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int)
	done := make(chan struct{})
	var cancelOnce sync.Once
	cancel := func() { cancelOnce.Do(func() { close(done) }) }

	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					errs[i] = err
					cancel()
				}
			}
		}()
	}

	interrupted := false
dispatch:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			interrupted = true
			break dispatch
		case <-done:
			break dispatch
		}
	}
	close(next)
	wg.Wait()

	// First error in index order keeps failure reporting deterministic
	// no matter which worker hit it first.
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	// Report cancellation only when it actually skipped work: if every
	// index was dispatched and ran clean, the results are complete and
	// a context that expired in the meantime must not discard them
	// (the serial path behaves the same way).
	if interrupted {
		return ctx.Err()
	}
	return nil
}

// Map runs fn(i) for every i in [0, n) on a bounded pool and returns
// the results indexed by i — the deterministic merge order. On error
// the partial results are discarded and the first error (in index
// order) is returned. workers <= 0 means GOMAXPROCS.
func Map[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := Do(ctx, n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Collect is Map for infallible work: fn cannot fail and cancellation
// is not observed. It exists for hot paths like the per-wave
// simulation shards, where the work is pure computation.
func Collect[T any](n, workers int, fn func(i int) T) []T {
	out, _ := Map(context.Background(), n, workers, func(i int) (T, error) {
		return fn(i), nil
	})
	return out
}
