package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	cases := []struct {
		n, jobs, want int
	}{
		{4, 100, 4},
		{0, 100, runtime.GOMAXPROCS(0)},
		{-3, 100, runtime.GOMAXPROCS(0)},
		{8, 3, 3},
		{1, 0, 1},
	}
	for _, c := range cases {
		if got := Workers(c.n, c.jobs); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.n, c.jobs, got, c.want)
		}
	}
}

func TestMapDeterministicOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		got, err := Map(context.Background(), 100, workers, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestDoRunsEveryIndexOnce(t *testing.T) {
	var count atomic.Int64
	seen := make([]atomic.Bool, 64)
	err := Do(context.Background(), 64, 7, func(i int) error {
		count.Add(1)
		if seen[i].Swap(true) {
			return fmt.Errorf("index %d ran twice", i)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != 64 {
		t.Errorf("ran %d indices, want 64", count.Load())
	}
}

func TestDoFirstErrorInIndexOrder(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	err := Do(context.Background(), 50, 4, func(i int) error {
		switch i {
		case 3:
			return errA
		case 40:
			return errB
		}
		return nil
	})
	if !errors.Is(err, errA) {
		t.Errorf("got %v, want the lowest-index error %v", err, errA)
	}
}

func TestDoErrorStopsDispatch(t *testing.T) {
	var ran atomic.Int64
	boom := errors.New("boom")
	err := Do(context.Background(), 10000, 2, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
	if n := ran.Load(); n == 10000 {
		t.Error("error did not stop dispatch: all indices ran")
	}
}

func TestDoContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := Do(ctx, 10000, 2, func(i int) error {
		if ran.Add(1) == 5 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if n := ran.Load(); n == 10000 {
		t.Error("cancellation did not stop dispatch")
	}
}

func TestDoSerialPathPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int
	err := Do(ctx, 10, 1, func(i int) error { ran++; return nil })
	if !errors.Is(err, context.Canceled) || ran != 0 {
		t.Errorf("pre-cancelled serial Do ran %d jobs, err %v", ran, err)
	}
}

func TestDoZeroJobs(t *testing.T) {
	if err := Do(context.Background(), 0, 4, func(i int) error { return errors.New("no") }); err != nil {
		t.Errorf("zero jobs should be a no-op, got %v", err)
	}
}

func TestDoLateCancelKeepsCompletedWork(t *testing.T) {
	// A context that expires after every index has already been
	// dispatched and run must not turn a complete result set into an
	// error (same inputs, any worker count → same outcome).
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := Do(ctx, 8, 4, func(i int) error {
		if ran.Add(1) == 8 {
			cancel() // expires while workers drain, after full dispatch
		}
		return nil
	})
	if err != nil {
		t.Errorf("all work completed, got %v, want nil", err)
	}
	out, err := Map(ctx, 4, 2, func(i int) (int, error) { return i, nil })
	if out != nil || err == nil {
		t.Errorf("cancelled-before-dispatch Map: out=%v err=%v, want nil+error", out, err)
	}
}

func TestCollect(t *testing.T) {
	got := Collect(16, 0, func(i int) string { return fmt.Sprint(i) })
	for i, v := range got {
		if v != fmt.Sprint(i) {
			t.Fatalf("out[%d] = %q", i, v)
		}
	}
}

func TestMapErrorDiscardsResults(t *testing.T) {
	out, err := Map(context.Background(), 4, 2, func(i int) (int, error) {
		if i == 2 {
			return 0, errors.New("fail")
		}
		return i, nil
	})
	if err == nil || out != nil {
		t.Errorf("Map with error: out=%v err=%v, want nil+error", out, err)
	}
}
