// Package aim is a from-scratch reproduction of "AIM: Software and
// Hardware Co-design for Architecture-level IR-drop Mitigation in
// High-performance PIM" (Zhang et al., ISCA 2025).
//
// IR-drop — the gap between the ideal supply voltage and what circuit
// cells actually receive — is especially severe in high-performance
// SRAM processing-in-memory (PIM) chips, where thousands of compute
// units switch in the same cycle. AIM attacks the problem at the
// architecture level instead of with costly circuit-level guardbands:
//
//   - Rtog (Eq. 1) and HR (Eq. 3) connect the workload to IR-drop:
//     per-cycle toggle activity of the bit-serial input streams ANDed
//     with the stored weight bits, and its input-independent upper
//     bound, the Hamming rate of the stored weights.
//   - LHR (§5.3) is a differentiable regularizer that pulls quantized
//     weights toward low-Hamming codes with negligible accuracy cost.
//   - WDS (§5.4) shifts the weight distribution toward small positive
//     codes (δ ∈ {8, 16} for INT8) and compensates exactly after the
//     matmul with dedicated shift-compensator hardware.
//   - IR-Booster (§5.5) converts the reclaimed Rtog margin into lower
//     voltage or higher frequency per macro group, guarded by on-die
//     VCO IR monitors and an IRFailure-driven recompute pipeline.
//   - HR-aware task mapping (§5.6) arranges macro tasks so groups are
//     not dragged down by their worst-HR member.
//
// The package exposes the end-to-end pipeline on a simulated 7nm
// 256-TOPS PIM chip (16 macro groups × 4 macros), a synthetic model
// zoo mirroring the paper's six evaluation networks, and a harness
// regenerating every table and figure of the paper's evaluation; see
// the Run, Optimize, Experiment and RunExperiments entry points, the
// examples/ directory, and DESIGN.md / EXPERIMENTS.md.
//
// Simulation and experiment regeneration shard over a bounded worker
// pool (internal/runner): the simulator splits its wave schedule
// across workers and RunExperiments fans independent experiments out
// concurrently. Every shard draws from its own named internal/xrand
// stream and results merge in deterministic index order, so for a
// fixed seed the output is bit-identical for any worker count —
// parallelism only changes wall-clock time (see Config.Parallel and
// ExperimentSet.Parallel).
//
// The Eq. 1 data path is bit-packed end to end: input bit rows,
// toggle vectors and stored weight-bit planes all live as []uint64
// words (cell k at bit k%64 of word k/64), so a per-cycle Rtog is a
// word-wise AND + popcount — on the default 64-bank × 128-cell macro,
// ~20 word operations against the bit-sliced per-line Hamming counts
// instead of a banks×cells byte walk (~500x on the macro Rtog cycle;
// see BENCH_rtog.json from `make bench-rtog`). The packed path is
// proven bit-identical to the retained one-byte-per-bit reference
// implementations, and the toggle sources draw their RNG in cell
// order, so fixed-seed outputs are unchanged across the packed
// refactor.
//
// The power-delivery mesh behind the Fig. 16 layout maps solves
// through a pluggable solver subsystem (internal/pdn): a geometric
// multigrid V-cycle with red-black checkerboard-parallel smoothing and
// a warm-start cache replaces thousands of Gauss-Seidel sweeps with a
// handful of cycles (~54x on the 64x64 sign-off solve; a 512x512
// production floorplan — pdn.ScaledFloorplan, 64x the unknowns —
// solves in less wall-clock than the reference needs for 64x64; see
// BENCH_pdn.json from `make bench-pdn`). The original relaxation loop
// is retained as the reference implementation on the same stencil
// kernel, bit-identical to the historical solver, and keeps serving
// the default die so Fig. 16 tables and cmd/irmap output are pinned
// byte-for-byte; multigrid equivalence within the rendering quantum is
// enforced by table-driven tests across grid sizes, pad pitches, warm
// and cold starts, and sweep worker counts.
//
// Drop estimation is a pluggable layer (irdrop.DropEstimator) behind
// a three-tier fidelity ladder, selected per run or per request by
// Config.Fidelity: FidelityAnalytic (scalar Eq. 2 per group — the
// byte-stable default), FidelityPacked (word-wise Eq. 1 activity,
// scalar drops), and FidelitySpatial, which couples the multigrid PDN
// solver into the cycle loop: macro groups carry floorplan
// coordinates (mapping.Placement), each wave shard owns a
// warm-started solver session, and once per cycle-window the group
// activity vector becomes a die current map whose solved field yields
// every group's drop from its own tiles — real neighbour coupling in
// place of the analytic noise term, at ~4x the packed tier's
// wall-clock (see BENCH_spatial.json from `make bench-spatial`).
// Fidelity is a runtime knob outside the plan-cache key, so one
// compiled plan serves every tier; the spatial tier is bit-identical
// for any worker count, and its per-group drops agree with the
// analytic model within the documented calibration band
// (irdrop.SpatialCalibrationBandMV) on the default die. The
// fig16live experiment compares the tiers live under IR-Booster on
// the 64x64 and 256x256 dies.
//
// For the paper's serving scenario (PIM chips serving language models
// under a latency target or power envelope) the pipeline splits into
// an offline Compile phase and a runtime Execute phase, and the
// Server type amortizes the former: a concurrency-safe, stampede-free
// plan cache keyed by (network, mode, bits, δ, seed) compiles each
// deployment point exactly once, an admission queue groups concurrent
// Submit calls into per-plan batches, and an executor pool runs them
// over warm simulator state. A served Result is identical to a cold
// Run of the same Config, and for a fixed request list the aggregate
// is byte-identical for any worker count. With the cache warm a
// repeated request skips straight to execution — ~25x faster than a
// cold Run on resnet18 and ~57x on the LLM deployment points, where
// the HR-aware mapping SA dominates compilation (see BENCH_serve.json
// from `make bench-serve`, and cmd/aimserve for a closed-loop load
// generator with Poisson arrivals over the full zoo).
//
// The plan cache survives the process when ServerOptions.PlanCacheDir
// is set (CLI: -plan-cache-dir on aimc and aimserve): compiled plans
// persist to a content-addressed store (internal/planstore) keyed by
// the sha256 of exactly the compile inputs plus a code-version
// generation, with a decoded-plan LRU above a pluggable directory
// backend below. A restarted server — or another replica sharing the
// directory — loads each plan instead of recompiling it (~10x faster
// on resnet18; see BENCH_planstore.json from `make bench-planstore`),
// and a decoded plan executes byte-identically to a freshly compiled
// one for any worker count. Bumping the code-version generation makes
// every stale entry unreachable at once, and corrupt or stale files
// silently fall back to recompilation — persistence failures never
// fail serving. See ARCHITECTURE.md for the repository map and the
// README for the on-disk format and measured restart numbers.
//
// The Server is a four-layer network stack: Server.Handler exposes an
// HTTP/JSON front door (POST /v1/submit, GET /v1/metrics and
// /v1/healthz, graceful Server.Drain), an admission layer enforces
// per-client token-bucket rate limits (ServerOptions.RatePerClient)
// and sheds load explicitly with 429 + Retry-After once the bounded
// queue fills, and the scheduling layer runs an SLO-driven degradation
// ladder (ServerOptions.TargetP95): requests submitted with auto
// fidelity are served at the highest tier whose observed p95 fits the
// target, stepping spatial → packed → analytic under overload and back
// up with headroom. Because fidelity stays outside the plan-cache key,
// a tier switch is a free cache hit — under a 4x traffic burst the
// ladder trades fidelity for latency with exactly one compile (see
// BENCH_http.json from `make bench-http`, and `aimserve serve` /
// `aimserve -target` for hosting and driving the API).
//
// The system verifies its own artifacts. cmd/aimcheck (engine:
// internal/check) re-derives the sha256 pins in
// manifest/experiments.json — the single machine-readable source of
// truth for the 22 experiment tables and the irmap renderings, loaded
// by the byte-pin tests instead of scattered hash literals and
// regenerated only by `aimcheck -write` — walks plan-store
// directories (content address, versions, decode → re-encode
// byte-identity, orphaned temp files), and validates BENCH_*.json
// shape, exiting non-zero on any finding; CI runs it plus a
// deliberate-corruption smoke as `make check`. On the fault side,
// planstore.NewFaulty wraps any backend with a deterministic
// misbehavior schedule (bit flips, truncations, stale rewrites, write
// failures, latency) under which the serving stack provably keeps
// answering byte-identically with exact Stats accounting, and the
// container decoder is natively fuzzed: bytes that decode must
// re-encode to the same bytes, and no bytes may panic it.
//
// The determinism invariants themselves are enforced statically.
// cmd/aimlint (engine: internal/lint, pure go/ast + go/types)
// type-checks every package from source and rejects the patterns that
// break them — wall-clock reads and math/rand imports in
// deterministic code, map iteration feeding rendered bytes or
// unsorted accumulators, goroutines outside the deterministic pool,
// panics reachable from this package's exported API, and stdout
// writes from libraries. Legitimate exceptions (serving metrics, the
// limiter's injectable clock, measured bench latencies) carry
// //aimlint:allow annotations whose reasons are mandatory and whose
// staleness is itself a finding. CI gates on `make aimlint`: the tree
// must lint clean and seeded violations must flip the exit code.
package aim
