# Local targets mirror .github/workflows/ci.yml step for step so a
# green `make ci` locally means a green CI run.

GO ?= go

.PHONY: all build vet fmt-check test race fuzz-smoke bench bench-rtog bench-pdn bench-serve bench-spatial bench-planstore bench-http check docs-check aimlint lint ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needs to run on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fuzz smoke: a few seconds per native fuzz target on the three
# hostile input boundaries — the HTTP submit decoder, the scenario-mix
# parser, and the plan-store container decoder (whose bytes arrive
# from disk, where anything can have happened to them). PRs 2–6 each
# fixed a panic at an input boundary; this keeps the corpus growing
# without paying a long fuzz campaign in CI.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz 'FuzzSubmitDecode' -fuzztime 10s ./internal/serve
	$(GO) test -run '^$$' -fuzz 'FuzzParseMix' -fuzztime 10s ./cmd/aimserve
	$(GO) test -run '^$$' -fuzz 'FuzzPlanDecode' -fuzztime 10s ./internal/planstore

# Bench smoke: one iteration of the Fig. 3 regeneration proves the
# benchmark harness wires up without paying full benchmark time.
bench:
	$(GO) test -bench=Fig3 -benchtime=1x -run '^$$' .

# bench_json distils `go test -bench -count N` output into a JSON
# series, keeping the FASTEST run per benchmark (min-of-N): single
# shots on a shared box swing several percent, and a perf trajectory
# wants the machine's capability, not its load spikes. The original
# ns/op string is preserved verbatim. A benchmark reporting a sat/op
# metric column (the spatial benches' saturated-solve rate) carries its
# WORST observed rate as "saturated" — accuracy debt must not hide in a
# lucky pass. Setting BENCH_RATIO=key=NumBench/DenBench appends one
# headline quotient of the min-of-N numbers to the document.
define bench_json
awk -v ratio="$$BENCH_RATIO" 'BEGIN { n = 0 } \
     /^Benchmark/ { name=$$1; sub(/-[0-9]+$$/, "", name); \
       if (!(name in best) || $$3+0 < best[name]) { best[name]=$$3+0; ns[name]=$$3; iters[name]=$$2 } \
       passes[name]++; \
       for (f=3; f<NF; f++) if ($$(f+1) == "sat/op") { hasSat[name]=1; if ($$f+0 > sat[name]) sat[name]=$$f+0 } \
       if (!(name in seen)) { seen[name]=1; order[++n]=name } } \
     END { printf "{\n  \"benchmarks\": ["; \
       for (i=1;i<=n;i++) { nm=order[i]; if (i>1) printf ","; \
         printf "\n    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"passes\": %d", nm, iters[nm], ns[nm], passes[nm]; \
         if (nm in hasSat) printf ", \"saturated\": %g", sat[nm]; \
         printf "}" } \
       printf "\n  ]"; \
       if (ratio != "") { split(ratio, rp, "="); split(rp[2], ab, "/"); \
         if ((ab[1] in best) && (ab[2] in best) && best[ab[2]] > 0) printf ",\n  \"%s\": %.3f", rp[1], best[ab[1]]/best[ab[2]] } \
       printf "\n}\n" }'
endef

# Perf trajectory: ns/op of the packed vs legacy Rtog hot path and the
# end-to-end sim fidelity modes, rendered as BENCH_rtog.json — the
# artifact CI uploads on every run so regressions show up as a series.
# Three full passes, interleaved by invocation rather than go test's
# -count (which repeats each benchmark consecutively and lets slow
# machine drift bias whichever name runs later); the shell loop exits
# on the first bench failure.
bench-rtog:
	@rm -f BENCH_rtog.txt
	for i in 1 2 3; do \
		$(GO) test -run '^$$' -bench 'BenchmarkRtog' -benchtime 1000x ./internal/pim >> BENCH_rtog.txt || exit 1; \
		$(GO) test -run '^$$' -bench 'BenchmarkSim(Packed(Bytes|Parallel)?|Analytic)$$' -benchtime 5x ./internal/sim >> BENCH_rtog.txt || exit 1; \
	done
	@$(bench_json) BENCH_rtog.txt > BENCH_rtog.json
	@rm -f BENCH_rtog.txt
	@cat BENCH_rtog.json

# PDN solver trajectory: the retained Gauss-Seidel reference vs the
# multigrid V-cycle on the 64x64 sign-off solve, the warm-start sweep
# pattern, and the production die scales up to 512x512 — emitted as
# BENCH_pdn.json next to BENCH_rtog.json. The acceptance bars:
# BenchmarkPDNMultigrid at least 10x under BenchmarkPDNGaussSeidel,
# and BenchmarkPDNMultigrid512 under BenchmarkPDNGaussSeidel.
bench-pdn:
	@rm -f BENCH_pdn.txt
	for i in 1 2 3; do \
		$(GO) test -run '^$$' -bench 'BenchmarkPDN' -benchtime 10x ./internal/pdn >> BENCH_pdn.txt || exit 1; \
	done
	@$(bench_json) BENCH_pdn.txt > BENCH_pdn.json
	@rm -f BENCH_pdn.txt
	@cat BENCH_pdn.json

# Serving-runtime trajectory: cold compile (what every one-shot
# aim.Run pays), the same request answered from a warm plan cache, and
# the batched steady-state throughput of the mixed list — emitted as
# BENCH_serve.json beside the Rtog and PDN series. The acceptance bar:
# BenchmarkServeColdCompile at least 5x over BenchmarkServeCachedRequest.
bench-serve:
	@rm -f BENCH_serve.txt
	for i in 1 2 3; do \
		$(GO) test -run '^$$' -bench 'BenchmarkServe(ColdCompile|CachedRequest)$$' -benchtime 5x ./internal/serve >> BENCH_serve.txt || exit 1; \
		$(GO) test -run '^$$' -bench 'BenchmarkServeBatchedThroughput$$' -benchtime 3x ./internal/serve >> BENCH_serve.txt || exit 1; \
	done
	@$(bench_json) BENCH_serve.txt > BENCH_serve.json
	@rm -f BENCH_serve.txt
	@cat BENCH_serve.json

# Spatial-tier trajectory: the SpatialPDN fidelity (per-cycle-window
# warm multigrid solves of the die PDN) against the PackedToggles
# baseline it builds on — serial, parallel, and the incremental
# configuration (calibrated skip gate + adaptive cadence) — plus the
# per-window estimator micro-benches (cold / warm / skipped), emitted
# as BENCH_spatial.json beside the Rtog, PDN and serve series. The
# document carries spatial_packed_ratio = BenchmarkSimSpatialIncr /
# BenchmarkSimPacked; the acceptance bar is <= 2.0 (stretch 1.5), and
# any nonzero saturated rate in the sat/op columns fails aimcheck.
bench-spatial:
	@rm -f BENCH_spatial.txt
	for i in 1 2 3; do \
		$(GO) test -run '^$$' -bench 'BenchmarkSim(Packed|Spatial(Parallel|Incr)?)$$' -benchtime 3x ./internal/sim >> BENCH_spatial.txt || exit 1; \
		$(GO) test -run '^$$' -bench 'BenchmarkSpatialEstimate' -benchtime 50x ./internal/irdrop >> BENCH_spatial.txt || exit 1; \
	done
	@BENCH_RATIO='spatial_packed_ratio=BenchmarkSimSpatialIncr/BenchmarkSimPacked'; \
	$(bench_json) BENCH_spatial.txt > BENCH_spatial.json
	@rm -f BENCH_spatial.txt
	@cat BENCH_spatial.json

# Plan-store trajectory: a simulated process restart against a warm
# persistent plan store (read+decode instead of compile) beside the
# cold-compile and warm-memory bounds it sits between, plus the raw
# codec halves — emitted as BENCH_planstore.json beside the other
# series. The acceptance bars: BenchmarkServeRestartWarmDisk at most
# 10x BenchmarkServeCachedRequest and at least 5x under
# BenchmarkServeColdCompile.
bench-planstore:
	@rm -f BENCH_planstore.txt
	for i in 1 2 3; do \
		$(GO) test -run '^$$' -bench 'BenchmarkServe(ColdCompile|CachedRequest|RestartWarmDisk)$$' -benchtime 5x ./internal/serve >> BENCH_planstore.txt || exit 1; \
		$(GO) test -run '^$$' -bench 'BenchmarkPlan(Encode|Decode)$$' -benchtime 20x ./internal/planstore >> BENCH_planstore.txt || exit 1; \
	done
	@$(bench_json) BENCH_planstore.txt > BENCH_planstore.json
	@rm -f BENCH_planstore.txt
	@cat BENCH_planstore.json

# Network-serving trajectory: the HTTP front door under a measured
# traffic ramp — a steady phase near half the spatial-tier capacity,
# then a 4x burst, with the identical burst replayed against a
# ladder-off control server. BENCH_http.json carries p50/p95/p99,
# shed-rate and the per-tier serve mix for each phase (min-of-3 by
# burst p95). The acceptance bars: compiles == 1 (every tier of every
# run served one compiled plan) and the laddered burst p95 under the
# ladder-off control's.
bench-http:
	$(GO) run ./cmd/aimserve bench-http -o BENCH_http.json
	@cat BENCH_http.json

# Integrity gate: aimcheck over the pin manifest, a freshly-populated
# plan-cache directory and every committed BENCH_*.json must verify
# (exit 0) — then one deliberate corruption per artifact class, each
# of which must flip the exit code to 1. See scripts/check_smoke.sh.
check:
	@./scripts/check_smoke.sh

# Docs gate: every internal package (and command) must carry a package
# doc comment, every relative link in ARCHITECTURE.md and README.md
# must resolve to a real file, CHANGES.md carries exactly one
# sequential "PR <n>:" line per PR, and ISSUE.md keeps its structural
# headers.
docs-check:
	@./scripts/docs_check.sh

# Static-analysis gate: aimlint's six determinism/API-discipline rules
# over the whole module must exit 0, then seeded violations in a temp
# tree must each flip the exit code to 1. See scripts/lint_smoke.sh.
aimlint:
	@./scripts/lint_smoke.sh

lint: vet fmt-check docs-check aimlint

ci: build lint race bench check
