# Local targets mirror .github/workflows/ci.yml step for step so a
# green `make ci` locally means a green CI run.

GO ?= go

.PHONY: all build vet fmt-check test race bench bench-rtog lint ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needs to run on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Bench smoke: one iteration of the Fig. 3 regeneration proves the
# benchmark harness wires up without paying full benchmark time.
bench:
	$(GO) test -bench=Fig3 -benchtime=1x -run '^$$' .

# Perf trajectory: ns/op of the packed vs legacy Rtog hot path and the
# end-to-end sim fidelity modes, rendered as BENCH_rtog.json — the
# artifact CI uploads on every run so regressions show up as a series.
# Each go test runs as its own command so a bench failure fails the
# target (a single pipeline would return only awk's exit status).
bench-rtog:
	$(GO) test -run '^$$' -bench 'BenchmarkRtog' -benchtime 1000x ./internal/pim > BENCH_rtog.txt
	$(GO) test -run '^$$' -bench 'BenchmarkSim(Packed(Bytes|Parallel)?|Analytic)$$' -benchtime 2x ./internal/sim >> BENCH_rtog.txt
	@awk 'BEGIN { printf "{\n  \"benchmarks\": [" ; first=1 } \
	      /^Benchmark/ { name=$$1; sub(/-[0-9]+$$/, "", name); \
	        if (!first) printf ","; first=0; \
	        printf "\n    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}", name, $$2, $$3 } \
	      END { printf "\n  ]\n}\n" }' BENCH_rtog.txt > BENCH_rtog.json
	@rm -f BENCH_rtog.txt
	@cat BENCH_rtog.json

lint: vet fmt-check

ci: build lint race bench
