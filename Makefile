# Local targets mirror .github/workflows/ci.yml step for step so a
# green `make ci` locally means a green CI run.

GO ?= go

.PHONY: all build vet fmt-check test race bench lint ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needs to run on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Bench smoke: one iteration of the Fig. 3 regeneration proves the
# benchmark harness wires up without paying full benchmark time.
bench:
	$(GO) test -bench=Fig3 -benchtime=1x -run '^$$' .

lint: vet fmt-check

ci: build lint race bench
