package aim

// One testing.B benchmark per table and figure of the paper's
// evaluation (§6) and discussion (§7), each regenerating the
// corresponding experiment through internal/experiments. Run with
//
//	go test -bench=. -benchmem
//
// cmd/aimbench prints the same tables with the paper's rows/series.

import (
	"context"
	"runtime"
	"testing"

	"aim/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	run, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl := run(2025)
		if len(tbl.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkFig3 regenerates Fig. 3: normalized worst IR-drop per
// workload versus the sign-off worst case.
func BenchmarkFig3(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig4 regenerates Fig. 4: Rtog↔IR-drop correlation across 40
// macros for DPIM and APIM.
func BenchmarkFig4(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5 regenerates Fig. 5: Rtog distributions over 50 000
// cycles, with and without HR optimization.
func BenchmarkFig5(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig7 regenerates Fig. 7a: weight histograms aligning with
// Hamming local minima under LHR.
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkTable2 regenerates Table 2: HRaverage/HRmax reductions of
// LHR and WDS over the QAT baseline across the six models.
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkTable3 regenerates Table 3: LHR integrated with PTQ
// (OmniQuant, BRECQ).
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkFig12 regenerates Fig. 12: per-layer HR of ResNet18.
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkFig13 regenerates Fig. 13: HR vs quality across the four
// pipeline configurations.
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkFig14 regenerates Fig. 14: the WDS δ sweep.
func BenchmarkFig14(b *testing.B) { benchExperiment(b, "fig14") }

// BenchmarkFig15 regenerates Fig. 15: pruning versus/with LHR & WDS.
func BenchmarkFig15(b *testing.B) { benchExperiment(b, "fig15") }

// BenchmarkFig16 regenerates Fig. 16: layout IR-drop heatmaps through
// the PDN mesh solver.
func BenchmarkFig16(b *testing.B) { benchExperiment(b, "fig16") }

// BenchmarkFig17 regenerates Fig. 17: drive-current and bump
// voltage/current traces before and after AIM.
func BenchmarkFig17(b *testing.B) { benchExperiment(b, "fig17") }

// BenchmarkSec66 regenerates the §6.6 headline numbers (mitigation,
// power, TOPS) for both modes.
func BenchmarkSec66(b *testing.B) { benchExperiment(b, "sec66") }

// BenchmarkFig18 regenerates Fig. 18: the β sweep.
func BenchmarkFig18(b *testing.B) { benchExperiment(b, "fig18") }

// BenchmarkFig19 regenerates Fig. 19: the component ablation.
func BenchmarkFig19(b *testing.B) { benchExperiment(b, "fig19") }

// BenchmarkFig20 regenerates Fig. 20: energy-efficiency decomposition.
func BenchmarkFig20(b *testing.B) { benchExperiment(b, "fig20") }

// BenchmarkFig21 regenerates Fig. 21: mapping strategy comparison.
func BenchmarkFig21(b *testing.B) { benchExperiment(b, "fig21") }

// BenchmarkFig22 regenerates Fig. 22: AIM on APIM and adder trees.
func BenchmarkFig22(b *testing.B) { benchExperiment(b, "fig22") }

// BenchmarkVfSensitivity regenerates the §5.5.1 level-grid sensitivity
// analysis.
func BenchmarkVfSensitivity(b *testing.B) { benchExperiment(b, "vfsens") }

// BenchmarkOverhead regenerates the §6.10 area/power overhead table.
func BenchmarkOverhead(b *testing.B) { benchExperiment(b, "overhead") }

// experimentSuite is the sim-heavy cross-section the engine benchmarks
// regenerate: these five dominate the registry's wall-clock time and
// exercise every sharding axis (experiments, networks, betas, waves).
var experimentSuite = []string{"fig3", "sec66", "fig18", "fig19", "fig20"}

func benchExperimentSuite(b *testing.B, workers int) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, err := experiments.RunSet(context.Background(), experimentSuite, 2025, workers, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) != len(experimentSuite) {
			b.Fatalf("got %d tables, want %d", len(tables), len(experimentSuite))
		}
	}
}

// BenchmarkExperimentsSerial is the serial reference harness: it pins
// GOMAXPROCS to 1 so the engine, the experiments' inner loops, and the
// simulator's wave shards all collapse to a single worker — the
// pre-parallel behavior. Compare against BenchmarkExperimentsParallel
// to quantify the engine's speedup; the rendered tables are
// byte-identical between the two.
func BenchmarkExperimentsSerial(b *testing.B) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	benchExperimentSuite(b, 1)
}

// BenchmarkExperimentsParallel fans the same suite out over one worker
// per CPU at every level (experiments, inner loops, waves). On a
// ≥ 4-core machine this runs ≥ 2× faster than the serial harness.
func BenchmarkExperimentsParallel(b *testing.B) {
	benchExperimentSuite(b, 0)
}

// BenchmarkOptimize measures the library-level LHR+WDS optimization
// path on a 64k-weight tensor (an ablation-style microbenchmark of the
// core software pipeline).
func BenchmarkOptimize(b *testing.B) {
	w := make([]float64, 64*1024)
	for i := range w {
		w[i] = float64((i%255)-127) / 1270.0
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(w) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(w, OptimizeOptions{WDSDelta: 16}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEnd measures a full AIM run (compile + simulate +
// baseline comparison) on ResNet18.
func BenchmarkEndToEnd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Network: "resnet18"}); err != nil {
			b.Fatal(err)
		}
	}
}
