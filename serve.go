package aim

import (
	"context"
	"net/http"
	"time"

	"aim/internal/serve"
)

// Server is the compile-once serving runtime (the paper's
// d-Matrix/Houmo scenario: a PIM chip serving models under a latency
// target or power envelope). A one-shot Run recompiles the whole
// offline pipeline — LHR proximal tuning over every layer, WDS, the
// HR-aware mapping SA — on every call; a Server compiles each
// deployment point once into a shared plan cache keyed by (network,
// mode, bits, δ, seed) and answers repeated requests from it, so
// serving cost drops to the runtime Execute phase alone.
//
// Concurrent Submit calls flow through an admission queue whose batch
// former groups them by plan; batches execute over a bounded worker
// pool reusing warm simulator state. Results are identical to a cold
// Run of the same Config — determinism holds for any worker count.
//
// The runtime is a four-layer stack: Handler is the HTTP transport,
// admission applies per-client rate limits and sheds load once the
// queue is full (ServerStats.Shed/RateLimited count the refusals),
// scheduling forms plan-keyed batches and runs the SLO degradation
// ladder (ServerOptions.TargetP95), and execution reuses warm
// simulator state. In-process Submit enters at admission, skipping
// the transport layer.
type Server struct {
	inner *serve.Server
}

// ServerOptions configures a Server. Zero values select defaults.
type ServerOptions struct {
	// Workers is the executor pool size (default GOMAXPROCS): how many
	// plan batches run concurrently.
	Workers int
	// MaxBatch bounds how many queued requests one admission round
	// drains (default 64).
	MaxBatch int
	// Queue is the admission queue depth (default 256).
	Queue int
	// PlanCacheDir, when non-empty, persists compiled plans to a
	// content-addressed store at that directory and loads matching
	// plans back on later runs. The cache key is the sha256 of
	// everything the compile consumes — network, mode, bits, δ, seed —
	// plus the compiler generation, so a restarted server (or another
	// replica sharing the directory) skips the cold compile, and a
	// code change that affects plan content invalidates every stale
	// entry at once. Corrupt or stale entries fall back to a
	// recompile; results are identical either way. Empty keeps the
	// cache in-process only.
	PlanCacheDir string
	// RatePerClient, when positive, admits at most that many requests
	// per second per client (token bucket, RateBurst deep) before the
	// server answers 429 + Retry-After over HTTP. Clients are named by
	// the X-AIM-Client header, the request body's client field, or the
	// remote address. Zero disables rate limiting; in-process Submit
	// carries no client identity and is never limited.
	RatePerClient float64
	// RateBurst is the token-bucket depth (default: one second of
	// RatePerClient, at least 1). Setting it without RatePerClient is
	// an error.
	RateBurst int
	// TargetP95 arms the SLO degradation ladder: when the p95 of
	// recent request latencies exceeds it, requests submitted with
	// auto fidelity step down a tier (spatial → packed → analytic),
	// and step back up once p95 falls under half the target. The
	// ladder changes only which tier serves — each tier's results stay
	// bit-identical, and tier switches reuse the already-compiled
	// plan. Zero disables the ladder (auto requests always get
	// spatial).
	TargetP95 time.Duration
}

// NewServer starts a serving runtime; callers must Close it. It fails
// only when PlanCacheDir is set but cannot be opened.
func NewServer(opt ServerOptions) (*Server, error) {
	inner, err := serve.New(serve.Options{
		Workers:       opt.Workers,
		MaxBatch:      opt.MaxBatch,
		Queue:         opt.Queue,
		PlanCacheDir:  opt.PlanCacheDir,
		RatePerClient: opt.RatePerClient,
		Burst:         opt.RateBurst,
		TargetP95:     opt.TargetP95,
	})
	if err != nil {
		return nil, err
	}
	return &Server{inner: inner}, nil
}

// Close drains in-flight batches and stops the server. Idempotent;
// requests still queued are answered with an error.
func (s *Server) Close() { s.inner.Close() }

// Handler returns the HTTP front door: POST /v1/submit (JSON in, JSON
// out), GET /v1/metrics, GET /v1/healthz. Overload answers are 429
// with a Retry-After header; a draining server answers 503. Mount it
// on any http.Server — `aimserve serve` is a thin wrapper around
// exactly this.
func (s *Server) Handler() http.Handler { return s.inner.Handler() }

// Drain gates the HTTP front door (new requests get 503 +
// Retry-After, healthz flips to 503 so load balancers stop routing)
// and blocks until in-flight HTTP requests finish. In-process Submit
// keeps working; the graceful shutdown order is Drain, then Close.
func (s *Server) Drain() { s.inner.Drain() }

// request converts a public Config into the serving runtime's request.
func request(cfg Config) (serve.Request, error) {
	mode, err := cfg.Mode.internal()
	if err != nil {
		return serve.Request{}, err
	}
	fidelity, err := cfg.Fidelity.internal()
	if err != nil {
		return serve.Request{}, err
	}
	return serve.Request{
		Network:         cfg.Network,
		Mode:            mode,
		Beta:            cfg.Beta,
		Bits:            cfg.Bits,
		Delta:           cfg.WDSDelta,
		Seed:            cfg.Seed,
		Parallel:        cfg.Parallel,
		Fidelity:        fidelity,
		SpatialWindow:   cfg.SpatialWindow,
		SpatialSkipMV:   cfg.SpatialSkipMV,
		SpatialAdaptive: cfg.SpatialAdaptive,
	}, nil
}

// Submit serves one request: the first request for a deployment point
// pays the offline compile, every later one amortizes it to zero. The
// Result equals what Run(cfg) returns for the same Config.
func (s *Server) Submit(ctx context.Context, cfg Config) (Result, error) {
	req, err := request(cfg)
	if err != nil {
		return Result{}, err
	}
	resp, err := s.inner.Submit(ctx, req)
	if err != nil {
		return Result{}, err
	}
	return resultFrom(resp.Report, cfg.Mode), nil
}

// ServeList submits every request concurrently and returns results in
// request order — for a fixed seed and fixed list the slice is
// identical for any ServerOptions.Workers value.
func (s *Server) ServeList(ctx context.Context, cfgs []Config) ([]Result, error) {
	reqs := make([]serve.Request, len(cfgs))
	for i, cfg := range cfgs {
		req, err := request(cfg)
		if err != nil {
			return nil, err
		}
		reqs[i] = req
	}
	resps, err := s.inner.ServeList(ctx, reqs)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(resps))
	for i, resp := range resps {
		out[i] = resultFrom(resp.Report, cfgs[i].Mode)
	}
	return out, nil
}

// ServerStats are the server's cumulative counters.
type ServerStats struct {
	// Requests counts answered requests; Compiles counts plan
	// compilations (one per distinct cache key); PlanHits counts
	// cache lookups answered by an existing plan; DiskHits counts
	// plans loaded from the persistent store instead of compiled
	// (always 0 without ServerOptions.PlanCacheDir).
	Requests, Compiles, PlanHits, DiskHits int64
	// Batches counts admission batches; MeanBatch is requests per
	// batch.
	Batches   int64
	MeanBatch float64
	// Shed counts requests refused because the admission queue was
	// full; RateLimited counts requests refused by the per-client rate
	// limiter. Neither is included in Requests.
	Shed, RateLimited int64
	// ServedAnalytic/ServedPacked/ServedSpatial count answered
	// requests by the fidelity tier that executed them — under the
	// degradation ladder the mix shifts with load.
	ServedAnalytic, ServedPacked, ServedSpatial int64
	// SpatialSolves/SpatialSkips/SpatialVCycles/SpatialSaturated are the
	// spatial tier's cumulative mesh-solver accounting across served
	// requests: windows solved (and the V-cycles they took), windows
	// answered from the held field by the incremental skip gate, and
	// solves that hit the iteration cap before converging. All stay 0
	// until a spatial-tier request is served.
	SpatialSolves, SpatialSkips, SpatialVCycles, SpatialSaturated int64
}

// Stats snapshots the counters.
func (s *Server) Stats() ServerStats {
	st := s.inner.Stats()
	return ServerStats{
		Requests: st.Requests, Compiles: st.Compiles, PlanHits: st.PlanHits,
		DiskHits: st.DiskHits, Batches: st.Batches, MeanBatch: st.MeanBatch,
		Shed: st.Shed, RateLimited: st.RateLimited,
		ServedAnalytic: st.ServedAnalytic, ServedPacked: st.ServedPacked,
		ServedSpatial: st.ServedSpatial,
		SpatialSolves: st.SpatialSolves, SpatialSkips: st.SpatialSkips,
		SpatialVCycles: st.SpatialVCycles, SpatialSaturated: st.SpatialSaturated,
	}
}

// ServerMetrics summarizes served traffic. Unlike Results these depend
// on load and scheduling: they are observability, not part of the
// deterministic contract.
type ServerMetrics struct {
	ServerStats
	// Wall is time since the server started; ReqPerSec is Requests
	// over Wall.
	Wall      time.Duration
	ReqPerSec float64
	// P50/P95/P99 are admission-to-answer latency percentiles.
	P50, P95, P99 time.Duration
	// ShedRate is refused requests (shed + rate-limited) over all
	// admission attempts — the fraction of offered load turned away.
	ShedRate float64
	// LadderTier is the degradation ladder's current tier ("spatial",
	// "packed" or "analytic"); LadderDowns/LadderUps count its steps.
	LadderTier  string
	LadderDowns int64
	LadderUps   int64
}

// Metrics snapshots the timing view.
func (s *Server) Metrics() ServerMetrics {
	m := s.inner.Metrics()
	return ServerMetrics{
		ServerStats: ServerStats{
			Requests: m.Requests, Compiles: m.Compiles, PlanHits: m.PlanHits,
			DiskHits: m.DiskHits, Batches: m.Batches, MeanBatch: m.MeanBatch,
			Shed: m.Shed, RateLimited: m.RateLimited,
			ServedAnalytic: m.ServedAnalytic, ServedPacked: m.ServedPacked,
			ServedSpatial: m.ServedSpatial,
			SpatialSolves: m.SpatialSolves, SpatialSkips: m.SpatialSkips,
			SpatialVCycles: m.SpatialVCycles, SpatialSaturated: m.SpatialSaturated,
		},
		Wall: m.Wall, ReqPerSec: m.ReqPerSec,
		P50: m.P50, P95: m.P95, P99: m.P99,
		ShedRate: m.ShedRate, LadderTier: m.LadderTier,
		LadderDowns: m.LadderDowns, LadderUps: m.LadderUps,
	}
}

// TokensPerSec estimates serving throughput at the paper's Houmo
// MoMagic30 reference point (~17.5 tokens/s at the nominal 256 TOPS),
// scaled with the run's effective TOPS.
func (r Result) TokensPerSec() float64 { return serve.TokensPerSec(r.TOPS) }

// EnergyPerTokenMJ is the per-macro energy per generated token in
// millijoules: average macro power over the token rate.
func (r Result) EnergyPerTokenMJ() float64 {
	return serve.EnergyPerTokenMJ(r.MacroPowerMW, r.TOPS)
}
