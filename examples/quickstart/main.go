// Quickstart: run the full AIM pipeline on one workload and print the
// before/after comparison, then optimize a raw weight tensor with the
// library-level LHR+WDS path.
package main

import (
	"fmt"
	"log"
	"math"

	"aim"
)

func main() {
	// 1. End-to-end: ResNet18 on the simulated 7nm 256-TOPS PIM chip,
	//    low-power mode, full AIM (LHR + WDS + HR-aware mapping +
	//    IR-Booster) versus the worst-case DVFS baseline.
	res, err := aim.Run(aim.Config{Network: "resnet18", Mode: aim.LowPower})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== AIM quickstart: resnet18, low-power ==")
	fmt.Printf("HRaverage        %.3f -> %.3f\n", res.HRBaseline, res.HROptimized)
	fmt.Printf("worst IR-drop    140.0 -> %.1f mV  (%.1f%% mitigation)\n", res.WorstDropMV, res.MitigationPct)
	fmt.Printf("macro power      %.3f -> %.3f mW\n", res.BaselinePowerMW, res.MacroPowerMW)
	fmt.Printf("energy efficiency %.2fx\n", res.EfficiencyGain)

	// 2. Library-level: bring your own weights. A synthetic layer here;
	//    any []float64 works.
	weights := make([]float64, 4096)
	for i := range weights {
		weights[i] = 0.05 * math.Sin(float64(i)*0.7) * math.Exp(-float64(i%97)/40)
	}
	opt, err := aim.Optimize(weights, aim.OptimizeOptions{Bits: 8, WDSDelta: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== library-level LHR + WDS(8) on a raw tensor ==")
	fmt.Printf("HR %.3f -> %.3f (drift %.2f codes, overflow %.2f%%)\n",
		opt.HRBefore, opt.HRAfter, opt.MeanDrift, 100*opt.OverflowFrac)

	// 3. The WDS shift is exact after compensation: for a matmul column
	//    with inputs x, add aim.Correction(x, δ) to the accumulated
	//    partial sum.
	inputs := []int32{3, -1, 7, 0, 2}
	fmt.Printf("WDS correction for a sample input column: %d\n", aim.Correction(inputs, opt.WDSDelta))
}
