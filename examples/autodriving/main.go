// Autodriving: the paper's motivating mixed workload (§5.6) — UniAD /
// BEVFormer-style perception stacks combine convolution backbones with
// transformer heads, so operators with very different HR levels run on
// the chip simultaneously. This example compares the four task-mapping
// strategies on such a mix and shows why HR-aware mapping matters.
package main

import (
	"fmt"

	"aim/internal/compiler"
	"aim/internal/irdrop"
	"aim/internal/mapping"
	"aim/internal/pim"
	"aim/internal/vf"
	"aim/internal/xrand"
)

func main() {
	cfg := pim.DefaultConfig()

	// A perception-stack wave: a conv backbone stage (optimized weights,
	// low HR), a BEV transformer's QKV generation (moderate HR), and its
	// attention product (input-determined: worst-case safe level).
	var tasks []mapping.Task
	for i := 0; i < 25; i++ {
		tasks = append(tasks, mapping.Task{Op: "backbone.conv", OpID: 0, HR: 0.26})
	}
	for i := 0; i < 18; i++ {
		tasks = append(tasks, mapping.Task{Op: "bev.qkv", OpID: 1, HR: 0.31})
	}
	for i := 0; i < 14; i++ {
		tasks = append(tasks, mapping.Task{Op: "bev.qkt", OpID: 2, HR: compiler.RuntimeOperandHR, InputDetermined: true})
	}

	fmt.Println("== autonomous-driving mixed workload: 25 conv + 18 qkv + 14 qkt tasks ==")
	fmt.Printf("%-12s  %-10s  %-18s  %-12s\n", "strategy", "mode", "power (mW, lower=better)", "TOPS")
	for _, mode := range []vf.Mode{vf.LowPower, vf.Sprint} {
		eval := mapping.NewEvaluator(cfg, irdrop.DPIMModel(), mode, xrand.NewNamed(7, "autodriving/eval"))
		score := func(m *mapping.Mapping) mapping.Score { return eval.Evaluate(m, tasks) }
		seq := score(mapping.Sequential(tasks, cfg))
		rnd := score(mapping.Random(tasks, cfg, xrand.NewNamed(7, "autodriving/rnd")))
		zig := score(mapping.Zigzag(tasks, cfg))
		best, hrScore := mapping.HRAware(tasks, eval, xrand.NewNamed(7, "autodriving/sa"), mapping.DefaultSAOptions())
		if err := best.Validate(len(tasks)); err != nil {
			panic(err)
		}
		for _, row := range []struct {
			name string
			s    mapping.Score
		}{
			{"sequential", seq}, {"random", rnd}, {"zigzag", zig}, {"hr-aware", hrScore},
		} {
			fmt.Printf("%-12s  %-10s  %-24.2f  %.0f\n", row.name, mode, row.s.PowerMW, row.s.TOPS)
		}
	}

	// Show what the SA mapper actually did: how many groups ended up
	// hosting a single operator (no HR interference).
	eval := mapping.NewEvaluator(cfg, irdrop.DPIMModel(), vf.LowPower, xrand.NewNamed(7, "autodriving/eval2"))
	best, _ := mapping.HRAware(tasks, eval, xrand.NewNamed(7, "autodriving/sa2"), mapping.DefaultSAOptions())
	pure, mixed, idle := 0, 0, 0
	for g := 0; g < cfg.Groups; g++ {
		ops := map[int]bool{}
		for _, m := range best.GroupMembers(g) {
			if ti := best.Assign[m]; ti != mapping.Empty {
				ops[tasks[ti].OpID] = true
			}
		}
		switch {
		case len(ops) == 0:
			idle++
		case len(ops) == 1:
			pure++
		default:
			mixed++
		}
	}
	fmt.Printf("\nHR-aware grouping: %d single-operator groups, %d mixed, %d idle\n", pure, mixed, idle)
	fmt.Println("(mixed groups force every macro to the worst member's safe level — the fewer, the better)")
}
