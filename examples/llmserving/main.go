// LLM serving: runs GPT2 and Llama3.2-1B through the full AIM pipeline
// in both operating modes — the d-Matrix/Houmo scenario from the
// paper's introduction, where a PIM accelerator serves language models
// under either a latency target (sprint) or a power envelope
// (low-power). Transformers are the interesting case: their attention
// products (QKT, SV) are input-determined, so offline LHR/WDS cannot
// touch them and IR-Booster's runtime adjustment carries most of the
// gain (§6.8).
package main

import (
	"fmt"
	"log"

	"aim"
)

func main() {
	fmt.Println("== AIM LLM serving: GPT2 & Llama3.2-1B, both modes ==")
	fmt.Printf("%-8s %-10s %9s %11s %10s %8s %9s\n",
		"model", "mode", "HR", "mitigation", "power(mW)", "TOPS", "eff.gain")
	for _, net := range []string{"gpt2", "llama3"} {
		for _, mode := range []aim.Mode{aim.Sprint, aim.LowPower} {
			res, err := aim.Run(aim.Config{Network: net, Mode: mode})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8s %-10s %4.3f→%.3f %10.1f%% %10.3f %8.0f %8.2fx\n",
				net, mode, res.HRBaseline, res.HROptimized,
				res.MitigationPct, res.MacroPowerMW, res.TOPS, res.EfficiencyGain)
		}
	}

	// Serving-oriented view: tokens/s scales with effective TOPS, and
	// energy per token with macro power over throughput. Compare the
	// modes on Llama3.
	sprint, err := aim.Run(aim.Config{Network: "llama3", Mode: aim.Sprint})
	if err != nil {
		log.Fatal(err)
	}
	lowp, err := aim.Run(aim.Config{Network: "llama3", Mode: aim.LowPower})
	if err != nil {
		log.Fatal(err)
	}
	// The paper's Houmo MoMagic30 reference point: ~17.5 tokens/s at
	// the chip's nominal 256 TOPS. Scale with effective throughput.
	const tokensPerSecAtNominal = 17.5
	tokS := tokensPerSecAtNominal * sprint.TOPS / 256
	tokL := tokensPerSecAtNominal * lowp.TOPS / 256
	eS := sprint.MacroPowerMW / (sprint.TOPS / 256)
	eL := lowp.MacroPowerMW / (lowp.TOPS / 256)
	fmt.Println("\n== Llama3 serving trade-off ==")
	fmt.Printf("sprint:    %.1f tokens/s, %.2f mW·macro per unit throughput\n", tokS, eS)
	fmt.Printf("low-power: %.1f tokens/s, %.2f mW·macro per unit throughput (%.0f%% less energy/token)\n",
		tokL, eL, 100*(1-eL/eS))
}
