// LLM serving: GPT2 and Llama3.2-1B through the compile-once serving
// runtime — the d-Matrix/Houmo scenario from the paper's introduction,
// where a PIM accelerator serves language models under either a
// latency target (sprint) or a power envelope (low-power).
// Transformers are the interesting case: their attention products
// (QKT, SV) are input-determined, so offline LHR/WDS cannot touch them
// and IR-Booster's runtime adjustment carries most of the gain (§6.8).
//
// The server compiles each of the four (network, mode) deployment
// points once into its shared plan cache; a second wave of the same
// traffic then answers entirely from cached plans, paying only the
// runtime Execute phase — the before/after the one-shot aim.Run API
// could not express.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"aim"
)

func main() {
	srv, err := aim.NewServer(aim.ServerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	var cfgs []aim.Config
	for _, net := range []string{"gpt2", "llama3"} {
		for _, mode := range []aim.Mode{aim.Sprint, aim.LowPower} {
			cfgs = append(cfgs, aim.Config{Network: net, Mode: mode})
		}
	}

	fmt.Println("== AIM LLM serving: GPT2 & Llama3.2-1B, both modes ==")
	cold := time.Now()
	results, err := srv.ServeList(context.Background(), cfgs)
	if err != nil {
		log.Fatal(err)
	}
	coldWall := time.Since(cold)

	fmt.Printf("%-8s %-10s %9s %11s %10s %8s %9s %7s %8s\n",
		"model", "mode", "HR", "mitigation", "power(mW)", "TOPS", "eff.gain", "tok/s", "mJ/tok")
	for i, res := range results {
		fmt.Printf("%-8s %-10s %4.3f→%.3f %10.1f%% %10.3f %8.0f %8.2fx %7.1f %8.3f\n",
			cfgs[i].Network, res.Mode, res.HRBaseline, res.HROptimized,
			res.MitigationPct, res.MacroPowerMW, res.TOPS, res.EfficiencyGain,
			res.TokensPerSec(), res.EnergyPerTokenMJ())
	}

	// Same traffic again: every plan is cached now, so the second wave
	// pays only the runtime phase.
	warm := time.Now()
	if _, err := srv.ServeList(context.Background(), cfgs); err != nil {
		log.Fatal(err)
	}
	warmWall := time.Since(warm)
	st := srv.Stats()
	fmt.Printf("\n== compile-once amortization ==\n")
	fmt.Printf("cold wave:  %v (%d plans compiled)\n", coldWall.Round(time.Millisecond), st.Compiles)
	fmt.Printf("warm wave:  %v (%d cache hits, 0 compiles) — %.1fx faster\n",
		warmWall.Round(time.Millisecond), st.PlanHits,
		float64(coldWall)/float64(warmWall))

	// Serving-oriented view: tokens/s scales with effective TOPS at
	// the Houmo MoMagic30 reference point (~17.5 tokens/s at 256
	// TOPS), and energy per token is macro power over token rate.
	// Compare the modes on Llama3 — answered from the plan cache.
	sprint, err := srv.Submit(context.Background(), aim.Config{Network: "llama3", Mode: aim.Sprint})
	if err != nil {
		log.Fatal(err)
	}
	lowp, err := srv.Submit(context.Background(), aim.Config{Network: "llama3", Mode: aim.LowPower})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== Llama3 serving trade-off ==")
	fmt.Printf("sprint:    %.1f tokens/s, %.3f mJ per token per macro\n",
		sprint.TokensPerSec(), sprint.EnergyPerTokenMJ())
	fmt.Printf("low-power: %.1f tokens/s, %.3f mJ per token per macro (%.0f%% less energy/token)\n",
		lowp.TokensPerSec(), lowp.EnergyPerTokenMJ(),
		100*(1-lowp.EnergyPerTokenMJ()/sprint.EnergyPerTokenMJ()))
}
