// Quantlab: LHR with *measured* accuracy, not the surrogate model.
//
// The evaluation zoo uses distribution-matched synthetic weights with a
// surrogate quality model (DESIGN.md). This example closes the loop on
// a real, trainable network: a small MLP is trained in pure Go on a
// synthetic classification task, then quantization-aware fine-tuned
// with the LHR regularizer wired into the actual training loss exactly
// via alternating proximal snapping and task re-adaptation. Both the
// Hamming-rate reduction and the accuracy are *measured*. Finally the
// INT8 inference path runs with WDS-shifted weights plus the shift
// compensation and is verified bit-exact against the unshifted matmul.
package main

import (
	"fmt"
	"math"
	//aimlint:allow no-global-rand — standalone demo stays copy-pasteable outside the module; the fixed seed below keeps it reproducible
	"math/rand"

	"aim"
)

const (
	inDim      = 16
	hidden     = 32
	classes    = 4
	trainN     = 3000
	testN      = 1500
	bits       = 8
	lambdaLHR  = 4
	baseEpochs = 40
	lhrEpochs  = 25
)

type mlp struct {
	w1 [][]float64 // hidden x in
	b1 []float64
	w2 [][]float64 // classes x hidden
	b2 []float64
}

func newMLP(rng *rand.Rand) *mlp {
	m := &mlp{
		w1: alloc(hidden, inDim), b1: make([]float64, hidden),
		w2: alloc(classes, hidden), b2: make([]float64, classes),
	}
	for _, row := range m.w1 {
		for j := range row {
			row[j] = rng.NormFloat64() * math.Sqrt(2.0/inDim)
		}
	}
	for _, row := range m.w2 {
		for j := range row {
			row[j] = rng.NormFloat64() * math.Sqrt(2.0/hidden)
		}
	}
	return m
}

func alloc(r, c int) [][]float64 {
	out := make([][]float64, r)
	for i := range out {
		out[i] = make([]float64, c)
	}
	return out
}

// forward returns hidden activations and logits.
func (m *mlp) forward(x []float64) (h, logits []float64) {
	h = make([]float64, hidden)
	for i := range h {
		s := m.b1[i]
		for j, v := range x {
			s += m.w1[i][j] * v
		}
		if s > 0 {
			h[i] = s
		}
	}
	logits = make([]float64, classes)
	for i := range logits {
		s := m.b2[i]
		for j, v := range h {
			s += m.w2[i][j] * v
		}
		logits[i] = s
	}
	return h, logits
}

func softmax(logits []float64) []float64 {
	mx := logits[0]
	for _, v := range logits {
		if v > mx {
			mx = v
		}
	}
	out := make([]float64, len(logits))
	sum := 0.0
	for i, v := range logits {
		out[i] = math.Exp(v - mx)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// step runs one SGD example (cross-entropy task loss only). The
// update flags freeze layers whose codes have been committed.
func (m *mlp) step(x []float64, label int, lr float64, updateW1, updateW2 bool) {
	h, logits := m.forward(x)
	p := softmax(logits)
	dLogits := make([]float64, classes)
	copy(dLogits, p)
	dLogits[label] -= 1

	dH := make([]float64, hidden)
	for i := 0; i < classes; i++ {
		g := dLogits[i]
		for j := 0; j < hidden; j++ {
			dH[j] += g * m.w2[i][j]
			if updateW2 {
				m.w2[i][j] -= lr * g * h[j]
			}
		}
		m.b2[i] -= lr * g
	}
	for j := 0; j < hidden; j++ {
		if h[j] <= 0 {
			dH[j] = 0
		}
	}
	for i := 0; i < hidden; i++ {
		g := dH[i]
		if updateW1 {
			for j := 0; j < inDim; j++ {
				m.w1[i][j] -= lr * g * x[j]
			}
		}
		m.b1[i] -= lr * g
	}
}

// snapLHR commits one layer to LHR-optimized codes: the proximal form
// of Eq. 5/6 (each code moves to the Hamming/drift cost minimum within
// a window) and replaces the float weights with the dequantized codes.
// The rest of the network then re-adapts around them — the mechanism
// by which real QAT absorbs the LHR constraint with little accuracy
// cost.
func snapLHR(w [][]float64, lambda float64, window int) (hrBefore, hrAfter, scale float64) {
	var flat []float64
	for _, row := range w {
		flat = append(flat, row...)
	}
	res, err := aim.Optimize(flat, aim.OptimizeOptions{Bits: bits, Lambda: lambda, Window: window})
	if err != nil {
		panic(err)
	}
	k := 0
	for _, row := range w {
		for j := range row {
			row[j] = float64(res.Codes[k]) * res.Scale
			k++
		}
	}
	return res.HRBefore, res.HRAfter, res.Scale
}

// quantizeLayer returns INT8 codes and the scale.
func quantizeLayer(w [][]float64, scale float64) ([][]int32, float64) {
	if scale == 0 {
		mx := 0.0
		for _, row := range w {
			for _, v := range row {
				if a := math.Abs(v); a > mx {
					mx = a
				}
			}
		}
		scale = mx / 127
	}
	codes := make([][]int32, len(w))
	for i, row := range w {
		codes[i] = make([]int32, len(row))
		for j, v := range row {
			c := math.Round(v / scale)
			if c > 127 {
				c = 127
			}
			if c < -128 {
				c = -128
			}
			codes[i][j] = int32(c)
		}
	}
	return codes, scale
}

// evalQuantized measures test accuracy with weights replaced by their
// dequantized codes.
func evalQuantized(m *mlp, xs [][]float64, ys []int) (acc float64, hr float64) {
	c1, s1 := quantizeLayer(m.w1, 0)
	c2, s2 := quantizeLayer(m.w2, 0)
	q := &mlp{w1: dequant(c1, s1), b1: m.b1, w2: dequant(c2, s2), b2: m.b2}
	correct := 0
	for i, x := range xs {
		_, logits := q.forward(x)
		if argmax(logits) == ys[i] {
			correct++
		}
	}
	all := append(append([]int32{}, flattenI(c1)...), flattenI(c2)...)
	return float64(correct) / float64(len(xs)) * 100, aim.HR(all, bits)
}

func dequant(codes [][]int32, s float64) [][]float64 {
	out := make([][]float64, len(codes))
	for i, row := range codes {
		out[i] = make([]float64, len(row))
		for j, c := range row {
			out[i][j] = float64(c) * s
		}
	}
	return out
}

func flattenI(w [][]int32) []int32 {
	var out []int32
	for _, row := range w {
		out = append(out, row...)
	}
	return out
}

func argmax(v []float64) int {
	best := 0
	for i := range v {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

func main() {
	rng := rand.New(rand.NewSource(42))

	// Synthetic 4-class task: Gaussian clusters in 16 dimensions.
	means := alloc(classes, inDim)
	for _, row := range means {
		for j := range row {
			row[j] = rng.NormFloat64() * 0.9
		}
	}
	sample := func(n int) ([][]float64, []int) {
		xs := make([][]float64, n)
		ys := make([]int, n)
		for i := range xs {
			c := rng.Intn(classes)
			ys[i] = c
			x := make([]float64, inDim)
			for j := range x {
				x[j] = means[c][j] + rng.NormFloat64()*1.5
			}
			xs[i] = x
		}
		return xs, ys
	}
	trainX, trainY := sample(trainN)
	testX, testY := sample(testN)

	// Phase 1: float training.
	m := newMLP(rng)
	for e := 0; e < baseEpochs; e++ {
		for i := range trainX {
			m.step(trainX[i], trainY[i], 0.01, true, true)
		}
	}
	accBase, hrBase := evalQuantized(m, testX, testY)
	fmt.Println("== quantlab: real QAT with LHR on a trained MLP ==")
	fmt.Printf("baseline INT8:  accuracy %.2f%%  HR %.3f\n", accBase, hrBase)

	// Phase 2: LHR quantization-aware fine-tuning, layer by layer: snap
	// w1 to its LHR-optimal codes (Eq. 5/6 proximal form), let the rest
	// of the network re-adapt with real task gradients, then snap w2
	// and re-adapt the biases. Every accuracy number is measured.
	snapLHR(m.w1, lambdaLHR, 6)
	for e := 0; e < lhrEpochs; e++ {
		for i := range trainX {
			m.step(trainX[i], trainY[i], 0.004, false, true)
		}
	}
	snapLHR(m.w2, lambdaLHR, 6)
	for e := 0; e < lhrEpochs/2; e++ {
		for i := range trainX {
			m.step(trainX[i], trainY[i], 0.004, false, false)
		}
	}
	accLHR, hrLHR := evalQuantized(m, testX, testY)
	fmt.Printf("QAT + LHR INT8: accuracy %.2f%%  HR %.3f  (HR -%.1f%%, accuracy %+.2f points)\n",
		accLHR, hrLHR, 100*(1-hrLHR/hrBase), accLHR-accBase)

	// Phase 3: deploy with WDS(δ=8) and verify the compensated integer
	// matmul is bit-exact on a real input (DESIGN.md invariant 2).
	c1, s1 := quantizeLayer(m.w1, 0)
	x := make([]int32, inDim)
	for j := range x {
		x[j] = int32(math.Round(testX[0][j] / 0.05))
	}
	delta := 8
	exactRows, clampedRows := 0, 0
	for i, row := range c1 {
		var plain, shifted int64
		clamped := false
		for j, c := range row {
			plain += int64(c) * int64(x[j])
			sc := c + int32(delta)
			if sc > 127 {
				sc = 127 // production clamping (Algorithm 1 line 4)
				clamped = true
			}
			shifted += int64(sc) * int64(x[j])
		}
		shifted += aim.Correction(x, delta)
		if clamped {
			clampedRows++
			continue
		}
		if plain != shifted {
			fmt.Printf("row %d: WDS mismatch %d != %d\n", i, shifted, plain)
			return
		}
		exactRows++
	}
	fmt.Printf("WDS(δ=%d) + shift compensation: bit-exact on %d/%d output rows (%d rows contain clamped codes; scale %.4f)\n",
		delta, exactRows, len(c1), clampedRows, s1)
}
