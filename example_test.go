package aim_test

import (
	"context"
	"fmt"
	"log"
	"os"
	"strings"

	"aim"
)

// ExampleNewServer shows the serving runtime with a persistent plan
// cache: the first server compiles a plan and persists it; a second
// server — standing in for a restarted process or another replica
// sharing the directory — loads the plan from disk instead of
// compiling, and returns a byte-identical result.
func ExampleNewServer() {
	dir, err := os.MkdirTemp("", "aim-plan-cache-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ctx := context.Background()
	cfg := aim.Config{Network: "resnet18", Mode: aim.LowPower}

	srv, err := aim.NewServer(aim.ServerOptions{Workers: 1, PlanCacheDir: dir})
	if err != nil {
		log.Fatal(err)
	}
	first, err := srv.Submit(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	srv.Close()

	restarted, err := aim.NewServer(aim.ServerOptions{Workers: 1, PlanCacheDir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer restarted.Close()
	second, err := restarted.Submit(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}

	st := restarted.Stats()
	fmt.Printf("served %s in %s mode\n", second.Network, second.Mode)
	fmt.Printf("identical to pre-restart result: %t\n", first == second)
	fmt.Printf("restarted server: %d compiles, %d plans loaded from disk\n", st.Compiles, st.DiskHits)
	// Output:
	// served resnet18 in low-power mode
	// identical to pre-restart result: true
	// restarted server: 0 compiles, 1 plans loaded from disk
}

// ExampleRunExperiments regenerates one figure of the paper's
// evaluation. For a fixed seed the rendered table is byte-identical
// for any Parallel value — the repository's determinism guarantee.
func ExampleRunExperiments() {
	results, err := aim.RunExperiments(context.Background(), aim.ExperimentSet{
		IDs:  []string{"fig3"},
		Seed: 2025,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		title, _, _ := strings.Cut(r.Text, "\n")
		fmt.Printf("%s: %s\n", r.ID, title)
	}
	// Output:
	// fig3: == fig3: Normalized worst IR-drop per workload vs sign-off (Fig. 3) ==
}
