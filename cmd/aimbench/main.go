// Command aimbench regenerates the paper's evaluation tables and
// figures. With no arguments it runs every experiment in paper order;
// -exp selects a comma-separated subset.
//
// Usage:
//
//	aimbench [-exp fig3,table2,...] [-seed N] [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"aim/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	seed := flag.Int64("seed", 2025, "random seed for all stochastic components")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	ids := experiments.IDs()
	if *exp != "" {
		ids = strings.Split(*exp, ",")
	}
	exitCode := 0
	for _, id := range ids {
		run, ok := experiments.ByID(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "aimbench: unknown experiment %q (use -list)\n", id)
			exitCode = 1
			continue
		}
		start := time.Now()
		tbl := run(*seed)
		fmt.Println(tbl.Render())
		fmt.Printf("[%s completed in %v]\n\n", tbl.ID, time.Since(start).Round(time.Millisecond))
	}
	os.Exit(exitCode)
}
