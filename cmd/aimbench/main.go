// Command aimbench regenerates the paper's evaluation tables and
// figures. With no arguments it runs every experiment in paper order;
// -exp selects a comma-separated subset, -run selects by regular
// expression (go test -run semantics). Experiments fan out over a
// bounded worker pool (-parallel); for a fixed -seed the output bytes
// are identical for any worker count.
//
// Tables print to stdout in selection order once the set finishes
// (the bytes are deterministic); per-experiment completion notices
// stream to stderr as they happen.
//
// Usage:
//
//	aimbench [-exp fig3,table2,...] [-run regex] [-seed N] [-parallel N] [-list]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"aim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, executes the
// selected experiments, writes tables to stdout and diagnostics to
// stderr, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("aimbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "", "comma-separated experiment ids (default: all)")
	pattern := fs.String("run", "", "regular expression selecting experiment ids (go test -run semantics)")
	seed := fs.Int64("seed", 2025, "random seed for all stochastic components")
	parallel := fs.Int("parallel", 0, "experiment fan-out: 0 = one worker per CPU, 1 = one experiment at a time (inner shards always use GOMAXPROCS; output is identical either way)")
	list := fs.Bool("list", false, "list experiment ids and exit")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *list {
		for _, id := range aim.ExperimentIDs() {
			fmt.Fprintln(stdout, id)
		}
		return 0
	}
	if *exp != "" && *pattern != "" {
		fmt.Fprintln(stderr, "aimbench: -exp and -run are mutually exclusive")
		return 2
	}

	// Tables buffer until the whole set finishes so stdout bytes stay
	// deterministic; per-experiment completion goes to stderr as it
	// happens, so long runs show progress.
	set := aim.ExperimentSet{
		Pattern: *pattern, Seed: *seed, Parallel: *parallel,
		Progress: func(id string, elapsed time.Duration) {
			fmt.Fprintf(stderr, "[%s completed in %v]\n", id, elapsed.Round(time.Millisecond))
		},
	}
	if *exp != "" {
		for _, id := range strings.Split(*exp, ",") {
			set.IDs = append(set.IDs, strings.TrimSpace(id))
		}
	}
	start := time.Now() //aimlint:allow no-wallclock — times the run for the stderr diagnostic; table bytes on stdout never depend on it
	results, err := aim.RunExperiments(context.Background(), set)
	if err != nil {
		fmt.Fprintf(stderr, "aimbench: %v\n", err)
		return 1
	}
	for _, r := range results {
		fmt.Fprintln(stdout, r.Text)
	}
	// Timing is diagnostics: stderr, so stdout stays byte-deterministic.
	//aimlint:allow no-wallclock — stderr diagnostic only
	fmt.Fprintf(stderr, "[%d experiments completed in %v]\n", len(results), time.Since(start).Round(time.Millisecond))
	return 0
}
