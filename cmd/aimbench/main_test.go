package main

import (
	"strings"
	"testing"

	"aim"
)

// runCapture invokes the CLI entry point and returns exit code and the
// two output streams.
func runCapture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr strings.Builder
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestList(t *testing.T) {
	code, out, _ := runCapture(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	lines := strings.Fields(out)
	if len(lines) != len(aim.ExperimentIDs()) {
		t.Fatalf("listed %d ids, want %d", len(lines), len(aim.ExperimentIDs()))
	}
	for i, id := range aim.ExperimentIDs() {
		if lines[i] != id {
			t.Errorf("line %d = %q, want %q", i, lines[i], id)
		}
	}
}

func TestFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-bogus"}},
		{"exp and run together", []string{"-exp", "fig3", "-run", "fig"}},
	}
	for _, c := range cases {
		if code, _, stderr := runCapture(t, c.args...); code != 2 || stderr == "" {
			t.Errorf("%s: exit = %d, stderr = %q, want exit 2 with diagnostics", c.name, code, stderr)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	code, _, stderr := runCapture(t, "-exp", "fig99")
	if code != 1 || !strings.Contains(stderr, "fig99") {
		t.Errorf("exit = %d, stderr = %q, want failure naming fig99", code, stderr)
	}
}

func TestNoRegexMatch(t *testing.T) {
	code, _, stderr := runCapture(t, "-run", "nosuchexperiment")
	if code != 1 || !strings.Contains(stderr, "no experiments match") {
		t.Errorf("exit = %d, stderr = %q, want no-match failure", code, stderr)
	}
}

func TestExpSubsetRenders(t *testing.T) {
	code, out, stderr := runCapture(t, "-exp", "overhead, vfsens")
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, stderr)
	}
	// Per-experiment completion notices stream to stderr, keeping
	// stdout's table bytes deterministic.
	for _, id := range []string{"overhead", "vfsens"} {
		if !strings.Contains(stderr, "["+id+" completed in ") {
			t.Errorf("stderr missing completion notice for %s: %q", id, stderr)
		}
	}
	// Caller order is preserved and both tables render.
	oi := strings.Index(out, "== overhead:")
	vi := strings.Index(out, "== vfsens:")
	if oi < 0 || vi < 0 || oi > vi {
		t.Errorf("tables missing or misordered:\n%s", out)
	}
	if !strings.Contains(stderr, "2 experiments completed") {
		t.Errorf("summary line missing from stderr:\n%s", stderr)
	}
	if strings.Contains(out, "completed in") {
		t.Errorf("timing diagnostics leaked onto stdout:\n%s", out)
	}
}

func TestHelpExitsZero(t *testing.T) {
	code, _, stderr := runCapture(t, "-h")
	if code != 0 {
		t.Errorf("-h exit = %d, want 0", code)
	}
	if !strings.Contains(stderr, "Usage of aimbench") {
		t.Errorf("usage missing: %q", stderr)
	}
}

func TestRunRegexMatchesSerialAndParallel(t *testing.T) {
	// The -parallel knob must not change a single stdout byte (the
	// engine's determinism guarantee); all timing diagnostics live on
	// stderr.
	code, serial, stderr := runCapture(t, "-run", "^(vfsens|overhead)$", "-parallel", "1")
	if code != 0 {
		t.Fatalf("serial exit = %d, stderr = %q", code, stderr)
	}
	code, par, stderr := runCapture(t, "-run", "^(vfsens|overhead)$", "-parallel", "4")
	if code != 0 {
		t.Fatalf("parallel exit = %d, stderr = %q", code, stderr)
	}
	if serial != par {
		t.Errorf("-parallel changed the stdout bytes:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, par)
	}
}
