package main

import (
	"strings"
	"testing"

	"aim/internal/pdn"
)

func runCapture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr strings.Builder
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestFlagHandling(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"unknown flag", []string{"-bogus"}, 2},
		{"activity above 1", []string{"-activity", "1.5"}, 2},
		{"negative optimized", []string{"-optimized", "-0.1"}, 2},
		{"help", []string{"-h"}, 0},
	}
	for _, c := range cases {
		code, _, stderr := runCapture(t, c.args...)
		if code != c.code {
			t.Errorf("%s: exit = %d, want %d (stderr %q)", c.name, code, c.code, stderr)
		}
		if c.code == 2 && stderr == "" {
			t.Errorf("%s: expected diagnostics on stderr", c.name)
		}
	}
}

func TestCSVShape(t *testing.T) {
	code, out, stderr := runCapture(t, "-csv", "-seed", "3")
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, stderr)
	}
	w, h := pdn.DefaultFloorplan().Grid.W, pdn.DefaultFloorplan().Grid.H
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Two heatmaps, each: one banner + H data rows; one mitigation line.
	if want := 2*(1+h) + 1; len(lines) != want {
		t.Fatalf("line count = %d, want %d", len(lines), want)
	}
	banners, dataRows := 0, 0
	for _, line := range lines {
		switch {
		case strings.HasPrefix(line, "--- "):
			banners++
		case strings.HasPrefix(line, "mitigation: "):
		default:
			dataRows++
			if cols := len(strings.Split(line, ",")); cols != w {
				t.Fatalf("CSV row has %d columns, want %d: %q", cols, w, line)
			}
		}
	}
	if banners != 2 || dataRows != 2*h {
		t.Fatalf("banners = %d, data rows = %d, want 2 and %d", banners, dataRows, 2*h)
	}
	if !strings.HasSuffix(strings.TrimSpace(lines[len(lines)-1]), "%") {
		t.Fatalf("missing mitigation summary: %q", lines[len(lines)-1])
	}
}

func TestDeterministicAndSeedSensitive(t *testing.T) {
	_, a1, _ := runCapture(t, "-csv", "-seed", "3")
	_, a2, _ := runCapture(t, "-csv", "-seed", "3")
	if a1 != a2 {
		t.Fatal("same seed must reproduce identical maps")
	}
	_, b, _ := runCapture(t, "-csv", "-seed", "4")
	if a1 == b {
		t.Fatal("-seed must vary the per-group activity draws")
	}
}

func TestASCIIMitigationPositive(t *testing.T) {
	code, out, _ := runCapture(t, "-seed", "3")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	// The optimized map must mitigate: "mitigation: X%" with X > 0.
	idx := strings.LastIndex(out, "mitigation: ")
	if idx < 0 || strings.HasPrefix(out[idx:], "mitigation: -") {
		t.Fatalf("expected positive mitigation, got %q", out[idx:])
	}
}
