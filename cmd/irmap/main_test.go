package main

import (
	"strings"
	"testing"

	"aim/internal/check"
	"aim/internal/pdn"
)

func runCapture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr strings.Builder
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestFlagHandling(t *testing.T) {
	// Usage errors exit 2; value-validation errors exit 1 with a clear
	// diagnostic instead of reaching a library panic.
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"unknown flag", []string{"-bogus"}, 2},
		{"activity above 1", []string{"-activity", "1.5"}, 1},
		{"negative optimized", []string{"-optimized", "-0.1"}, 1},
		{"help", []string{"-h"}, 0},
	}
	for _, c := range cases {
		code, _, stderr := runCapture(t, c.args...)
		if code != c.code {
			t.Errorf("%s: exit = %d, want %d (stderr %q)", c.name, code, c.code, stderr)
		}
		if c.code != 0 && stderr == "" {
			t.Errorf("%s: expected diagnostics on stderr", c.name)
		}
	}
}

func TestCSVShape(t *testing.T) {
	code, out, stderr := runCapture(t, "-csv", "-seed", "3")
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, stderr)
	}
	w, h := pdn.DefaultFloorplan().Grid.W, pdn.DefaultFloorplan().Grid.H
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Two heatmaps, each: one banner + H data rows; one mitigation line.
	if want := 2*(1+h) + 1; len(lines) != want {
		t.Fatalf("line count = %d, want %d", len(lines), want)
	}
	banners, dataRows := 0, 0
	for _, line := range lines {
		switch {
		case strings.HasPrefix(line, "--- "):
			banners++
		case strings.HasPrefix(line, "mitigation: "):
		default:
			dataRows++
			if cols := len(strings.Split(line, ",")); cols != w {
				t.Fatalf("CSV row has %d columns, want %d: %q", cols, w, line)
			}
		}
	}
	if banners != 2 || dataRows != 2*h {
		t.Fatalf("banners = %d, data rows = %d, want 2 and %d", banners, dataRows, 2*h)
	}
	if !strings.HasSuffix(strings.TrimSpace(lines[len(lines)-1]), "%") {
		t.Fatalf("missing mitigation summary: %q", lines[len(lines)-1])
	}
}

func TestDeterministicAndSeedSensitive(t *testing.T) {
	_, a1, _ := runCapture(t, "-csv", "-seed", "3")
	_, a2, _ := runCapture(t, "-csv", "-seed", "3")
	if a1 != a2 {
		t.Fatal("same seed must reproduce identical maps")
	}
	_, b, _ := runCapture(t, "-csv", "-seed", "4")
	if a1 == b {
		t.Fatal("-seed must vary the per-group activity draws")
	}
}

func TestASCIIMitigationPositive(t *testing.T) {
	code, out, _ := runCapture(t, "-seed", "3")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	// The optimized map must mitigate: "mitigation: X%" with X > 0.
	idx := strings.LastIndex(out, "mitigation: ")
	if idx < 0 || strings.HasPrefix(out[idx:], "mitigation: -") {
		t.Fatalf("expected positive mitigation, got %q", out[idx:])
	}
}

// TestDefaultOutputBytesPinned pins irmap's default-flag output —
// ASCII and CSV — byte for byte against the manifest (the single
// source of truth for pins; no sha256 literals live in test code).
// The pins predate the multigrid solver: the default scale must keep
// solving through the Gauss-Seidel reference precisely so these bytes
// never move.
func TestDefaultOutputBytesPinned(t *testing.T) {
	m, err := check.LoadManifest("../../manifest/experiments.json")
	if err != nil {
		t.Fatal(err)
	}
	// The default -seed is what the pins were rendered at; if the
	// manifest moves to another seed the defaults must move with it.
	if m.Seed != 2025 {
		t.Fatalf("manifest seed = %d, but irmap defaults to -seed 2025", m.Seed)
	}
	_, ascii, _ := runCapture(t)
	if got := check.SHA256([]byte(ascii)); got != m.IRMap["ascii"] {
		t.Errorf("default ASCII output drifted: sha256 %s, pinned %s", got, m.IRMap["ascii"])
	}
	_, csv, _ := runCapture(t, "-csv")
	if got := check.SHA256([]byte(csv)); got != m.IRMap["csv"] {
		t.Errorf("default CSV output drifted: sha256 %s, pinned %s", got, m.IRMap["csv"])
	}
}

// TestScaleFlagValidation: every out-of-range -scale — zero, negative,
// absurdly large — must exit 1 with a clear message rather than panic
// inside ScaledFloorplan (or try to allocate a gigacell mesh).
func TestScaleFlagValidation(t *testing.T) {
	cases := []struct {
		name  string
		scale string
	}{
		{"zero", "0"},
		{"negative", "-3"},
		{"just above max", "17"},
		{"absurdly large", "1000000"},
	}
	for _, c := range cases {
		code, _, stderr := runCapture(t, "-scale", c.scale)
		if code != 1 {
			t.Errorf("%s (-scale %s): exit = %d, want 1 (stderr %q)", c.name, c.scale, code, stderr)
		}
		if !strings.Contains(stderr, "-scale") {
			t.Errorf("%s: diagnostic %q should name the flag", c.name, stderr)
		}
	}
}

func TestScaleFlag(t *testing.T) {
	code, out, stderr := runCapture(t, "-scale", "2", "-csv", "-seed", "3")
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, stderr)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Two heatmaps at 128x128, plus two banners and the mitigation line.
	if want := 2*(1+128) + 1; len(lines) != want {
		t.Fatalf("line count = %d, want %d", len(lines), want)
	}
	for _, line := range lines {
		if strings.HasPrefix(line, "--- ") || strings.HasPrefix(line, "mitigation: ") {
			continue
		}
		if cols := len(strings.Split(line, ",")); cols != 128 {
			t.Fatalf("CSV row has %d columns, want 128", cols)
		}
	}
	if !strings.Contains(out, "mitigation: ") || strings.Contains(out, "mitigation: -") {
		t.Fatalf("scaled run must report positive mitigation")
	}
}
