// Command irmap renders the Fig. 16 layout IR-drop heatmap of the 7nm
// 256-TOPS PIM die through the PDN mesh solver, before and after AIM,
// as ASCII art or CSV (millivolts).
//
// Usage:
//
//	irmap [-csv] [-activity 0.5] [-seed N]
package main

import (
	"flag"
	"fmt"

	"aim/internal/pdn"
	"aim/internal/xrand"
)

func main() {
	csv := flag.Bool("csv", false, "emit CSV (mV) instead of ASCII art")
	baseAct := flag.Float64("activity", 0.50, "baseline per-group peak Rtog (before AIM)")
	optAct := flag.Float64("optimized", 0.26, "optimized per-group peak Rtog (after AIM)")
	seed := flag.Int64("seed", 2025, "random seed for per-group activity variation")
	flag.Parse()

	fp := pdn.DefaultFloorplan()
	act := pdn.DefaultActivity()
	rng := xrand.NewNamed(*seed, "irmap")
	render := func(label string, base float64, scaleHi float64) float64 {
		rt := make([]float64, len(fp.GroupTiles))
		for i := range rt {
			rt[i] = 0.95 * (base + 0.04*rng.Float64())
			if rt[i] > 1 {
				rt[i] = 1
			}
		}
		drop, worst := fp.SolveActivity(act, rt)
		fmt.Printf("--- %s: worst macro drop %.1f mV ---\n", label, worst*1000)
		if *csv {
			fmt.Print(pdn.RenderCSV(drop, fp.Grid.W))
		} else {
			hi := scaleHi
			if hi == 0 {
				hi = worst
			}
			fmt.Print(pdn.RenderASCII(drop, fp.Grid.W, 0, hi))
		}
		return worst
	}
	worstBefore := render("before AIM", *baseAct, 0)
	worstAfter := render("after AIM", *optAct, worstBefore)
	fmt.Printf("mitigation: %.1f%%\n", 100*(1-worstAfter/worstBefore))
}
