// Command irmap renders the Fig. 16 layout IR-drop heatmap of the 7nm
// 256-TOPS PIM die through the PDN mesh solver, before and after AIM,
// as ASCII art or CSV (millivolts).
//
// Usage:
//
//	irmap [-csv] [-activity 0.5] [-seed N] [-scale F]
//
// The default scale renders the calibrated 64×64 die through the
// byte-stable Gauss-Seidel reference — its output is bit-identical
// across solver generations. -scale 2..16 renders production-scale
// dies (128×128 … 1024×1024) through the warm-started multigrid
// V-cycle, which the reference solver could not finish within its
// iteration budget.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"aim/internal/pdn"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, writes the heatmaps
// to stdout and diagnostics to stderr, and returns the exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("irmap", flag.ContinueOnError)
	fs.SetOutput(stderr)
	csv := fs.Bool("csv", false, "emit CSV (mV) instead of ASCII art")
	baseAct := fs.Float64("activity", 0.50, "baseline per-group peak Rtog (before AIM)")
	optAct := fs.Float64("optimized", 0.26, "optimized per-group peak Rtog (after AIM)")
	seed := fs.Int64("seed", 2025, "random seed for per-group activity variation")
	scale := fs.Int("scale", 1, "die scale per edge: 1 = 64x64 (Gauss-Seidel reference), 2..16 = production scales via multigrid")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	// Value validation exits 1 with a diagnostic (exit 2 is reserved
	// for flag-parse/usage errors). In particular -scale must never
	// reach ScaledFloorplan out of range: 0 or negative would panic
	// inside the floorplan constructor, and an absurd scale would try
	// to allocate a mesh of billions of cells.
	if *baseAct < 0 || *baseAct > 1 || *optAct < 0 || *optAct > 1 {
		fmt.Fprintln(stderr, "irmap: -activity and -optimized must lie in [0,1]")
		return 1
	}
	if *scale < 1 || *scale > 16 {
		fmt.Fprintf(stderr, "irmap: -scale %d out of range: want 1 (the calibrated 64x64 die) through 16 (a 1024x1024 production die)\n", *scale)
		return 1
	}

	fp := pdn.DefaultFloorplan()
	if *scale > 1 {
		fp = pdn.ScaledFloorplan(*scale)
	}
	pdn.RenderIRMap(stdout, fp, *baseAct, *optAct, *seed, *csv)
	return 0
}
