package main

import (
	"strings"
	"testing"

	"aim"
)

func TestRenderFormatting(t *testing.T) {
	res := aim.Result{
		Network: "resnet18", Mode: aim.LowPower,
		HRBaseline: 0.5, HROptimized: 0.25,
		MitigationPct: 60.0, WorstDropMV: 56.0,
		MacroPowerMW: 2.1, BaselinePowerMW: 4.2978,
		EfficiencyGain: 2.05, TOPS: 256, Speedup: 1.0,
		Quality: 70.4, Failures: 12, DelayFactor: 1.002,
	}
	out := render(res, 50, 16)
	for _, want := range []string{
		"AIM on resnet18 (low-power mode, β=50, δ=16)",
		"HR:            0.500 -> 0.250 (50.0% lower)",
		"worst IR-drop: 140.0 -> 56.0 mV (60.0% mitigation)",
		"macro power:   4.2978 -> 2.1000 mW",
		"efficiency:    2.05x TOPS/W",
		"throughput:    256 TOPS (1.000x vs 256-TOPS baseline)",
		"quality:       70.40 (surrogate)",
		"IRFailures:    12 (delay factor 1.002)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestBadFlags(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-bogus"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown flag: exit = %d, want 2", code)
	}
}

func TestHelpExitsZero(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-h"}, &stdout, &stderr); code != 0 {
		t.Errorf("-h exit = %d, want 0", code)
	}
	if !strings.Contains(stderr.String(), "Usage of aimc") {
		t.Errorf("usage missing: %q", stderr.String())
	}
}

func TestErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown network", []string{"-net", "alexnet"}, "unknown network"},
		{"unknown mode", []string{"-mode", "turbo"}, "unknown mode"},
		// Regression: -delta 12 used to crash with a compiler panic;
		// it must exit 1 with a clear error instead.
		{"non-pow2 delta", []string{"-delta", "12"}, "power of two"},
		{"negative delta", []string{"-delta", "-3"}, "power of two"},
		// Regression: runtime knobs validate the same way — a bogus
		// fidelity or negative worker count is an error, never a
		// silent fallback to the default tier.
		{"bogus fidelity", []string{"-fidelity", "bogus"}, "unknown fidelity"},
		{"negative parallel", []string{"-parallel", "-2"}, "negative parallel"},
	}
	for _, c := range cases {
		var stdout, stderr strings.Builder
		if code := run(c.args, &stdout, &stderr); code != 1 {
			t.Errorf("%s: exit = %d, want 1", c.name, code)
		}
		if !strings.Contains(stderr.String(), c.want) {
			t.Errorf("%s: stderr = %q, want mention of %q", c.name, stderr.String(), c.want)
		}
	}
}

func TestEndToEndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	var stdout, stderr strings.Builder
	if code := run([]string{"-net", "resnet18"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "AIM on resnet18") {
		t.Errorf("summary missing:\n%s", stdout.String())
	}
}
