// Command aimc compiles one workload through the AIM pipeline, runs it
// on the simulated 7nm 256-TOPS PIM chip, and prints the before/after
// summary (the library's quickstart as a CLI).
//
// Usage:
//
//	aimc -net resnet18 [-mode sprint|low-power] [-beta 50] [-delta 16] [-seed N] [-parallel N]
//	     [-fidelity analytic|packed|spatial] [-spatial-window N] [-spatial-skip MV]
//	     [-spatial-adaptive] [-plan-cache-dir DIR]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"aim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, executes the AIM
// pipeline, writes the summary to stdout, and returns the exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("aimc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	net := fs.String("net", "resnet18", "workload: "+strings.Join(aim.Networks(), "|"))
	mode := fs.String("mode", "low-power", "operating mode: sprint|low-power")
	beta := fs.Int("beta", 50, "IR-Booster stability horizon β (cycles)")
	delta := fs.Int("delta", 16, "WDS shift δ (power of two; -1 disables WDS)")
	seed := fs.Int64("seed", 1, "random seed")
	parallel := fs.Int("parallel", 0, "simulator worker pool: 0 = one per CPU, 1 = serial")
	fidelity := fs.String("fidelity", "analytic", "simulator tier: analytic|packed|spatial")
	spatialWindow := fs.Int("spatial-window", 0, "spatial tier mesh-solve cadence in cycles (0 = default)")
	spatialSkip := fs.Float64("spatial-skip", 0, "spatial tier incremental skip threshold in mV (0 = solve every window)")
	spatialAdaptive := fs.Bool("spatial-adaptive", false, "adapt the spatial solve cadence to activity variance")
	planCacheDir := fs.String("plan-cache-dir", "", "reuse compiled plans from this persistent store, writing new ones back (empty = compile fresh)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	cfg := aim.Config{
		Network:         *net,
		Mode:            aim.Mode(*mode),
		Beta:            *beta,
		WDSDelta:        *delta,
		Seed:            *seed,
		Parallel:        *parallel,
		Fidelity:        aim.Fidelity(*fidelity),
		SpatialWindow:   *spatialWindow,
		SpatialSkipMV:   *spatialSkip,
		SpatialAdaptive: *spatialAdaptive,
	}
	res, err := execute(cfg, *planCacheDir)
	if err != nil {
		fmt.Fprintf(stderr, "aimc: %v\n", err)
		return 1
	}
	io.WriteString(stdout, render(res, *beta, *delta))
	return 0
}

// execute runs cfg directly, or through a one-worker Server when a
// plan-cache dir is given — the server path consults the persistent
// plan store before compiling, and its results are identical to
// aim.Run's (the library's documented serving contract).
func execute(cfg aim.Config, planCacheDir string) (aim.Result, error) {
	if planCacheDir == "" {
		return aim.Run(cfg)
	}
	srv, err := aim.NewServer(aim.ServerOptions{Workers: 1, PlanCacheDir: planCacheDir})
	if err != nil {
		return aim.Result{}, err
	}
	defer srv.Close()
	return srv.Submit(context.Background(), cfg)
}

// render formats the before/after summary.
func render(res aim.Result, beta, delta int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "AIM on %s (%s mode, β=%d, δ=%d)\n", res.Network, res.Mode, beta, delta)
	fmt.Fprintf(&sb, "  HR:            %.3f -> %.3f (%.1f%% lower)\n",
		res.HRBaseline, res.HROptimized, 100*(1-res.HROptimized/res.HRBaseline))
	fmt.Fprintf(&sb, "  worst IR-drop: 140.0 -> %.1f mV (%.1f%% mitigation)\n",
		res.WorstDropMV, res.MitigationPct)
	fmt.Fprintf(&sb, "  macro power:   %.4f -> %.4f mW\n", res.BaselinePowerMW, res.MacroPowerMW)
	fmt.Fprintf(&sb, "  efficiency:    %.2fx TOPS/W\n", res.EfficiencyGain)
	fmt.Fprintf(&sb, "  throughput:    %.0f TOPS (%.3fx vs 256-TOPS baseline)\n", res.TOPS, res.Speedup)
	fmt.Fprintf(&sb, "  quality:       %.2f (surrogate)\n", res.Quality)
	fmt.Fprintf(&sb, "  IRFailures:    %d (delay factor %.3f)\n", res.Failures, res.DelayFactor)
	return sb.String()
}
