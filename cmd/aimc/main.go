// Command aimc compiles one workload through the AIM pipeline, runs it
// on the simulated 7nm 256-TOPS PIM chip, and prints the before/after
// summary (the library's quickstart as a CLI).
//
// Usage:
//
//	aimc -net resnet18 [-mode sprint|low-power] [-beta 50] [-delta 16] [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"aim"
)

func main() {
	net := flag.String("net", "resnet18", "workload: "+strings.Join(aim.Networks(), "|"))
	mode := flag.String("mode", "low-power", "operating mode: sprint|low-power")
	beta := flag.Int("beta", 50, "IR-Booster stability horizon β (cycles)")
	delta := flag.Int("delta", 16, "WDS shift δ (power of two)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	res, err := aim.Run(aim.Config{
		Network:  *net,
		Mode:     aim.Mode(*mode),
		Beta:     *beta,
		WDSDelta: *delta,
		Seed:     *seed,
	})
	if err != nil {
		log.Fatalf("aimc: %v", err)
	}

	fmt.Printf("AIM on %s (%s mode, β=%d, δ=%d)\n", res.Network, res.Mode, *beta, *delta)
	fmt.Printf("  HR:            %.3f -> %.3f (%.1f%% lower)\n",
		res.HRBaseline, res.HROptimized, 100*(1-res.HROptimized/res.HRBaseline))
	fmt.Printf("  worst IR-drop: 140.0 -> %.1f mV (%.1f%% mitigation)\n",
		res.WorstDropMV, res.MitigationPct)
	fmt.Printf("  macro power:   %.4f -> %.4f mW\n", res.BaselinePowerMW, res.MacroPowerMW)
	fmt.Printf("  efficiency:    %.2fx TOPS/W\n", res.EfficiencyGain)
	fmt.Printf("  throughput:    %.0f TOPS (%.3fx vs 256-TOPS baseline)\n", res.TOPS, res.Speedup)
	fmt.Printf("  quality:       %.2f (surrogate)\n", res.Quality)
	fmt.Printf("  IRFailures:    %d (delay factor %.3f)\n", res.Failures, res.DelayFactor)
}
