// Command aimlint is the repository's determinism- and API-discipline
// static analyzer. It walks the package tree and enforces the
// invariants every test pin relies on — no wall-clock reads in
// deterministic code, no math/rand outside internal/xrand, no map
// iteration feeding rendered bytes, no goroutines outside the
// deterministic pool, no panics reachable from public boundaries, no
// stdout writes from libraries — printing one "file:line: rule:
// message" finding per violation and exiting 1 if any survive their
// //aimlint:allow annotations (a stale or malformed annotation is
// itself a finding).
//
// Usage:
//
//	aimlint [-rules r1,r2,...] [./... | DIR ...]
//	aimlint -list
//
// Each argument names a package tree to analyze; a trailing /...
// is accepted and equivalent to naming the root ("aimlint ./..."
// analyzes the whole module). With no arguments the current
// directory's tree is analyzed.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"aim/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: findings go to stdout, diagnostics
// to stderr; the return value is the process exit code (0 clean, 1
// findings or analysis failure, 2 usage).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("aimlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rulesFlag := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	list := fs.Bool("list", false, "print the rule set and exit")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *list {
		for _, r := range lint.Rules() {
			fmt.Fprintf(stdout, "%-20s %s\n", r.Name, r.Doc)
		}
		return 0
	}
	var ruleNames []string
	if *rulesFlag != "" {
		known := map[string]bool{}
		for _, r := range lint.Rules() {
			known[r.Name] = true
		}
		for _, n := range strings.Split(*rulesFlag, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if !known[n] {
				fmt.Fprintf(stderr, "aimlint: unknown rule %q (known: %s)\n", n, strings.Join(lint.RuleNames(), ", "))
				return 2
			}
			ruleNames = append(ruleNames, n)
		}
		if len(ruleNames) == 0 {
			fmt.Fprintln(stderr, "aimlint: -rules names no rules")
			return 2
		}
	}

	targets := fs.Args()
	if len(targets) == 0 {
		targets = []string{"./..."}
	}
	total := 0
	pkgs := 0
	for _, t := range targets {
		root := strings.TrimSuffix(t, "...")
		root = strings.TrimSuffix(root, "/")
		if root == "" {
			root = "."
		}
		res, err := lint.Run(lint.Options{Root: root, Rules: ruleNames})
		if err != nil {
			fmt.Fprintf(stderr, "aimlint: %v\n", err)
			return 1
		}
		for _, f := range res.Findings {
			fmt.Fprintln(stdout, f)
		}
		total += len(res.Findings)
		pkgs += res.Packages
	}
	if total > 0 {
		fmt.Fprintf(stdout, "aimlint: %d finding(s) in %d package(s)\n", total, pkgs)
		return 1
	}
	fmt.Fprintf(stdout, "aimlint: %d package(s) clean\n", pkgs)
	return 0
}
