package main

import (
	"bytes"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// corpus points at the analyzer's shared testdata tree so the CLI
// tests exercise real findings without a second snippet set.
func corpus(dir string) string {
	return filepath.Join("..", "..", "internal", "lint", "testdata", "src", dir)
}

// TestRun drives the CLI through its exit-code contract: 0 clean,
// 1 findings or analysis failure, 2 usage errors.
func TestRun(t *testing.T) {
	cases := []struct {
		name      string
		args      []string
		exit      int
		wantOut   string // substring of stdout ("" = don't check)
		wantErr   string // substring of stderr ("" = don't check)
		wantOutRE string // regexp stdout must match ("" = don't check)
		absentOut string // substring stdout must NOT contain
	}{
		{
			name: "list prints every rule and exits 0",
			args: []string{"-list"}, exit: 0, wantOut: "no-map-range-render",
		},
		{
			name: "unknown flag is a usage error",
			args: []string{"-definitely-not-a-flag"}, exit: 2,
		},
		{
			name: "unknown rule name is a usage error",
			args: []string{"-rules", "no-such-rule"}, exit: 2, wantErr: "unknown rule",
		},
		{
			name: "empty rules list is a usage error",
			args: []string{"-rules", " , "}, exit: 2, wantErr: "names no rules",
		},
		{
			name: "bad snippet exits 1 with file:line: rule: findings",
			args: []string{corpus("nakedgo")}, exit: 1,
			wantOutRE: `bad\.go:\d+: no-naked-go: `,
			wantOut:   "aimlint: 1 finding(s) in 1 package(s)",
		},
		{
			name: "rules filter silences unrelated findings",
			args: []string{"-rules", "no-wallclock", corpus("nakedgo")}, exit: 0,
			wantOut: "aimlint: 1 package(s) clean",
		},
		{
			name: "stale allow is a finding",
			args: []string{corpus("allowstale")}, exit: 1,
			wantOutRE: `stale\.go:\d+: allow: `,
		},
		{
			name: "multiple targets accumulate findings and packages",
			args: []string{corpus("nakedgo"), corpus("fmtprint")}, exit: 1,
			wantOut:   "aimlint: 3 finding(s) in 2 package(s)",
			wantOutRE: `bad\.go:\d+: no-fmt-print: `,
		},
		{
			name: "trailing /... names the same tree",
			args: []string{corpus("fmtprint") + "/..."}, exit: 1,
			wantOut: "aimlint: 2 finding(s) in 1 package(s)",
		},
		{
			name: "good-only package is clean",
			args: []string{"-rules", "no-global-rand", corpus("wallclock")}, exit: 0,
			absentOut: "no-wallclock",
		},
		{
			name: "missing target is an analysis failure",
			args: []string{corpus("no-such-dir")}, exit: 1, wantErr: "aimlint:",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(tc.args, &stdout, &stderr); got != tc.exit {
				t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s", got, tc.exit, stdout.String(), stderr.String())
			}
			if tc.wantOut != "" && !strings.Contains(stdout.String(), tc.wantOut) {
				t.Errorf("stdout missing %q:\n%s", tc.wantOut, stdout.String())
			}
			if tc.wantErr != "" && !strings.Contains(stderr.String(), tc.wantErr) {
				t.Errorf("stderr missing %q:\n%s", tc.wantErr, stderr.String())
			}
			if tc.wantOutRE != "" && !regexp.MustCompile(tc.wantOutRE).MatchString(stdout.String()) {
				t.Errorf("stdout does not match %q:\n%s", tc.wantOutRE, stdout.String())
			}
			if tc.absentOut != "" && strings.Contains(stdout.String(), tc.absentOut) {
				t.Errorf("stdout unexpectedly contains %q:\n%s", tc.absentOut, stdout.String())
			}
		})
	}
}
