// Command aimcheck verifies the repository's persistent artifacts: the
// pin manifest (manifest/experiments.json, the single source of truth
// for every sha256-pinned table and irmap output), plan-store
// directories, and BENCH_*.json benchmark artifacts. It prints one
// line per finding and exits 1 if anything is damaged, 0 on a
// pristine tree — the CI contract.
//
// The manifest's irmap pins are always re-derived (the render is
// sub-second); the experiment-table pins are re-derived only under
// -experiments, which regenerates all 22 tables (~tens of seconds).
// -write regenerates the manifest from the current code — the one
// sanctioned way to move a pin, so a pin change is always a reviewed
// manifest diff.
//
// Usage:
//
//	aimcheck [-manifest manifest/experiments.json] [-plan-cache-dir DIR]
//	         [-experiments] [-parallel N] [BENCH_*.json ...]
//	aimcheck -write [-manifest PATH] [-seed N]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"aim"
	"aim/internal/check"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: findings and the verdict go to
// stdout, progress and diagnostics to stderr; the return value is the
// process exit code (0 pristine, 1 findings or failures, 2 usage).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("aimcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	manifest := fs.String("manifest", "manifest/experiments.json", "pin manifest to verify against (or write with -write)")
	planDir := fs.String("plan-cache-dir", "", "plan-store directory to verify (default: skip)")
	experiments := fs.Bool("experiments", false, "re-derive every experiment-table pin (regenerates all tables; slow)")
	parallel := fs.Int("parallel", 0, "experiment fan-out: 0 = one worker per CPU")
	write := fs.Bool("write", false, "regenerate the manifest from the current code instead of verifying")
	seed := fs.Int64("seed", 2025, "seed to render pins at when writing the manifest")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *write {
		if fs.NArg() > 0 || *planDir != "" {
			fmt.Fprintln(stderr, "aimcheck: -write takes no bench files or -plan-cache-dir")
			return 2
		}
		return writeManifest(*manifest, *seed, *parallel, stderr)
	}

	m, err := check.LoadManifest(*manifest)
	if err != nil {
		fmt.Fprintf(stderr, "aimcheck: %v\n", err)
		return 1
	}
	findings := m.Findings()
	findings = append(findings, check.IRMap(m)...)
	fmt.Fprintf(stderr, "manifest: %d experiment pins + %d irmap pins (schema v%d, seed %d), irmap pins re-derived\n",
		len(m.Experiments), len(m.IRMap), m.SchemaVersion, m.Seed)
	if *experiments {
		fs, err := checkExperiments(m, *parallel, stderr)
		if err != nil {
			fmt.Fprintf(stderr, "aimcheck: %v\n", err)
			return 1
		}
		findings = append(findings, fs...)
	}
	if *planDir != "" {
		entries, fs, err := check.PlanStore(*planDir)
		if err != nil {
			fmt.Fprintf(stderr, "aimcheck: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "planstore: %d entries verified, %d findings\n", entries, len(fs))
		findings = append(findings, fs...)
	}
	for _, path := range fs.Args() {
		bfs := check.Bench(path)
		fmt.Fprintf(stderr, "bench: %s, %d findings\n", filepath.Base(path), len(bfs))
		findings = append(findings, bfs...)
	}

	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stdout, "aimcheck: %d finding(s)\n", len(findings))
		return 1
	}
	fmt.Fprintln(stdout, "aimcheck: all artifacts verified")
	return 0
}

// checkExperiments regenerates every registry table at the manifest
// seed and compares the rendered bytes against the pins, both ways:
// a drifted table, a missing pin and a pin for a nonexistent
// experiment are all findings.
func checkExperiments(m *check.Manifest, parallel int, stderr io.Writer) ([]check.Finding, error) {
	results, err := runAll(m.Seed, parallel, stderr)
	if err != nil {
		return nil, err
	}
	var findings []check.Finding
	known := map[string]bool{}
	for _, r := range results {
		known[r.ID] = true
		pin, ok := m.Experiments[r.ID]
		if !ok {
			findings = append(findings, check.Finding{Area: "experiments", Path: r.ID, Problem: "no pin in manifest"})
			continue
		}
		if got := check.SHA256([]byte(r.Text)); got != pin {
			findings = append(findings, check.Finding{
				Area: "experiments", Path: r.ID,
				Problem: "recomputed sha256 " + got + " does not match pin " + pin,
			})
		}
	}
	// Pins for unknown experiments surface in sorted id order: the
	// findings are printed, and map iteration order must never reach
	// output (aimlint: no-map-range-render).
	unknown := make([]string, 0, len(m.Experiments))
	for id := range m.Experiments {
		if !known[id] {
			unknown = append(unknown, id)
		}
	}
	sort.Strings(unknown)
	for _, id := range unknown {
		findings = append(findings, check.Finding{Area: "experiments", Path: id, Problem: "pin for unknown experiment"})
	}
	fmt.Fprintf(stderr, "experiments: %d tables re-derived\n", len(results))
	return findings, nil
}

// runAll regenerates every experiment table at seed.
func runAll(seed int64, parallel int, stderr io.Writer) ([]aim.ExperimentResult, error) {
	set := aim.ExperimentSet{
		Seed: seed, Parallel: parallel,
		Progress: func(id string, elapsed time.Duration) {
			fmt.Fprintf(stderr, "[%s re-derived in %v]\n", id, elapsed.Round(time.Millisecond))
		},
	}
	return aim.RunExperiments(context.Background(), set)
}

// writeManifest regenerates the pin manifest from the current code:
// every experiment table plus the irmap default outputs, rendered at
// seed and hashed.
func writeManifest(path string, seed int64, parallel int, stderr io.Writer) int {
	results, err := runAll(seed, parallel, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "aimcheck: %v\n", err)
		return 1
	}
	m := &check.Manifest{
		SchemaVersion: check.ManifestSchemaVersion,
		Seed:          seed,
		Experiments:   map[string]string{},
		IRMap:         map[string]string{},
	}
	for _, r := range results {
		m.Experiments[r.ID] = check.SHA256([]byte(r.Text))
	}
	m.IRMap = check.IRMapHashes(seed)
	data, err := m.Encode()
	if err != nil {
		fmt.Fprintf(stderr, "aimcheck: %v\n", err)
		return 1
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		fmt.Fprintf(stderr, "aimcheck: %v\n", err)
		return 1
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(stderr, "aimcheck: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "aimcheck: wrote %s (%d experiment pins + %d irmap pins at seed %d)\n",
		path, len(m.Experiments), len(m.IRMap), seed)
	return 0
}
