package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aim/internal/core"
	"aim/internal/model"
	"aim/internal/planstore"
	"aim/internal/vf"
)

// repoManifest is the real pin manifest, relative to this package.
const repoManifest = "../../manifest/experiments.json"

func runCapture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr strings.Builder
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// planDir populates a fresh plan-store directory with one real entry
// and returns the directory and the entry's on-disk path.
func planDir(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	s, err := planstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := planstore.Key{Network: "resnet18", Mode: vf.LowPower.String(), Bits: 8, Delta: 16, Seed: 1}
	net, err := model.ByName(k.Network, 2025)
	if err != nil {
		t.Fatal(err)
	}
	p := core.NewPipeline(vf.LowPower)
	p.Seed = k.Seed
	if err := s.Put(k, p.Compile(net)); err != nil {
		t.Fatal(err)
	}
	h := k.Hash()
	return dir, filepath.Join(dir, h[:2], h)
}

func TestFlagHandling(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"unknown flag", []string{"-bogus"}, 2},
		{"help", []string{"-h"}, 0},
		{"write with bench files", []string{"-write", "BENCH_x.json"}, 2},
		{"write with plan dir", []string{"-write", "-plan-cache-dir", "/tmp/x"}, 2},
		{"missing manifest", []string{"-manifest", "/nonexistent/experiments.json"}, 1},
	}
	for _, c := range cases {
		code, _, stderr := runCapture(t, c.args...)
		if code != c.code {
			t.Errorf("%s: exit = %d, want %d (stderr %q)", c.name, code, c.code, stderr)
		}
	}
}

// TestPristineTreeExitsZero: the CI contract — manifest + populated
// plan store + valid bench artifact, all pristine, exit 0.
func TestPristineTreeExitsZero(t *testing.T) {
	dir, _ := planDir(t)
	bench := filepath.Join(t.TempDir(), "BENCH_x.json")
	if err := os.WriteFile(bench, []byte(`{"benchmarks": [
	  {"name": "BenchmarkX", "iterations": 5, "ns_per_op": 100, "passes": 3}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runCapture(t, "-manifest", repoManifest, "-plan-cache-dir", dir, bench)
	if code != 0 {
		t.Fatalf("exit = %d on a pristine tree\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "all artifacts verified") {
		t.Fatalf("missing verdict: %q", stdout)
	}
}

// TestCorruptionClassesExitOne: each acceptance-criteria corruption
// class must flip the exit code to 1 and print a finding naming it.
func TestCorruptionClassesExitOne(t *testing.T) {
	t.Run("bit-flipped plan entry", func(t *testing.T) {
		dir, path := planDir(t)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x80
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		code, stdout, _ := runCapture(t, "-manifest", repoManifest, "-plan-cache-dir", dir)
		if code != 1 || !strings.Contains(stdout, "does not decode") {
			t.Fatalf("exit = %d, stdout = %q", code, stdout)
		}
	})
	t.Run("truncated plan entry", func(t *testing.T) {
		dir, path := planDir(t)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		code, stdout, _ := runCapture(t, "-manifest", repoManifest, "-plan-cache-dir", dir)
		if code != 1 || !strings.Contains(stdout, "does not decode") {
			t.Fatalf("exit = %d, stdout = %q", code, stdout)
		}
	})
	t.Run("orphaned temp file", func(t *testing.T) {
		dir, path := planDir(t)
		orphan := filepath.Join(filepath.Dir(path), "tmp-"+filepath.Base(path)+"-7")
		if err := os.WriteFile(orphan, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
		code, stdout, _ := runCapture(t, "-manifest", repoManifest, "-plan-cache-dir", dir)
		if code != 1 || !strings.Contains(stdout, "orphaned temp file") {
			t.Fatalf("exit = %d, stdout = %q", code, stdout)
		}
	})
	t.Run("tampered manifest hash", func(t *testing.T) {
		data, err := os.ReadFile(repoManifest)
		if err != nil {
			t.Fatal(err)
		}
		// Zero out the ascii irmap pin: still hex-shaped, so only the
		// re-derivation can catch it.
		m := string(data)
		start := strings.Index(m, `"ascii": "`) + len(`"ascii": "`)
		tampered := m[:start] + strings.Repeat("0", 64) + m[start+64:]
		path := filepath.Join(t.TempDir(), "experiments.json")
		if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
			t.Fatal(err)
		}
		code, stdout, _ := runCapture(t, "-manifest", path)
		if code != 1 || !strings.Contains(stdout, "does not match pin") {
			t.Fatalf("exit = %d, stdout = %q", code, stdout)
		}
	})
	t.Run("malformed bench json", func(t *testing.T) {
		bench := filepath.Join(t.TempDir(), "BENCH_x.json")
		if err := os.WriteFile(bench, []byte(`{"benchmarks": [`), 0o644); err != nil {
			t.Fatal(err)
		}
		code, stdout, _ := runCapture(t, "-manifest", repoManifest, bench)
		if code != 1 || !strings.Contains(stdout, "malformed JSON") {
			t.Fatalf("exit = %d, stdout = %q", code, stdout)
		}
	})
}

// TestCommittedBenchArtifactsVerify: whatever BENCH_*.json files are
// committed at the repo root must satisfy the checker — the same
// invariant `make check` enforces in CI.
func TestCommittedBenchArtifactsVerify(t *testing.T) {
	paths, err := filepath.Glob("../../BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Skip("no committed bench artifacts")
	}
	args := append([]string{"-manifest", repoManifest}, paths...)
	code, stdout, stderr := runCapture(t, args...)
	if code != 0 {
		t.Fatalf("exit = %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
}
