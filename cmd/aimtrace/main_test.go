package main

import (
	"fmt"
	"strings"
	"testing"

	"aim/internal/core"
	"aim/internal/model"
	"aim/internal/vf"
)

func runCapture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr strings.Builder
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestFlagHandling(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"unknown flag", []string{"-bogus"}, 2},
		{"bad mode", []string{"-mode", "turbo"}, 2},
		{"unknown net", []string{"-net", "alexnet9000"}, 1},
		{"help", []string{"-h"}, 0},
	}
	for _, c := range cases {
		code, _, stderr := runCapture(t, c.args...)
		if code != c.code {
			t.Errorf("%s: exit = %d, want %d (stderr %q)", c.name, code, c.code, stderr)
		}
		if c.code != 0 && stderr == "" {
			t.Errorf("%s: expected diagnostics on stderr", c.name)
		}
	}
}

func TestCSVShape(t *testing.T) {
	code, out, stderr := runCapture(t, "-net", "resnet18", "-seed", "7")
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, stderr)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 2 {
		t.Fatalf("no data rows:\n%s", out)
	}
	const header = "cycle,drop_before_mV,drop_after_mV,current_before_A,current_after_A,bumpV_before,bumpV_after"
	if lines[0] != header {
		t.Fatalf("header = %q", lines[0])
	}
	for i, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if len(fields) != 7 {
			t.Fatalf("row %d has %d fields: %q", i, len(fields), line)
		}
	}
}

// TestSeedReachesModel is the regression test for the hard-coded-seed
// bug: -seed used to reach only the pipeline while model.ByName stayed
// pinned at 2025, so the traces came from the wrong weights. The CSV
// must match a reference computed with the model generated at the SAME
// seed — with the bug present, this row differs.
func TestSeedReachesModel(t *testing.T) {
	const s = 5
	net, err := model.ByName("resnet18", s)
	if err != nil {
		t.Fatal(err)
	}
	p := core.NewPipeline(vf.LowPower)
	p.Seed = s
	before := p.RunStage(net, core.StageBaseline).Result
	after := p.RunStage(net, core.StageBooster).Result
	want := fmt.Sprintf("0,%.3f,%.3f,%.5f,%.5f,%.5f,%.5f",
		before.DropTraceMV[0], after.DropTraceMV[0],
		before.CurrentTrace[0], after.CurrentTrace[0],
		before.VoltageTrace[0], after.VoltageTrace[0])

	_, out, _ := runCapture(t, "-seed", "5")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 2 || lines[1] != want {
		t.Fatalf("-seed does not reach the generated model:\ngot  %q\nwant %q", lines[1], want)
	}

	// And the full output is reproducible for a fixed seed.
	_, again, _ := runCapture(t, "-seed", "5")
	if out != again {
		t.Fatal("same seed must reproduce identical traces")
	}
}
