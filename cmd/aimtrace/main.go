// Command aimtrace exports the per-cycle runtime traces behind the
// paper's Fig. 17 — worst-group IR-drop (mV), demanded chip current (A)
// and bump voltage (V) — as CSV for external plotting, for a workload
// before (DVFS) and after (full AIM) optimization.
//
// Usage:
//
//	aimtrace [-net resnet18] [-mode low-power] [-seed N] > traces.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"aim/internal/core"
	"aim/internal/model"
	"aim/internal/vf"
)

func main() {
	netName := flag.String("net", "resnet18", "workload: resnet18|mobilenetv2|yolov5|vit|llama3|gpt2")
	mode := flag.String("mode", "low-power", "operating mode: sprint|low-power")
	seed := flag.Int64("seed", 2025, "random seed")
	flag.Parse()

	var m vf.Mode
	switch strings.ToLower(*mode) {
	case "sprint":
		m = vf.Sprint
	case "low-power", "lowpower":
		m = vf.LowPower
	default:
		log.Fatalf("aimtrace: unknown mode %q", *mode)
	}
	net, err := model.ByName(*netName, 2025)
	if err != nil {
		log.Fatalf("aimtrace: %v", err)
	}
	p := core.NewPipeline(m)
	p.Seed = *seed
	before := p.RunStage(net, core.StageBaseline).Result
	after := p.RunStage(net, core.StageBooster).Result

	n := len(before.DropTraceMV)
	if len(after.DropTraceMV) < n {
		n = len(after.DropTraceMV)
	}
	fmt.Println("cycle,drop_before_mV,drop_after_mV,current_before_A,current_after_A,bumpV_before,bumpV_after")
	for i := 0; i < n; i++ {
		fmt.Printf("%d,%.3f,%.3f,%.5f,%.5f,%.5f,%.5f\n",
			i,
			before.DropTraceMV[i], after.DropTraceMV[i],
			before.CurrentTrace[i], after.CurrentTrace[i],
			before.VoltageTrace[i], after.VoltageTrace[i])
	}
}
