// Command aimtrace exports the per-cycle runtime traces behind the
// paper's Fig. 17 — worst-group IR-drop (mV), demanded chip current (A)
// and bump voltage (V) — as CSV for external plotting, for a workload
// before (DVFS) and after (full AIM) optimization.
//
// Usage:
//
//	aimtrace [-net resnet18] [-mode low-power] [-seed N] > traces.csv
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"aim/internal/core"
	"aim/internal/model"
	"aim/internal/vf"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, writes the CSV to
// stdout and diagnostics to stderr, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("aimtrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	netName := fs.String("net", "resnet18", "workload: resnet18|mobilenetv2|yolov5|vit|llama3|gpt2")
	mode := fs.String("mode", "low-power", "operating mode: sprint|low-power")
	seed := fs.Int64("seed", 2025, "random seed")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	var m vf.Mode
	switch strings.ToLower(*mode) {
	case "sprint":
		m = vf.Sprint
	case "low-power", "lowpower":
		m = vf.LowPower
	default:
		fmt.Fprintf(stderr, "aimtrace: unknown mode %q\n", *mode)
		return 2
	}
	// The seed drives both model generation and the runtime pipeline;
	// it must reach ByName, or -seed would silently leave the generated
	// model pinned while only the simulation noise changed.
	net, err := model.ByName(*netName, *seed)
	if err != nil {
		fmt.Fprintf(stderr, "aimtrace: %v\n", err)
		return 1
	}
	p := core.NewPipeline(m)
	p.Seed = *seed
	before := p.RunStage(net, core.StageBaseline).Result
	after := p.RunStage(net, core.StageBooster).Result

	n := len(before.DropTraceMV)
	if len(after.DropTraceMV) < n {
		n = len(after.DropTraceMV)
	}
	fmt.Fprintln(stdout, "cycle,drop_before_mV,drop_after_mV,current_before_A,current_after_A,bumpV_before,bumpV_after")
	for i := 0; i < n; i++ {
		fmt.Fprintf(stdout, "%d,%.3f,%.3f,%.5f,%.5f,%.5f,%.5f\n",
			i,
			before.DropTraceMV[i], after.DropTraceMV[i],
			before.CurrentTrace[i], after.CurrentTrace[i],
			before.VoltageTrace[i], after.VoltageTrace[i])
	}
	return 0
}
