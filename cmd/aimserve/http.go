package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"aim/internal/serve"
)

// clientRequest is the JSON body this command POSTs to /v1/submit.
// Field names mirror the server's wire format; zero values are
// omitted so the server applies its defaults.
type clientRequest struct {
	Network  string `json:"network"`
	Mode     string `json:"mode,omitempty"`
	Beta     int    `json:"beta,omitempty"`
	Bits     int    `json:"bits,omitempty"`
	Delta    int    `json:"delta,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
	Parallel int    `json:"parallel,omitempty"`
	Fidelity string `json:"fidelity,omitempty"`
	Client   string `json:"client,omitempty"`
}

// clientResponse is the slice of the server's answer the generator
// needs: which tier served and whether the plan was cached.
type clientResponse struct {
	Fidelity   string `json:"fidelity"`
	PlanCached bool   `json:"plan_cached"`
}

// wireFromRequest renders a serving request as the HTTP body.
func wireFromRequest(r serve.Request) clientRequest {
	c := clientRequest{
		Network: r.Network, Mode: r.Mode.String(),
		Beta: r.Beta, Bits: r.Bits, Delta: r.Delta,
		Seed: r.Seed, Parallel: r.Parallel,
	}
	if r.AdaptFidelity {
		c.Fidelity = "auto"
	} else {
		c.Fidelity = r.Fidelity.String()
	}
	return c
}

// shot is one request's client-side outcome.
type shot struct {
	status  int
	latency time.Duration
	tier    string
	err     error
}

// fire POSTs one request and records the outcome.
func fire(client *http.Client, url string, req serve.Request) shot {
	body, err := json.Marshal(wireFromRequest(req))
	if err != nil {
		return shot{err: err}
	}
	start := time.Now() //aimlint:allow no-wallclock — client-side latency measurement is the point of the load generator
	resp, err := client.Post(url+"/v1/submit", "application/json", bytes.NewReader(body))
	if err != nil {
		return shot{err: err}
	}
	defer resp.Body.Close()
	s := shot{status: resp.StatusCode, latency: time.Since(start)} //aimlint:allow no-wallclock — same: measured round-trip latency
	if resp.StatusCode == http.StatusOK {
		var cr clientResponse
		if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
			s.err = err
			return s
		}
		s.tier = cr.Fidelity
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return s
}

// volley fires the request list at its arrival offsets (nil = all at
// once) and waits for every answer.
func volley(client *http.Client, url string, reqs []serve.Request, offsets []time.Duration) []shot {
	shots := make([]shot, len(reqs))
	start := time.Now() //aimlint:allow no-wallclock — anchors the deterministic arrival offsets to real time
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		//aimlint:allow no-naked-go — open-loop HTTP clients, one per in-flight request; they generate load, they are not simulation work
		go func(i int) {
			defer wg.Done()
			if offsets != nil {
				//aimlint:allow no-wallclock — paces arrivals against the volley start
				time.Sleep(offsets[i] - time.Since(start))
			}
			shots[i] = fire(client, url, reqs[i])
		}(i)
	}
	wg.Wait()
	return shots
}

// tally folds a volley into phase-level counters.
type tally struct {
	ok, shed, failed int
	latencies        []time.Duration
	tiers            map[string]int
}

func tallyShots(shots []shot) tally {
	t := tally{tiers: map[string]int{}}
	for _, s := range shots {
		switch {
		case s.err != nil:
			t.failed++
		case s.status == http.StatusOK:
			t.ok++
			t.latencies = append(t.latencies, s.latency)
			t.tiers[s.tier]++
		case s.status == http.StatusTooManyRequests:
			t.shed++
		default:
			t.failed++
		}
	}
	sortDurations(t.latencies)
	return t
}

// runAgainstTarget replays the deterministic request list against a
// live server over HTTP. 429 refusals count as shed load, not
// failures; results are load-dependent, so no aggregate report is
// rendered.
func runAgainstTarget(target string, reqs []serve.Request, offsets []time.Duration, stdout, stderr io.Writer) int {
	client := &http.Client{Timeout: 2 * time.Minute}
	wall := time.Now() //aimlint:allow no-wallclock — wall-clock run time of the volley, reported beside client-side percentiles
	t := tallyShots(volley(client, target, reqs, offsets))
	elapsed := time.Since(wall) //aimlint:allow no-wallclock — same measurement's other half

	fmt.Fprintf(stdout, "== AIM serving over HTTP: %d requests against %s ==\n", len(reqs), target)
	fmt.Fprintf(stdout, "  answered:  %d ok, %d shed (429), %d failed over %v\n",
		t.ok, t.shed, t.failed, elapsed.Round(time.Millisecond))
	if t.ok > 0 {
		fmt.Fprintf(stdout, "  latency:   p50 %v  p95 %v  p99 %v (client-side)\n",
			percentileDur(t.latencies, 0.50).Round(time.Millisecond),
			percentileDur(t.latencies, 0.95).Round(time.Millisecond),
			percentileDur(t.latencies, 0.99).Round(time.Millisecond))
		fmt.Fprintf(stdout, "  tiers:     %d analytic / %d packed / %d spatial\n",
			t.tiers["analytic"], t.tiers["packed"], t.tiers["spatial"])
	}
	if t.ok+t.shed > 0 {
		fmt.Fprintf(stdout, "  shed rate: %.1f%% of offered load\n",
			100*float64(t.shed)/float64(t.ok+t.shed))
	}
	if t.ok == 0 {
		fmt.Fprintf(stderr, "aimserve: no request succeeded against %s\n", target)
		return 1
	}
	return 0
}
