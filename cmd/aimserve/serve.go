package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"aim/internal/serve"
)

// runServe hosts the HTTP/JSON front door. Unlike the load-generator
// mode, every malformed flag is a hard exit 1 with a message — a
// server that silently fell back to defaults would run unlimited and
// unwarmed without anyone noticing.
func runServe(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("aimserve serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8372", "listen address")
	workers := fs.Int("workers", 0, "executor pool size (0 = one per CPU)")
	queue := fs.Int("queue", 0, "admission queue depth; full = shed with 429 (0 = default 256)")
	maxBatch := fs.Int("max-batch", 0, "max requests per admission batch (0 = default 64)")
	clientRate := fs.Float64("client-rate", 0, "per-client admission rate in req/s, 429 beyond it (0 = unlimited)")
	clientBurst := fs.Int("client-burst", 0, "per-client token-bucket depth (0 = one second of -client-rate)")
	sloP95 := fs.Duration("slo-p95", 0, "p95 latency target arming the fidelity degradation ladder (0 = ladder off)")
	planCacheDir := fs.String("plan-cache-dir", "", "persist compiled plans to this directory (empty = in-process cache only)")
	warm := fs.String("mix", "", "scenario mix to precompile before listening: zoo|llm|vision or net:mode pairs (empty = compile on demand)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 1
	}
	var scen []scenario
	if *warm != "" {
		var err error
		scen, err = parseMix(*warm)
		if err != nil {
			fmt.Fprintf(stderr, "aimserve serve: %v\n", err)
			return 1
		}
	}
	srv, err := serve.New(serve.Options{
		Workers: *workers, Queue: *queue, MaxBatch: *maxBatch,
		RatePerClient: *clientRate, Burst: *clientBurst,
		TargetP95: *sloP95, PlanCacheDir: *planCacheDir,
	})
	if err != nil {
		fmt.Fprintf(stderr, "aimserve serve: %v\n", err)
		return 1
	}
	defer srv.Close()
	for _, sc := range scen {
		// One analytic-tier request per deployment point pays each
		// compile before the listener opens; every tier then serves
		// from the warmed plan.
		if _, err := srv.Submit(context.Background(), serve.Request{Network: sc.net, Mode: sc.mode}); err != nil {
			fmt.Fprintf(stderr, "aimserve serve: warm %s:%s: %v\n", sc.net, sc.mode, err)
			return 1
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "aimserve serve: %v\n", err)
		return 1
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	//aimlint:allow no-naked-go — signal watcher for graceful drain; blocks on the OS, not on simulation work
	go func() {
		<-sigs
		fmt.Fprintln(stdout, "aimserve serve: draining")
		// Drain answers in-flight requests and flips healthz to 503;
		// Shutdown then closes the listener and idle connections.
		srv.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
	}()
	if len(scen) > 0 {
		fmt.Fprintf(stdout, "aimserve serve: warmed %d deployment points (%d compiles)\n",
			len(scen), srv.Stats().Compiles)
	}
	fmt.Fprintf(stdout, "aimserve serve: listening on http://%s\n", ln.Addr())
	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(stderr, "aimserve serve: %v\n", err)
		return 1
	}
	return 0
}
