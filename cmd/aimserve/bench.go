package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"aim/internal/serve"
	"aim/internal/sim"
	"aim/internal/xrand"
)

// benchPhase is one traffic phase's measurement in BENCH_http.json.
type benchPhase struct {
	OfferedRPS float64        `json:"offered_rps"`
	Requests   int            `json:"requests"`
	OK         int            `json:"ok"`
	Shed       int            `json:"shed"`
	ShedRate   float64        `json:"shed_rate"`
	P50MS      float64        `json:"p50_ms"`
	P95MS      float64        `json:"p95_ms"`
	P99MS      float64        `json:"p99_ms"`
	Tiers      map[string]int `json:"tiers"`
}

// benchResult is the full BENCH_http.json document: the min-of-N run
// of a steady phase followed by a burst at burst-factor× the rate.
type benchResult struct {
	Bench         string     `json:"bench"`
	Runs          int        `json:"runs"`
	Workers       int        `json:"workers"`
	Queue         int        `json:"queue"`
	SpatialCostMS float64    `json:"spatial_cost_ms"`
	SLOP95MS      float64    `json:"slo_p95_ms"`
	Steady        benchPhase `json:"steady"`
	Burst         benchPhase `json:"burst"`
	// BurstNoLadder is the control: the identical burst against a
	// server with the degradation ladder disabled, so every request
	// runs the spatial tier and overload has nowhere to go but the
	// queue and the shed path.
	BurstNoLadder benchPhase `json:"burst_no_ladder"`
	Compiles      int64      `json:"compiles"`
	PlanHits      int64      `json:"plan_hits"`
	LadderDowns   int64      `json:"ladder_downs"`
	LadderUps     int64      `json:"ladder_ups"`
	LadderTier    string     `json:"ladder_tier"`
}

// runBenchHTTP benchmarks the HTTP serving stack end to end: a real
// TCP listener, auto-fidelity requests, a steady phase near 60%
// utilization and a burst phase at burst-factor× that rate. Rates and
// the SLO target are sized from a measured spatial-tier cost so the
// burst genuinely overloads the top tier and the degradation ladder
// has to act. Reported numbers are the best of -runs complete runs
// (lowest burst p95); each run is a fresh server, so compiles == 1
// proves one compiled plan served every tier.
func runBenchHTTP(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("aimserve bench-http", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "BENCH_http.json", "output file")
	runs := fs.Int("runs", 3, "complete runs; the one with the lowest burst p95 is reported")
	network := fs.String("network", "mobilenetv2", "zoo network to serve")
	workers := fs.Int("workers", 1, "executor pool size")
	queue := fs.Int("queue", 6, "admission queue depth (full = shed)")
	factor := fs.Float64("burst-factor", 4, "burst rate over steady rate")
	steadySecs := fs.Float64("steady-secs", 20, "steady-phase length in seconds")
	burstSecs := fs.Float64("burst-secs", 12, "burst-phase length in seconds")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 1
	}
	if *runs < 1 || *workers < 1 || *queue < 1 || *factor <= 1 || *steadySecs <= 0 || *burstSecs <= 0 {
		fmt.Fprintln(stderr, "aimserve bench-http: runs, workers and queue want positive values; burst-factor wants > 1")
		return 1
	}

	cost, err := spatialCost(*network)
	if err != nil {
		fmt.Fprintf(stderr, "aimserve bench-http: %v\n", err)
		return 1
	}
	// Steady at ~50% of the spatial-tier capacity; the SLO sits at
	// 1.5× the per-request cost, so queueing under the burst trips it.
	capacity := float64(*workers) / cost.Seconds()
	steadyRate := 0.5 * capacity
	target := cost * 3 / 2
	fmt.Fprintf(stdout, "bench-http: spatial cost %v, SLO p95 %v, steady %.1f req/s, burst %.1f req/s\n",
		cost.Round(time.Millisecond), target.Round(time.Millisecond), steadyRate, steadyRate**factor)

	best := benchResult{}
	for i := 0; i < *runs; i++ {
		res, err := benchOnce(*network, *workers, *queue, target, steadyRate, *factor, *steadySecs, *burstSecs)
		if err != nil {
			fmt.Fprintf(stderr, "aimserve bench-http: run %d: %v\n", i+1, err)
			return 1
		}
		fmt.Fprintf(stdout, "  run %d: steady p95 %.1fms | burst p95 %.1fms shed %.1f%% (ladder %d down / %d up, %d compiles) | no-ladder p95 %.1fms shed %.1f%%\n",
			i+1, res.Steady.P95MS,
			res.Burst.P95MS, 100*res.Burst.ShedRate,
			res.LadderDowns, res.LadderUps, res.Compiles,
			res.BurstNoLadder.P95MS, 100*res.BurstNoLadder.ShedRate)
		if i == 0 || res.Burst.P95MS < best.Burst.P95MS {
			best = res
		}
	}
	best.Bench = "http"
	best.Runs = *runs
	best.SpatialCostMS = float64(cost) / float64(time.Millisecond)
	best.SLOP95MS = float64(target) / float64(time.Millisecond)

	data, err := json.MarshalIndent(best, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "aimserve bench-http: %v\n", err)
		return 1
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(stderr, "aimserve bench-http: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "bench-http: wrote %s\n", *out)
	return 0
}

// spatialCost measures the per-request spatial-tier service time on a
// one-worker server: one request pays the compile, then the median of
// four warm executions is the cost.
func spatialCost(network string) (time.Duration, error) {
	srv, err := serve.New(serve.Options{Workers: 1, Queue: 16})
	if err != nil {
		return 0, err
	}
	defer srv.Close()
	req := serve.Request{Network: network, Fidelity: sim.SpatialPDN}
	if _, err := srv.Submit(context.Background(), req); err != nil {
		return 0, err
	}
	samples := make([]time.Duration, 4)
	for i := range samples {
		resp, err := srv.Submit(context.Background(), req)
		if err != nil {
			return 0, err
		}
		samples[i] = resp.Latency
	}
	sortDurations(samples)
	return samples[len(samples)/2], nil
}

// benchOnce runs one steady+burst pass on a fresh server behind a
// real listener and folds the outcome into a benchResult.
func benchOnce(network string, workers, queue int, target time.Duration, steadyRate, factor, steadySecs, burstSecs float64) (benchResult, error) {
	// Shallow batches keep the outstanding-work window small (one
	// executing batch + one formed batch + the queue), so overload
	// surfaces as explicit shed instead of hidden buffering.
	srv, err := serve.New(serve.Options{
		Workers: workers, Queue: queue, MaxBatch: 2, TargetP95: target,
	})
	if err != nil {
		return benchResult{}, err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return benchResult{}, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	//aimlint:allow no-naked-go — the HTTP listener's accept loop; net/http owns its concurrency, the pool owns the simulation's
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	url := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 2 * time.Minute}

	res := benchResult{Workers: workers, Queue: queue}
	res.Steady, err = benchPhaseRun(client, url, network, steadyRate, steadySecs, "bench/steady")
	if err != nil {
		return benchResult{}, err
	}
	res.Burst, err = benchPhaseRun(client, url, network, steadyRate*factor, burstSecs, "bench/burst")
	if err != nil {
		return benchResult{}, err
	}
	res.BurstNoLadder, err = benchNoLadder(workers, queue, network, steadyRate*factor, burstSecs)
	if err != nil {
		return benchResult{}, err
	}
	m := srv.Metrics()
	res.Compiles = m.Compiles
	res.PlanHits = m.PlanHits
	res.LadderDowns = m.LadderDowns
	res.LadderUps = m.LadderUps
	res.LadderTier = m.LadderTier
	return res, nil
}

// benchNoLadder runs the burst control on a fresh ladder-off server:
// same queue, same rate, but fidelity pinned to the top tier.
func benchNoLadder(workers, queue int, network string, rate, secs float64) (benchPhase, error) {
	srv, err := serve.New(serve.Options{Workers: workers, Queue: queue, MaxBatch: 2})
	if err != nil {
		return benchPhase{}, err
	}
	defer srv.Close()
	// Pay the compile before traffic starts, as the warmed server did.
	if _, err := srv.Submit(context.Background(), serve.Request{Network: network}); err != nil {
		return benchPhase{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return benchPhase{}, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	//aimlint:allow no-naked-go — accept loop for the ladder-off control server, same shape as the laddered one
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	client := &http.Client{Timeout: 2 * time.Minute}
	return benchPhaseRun(client, "http://"+ln.Addr().String(), network, rate, secs, "bench/burst")
}

// benchPhaseRun offers rate req/s of auto-fidelity traffic for secs
// seconds and waits for every answer. The floor of 24 requests is the
// ladder's minimum window: shorter phases could never step.
func benchPhaseRun(client *http.Client, url, network string, rate, secs float64, stream string) (benchPhase, error) {
	n := int(rate * secs)
	if n < 24 {
		n = 24
	}
	reqs := make([]serve.Request, n)
	for i := range reqs {
		reqs[i] = serve.Request{Network: network, AdaptFidelity: true}
	}
	// Deterministic Poisson gaps per phase; the wall-clock outcome is
	// load-dependent either way, but a fixed schedule keeps runs
	// comparable.
	arr := xrand.NewNamed(1, stream)
	t := 0.0
	offsets := make([]time.Duration, n)
	for i := range offsets {
		t += arr.Exp(rate)
		offsets[i] = time.Duration(t * float64(time.Second))
	}
	tl := tallyShots(volley(client, url, reqs, offsets))
	if tl.failed > 0 {
		return benchPhase{}, fmt.Errorf("%d of %d requests failed outright", tl.failed, n)
	}
	p := benchPhase{
		OfferedRPS: rate,
		Requests:   n,
		OK:         tl.ok,
		Shed:       tl.shed,
		P50MS:      float64(percentileDur(tl.latencies, 0.50)) / float64(time.Millisecond),
		P95MS:      float64(percentileDur(tl.latencies, 0.95)) / float64(time.Millisecond),
		P99MS:      float64(percentileDur(tl.latencies, 0.99)) / float64(time.Millisecond),
		Tiers:      tl.tiers,
	}
	if tl.ok+tl.shed > 0 {
		p.ShedRate = float64(tl.shed) / float64(tl.ok+tl.shed)
	}
	return p, nil
}
