// Command aimserve drives the compile-once serving runtime with a
// synthetic traffic mix — the paper's d-Matrix/Houmo scenario of a PIM
// chip serving models under load. It builds a deterministic request
// list from a scenario mix spanning the evaluation zoo, submits it
// closed-loop with optional Poisson arrival pacing, and prints the
// deterministic aggregate report (identical bytes for any worker
// count) beside the load-dependent serving metrics.
//
// Usage:
//
//	aimserve [-n 48] [-rate 0] [-mix zoo|llm|vision|net:mode,...]
//	         [-workers N] [-beta 50] [-delta 0] [-seed 1] [-parallel 1]
//	         [-fidelity analytic|packed|spatial]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"aim"
	"aim/internal/serve"
	"aim/internal/sim"
	"aim/internal/vf"
	"aim/internal/xrand"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// scenario is one (network, mode) deployment point of a mix.
type scenario struct {
	net  string
	mode vf.Mode
}

// namedMixes are the built-in scenario mixes. "zoo" spans all six
// networks in both modes; "llm" is the serving headline (transformer
// decoding); "vision" covers the conv/vision workloads.
func namedMixes() map[string][]scenario {
	modes := []vf.Mode{vf.Sprint, vf.LowPower}
	mk := func(nets ...string) []scenario {
		var out []scenario
		for _, n := range nets {
			for _, m := range modes {
				out = append(out, scenario{net: n, mode: m})
			}
		}
		return out
	}
	return map[string][]scenario{
		"zoo":    mk(aim.Networks()...),
		"llm":    mk("gpt2", "llama3"),
		"vision": mk("resnet18", "mobilenetv2", "yolov5", "vit"),
	}
}

// parseMix resolves a named mix or an explicit net:mode[,net:mode...]
// list.
func parseMix(s string) ([]scenario, error) {
	if mix, ok := namedMixes()[s]; ok {
		return mix, nil
	}
	var out []scenario
	for _, part := range strings.Split(s, ",") {
		net, modeName, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("mix %q: want a named mix (zoo|llm|vision) or net:mode pairs", s)
		}
		var mode vf.Mode
		switch modeName {
		case "sprint":
			mode = vf.Sprint
		case "low-power":
			mode = vf.LowPower
		default:
			return nil, fmt.Errorf("mix %q: unknown mode %q (want sprint|low-power)", s, modeName)
		}
		out = append(out, scenario{net: net, mode: mode})
	}
	return out, nil
}

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("aimserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	n := fs.Int("n", 48, "number of requests")
	rate := fs.Float64("rate", 0, "Poisson arrival rate in req/s (0 = submit everything immediately)")
	mix := fs.String("mix", "zoo", "scenario mix: zoo|llm|vision or a net:mode[,net:mode...] list")
	workers := fs.Int("workers", 0, "executor pool size (0 = one per CPU)")
	beta := fs.Int("beta", 50, "IR-Booster stability horizon β (cycles)")
	delta := fs.Int("delta", 0, "WDS shift δ (0 = default 16, -1 = disable WDS)")
	seed := fs.Int64("seed", 1, "random seed (scenario draws, arrival gaps, pipeline)")
	parallel := fs.Int("parallel", 1, "per-request wave pool (fleet parallelism comes from -workers)")
	fidelityName := fs.String("fidelity", "analytic", "simulator tier: analytic|packed|spatial (runtime knob; plans are shared across tiers)")
	planCacheDir := fs.String("plan-cache-dir", "", "persist compiled plans to this directory and reuse them across restarts (empty = in-process cache only)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	scen, err := parseMix(*mix)
	if err != nil {
		fmt.Fprintf(stderr, "aimserve: %v\n", err)
		return 2
	}
	fidelity, err := sim.ParseFidelity(*fidelityName)
	if err != nil {
		fmt.Fprintf(stderr, "aimserve: %v\n", err)
		return 2
	}
	if *n <= 0 {
		fmt.Fprintf(stderr, "aimserve: -n %d: want a positive request count\n", *n)
		return 2
	}

	// The request list and arrival schedule are deterministic in the
	// seed: scenario draws and Poisson gaps come from their own named
	// streams, so a fixed invocation replays the same traffic.
	pick := xrand.NewNamed(*seed, "aimserve/mix")
	reqs := make([]serve.Request, *n)
	for i := range reqs {
		sc := scen[pick.Intn(len(scen))]
		reqs[i] = serve.Request{
			Network: sc.net, Mode: sc.mode,
			Beta: *beta, Delta: *delta, Seed: *seed, Parallel: *parallel,
			Fidelity: fidelity,
		}
	}
	var offsets []time.Duration
	if *rate > 0 {
		arr := xrand.NewNamed(*seed, "aimserve/arrivals")
		t := 0.0
		offsets = make([]time.Duration, *n)
		for i := range offsets {
			t += arr.Exp(*rate)
			offsets[i] = time.Duration(t * float64(time.Second))
		}
	}

	srv, err := serve.New(serve.Options{Workers: *workers, PlanCacheDir: *planCacheDir})
	if err != nil {
		fmt.Fprintf(stderr, "aimserve: %v\n", err)
		return 2
	}
	defer srv.Close()
	start := time.Now()
	resps := make([]serve.Response, *n)
	errs := make([]error, *n)
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if offsets != nil {
				time.Sleep(offsets[i] - time.Since(start))
			}
			resps[i], errs[i] = srv.Submit(context.Background(), reqs[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			fmt.Fprintf(stderr, "aimserve: %v\n", err)
			return 1
		}
	}
	wall := time.Since(start)

	fmt.Fprintf(stdout, "== AIM serving: %d requests, mix %q ==\n", *n, *mix)
	io.WriteString(stdout, serve.Render(reqs, resps))
	m := srv.Metrics()
	amortized := 0.0
	if m.Requests > 0 {
		amortized = 100 * float64(m.Requests-m.Compiles) / float64(m.Requests)
	}
	fmt.Fprintf(stdout, "\nserving metrics (wall-clock, load-dependent):\n")
	fmt.Fprintf(stdout, "  throughput:  %.1f req/s over %v\n", float64(*n)/wall.Seconds(), wall.Round(time.Millisecond))
	fmt.Fprintf(stdout, "  latency:     p50 %v  p95 %v  p99 %v\n",
		m.P50.Round(time.Millisecond), m.P95.Round(time.Millisecond), m.P99.Round(time.Millisecond))
	fmt.Fprintf(stdout, "  plan cache:  %d compiles, %d hits (%.0f%% of requests amortized)\n",
		m.Compiles, m.PlanHits, amortized)
	if *planCacheDir != "" {
		fmt.Fprintf(stdout, "  plan store:  %d plans loaded from %s instead of compiled\n",
			m.DiskHits, *planCacheDir)
	}
	fmt.Fprintf(stdout, "  batching:    %d batches, mean %.1f req/batch\n", m.Batches, m.MeanBatch)
	return 0
}
