// Command aimserve drives the compile-once serving runtime — the
// paper's d-Matrix/Houmo scenario of a PIM chip serving models under
// load. It has three modes:
//
//	aimserve          closed-loop load generator (deterministic
//	                  aggregate report beside serving metrics)
//	aimserve serve    host the HTTP/JSON API on an address
//	aimserve bench-http  traffic-ramp benchmark, JSON to a file
//
// Load-generator usage:
//
//	aimserve [-n 48] [-rate 0] [-arrivals poisson|bursty|diurnal]
//	         [-burst-factor 4] [-period 2s] [-mix zoo|llm|vision|net:mode,...]
//	         [-workers N] [-beta 50] [-delta 0] [-seed 1] [-parallel 1]
//	         [-fidelity analytic|packed|spatial|auto] [-spatial-window N]
//	         [-spatial-skip MV] [-spatial-adaptive] [-target URL]
//
// With -target the generator POSTs the same deterministic request
// list to a live `aimserve serve` instance instead of an in-process
// server, counting 429 refusals as shed load.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"aim"
	"aim/internal/serve"
	"aim/internal/sim"
	"aim/internal/vf"
	"aim/internal/xrand"
)

func main() {
	os.Exit(dispatch(os.Args[1:], os.Stdout, os.Stderr))
}

// dispatch routes to a subcommand; bare arguments mean the
// load-generator mode.
func dispatch(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 {
		switch args[0] {
		case "serve":
			return runServe(args[1:], stdout, stderr)
		case "bench-http":
			return runBenchHTTP(args[1:], stdout, stderr)
		}
	}
	return run(args, stdout, stderr)
}

// scenario is one (network, mode) deployment point of a mix.
type scenario struct {
	net  string
	mode vf.Mode
}

// namedMixes are the built-in scenario mixes. "zoo" spans all six
// networks in both modes; "llm" is the serving headline (transformer
// decoding); "vision" covers the conv/vision workloads.
func namedMixes() map[string][]scenario {
	modes := []vf.Mode{vf.Sprint, vf.LowPower}
	mk := func(nets ...string) []scenario {
		var out []scenario
		for _, n := range nets {
			for _, m := range modes {
				out = append(out, scenario{net: n, mode: m})
			}
		}
		return out
	}
	return map[string][]scenario{
		"zoo":    mk(aim.Networks()...),
		"llm":    mk("gpt2", "llama3"),
		"vision": mk("resnet18", "mobilenetv2", "yolov5", "vit"),
	}
}

// parseMix resolves a named mix or an explicit net:mode[,net:mode...]
// list.
func parseMix(s string) ([]scenario, error) {
	if mix, ok := namedMixes()[s]; ok {
		return mix, nil
	}
	var out []scenario
	for _, part := range strings.Split(s, ",") {
		net, modeName, ok := strings.Cut(part, ":")
		if !ok || net == "" {
			return nil, fmt.Errorf("mix %q: want a named mix (zoo|llm|vision) or net:mode pairs", s)
		}
		var mode vf.Mode
		switch modeName {
		case "sprint":
			mode = vf.Sprint
		case "low-power":
			mode = vf.LowPower
		default:
			return nil, fmt.Errorf("mix %q: unknown mode %q (want sprint|low-power)", s, modeName)
		}
		out = append(out, scenario{net: net, mode: mode})
	}
	return out, nil
}

// arrivalOffsets builds the deterministic arrival schedule: cumulative
// offsets from the run start, drawn from a named stream so a fixed
// seed replays the same traffic. The rate profile is
//
//	poisson  constant rate
//	bursty   square wave — factor× the base rate for the first half
//	         of every period, base rate for the second
//	diurnal  sinusoid between the base rate and factor× it
//
// A nil schedule (rate 0) means closed-loop: submit everything at
// once.
func arrivalOffsets(kind string, n int, rate, factor float64, period time.Duration, seed int64) ([]time.Duration, error) {
	switch kind {
	case "poisson", "bursty", "diurnal":
	default:
		return nil, fmt.Errorf("arrivals %q: want poisson, bursty or diurnal", kind)
	}
	if rate <= 0 {
		return nil, nil
	}
	if kind != "poisson" {
		if factor < 1 || math.IsNaN(factor) || math.IsInf(factor, 0) {
			return nil, fmt.Errorf("burst-factor %v: want a factor >= 1", factor)
		}
		if period <= 0 {
			return nil, fmt.Errorf("period %v: want a positive period", period)
		}
	}
	arr := xrand.NewNamed(seed, "aimserve/arrivals")
	p := period.Seconds()
	t := 0.0
	out := make([]time.Duration, n)
	for i := range out {
		r := rate
		switch kind {
		case "bursty":
			if math.Mod(t, p) < p/2 {
				r = rate * factor
			}
		case "diurnal":
			r = rate * (1 + (factor-1)*(1+math.Sin(2*math.Pi*t/p))/2)
		}
		t += arr.Exp(r)
		out[i] = time.Duration(t * float64(time.Second))
	}
	return out, nil
}

// percentileDur is the same nearest-rank percentile the server uses,
// over client-side samples.
func percentileDur(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// run is the load-generator entry point.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("aimserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	n := fs.Int("n", 48, "number of requests")
	rate := fs.Float64("rate", 0, "base arrival rate in req/s (0 = submit everything immediately)")
	arrivals := fs.String("arrivals", "poisson", "arrival process: poisson|bursty|diurnal (needs -rate)")
	burstFactor := fs.Float64("burst-factor", 4, "peak-to-base rate ratio for bursty/diurnal arrivals")
	period := fs.Duration("period", 2*time.Second, "burst/diurnal cycle length")
	mix := fs.String("mix", "zoo", "scenario mix: zoo|llm|vision or a net:mode[,net:mode...] list")
	workers := fs.Int("workers", 0, "executor pool size (0 = one per CPU)")
	beta := fs.Int("beta", 50, "IR-Booster stability horizon β (cycles)")
	delta := fs.Int("delta", 0, "WDS shift δ (0 = default 16, -1 = disable WDS)")
	seed := fs.Int64("seed", 1, "random seed (scenario draws, arrival gaps, pipeline)")
	parallel := fs.Int("parallel", 1, "per-request wave pool (fleet parallelism comes from -workers)")
	fidelityName := fs.String("fidelity", "analytic", "simulator tier: analytic|packed|spatial, or auto for the SLO ladder (runtime knob; plans are shared across tiers)")
	spatialWindow := fs.Int("spatial-window", 0, "spatial tier mesh-solve cadence in cycles (0 = default)")
	spatialSkip := fs.Float64("spatial-skip", 0, "spatial tier incremental skip threshold in mV (0 = solve every window)")
	spatialAdaptive := fs.Bool("spatial-adaptive", false, "adapt the spatial solve cadence to activity variance")
	planCacheDir := fs.String("plan-cache-dir", "", "persist compiled plans to this directory and reuse them across restarts (empty = in-process cache only)")
	target := fs.String("target", "", "POST to a live aimserve serve URL instead of an in-process server")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	scen, err := parseMix(*mix)
	if err != nil {
		fmt.Fprintf(stderr, "aimserve: %v\n", err)
		return 2
	}
	var fidelity sim.Fidelity
	adapt := *fidelityName == "auto"
	if !adapt {
		fidelity, err = sim.ParseFidelity(*fidelityName)
		if err != nil {
			fmt.Fprintf(stderr, "aimserve: %v\n", err)
			return 2
		}
	}
	if *n <= 0 {
		fmt.Fprintf(stderr, "aimserve: -n %d: want a positive request count\n", *n)
		return 2
	}

	// The request list and arrival schedule are deterministic in the
	// seed: scenario draws and arrival gaps come from their own named
	// streams, so a fixed invocation replays the same traffic.
	pick := xrand.NewNamed(*seed, "aimserve/mix")
	reqs := make([]serve.Request, *n)
	for i := range reqs {
		sc := scen[pick.Intn(len(scen))]
		reqs[i] = serve.Request{
			Network: sc.net, Mode: sc.mode,
			Beta: *beta, Delta: *delta, Seed: *seed, Parallel: *parallel,
			Fidelity: fidelity, AdaptFidelity: adapt,
			SpatialWindow: *spatialWindow, SpatialSkipMV: *spatialSkip,
			SpatialAdaptive: *spatialAdaptive,
		}
	}
	offsets, err := arrivalOffsets(*arrivals, *n, *rate, *burstFactor, *period, *seed)
	if err != nil {
		fmt.Fprintf(stderr, "aimserve: %v\n", err)
		return 2
	}

	if *target != "" {
		return runAgainstTarget(*target, reqs, offsets, stdout, stderr)
	}

	// Closed loop against an in-process server: size the queue to the
	// whole request list so admission never sheds and the aggregate
	// report stays deterministic.
	queue := *n
	if queue < 256 {
		queue = 256
	}
	srv, err := serve.New(serve.Options{Workers: *workers, Queue: queue, PlanCacheDir: *planCacheDir})
	if err != nil {
		fmt.Fprintf(stderr, "aimserve: %v\n", err)
		return 2
	}
	defer srv.Close()
	start := time.Now() //aimlint:allow no-wallclock — the load generator measures real latency; deterministic output is serve.Render below
	resps := make([]serve.Response, *n)
	errs := make([]error, *n)
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		//aimlint:allow no-naked-go — closed-loop client goroutines, one per in-flight request; they exercise the pool, they are not simulation work
		go func(i int) {
			defer wg.Done()
			if offsets != nil {
				//aimlint:allow no-wallclock — paces the deterministic arrival offsets against real time
				time.Sleep(offsets[i] - time.Since(start))
			}
			resps[i], errs[i] = srv.Submit(context.Background(), reqs[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			fmt.Fprintf(stderr, "aimserve: %v\n", err)
			return 1
		}
	}
	wall := time.Since(start) //aimlint:allow no-wallclock — wall-clock throughput line is printed after the deterministic Render

	fmt.Fprintf(stdout, "== AIM serving: %d requests, mix %q ==\n", *n, *mix)
	io.WriteString(stdout, serve.Render(reqs, resps))
	m := srv.Metrics()
	amortized := 0.0
	if m.Requests > 0 {
		amortized = 100 * float64(m.Requests-m.Compiles) / float64(m.Requests)
	}
	fmt.Fprintf(stdout, "\nserving metrics (wall-clock, load-dependent):\n")
	fmt.Fprintf(stdout, "  throughput:  %.1f req/s over %v\n", float64(*n)/wall.Seconds(), wall.Round(time.Millisecond))
	fmt.Fprintf(stdout, "  latency:     p50 %v  p95 %v  p99 %v\n",
		m.P50.Round(time.Millisecond), m.P95.Round(time.Millisecond), m.P99.Round(time.Millisecond))
	fmt.Fprintf(stdout, "  plan cache:  %d compiles, %d hits (%.0f%% of requests amortized)\n",
		m.Compiles, m.PlanHits, amortized)
	if *planCacheDir != "" {
		fmt.Fprintf(stdout, "  plan store:  %d plans loaded from %s instead of compiled\n",
			m.DiskHits, *planCacheDir)
	}
	fmt.Fprintf(stdout, "  batching:    %d batches, mean %.1f req/batch\n", m.Batches, m.MeanBatch)
	if m.SpatialSolves+m.SpatialSkips > 0 {
		fmt.Fprintf(stdout, "  spatial:     %d solves (%d V-cycles, %d saturated), %d windows skipped\n",
			m.SpatialSolves, m.SpatialVCycles, m.SpatialSaturated, m.SpatialSkips)
	}
	if adapt {
		fmt.Fprintf(stdout, "  ladder:      tier %s, %d down / %d up; served %d analytic / %d packed / %d spatial\n",
			m.LadderTier, m.LadderDowns, m.LadderUps,
			m.ServedAnalytic, m.ServedPacked, m.ServedSpatial)
	}
	return 0
}

// sortDurations sorts a latency sample in place and returns it.
func sortDurations(d []time.Duration) []time.Duration {
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
	return d
}
