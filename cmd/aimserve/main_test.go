package main

import (
	"strings"
	"testing"

	"aim/internal/vf"
)

func TestParseMix(t *testing.T) {
	cases := []struct {
		name    string
		mix     string
		wantLen int
		wantErr bool
	}{
		{name: "zoo", mix: "zoo", wantLen: 12},
		{name: "llm", mix: "llm", wantLen: 4},
		{name: "vision", mix: "vision", wantLen: 8},
		{name: "explicit pair", mix: "resnet18:sprint", wantLen: 1},
		{name: "explicit list", mix: "resnet18:sprint,gpt2:low-power", wantLen: 2},
		{name: "missing mode", mix: "resnet18", wantErr: true},
		{name: "bad mode", mix: "resnet18:turbo", wantErr: true},
	}
	for _, c := range cases {
		got, err := parseMix(c.mix)
		if c.wantErr {
			if err == nil {
				t.Errorf("%s: expected error", c.name)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if len(got) != c.wantLen {
			t.Errorf("%s: %d scenarios, want %d", c.name, len(got), c.wantLen)
		}
	}
	pair, _ := parseMix("resnet18:sprint")
	if pair[0] != (scenario{net: "resnet18", mode: vf.Sprint}) {
		t.Errorf("explicit pair parsed as %+v", pair[0])
	}
}

func TestBadFlags(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-bogus"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown flag: exit = %d, want 2", code)
	}
}

func TestHelpExitsZero(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-h"}, &stdout, &stderr); code != 0 {
		t.Errorf("-h exit = %d, want 0", code)
	}
	if !strings.Contains(stderr.String(), "Usage of aimserve") {
		t.Errorf("usage missing: %q", stderr.String())
	}
}

func TestArgumentErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"bad mix", []string{"-mix", "nosuchmix"}, 2},
		{"bad fidelity", []string{"-fidelity", "bogus"}, 2},
		{"zero requests", []string{"-n", "0"}, 2},
		{"unknown network in mix", []string{"-mix", "alexnet:sprint", "-n", "1"}, 1},
		{"non-pow2 delta", []string{"-mix", "resnet18:low-power", "-n", "1", "-delta", "12"}, 1},
	}
	for _, c := range cases {
		var stdout, stderr strings.Builder
		if code := run(c.args, &stdout, &stderr); code != c.code {
			t.Errorf("%s: exit = %d, want %d (stderr %q)", c.name, code, c.code, stderr.String())
		}
	}
}

func TestEndToEndServe(t *testing.T) {
	if testing.Short() {
		t.Skip("full serving run")
	}
	var stdout, stderr strings.Builder
	code := run([]string{"-n", "4", "-mix", "resnet18:low-power,resnet18:sprint", "-workers", "2"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"== AIM serving: 4 requests",
		"tok/s", "aggregate: 4 requests",
		"plan cache:", "batching:", "latency:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestEndToEndPoissonPacing(t *testing.T) {
	if testing.Short() {
		t.Skip("full serving run")
	}
	// A high rate keeps the pacing fast while still exercising the
	// arrival-schedule path.
	var stdout, stderr strings.Builder
	code := run([]string{"-n", "3", "-mix", "resnet18:low-power", "-rate", "50"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "aggregate: 3 requests") {
		t.Errorf("output missing aggregate:\n%s", stdout.String())
	}
}
