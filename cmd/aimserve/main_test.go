package main

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"aim/internal/serve"
	"aim/internal/vf"
)

func TestParseMix(t *testing.T) {
	cases := []struct {
		name    string
		mix     string
		wantLen int
		wantErr bool
	}{
		{name: "zoo", mix: "zoo", wantLen: 12},
		{name: "llm", mix: "llm", wantLen: 4},
		{name: "vision", mix: "vision", wantLen: 8},
		{name: "explicit pair", mix: "resnet18:sprint", wantLen: 1},
		{name: "explicit list", mix: "resnet18:sprint,gpt2:low-power", wantLen: 2},
		{name: "missing mode", mix: "resnet18", wantErr: true},
		{name: "bad mode", mix: "resnet18:turbo", wantErr: true},
	}
	for _, c := range cases {
		got, err := parseMix(c.mix)
		if c.wantErr {
			if err == nil {
				t.Errorf("%s: expected error", c.name)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if len(got) != c.wantLen {
			t.Errorf("%s: %d scenarios, want %d", c.name, len(got), c.wantLen)
		}
	}
	pair, _ := parseMix("resnet18:sprint")
	if pair[0] != (scenario{net: "resnet18", mode: vf.Sprint}) {
		t.Errorf("explicit pair parsed as %+v", pair[0])
	}
}

func TestBadFlags(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-bogus"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown flag: exit = %d, want 2", code)
	}
}

func TestHelpExitsZero(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-h"}, &stdout, &stderr); code != 0 {
		t.Errorf("-h exit = %d, want 0", code)
	}
	if !strings.Contains(stderr.String(), "Usage of aimserve") {
		t.Errorf("usage missing: %q", stderr.String())
	}
}

func TestArgumentErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"bad mix", []string{"-mix", "nosuchmix"}, 2},
		{"bad fidelity", []string{"-fidelity", "bogus"}, 2},
		{"zero requests", []string{"-n", "0"}, 2},
		{"unknown network in mix", []string{"-mix", "alexnet:sprint", "-n", "1"}, 1},
		{"non-pow2 delta", []string{"-mix", "resnet18:low-power", "-n", "1", "-delta", "12"}, 1},
	}
	for _, c := range cases {
		var stdout, stderr strings.Builder
		if code := run(c.args, &stdout, &stderr); code != c.code {
			t.Errorf("%s: exit = %d, want %d (stderr %q)", c.name, code, c.code, stderr.String())
		}
	}
}

func TestEndToEndServe(t *testing.T) {
	if testing.Short() {
		t.Skip("full serving run")
	}
	var stdout, stderr strings.Builder
	code := run([]string{"-n", "4", "-mix", "resnet18:low-power,resnet18:sprint", "-workers", "2"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"== AIM serving: 4 requests",
		"tok/s", "aggregate: 4 requests",
		"plan cache:", "batching:", "latency:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestEndToEndPoissonPacing(t *testing.T) {
	if testing.Short() {
		t.Skip("full serving run")
	}
	// A high rate keeps the pacing fast while still exercising the
	// arrival-schedule path.
	var stdout, stderr strings.Builder
	code := run([]string{"-n", "3", "-mix", "resnet18:low-power", "-rate", "50"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "aggregate: 3 requests") {
		t.Errorf("output missing aggregate:\n%s", stdout.String())
	}
}

func TestDispatchRoutesSubcommands(t *testing.T) {
	// Bare flags still reach the load generator.
	var stdout, stderr strings.Builder
	if code := dispatch([]string{"-n", "0"}, &stdout, &stderr); code != 2 {
		t.Errorf("loadgen route: exit = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "positive request count") {
		t.Errorf("loadgen error missing: %q", stderr.String())
	}
}

// TestServeModeFlagErrors: serve mode refuses malformed flags with
// exit 1 and a message instead of falling through to load-generator
// defaults (a server silently running unlimited would be worse than
// one that does not start).
func TestServeModeFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"bad warm mix", []string{"serve", "-mix", "bogus"}, "named mix"},
		{"malformed pair", []string{"serve", "-mix", "resnet18"}, "net:mode pairs"},
		{"empty network", []string{"serve", "-mix", ":sprint"}, "net:mode pairs"},
		{"negative rate", []string{"serve", "-client-rate", "-3"}, "negative per-client rate"},
		{"NaN rate", []string{"serve", "-client-rate", "NaN"}, "non-finite per-client rate"},
		{"negative burst", []string{"serve", "-client-rate", "1", "-client-burst", "-2"}, "negative rate-limit burst"},
		{"burst without rate", []string{"serve", "-client-burst", "4"}, "without a per-client rate"},
		{"negative slo", []string{"serve", "-slo-p95", "-1s"}, "negative SLO target"},
		{"negative queue", []string{"serve", "-queue", "-1"}, "negative queue depth"},
		{"unknown flag", []string{"serve", "-bogus"}, "flag provided but not defined"},
		{"unknown warm network", []string{"serve", "-mix", "alexnet:sprint"}, "alexnet"},
	}
	for _, c := range cases {
		var stdout, stderr strings.Builder
		if code := dispatch(c.args, &stdout, &stderr); code != 1 {
			t.Errorf("%s: exit = %d, want 1 (stderr %q)", c.name, code, stderr.String())
			continue
		}
		if !strings.Contains(stderr.String(), c.want) {
			t.Errorf("%s: stderr %q missing %q", c.name, stderr.String(), c.want)
		}
	}
	var stdout, stderr strings.Builder
	if code := dispatch([]string{"serve", "-h"}, &stdout, &stderr); code != 0 {
		t.Errorf("serve -h: exit = %d, want 0", code)
	}
}

func TestArrivalOffsets(t *testing.T) {
	for _, kind := range []string{"poisson", "bursty", "diurnal"} {
		a, err := arrivalOffsets(kind, 16, 100, 4, time.Second, 7)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		b, _ := arrivalOffsets(kind, 16, 100, 4, time.Second, 7)
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: offsets not deterministic at %d: %v vs %v", kind, i, a[i], b[i])
			}
			if i > 0 && a[i] < a[i-1] {
				t.Errorf("%s: offsets not monotonic at %d", kind, i)
			}
		}
	}
	if off, err := arrivalOffsets("poisson", 8, 0, 4, time.Second, 1); err != nil || off != nil {
		t.Errorf("rate 0 must mean closed loop, got %v, %v", off, err)
	}
	if _, err := arrivalOffsets("weird", 8, 10, 4, time.Second, 1); err == nil {
		t.Error("unknown arrival process must error")
	}
	if _, err := arrivalOffsets("bursty", 8, 10, 0.5, time.Second, 1); err == nil {
		t.Error("burst factor under 1 must error")
	}
	if _, err := arrivalOffsets("diurnal", 8, 10, 4, 0, 1); err == nil {
		t.Error("zero period must error")
	}
}

func TestLoadgenArrivalFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-rate", "5", "-arrivals", "weird"},
		{"-rate", "5", "-arrivals", "bursty", "-burst-factor", "0.5"},
		{"-rate", "5", "-arrivals", "diurnal", "-period", "0s"},
	}
	for _, args := range cases {
		var stdout, stderr strings.Builder
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("%v: exit = %d, want 2 (stderr %q)", args, code, stderr.String())
		}
	}
}

func FuzzParseMix(f *testing.F) {
	for _, s := range []string{
		"zoo", "llm", "vision", "resnet18:sprint",
		"resnet18:sprint,gpt2:low-power", "resnet18", ":sprint",
		"a:b", "", ",", "x:sprint,", "zoo:zoo",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		scen, err := parseMix(s)
		if err != nil {
			return
		}
		if len(scen) == 0 {
			t.Fatalf("parseMix(%q) returned no scenarios and no error", s)
		}
		for _, sc := range scen {
			if sc.net == "" {
				t.Fatalf("parseMix(%q) accepted an empty network", s)
			}
		}
	})
}

func TestTargetModeAgainstLiveServer(t *testing.T) {
	if testing.Short() {
		t.Skip("full serving run")
	}
	srv, err := serve.New(serve.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var stdout, stderr strings.Builder
	code := run([]string{"-n", "3", "-mix", "resnet18:low-power", "-target", ts.URL}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"3 ok, 0 shed", "latency:", "shed rate: 0.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if st := srv.Stats(); st.Requests != 3 || st.Compiles != 1 {
		t.Errorf("server saw %d requests / %d compiles, want 3/1", st.Requests, st.Compiles)
	}
}

func TestTargetModeUnreachable(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-n", "1", "-mix", "resnet18:low-power", "-target", "http://127.0.0.1:1"}, &stdout, &stderr)
	if code != 1 {
		t.Errorf("unreachable target: exit = %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "no request succeeded") {
		t.Errorf("stderr %q missing failure message", stderr.String())
	}
}
