module aim

go 1.24
