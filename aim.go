package aim

import (
	"context"
	"fmt"
	"math"
	"time"

	"aim/internal/core"
	"aim/internal/experiments"
	"aim/internal/model"
	"aim/internal/sim"
	"aim/internal/vf"
)

// Mode selects the IR-Booster operating policy.
type Mode string

const (
	// Sprint maximizes throughput: high-frequency V-f pairs.
	Sprint Mode = "sprint"
	// LowPower maximizes energy efficiency: low-voltage V-f pairs.
	LowPower Mode = "low-power"
)

func (m Mode) internal() (vf.Mode, error) {
	switch m {
	case Sprint:
		return vf.Sprint, nil
	case LowPower, "":
		return vf.LowPower, nil
	default:
		return 0, fmt.Errorf("aim: unknown mode %q (want %q or %q)", m, Sprint, LowPower)
	}
}

// Fidelity selects the simulator's modelling tier — the three-rung
// ladder of activity and IR-drop fidelity. It is a runtime knob: plans
// compile identically at every tier, so a serving runtime switches
// tiers per request without recompiling.
type Fidelity string

const (
	// FidelityAnalytic (the default) models Rtog as flip-intensity ×
	// HR and every group's drop as the scalar Eq. 2 of its own
	// activity — the fast closed-form tier, byte-identical to the
	// historical simulator.
	FidelityAnalytic Fidelity = "analytic"
	// FidelityPacked runs the word-wise Eq. 1 engine over synthetic
	// packed weight banks: per-cycle Rtog carries real binomial
	// cell-level variance; drops stay scalar Eq. 2.
	FidelityPacked Fidelity = "packed"
	// FidelitySpatial adds spatially-resolved IR drops on top of the
	// packed engine: per cycle-window the group activity vector
	// becomes a die current map, a warm-started multigrid V-cycle
	// solves the power-delivery mesh, and each group's drop is read
	// from its own floorplan tiles — real neighbour coupling instead
	// of the analytic noise term.
	FidelitySpatial Fidelity = "spatial"
)

func (f Fidelity) internal() (sim.Fidelity, error) {
	fid, err := sim.ParseFidelity(string(f))
	if err != nil {
		return 0, fmt.Errorf("aim: %w", err)
	}
	return fid, nil
}

// Networks lists the workloads of the evaluation zoo.
func Networks() []string { return model.Names() }

// DisableWDS, set as Config.WDSDelta, runs the pipeline with the WDS
// pass switched off (LHR and mapping still apply). The zero value of
// WDSDelta means "default δ", so disabling needs an explicit sentinel.
const DisableWDS = core.DisableWDS

// Config selects a workload and an AIM deployment.
type Config struct {
	// Network is one of Networks().
	Network string
	// Mode is Sprint or LowPower (default LowPower).
	Mode Mode
	// Beta is IR-Booster's stability horizon β (default 50).
	Beta int
	// Bits is the quantization width (default 8, range 2..16).
	Bits int
	// WDSDelta is the weight-distribution-shift δ: 0 means the default
	// 16, DisableWDS switches the pass off, anything else must be a
	// power of two.
	WDSDelta int
	// Seed drives every stochastic component (default 1).
	Seed int64
	// Parallel bounds the simulator's wave-sharding worker pool:
	// 0 uses one worker per CPU, 1 forces the serial reference path,
	// N > 1 uses N workers. Results are bit-identical for any value —
	// the knob only trades wall-clock time for cores. Negative values
	// are rejected.
	Parallel int
	// Fidelity selects the simulator's modelling tier (default
	// FidelityAnalytic). Unknown values are rejected with an error,
	// never silently substituted.
	Fidelity Fidelity
	// SpatialWindow is the FidelitySpatial mesh-solve cadence in cycles
	// (0 = the default 4). Within a window the solved voltage field is
	// held, like the paper's monitor sampling period. Negative values
	// are rejected.
	SpatialWindow int
	// SpatialSkipMV arms the spatial tier's incremental window-skip
	// gate: a window whose activity implies less than this many
	// millivolts of drop change since the last solved window reuses the
	// previous field instead of solving. 0 (the default) solves every
	// window — the reference behaviour; ~3 mV (a tenth of the spatial
	// calibration band) is the calibrated opt-in value. Negative or
	// non-finite values are rejected. Results stay bit-identical for
	// any worker count at any setting.
	SpatialSkipMV float64
	// SpatialAdaptive adapts the spatial solve cadence to activity
	// variance: quiet stretches lengthen the window, swings shorten it.
	// The schedule is a deterministic function of the simulated
	// activity, so determinism across worker counts is preserved.
	SpatialAdaptive bool
}

// Result summarizes a full AIM run against the DVFS baseline.
type Result struct {
	Network string
	Mode    Mode
	// HRBaseline and HROptimized are the element-weighted average
	// Hamming rates before and after LHR+WDS.
	HRBaseline, HROptimized float64
	// MitigationPct is the worst-case IR-drop reduction on
	// weight-stationary macros versus the 140 mV sign-off worst case.
	MitigationPct float64
	// WorstDropMV is the optimized worst drop in millivolts.
	WorstDropMV float64
	// EfficiencyGain is the TOPS/W improvement factor.
	EfficiencyGain float64
	// MacroPowerMW is the average per-macro power under AIM.
	MacroPowerMW float64
	// BaselinePowerMW is the DVFS per-macro power.
	BaselinePowerMW float64
	// TOPS is the effective throughput under AIM; Speedup is versus the
	// 256-TOPS baseline.
	TOPS, Speedup float64
	// Quality is the surrogate task quality after optimization
	// (accuracy % or perplexity, per workload).
	Quality float64
	// Failures counts IRFailure events during the simulated run.
	Failures int
	// DelayFactor is total cycles over stall-free cycles (≥ 1).
	DelayFactor float64
}

// Run compiles the workload through the full AIM pipeline (LHR + WDS +
// HR-aware mapping), executes it on the simulated 7nm 256-TOPS chip
// with IR-Booster, and compares against the worst-case DVFS baseline.
func Run(cfg Config) (Result, error) {
	mode, err := cfg.Mode.internal()
	if err != nil {
		return Result{}, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	// Validate the compile knobs up front: invalid input must surface
	// as an error (via quant.IsPow2 inside ResolveWDSDelta), never as
	// a panic out of the compiler — a serving daemon cannot tolerate
	// the latter.
	delta, err := core.ResolveWDSDelta(cfg.WDSDelta)
	if err != nil {
		return Result{}, fmt.Errorf("aim: %w", err)
	}
	if cfg.Bits != 0 && (cfg.Bits < 2 || cfg.Bits > 16) {
		return Result{}, fmt.Errorf("aim: bits %d out of range [2,16]", cfg.Bits)
	}
	// Runtime knobs get the same treatment: a bogus fidelity or a
	// negative worker count is an error, not a silent fallback.
	fidelity, err := cfg.Fidelity.internal()
	if err != nil {
		return Result{}, err
	}
	if cfg.Parallel < 0 {
		return Result{}, fmt.Errorf("aim: negative parallel %d (0 = one worker per CPU, 1 = serial)", cfg.Parallel)
	}
	if cfg.SpatialWindow < 0 {
		return Result{}, fmt.Errorf("aim: negative spatial window %d (0 = default)", cfg.SpatialWindow)
	}
	if cfg.SpatialSkipMV < 0 || math.IsNaN(cfg.SpatialSkipMV) || math.IsInf(cfg.SpatialSkipMV, 0) {
		return Result{}, fmt.Errorf("aim: spatial skip threshold %v mV (want a finite value >= 0)", cfg.SpatialSkipMV)
	}
	net, err := model.ByName(cfg.Network, 2025)
	if err != nil {
		return Result{}, err
	}
	p := core.NewPipeline(mode)
	p.Seed = seed
	p.Parallel = cfg.Parallel
	p.Fidelity = fidelity
	p.SpatialWindow = cfg.SpatialWindow
	p.SpatialSkipMV = cfg.SpatialSkipMV
	p.SpatialAdaptive = cfg.SpatialAdaptive
	p.WDSDelta = delta
	if cfg.Beta > 0 {
		p.Beta = cfg.Beta
	}
	if cfg.Bits > 0 {
		p.Bits = cfg.Bits
	}
	return resultFrom(p.Run(net), cfg.Mode), nil
}

// resultFrom flattens a core report into the public Result. It is the
// single conversion both the one-shot Run path and the serving runtime
// use, so a served request answers with exactly what a cold Run
// returns.
func resultFrom(rep core.Report, mode Mode) Result {
	if mode == "" {
		mode = LowPower
	}
	return Result{
		Network:         rep.Net.Name,
		Mode:            mode,
		HRBaseline:      rep.Baseline.HR.Average,
		HROptimized:     rep.AIM.HR.Average,
		MitigationPct:   100 * rep.Mitigation(),
		WorstDropMV:     rep.AIM.Result.WorstWeightOpDropMV,
		EfficiencyGain:  rep.EfficiencyGain(),
		MacroPowerMW:    rep.AIM.Result.AvgMacroPowerMW,
		BaselinePowerMW: rep.Baseline.Result.AvgMacroPowerMW,
		TOPS:            rep.AIM.Result.TOPS,
		Speedup:         rep.Speedup(),
		Quality:         rep.AIM.Quality,
		Failures:        rep.AIM.Result.Failures,
		DelayFactor:     rep.AIM.Result.DelayFactor,
	}
}

// ExperimentIDs lists the reproducible tables and figures of the
// paper's evaluation in order (fig3 … overhead).
func ExperimentIDs() []string { return experiments.IDs() }

// Experiment regenerates one table/figure of the paper and returns it
// rendered as text. Valid ids are ExperimentIDs().
func Experiment(id string, seed int64) (string, error) {
	run, ok := experiments.ByID(id)
	if !ok {
		return "", fmt.Errorf("aim: unknown experiment %q (want one of %v)", id, experiments.IDs())
	}
	if seed == 0 {
		seed = 2025
	}
	return run(seed).Render(), nil
}

// ExperimentSet selects a batch of experiments for RunExperiments.
type ExperimentSet struct {
	// Pattern is an unanchored regular expression over experiment ids
	// (the semantics of go test -run); empty selects every experiment.
	Pattern string
	// IDs, when non-empty, overrides Pattern with an explicit id list
	// run in the given order.
	IDs []string
	// Seed drives every stochastic component (default 2025, the
	// registry's reference seed).
	Seed int64
	// Parallel bounds the worker pool fanning out over experiments:
	// 0 means one worker per CPU, 1 dispatches experiments one at a
	// time. Inner shards (networks, β points, simulation waves) use
	// their own GOMAXPROCS-bounded pools regardless — set GOMAXPROCS=1
	// for a fully serial run. The rendered tables are byte-identical
	// for any setting.
	Parallel int
	// Progress, when non-nil, is called as each experiment finishes
	// (completion order, not registry order) with its wall-clock time.
	// Calls are serialized.
	Progress func(id string, elapsed time.Duration)
}

// ExperimentResult is one regenerated table or figure.
type ExperimentResult struct {
	// ID is the experiment identifier ("fig3", "table2", ...).
	ID string
	// Text is the rendered table.
	Text string
}

// RunExperiments regenerates a set of the paper's tables and figures
// concurrently over a bounded worker pool and returns them in
// registry order (or the order of set.IDs). Every stochastic stream is
// derived from (seed, shard name), so for a fixed seed the output is
// byte-identical no matter how many workers run — parallelism only
// changes wall-clock time. Cancelling ctx stops experiments that have
// not started and returns ctx.Err().
func RunExperiments(ctx context.Context, set ExperimentSet) ([]ExperimentResult, error) {
	ids := set.IDs
	if len(ids) == 0 {
		var err error
		ids, err = experiments.MatchIDs(set.Pattern)
		if err != nil {
			return nil, fmt.Errorf("aim: %w", err)
		}
		if len(ids) == 0 {
			return nil, fmt.Errorf("aim: no experiments match %q (want a pattern over %v)", set.Pattern, experiments.IDs())
		}
	}
	seed := set.Seed
	if seed == 0 {
		seed = 2025
	}
	tables, err := experiments.RunSet(ctx, ids, seed, set.Parallel, set.Progress)
	if err != nil {
		return nil, fmt.Errorf("aim: %w", err)
	}
	out := make([]ExperimentResult, len(tables))
	for i, tbl := range tables {
		out[i] = ExperimentResult{ID: tbl.ID, Text: tbl.Render()}
	}
	return out, nil
}
