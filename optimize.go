package aim

import (
	"fmt"

	"aim/internal/fxp"
	"aim/internal/quant"
	"aim/internal/tensor"
)

// OptimizeOptions configures weight-level HR optimization for user
// supplied tensors (the LHR + WDS software path without the zoo).
type OptimizeOptions struct {
	// Bits is the quantization width (default 8).
	Bits int
	// Lambda is the LHR regularization strength (default 1.1, the
	// calibrated QAT setting).
	Lambda float64
	// Window bounds per-weight code drift (default 8).
	Window int
	// WDSDelta applies weight distribution shift after LHR (0 disables;
	// must be a power of two; 8 or 16 recommended for INT8).
	WDSDelta int
}

// OptimizedWeights is the result of Optimize.
type OptimizedWeights struct {
	// Codes are the deployed integer codes (shifted if WDS is on).
	Codes []int32
	// Scale maps codes back to values: value ≈ (code − WDSDelta) · Scale.
	Scale float64
	// WDSDelta echoes the applied shift so callers can build the
	// compensation term (−Sum(inputs)·δ) after their matmuls.
	WDSDelta int
	// HRBefore/HRAfter are the Hamming rates before and after
	// optimization.
	HRBefore, HRAfter float64
	// MeanDrift is the average absolute code movement LHR caused
	// (a proxy for accuracy pressure).
	MeanDrift float64
	// OverflowFrac is the fraction of codes clamped by WDS.
	OverflowFrac float64
}

// Optimize quantizes a float weight tensor and applies the AIM software
// pipeline: LHR proximal tuning (Eq. 5/6 fixed point) followed by the
// optional WDS shift. This is the library entry point for users who
// bring their own weights rather than the evaluation zoo.
func Optimize(weights []float64, opt OptimizeOptions) (OptimizedWeights, error) {
	if len(weights) == 0 {
		return OptimizedWeights{}, fmt.Errorf("aim: empty weight tensor")
	}
	if opt.Bits == 0 {
		opt.Bits = 8
	}
	if opt.Bits < 2 || opt.Bits > 16 {
		return OptimizedWeights{}, fmt.Errorf("aim: bits %d out of range [2,16]", opt.Bits)
	}
	if opt.Lambda == 0 {
		opt.Lambda = quant.DefaultLHROptions().Lambda
	}
	if opt.Window == 0 {
		opt.Window = quant.DefaultLHROptions().Window
	}
	if opt.WDSDelta != 0 && !quant.IsPow2(opt.WDSDelta) {
		return OptimizedWeights{}, fmt.Errorf("aim: WDS delta %d is not a power of two", opt.WDSDelta)
	}
	w := &tensor.Float{Shape: []int{len(weights)}, Data: append([]float64(nil), weights...)}
	lhrOpt := quant.DefaultLHROptions()
	lhrOpt.Lambda = opt.Lambda
	lhrOpt.Window = opt.Window
	res := quant.ApplyLHR(w, opt.Bits, lhrOpt)
	out := OptimizedWeights{
		Scale:     res.After.Scale,
		WDSDelta:  opt.WDSDelta,
		HRBefore:  res.Before.HR(),
		MeanDrift: res.Drift,
	}
	q := res.After
	if opt.WDSDelta > 0 {
		shifted, nOv := quant.ShiftWeights(q, opt.WDSDelta)
		q = shifted
		out.OverflowFrac = float64(nOv) / float64(len(weights))
	}
	out.Codes = q.Codes.Data
	out.HRAfter = q.HR()
	return out, nil
}

// HR computes the Hamming rate (Eq. 3) of integer codes at the given
// bit width: the fraction of 1 bits across all two's-complement codes.
func HR(codes []int32, bits int) float64 {
	return fxp.HR(codes, bits)
}

// LHRTerm evaluates the differentiable LHR regularizer (Eq. 5) for one
// weight expressed in code units (weight / quantization scale): the
// linearly interpolated Hamming rate between the two neighbouring
// integer codes, and its gradient with respect to the code-unit value.
// Add `lambda * hr` to a training loss and propagate `lambda * grad /
// scale` into the weight gradient to integrate LHR into any training
// loop — the Go equivalent of the paper's one-line PyTorch integration
// (§5.2.1). See examples/quantlab for a full QAT demonstration.
func LHRTerm(codeUnits float64, bits int) (hr, grad float64) {
	return fxp.InterpHR(codeUnits, bits)
}

// Correction returns the WDS compensation term −Sum(inputs)·δ to add to
// a matmul output column computed with δ-shifted weights (Algorithm 1
// line 9).
func Correction(inputs []int32, delta int) int64 {
	return quant.Correction(inputs, delta)
}
