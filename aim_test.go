package aim

import (
	"context"
	"math"
	"strings"
	"testing"

	"aim/internal/xrand"
)

func TestNetworksList(t *testing.T) {
	if len(Networks()) != 6 {
		t.Fatalf("networks = %v", Networks())
	}
}

func TestRunUnknownNetwork(t *testing.T) {
	if _, err := Run(Config{Network: "alexnet"}); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunUnknownMode(t *testing.T) {
	if _, err := Run(Config{Network: "resnet18", Mode: "turbo"}); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunLowPower(t *testing.T) {
	res, err := Run(Config{Network: "resnet18", Mode: LowPower})
	if err != nil {
		t.Fatal(err)
	}
	if res.HROptimized >= res.HRBaseline {
		t.Error("HR must fall")
	}
	if res.MitigationPct < 55 || res.MitigationPct > 73 {
		t.Errorf("mitigation = %v%%, want 58.5-69.2", res.MitigationPct)
	}
	if res.EfficiencyGain < 1.8 || res.EfficiencyGain > 2.7 {
		t.Errorf("efficiency gain = %v", res.EfficiencyGain)
	}
	if res.MacroPowerMW >= res.BaselinePowerMW {
		t.Error("AIM must cut per-macro power")
	}
	if res.DelayFactor < 1 {
		t.Errorf("delay factor = %v", res.DelayFactor)
	}
}

func TestRunSprint(t *testing.T) {
	res, err := Run(Config{Network: "vit", Mode: Sprint})
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup < 1.0 || res.Speedup > 1.3 {
		t.Errorf("sprint speedup = %v, want ~1.13-1.15", res.Speedup)
	}
}

func TestExperimentLookup(t *testing.T) {
	if len(ExperimentIDs()) != 21 {
		t.Fatalf("experiment count = %d, want 21", len(ExperimentIDs()))
	}
	out, err := Experiment("overhead", 2025)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "shift compensator") {
		t.Errorf("unexpected output: %q", out)
	}
	if _, err := Experiment("fig99", 2025); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

func TestRunExperimentsSet(t *testing.T) {
	got, err := RunExperiments(context.Background(), ExperimentSet{Pattern: "^(vfsens|overhead)$", Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != "vfsens" || got[1].ID != "overhead" {
		t.Fatalf("got %d results, want vfsens+overhead in registry order: %+v", len(got), got)
	}
	if !strings.Contains(got[1].Text, "shift compensator") {
		t.Errorf("overhead table wrong: %q", got[1].Text)
	}
	// Explicit id list preserves the caller's order and must render the
	// same bytes as the single-experiment path.
	byIDs, err := RunExperiments(context.Background(), ExperimentSet{IDs: []string{"overhead", "vfsens"}})
	if err != nil {
		t.Fatal(err)
	}
	if byIDs[0].ID != "overhead" || byIDs[1].ID != "vfsens" {
		t.Fatalf("explicit id order not preserved: %+v", byIDs)
	}
	single, err := Experiment("overhead", 0)
	if err != nil {
		t.Fatal(err)
	}
	if byIDs[0].Text != single {
		t.Error("RunExperiments and Experiment render different bytes for the same seed")
	}
}

func TestRunExperimentsErrors(t *testing.T) {
	if _, err := RunExperiments(context.Background(), ExperimentSet{Pattern: "nosuch"}); err == nil {
		t.Error("no-match pattern must error")
	}
	if _, err := RunExperiments(context.Background(), ExperimentSet{Pattern: "(bad"}); err == nil {
		t.Error("bad pattern must error")
	}
	if _, err := RunExperiments(context.Background(), ExperimentSet{IDs: []string{"fig99"}}); err == nil {
		t.Error("unknown id must error")
	}
}

func TestRunParallelMatchesSerial(t *testing.T) {
	serial, err := Run(Config{Network: "resnet18", Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(Config{Network: "resnet18", Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if serial != par {
		t.Errorf("Run with Parallel=4 diverges from serial:\n  par=%+v\n  ser=%+v", par, serial)
	}
}

func TestOptimizeReducesHR(t *testing.T) {
	g := xrand.New(3)
	w := make([]float64, 8192)
	for i := range w {
		w[i] = g.Laplace(0, 0.02)
	}
	res, err := Optimize(w, OptimizeOptions{WDSDelta: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.HRAfter >= res.HRBefore {
		t.Errorf("HR did not fall: %v -> %v", res.HRBefore, res.HRAfter)
	}
	rel := (res.HRBefore - res.HRAfter) / res.HRBefore
	if rel < 0.30 {
		t.Errorf("LHR+WDS(16) reduction = %.1f%%, want >30%%", rel*100)
	}
	if res.OverflowFrac > 0.01 {
		t.Errorf("overflow %v, want <1%%", res.OverflowFrac)
	}
	if len(res.Codes) != len(w) {
		t.Error("code length mismatch")
	}
}

func TestOptimizeValidation(t *testing.T) {
	if _, err := Optimize(nil, OptimizeOptions{}); err == nil {
		t.Error("empty tensor must error")
	}
	if _, err := Optimize([]float64{1}, OptimizeOptions{Bits: 40}); err == nil {
		t.Error("bad bits must error")
	}
	if _, err := Optimize([]float64{1}, OptimizeOptions{WDSDelta: 12}); err == nil {
		t.Error("non-pow2 delta must error")
	}
}

func TestCorrectionMatchesArithmetic(t *testing.T) {
	got := Correction([]int32{1, 2, 3}, 8)
	if got != -48 {
		t.Errorf("correction = %d, want -48", got)
	}
}

func TestHRKnown(t *testing.T) {
	if got := HR([]int32{0, -1}, 8); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("HR = %v, want 0.5", got)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, _ := Run(Config{Network: "resnet18"})
	b, _ := Run(Config{Network: "resnet18"})
	if a != b {
		t.Error("Run must be deterministic")
	}
}
