package aim

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"aim/internal/core"
	"aim/internal/model"
	"aim/internal/vf"
	"aim/internal/xrand"
)

// newTestServer starts a Server and fails the test on error (invalid
// options or an unopenable plan-cache dir).
func newTestServer(t testing.TB, opt ServerOptions) *Server {
	t.Helper()
	srv, err := NewServer(opt)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	return srv
}

func TestNetworksList(t *testing.T) {
	if len(Networks()) != 6 {
		t.Fatalf("networks = %v", Networks())
	}
}

func TestRunUnknownNetwork(t *testing.T) {
	if _, err := Run(Config{Network: "alexnet"}); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunUnknownMode(t *testing.T) {
	if _, err := Run(Config{Network: "resnet18", Mode: "turbo"}); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunLowPower(t *testing.T) {
	res, err := Run(Config{Network: "resnet18", Mode: LowPower})
	if err != nil {
		t.Fatal(err)
	}
	if res.HROptimized >= res.HRBaseline {
		t.Error("HR must fall")
	}
	if res.MitigationPct < 55 || res.MitigationPct > 73 {
		t.Errorf("mitigation = %v%%, want 58.5-69.2", res.MitigationPct)
	}
	if res.EfficiencyGain < 1.8 || res.EfficiencyGain > 2.7 {
		t.Errorf("efficiency gain = %v", res.EfficiencyGain)
	}
	if res.MacroPowerMW >= res.BaselinePowerMW {
		t.Error("AIM must cut per-macro power")
	}
	if res.DelayFactor < 1 {
		t.Errorf("delay factor = %v", res.DelayFactor)
	}
}

func TestRunSprint(t *testing.T) {
	res, err := Run(Config{Network: "vit", Mode: Sprint})
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup < 1.0 || res.Speedup > 1.3 {
		t.Errorf("sprint speedup = %v, want ~1.13-1.15", res.Speedup)
	}
}

func TestExperimentLookup(t *testing.T) {
	if len(ExperimentIDs()) != 22 {
		t.Fatalf("experiment count = %d, want 22", len(ExperimentIDs()))
	}
	out, err := Experiment("overhead", 2025)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "shift compensator") {
		t.Errorf("unexpected output: %q", out)
	}
	if _, err := Experiment("fig99", 2025); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

func TestRunExperimentsSet(t *testing.T) {
	got, err := RunExperiments(context.Background(), ExperimentSet{Pattern: "^(vfsens|overhead)$", Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != "vfsens" || got[1].ID != "overhead" {
		t.Fatalf("got %d results, want vfsens+overhead in registry order: %+v", len(got), got)
	}
	if !strings.Contains(got[1].Text, "shift compensator") {
		t.Errorf("overhead table wrong: %q", got[1].Text)
	}
	// Explicit id list preserves the caller's order and must render the
	// same bytes as the single-experiment path.
	byIDs, err := RunExperiments(context.Background(), ExperimentSet{IDs: []string{"overhead", "vfsens"}})
	if err != nil {
		t.Fatal(err)
	}
	if byIDs[0].ID != "overhead" || byIDs[1].ID != "vfsens" {
		t.Fatalf("explicit id order not preserved: %+v", byIDs)
	}
	single, err := Experiment("overhead", 0)
	if err != nil {
		t.Fatal(err)
	}
	if byIDs[0].Text != single {
		t.Error("RunExperiments and Experiment render different bytes for the same seed")
	}
}

func TestRunExperimentsErrors(t *testing.T) {
	if _, err := RunExperiments(context.Background(), ExperimentSet{Pattern: "nosuch"}); err == nil {
		t.Error("no-match pattern must error")
	}
	if _, err := RunExperiments(context.Background(), ExperimentSet{Pattern: "(bad"}); err == nil {
		t.Error("bad pattern must error")
	}
	if _, err := RunExperiments(context.Background(), ExperimentSet{IDs: []string{"fig99"}}); err == nil {
		t.Error("unknown id must error")
	}
}

func TestRunParallelMatchesSerial(t *testing.T) {
	serial, err := Run(Config{Network: "resnet18", Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(Config{Network: "resnet18", Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if serial != par {
		t.Errorf("Run with Parallel=4 diverges from serial:\n  par=%+v\n  ser=%+v", par, serial)
	}
}

func TestOptimizeReducesHR(t *testing.T) {
	g := xrand.New(3)
	w := make([]float64, 8192)
	for i := range w {
		w[i] = g.Laplace(0, 0.02)
	}
	res, err := Optimize(w, OptimizeOptions{WDSDelta: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.HRAfter >= res.HRBefore {
		t.Errorf("HR did not fall: %v -> %v", res.HRBefore, res.HRAfter)
	}
	rel := (res.HRBefore - res.HRAfter) / res.HRBefore
	if rel < 0.30 {
		t.Errorf("LHR+WDS(16) reduction = %.1f%%, want >30%%", rel*100)
	}
	if res.OverflowFrac > 0.01 {
		t.Errorf("overflow %v, want <1%%", res.OverflowFrac)
	}
	if len(res.Codes) != len(w) {
		t.Error("code length mismatch")
	}
}

func TestOptimizeValidation(t *testing.T) {
	if _, err := Optimize(nil, OptimizeOptions{}); err == nil {
		t.Error("empty tensor must error")
	}
	if _, err := Optimize([]float64{1}, OptimizeOptions{Bits: 40}); err == nil {
		t.Error("bad bits must error")
	}
	if _, err := Optimize([]float64{1}, OptimizeOptions{WDSDelta: 12}); err == nil {
		t.Error("non-pow2 delta must error")
	}
}

func TestCorrectionMatchesArithmetic(t *testing.T) {
	got := Correction([]int32{1, 2, 3}, 8)
	if got != -48 {
		t.Errorf("correction = %d, want -48", got)
	}
}

func TestHRKnown(t *testing.T) {
	if got := HR([]int32{0, -1}, 8); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("HR = %v, want 0.5", got)
	}
}

func TestRunRejectsInvalidDelta(t *testing.T) {
	// Regression: a non-power-of-two δ used to escape into
	// compiler.Compile and panic; it must surface as an error.
	if _, err := Run(Config{Network: "resnet18", WDSDelta: 12}); err == nil || !strings.Contains(err.Error(), "power of two") {
		t.Errorf("WDSDelta 12: err = %v, want power-of-two error", err)
	}
	if _, err := Run(Config{Network: "resnet18", WDSDelta: -3}); err == nil {
		t.Error("WDSDelta -3 must error")
	}
	if _, err := Run(Config{Network: "resnet18", Bits: 40}); err == nil {
		t.Error("Bits 40 must error")
	}
}

func TestRunRejectsInvalidRuntimeKnobs(t *testing.T) {
	// Fidelity and Parallel validate like the compile knobs: errors,
	// not silent fallbacks.
	if _, err := Run(Config{Network: "resnet18", Fidelity: "bogus"}); err == nil || !strings.Contains(err.Error(), "unknown fidelity") {
		t.Errorf("Fidelity bogus: err = %v, want unknown-fidelity error", err)
	}
	if _, err := Run(Config{Network: "resnet18", Parallel: -1}); err == nil || !strings.Contains(err.Error(), "negative parallel") {
		t.Errorf("Parallel -1: err = %v, want negative-parallel error", err)
	}
}

func TestServerRejectsInvalidRuntimeKnobs(t *testing.T) {
	srv := newTestServer(t, ServerOptions{Workers: 1})
	defer srv.Close()
	if _, err := srv.Submit(context.Background(), Config{Network: "resnet18", Fidelity: "bogus"}); err == nil {
		t.Error("Submit with bogus fidelity must error")
	}
	if _, err := srv.Submit(context.Background(), Config{Network: "resnet18", Parallel: -1}); err == nil {
		t.Error("Submit with negative parallel must error")
	}
	if _, err := srv.ServeList(context.Background(), []Config{{Network: "resnet18", Fidelity: "x"}}); err == nil {
		t.Error("ServeList with bogus fidelity must error")
	}
}

// TestRunSpatialFidelity: the spatial tier works end to end through
// the public API and lands in the paper's mitigation ballpark.
func TestRunSpatialFidelity(t *testing.T) {
	res, err := Run(Config{Network: "mobilenetv2", Fidelity: FidelitySpatial})
	if err != nil {
		t.Fatal(err)
	}
	if res.WorstDropMV <= 0 || res.MitigationPct <= 0 {
		t.Errorf("spatial run looks empty: %+v", res)
	}
	analytic, err := Run(Config{Network: "mobilenetv2"})
	if err != nil {
		t.Fatal(err)
	}
	if res.WorstDropMV == analytic.WorstDropMV && res.Failures == analytic.Failures {
		t.Error("spatial tier should differ from the analytic tier at runtime")
	}
}

func TestDisableWDSMatchesLHRStage(t *testing.T) {
	res, err := Run(Config{Network: "resnet18", WDSDelta: DisableWDS, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	// With WDS off the deployed Hamming rate is the LHR-only one: the
	// +LHR ablation stage's compiled stats (HR does not depend on the
	// mapping strategy).
	net, err := model.ByName("resnet18", 2025)
	if err != nil {
		t.Fatal(err)
	}
	lhr := core.NewPipeline(vf.LowPower).CompileStage(net, core.StageLHR)
	if res.HROptimized != lhr.Stats.Average {
		t.Errorf("disabled-WDS HR = %v, want the +LHR stage's %v", res.HROptimized, lhr.Stats.Average)
	}
	withWDS, err := Run(Config{Network: "resnet18", Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.HROptimized <= withWDS.HROptimized {
		t.Errorf("disabling WDS must raise HR: disabled %v vs default %v", res.HROptimized, withWDS.HROptimized)
	}
}

func TestServerMatchesRun(t *testing.T) {
	srv := newTestServer(t, ServerOptions{Workers: 2})
	defer srv.Close()
	cfg := Config{Network: "resnet18", Mode: LowPower}
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := srv.Submit(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("served result diverges from cold Run:\n  served=%+v\n  cold=%+v", got, want)
	}
	// Repeats answer from the plan cache with the identical Result.
	again, err := srv.Submit(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again != want {
		t.Error("cached request diverges from cold Run")
	}
	if st := srv.Stats(); st.Compiles != 1 || st.Requests != 2 {
		t.Errorf("stats = %+v, want 1 compile over 2 requests", st)
	}
	if srv.Metrics().P50 <= 0 {
		t.Error("latency percentiles missing")
	}
}

func TestServeListDeterministicAcrossWorkers(t *testing.T) {
	cfgs := []Config{
		{Network: "resnet18", Mode: LowPower},
		{Network: "resnet18", Mode: Sprint},
		{Network: "resnet18", Mode: LowPower, WDSDelta: DisableWDS},
		{Network: "resnet18", Mode: LowPower},
	}
	var first []Result
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		srv := newTestServer(t, ServerOptions{Workers: workers})
		got, err := srv.ServeList(context.Background(), cfgs)
		srv.Close()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if first == nil {
			first = got
			continue
		}
		for i := range got {
			if got[i] != first[i] {
				t.Errorf("workers=%d: result %d diverges from workers=1", workers, i)
			}
		}
	}
}

func TestServerSubmitErrors(t *testing.T) {
	srv := newTestServer(t, ServerOptions{Workers: 1})
	if _, err := srv.Submit(context.Background(), Config{Network: "resnet18", Mode: "turbo"}); err == nil {
		t.Error("unknown mode must error")
	}
	if _, err := srv.Submit(context.Background(), Config{Network: "alexnet"}); err == nil {
		t.Error("unknown network must error")
	}
	if _, err := srv.Submit(context.Background(), Config{Network: "resnet18", WDSDelta: 12}); err == nil {
		t.Error("non-pow2 delta must error")
	}
	srv.Close()
	if _, err := srv.Submit(context.Background(), Config{Network: "resnet18"}); err == nil {
		t.Error("closed server must error")
	}
}

func TestTokensPerSecMethods(t *testing.T) {
	r := Result{TOPS: 256, MacroPowerMW: 17.5}
	if r.TokensPerSec() != 17.5 {
		t.Errorf("TokensPerSec = %v, want 17.5", r.TokensPerSec())
	}
	if r.EnergyPerTokenMJ() != 1 {
		t.Errorf("EnergyPerTokenMJ = %v, want 1", r.EnergyPerTokenMJ())
	}
}

func TestRunDeterministic(t *testing.T) {
	a, _ := Run(Config{Network: "resnet18"})
	b, _ := Run(Config{Network: "resnet18"})
	if a != b {
		t.Error("Run must be deterministic")
	}
}

func TestNewServerValidatesOptions(t *testing.T) {
	cases := []struct {
		name string
		opt  ServerOptions
		want string
	}{
		{"negative rate", ServerOptions{RatePerClient: -1}, "negative per-client rate"},
		{"negative burst", ServerOptions{RatePerClient: 1, RateBurst: -2}, "negative rate-limit burst"},
		{"burst without rate", ServerOptions{RateBurst: 4}, "without a per-client rate"},
		{"negative target", ServerOptions{TargetP95: -time.Second}, "negative SLO target"},
		{"negative queue", ServerOptions{Queue: -1}, "negative queue depth"},
	}
	for _, tc := range cases {
		if _, err := NewServer(tc.opt); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: NewServer err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

// TestServerHandlerServesAndDrains: the public Handler wires the same
// runtime Submit uses, and Drain gates HTTP without touching the
// in-process path.
func TestServerHandlerServesAndDrains(t *testing.T) {
	srv := newTestServer(t, ServerOptions{Workers: 1})
	defer srv.Close()
	h := srv.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/submit",
		strings.NewReader(`{"network":"resnet18"}`)))
	if rec.Code != http.StatusOK {
		t.Fatalf("submit over HTTP: status %d, body %s", rec.Code, rec.Body)
	}
	srv.Drain()
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/submit",
		strings.NewReader(`{"network":"resnet18"}`)))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("post-drain HTTP status = %d, want 503", rec.Code)
	}
	if _, err := srv.Submit(context.Background(), Config{Network: "resnet18"}); err != nil {
		t.Errorf("in-process Submit after Drain: %v", err)
	}
	m := srv.Metrics()
	if m.ServedSpatial != 0 || m.ServedAnalytic != 2 {
		t.Errorf("served mix = %d analytic / %d spatial, want 2/0", m.ServedAnalytic, m.ServedSpatial)
	}
	if m.LadderTier != "spatial" {
		t.Errorf("idle ladder tier = %q, want spatial", m.LadderTier)
	}
	if m.ShedRate != 0 {
		t.Errorf("shed rate = %v with no refusals", m.ShedRate)
	}
}
